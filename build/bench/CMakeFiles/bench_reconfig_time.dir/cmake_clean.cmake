file(REMOVE_RECURSE
  "CMakeFiles/bench_reconfig_time.dir/bench_reconfig_time.cpp.o"
  "CMakeFiles/bench_reconfig_time.dir/bench_reconfig_time.cpp.o.d"
  "bench_reconfig_time"
  "bench_reconfig_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconfig_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
