# Empty dependencies file for bench_reconfig_time.
# This may be replaced when dependencies are built.
