# Empty dependencies file for bench_resource_util.
# This may be replaced when dependencies are built.
