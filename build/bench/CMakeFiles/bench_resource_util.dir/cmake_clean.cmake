file(REMOVE_RECURSE
  "CMakeFiles/bench_resource_util.dir/bench_resource_util.cpp.o"
  "CMakeFiles/bench_resource_util.dir/bench_resource_util.cpp.o.d"
  "bench_resource_util"
  "bench_resource_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resource_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
