file(REMOVE_RECURSE
  "CMakeFiles/bench_lcd.dir/bench_lcd.cpp.o"
  "CMakeFiles/bench_lcd.dir/bench_lcd.cpp.o.d"
  "bench_lcd"
  "bench_lcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
