# Empty compiler generated dependencies file for bench_lcd.
# This may be replaced when dependencies are built.
