# Empty dependencies file for bench_channel_establishment.
# This may be replaced when dependencies are built.
