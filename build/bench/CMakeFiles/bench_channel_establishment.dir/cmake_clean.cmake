file(REMOVE_RECURSE
  "CMakeFiles/bench_channel_establishment.dir/bench_channel_establishment.cpp.o"
  "CMakeFiles/bench_channel_establishment.dir/bench_channel_establishment.cpp.o.d"
  "bench_channel_establishment"
  "bench_channel_establishment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_channel_establishment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
