file(REMOVE_RECURSE
  "CMakeFiles/bench_switching.dir/bench_switching.cpp.o"
  "CMakeFiles/bench_switching.dir/bench_switching.cpp.o.d"
  "bench_switching"
  "bench_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
