file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_throughput.dir/bench_comm_throughput.cpp.o"
  "CMakeFiles/bench_comm_throughput.dir/bench_comm_throughput.cpp.o.d"
  "bench_comm_throughput"
  "bench_comm_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
