file(REMOVE_RECURSE
  "CMakeFiles/spec_driven_system.dir/spec_driven_system.cpp.o"
  "CMakeFiles/spec_driven_system.dir/spec_driven_system.cpp.o.d"
  "spec_driven_system"
  "spec_driven_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_driven_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
