# Empty compiler generated dependencies file for spec_driven_system.
# This may be replaced when dependencies are built.
