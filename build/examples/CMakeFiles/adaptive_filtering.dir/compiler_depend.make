# Empty compiler generated dependencies file for adaptive_filtering.
# This may be replaced when dependencies are built.
