file(REMOVE_RECURSE
  "CMakeFiles/adaptive_filtering.dir/adaptive_filtering.cpp.o"
  "CMakeFiles/adaptive_filtering.dir/adaptive_filtering.cpp.o.d"
  "adaptive_filtering"
  "adaptive_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
