# Empty dependencies file for base_system_builder.
# This may be replaced when dependencies are built.
