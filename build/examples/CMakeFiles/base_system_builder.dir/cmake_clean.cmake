file(REMOVE_RECURSE
  "CMakeFiles/base_system_builder.dir/base_system_builder.cpp.o"
  "CMakeFiles/base_system_builder.dir/base_system_builder.cpp.o.d"
  "base_system_builder"
  "base_system_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_system_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
