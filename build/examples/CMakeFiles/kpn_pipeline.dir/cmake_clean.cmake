file(REMOVE_RECURSE
  "CMakeFiles/kpn_pipeline.dir/kpn_pipeline.cpp.o"
  "CMakeFiles/kpn_pipeline.dir/kpn_pipeline.cpp.o.d"
  "kpn_pipeline"
  "kpn_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kpn_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
