
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cpu_routed.cpp" "src/CMakeFiles/vapres.dir/baseline/cpu_routed.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/baseline/cpu_routed.cpp.o.d"
  "/root/repo/src/baseline/naive_switch.cpp" "src/CMakeFiles/vapres.dir/baseline/naive_switch.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/baseline/naive_switch.cpp.o.d"
  "/root/repo/src/baseline/shared_bus.cpp" "src/CMakeFiles/vapres.dir/baseline/shared_bus.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/baseline/shared_bus.cpp.o.d"
  "/root/repo/src/bitstream/bitgen.cpp" "src/CMakeFiles/vapres.dir/bitstream/bitgen.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/bitstream/bitgen.cpp.o.d"
  "/root/repo/src/bitstream/bitstream.cpp" "src/CMakeFiles/vapres.dir/bitstream/bitstream.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/bitstream/bitstream.cpp.o.d"
  "/root/repo/src/bitstream/relocation.cpp" "src/CMakeFiles/vapres.dir/bitstream/relocation.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/bitstream/relocation.cpp.o.d"
  "/root/repo/src/bitstream/storage.cpp" "src/CMakeFiles/vapres.dir/bitstream/storage.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/bitstream/storage.cpp.o.d"
  "/root/repo/src/comm/dcr.cpp" "src/CMakeFiles/vapres.dir/comm/dcr.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/comm/dcr.cpp.o.d"
  "/root/repo/src/comm/fabric_dump.cpp" "src/CMakeFiles/vapres.dir/comm/fabric_dump.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/comm/fabric_dump.cpp.o.d"
  "/root/repo/src/comm/fifo.cpp" "src/CMakeFiles/vapres.dir/comm/fifo.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/comm/fifo.cpp.o.d"
  "/root/repo/src/comm/fsl.cpp" "src/CMakeFiles/vapres.dir/comm/fsl.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/comm/fsl.cpp.o.d"
  "/root/repo/src/comm/module_interface.cpp" "src/CMakeFiles/vapres.dir/comm/module_interface.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/comm/module_interface.cpp.o.d"
  "/root/repo/src/comm/switch_box.cpp" "src/CMakeFiles/vapres.dir/comm/switch_box.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/comm/switch_box.cpp.o.d"
  "/root/repo/src/comm/switch_fabric.cpp" "src/CMakeFiles/vapres.dir/comm/switch_fabric.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/comm/switch_fabric.cpp.o.d"
  "/root/repo/src/core/api.cpp" "src/CMakeFiles/vapres.dir/core/api.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/api.cpp.o.d"
  "/root/repo/src/core/assembler.cpp" "src/CMakeFiles/vapres.dir/core/assembler.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/assembler.cpp.o.d"
  "/root/repo/src/core/channel.cpp" "src/CMakeFiles/vapres.dir/core/channel.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/channel.cpp.o.d"
  "/root/repo/src/core/iom.cpp" "src/CMakeFiles/vapres.dir/core/iom.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/iom.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/CMakeFiles/vapres.dir/core/monitor.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/monitor.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/vapres.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/params.cpp.o.d"
  "/root/repo/src/core/peripherals.cpp" "src/CMakeFiles/vapres.dir/core/peripherals.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/peripherals.cpp.o.d"
  "/root/repo/src/core/prr.cpp" "src/CMakeFiles/vapres.dir/core/prr.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/prr.cpp.o.d"
  "/root/repo/src/core/prsocket.cpp" "src/CMakeFiles/vapres.dir/core/prsocket.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/prsocket.cpp.o.d"
  "/root/repo/src/core/reconfig.cpp" "src/CMakeFiles/vapres.dir/core/reconfig.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/reconfig.cpp.o.d"
  "/root/repo/src/core/rsb.cpp" "src/CMakeFiles/vapres.dir/core/rsb.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/rsb.cpp.o.d"
  "/root/repo/src/core/scrubber.cpp" "src/CMakeFiles/vapres.dir/core/scrubber.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/scrubber.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/vapres.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/stats.cpp.o.d"
  "/root/repo/src/core/switching.cpp" "src/CMakeFiles/vapres.dir/core/switching.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/switching.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/vapres.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/core/system.cpp.o.d"
  "/root/repo/src/fabric/clock_region.cpp" "src/CMakeFiles/vapres.dir/fabric/clock_region.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/fabric/clock_region.cpp.o.d"
  "/root/repo/src/fabric/clocking.cpp" "src/CMakeFiles/vapres.dir/fabric/clocking.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/fabric/clocking.cpp.o.d"
  "/root/repo/src/fabric/device.cpp" "src/CMakeFiles/vapres.dir/fabric/device.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/fabric/device.cpp.o.d"
  "/root/repo/src/fabric/frame.cpp" "src/CMakeFiles/vapres.dir/fabric/frame.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/fabric/frame.cpp.o.d"
  "/root/repo/src/fabric/icap.cpp" "src/CMakeFiles/vapres.dir/fabric/icap.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/fabric/icap.cpp.o.d"
  "/root/repo/src/flow/app_flow.cpp" "src/CMakeFiles/vapres.dir/flow/app_flow.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/flow/app_flow.cpp.o.d"
  "/root/repo/src/flow/base_system_flow.cpp" "src/CMakeFiles/vapres.dir/flow/base_system_flow.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/flow/base_system_flow.cpp.o.d"
  "/root/repo/src/flow/explorer.cpp" "src/CMakeFiles/vapres.dir/flow/explorer.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/flow/explorer.cpp.o.d"
  "/root/repo/src/flow/floorplan.cpp" "src/CMakeFiles/vapres.dir/flow/floorplan.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/flow/floorplan.cpp.o.d"
  "/root/repo/src/flow/rate_analyzer.cpp" "src/CMakeFiles/vapres.dir/flow/rate_analyzer.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/flow/rate_analyzer.cpp.o.d"
  "/root/repo/src/flow/resource_model.cpp" "src/CMakeFiles/vapres.dir/flow/resource_model.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/flow/resource_model.cpp.o.d"
  "/root/repo/src/flow/spec.cpp" "src/CMakeFiles/vapres.dir/flow/spec.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/flow/spec.cpp.o.d"
  "/root/repo/src/flow/sysdef.cpp" "src/CMakeFiles/vapres.dir/flow/sysdef.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/flow/sysdef.cpp.o.d"
  "/root/repo/src/hwmodule/composite.cpp" "src/CMakeFiles/vapres.dir/hwmodule/composite.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/hwmodule/composite.cpp.o.d"
  "/root/repo/src/hwmodule/hw_module.cpp" "src/CMakeFiles/vapres.dir/hwmodule/hw_module.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/hwmodule/hw_module.cpp.o.d"
  "/root/repo/src/hwmodule/library.cpp" "src/CMakeFiles/vapres.dir/hwmodule/library.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/hwmodule/library.cpp.o.d"
  "/root/repo/src/hwmodule/modules.cpp" "src/CMakeFiles/vapres.dir/hwmodule/modules.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/hwmodule/modules.cpp.o.d"
  "/root/repo/src/hwmodule/wrapper.cpp" "src/CMakeFiles/vapres.dir/hwmodule/wrapper.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/hwmodule/wrapper.cpp.o.d"
  "/root/repo/src/proc/interrupt.cpp" "src/CMakeFiles/vapres.dir/proc/interrupt.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/proc/interrupt.cpp.o.d"
  "/root/repo/src/proc/microblaze.cpp" "src/CMakeFiles/vapres.dir/proc/microblaze.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/proc/microblaze.cpp.o.d"
  "/root/repo/src/proc/timer.cpp" "src/CMakeFiles/vapres.dir/proc/timer.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/proc/timer.cpp.o.d"
  "/root/repo/src/sim/clock.cpp" "src/CMakeFiles/vapres.dir/sim/clock.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/sim/clock.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/vapres.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/CMakeFiles/vapres.dir/sim/fault.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/sim/fault.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/vapres.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/vapres.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/CMakeFiles/vapres.dir/sim/vcd.cpp.o" "gcc" "src/CMakeFiles/vapres.dir/sim/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
