# Empty compiler generated dependencies file for vapres.
# This may be replaced when dependencies are built.
