file(REMOVE_RECURSE
  "libvapres.a"
)
