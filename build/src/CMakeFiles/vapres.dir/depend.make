# Empty dependencies file for vapres.
# This may be replaced when dependencies are built.
