# Empty compiler generated dependencies file for switch_box_test.
# This may be replaced when dependencies are built.
