file(REMOVE_RECURSE
  "CMakeFiles/switch_box_test.dir/switch_box_test.cpp.o"
  "CMakeFiles/switch_box_test.dir/switch_box_test.cpp.o.d"
  "switch_box_test"
  "switch_box_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_box_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
