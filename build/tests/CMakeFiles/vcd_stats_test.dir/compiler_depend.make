# Empty compiler generated dependencies file for vcd_stats_test.
# This may be replaced when dependencies are built.
