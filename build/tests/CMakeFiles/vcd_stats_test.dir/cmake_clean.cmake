file(REMOVE_RECURSE
  "CMakeFiles/vcd_stats_test.dir/vcd_stats_test.cpp.o"
  "CMakeFiles/vcd_stats_test.dir/vcd_stats_test.cpp.o.d"
  "vcd_stats_test"
  "vcd_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcd_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
