file(REMOVE_RECURSE
  "CMakeFiles/multi_rsb_test.dir/multi_rsb_test.cpp.o"
  "CMakeFiles/multi_rsb_test.dir/multi_rsb_test.cpp.o.d"
  "multi_rsb_test"
  "multi_rsb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_rsb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
