# Empty compiler generated dependencies file for multi_rsb_test.
# This may be replaced when dependencies are built.
