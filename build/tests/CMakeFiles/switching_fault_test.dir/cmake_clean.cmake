file(REMOVE_RECURSE
  "CMakeFiles/switching_fault_test.dir/switching_fault_test.cpp.o"
  "CMakeFiles/switching_fault_test.dir/switching_fault_test.cpp.o.d"
  "switching_fault_test"
  "switching_fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switching_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
