# Empty dependencies file for switching_fault_test.
# This may be replaced when dependencies are built.
