file(REMOVE_RECURSE
  "CMakeFiles/iom_test.dir/iom_test.cpp.o"
  "CMakeFiles/iom_test.dir/iom_test.cpp.o.d"
  "iom_test"
  "iom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
