# Empty dependencies file for iom_test.
# This may be replaced when dependencies are built.
