# Empty dependencies file for switch_fabric_test.
# This may be replaced when dependencies are built.
