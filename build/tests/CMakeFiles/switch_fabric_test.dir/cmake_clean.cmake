file(REMOVE_RECURSE
  "CMakeFiles/switch_fabric_test.dir/switch_fabric_test.cpp.o"
  "CMakeFiles/switch_fabric_test.dir/switch_fabric_test.cpp.o.d"
  "switch_fabric_test"
  "switch_fabric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
