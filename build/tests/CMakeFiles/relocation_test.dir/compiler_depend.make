# Empty compiler generated dependencies file for relocation_test.
# This may be replaced when dependencies are built.
