file(REMOVE_RECURSE
  "CMakeFiles/relocation_test.dir/relocation_test.cpp.o"
  "CMakeFiles/relocation_test.dir/relocation_test.cpp.o.d"
  "relocation_test"
  "relocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
