# Empty dependencies file for prsocket_test.
# This may be replaced when dependencies are built.
