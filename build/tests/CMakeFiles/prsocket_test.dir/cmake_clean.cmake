file(REMOVE_RECURSE
  "CMakeFiles/prsocket_test.dir/prsocket_test.cpp.o"
  "CMakeFiles/prsocket_test.dir/prsocket_test.cpp.o.d"
  "prsocket_test"
  "prsocket_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prsocket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
