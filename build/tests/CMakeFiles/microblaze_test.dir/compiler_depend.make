# Empty compiler generated dependencies file for microblaze_test.
# This may be replaced when dependencies are built.
