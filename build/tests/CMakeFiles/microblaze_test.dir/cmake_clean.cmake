file(REMOVE_RECURSE
  "CMakeFiles/microblaze_test.dir/microblaze_test.cpp.o"
  "CMakeFiles/microblaze_test.dir/microblaze_test.cpp.o.d"
  "microblaze_test"
  "microblaze_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microblaze_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
