# Empty dependencies file for icap_test.
# This may be replaced when dependencies are built.
