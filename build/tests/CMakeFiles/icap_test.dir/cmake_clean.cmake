file(REMOVE_RECURSE
  "CMakeFiles/icap_test.dir/icap_test.cpp.o"
  "CMakeFiles/icap_test.dir/icap_test.cpp.o.d"
  "icap_test"
  "icap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
