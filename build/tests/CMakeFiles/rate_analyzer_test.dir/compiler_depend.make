# Empty compiler generated dependencies file for rate_analyzer_test.
# This may be replaced when dependencies are built.
