file(REMOVE_RECURSE
  "CMakeFiles/rate_analyzer_test.dir/rate_analyzer_test.cpp.o"
  "CMakeFiles/rate_analyzer_test.dir/rate_analyzer_test.cpp.o.d"
  "rate_analyzer_test"
  "rate_analyzer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
