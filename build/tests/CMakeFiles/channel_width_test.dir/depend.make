# Empty dependencies file for channel_width_test.
# This may be replaced when dependencies are built.
