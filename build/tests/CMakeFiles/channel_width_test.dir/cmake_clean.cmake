file(REMOVE_RECURSE
  "CMakeFiles/channel_width_test.dir/channel_width_test.cpp.o"
  "CMakeFiles/channel_width_test.dir/channel_width_test.cpp.o.d"
  "channel_width_test"
  "channel_width_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_width_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
