// Adaptive filtering: the full Figure 5 scenario.
//
// An IOM streams noisy samples through filter A (a short moving average)
// in PRR 0. Filter A periodically reports the observed signal level over
// its r-link FSL (step 2). A software module on the MicroBlaze watches
// the monitoring stream; when the level indicates a noisier regime, it
// decides filter B (a longer moving average) "would better meet the
// design constraints" and triggers the switching methodology: B is
// placed in PRR 1 *while A keeps processing* (step 3), the channels are
// re-routed (4, 9), A drains and hands its state over (5-7), and the IOM
// reports the end-of-stream word (8). The output stream never gaps by
// more than a protocol handful of cycles.
#include <cstdio>
#include <optional>

#include "core/switching.hpp"
#include "core/system.hpp"
#include "sim/random.hpp"

using namespace vapres;
using comm::Word;

namespace {

core::SystemParams example_params() {
  core::SystemParams p = core::SystemParams::prototype();
  p.rsbs[0].prr_width_clbs = 4;  // keep the simulated PR at ~3 ms
  return p;
}

}  // namespace

int main() {
  core::VapresSystem sys(example_params());
  sys.bring_up_all_sites();

  // Filter A: monitored 4-sample moving average, placed in PRR 0.
  sys.reconfigure_now(0, 0, "ma4");
  // Filter B staged in SDRAM at startup so the later switch needs no CF
  // access. Filter B must accept filter A's state registers (Section
  // III.B.3); ma4's state is its 4-word delay line, so B is a ma4-class
  // filter (a fresh instance continuing seamlessly where A stopped).
  sys.preload_sdram("ma4", 0, 1);

  core::Rsb& rsb = sys.rsb();
  const auto up = *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  const auto down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));

  // The input signal: a clean ramp that turns noisy after 20k samples.
  sim::SplitMix64 noise(7);
  int n = 0;
  rsb.iom(0).set_source_generator(
      [&]() -> std::optional<Word> {
        const Word base = static_cast<Word>(512 + (n % 64));
        const Word jitter =
            n > 20000 ? static_cast<Word>(noise.next_below(512)) : 0;
        ++n;
        return base + jitter;
      },
      /*interval=*/4);

  // Software module: watch A's monitoring words (step 2); trigger the
  // switch once the reported average rises past the threshold.
  core::SwitchRequest req;
  req.src_prr = 0;
  req.dst_prr = 1;
  req.new_module_id = "ma4";
  req.upstream = up;
  req.downstream = down;
  core::ModuleSwitcher switcher(sys, req);

  bool triggered = false;
  proc::FunctionTask monitor("monitor", [&](proc::Microblaze&) {
    comm::FslLink& r1 = rsb.prr(0).fsl_to_mb();
    while (auto w = r1.try_read()) {
      if (!triggered && *w > 700) {
        std::printf("[monitor] level %u exceeds threshold -> switching to "
                    "filter B (Fig. 5 step 3)\n",
                    *w);
        triggered = true;
        rsb.iom(0).reset_gap_stats();
        switcher.begin();
        return true;  // monitor done; the switcher task takes over
      }
    }
    return false;
  });
  sys.mb().add_task(&monitor);

  // Run until the switch completes (covers the noisy-regime onset and
  // the full ~3 ms reconfiguration).
  sys.sim().run_until([&] { return switcher.done(); },
                      sim::kPsPerSecond * 10);
  sys.run_system_cycles(2000);

  const auto& t = switcher.timeline();
  std::printf("\n=== switching timeline (MicroBlaze cycles @100 MHz) ===\n");
  std::printf("  reconfiguration (step 3) : %llu cycles (%.2f ms) — stream "
              "kept flowing\n",
              static_cast<unsigned long long>(t.reconfig_done - t.started),
              static_cast<double>(t.reconfig_done - t.started) / 100e3);
  std::printf("  input re-routed  (step 4) : +%llu cycles\n",
              static_cast<unsigned long long>(t.input_rerouted -
                                              t.reconfig_done));
  std::printf("  state collected  (step 6) : +%llu cycles (%zu state words "
              "from filter A)\n",
              static_cast<unsigned long long>(t.state_collected -
                                              t.input_rerouted),
              switcher.collected_state().size());
  std::printf("  B initialized    (step 7) : +%llu cycles\n",
              static_cast<unsigned long long>(t.module_initialized -
                                              t.state_collected));
  std::printf("  IOM saw EOS      (step 8) : +%llu cycles\n",
              static_cast<unsigned long long>(t.iom_eos_seen -
                                              t.module_initialized));
  std::printf("  output re-routed (step 9) : +%llu cycles\n",
              static_cast<unsigned long long>(t.completed - t.iom_eos_seen));

  std::printf("\nmax output gap across the whole switch: %llu cycles "
              "(reconfiguration alone was %llu)\n",
              static_cast<unsigned long long>(rsb.iom(0).max_output_gap()),
              static_cast<unsigned long long>(t.reconfig_done - t.started));
  std::printf("stream samples delivered: %zu, EOS words filtered: %llu\n",
              rsb.iom(0).received().size(),
              static_cast<unsigned long long>(rsb.iom(0).eos_seen()));
  std::printf("PRR0 now %s; PRR1 hosts '%s'\n",
              rsb.prr(0).clock_domain().enabled() ? "active" : "shut down",
              rsb.prr(1).loaded_module().c_str());
  return 0;
}
