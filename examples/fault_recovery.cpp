// Fault tolerance via module relocation (an enabling use case the paper
// cites in its introduction, ref [5]).
//
// A checksum module streams data in PRR 0. A fault is detected in PRR
// 0's fabric (here: injected by the test harness); the recovery software
// relocates the module to the spare PRR 1 using the standard switching
// methodology — the module's running 64-bit checksum state survives the
// relocation, the faulty PRR is isolated and clock-gated, and the stream
// continues without interruption.
#include <cstdio>
#include <optional>

#include "core/switching.hpp"
#include "core/system.hpp"
#include "hwmodule/modules.hpp"

using namespace vapres;
using comm::Word;

int main() {
  core::SystemParams params = core::SystemParams::prototype();
  params.rsbs[0].prr_width_clbs = 4;
  core::VapresSystem sys(std::move(params));
  sys.bring_up_all_sites();

  sys.reconfigure_now(0, 0, "checksum");
  sys.preload_sdram("checksum", 0, 1);  // golden copy for the spare PRR

  core::Rsb& rsb = sys.rsb();
  const auto up = *sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  const auto down =
      *sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));

  int n = 0;
  rsb.iom(0).set_source_generator(
      [&n]() -> std::optional<Word> { return static_cast<Word>(n++); },
      /*interval=*/4);
  sys.run_system_cycles(4000);
  std::printf("streaming through PRR0 (checksum module), %zu words so "
              "far\n",
              rsb.iom(0).received().size());

  // ---- fault detected in PRR 0 -----------------------------------------
  std::printf("\n!! fault reported in PRR0's fabric -> relocating module "
              "to spare PRR1\n\n");
  rsb.iom(0).reset_gap_stats();

  core::SwitchRequest req;
  req.src_prr = 0;
  req.dst_prr = 1;
  req.new_module_id = "checksum";
  req.upstream = up;
  req.downstream = down;
  core::ModuleSwitcher relocator(sys, req);
  relocator.begin();
  sys.sim().run_until([&] { return relocator.done(); },
                      sim::kPsPerSecond * 10);
  sys.run_system_cycles(4000);

  const auto& t = relocator.timeline();
  std::printf("relocation complete in %llu MicroBlaze cycles (%.2f ms, "
              "dominated by PR of the spare)\n",
              static_cast<unsigned long long>(t.completed - t.started),
              static_cast<double>(t.completed - t.started) / 100e3);
  std::printf("checksum state carried over: %zu words %s\n",
              relocator.collected_state().size(),
              relocator.collected_state().size() == 2
                  ? "(64-bit running sum)"
                  : "");
  std::printf("max output gap during relocation: %llu cycles\n",
              static_cast<unsigned long long>(rsb.iom(0).max_output_gap()));

  // The faulty PRR is fenced off: isolated and clock-gated.
  const auto sock = sys.dcr().read(rsb.prr_socket_address(0));
  std::printf("faulty PRR0 fenced: SM_en=%d CLK_en=%d\n",
              (sock & core::PrSocket::kSmEn) != 0,
              (sock & core::PrSocket::kClkEn) != 0);

  // Verify the checksum is the sum of *all* words the IOM injected and
  // delivered (nothing lost across the relocation).
  auto* cs = dynamic_cast<hwmodule::Checksum*>(
      rsb.prr(1).wrapper().behavior());
  std::uint64_t expected = 0;
  for (Word w : rsb.iom(0).received()) expected += w;
  std::printf("\ndelivered %zu words; checksum in relocated module covers "
              "%s the delivered stream\n",
              rsb.iom(0).received().size(),
              cs != nullptr && cs->sum() >= expected ? "at least" : "NOT");
  std::printf("stream intact: %s\n",
              [&] {
                const auto& rx = rsb.iom(0).received();
                for (std::size_t i = 0; i < rx.size(); ++i) {
                  if (rx[i] != static_cast<Word>(i)) return "NO";
                }
                return "yes (0..n in order, no loss)";
              }());
  return 0;
}
