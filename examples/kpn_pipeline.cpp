// Kahn-process-network pipeline (paper Figure 4).
//
// Assembles a five-node KPN inside one RSB at runtime: a splitter fans
// the input stream to a hardware gain path and to a *software* node on
// the MicroBlaze (via the FSL bridge modules, as Figure 4 shows KPN
// nodes on the processor); an adder joins the two paths back together.
//
//        iom ->- split -+-> gain_x2 ----------+-> adder -> iom
//                       +-> [MB: +1000] ------+
//
// Every edge is a streaming channel through the switch boxes (or an FSL
// towards the MicroBlaze); FIFOs give the blocking-read/blocking-write
// KPN semantics for free.
#include <cstdio>

#include "core/assembler.hpp"
#include "core/system.hpp"

using namespace vapres;
using comm::Word;

int main() {
  core::SystemParams params = core::SystemParams::prototype();
  params.rsbs[0].num_prrs = 5;
  params.rsbs[0].ki = 2;  // the adder needs two input channels
  params.rsbs[0].ko = 2;  // the splitter needs two output channels
  params.rsbs[0].prr_width_clbs = 4;
  core::VapresSystem sys(std::move(params));
  sys.bring_up_all_sites();

  core::KpnAppSpec app;
  app.name = "figure4_kpn";
  app.nodes = {{"split", "splitter2"},
               {"hw_gain", "gain_x2"},
               {"to_mb", "fsl_bridge_out"},
               {"from_mb", "fsl_bridge_in"},
               {"join", "adder2"}};
  app.edges = {{"iom:0", "split", 0, 0}, {"split", "hw_gain", 0, 0},
               {"split", "to_mb", 1, 0}, {"hw_gain", "join", 0, 0},
               {"from_mb", "join", 0, 1}, {"join", "iom:0", 0, 0}};

  core::RuntimeAssembler assembler(sys);
  const auto assembly = assembler.assemble(app);
  std::printf("Assembled '%s': %zu nodes placed, %zu channels, %llu "
              "MicroBlaze cycles of PR\n",
              app.name.c_str(), assembly.placement.size(),
              assembly.channels.size(),
              static_cast<unsigned long long>(assembly.reconfig_cycles));
  for (const auto& [node, prr] : assembly.placement) {
    std::printf("  node %-8s -> PRR %d (%s)\n", node.c_str(), prr,
                sys.rsb().prr(prr).loaded_module().c_str());
  }

  // The software KPN node: +1000 on each word between the FSL bridges.
  core::Rsb& rsb = sys.rsb();
  comm::FslLink& rx = rsb.prr(assembly.placement.at("to_mb")).fsl_to_mb();
  comm::FslLink& tx =
      rsb.prr(assembly.placement.at("from_mb")).fsl_from_mb();
  proc::FunctionTask sw_node("plus1000", [&](proc::Microblaze& mb) {
    if (rx.can_read() && tx.can_write()) {
      tx.write(rx.read() + 1000);
      mb.busy_for(2);
    }
    return false;
  });
  sys.mb().add_task(&sw_node);

  // Stream: out[n] = 2*x[n] + (x[n] + 1000).
  sys.rsb().iom(0).set_source_data({1, 2, 3, 4, 5});
  sys.run_system_cycles(1000);

  std::printf("\ninput : 1 2 3 4 5\noutput:");
  for (Word w : sys.rsb().iom(0).received()) std::printf(" %u", w);
  std::printf("\n(expected 2x + x + 1000: 1003 1006 1009 1012 1015)\n");

  // Tear the application down; the base system is ready for the next one.
  sys.mb().remove_task(&sw_node);
  assembler.disassemble(assembly);
  std::printf("Disassembled; active channels: %zu\n",
              sys.rsb().channels().active_count());
  return 0;
}
