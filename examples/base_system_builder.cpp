// Base-system flow walkthrough (paper Figure 6, right side).
//
// Plays the system designer's role: specialize the VAPRES architectural
// parameters, run the base-system flow (floorplan -> resource estimate ->
// system-definition files -> static bitstream), inspect the results, and
// write the MHS/MSS/UCF files to ./vapres_base_system/. Then runs the
// application flow (Figure 6, left side) against the finished base
// system for a two-filter application.
#include <cstdio>

#include "flow/app_flow.hpp"
#include "flow/base_system_flow.hpp"

using namespace vapres;

int main() {
  // Step 1 — base-system specification: a roomier variant of the
  // prototype, four PRRs and two IOMs. The XC4VLX25 cannot host this
  // (the flow rejects it: the static region would not fit next to four
  // 640-slice PRRs), so the designer targets the XC4VLX60 the paper
  // also references.
  core::SystemParams params;
  params.name = "vapres_quad";
  params.device = fabric::DeviceGeometry::xc4vlx60();
  params.system_clock_mhz = 100.0;
  core::RsbParams rsb;
  rsb.num_prrs = 4;
  rsb.num_ioms = 2;
  rsb.kr = 2;
  rsb.kl = 2;
  rsb.ki = 1;
  rsb.ko = 1;
  rsb.width_bits = 32;
  rsb.prr_height_clbs = 16;
  rsb.prr_width_clbs = 10;
  params.rsbs = {rsb};

  // Steps 2-3 — design + "synthesis & implementation".
  flow::BaseSystemFlow base_flow;
  const auto base = base_flow.run(params);

  std::printf("=== base-system flow: '%s' on %s ===\n\n",
              base.params.name.c_str(),
              base.params.device.name().c_str());
  std::printf("%s\n", base.floorplan.render_ascii().c_str());

  std::printf("resource estimate (static region):\n");
  for (const auto& item : base.resources.items) {
    std::printf("  %-24s %6d slices\n", item.name.c_str(), item.slices);
  }
  std::printf("  %-24s %6d slices (%.1f%% of device)\n", "TOTAL",
              base.resources.total(), base.static_utilization());
  std::printf("static bitstream: %lld bytes\n\n",
              static_cast<long long>(base.static_bitstream.size_bytes));

  const std::string dir = "vapres_base_system";
  flow::BaseSystemFlow::write_files(base, dir);
  std::printf("system definition written to ./%s/ (system.mhs, "
              "system.mss, system.ucf)\n\n",
              dir.c_str());

  // Application flow against the finished base system.
  const auto lib = hwmodule::ModuleLibrary::standard();
  flow::ApplicationFlow app_flow(base, lib);
  core::KpnAppSpec app;
  app.name = "two_filter_chain";
  app.nodes = {{"smooth", "fir4_smooth"}, {"lp", "fir8_lowpass"}};
  const auto build = app_flow.build(app);
  std::printf("=== application flow: '%s' ===\n", app.name.c_str());
  std::printf("partial bitstreams generated: %zu (one per module x PRR "
              "pairing that fits)\n",
              build.bitstreams.size());
  for (const auto& bs : build.bitstreams) {
    std::printf("  %-14s -> %-24s %6lld bytes\n", bs.module_id.c_str(),
                bs.target_prr.c_str(),
                static_cast<long long>(bs.size_bytes));
  }
  if (!build.unplaceable_modules.empty()) {
    std::printf("unplaceable modules:\n");
    for (const auto& m : build.unplaceable_modules) {
      std::printf("  %s [%s]: %s\n", m.module_id.c_str(),
                  flow::unplaceable_reason_name(m.reason), m.detail.c_str());
    }
  }

  // The flow's output parameters construct a working runtime system.
  core::VapresSystem sys(base.params);
  std::printf("\nconstructed runtime system: %d PRRs, %d IOMs, first PRR "
              "at %s\n",
              sys.rsb().num_prrs(), sys.rsb().num_ioms(),
              sys.rsb().prr(0).rect().to_string().c_str());
  return 0;
}
