// Spec-driven system construction with automatic clock assignment.
//
// Demonstrates the "scripting tool" workflow the paper names as future
// work (Section VI): the whole base system comes from a text spec file,
// a multirate application (decimator chain) is rate-analyzed to derive
// each module's minimum local clock from the DCM/PMCD ladder, and the
// run is observed through the telemetry snapshot and a VCD waveform
// dump (vapres_run.vcd, openable in any waveform viewer).
#include <cstdio>
#include <fstream>
#include <optional>

#include "core/assembler.hpp"
#include "core/stats.hpp"
#include "core/system.hpp"
#include "flow/rate_analyzer.hpp"
#include "flow/spec.hpp"
#include "sim/vcd.hpp"

using namespace vapres;
using comm::Word;

namespace {

constexpr const char* kSpec = R"(
# Multirate audio front-end on the VLX60
system vapres_multirate
device xc4vlx60
clock 100
prr_clocks 100 25
sdram 67108864
rsb
  prrs 3
  ioms 1
  width 32
  lanes 2 2
  ports 1 1
  fifo_depth 512
  prr_size 16 4
end
)";

}  // namespace

int main() {
  // 1. Base system from the spec text (files work too:
  //    flow::load_system_spec("system.vapres")).
  core::SystemParams params = flow::parse_system_spec(kSpec);
  std::printf("parsed spec: system '%s' on %s, %d PRRs\n",
              params.name.c_str(), params.device.name().c_str(),
              params.rsbs[0].num_prrs);

  // 2. The application: saturate -> decim2 -> decim4. Downstream of the
  //    decimators the stream slows 8x, so their PRRs can clock down.
  core::KpnAppSpec app;
  app.name = "multirate_frontend";
  app.nodes = {{"clamp", "saturate_4k"},
               {"half", "decim2"},
               {"eighth", "decim4"}};
  app.edges = {{"iom:0", "clamp", 0, 0},
               {"clamp", "half", 0, 0},
               {"half", "eighth", 0, 0},
               {"eighth", "iom:0", 0, 0}};

  // 3. Rate analysis: source at 20 Mwords/s, ladder {100, 25} MHz (the
  //    two BUFGMUX inputs of this base system).
  const auto lib = hwmodule::ModuleLibrary::standard();
  flow::RateAnalyzer analyzer(lib);
  const auto report = analyzer.analyze(app);
  const double source_rate = 20.0;  // Mwords/s
  const auto clocks = report.assign_clocks(source_rate, {25.0, 100.0});
  std::printf("\nrate analysis at %.0f Mwords/s source:\n", source_rate);
  for (const auto& [node, mhz] : clocks) {
    std::printf("  %-8s in %.3f out %.3f words/source-word -> clock %.0f "
                "MHz\n",
                node.c_str(), report.nodes.at(node).input_rate.value(),
                report.nodes.at(node).output_rate.value(), mhz);
  }

  // 4. Build, assemble, apply the derived clocks via CLK_sel.
  core::VapresSystem sys(std::move(params));
  sys.bring_up_all_sites();
  core::RuntimeAssembler assembler(sys);
  const auto assembly = assembler.assemble(app);
  for (const auto& [node, mhz] : clocks) {
    const int prr = assembly.placement.at(node);
    if (mhz < 100.0) {  // BUFGMUX input 1 = 25 MHz in this base system
      sys.socket_set_bits(sys.rsb().prr_socket_address(prr),
                          core::PrSocket::kClkSel, true);
    }
    std::printf("  node %-8s in PRR %d clocked at %.0f MHz\n",
                node.c_str(), prr, mhz);
  }

  // 5. Stream with a VCD dump of the decimator chain's progress.
  std::ofstream vcd_file("vapres_run.vcd");
  sim::VcdWriter vcd(vcd_file);
  core::Rsb& rsb = sys.rsb();
  for (const auto& [node, prr] : assembly.placement) {
    vcd.add_probe(node + "_words_in", [&rsb, p = prr] {
      return static_cast<std::uint32_t>(
          rsb.prr(p).consumer(0).words_received());
    });
  }

  int n = 0;
  rsb.iom(0).set_source_generator(
      [&n]() -> std::optional<Word> {
        if (n >= 4000) return std::nullopt;
        return static_cast<Word>((n++ % 64) * 256);
      },
      /*interval=*/5);  // 20 Mwords/s at the 100 MHz system clock
  for (int i = 0; i < 300; ++i) {
    sys.run_system_cycles(100);
    vcd.sample(sys.sim().now());
  }

  // 6. Results + telemetry.
  std::printf("\noutput words at the IOM: %zu (expected ~%d: input/8)\n",
              rsb.iom(0).received().size(), 4000 / 8);
  const auto stats = core::collect_stats(sys);
  std::printf("%s", stats.to_string().c_str());
  std::printf("VCD waveform written to vapres_run.vcd (%zu probes)\n",
              vcd.signal_count());
  return 0;
}
