// Quickstart: build a VAPRES base system, load one hardware module, and
// stream data through it — the Table-2 API end to end.
//
//   $ ./quickstart
//
// Walks through: system construction (the ML401 prototype configuration),
// bring-up, bitstream synthesis + SDRAM staging, PRR reconfiguration via
// vapres_array2icap, streaming-channel establishment, and reading the
// processed stream back at the IOM.
#include <cstdio>
#include <vector>

#include "core/api.hpp"
#include "core/system.hpp"

using namespace vapres;

int main() {
  // 1. The base system: the paper's ML401/XC4VLX25 prototype — one RSB
  //    with two 640-slice PRRs and one IOM, switch boxes at 100 MHz.
  core::VapresSystem sys(core::SystemParams::prototype());
  sys.bring_up_all_sites();
  std::printf("Base system '%s' on %s: %d PRR(s), %d IOM(s)\n",
              sys.params().name.c_str(), sys.params().device.name().c_str(),
              sys.rsb().num_prrs(), sys.rsb().num_ioms());

  // 2. Application side: synthesize the 'gain_x2' module for PRR 0 and
  //    stage its partial bitstream in SDRAM (vapres_cf2array at startup).
  const std::string key = sys.preload_sdram("gain_x2", 0, 0);
  std::printf("Staged partial bitstream '%s' (%lld bytes)\n", key.c_str(),
              static_cast<long long>(sys.sdram().read(key).size_bytes));

  // 3. Reconfigure PRR 0 (vapres_array2icap; ~3 ms simulated for this
  //    PRR at the calibrated rate).
  const int ok = core::api::vapres_array2icap(sys, key);
  std::printf("vapres_array2icap -> %d; PRR0 now hosts '%s'\n", ok,
              sys.rsb().prr(0).loaded_module().c_str());

  // 4. Establish streaming channels IOM -> PRR0 -> IOM.
  core::Rsb& rsb = sys.rsb();
  auto in = sys.connect(0, rsb.iom_producer(0), rsb.prr_consumer(0));
  auto out = sys.connect(0, rsb.prr_producer(0), rsb.iom_consumer(0));
  std::printf("Channels established: in=%s out=%s\n",
              in ? "yes" : "NO", out ? "yes" : "NO");

  // 5. Stream ten samples through and read the result.
  sys.rsb().iom(0).set_source_data({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  sys.run_system_cycles(200);

  std::printf("Output stream:");
  for (comm::Word w : sys.rsb().iom(0).received()) std::printf(" %u", w);
  std::printf("\n(expected: each input doubled)\n");
  return 0;
}
