// Multi-application streaming server on one VAPRES fabric.
//
// The ApplicationScheduler plays operating system: a fixed-seed random
// stream of two dozen application requests (different module chains,
// stream rates, and priorities) arrives over time, apps depart again,
// and the scheduler keeps the fabric packed — admitting directly when a
// footprint-compatible PRR is free, defragmenting with live hitless
// relocations when capacity exists but sits in the wrong slots, and
// preempting the lowest-priority app when a high-priority request finds
// every IOM channel busy. The final accounting table shows, per app,
// what was decided and why, and what each admission cost the MicroBlaze.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/system.hpp"
#include "obs/bus.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "sim/random.hpp"

using namespace vapres;

namespace {

core::SystemParams server_params() {
  core::SystemParams p;
  p.name = "appserver";
  core::RsbParams& r = p.rsbs[0];
  r.num_prrs = 4;
  r.num_ioms = 3;
  r.ki = 1;
  r.ko = 1;
  r.kr = 3;
  r.kl = 3;
  // Two big and two small PRRs, one per clock region: a deliberately
  // fragmentation-prone floorplan.
  p.prr_rects = {fabric::ClbRect{0, 0, 16, 10},
                 fabric::ClbRect{16, 0, 16, 10},
                 fabric::ClbRect{32, 0, 16, 4},
                 fabric::ClbRect{48, 0, 16, 4}};
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace=<file>: capture every subsystem on the event bus and export
  // a Chrome trace_event JSON (load it in Perfetto / chrome://tracing).
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }
  if (!trace_path.empty()) {
    // Everything except the kernel lane: a full server run emits tens
    // of thousands of domain sleep/wake instants, which would evict the
    // control-plane spans (scheduler decisions, switch steps, cache
    // traffic) from the bounded ring. With the kernel lane off, the
    // default 64Ki ring holds the whole run.
    obs::EventBus::instance().enable(
        ~0u & ~obs::EventBus::bit(obs::Subsystem::kKernel));
  }

  core::VapresSystem sys(server_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);  // best-fit, defrag, preemption

  // A fixed seed makes every run of this example print the same story.
  sim::SplitMix64 rng(0xA5515EEDULL);

  struct Flavor {
    const char* tag;
    std::vector<std::string> modules;
  };
  const std::vector<Flavor> flavors = {
      {"tap", {"passthrough"}},
      {"amp", {"gain_x2"}},
      {"bias", {"offset_100"}},
      {"crc", {"checksum"}},
      {"avg", {"ma8"}},
      {"smooth", {"fir4_smooth"}},
      {"amp+bias", {"gain_x2", "offset_100"}},
  };

  std::printf("=== multi-app server: 24 random arrivals on %s ===\n\n",
              sys.params().name.c_str());
  for (int i = 0; i < 24; ++i) {
    const Flavor& f = flavors[rng.next_below(flavors.size())];
    sched::AppRequest req;
    req.name = std::string(f.tag) + "-" + std::to_string(i);
    req.modules = f.modules;
    req.priority = 1 + static_cast<int>(rng.next_below(3));
    req.source_interval_cycles = static_cast<int>(2 << rng.next_below(3));
    const int id = sched.submit(req);
    sched.run_admission();

    const sched::AppRecord& a = sched.app(id);
    std::printf("[t=%9llu] %-10s prio %d  1/%d words  -> %-22s %s\n",
                static_cast<unsigned long long>(sys.mb().cycle()),
                a.request.name.c_str(), a.request.priority,
                a.request.source_interval_cycles,
                sched::verdict_name(a.verdict),
                a.reject_reason.empty() ? "" : a.reject_reason.c_str());

    sys.run_system_cycles(400);

    // Random departures: streaming apps finish and free their slots.
    const auto running = sched.running_apps();
    if (running.size() >= 3 ||
        (!running.empty() && rng.chance(0.35))) {
      const int gone = running[rng.next_below(running.size())];
      std::printf("             %-10s leaves (streamed %zu words)\n",
                  sched.app(gone).request.name.c_str(),
                  sched.received_words(gone).size());
      sched.stop(gone);
    }
  }

  // Let the survivors stream a little longer, then report.
  sys.run_system_cycles(5'000);
  std::printf("\n%s\n", sched.accounting().to_string().c_str());
  std::printf("fabric utilization now: %.1f%%  (free PRRs: %d/4)\n",
              100.0 * sched.fabric_utilization(),
              sched.fabric().free_count());
  const auto stats = core::collect_stats(sys);
  std::printf("words discarded fabric-wide: %llu (hitless: must be 0)\n",
              static_cast<unsigned long long>(stats.total_discarded()));

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    obs::write_chrome_trace(out);
    std::printf("\nwrote Chrome trace (%zu events, %llu dropped) to %s\n",
                obs::EventBus::instance().size(),
                static_cast<unsigned long long>(
                    obs::EventBus::instance().dropped()),
                trace_path.c_str());
    std::printf("%s\n", obs::Registry::instance().to_string().c_str());
  }
  return 0;
}
