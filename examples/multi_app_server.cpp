// Multi-application streaming server on one VAPRES fabric.
//
// The ApplicationScheduler plays operating system: a fixed-seed stream
// of two dozen application requests (different module chains, stream
// rates, and priorities) arrives over time, apps depart again, and the
// scheduler keeps the fabric packed — admitting directly when a
// footprint-compatible PRR is free, defragmenting with live hitless
// relocations when capacity exists but sits in the wrong slots, and
// preempting the lowest-priority app when a high-priority request finds
// every IOM channel busy. The final accounting table shows, per app,
// what was decided and why, and what each admission cost the MicroBlaze.
//
// The workload comes from the same seeded generator the soak harness
// runs at 10^4..10^6 lifetimes (src/load/scenario.*, docs/LOADGEN.md):
// this example is the standard class mix on the standard server
// floorplan, scaled down to a readable 24-submission story.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/stats.hpp"
#include "core/system.hpp"
#include "fleet/controlplane.hpp"
#include "load/scenario.hpp"
#include "obs/bus.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "snap/system_snapshot.hpp"

using namespace vapres;

namespace {

/// The example app mix over one demo-scale Poisson phase: interarrivals
/// short enough that arrivals pile onto a busy fabric, plus adversarial
/// churn so departures race fresh admissions. A fixed seed makes every
/// run print the same story.
load::ScenarioSpec demo_spec(std::uint64_t seed) {
  load::ScenarioSpec spec;
  spec.seed = seed;
  spec.classes = load::standard_classes();
  load::Phase ph;
  ph.name = "demo";
  ph.arrivals = load::Arrivals::kPoisson;
  ph.mean_interarrival_cycles = 2'000.0;
  ph.submissions = 24;
  ph.churn_stop_probability = 0.45;
  spec.phases = {ph};
  return spec;
}

/// --fleet: the same story at fleet scale — a 2-fabric control plane
/// routes tenant submissions, moves an app across fabrics mid-stream,
/// and finishes with the operator-facing fleet_status() dump (journal
/// version, per-agent restart ledger, per-fabric occupancy from the
/// state table — docs/CONTROLPLANE.md).
int run_fleet_demo(std::uint64_t seed, const std::string& flight_dir) {
  fleet::FleetSpec fs = fleet::FleetSpec::uniform(2);
  // Health monitoring on the standard rule set (docs/HEALTH.md); ticks
  // are taken every few arrivals below.
  fs.health.enabled = true;
  fs.health.rules = fleet::standard_health_rules(fs);
  fleet::ControlPlane fc(fs);
  if (!flight_dir.empty()) fc.set_flight_dir(flight_dir);
  load::ScenarioSpec spec =
      load::ScenarioSpec::standard_fleet(seed, 24, 3, fc.num_fabrics());
  load::ScenarioGenerator gen(spec);
  std::printf("=== fleet control plane: %llu seeded arrivals on %d "
              "fabrics ===\n\n",
              static_cast<unsigned long long>(gen.spec().total_submissions()),
              fc.num_fabrics());

  while (auto ev = gen.next()) {
    fc.advance_to(ev->at_cycle);
    const std::string tenant = "t" + std::to_string(ev->tenant);
    const fleet::RouteDecision d = fc.submit(tenant, ev->request);
    std::printf("[t=%9llu] %-3s %-10s -> %-8s %s\n",
                static_cast<unsigned long long>(fc.now()), tenant.c_str(),
                ev->request.name.c_str(),
                d.admitted ? fc.fabric_name(d.fabric).c_str() : "rejected",
                d.admitted ? "" : d.reason.c_str());
    if (ev->migrate && !fc.running_ids().empty()) {
      const int id = fc.running_ids().front();
      const int dst = (fc.locate(id)->fabric + 1) % fc.num_fabrics();
      const fleet::MigrateResult mr = fc.migrate(id, dst);
      std::printf("             fleet app %d -> %s: %s\n", id,
                  fc.fabric_name(dst).c_str(),
                  fleet::migrate_outcome_name(mr.outcome));
    }
    if (ev->churn_stop && !fc.running_ids().empty()) {
      const int gone = fc.running_ids().front();
      std::printf("             fleet app %d (%s) leaves\n", gone,
                  fc.tenant_of(gone).c_str());
      fc.stop(gone);
    }
    if ((ev->sequence + 1) % 8 == 0) {
      const std::uint64_t tripped = fc.health_tick();
      if (tripped > 0) {
        std::printf("             health tick %llu: %llu rule(s) tripped\n",
                    static_cast<unsigned long long>(fc.health_ticks()),
                    static_cast<unsigned long long>(tripped));
      }
    }
  }
  fc.retire_terminal();

  std::printf("\n%s\n", fc.fleet_status().c_str());
  std::printf("%s\n", obs::Registry::instance().to_string().c_str());
  return 0;
}

/// --restore: rebuild the fabric and scheduler from a snapshot file
/// written by --checkpoint (docs/SNAPSHOT.md), let the survivors stream
/// on, and print the same closing report a fresh run would.
int run_restored(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read snapshot file %s\n", path.c_str());
    return 1;
  }
  const std::string blob((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  auto sys = snap::SystemSnapshot::restore_system(blob, load::server_params());
  auto sched = snap::SystemSnapshot::restore_scheduler(blob, *sys);
  std::printf("=== multi-app server: restored from %s (epoch %llu, "
              "%zu running apps) ===\n\n",
              path.c_str(),
              static_cast<unsigned long long>(snap::SystemSnapshot::epoch(blob)),
              sched->running_apps().size());

  sys->run_system_cycles(5'000);
  std::printf("%s\n", sched->accounting().to_string().c_str());
  std::printf("fabric utilization now: %.1f%%  (free PRRs: %d/4)\n",
              100.0 * sched->fabric_utilization(),
              sched->fabric().free_count());
  const auto stats = core::collect_stats(*sys);
  std::printf("words discarded fabric-wide: %llu (hitless: must be 0)\n",
              static_cast<unsigned long long>(stats.total_discarded()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace=<file>: capture every subsystem on the event bus and export
  // a Chrome trace_event JSON (load it in Perfetto / chrome://tracing).
  // --seed=<n>: reroll the workload (the default seed's story includes
  // direct admissions, a defrag relocation, preemption, and rejection).
  // --fleet: route the workload through a 2-fabric control plane
  // instead and print its fleet_status() dump.
  // --checkpoint=<file>: after the workload drains, write a full-system
  // snapshot (fabric + scheduler, docs/SNAPSHOT.md) to <file>.
  // --restore=<file>: skip the workload and resume from a snapshot
  // written by an earlier --checkpoint run.
  // --flight-dir=<dir>: arm the fleet's flight recorder — SLO breaches
  // during --fleet write postmortem bundles there (docs/HEALTH.md).
  std::string trace_path;
  std::string checkpoint_path;
  std::string restore_path;
  std::string flight_dir;
  std::uint64_t seed = 5;
  bool fleet_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 0);
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet_mode = true;
    } else if (std::strncmp(argv[i], "--checkpoint=", 13) == 0) {
      checkpoint_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--restore=", 10) == 0) {
      restore_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--flight-dir=", 13) == 0) {
      flight_dir = argv[i] + 13;
    }
  }
  if (fleet_mode) return run_fleet_demo(seed, flight_dir);
  if (!restore_path.empty()) return run_restored(restore_path);
  if (!trace_path.empty()) {
    // Everything except the kernel lane: a full server run emits tens
    // of thousands of domain sleep/wake instants, which would evict the
    // control-plane spans (scheduler decisions, switch steps, cache
    // traffic) from the bounded ring. With the kernel lane off, the
    // default 64Ki ring holds the whole run.
    obs::EventBus::instance().enable(
        ~0u & ~obs::EventBus::bit(obs::Subsystem::kKernel));
  }

  core::VapresSystem sys(load::server_params());
  sys.bring_up_all_sites();
  sched::ApplicationScheduler sched(sys);  // best-fit, defrag, preemption

  load::ScenarioGenerator gen(demo_spec(seed));
  std::printf("=== multi-app server: %llu seeded arrivals on %s ===\n\n",
              static_cast<unsigned long long>(gen.spec().total_submissions()),
              sys.params().name.c_str());

  while (auto ev = gen.next()) {
    const sim::Cycles now = sys.system_clock().cycle_count();
    if (ev->at_cycle > now) sys.run_system_cycles(ev->at_cycle - now);

    const int id = sched.submit(ev->request);
    sched.run_admission();

    const sched::AppRecord& a = sched.app(id);
    std::printf("[t=%9llu] %-10s prio %d  1/%d words  -> %-22s %s\n",
                static_cast<unsigned long long>(sys.mb().cycle()),
                a.request.name.c_str(), a.request.priority,
                a.request.source_interval_cycles,
                sched::verdict_name(a.verdict),
                a.reject_reason.empty() ? "" : a.reject_reason.c_str());

    sys.run_system_cycles(400);

    // Departures come only from the generator's churn draws, so the
    // fabric fills up and later arrivals must preempt (or get turned
    // away) — the part of the story worth watching.
    const auto running = sched.running_apps();
    if (!running.empty() && ev->churn_stop) {
      const int gone = running.front();
      std::printf("             %-10s leaves (streamed %zu words)\n",
                  sched.app(gone).request.name.c_str(),
                  sched.received_words(gone).size());
      sched.stop(gone);
    }
  }

  // Let the survivors stream a little longer, then report.
  sys.run_system_cycles(5'000);
  std::printf("\n%s\n", sched.accounting().to_string().c_str());
  std::printf("fabric utilization now: %.1f%%  (free PRRs: %d/4)\n",
              100.0 * sched.fabric_utilization(),
              sched.fabric().free_count());
  const auto stats = core::collect_stats(sys);
  std::printf("words discarded fabric-wide: %llu (hitless: must be 0)\n",
              static_cast<unsigned long long>(stats.total_discarded()));

  if (!checkpoint_path.empty()) {
    // Reach the cold-snapshot barrier, then persist the whole system +
    // scheduler; `--restore=<file>` resumes exactly here.
    sys.drain_transfer_path();
    while (sys.prefetch().pending() > 0 || sys.prefetch().staging()) {
      sys.run_system_cycles(64);
    }
    const std::string blob = snap::SystemSnapshot::save(
        sys, gen.spec().total_submissions(), &sched);
    std::ofstream out(checkpoint_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write snapshot file %s\n",
                   checkpoint_path.c_str());
      return 1;
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    std::printf("\nwrote snapshot (%zu bytes, epoch %llu, %zu running "
                "apps) to %s\n",
                blob.size(),
                static_cast<unsigned long long>(
                    snap::SystemSnapshot::epoch(blob)),
                sched.running_apps().size(), checkpoint_path.c_str());
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    obs::write_chrome_trace(out);
    std::printf("\nwrote Chrome trace (%zu events, %llu dropped) to %s\n",
                obs::EventBus::instance().size(),
                static_cast<unsigned long long>(
                    obs::EventBus::instance().dropped()),
                trace_path.c_str());
    std::printf("%s\n", obs::Registry::instance().to_string().c_str());
  }
  return 0;
}
