#include "snap/system_snapshot.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bitman/prefetch.hpp"
#include "bitstream/bitstream.hpp"
#include "comm/fifo.hpp"
#include "comm/flit.hpp"
#include "core/prsocket.hpp"
#include "obs/bus.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "sim/check.hpp"
#include "sim/fault.hpp"
#include "snap/format.hpp"

namespace vapres::snap {

namespace {

/// obs step code for a resumed protocol state (Figure 5 numbering).
std::uint16_t step_code_for(core::ModuleSwitcher::State s) {
  using St = core::ModuleSwitcher::State;
  switch (s) {
    case St::kReconfiguring:     return obs::ev::kStep1Reconfigure;
    case St::kQuiesceUpstream:   return obs::ev::kStep2QuiesceUpstream;
    case St::kRerouteUpstream:   return obs::ev::kStep3RerouteUpstream;
    case St::kSendFlush:         return obs::ev::kStep4SendFlush;
    case St::kCollectState:      return obs::ev::kStep5CollectState;
    case St::kInitNewModule:     return obs::ev::kStep6InitNewModule;
    case St::kWaitIomEos:        return obs::ev::kStep7WaitIomEos;
    case St::kQuiesceSrc:        return obs::ev::kStep8QuiesceSrc;
    case St::kRerouteDownstream: return obs::ev::kStep9RerouteDownstream;
    default:                     return 0;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// save
// ---------------------------------------------------------------------------

std::string SystemSnapshot::save(core::VapresSystem& sys, std::uint64_t epoch,
                                 const sched::ApplicationScheduler* sched,
                                 const core::ModuleSwitcher* switcher) {
  const bool warm = switcher != nullptr;

  // ---- Quiescence preconditions (cold snapshots only). A warm snapshot
  // journals an in-flight switch: the transfer path, MicroBlaze task list,
  // and event queue are allowed to be busy because a warm restart never
  // rebuilds them from the blob — it reconciles against the live fabric.
  if (!warm) {
    VAPRES_REQUIRE(!sys.reconfig_->busy_ && sys.reconfig_->inflight_ == nullptr,
                   "snapshot: reconfiguration in flight (drain first)");
    VAPRES_REQUIRE(!sys.icap_.busy_, "snapshot: ICAP transfer in flight");
    VAPRES_REQUIRE(sys.mb_->tasks_.empty(),
                   "snapshot: software tasks still registered");
    VAPRES_REQUIRE(sys.mb_->on_idle_ == nullptr,
                   "snapshot: busy-completion callback pending");
    VAPRES_REQUIRE(sys.mb_->intc_ == nullptr,
                   "snapshot: interrupt controller attached");
    VAPRES_REQUIRE(sys.prefetch_->pending() == 0 && !sys.prefetch_->staging(),
                   "snapshot: prefetch engine not idle");
    VAPRES_REQUIRE(sys.bitman_->staging_.empty() &&
                       sys.bitman_->reserved_bytes_ == 0,
                   "snapshot: bitman staging in flight");
    for (const auto& [key, e] : sys.bitman_->entries_) {
      VAPRES_REQUIRE(e.pins == 0, "snapshot: pinned cache entry " + key);
    }
    const bool wake_armed = sys.mb_->busy_wake_.has_value();
    VAPRES_REQUIRE(sys.sim_.events_.pending() == (wake_armed ? 1u : 0u),
                   "snapshot: pending events other than the busy wake");
    if (sys.mb_->busy_anchored_) {
      VAPRES_REQUIRE(wake_armed &&
                         sys.mb_->busy_wake_cycle_ == sys.mb_->busy_last_cycle_,
                     "snapshot: anchored busy span without its wake armed");
    }
  }
  // A live source generator is an opaque closure; only scheduler-installed
  // generators (counting word streams) can be reconstructed from a journal.
  for (int ri = 0; ri < sys.num_rsbs(); ++ri) {
    core::Rsb& rsb = sys.rsb(ri);
    for (int ii = 0; ii < rsb.num_ioms(); ++ii) {
      for (const auto& src : rsb.iom(ii).sources_) {
        VAPRES_REQUIRE(!(src.generator && sched == nullptr),
                       "snapshot: live ad-hoc source generator is not "
                       "serializable; pass the owning scheduler");
      }
    }
  }

  SnapshotWriter w(epoch);

  // ---- Serialization helpers. Local lambdas inherit this member
  // function's friend access to the component internals.
  const auto put_flit = [&w](const comm::Flit& f) {
    w.u32(f.data);
    w.boolean(f.valid);
  };
  const auto put_fifo = [&w](const comm::Fifo& f) {
    w.u32(static_cast<std::uint32_t>(f.words_.size()));
    for (const comm::Word word : f.words_) w.u32(word);
    w.u64(f.pushed_);
    w.u64(f.popped_);
    w.u64(f.fault_dropped_);
    w.u64(f.fault_duplicated_);
    w.i64(f.high_watermark_);
  };
  const auto put_words = [&w](const std::vector<comm::Word>& v) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const comm::Word word : v) w.u32(word);
  };
  const auto put_producer = [&](const comm::ProducerInterface& p) {
    put_fifo(p.fifo_);
    w.boolean(p.read_enable_);
    put_flit(p.output_);
    put_flit(p.next_output_);
    w.boolean(p.pop_pending_);
    w.u64(p.words_sent_);
    w.u64(p.stall_cycles_);
  };
  const auto put_consumer = [&](const comm::ConsumerInterface& c) {
    put_fifo(c.fifo_);
    w.boolean(c.write_enable_);
    w.i64(c.hops_);
    w.u8(static_cast<std::uint8_t>(c.policy_));
    w.boolean(c.full_feedback_);
    w.boolean(c.next_full_feedback_);
    put_flit(c.pending_);
    w.u64(c.words_received_);
    w.u64(c.words_discarded_);
  };
  const auto put_fsl = [&](const comm::FslLink& l) { put_fifo(l.fifo_); };
  const auto put_bitstream = [&w](const bitstream::PartialBitstream& bs) {
    w.str(bs.module_id);
    w.str(bs.target_prr);
    w.i64(bs.region.row);
    w.i64(bs.region.col);
    w.i64(bs.region.height);
    w.i64(bs.region.width);
    w.i64(bs.size_bytes);
    w.u32(bs.tag);
  };

  // ---- meta: the construction fingerprint a restore must match.
  {
    const core::SystemParams& p = sys.params_;
    w.begin_section("meta");
    w.str(p.name);
    w.str(p.device.name());
    w.f64(p.system_clock_mhz);
    w.f64(p.prr_clock_a_mhz);
    w.f64(p.prr_clock_b_mhz);
    w.i64(p.sdram_bytes);
    w.u32(static_cast<std::uint32_t>(p.rsbs.size()));
    for (const core::RsbParams& r : p.rsbs) {
      w.i64(r.num_prrs);
      w.i64(r.num_ioms);
      w.i64(r.width_bits);
      w.i64(r.kr);
      w.i64(r.kl);
      w.i64(r.ki);
      w.i64(r.ko);
      w.i64(r.fifo_depth);
      w.i64(r.prr_height_clbs);
      w.i64(r.prr_width_clbs);
    }
    w.u32(static_cast<std::uint32_t>(sys.floorplan_.size()));
    for (const fabric::ClbRect& rect : sys.floorplan_) {
      w.i64(rect.row);
      w.i64(rect.col);
      w.i64(rect.height);
      w.i64(rect.width);
    }
    w.end_section();
  }

  // ---- sim: kernel mode, global time, per-domain clock state.
  // KernelStats are deliberately excluded: restore wakes every component,
  // so edge-delivery accounting diverges while architectural state does
  // not (the quiescent() contract guarantees the extra edges are no-ops).
  {
    w.begin_section("sim");
    w.boolean(sys.sim_.activity_driven_);
    w.u64(sys.sim_.now_);
    w.u32(static_cast<std::uint32_t>(sys.sim_.domains().size()));
    for (const auto& d : sys.sim_.domains()) {
      w.str(d->name_);
      w.u64(d->period_ps_);
      w.boolean(d->enabled_);
      w.u64(d->cycle_count_);
      w.u64(d->anchor_ps_);
    }
    w.end_section();
  }

  // ---- mb: busy-span machinery and lifetime counters.
  {
    const proc::Microblaze& mb = *sys.mb_;
    w.begin_section("mb");
    w.u64(mb.busy_pending_);
    w.boolean(mb.busy_anchored_);
    w.u64(mb.busy_last_cycle_);
    const bool wake_armed = mb.busy_wake_.has_value();
    w.boolean(wake_armed);
    // Absolute remaining delay: at restore "now" need not be edge-aligned,
    // so re-arming through arm_busy_wake() would misplace the expiry edge.
    std::uint64_t wake_delay = 0;
    if (wake_armed && !sys.sim_.events_.empty()) {
      wake_delay = sys.sim_.events_.next_time() - sys.sim_.now_;
    }
    w.u64(wake_delay);
    w.u64(mb.total_busy_cycles_);
    w.u64(mb.interrupts_serviced_);
    w.end_section();
  }

  // ---- dcr / icap / reconfig.
  {
    w.begin_section("dcr");
    w.u64(sys.dcr_.accesses_);
    w.end_section();

    w.begin_section("icap");
    w.f64(sys.icap_.port_clock_mhz_);
    w.i64(sys.icap_.total_bytes_);
    w.i64(sys.icap_.transfers_);
    w.i64(sys.icap_.corrupted_);
    w.i64(sys.icap_.timed_out_);
    w.end_section();

    const core::ReconfigManager& rc = *sys.reconfig_;
    w.begin_section("reconfig");
    w.boolean(rc.verify_);
    w.i64(rc.policy_.max_attempts);
    w.u64(rc.policy_.backoff_base_cycles);
    w.boolean(rc.policy_.fallback_to_cf);
    w.f64(rc.last_.storage_cycles);
    w.f64(rc.last_.icap_cycles);
    w.i64(rc.completed_);
    w.i64(rc.retries_);
    w.i64(rc.fallbacks_);
    w.i64(rc.failures_);
    w.end_section();
  }

  // ---- storage: CF files and SDRAM arrays (map order = deterministic).
  {
    w.begin_section("storage");
    const auto cf_files = sys.cf_.list();
    w.u32(static_cast<std::uint32_t>(cf_files.size()));
    for (const std::string& name : cf_files) {
      w.str(name);
      put_bitstream(sys.cf_.read(name));
    }
    const auto arrays = sys.sdram_->list();
    w.u32(static_cast<std::uint32_t>(arrays.size()));
    for (const std::string& key : arrays) {
      w.str(key);
      put_bitstream(sys.sdram_->read(key));
    }
    w.end_section();
  }

  // ---- bitman: cache residency metadata and predictor tables.
  {
    const bitman::BitstreamManager& bm = *sys.bitman_;
    w.begin_section("bitman");
    w.boolean(bm.opt_.stage_on_miss);
    w.i64(bm.opt_.stream_chunk_bytes);
    w.boolean(bm.opt_.predict_next);
    w.u64(bm.stats_.hits);
    w.u64(bm.stats_.misses);
    w.u64(bm.stats_.streamed_misses);
    w.u64(bm.stats_.evictions);
    w.i64(bm.stats_.evicted_bytes);
    w.u64(bm.stats_.staged);
    w.u64(bm.stats_.replaced);
    w.u64(bm.stats_.invalidations);
    w.u64(bm.stats_.prefetch_issued);
    w.u64(bm.stats_.prefetch_completed);
    w.u64(bm.stats_.prefetch_cancelled);
    w.u64(bm.stats_.prefetch_useful);
    w.u64(bm.use_tick_);
    w.u32(static_cast<std::uint32_t>(bm.entries_.size()));
    for (const auto& [key, e] : bm.entries_) {
      w.str(key);
      w.u64(e.last_use);
      w.boolean(e.prefetched);
      w.boolean(e.demand_hit_seen);
    }
    w.u32(static_cast<std::uint32_t>(bm.last_module_.size()));
    for (const auto& [prr, mod] : bm.last_module_) {
      w.str(prr);
      w.str(mod);
    }
    w.u32(static_cast<std::uint32_t>(bm.next_after_.size()));
    for (const auto& [prr, table] : bm.next_after_) {
      w.str(prr);
      w.u32(static_cast<std::uint32_t>(table.size()));
      for (const auto& [last, next] : table) {
        w.str(last);
        w.str(next);
      }
    }
    w.end_section();
  }

  // ---- per-RSB fabric state: boxes, IOMs, PRRs, channels.
  for (int ri = 0; ri < sys.num_rsbs(); ++ri) {
    core::Rsb& rsb = sys.rsb(ri);
    comm::SwitchFabric& fab = rsb.fabric();
    const comm::SwitchBoxShape& sh = fab.shape();
    w.begin_section("rsb" + std::to_string(ri));

    // Switch boxes: input registers, mux selects, outputs, stuck latches.
    w.u32(static_cast<std::uint32_t>(fab.num_boxes()));
    for (int b = 0; b < fab.num_boxes(); ++b) {
      const comm::SwitchBox& box = fab.box(b);
      for (int i = 0; i < sh.num_inputs(); ++i) {
        put_flit(box.regs_[static_cast<std::size_t>(i)]);
        put_flit(box.regs_next_[static_cast<std::size_t>(i)]);
      }
      for (int o = 0; o < sh.num_outputs(); ++o) {
        w.i64(box.selects_[static_cast<std::size_t>(o)]);
        put_flit(box.outputs_[static_cast<std::size_t>(o)]);
        w.boolean(box.stuck_[static_cast<std::size_t>(o)]);
      }
      w.i64(box.stuck_events_);
    }

    // IOMs: socket, FSLs, source/sink halves.
    w.u32(static_cast<std::uint32_t>(rsb.num_ioms()));
    for (int ii = 0; ii < rsb.num_ioms(); ++ii) {
      core::Iom& iom = rsb.iom(ii);
      w.u32(iom.socket().value());
      w.u64(iom.history_limit_);
      put_fsl(*iom.fsl_to_mb_);
      put_fsl(*iom.fsl_from_mb_);
      w.u32(static_cast<std::uint32_t>(iom.sources_.size()));
      for (const auto& s : iom.sources_) {
        w.boolean(static_cast<bool>(s.generator));
        w.i64(s.interval_cycles);
        w.u64(s.next_emit_cycle);
        w.boolean(s.pending.has_value());
        w.u32(s.pending.value_or(0));
        w.u64(s.words_emitted);
        w.u64(s.stalls);
        put_producer(*s.interface);
      }
      w.u32(static_cast<std::uint32_t>(iom.sinks_.size()));
      for (const auto& k : iom.sinks_) {
        put_consumer(*k.interface);
        put_words(k.received);
        w.u64(k.words_received);
        w.u64(k.dropped);
        w.u64(k.eos_seen);
        w.boolean(k.have_last_arrival);
        w.u64(k.last_arrival);
        w.u64(k.max_gap);
      }
    }

    // PRRs: module occupancy, socket/perf, wrapper protocol, interfaces.
    w.u32(static_cast<std::uint32_t>(rsb.num_prrs()));
    for (int pi = 0; pi < rsb.num_prrs(); ++pi) {
      core::Prr& prr = rsb.prr(pi);
      hwmodule::ModuleWrapper& wr = *prr.wrapper_;
      const bool loaded = wr.behavior_ != nullptr;
      w.boolean(loaded);
      // loaded_module_ can outlive the module (blank_prr unloads the
      // wrapper but keeps the name); serialize both.
      w.str(prr.loaded_module_);
      w.i64(prr.reconfigurations_);
      w.u32(prr.socket().value());
      w.u8(static_cast<std::uint8_t>(prr.perf_->selected()));
      w.u8(static_cast<std::uint8_t>(wr.phase_));
      w.boolean(wr.in_reset_);
      w.boolean(wr.isolated_);
      w.u64(wr.words_processed_);
      put_words(wr.state_out_);
      w.u64(wr.state_cursor_);
      w.i64(wr.load_remaining_);
      put_words(wr.state_in_);
      if (loaded) {
        VAPRES_REQUIRE(wr.behavior_->type_id() == prr.loaded_module_,
                       "snapshot: wrapper/module bookkeeping out of sync at " +
                           prr.name());
        put_words(wr.behavior_->save_state());
        put_words(wr.behavior_->snapshot_extra());
      }
      for (const auto& c : prr.consumers_) put_consumer(*c);
      for (const auto& p : prr.producers_) put_producer(*p);
      put_fsl(*prr.fsl_to_mb_);
      put_fsl(*prr.fsl_from_mb_);
    }

    // Channels: id, spec, policy, route id, feedback pipeline.
    const core::ChannelManager& cm =
        const_cast<core::Rsb&>(rsb).channels();
    w.u32(static_cast<std::uint32_t>(cm.channels_.size()));
    for (const auto& [id, e] : cm.channels_) {
      w.u32(id);
      w.i64(e.spec.producer_box);
      w.i64(e.spec.producer_channel);
      w.i64(e.spec.consumer_box);
      w.i64(e.spec.consumer_channel);
      w.u32(static_cast<std::uint32_t>(e.spec.lanes.size()));
      for (const int lane : e.spec.lanes) w.i64(lane);
      w.u32(e.route);
      const auto& route = fab.routes_.at(e.route);
      w.u8(static_cast<std::uint8_t>(route.consumer->policy_));
      w.u32(static_cast<std::uint32_t>(route.feedback->stages_.size()));
      for (const bool st : route.feedback->stages_) w.boolean(st);
      w.boolean(route.feedback->output_);
    }
    w.u32(cm.next_id_);
    w.u32(fab.next_route_id_);
    w.end_section();
  }

  // ---- fault: the process-wide injector (RNG stream + scoreboard).
  {
    const sim::FaultInjector& fi = sim::FaultInjector::instance();
    w.begin_section("fault");
    w.boolean(fi.enabled_);
    w.u64(fi.rng_.state());
    for (const auto& sp : fi.sites_) {
      w.f64(sp.probability);
      w.u64(sp.armed_at);
      w.u64(sp.armed_count);
      w.u64(sp.opportunities);
      w.u64(sp.injected);
    }
    for (const std::uint64_t rec : fi.recoveries_) w.u64(rec);
    w.end_section();
  }

  // ---- obs: the process-wide metrics registry. Only nonzero values are
  // serialized: a restored process may carry extra zero-valued
  // registrations the baseline run lacks at the same point, and those
  // must not change the bytes of a later snapshot.
  {
    w.begin_section("obs");
    obs::Registry& reg = obs::Registry::instance();
    const obs::MetricsSnapshot ms = reg.snapshot();
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    for (const auto& [name, v] : ms.counters) {
      if (v != 0) counters.emplace_back(name, v);
    }
    w.u32(static_cast<std::uint32_t>(counters.size()));
    for (const auto& [name, v] : counters) {
      w.str(name);
      w.u64(v);
    }
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    for (const auto& [name, v] : ms.gauges) {
      if (v != 0) gauges.emplace_back(name, v);
    }
    w.u32(static_cast<std::uint32_t>(gauges.size()));
    for (const auto& [name, v] : gauges) {
      w.str(name);
      w.i64(v);
    }
    std::vector<std::string> hists;
    for (const auto& h : ms.histograms) {
      if (h.count > 0) hists.push_back(h.name);
    }
    w.u32(static_cast<std::uint32_t>(hists.size()));
    for (const std::string& name : hists) {
      const obs::Histogram& h = reg.histogram(name);
      w.str(name);
      for (const std::uint64_t b : h.buckets_) w.u64(b);
      w.u64(h.count_);
      w.u64(h.sum_);
      w.u64(h.min_);
      w.u64(h.max_);
    }
    w.end_section();
  }

  // ---- sched (optional): app records, occupancy, counters.
  if (sched != nullptr) {
    const sched::ApplicationScheduler& sc = *sched;
    w.begin_section("sched");
    w.i64(sc.opt_.rsb_index);
    w.u8(static_cast<std::uint8_t>(sc.opt_.policy));
    w.boolean(sc.opt_.enable_defrag);
    w.boolean(sc.opt_.enable_preemption);
    w.i64(sc.opt_.max_defrag_migrations);
    w.u8(static_cast<std::uint8_t>(sc.opt_.source));
    w.boolean(sc.opt_.prefetch_hints);
    w.i64(sc.first_id_);
    w.i64(sc.preemptions_);
    w.i64(sc.defrag_migrations_);
    w.i64(sc.migration_rollbacks_);
    w.i64(sc.retired_admitted_);
    w.i64(sc.retired_admitted_after_defrag_);
    w.i64(sc.retired_admitted_after_preempt_);
    w.i64(sc.retired_rejected_);
    // FabricMap slots.
    w.u32(static_cast<std::uint32_t>(sc.map_.num_slots()));
    for (int p = 0; p < sc.map_.num_slots(); ++p) {
      const sched::PrrSlot& slot = sc.map_.slot(p);
      w.boolean(slot.free);
      w.i64(slot.app_id);
      w.i64(slot.chain_pos);
      w.str(slot.module_id);
      w.i64(slot.module_slices);
      w.boolean(slot.migratable);
    }
    // Channel-busy tables.
    const auto put_busy = [&w](const std::vector<std::vector<bool>>& t) {
      w.u32(static_cast<std::uint32_t>(t.size()));
      for (const auto& row : t) {
        w.u32(static_cast<std::uint32_t>(row.size()));
        for (const bool b : row) w.boolean(b);
      }
    };
    put_busy(sc.source_busy_);
    put_busy(sc.sink_busy_);
    // App records.
    core::Rsb& srsb = sys.rsb(sc.opt_.rsb_index);
    w.u32(static_cast<std::uint32_t>(sc.apps_.size()));
    for (const sched::AppRecord& rec : sc.apps_) {
      w.i64(rec.id);
      w.str(rec.request.name);
      w.u32(static_cast<std::uint32_t>(rec.request.modules.size()));
      for (const std::string& m : rec.request.modules) w.str(m);
      w.i64(rec.request.priority);
      w.i64(rec.request.source_interval_cycles);
      w.u64(rec.request.source_words);
      w.u8(static_cast<std::uint8_t>(rec.state));
      w.u8(static_cast<std::uint8_t>(rec.verdict));
      w.str(rec.reject_reason);
      w.i64(rec.source.iom);
      w.i64(rec.source.channel);
      w.i64(rec.sink.iom);
      w.i64(rec.sink.channel);
      w.u32(static_cast<std::uint32_t>(rec.prrs.size()));
      for (const int p : rec.prrs) w.i64(p);
      w.u32(static_cast<std::uint32_t>(rec.channels.size()));
      for (const core::ChannelId c : rec.channels) w.u32(c);
      w.u32(static_cast<std::uint32_t>(rec.clocks_mhz.size()));
      for (const double c : rec.clocks_mhz) w.f64(c);
      w.u64(rec.submitted_at);
      w.u64(rec.launched_at);
      w.u64(rec.stopped_at);
      w.u64(rec.admission_mb_cycles);
      w.u64(rec.base_words_emitted);
      w.u64(rec.base_words_received);
      w.u64(rec.final_words_in);
      w.u64(rec.final_words_out);
      w.i64(rec.migrations);
      // Whether the source generator is still installed right now — a
      // just-exhausted generator is nulled only on its next commit, so
      // this cannot be derived from word counts alone.
      bool generator_live = false;
      if (rec.running()) {
        generator_live = static_cast<bool>(
            srsb.iom(rec.source.iom)
                .sources_[static_cast<std::size_t>(rec.source.channel)]
                .generator);
      }
      w.boolean(generator_live);
    }
    w.end_section();
  }

  // ---- switch (optional, warm-only): the in-flight protocol journal.
  if (switcher != nullptr) {
    const core::ModuleSwitcher& sw = *switcher;
    w.begin_section("switch");
    w.i64(sw.req_.rsb_index);
    w.i64(sw.req_.src_prr);
    w.i64(sw.req_.dst_prr);
    w.str(sw.req_.new_module_id);
    w.u32(sw.req_.upstream);
    w.u32(sw.req_.downstream);
    w.i64(sw.req_.eos_iom);
    w.u8(static_cast<std::uint8_t>(sw.req_.source));
    w.u8(static_cast<std::uint8_t>(sw.state_));
    w.u64(sw.timeline_.started);
    w.u64(sw.timeline_.reconfig_done);
    w.u64(sw.timeline_.input_rerouted);
    w.u64(sw.timeline_.state_collected);
    w.u64(sw.timeline_.module_initialized);
    w.u64(sw.timeline_.iom_eos_seen);
    w.u64(sw.timeline_.completed);
    w.u64(sw.timeline_.aborted);
    w.boolean(sw.reconfig_complete_);
    w.boolean(sw.reconfig_ok_);
    put_words(sw.collected_state_);
    put_words(sw.monitoring_);
    w.boolean(sw.saw_header_);
    w.i64(sw.expected_words_);
    w.u32(sw.new_upstream_);
    w.u32(sw.new_downstream_);
    w.end_section();
  }

  return w.finish();
}

// ---------------------------------------------------------------------------
// blob probes
// ---------------------------------------------------------------------------

std::uint64_t SystemSnapshot::epoch(const std::string& blob) {
  return SnapshotReader(blob).epoch();
}

bool SystemSnapshot::has_scheduler(const std::string& blob) {
  return SnapshotReader(blob).has_section("sched");
}

bool SystemSnapshot::has_switch(const std::string& blob) {
  return SnapshotReader(blob).has_section("switch");
}

// ---------------------------------------------------------------------------
// cold restore
// ---------------------------------------------------------------------------

std::unique_ptr<core::VapresSystem> SystemSnapshot::restore_system(
    const std::string& blob, core::SystemParams params,
    hwmodule::ModuleLibrary library) {
  const SnapshotReader r(blob);
  VAPRES_REQUIRE(!r.has_section("switch"),
                 "cold restore refuses a warm snapshot (in-flight switch "
                 "journal); use warm_restart against the live fabric");
  const bool has_sched = r.has_section("sched");

  // ---- Deserialization helpers (friend access via local lambdas).
  const auto get_flit = [&r]() {
    comm::Flit f;
    f.data = r.u32();
    f.valid = r.boolean();
    return f;
  };
  const auto get_fifo = [&](comm::Fifo& f) {
    const std::uint32_t n = r.u32();
    f.words_.clear();
    for (std::uint32_t i = 0; i < n; ++i) f.words_.push_back(r.u32());
    f.pushed_ = r.u64();
    f.popped_ = r.u64();
    f.fault_dropped_ = r.u64();
    f.fault_duplicated_ = r.u64();
    f.high_watermark_ = static_cast<int>(r.i64());
  };
  const auto get_words = [&r]() {
    std::vector<comm::Word> v;
    const std::uint32_t n = r.u32();
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.u32());
    return v;
  };
  const auto get_producer = [&](comm::ProducerInterface& p) {
    get_fifo(p.fifo_);
    p.read_enable_ = r.boolean();
    p.output_ = get_flit();
    p.next_output_ = get_flit();
    p.pop_pending_ = r.boolean();
    p.words_sent_ = r.u64();
    p.stall_cycles_ = r.u64();
  };
  const auto get_consumer = [&](comm::ConsumerInterface& c) {
    get_fifo(c.fifo_);
    c.write_enable_ = r.boolean();
    c.hops_ = static_cast<int>(r.i64());
    c.policy_ = static_cast<comm::BackpressurePolicy>(r.u8());
    c.full_feedback_ = r.boolean();
    c.next_full_feedback_ = r.boolean();
    c.pending_ = get_flit();
    c.words_received_ = r.u64();
    c.words_discarded_ = r.u64();
  };
  const auto get_fsl = [&](comm::FslLink& l) { get_fifo(l.fifo_); };
  const auto get_bitstream = [&r]() {
    bitstream::PartialBitstream bs;
    bs.module_id = r.str();
    bs.target_prr = r.str();
    bs.region.row = static_cast<int>(r.i64());
    bs.region.col = static_cast<int>(r.i64());
    bs.region.height = static_cast<int>(r.i64());
    bs.region.width = static_cast<int>(r.i64());
    bs.size_bytes = r.i64();
    bs.tag = r.u32();
    return bs;
  };

  // ---- meta: verify the construction fingerprint before building.
  r.open_section("meta");
  VAPRES_REQUIRE(r.str() == params.name, "restore: system name mismatch");
  VAPRES_REQUIRE(r.str() == params.device.name(),
                 "restore: device mismatch");
  VAPRES_REQUIRE(r.f64() == params.system_clock_mhz,
                 "restore: system clock mismatch");
  VAPRES_REQUIRE(r.f64() == params.prr_clock_a_mhz,
                 "restore: PRR clock A mismatch");
  VAPRES_REQUIRE(r.f64() == params.prr_clock_b_mhz,
                 "restore: PRR clock B mismatch");
  VAPRES_REQUIRE(r.i64() == params.sdram_bytes,
                 "restore: SDRAM capacity mismatch");
  VAPRES_REQUIRE(r.u32() == params.rsbs.size(),
                 "restore: RSB count mismatch");
  for (const core::RsbParams& p : params.rsbs) {
    const bool rsb_match =
        r.i64() == p.num_prrs && r.i64() == p.num_ioms &&
        r.i64() == p.width_bits && r.i64() == p.kr && r.i64() == p.kl &&
        r.i64() == p.ki && r.i64() == p.ko && r.i64() == p.fifo_depth &&
        r.i64() == p.prr_height_clbs && r.i64() == p.prr_width_clbs;
    VAPRES_REQUIRE(rsb_match, "restore: RSB parameter mismatch");
  }
  const std::uint32_t n_rects = r.u32();
  std::vector<fabric::ClbRect> saved_floorplan;
  for (std::uint32_t i = 0; i < n_rects; ++i) {
    fabric::ClbRect rect;
    rect.row = static_cast<int>(r.i64());
    rect.col = static_cast<int>(r.i64());
    rect.height = static_cast<int>(r.i64());
    rect.width = static_cast<int>(r.i64());
    saved_floorplan.push_back(rect);
  }

  auto sys = std::make_unique<core::VapresSystem>(std::move(params),
                                                  std::move(library));
  VAPRES_REQUIRE(sys->floorplan_ == saved_floorplan,
                 "restore: PRR floorplan mismatch");

  // ---- sim: read into locals now; the domain overlay is applied after
  // the structural restore (socket CLK_sel writes retune PRR domains).
  struct DomainState {
    std::string name;
    std::uint64_t period_ps = 0;
    bool enabled = false;
    std::uint64_t cycle_count = 0;
    std::uint64_t anchor_ps = 0;
  };
  r.open_section("sim");
  const bool activity_driven = r.boolean();
  const std::uint64_t saved_now = r.u64();
  const std::uint32_t n_domains = r.u32();
  std::vector<DomainState> domain_states;
  for (std::uint32_t i = 0; i < n_domains; ++i) {
    DomainState d;
    d.name = r.str();
    d.period_ps = r.u64();
    d.enabled = r.boolean();
    d.cycle_count = r.u64();
    d.anchor_ps = r.u64();
    domain_states.push_back(std::move(d));
  }
  sys->sim_.set_activity_driven(activity_driven);

  // ---- storage: replay into the fresh (empty) stores via public API.
  {
    r.open_section("storage");
    const std::uint32_t n_cf = r.u32();
    for (std::uint32_t i = 0; i < n_cf; ++i) {
      const std::string name = r.str();
      sys->cf_.store(name, get_bitstream());
    }
    const std::uint32_t n_arrays = r.u32();
    for (std::uint32_t i = 0; i < n_arrays; ++i) {
      const std::string key = r.str();
      sys->sdram_->store(key, get_bitstream());
    }
  }

  // ---- per-RSB structural + raw restore.
  for (int ri = 0; ri < sys->num_rsbs(); ++ri) {
    core::Rsb& rsb = sys->rsb(ri);
    comm::SwitchFabric& fab = rsb.fabric();
    const comm::SwitchBoxShape& sh = fab.shape();
    r.open_section("rsb" + std::to_string(ri));

    // Boxes are read first (section order) but applied last: channel
    // establishment below programs mux selects, so the exact saved box
    // state must overlay afterwards.
    struct BoxState {
      std::vector<comm::Flit> regs, regs_next, outputs;
      std::vector<std::int64_t> selects;
      std::vector<bool> stuck;
      int stuck_events = 0;
    };
    VAPRES_REQUIRE(r.u32() == static_cast<std::uint32_t>(fab.num_boxes()),
                   "restore: switch-box count mismatch");
    std::vector<BoxState> box_states;
    for (int b = 0; b < fab.num_boxes(); ++b) {
      BoxState bs;
      for (int i = 0; i < sh.num_inputs(); ++i) {
        bs.regs.push_back(get_flit());
        bs.regs_next.push_back(get_flit());
      }
      for (int o = 0; o < sh.num_outputs(); ++o) {
        bs.selects.push_back(r.i64());
        bs.outputs.push_back(get_flit());
        bs.stuck.push_back(r.boolean());
      }
      bs.stuck_events = static_cast<int>(r.i64());
      box_states.push_back(std::move(bs));
    }

    // IOMs: socket write first (it toggles interface enables), then
    // overlay the raw source/sink state the write may have touched.
    VAPRES_REQUIRE(r.u32() == static_cast<std::uint32_t>(rsb.num_ioms()),
                   "restore: IOM count mismatch");
    for (int ii = 0; ii < rsb.num_ioms(); ++ii) {
      core::Iom& iom = rsb.iom(ii);
      // Direct slave write (not via the DCR bus) so accesses_ stays flat.
      iom.socket().dcr_write(r.u32());
      iom.history_limit_ = r.u64();
      get_fsl(*iom.fsl_to_mb_);
      get_fsl(*iom.fsl_from_mb_);
      VAPRES_REQUIRE(r.u32() ==
                         static_cast<std::uint32_t>(iom.sources_.size()),
                     "restore: IOM source count mismatch");
      for (auto& s : iom.sources_) {
        const bool has_generator = r.boolean();
        VAPRES_REQUIRE(!has_generator || has_sched,
                       "restore: live generator journaled without a "
                       "scheduler section");
        s.interval_cycles = static_cast<int>(r.i64());
        s.next_emit_cycle = r.u64();
        const bool has_pending = r.boolean();
        const comm::Word pending_word = r.u32();
        s.pending = has_pending ? std::optional<comm::Word>(pending_word)
                                : std::nullopt;
        s.words_emitted = r.u64();
        s.stalls = r.u64();
        get_producer(*s.interface);
      }
      VAPRES_REQUIRE(r.u32() == static_cast<std::uint32_t>(iom.sinks_.size()),
                     "restore: IOM sink count mismatch");
      for (auto& k : iom.sinks_) {
        get_consumer(*k.interface);
        k.received = get_words();
        k.words_received = r.u64();
        k.dropped = r.u64();
        k.eos_seen = r.u64();
        k.have_last_arrival = r.boolean();
        k.last_arrival = r.u64();
        k.max_gap = r.u64();
      }
    }

    // PRRs: reload the module (configuration effect), replay the socket,
    // then overlay wrapper/behaviour/interface raw state.
    VAPRES_REQUIRE(r.u32() == static_cast<std::uint32_t>(rsb.num_prrs()),
                   "restore: PRR count mismatch");
    for (int pi = 0; pi < rsb.num_prrs(); ++pi) {
      core::Prr& prr = rsb.prr(pi);
      hwmodule::ModuleWrapper& wr = *prr.wrapper_;
      const bool loaded = r.boolean();
      const std::string loaded_module = r.str();
      const int reconfigurations = static_cast<int>(r.i64());
      const std::uint32_t socket_value = r.u32();
      const std::uint8_t perf_select = r.u8();
      if (loaded) {
        prr.apply_bitstream(bitstream::PartialBitstream::create(
                                loaded_module, prr.name(), prr.rect()),
                            sys->library_);
      }
      // apply_bitstream bumped reconfigurations_ and set loaded_module_;
      // overlay both after so the exact saved values win. A stale name on
      // an unloaded wrapper (blank_prr leaves it) restores here too.
      prr.loaded_module_ = loaded_module;
      prr.reconfigurations_ = reconfigurations;
      prr.socket().dcr_write(socket_value);
      prr.perf_->dcr_write(perf_select);
      wr.phase_ = static_cast<hwmodule::ModuleWrapper::Phase>(r.u8());
      wr.in_reset_ = r.boolean();
      wr.isolated_ = r.boolean();
      wr.words_processed_ = r.u64();
      wr.state_out_ = get_words();
      wr.state_cursor_ = static_cast<std::size_t>(r.u64());
      wr.load_remaining_ = static_cast<int>(r.i64());
      wr.state_in_ = get_words();
      if (loaded) {
        const std::vector<comm::Word> state = get_words();
        const std::vector<comm::Word> extra = get_words();
        hwmodule::ModuleBehavior& b = *wr.behavior_;
        if (!state.empty() || !b.save_state().empty()) {
          b.restore_state(state);
        }
        if (!extra.empty() || !b.snapshot_extra().empty()) {
          b.restore_extra(extra);
        }
      }
      for (const auto& c : prr.consumers_) get_consumer(*c);
      for (const auto& p : prr.producers_) get_producer(*p);
      get_fsl(*prr.fsl_to_mb_);
      get_fsl(*prr.fsl_from_mb_);
    }

    // Channels: re-establish each saved route under its original ids —
    // replaying ChannelManager::establish could pick different lanes than
    // the saved establish/release interleaving did.
    core::ChannelManager& cm = rsb.channels();
    const std::uint32_t n_channels = r.u32();
    for (std::uint32_t i = 0; i < n_channels; ++i) {
      const core::ChannelId id = r.u32();
      comm::RouteSpec spec;
      spec.producer_box = static_cast<int>(r.i64());
      spec.producer_channel = static_cast<int>(r.i64());
      spec.consumer_box = static_cast<int>(r.i64());
      spec.consumer_channel = static_cast<int>(r.i64());
      const std::uint32_t n_lanes = r.u32();
      for (std::uint32_t l = 0; l < n_lanes; ++l) {
        spec.lanes.push_back(static_cast<int>(r.i64()));
      }
      const comm::RouteId route_id = r.u32();
      const auto policy = static_cast<comm::BackpressurePolicy>(r.u8());
      fab.next_route_id_ = route_id;
      const comm::RouteId got = fab.establish(spec, policy);
      VAPRES_REQUIRE(got == route_id, "restore: route id diverged");
      cm.channels_.emplace(id, core::ChannelManager::Entry{route_id, spec});
      for (int seg = 0; seg < spec.segments(); ++seg) {
        cm.lane_table(cm.physical_segment(spec, seg), spec.rightward())
            [static_cast<std::size_t>(spec.lanes[static_cast<std::size_t>(
                seg)])] = true;
      }
      cm.producers_used_.insert(
          core::ChannelEndpoint{spec.producer_box, spec.producer_channel});
      cm.consumers_used_.insert(
          core::ChannelEndpoint{spec.consumer_box, spec.consumer_channel});
      // Feedback-pipeline raw state (establish built it freshly cleared).
      comm::SwitchFabric::FeedbackPipeline& fb =
          *fab.routes_.at(route_id).feedback;
      const std::uint32_t n_stages = r.u32();
      VAPRES_REQUIRE(n_stages == fb.stages_.size(),
                     "restore: feedback depth mismatch");
      for (std::uint32_t st = 0; st < n_stages; ++st) {
        fb.stages_[st] = r.boolean();
      }
      fb.output_ = r.boolean();
    }
    cm.next_id_ = r.u32();
    fab.next_route_id_ = r.u32();

    // Box overlay last: exact saved registers/selects/outputs win over
    // whatever socket writes and route programming just did.
    for (int b = 0; b < fab.num_boxes(); ++b) {
      comm::SwitchBox& box = fab.box(b);
      const BoxState& bs = box_states[static_cast<std::size_t>(b)];
      for (int i = 0; i < sh.num_inputs(); ++i) {
        box.regs_[static_cast<std::size_t>(i)] =
            bs.regs[static_cast<std::size_t>(i)];
        box.regs_next_[static_cast<std::size_t>(i)] =
            bs.regs_next[static_cast<std::size_t>(i)];
      }
      for (int o = 0; o < sh.num_outputs(); ++o) {
        box.selects_[static_cast<std::size_t>(o)] =
            static_cast<int>(bs.selects[static_cast<std::size_t>(o)]);
        box.outputs_[static_cast<std::size_t>(o)] =
            bs.outputs[static_cast<std::size_t>(o)];
        box.stuck_[static_cast<std::size_t>(o)] =
            bs.stuck[static_cast<std::size_t>(o)];
      }
      box.stuck_events_ = bs.stuck_events;
    }
  }

  // ---- Clock-domain + global-time overlay (after socket CLK writes).
  VAPRES_REQUIRE(domain_states.size() == sys->sim_.domains().size(),
                 "restore: clock-domain count mismatch");
  for (std::size_t i = 0; i < domain_states.size(); ++i) {
    sim::ClockDomain& d = *sys->sim_.domains()[i];
    const DomainState& s = domain_states[i];
    VAPRES_REQUIRE(d.name_ == s.name, "restore: clock-domain order mismatch");
    d.period_ps_ = s.period_ps;
    d.enabled_ = s.enabled;
    d.cycle_count_ = s.cycle_count;
    d.anchor_ps_ = s.anchor_ps;
  }
  sys->sim_.now_ = saved_now;

  // ---- MicroBlaze overlay + busy-wake re-arm.
  {
    proc::Microblaze& mb = *sys->mb_;
    r.open_section("mb");
    mb.busy_pending_ = r.u64();
    mb.busy_anchored_ = r.boolean();
    mb.busy_last_cycle_ = r.u64();
    const bool wake_armed = r.boolean();
    const std::uint64_t wake_delay = r.u64();
    mb.total_busy_cycles_ = r.u64();
    mb.interrupts_serviced_ = r.u64();
    if (wake_armed) {
      // Schedule at the absolute saved remaining delay; arm_busy_wake()
      // assumes an edge-aligned "now", which restore time need not be.
      proc::Microblaze* m = &mb;
      mb.busy_wake_ = sys->sim_.schedule_after(wake_delay, [m] {
        m->busy_wake_.reset();
        m->wake();
      });
      mb.busy_wake_cycle_ = mb.busy_last_cycle_;
    }
  }

  // ---- dcr / icap / reconfig overlay.
  {
    r.open_section("dcr");
    sys->dcr_.accesses_ = r.u64();

    r.open_section("icap");
    VAPRES_REQUIRE(r.f64() == sys->icap_.port_clock_mhz_,
                   "restore: ICAP port clock mismatch");
    sys->icap_.total_bytes_ = r.i64();
    sys->icap_.transfers_ = static_cast<int>(r.i64());
    sys->icap_.corrupted_ = static_cast<int>(r.i64());
    sys->icap_.timed_out_ = static_cast<int>(r.i64());

    core::ReconfigManager& rc = *sys->reconfig_;
    r.open_section("reconfig");
    rc.verify_ = r.boolean();
    rc.policy_.max_attempts = static_cast<int>(r.i64());
    rc.policy_.backoff_base_cycles = r.u64();
    rc.policy_.fallback_to_cf = r.boolean();
    rc.last_.storage_cycles = r.f64();
    rc.last_.icap_cycles = r.f64();
    rc.completed_ = static_cast<int>(r.i64());
    rc.retries_ = static_cast<int>(r.i64());
    rc.fallbacks_ = static_cast<int>(r.i64());
    rc.failures_ = static_cast<int>(r.i64());
  }

  // ---- bitman overlay.
  {
    bitman::BitstreamManager& bm = *sys->bitman_;
    r.open_section("bitman");
    bm.opt_.stage_on_miss = r.boolean();
    bm.opt_.stream_chunk_bytes = r.i64();
    bm.opt_.predict_next = r.boolean();
    bm.stats_.hits = r.u64();
    bm.stats_.misses = r.u64();
    bm.stats_.streamed_misses = r.u64();
    bm.stats_.evictions = r.u64();
    bm.stats_.evicted_bytes = r.i64();
    bm.stats_.staged = r.u64();
    bm.stats_.replaced = r.u64();
    bm.stats_.invalidations = r.u64();
    bm.stats_.prefetch_issued = r.u64();
    bm.stats_.prefetch_completed = r.u64();
    bm.stats_.prefetch_cancelled = r.u64();
    bm.stats_.prefetch_useful = r.u64();
    bm.use_tick_ = r.u64();
    const std::uint32_t n_entries = r.u32();
    for (std::uint32_t i = 0; i < n_entries; ++i) {
      const std::string key = r.str();
      bitman::BitstreamManager::Entry e;
      e.last_use = r.u64();
      e.prefetched = r.boolean();
      e.demand_hit_seen = r.boolean();
      bm.entries_.emplace(key, e);
    }
    const std::uint32_t n_last = r.u32();
    for (std::uint32_t i = 0; i < n_last; ++i) {
      const std::string prr = r.str();
      bm.last_module_[prr] = r.str();
    }
    const std::uint32_t n_next = r.u32();
    for (std::uint32_t i = 0; i < n_next; ++i) {
      const std::string prr = r.str();
      const std::uint32_t n_inner = r.u32();
      auto& table = bm.next_after_[prr];
      for (std::uint32_t j = 0; j < n_inner; ++j) {
        const std::string last = r.str();
        table[last] = r.str();
      }
    }
  }

  // ---- fault injector overlay (process-wide hub).
  {
    sim::FaultInjector& fi = sim::FaultInjector::instance();
    r.open_section("fault");
    fi.enabled_ = r.boolean();
    fi.rng_.set_state(r.u64());
    for (auto& sp : fi.sites_) {
      sp.probability = r.f64();
      sp.armed_at = r.u64();
      sp.armed_count = r.u64();
      sp.opportunities = r.u64();
      sp.injected = r.u64();
    }
    for (auto& rec : fi.recoveries_) rec = r.u64();
  }

  // ---- metrics registry overlay, last: earlier restore steps must not
  // disturb the values (they don't touch the registry, but ordering makes
  // that obvious). reset() keeps registrations and zeroes values; the
  // blob only carries nonzero entries.
  {
    obs::Registry& reg = obs::Registry::instance();
    reg.reset();
    r.open_section("obs");
    const std::uint32_t n_counters = r.u32();
    for (std::uint32_t i = 0; i < n_counters; ++i) {
      const std::string name = r.str();
      reg.counter(name).add(r.u64());
    }
    const std::uint32_t n_gauges = r.u32();
    for (std::uint32_t i = 0; i < n_gauges; ++i) {
      const std::string name = r.str();
      reg.gauge(name).set(r.i64());
    }
    const std::uint32_t n_hists = r.u32();
    for (std::uint32_t i = 0; i < n_hists; ++i) {
      obs::Histogram& h = reg.histogram(r.str());
      for (auto& b : h.buckets_) b = r.u64();
      h.count_ = r.u64();
      h.sum_ = r.u64();
      h.min_ = r.u64();
      h.max_ = r.u64();
    }
  }

  // ---- Wake everything: the first post-restore tick re-evaluates all
  // activity flags, so nothing sleeps through state it should act on.
  for (const auto& d : sys->sim_.domains()) {
    for (sim::Clocked* c : d->components_) {
      if (c != nullptr) c->wake();
    }
  }

  return sys;
}

// ---------------------------------------------------------------------------
// scheduler restore (cold path, over a just-restored system)
// ---------------------------------------------------------------------------

namespace {

struct SchedJournal {
  sched::ApplicationScheduler::Options opt;
  int first_id = 0;
  int preemptions = 0;
  int defrag_migrations = 0;
  int migration_rollbacks = 0;
  int retired_admitted = 0;
  int retired_admitted_after_defrag = 0;
  int retired_admitted_after_preempt = 0;
  int retired_rejected = 0;
  struct Slot {
    bool free = true;
    int app_id = -1;
    int chain_pos = -1;
    std::string module_id;
    int module_slices = 0;
    bool migratable = false;
  };
  std::vector<Slot> slots;
  std::vector<std::vector<bool>> source_busy;
  std::vector<std::vector<bool>> sink_busy;
  struct Record {
    sched::AppRecord rec;
    bool generator_live = false;
  };
  std::vector<Record> records;
};

SchedJournal read_sched_section(const SnapshotReader& r) {
  SchedJournal j;
  r.open_section("sched");
  j.opt.rsb_index = static_cast<int>(r.i64());
  j.opt.policy = static_cast<sched::PlacementPolicy>(r.u8());
  j.opt.enable_defrag = r.boolean();
  j.opt.enable_preemption = r.boolean();
  j.opt.max_defrag_migrations = static_cast<int>(r.i64());
  j.opt.source = static_cast<core::ReconfigSource>(r.u8());
  j.opt.prefetch_hints = r.boolean();
  j.first_id = static_cast<int>(r.i64());
  j.preemptions = static_cast<int>(r.i64());
  j.defrag_migrations = static_cast<int>(r.i64());
  j.migration_rollbacks = static_cast<int>(r.i64());
  j.retired_admitted = static_cast<int>(r.i64());
  j.retired_admitted_after_defrag = static_cast<int>(r.i64());
  j.retired_admitted_after_preempt = static_cast<int>(r.i64());
  j.retired_rejected = static_cast<int>(r.i64());
  const std::uint32_t n_slots = r.u32();
  for (std::uint32_t i = 0; i < n_slots; ++i) {
    SchedJournal::Slot s;
    s.free = r.boolean();
    s.app_id = static_cast<int>(r.i64());
    s.chain_pos = static_cast<int>(r.i64());
    s.module_id = r.str();
    s.module_slices = static_cast<int>(r.i64());
    s.migratable = r.boolean();
    j.slots.push_back(std::move(s));
  }
  const auto get_busy = [&r]() {
    std::vector<std::vector<bool>> t;
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::vector<bool> row;
      const std::uint32_t m = r.u32();
      for (std::uint32_t k = 0; k < m; ++k) row.push_back(r.boolean());
      t.push_back(std::move(row));
    }
    return t;
  };
  j.source_busy = get_busy();
  j.sink_busy = get_busy();
  const std::uint32_t n_records = r.u32();
  for (std::uint32_t i = 0; i < n_records; ++i) {
    SchedJournal::Record entry;
    sched::AppRecord& rec = entry.rec;
    rec.id = static_cast<int>(r.i64());
    rec.request.name = r.str();
    const std::uint32_t n_modules = r.u32();
    for (std::uint32_t m = 0; m < n_modules; ++m) {
      rec.request.modules.push_back(r.str());
    }
    rec.request.priority = static_cast<int>(r.i64());
    rec.request.source_interval_cycles = static_cast<int>(r.i64());
    rec.request.source_words = r.u64();
    rec.state = static_cast<sched::AppState>(r.u8());
    rec.verdict = static_cast<sched::AdmissionVerdict>(r.u8());
    rec.reject_reason = r.str();
    rec.source.iom = static_cast<int>(r.i64());
    rec.source.channel = static_cast<int>(r.i64());
    rec.sink.iom = static_cast<int>(r.i64());
    rec.sink.channel = static_cast<int>(r.i64());
    const std::uint32_t n_prrs = r.u32();
    for (std::uint32_t p = 0; p < n_prrs; ++p) {
      rec.prrs.push_back(static_cast<int>(r.i64()));
    }
    const std::uint32_t n_channels = r.u32();
    for (std::uint32_t c = 0; c < n_channels; ++c) {
      rec.channels.push_back(r.u32());
    }
    const std::uint32_t n_clocks = r.u32();
    for (std::uint32_t c = 0; c < n_clocks; ++c) {
      rec.clocks_mhz.push_back(r.f64());
    }
    rec.submitted_at = r.u64();
    rec.launched_at = r.u64();
    rec.stopped_at = r.u64();
    rec.admission_mb_cycles = r.u64();
    rec.base_words_emitted = r.u64();
    rec.base_words_received = r.u64();
    rec.final_words_in = r.u64();
    rec.final_words_out = r.u64();
    rec.migrations = static_cast<int>(r.i64());
    entry.generator_live = r.boolean();
    j.records.push_back(std::move(entry));
  }
  return j;
}

}  // namespace

std::unique_ptr<sched::ApplicationScheduler> SystemSnapshot::restore_scheduler(
    const std::string& blob, core::VapresSystem& sys) {
  const SnapshotReader r(blob);
  VAPRES_REQUIRE(r.has_section("sched"),
                 "restore_scheduler: no scheduler section in snapshot");
  const SchedJournal j = read_sched_section(r);

  auto sched = std::make_unique<sched::ApplicationScheduler>(sys, j.opt);
  sched->first_id_ = j.first_id;
  sched->preemptions_ = j.preemptions;
  sched->defrag_migrations_ = j.defrag_migrations;
  sched->migration_rollbacks_ = j.migration_rollbacks;
  sched->retired_admitted_ = j.retired_admitted;
  sched->retired_admitted_after_defrag_ = j.retired_admitted_after_defrag;
  sched->retired_admitted_after_preempt_ = j.retired_admitted_after_preempt;
  sched->retired_rejected_ = j.retired_rejected;

  VAPRES_REQUIRE(static_cast<int>(j.slots.size()) == sched->map_.num_slots(),
                 "restore_scheduler: fabric-map size mismatch");
  for (std::size_t p = 0; p < j.slots.size(); ++p) {
    const SchedJournal::Slot& s = j.slots[p];
    if (!s.free) {
      sched->map_.occupy(static_cast<int>(p), s.app_id, s.chain_pos,
                         s.module_id, s.module_slices, s.migratable);
    }
  }
  sched->source_busy_ = j.source_busy;
  sched->sink_busy_ = j.sink_busy;

  // Re-install each running app's counting source generator with its
  // remaining word budget — the exact closure the scheduler installs at
  // launch, resumed at word n0. Assigned directly (not via
  // set_source_generator, which would reset pending/next_emit_cycle).
  core::Rsb& rsb = sys.rsb(j.opt.rsb_index);
  for (const SchedJournal::Record& entry : j.records) {
    sched->apps_.push_back(entry.rec);
    if (entry.rec.running() && entry.generator_live) {
      const sched::AppRecord& rec = entry.rec;
      core::Iom& iom = rsb.iom(rec.source.iom);
      auto& src = iom.sources_[static_cast<std::size_t>(rec.source.channel)];
      const std::uint64_t limit = rec.request.source_words;
      const std::uint64_t n0 = (src.words_emitted - rec.base_words_emitted) +
                               (src.pending.has_value() ? 1 : 0);
      src.generator = [n = n0, limit]() mutable -> std::optional<comm::Word> {
        if (limit > 0 && n >= limit) return std::nullopt;
        // Mask below the all-ones EOS word so data is never EOS.
        return static_cast<comm::Word>((n++) & 0x7FFFFFFFu);
      };
      iom.wake();
    }
  }
  return sched;
}

// ---------------------------------------------------------------------------
// warm restart
// ---------------------------------------------------------------------------

WarmRestart SystemSnapshot::warm_restart(const std::string& blob,
                                         core::VapresSystem& sys) {
  const SnapshotReader r(blob);
  WarmRestart out;
  VAPRES_REQUIRE(r.has_section("sched"),
                 "warm_restart: no scheduler journal in snapshot");
  const SchedJournal j = read_sched_section(r);

  // ---- Switch journal (optional): read before reconciling so adopted
  // apps can map journaled channel ids across a completed re-route.
  struct SwitchJournal {
    core::SwitchRequest req;
    core::ModuleSwitcher::State state = core::ModuleSwitcher::State::kIdle;
    core::ModuleSwitcher::Timeline timeline;
    bool reconfig_ok = true;
    std::vector<comm::Word> collected_state;
    std::vector<comm::Word> monitoring;
    bool saw_header = false;
    int expected_words = -1;
    core::ChannelId new_upstream = 0;
    core::ChannelId new_downstream = 0;
  };
  std::optional<SwitchJournal> sw;
  if (r.has_section("switch")) {
    SwitchJournal s;
    r.open_section("switch");
    s.req.rsb_index = static_cast<int>(r.i64());
    s.req.src_prr = static_cast<int>(r.i64());
    s.req.dst_prr = static_cast<int>(r.i64());
    s.req.new_module_id = r.str();
    s.req.upstream = r.u32();
    s.req.downstream = r.u32();
    s.req.eos_iom = static_cast<int>(r.i64());
    s.req.source = static_cast<core::ReconfigSource>(r.u8());
    s.state = static_cast<core::ModuleSwitcher::State>(r.u8());
    s.timeline.started = r.u64();
    s.timeline.reconfig_done = r.u64();
    s.timeline.input_rerouted = r.u64();
    s.timeline.state_collected = r.u64();
    s.timeline.module_initialized = r.u64();
    s.timeline.iom_eos_seen = r.u64();
    s.timeline.completed = r.u64();
    s.timeline.aborted = r.u64();
    const bool reconfig_complete = r.boolean();
    (void)reconfig_complete;  // resume sets it per protocol state
    s.reconfig_ok = r.boolean();
    const auto get_words = [&r]() {
      std::vector<comm::Word> v;
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.u32());
      return v;
    };
    s.collected_state = get_words();
    s.monitoring = get_words();
    s.saw_header = r.boolean();
    s.expected_words = static_cast<int>(r.i64());
    s.new_upstream = r.u32();
    s.new_downstream = r.u32();
    sw = std::move(s);
  }

  // Channel substitution: a crash after a re-route leaves journaled app
  // records naming the pre-switch channel while the fabric carries the
  // re-routed one.
  std::map<core::ChannelId, core::ChannelId> subst;
  if (sw.has_value()) {
    if (sw->new_upstream != 0) subst[sw->req.upstream] = sw->new_upstream;
    if (sw->new_downstream != 0) {
      subst[sw->req.downstream] = sw->new_downstream;
    }
  }

  // ---- Fresh scheduler over the live fabric; adopt matching records.
  auto sched = std::make_unique<sched::ApplicationScheduler>(sys, j.opt);
  sched->first_id_ = j.first_id;
  sched->preemptions_ = j.preemptions;
  sched->defrag_migrations_ = j.defrag_migrations;
  sched->migration_rollbacks_ = j.migration_rollbacks;
  sched->retired_admitted_ = j.retired_admitted;
  sched->retired_admitted_after_defrag_ = j.retired_admitted_after_defrag;
  sched->retired_admitted_after_preempt_ = j.retired_admitted_after_preempt;
  sched->retired_rejected_ = j.retired_rejected;

  core::Rsb& rsb = sys.rsb(j.opt.rsb_index);
  for (const SchedJournal::Record& entry : j.records) {
    sched::AppRecord rec = entry.rec;
    if (!rec.running()) {
      sched->apps_.push_back(std::move(rec));
      continue;
    }
    // Verify the journal against the live fabric: every placed module
    // must still occupy its PRR, every channel must still be routed.
    bool match = true;
    std::string why;
    for (std::size_t pos = 0; pos < rec.prrs.size(); ++pos) {
      core::Prr& prr = rsb.prr(rec.prrs[pos]);
      if (!prr.occupied() || prr.loaded_module() != rec.request.modules[pos]) {
        match = false;
        why = "PRR " + prr.name() + " no longer hosts " +
              rec.request.modules[pos];
        break;
      }
    }
    int live_channels = 0;
    if (match) {
      for (core::ChannelId& ch : rec.channels) {
        const auto it = subst.find(ch);
        if (it != subst.end()) ch = it->second;  // adopt re-routed id
        if (!rsb.channels().active(ch)) {
          match = false;
          why = "channel " + std::to_string(ch) + " is not routed";
          break;
        }
        ++live_channels;
      }
    }
    if (match) {
      for (std::size_t pos = 0; pos < rec.prrs.size(); ++pos) {
        const int p = rec.prrs[pos];
        const SchedJournal::Slot& slot =
            j.slots[static_cast<std::size_t>(p)];
        // Journaled slot metadata for this PRR, keyed by the owning app.
        if (!slot.free && slot.app_id == rec.id) {
          sched->map_.occupy(p, slot.app_id, slot.chain_pos, slot.module_id,
                             slot.module_slices, slot.migratable);
        } else {
          sched->map_.occupy(p, rec.id, static_cast<int>(pos),
                             rec.request.modules[pos], 0, false);
        }
      }
      sched->source_busy_[static_cast<std::size_t>(rec.source.iom)]
                         [static_cast<std::size_t>(rec.source.channel)] = true;
      sched->sink_busy_[static_cast<std::size_t>(rec.sink.iom)]
                       [static_cast<std::size_t>(rec.sink.channel)] = true;
      ++out.report.adopted_apps;
      out.report.adopted_channels += live_channels;
      out.report.notes.push_back("adopted app " + std::to_string(rec.id) +
                                 " (" + rec.request.name + ")");
    } else {
      // The fabric contradicts the journal: downgrade, never reset the
      // fabric side — whatever stream still flows there keeps flowing.
      rec.state = sched::AppState::kStopped;
      rec.reject_reason = "warm-restart mismatch: " + why;
      ++out.report.mismatches;
      out.report.notes.push_back("downgraded app " + std::to_string(rec.id) +
                                 ": " + why);
    }
    const bool adopted = match;
    const bool generator_live = entry.generator_live;
    sched->apps_.push_back(std::move(rec));
    if (adopted && generator_live) {
      // The fabric survived, so the generator closure is already running
      // inside the live IOM — nothing to re-install on warm restart.
      (void)generator_live;
    }
  }

  // ---- In-flight switch: resume from the journaled step, or roll back.
  if (sw.has_value()) {
    using St = core::ModuleSwitcher::State;
    core::Rsb& srsb = sys.rsb(sw->req.rsb_index);
    if (sw->state == St::kReconfiguring) {
      // The crash interrupted step 3: the new module is still outside the
      // processing path (no channel moved yet), so rollback is the safe
      // default — let any in-flight PR land, then discard its effect.
      sys.drain_transfer_path();
      core::Prr& dst = srsb.prr(sw->req.dst_prr);
      if (dst.wrapper().loaded()) dst.wrapper().unload();
      dst.loaded_module_.clear();
      const comm::DcrValue clear_bits =
          core::PrSocket::kSmEn | core::PrSocket::kClkEn |
          core::PrSocket::kFifoWen | core::PrSocket::kFifoRen |
          core::PrSocket::kPrrReset;
      dst.socket().dcr_write(dst.socket().value() & ~clear_bits);
      sim::FaultInjector::instance().note_recovery(
          sim::RecoveryEvent::kSwitchRollback);
      obs::Registry::instance().counter("switch.rollbacks").add(1);
      out.report.switch_rolled_back = true;
      out.report.notes.push_back(
          "rolled back in-flight switch (crashed during PR of " +
          sw->req.new_module_id + ")");
    } else if (sw->state == St::kDone || sw->state == St::kAborted ||
               sw->state == St::kIdle) {
      out.report.notes.push_back("journaled switch already terminal");
    } else {
      // Steps 4-9: the PR completed before the crash; rebuild an
      // equivalent in-flight switcher and let it finish the protocol.
      auto resumed = std::make_unique<core::ModuleSwitcher>(sys, sw->req);
      resumed->state_ = sw->state;
      resumed->timeline_ = sw->timeline;
      resumed->reconfig_complete_ = true;
      resumed->reconfig_ok_ = sw->reconfig_ok;
      resumed->collected_state_ = sw->collected_state;
      resumed->monitoring_ = sw->monitoring;
      resumed->saw_header_ = sw->saw_header;
      resumed->expected_words_ = sw->expected_words;
      resumed->new_upstream_ = sw->new_upstream;
      resumed->new_downstream_ = sw->new_downstream;
      resumed->obs_track_ = obs::EventBus::instance().track(
          srsb.prr(sw->req.src_prr).name() + ".switch");
      resumed->enter_step(step_code_for(sw->state));
      sys.mb().add_task(resumed.get());
      out.report.switch_resumed = true;
      out.report.notes.push_back("resumed in-flight switch at step " +
                                 std::to_string(step_code_for(sw->state)));
      out.switcher = std::move(resumed);
    }
  }

  out.scheduler = std::move(sched);
  return out;
}

}  // namespace vapres::snap
