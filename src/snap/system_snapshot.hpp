// Full-system checkpoint/restore over the snap container format.
//
// SystemSnapshot walks every stateful component of a core::VapresSystem
// (and optionally its sched::ApplicationScheduler and an in-flight
// core::ModuleSwitcher) and serializes the raw register/counter/FIFO
// state into the versioned section format of snap/format.hpp. Three ways
// back:
//
//   * cold restore (restore_system / restore_scheduler): reconstruct a
//     brand-new system from the blob that continues bit-for-bit where
//     the checkpointed one left off — a second snapshot taken after the
//     same number of cycles is byte-identical to one from an
//     uninterrupted run;
//   * warm restart (warm_restart): the fabric survived, the controller
//     software did not. A fresh scheduler reconciles the journaled app
//     records against the still-live fabric — adopting every app whose
//     PRRs and channels still match the journal, resuming (or rolling
//     back) an in-flight 9-step module switch from its journaled step,
//     and never resetting a healthy stream;
//   * fleet failover (fleet/controlplane.cpp): a crashed fabric's
//     snapshot seeds replay-admission of its apps onto a spare fabric.
//
// Cold snapshots require a quiescent controller: no reconfiguration in
// flight, no prefetch staging, no software task other than a journaled
// switcher. The soak harness reaches that barrier by draining the
// transfer path before checkpointing (load/soak.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/switching.hpp"
#include "core/system.hpp"
#include "hwmodule/library.hpp"
#include "sched/scheduler.hpp"

namespace vapres::snap {

/// What warm_restart() found when reconciling the journal against the
/// still-live fabric.
struct ReconcileReport {
  int adopted_apps = 0;      ///< running apps re-adopted intact
  int adopted_channels = 0;  ///< streaming channels verified live
  int mismatches = 0;        ///< journal entries the fabric contradicts
  bool switch_resumed = false;      ///< in-flight switch carried forward
  bool switch_rolled_back = false;  ///< in-flight switch abandoned safely
  std::vector<std::string> notes;   ///< human-readable reconcile log
};

struct WarmRestart {
  std::unique_ptr<sched::ApplicationScheduler> scheduler;
  /// Present (and already registered with the MicroBlaze) when the
  /// journaled switch resumed; run the simulation to let it finish.
  std::unique_ptr<core::ModuleSwitcher> switcher;
  ReconcileReport report;
};

class SystemSnapshot {
 public:
  /// Serializes the complete system state. `sched` and `switcher` are
  /// optional; a journaled switcher makes the snapshot warm-only (its
  /// task is still registered, so a cold restore would refuse it).
  /// Throws vapres::ModelError when the controller is not quiescent
  /// enough to checkpoint (see file comment).
  static std::string save(core::VapresSystem& sys, std::uint64_t epoch,
                          const sched::ApplicationScheduler* sched = nullptr,
                          const core::ModuleSwitcher* switcher = nullptr);

  /// Header epoch of a blob (validates the container).
  static std::uint64_t epoch(const std::string& blob);
  static bool has_scheduler(const std::string& blob);
  static bool has_switch(const std::string& blob);

  /// Cold restore: builds a new system from `params`/`library` (which
  /// must match the snapshot's fingerprint) and overlays every saved
  /// component. The returned system continues deterministically.
  static std::unique_ptr<core::VapresSystem> restore_system(
      const std::string& blob, core::SystemParams params,
      hwmodule::ModuleLibrary library = hwmodule::ModuleLibrary::standard());

  /// Cold restore of the scheduler layer over a just-restored system:
  /// overlays app records, occupancy and counters, and re-installs the
  /// source generators of running apps with their remaining word
  /// budgets.
  static std::unique_ptr<sched::ApplicationScheduler> restore_scheduler(
      const std::string& blob, core::VapresSystem& sys);

  /// Warm restart: the fabric in `sys` is live; only the controller
  /// software restarts. Builds a fresh scheduler, reconciles the
  /// journaled records against the fabric, and resumes or rolls back a
  /// journaled in-flight switch.
  static WarmRestart warm_restart(const std::string& blob,
                                  core::VapresSystem& sys);

 private:
  SystemSnapshot() = default;
};

}  // namespace vapres::snap
