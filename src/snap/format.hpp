// Versioned, byte-deterministic snapshot container.
//
// A snapshot is a flat byte blob: a fixed header (magic, format version,
// monotonic epoch) followed by named sections. Every section carries its
// payload length and an FNV-1a digest of the payload, so truncation and
// corruption are detected per section at open time rather than surfacing
// as garbled component state deep inside a restore. All integers are
// little-endian fixed-width; doubles travel as their IEEE-754 bit
// patterns — two snapshots of identical system state are byte-identical.
//
// SnapshotWriter builds sections in order; SnapshotReader indexes them by
// name and hands out bounded cursors. Readers and writers are dumb about
// content — the schema of each section is owned by snap::SystemSnapshot
// (and by the soak / fleet checkpoint code for their own sections).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vapres::snap {

/// FNV-1a over a byte range (the same digest the soak harness folds its
/// run digest with; see load/soak.cpp).
std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

class SnapshotWriter {
 public:
  static constexpr std::uint32_t kMagic = 0x56534E50;  // "VSNP"
  static constexpr std::uint32_t kVersion = 1;

  /// `epoch` is the caller-maintained monotonic snapshot counter; a
  /// restored system's next checkpoint must use a strictly larger epoch.
  explicit SnapshotWriter(std::uint64_t epoch);

  /// Opens a named section; primitives append to it until end_section().
  void begin_section(const std::string& name);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s);

  std::uint64_t epoch() const { return epoch_; }

  /// Finalizes the blob. The writer must not be reused afterwards.
  std::string finish();

 private:
  std::uint64_t epoch_;
  std::string blob_;
  std::string section_name_;
  std::vector<std::uint8_t> payload_;
  bool in_section_ = false;
  bool finished_ = false;
};

class SnapshotReader {
 public:
  /// Parses and validates the header and the section index. Throws
  /// vapres::ModelError on bad magic, unsupported version, truncation,
  /// or a section whose digest does not match its payload.
  explicit SnapshotReader(std::string blob);

  std::uint64_t epoch() const { return epoch_; }

  bool has_section(const std::string& name) const;
  std::vector<std::string> section_names() const;

  /// Positions the cursor at the start of `name`'s payload. Throws if
  /// the section is absent.
  void open_section(const std::string& name) const;
  /// Bytes left in the currently open section.
  std::size_t remaining() const;

  std::uint8_t u8() const;
  std::uint32_t u32() const;
  std::uint64_t u64() const;
  std::int64_t i64() const;
  double f64() const;
  bool boolean() const { return u8() != 0; }
  std::string str() const;

 private:
  struct Section {
    std::string name;
    std::size_t offset = 0;  // payload start within blob_
    std::size_t size = 0;
  };
  const Section& find(const std::string& name) const;
  void need(std::size_t bytes) const;

  std::string blob_;
  std::uint64_t epoch_ = 0;
  std::vector<Section> sections_;
  // Cursor state is logically part of iteration, not of the snapshot.
  mutable std::size_t cursor_ = 0;
  mutable std::size_t cursor_end_ = 0;
};

}  // namespace vapres::snap
