#include "snap/format.hpp"

#include <bit>
#include <cstring>

#include "sim/check.hpp"

namespace vapres::snap {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t read_u32_at(const std::string& b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t read_u64_at(const std::string& b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[at + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

SnapshotWriter::SnapshotWriter(std::uint64_t epoch) : epoch_(epoch) {
  append_u32(blob_, kMagic);
  append_u32(blob_, kVersion);
  append_u64(blob_, epoch_);
}

void SnapshotWriter::begin_section(const std::string& name) {
  VAPRES_REQUIRE(!finished_, "snapshot writer already finished");
  VAPRES_REQUIRE(!in_section_, "nested snapshot section " + name);
  VAPRES_REQUIRE(!name.empty() && name.size() <= 64,
                 "snapshot section name must be 1..64 chars");
  section_name_ = name;
  payload_.clear();
  in_section_ = true;
}

void SnapshotWriter::end_section() {
  VAPRES_REQUIRE(in_section_, "end_section without begin_section");
  append_u32(blob_, static_cast<std::uint32_t>(section_name_.size()));
  blob_.append(section_name_);
  append_u64(blob_, payload_.size());
  append_u64(blob_, fnv1a(payload_.data(), payload_.size()));
  blob_.append(reinterpret_cast<const char*>(payload_.data()),
               payload_.size());
  in_section_ = false;
}

void SnapshotWriter::u8(std::uint8_t v) {
  VAPRES_REQUIRE(in_section_, "snapshot write outside a section");
  payload_.push_back(v);
}

void SnapshotWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::i64(std::int64_t v) {
  u64(static_cast<std::uint64_t>(v));
}

void SnapshotWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void SnapshotWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) u8(static_cast<std::uint8_t>(c));
}

std::string SnapshotWriter::finish() {
  VAPRES_REQUIRE(!in_section_, "finish inside an open section");
  finished_ = true;
  return std::move(blob_);
}

SnapshotReader::SnapshotReader(std::string blob) : blob_(std::move(blob)) {
  VAPRES_REQUIRE(blob_.size() >= 16, "snapshot truncated: missing header");
  VAPRES_REQUIRE(read_u32_at(blob_, 0) == SnapshotWriter::kMagic,
                 "snapshot magic mismatch (not a VAPRES snapshot)");
  const std::uint32_t version = read_u32_at(blob_, 4);
  VAPRES_REQUIRE(version == SnapshotWriter::kVersion,
                 "unsupported snapshot version " + std::to_string(version));
  epoch_ = read_u64_at(blob_, 8);

  std::size_t at = 16;
  while (at < blob_.size()) {
    VAPRES_REQUIRE(blob_.size() - at >= 4,
                   "snapshot truncated in section header");
    const std::uint32_t name_len = read_u32_at(blob_, at);
    at += 4;
    VAPRES_REQUIRE(name_len >= 1 && name_len <= 64 &&
                       blob_.size() - at >= name_len,
                   "snapshot truncated in section name");
    Section s;
    s.name = blob_.substr(at, name_len);
    at += name_len;
    VAPRES_REQUIRE(blob_.size() - at >= 16,
                   "snapshot truncated in section length/digest");
    const std::uint64_t payload_size = read_u64_at(blob_, at);
    const std::uint64_t digest = read_u64_at(blob_, at + 8);
    at += 16;
    VAPRES_REQUIRE(blob_.size() - at >= payload_size,
                   "snapshot truncated in section '" + s.name + "' payload");
    s.offset = at;
    s.size = static_cast<std::size_t>(payload_size);
    VAPRES_REQUIRE(fnv1a(blob_.data() + s.offset, s.size) == digest,
                   "snapshot section '" + s.name + "' digest mismatch");
    for (const Section& prev : sections_) {
      VAPRES_REQUIRE(prev.name != s.name,
                     "duplicate snapshot section '" + s.name + "'");
    }
    at += s.size;
    sections_.push_back(std::move(s));
  }
}

bool SnapshotReader::has_section(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

std::vector<std::string> SnapshotReader::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const Section& s : sections_) names.push_back(s.name);
  return names;
}

const SnapshotReader::Section& SnapshotReader::find(
    const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return s;
  }
  VAPRES_REQUIRE(false, "snapshot has no section '" + name + "'");
  __builtin_unreachable();
}

void SnapshotReader::open_section(const std::string& name) const {
  const Section& s = find(name);
  cursor_ = s.offset;
  cursor_end_ = s.offset + s.size;
}

std::size_t SnapshotReader::remaining() const { return cursor_end_ - cursor_; }

void SnapshotReader::need(std::size_t bytes) const {
  VAPRES_REQUIRE(cursor_ + bytes <= cursor_end_,
                 "snapshot section read past payload end");
}

std::uint8_t SnapshotReader::u8() const {
  need(1);
  return static_cast<std::uint8_t>(blob_[cursor_++]);
}

std::uint32_t SnapshotReader::u32() const {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t SnapshotReader::u64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return v;
}

std::int64_t SnapshotReader::i64() const {
  return static_cast<std::int64_t>(u64());
}

double SnapshotReader::f64() const { return std::bit_cast<double>(u64()); }

std::string SnapshotReader::str() const {
  const std::uint32_t len = u32();
  need(len);
  std::string s = blob_.substr(cursor_, len);
  cursor_ += len;
  return s;
}

}  // namespace vapres::snap
