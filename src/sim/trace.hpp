// Minimal tracing facility. Components emit trace records tagged with the
// current simulation time; tests and examples can subscribe a sink. Tracing
// is off by default and costs one branch per call when disabled.
#pragma once

#include <functional>
#include <string>

#include "sim/time.hpp"

namespace vapres::sim {

enum class TraceLevel { kOff = 0, kInfo = 1, kDebug = 2 };

/// A trace record: time, subsystem tag, and message.
struct TraceRecord {
  Picoseconds time_ps = 0;
  std::string tag;
  std::string message;
};

/// Process-wide trace hub. Deliberately simple: one sink, one level.
class Trace {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  static Trace& instance();

  void set_level(TraceLevel level) { level_ = level; }
  TraceLevel level() const { return level_; }

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void clear_sink() { sink_ = nullptr; }

  bool enabled(TraceLevel level) const {
    return sink_ && static_cast<int>(level) <= static_cast<int>(level_);
  }

  void emit(Picoseconds time_ps, std::string tag, std::string message);

 private:
  Trace() = default;
  TraceLevel level_ = TraceLevel::kOff;
  Sink sink_;
};

}  // namespace vapres::sim
