// Minimal tracing facility. Components emit trace records tagged with the
// current simulation time; tests and examples can subscribe a sink. Tracing
// is off by default and costs one branch per call when disabled.
//
// For structured (typed, ring-buffered, exportable) tracing see
// obs/bus.hpp; this hub remains the human-readable message channel.
// Emit through VAPRES_TRACE_INFO so the message string is only built
// when a sink is attached at the required level.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace vapres::sim {

enum class TraceLevel { kOff = 0, kInfo = 1, kDebug = 2 };

/// A trace record: time, subsystem tag, and message.
struct TraceRecord {
  Picoseconds time_ps = 0;
  std::string tag;
  std::string message;
};

/// Process-wide trace hub. Deliberately simple: one sink, one level.
class Trace {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  static Trace& instance();

  void set_level(TraceLevel level) { level_ = level; }
  TraceLevel level() const { return level_; }

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void clear_sink() { sink_ = nullptr; }

  bool enabled(TraceLevel level) const {
    return sink_ && static_cast<int>(level) <= static_cast<int>(level_);
  }

  void emit(Picoseconds time_ps, std::string tag, std::string message);

 private:
  Trace() = default;
  TraceLevel level_ = TraceLevel::kOff;
  Sink sink_;
};

}  // namespace vapres::sim

/// Emits a kInfo trace message. `streamed` is a `<<`-chain tail, e.g.
///   VAPRES_TRACE_INFO(sim.now(), "reconfig", "retry " << n << " queued");
/// The whole argument — including every std::to_string/concatenation it
/// contains — is evaluated only when a sink is attached at kInfo, so
/// disabled tracing really is one branch.
#define VAPRES_TRACE_INFO(time_ps, tag, streamed)                        \
  do {                                                                   \
    ::vapres::sim::Trace& vapres_trace_hub_ =                            \
        ::vapres::sim::Trace::instance();                                \
    if (vapres_trace_hub_.enabled(::vapres::sim::TraceLevel::kInfo)) {   \
      std::ostringstream vapres_trace_os_;                               \
      vapres_trace_os_ << streamed;                                      \
      vapres_trace_hub_.emit((time_ps), (tag), vapres_trace_os_.str());  \
    }                                                                    \
  } while (0)
