// Two-phase clocked component interface.
//
// The VAPRES communication architecture is a register pipeline (one register
// per switch-box input port, Section III.B). To model register semantics
// without ordering artifacts, every component in a clock domain first
// evaluates its next state from the *current* outputs of its neighbours
// (eval), then all components latch simultaneously (commit). This is the
// standard two-phase simulation of synchronous logic.
#pragma once

#include <string>

namespace vapres::sim {

class Clocked {
 public:
  virtual ~Clocked() = default;

  /// Phase 1: compute next state from currently visible outputs.
  virtual void eval() = 0;

  /// Phase 2: latch the state computed in eval(). After commit, the
  /// component's outputs reflect the new cycle.
  virtual void commit() = 0;

  /// Human-readable instance name for traces and error messages.
  virtual std::string name() const { return "<clocked>"; }
};

}  // namespace vapres::sim
