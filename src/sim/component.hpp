// Two-phase clocked component interface.
//
// The VAPRES communication architecture is a register pipeline (one register
// per switch-box input port, Section III.B). To model register semantics
// without ordering artifacts, every component in a clock domain first
// evaluates its next state from the *current* outputs of its neighbours
// (eval), then all components latch simultaneously (commit). This is the
// standard two-phase simulation of synchronous logic.
//
// Activity contract (see docs/SIMULATOR.md): after each commit the kernel
// may poll quiescent(). A component returning true promises that, until one
// of its inputs changes, every further eval()/commit() pair is a state
// no-op with unchanged outputs — so the kernel is free to stop delivering
// edges to it. Whatever changes such an input (a FIFO push/pop, a PRSocket
// bit, a mux select) must call wake() on the affected component. The
// default (never quiescent) keeps unaware components on every edge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vapres::sim {

class ActivityGroup;
class ClockDomain;

class Clocked {
 public:
  virtual ~Clocked();

  /// Phase 1: compute next state from currently visible outputs.
  virtual void eval() = 0;

  /// Phase 2: latch the state computed in eval(). After commit, the
  /// component's outputs reflect the new cycle.
  virtual void commit() = 0;

  /// Activity report, polled after commit. True promises eval()/commit()
  /// stay state no-ops with unchanged outputs until an input changes and
  /// wake() is called. The default keeps the component on every edge.
  virtual bool quiescent() const { return false; }

  /// Re-arms edge delivery for this component — and, when it belongs to an
  /// ActivityGroup, for the whole group. Must be called by anything that
  /// changes an input the component reacts to. Safe before attach.
  void wake();

  /// Whether the kernel currently delivers edges to this component.
  bool awake() const { return active_; }

  /// Human-readable instance name for traces and error messages.
  virtual std::string name() const { return "<clocked>"; }

 private:
  friend class ActivityGroup;
  friend class ClockDomain;

  /// Reactivates just this component (group-unaware half of wake()).
  void activate();

  ClockDomain* domain_ = nullptr;
  ActivityGroup* group_ = nullptr;
  bool active_ = true;
  // Index of this component's slot in its domain's component list, kept
  // current whenever the domain's awake-index cache is valid.
  std::size_t slot_ = 0;
};

/// Components whose quiescence is only meaningful collectively. The switch
/// fabric's flit wiring is pull-based (raw `const Flit*` reads with no
/// subscription), so one box going idle says nothing while a neighbour may
/// still push a flit into it without any hook firing. Grouped components
/// therefore sleep all-or-nothing: the kernel deactivates a member only
/// when every member reports quiescent, and wake() on any member re-arms
/// them all.
class ActivityGroup {
 public:
  ActivityGroup() = default;
  ActivityGroup(const ActivityGroup&) = delete;
  ActivityGroup& operator=(const ActivityGroup&) = delete;
  ~ActivityGroup();

  /// Registers `c` (not owned). Members remove themselves on destruction.
  void add(Clocked* c);
  void remove(Clocked* c);

  /// True when every member reports quiescent. Memoized per poll `epoch`
  /// so a domain's post-tick sweep evaluates each group once, not once
  /// per member.
  bool quiescent(std::uint64_t epoch);

  /// Reactivates every member.
  void wake_all();

 private:
  std::vector<Clocked*> members_;
  std::uint64_t memo_epoch_ = 0;
  bool memo_quiescent_ = false;
};

}  // namespace vapres::sim
