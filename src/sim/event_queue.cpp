#include "sim/event_queue.hpp"

#include "sim/check.hpp"

namespace vapres::sim {

EventQueue::EventId EventQueue::schedule_at(Picoseconds when, Callback cb) {
  VAPRES_REQUIRE(cb != nullptr, "event callback must be callable");
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(cb)});
  pending_ids_.insert(id);
  return id;
}

void EventQueue::drop_cancelled_head() const {
  // Cancelled entries stay in the heap until they surface; pending_ids_ is
  // the source of truth. const_cast is confined to this lazy cleanup.
  auto& heap = const_cast<EventQueue*>(this)->heap_;
  while (!heap.empty() && !pending_ids_.contains(heap.top().id)) {
    heap.pop();
  }
}

Picoseconds EventQueue::next_time() const {
  drop_cancelled_head();
  VAPRES_REQUIRE(!heap_.empty(), "next_time() on empty event queue");
  return heap_.top().when;
}

bool EventQueue::cancel(EventId id) { return pending_ids_.erase(id) > 0; }

void EventQueue::run_due(Picoseconds now) {
  for (;;) {
    drop_cancelled_head();
    if (heap_.empty() || heap_.top().when > now) return;
    Entry entry = heap_.top();
    heap_.pop();
    pending_ids_.erase(entry.id);
    entry.cb();
  }
}

}  // namespace vapres::sim
