#include "sim/clock.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace vapres::sim {

ClockDomain::ClockDomain(std::string name, double frequency_mhz)
    : name_(std::move(name)), period_ps_(period_ps_from_mhz(frequency_mhz)) {}

void ClockDomain::reanchor() {
  VAPRES_REQUIRE(now_ != nullptr,
                 "clock domain must be owned by a Simulator before use");
  anchor_ps_ = *now_;
}

void ClockDomain::set_frequency_mhz(double mhz) {
  period_ps_ = period_ps_from_mhz(mhz);
  // Next edge is one new period from the moment of the change, which is how
  // a glitch-free BUFGMUX switchover behaves to first order.
  reanchor();
}

void ClockDomain::set_enabled(bool enabled) {
  if (enabled && !enabled_) {
    reanchor();
  }
  enabled_ = enabled;
}

void ClockDomain::attach(Clocked* component) {
  VAPRES_REQUIRE(component != nullptr, "cannot attach null component");
  if (components_.empty() && now_ != nullptr) {
    // A domain with no components is not scheduled; restart its edge
    // schedule from the present so the first edge is not in the past.
    reanchor();
  }
  components_.push_back(component);
}

void ClockDomain::detach(Clocked* component) {
  components_.erase(
      std::remove(components_.begin(), components_.end(), component),
      components_.end());
}

Picoseconds ClockDomain::next_edge(Picoseconds /*now*/) const {
  return anchor_ps_ + period_ps_;
}

void ClockDomain::tick() {
  for (Clocked* c : components_) c->eval();
  for (Clocked* c : components_) c->commit();
  ++cycle_count_;
}

}  // namespace vapres::sim
