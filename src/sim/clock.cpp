#include "sim/clock.hpp"

#include <algorithm>

#include "obs/bus.hpp"
#include "sim/check.hpp"
#include "sim/fault.hpp"

namespace vapres::sim {

namespace {
// One quiescence poll per this many delivered edges. Polling is pure
// overhead on busy components, and a deactivation delayed a few cycles is
// semantically invisible (skipping is only an optimization), so the sweep
// is amortized instead of run per tick.
constexpr Cycles kPollInterval = 8;

// Distinct epoch per poll sweep, so ActivityGroup memoization never mixes
// sweeps. The simulation is single-threaded.
std::uint64_t g_poll_epoch = 0;
}  // namespace

Clocked::~Clocked() {
  if (group_ != nullptr) group_->remove(this);
  if (domain_ != nullptr) domain_->detach(this);
}

void Clocked::wake() {
  if (group_ != nullptr) {
    group_->wake_all();
    return;
  }
  activate();
}

void Clocked::activate() {
  if (active_) return;
  active_ = true;
  if (domain_ != nullptr) domain_->note_wake(this);
}

ActivityGroup::~ActivityGroup() {
  for (Clocked* c : members_) c->group_ = nullptr;
}

void ActivityGroup::add(Clocked* c) {
  VAPRES_REQUIRE(c != nullptr, "cannot group a null component");
  VAPRES_REQUIRE(c->group_ == nullptr || c->group_ == this,
                 c->name() + ": already in another activity group");
  if (c->group_ == this) return;
  c->group_ = this;
  members_.push_back(c);
  // A new member may be mid-work; don't let a stale memo park it.
  memo_epoch_ = 0;
  c->wake();
}

void ActivityGroup::remove(Clocked* c) {
  auto it = std::find(members_.begin(), members_.end(), c);
  if (it == members_.end()) return;
  members_.erase(it);
  c->group_ = nullptr;
  memo_epoch_ = 0;
}

bool ActivityGroup::quiescent(std::uint64_t epoch) {
  if (epoch != 0 && epoch == memo_epoch_) return memo_quiescent_;
  memo_epoch_ = epoch;
  memo_quiescent_ = true;
  for (Clocked* c : members_) {
    if (!c->quiescent()) {
      memo_quiescent_ = false;
      break;
    }
  }
  return memo_quiescent_;
}

void ActivityGroup::wake_all() {
  for (Clocked* c : members_) c->activate();
}

ClockDomain::ClockDomain(std::string name, double frequency_mhz)
    : name_(std::move(name)), period_ps_(period_ps_from_mhz(frequency_mhz)) {}

void ClockDomain::reanchor() {
  VAPRES_REQUIRE(now_ != nullptr,
                 "clock domain must be owned by a Simulator before use");
  anchor_ps_ = *now_;
}

void ClockDomain::set_frequency_mhz(double mhz) {
  period_ps_ = period_ps_from_mhz(mhz);
  // Next edge is one new period from the moment of the change, which is how
  // a glitch-free BUFGMUX switchover behaves to first order.
  reanchor();
}

void ClockDomain::set_enabled(bool enabled) {
  if (enabled && !enabled_) {
    reanchor();
  }
  enabled_ = enabled;
}

void ClockDomain::attach(Clocked* component) {
  VAPRES_REQUIRE(component != nullptr, "cannot attach null component");
  VAPRES_REQUIRE(component->domain_ == nullptr,
                 component->name() + ": already attached to a clock domain");
  bool was_empty = true;
  for (const Clocked* c : components_) {
    if (c != nullptr) {
      was_empty = false;
      break;
    }
  }
  if (was_empty && now_ != nullptr) {
    // A domain with no components is not scheduled; restart its edge
    // schedule from the present so the first edge is not in the past.
    reanchor();
  }
  component->domain_ = this;
  component->active_ = true;
  ++active_count_;
  ++live_count_;
  components_.push_back(component);
  component->slot_ = components_.size() - 1;
  // Appending keeps the awake cache sorted; a mid-tick attach is fenced
  // from the in-flight passes by their size snapshot.
  if (cache_valid_) awake_idx_.push_back(component->slot_);
}

void ClockDomain::detach(Clocked* component) {
  bool found = false;
  for (Clocked*& slot : components_) {
    if (slot == component) {
      slot = nullptr;
      found = true;
    }
  }
  if (!found) return;
  if (ticking_) {
    // Mutating the awake cache mid-pass would shift entries under the
    // pass's cursor; degrade the rest of the tick to an exact full scan
    // (the nulled slot is skipped there) and rebuild lazily.
    cache_valid_ = false;
    woke_in_tick_ = true;
  } else if (cache_valid_ && component->active_) {
    const auto it = std::lower_bound(awake_idx_.begin(), awake_idx_.end(),
                                     component->slot_);
    if (it != awake_idx_.end() && *it == component->slot_) {
      awake_idx_.erase(it);
    }
  }
  if (component->active_) --active_count_;
  --live_count_;
  component->domain_ = nullptr;
  component->active_ = true;
  // Nulled slots keep the in-flight eval/commit iteration valid when a
  // component detaches from inside a tick (module eviction); the list is
  // compacted once the passes finish.
  if (ticking_) {
    pending_compaction_ = true;
  } else {
    compact();
  }
}

void ClockDomain::compact() {
  components_.erase(
      std::remove(components_.begin(), components_.end(), nullptr),
      components_.end());
  pending_compaction_ = false;
  cache_valid_ = false;  // slot indices shifted
}

Picoseconds ClockDomain::next_edge(Picoseconds /*now*/) const {
  return anchor_ps_ + period_ps_;
}

bool ClockDomain::exhaustive() const {
  return !activity_driven_ || FaultInjector::instance().enabled();
}

void ClockDomain::note_wake(Clocked* component) {
  if (active_count_ == 0 && !components_.empty()) {
    // The whole domain was asleep; this wake re-arms it.
    auto& bus = obs::EventBus::instance();
    if (bus.enabled(obs::Subsystem::kKernel)) {
      bus.instant(obs::Subsystem::kKernel, obs::ev::kDomainWake,
                  bus.track(name_), now_ != nullptr ? *now_ : anchor_ps_,
                  cycle_count_);
    }
  }
  ++active_count_;
  ++stats_.component_wakes;
  // A wake landing while this domain's own passes are in flight must
  // degrade them to full scans: the woken component may still be due its
  // commit this very cycle (visit-time flag semantics). The flag is set
  // before the cache mutation below, so the passes never read a cache
  // whose entries shifted under their cursor.
  if (ticking_) woke_in_tick_ = true;
  if (cache_valid_) {
    const std::size_t slot = component->slot_;
    awake_idx_.insert(
        std::lower_bound(awake_idx_.begin(), awake_idx_.end(), slot), slot);
  }
}

void ClockDomain::rebuild_awake_cache() {
  awake_idx_.clear();
  for (std::size_t i = 0; i < components_.size(); ++i) {
    Clocked* c = components_[i];
    if (c == nullptr) continue;
    c->slot_ = i;
    if (c->active_) awake_idx_.push_back(i);
  }
  cache_valid_ = true;
}

void ClockDomain::tick() {
  const bool run_all = exhaustive();
  if (run_all && active_count_ < static_cast<int>(components_.size())) {
    // Exhaustive delivery (reference mode or fault injection armed, whose
    // per-commit RNG draws must all happen): re-arm everything so the
    // activity flags are conservative when quiescence-aware delivery
    // resumes.
    for (Clocked* c : components_) {
      if (c != nullptr && !c->active_) {
        c->active_ = true;
        ++active_count_;
      }
    }
    cache_valid_ = false;
  }
  // The index-jump walk only pays off when most components sleep; a dense
  // domain (streaming at full rate) runs the plain flag-checked scan,
  // whose per-slot cost is lower than the jump bookkeeping.
  bool use_cache = false;
  if (!run_all && active_count_ * 4 <= live_count_) {
    if (!cache_valid_) rebuild_awake_cache();
    use_cache = true;
  }
  ticking_ = true;
  woke_in_tick_ = false;
  // Components attached mid-tick get their first edge next tick; activity
  // flags are read at visit time, so a component woken by an earlier
  // component's commit this very cycle still receives the edge — exactly
  // the cycle the exhaustive kernel would have run it with effect.
  //
  // Each pass walks the awake-index cache while it can (asleep slots
  // cannot act, so skipping them wholesale is exact) and falls back to
  // scanning every slot from the current position the moment a wake lands
  // mid-tick, which reproduces the uncached kernel's delivery order and
  // visit-time flag reads bit for bit.
  const std::size_t n = components_.size();
  const std::uint64_t present = static_cast<std::uint64_t>(live_count_);
  std::uint64_t delivered = 0;
  std::size_t k = 0;  // cache cursor (eval pass)
  for (std::size_t i = 0; i < n; ++i) {
    if (use_cache && !woke_in_tick_) {
      while (k < awake_idx_.size() && awake_idx_[k] < i) ++k;
      if (k == awake_idx_.size()) break;
      i = awake_idx_[k];
      if (i >= n) break;  // attached mid-tick: first edge next tick
    }
    Clocked* c = components_[i];
    if (c != nullptr && (run_all || c->active_)) c->eval();
  }
  k = 0;  // cache cursor (commit pass)
  for (std::size_t i = 0; i < n; ++i) {
    if (use_cache && !woke_in_tick_) {
      while (k < awake_idx_.size() && awake_idx_[k] < i) ++k;
      if (k == awake_idx_.size()) break;
      i = awake_idx_[k];
      if (i >= n) break;
    }
    Clocked* c = components_[i];
    if (c != nullptr && (run_all || c->active_)) {
      c->commit();
      ++delivered;
    }
  }
  ticking_ = false;
  if (pending_compaction_) compact();
  ++cycle_count_;
  ++stats_.cycles_active;
  stats_.edges_delivered += delivered;
  // `present` is from tick start; a component that committed and then
  // detached itself mid-tick can make delivered exceed it.
  stats_.edges_skipped += present > delivered ? present - delivered : 0;
  if (!run_all && cycle_count_ % kPollInterval == 0) poll_quiescence();
}

void ClockDomain::poll_quiescence() {
  if (active_count_ == 0) return;
  const std::uint64_t epoch = ++g_poll_epoch;
  auto stays_awake = [&](Clocked* c) {
    if (c == nullptr || !c->active_) return false;
    if (!c->quiescent()) return true;
    if (c->group_ != nullptr && !c->group_->quiescent(epoch)) return true;
    c->active_ = false;
    --active_count_;
    return false;
  };
  if (cache_valid_) {
    // The cache holds exactly the awake components, so the sweep is
    // O(awake); deactivated entries are filtered out in place.
    auto out = awake_idx_.begin();
    for (const std::size_t i : awake_idx_) {
      if (stays_awake(components_[i])) *out++ = i;
    }
    awake_idx_.erase(out, awake_idx_.end());
  } else {
    for (Clocked* c : components_) (void)stays_awake(c);
  }
  if (active_count_ == 0) {
    ++stats_.domain_sleeps;
    auto& bus = obs::EventBus::instance();
    if (bus.enabled(obs::Subsystem::kKernel)) {
      bus.instant(obs::Subsystem::kKernel, obs::ev::kDomainSleep,
                  bus.track(name_), now_ != nullptr ? *now_ : anchor_ps_,
                  cycle_count_);
    }
  }
}

void ClockDomain::skip_edge(Picoseconds now) {
  ++cycle_count_;
  ++stats_.cycles_quiescent;
  anchor_ps_ = now;
  stats_.edges_skipped += static_cast<std::uint64_t>(live_count_);
}

void ClockDomain::fast_forward(Picoseconds until, bool inclusive) {
  if (!enabled_ || components_.empty() || active_count_ > 0) return;
  if (exhaustive()) return;  // scheduled normally; nothing is uncounted
  const Picoseconds first = anchor_ps_ + period_ps_;
  if (inclusive ? first > until : first >= until) return;
  const Picoseconds span = until - anchor_ps_;
  const Cycles k = inclusive ? span / period_ps_ : (span - 1) / period_ps_;
  cycle_count_ += k;
  stats_.cycles_quiescent += k;
  anchor_ps_ += k * period_ps_;
  stats_.edges_skipped += k * static_cast<std::uint64_t>(live_count_);
}

}  // namespace vapres::sim
