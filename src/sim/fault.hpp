// Deterministic fault injection.
//
// A process-wide hub (mirroring sim::Trace) that components query at
// named fault sites: the ICAP asks whether the in-flight bitstream was
// corrupted or the transfer timed out, FIFOs ask whether a pushed word
// is dropped or duplicated, switch boxes whether an output mux went
// stuck, the scrubber whether a configured frame took an upset. All
// decisions come from one SplitMix64 stream plus per-site deterministic
// "armed" windows (fire on exactly the Nth..N+k-1th opportunity), so a
// run is bit-for-bit reproducible from its seed: same seed, same event
// order, same counters. Disabled (the default) every hook is a single
// inline branch; no RNG state advances and no counters move.
//
// The hub is also the recovery scoreboard: the subsystems that heal
// (reconfiguration retry/fallback, switcher rollback, scrubber repair)
// report here so core::collect_stats can show faults next to recoveries.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::sim {

/// Named fault sites, one per hook wired into the model.
enum class FaultSite : int {
  kIcapBitstreamCorruption = 0,  ///< word corruption / CRC mismatch at ICAP
  kIcapTransferTimeout,          ///< PR transfer timeout at the ICAP
  kFifoDropWord,                 ///< a pushed FIFO word vanishes
  kFifoDuplicateWord,            ///< a pushed FIFO word arrives twice
  kSwitchBoxStuckPort,           ///< an output mux latches its last flit
  kConfigFrameUpset,             ///< SEU in a configured PRR frame
};
inline constexpr int kNumFaultSites = 6;

const char* fault_site_name(FaultSite site);

/// Recovery actions the self-healing layers report to the scoreboard.
enum class RecoveryEvent : int {
  kIcapRetry = 0,     ///< reconfiguration attempt repeated after backoff
  kSourceFallback,    ///< SDRAM-array source abandoned for CompactFlash
  kSwitchRollback,    ///< module switch aborted, source module kept
  kScrubRepair,       ///< scrubber repaired a frame or stuck mux
};
inline constexpr int kNumRecoveryEvents = 4;

const char* recovery_event_name(RecoveryEvent event);

class FaultInjector {
 public:
  static FaultInjector& instance() { return instance_; }

  /// Arms injection: resets the RNG to `seed` and clears every plan and
  /// counter, so two enable(seed) runs replay identically.
  void enable(std::uint64_t seed);

  /// Stops injection. Counters stay readable until the next enable().
  void disable() { enabled_ = false; }

  bool enabled() const { return enabled_; }

  /// Bernoulli injection with probability `p` per opportunity at `site`.
  void set_probability(FaultSite site, double p);

  /// Deterministic injection: fire on opportunities [nth, nth + count).
  /// Overrides any previous window for the site; probability still
  /// applies outside the window.
  void arm(FaultSite site, std::uint64_t nth, std::uint64_t count = 1);

  /// The hook. Counts an opportunity at `site` and decides whether a
  /// fault fires there. Armed windows are checked first and consume no
  /// RNG, so targeted tests stay independent of probabilistic draws.
  bool should_fire(FaultSite site);

  /// Recovery scoreboard, reported by the self-healing subsystems.
  void note_recovery(RecoveryEvent event);

  /// Wires the simulation clock used to stamp inject/recover events on
  /// the obs::EventBus. The pointer must stay valid until cleared (the
  /// owning VapresSystem sets it in its constructor and clears it in its
  /// destructor). Null — the default — stamps events at time 0.
  void set_time_source(const Picoseconds* now) { now_ = now; }

  std::uint64_t injected(FaultSite site) const;
  std::uint64_t opportunities(FaultSite site) const;
  std::uint64_t total_injected() const;
  std::uint64_t recoveries(RecoveryEvent event) const;
  std::uint64_t total_recoveries() const;

  /// One line per nonzero counter; stable ordering (replay comparisons).
  std::string report() const;

 private:
  // Checkpoint/restore overlays the RNG stream, per-site plans, and the
  // recovery scoreboard so a mid-storm snapshot replays bit-identically
  // (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  struct SitePlan {
    double probability = 0.0;
    std::uint64_t armed_at = 0;
    std::uint64_t armed_count = 0;  // 0 = no window
    std::uint64_t opportunities = 0;
    std::uint64_t injected = 0;
  };

  FaultInjector() = default;

  Picoseconds now() const { return now_ != nullptr ? *now_ : 0; }

  bool enabled_ = false;
  const Picoseconds* now_ = nullptr;
  SplitMix64 rng_{};
  std::array<SitePlan, kNumFaultSites> sites_{};
  std::array<std::uint64_t, kNumRecoveryEvents> recoveries_{};

  static FaultInjector instance_;
};

/// RAII enable/disable for tests: injection is active exactly while the
/// scope lives, so a throwing test cannot leak faults into the next one.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(std::uint64_t seed) {
    FaultInjector::instance().enable(seed);
  }
  ~ScopedFaultInjection() { FaultInjector::instance().disable(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector* operator->() const { return &FaultInjector::instance(); }
};

}  // namespace vapres::sim
