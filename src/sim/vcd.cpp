#include "sim/vcd.hpp"

#include <bitset>

#include "sim/check.hpp"

namespace vapres::sim {

VcdWriter::VcdWriter(std::ostream& out, Picoseconds timescale_ps)
    : out_(out), timescale_ps_(timescale_ps) {
  VAPRES_REQUIRE(timescale_ps_ >= 1, "VCD timescale must be >= 1 ps");
}

std::string VcdWriter::next_id() {
  // Printable identifier codes: ! .. ~ then two-character codes.
  std::string id;
  int n = id_counter_++;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n = n / 94 - 1;
  } while (n >= 0);
  return id;
}

void VcdWriter::add_bool(const std::string& name, const bool* signal) {
  VAPRES_REQUIRE(signal != nullptr, "null VCD signal: " + name);
  VAPRES_REQUIRE(!header_written_, "VCD signals must precede the header");
  Signal s;
  s.name = name;
  s.id = next_id();
  s.width = 1;
  s.read = [signal] { return *signal ? 1u : 0u; };
  signals_.push_back(std::move(s));
}

void VcdWriter::add_word(const std::string& name,
                         const std::uint32_t* signal) {
  VAPRES_REQUIRE(signal != nullptr, "null VCD signal: " + name);
  VAPRES_REQUIRE(!header_written_, "VCD signals must precede the header");
  Signal s;
  s.name = name;
  s.id = next_id();
  s.width = 32;
  s.read = [signal] { return *signal; };
  signals_.push_back(std::move(s));
}

void VcdWriter::add_probe(const std::string& name,
                          std::function<std::uint32_t()> probe) {
  VAPRES_REQUIRE(probe != nullptr, "null VCD probe: " + name);
  VAPRES_REQUIRE(!header_written_, "VCD signals must precede the header");
  Signal s;
  s.name = name;
  s.id = next_id();
  s.width = 32;
  s.read = std::move(probe);
  signals_.push_back(std::move(s));
}

void VcdWriter::write_header() {
  if (header_written_) return;
  header_written_ = true;
  out_ << "$date vapres simulation $end\n"
       << "$version vapres VcdWriter $end\n"
       << "$timescale " << timescale_ps_ << " ps $end\n"
       << "$scope module vapres $end\n";
  for (const Signal& s : signals_) {
    out_ << "$var " << (s.width == 1 ? "wire" : "reg") << " " << s.width
         << " " << s.id << " " << s.name << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::emit_value(const Signal& s, std::uint32_t value) {
  if (s.width == 1) {
    out_ << (value ? '1' : '0') << s.id << '\n';
  } else {
    out_ << 'b' << std::bitset<32>(value).to_string() << ' ' << s.id
         << '\n';
  }
}

void VcdWriter::sample(Picoseconds now) {
  write_header();
  bool time_emitted = false;
  for (Signal& s : signals_) {
    const std::uint32_t v = s.read();
    if (s.has_last && v == s.last) continue;
    if (!time_emitted) {
      VAPRES_REQUIRE(!have_time_ || now >= last_time_,
                     "VCD samples must be time-ordered");
      out_ << '#' << now / timescale_ps_ << '\n';
      last_time_ = now;
      have_time_ = true;
      time_emitted = true;
    }
    emit_value(s, v);
    s.last = v;
    s.has_last = true;
  }
}

}  // namespace vapres::sim
