#include "sim/trace.hpp"

namespace vapres::sim {

Trace& Trace::instance() {
  static Trace trace;
  return trace;
}

void Trace::emit(Picoseconds time_ps, std::string tag, std::string message) {
  if (sink_) {
    sink_(TraceRecord{time_ps, std::move(tag), std::move(message)});
  }
}

}  // namespace vapres::sim
