// Simulation time base.
//
// All simulation time is kept in integer picoseconds so that clock domains
// with unrelated frequencies (the paper's local clock domains, Section
// III.B.2) stay exactly ordered with no floating-point drift.
#pragma once

#include <cstdint>

#include "sim/check.hpp"

namespace vapres::sim {

/// Absolute simulation time or duration, in picoseconds.
using Picoseconds = std::uint64_t;

/// A count of clock cycles in some clock domain.
using Cycles = std::uint64_t;

inline constexpr Picoseconds kPsPerSecond = 1'000'000'000'000ULL;

/// Converts a frequency in MHz to a clock period in integer picoseconds.
/// 100 MHz -> 10'000 ps. The frequency must divide evenly enough that the
/// period is at least 1 ps.
inline Picoseconds period_ps_from_mhz(double mhz) {
  VAPRES_REQUIRE(mhz > 0.0, "clock frequency must be positive");
  const double period = 1e6 / mhz;  // ps
  const auto ps = static_cast<Picoseconds>(period + 0.5);
  VAPRES_REQUIRE(ps >= 1, "clock frequency too high for ps resolution");
  return ps;
}

/// Converts a period in picoseconds back to a frequency in MHz.
inline double mhz_from_period_ps(Picoseconds ps) {
  VAPRES_REQUIRE(ps > 0, "period must be positive");
  return 1e6 / static_cast<double>(ps);
}

/// Converts picoseconds to seconds (for reporting only).
inline double seconds(Picoseconds ps) {
  return static_cast<double>(ps) / static_cast<double>(kPsPerSecond);
}

/// Converts picoseconds to milliseconds (for reporting only).
inline double milliseconds(Picoseconds ps) { return seconds(ps) * 1e3; }

}  // namespace vapres::sim
