// Lightweight precondition / invariant checking for the VAPRES model.
//
// Model-construction errors (bad parameters, illegal wiring, misuse of the
// Table-2 API) throw vapres::ModelError so tests can assert on them;
// internal invariant violations abort via the same path.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vapres {

/// Error thrown on any violated precondition or invariant in the model.
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "VAPRES check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    os << " - " << msg;
  }
  throw ModelError(os.str());
}

}  // namespace detail
}  // namespace vapres

/// Precondition / invariant check; throws vapres::ModelError on failure.
#define VAPRES_REQUIRE(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::vapres::detail::raise_check_failure(#cond, __FILE__, __LINE__,     \
                                            (msg));                        \
    }                                                                      \
  } while (false)
