#include "sim/fault.hpp"

#include <sstream>

#include "obs/bus.hpp"
#include "sim/check.hpp"

namespace vapres::sim {

FaultInjector FaultInjector::instance_;

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kIcapBitstreamCorruption:
      return "icap_bitstream_corruption";
    case FaultSite::kIcapTransferTimeout:
      return "icap_transfer_timeout";
    case FaultSite::kFifoDropWord:
      return "fifo_drop_word";
    case FaultSite::kFifoDuplicateWord:
      return "fifo_duplicate_word";
    case FaultSite::kSwitchBoxStuckPort:
      return "switch_box_stuck_port";
    case FaultSite::kConfigFrameUpset:
      return "config_frame_upset";
  }
  return "<unknown>";
}

const char* recovery_event_name(RecoveryEvent event) {
  switch (event) {
    case RecoveryEvent::kIcapRetry:
      return "icap_retry";
    case RecoveryEvent::kSourceFallback:
      return "source_fallback";
    case RecoveryEvent::kSwitchRollback:
      return "switch_rollback";
    case RecoveryEvent::kScrubRepair:
      return "scrub_repair";
  }
  return "<unknown>";
}

namespace {

std::size_t site_index(FaultSite site) {
  const int i = static_cast<int>(site);
  VAPRES_REQUIRE(i >= 0 && i < kNumFaultSites, "fault site out of range");
  return static_cast<std::size_t>(i);
}

std::size_t event_index(RecoveryEvent event) {
  const int i = static_cast<int>(event);
  VAPRES_REQUIRE(i >= 0 && i < kNumRecoveryEvents,
                 "recovery event out of range");
  return static_cast<std::size_t>(i);
}

}  // namespace

void FaultInjector::enable(std::uint64_t seed) {
  rng_ = SplitMix64(seed);
  sites_.fill(SitePlan{});
  recoveries_.fill(0);
  enabled_ = true;
}

void FaultInjector::set_probability(FaultSite site, double p) {
  VAPRES_REQUIRE(p >= 0.0 && p <= 1.0, "fault probability must be in [0,1]");
  sites_[site_index(site)].probability = p;
}

void FaultInjector::arm(FaultSite site, std::uint64_t nth,
                        std::uint64_t count) {
  SitePlan& s = sites_[site_index(site)];
  s.armed_at = nth;
  s.armed_count = count;
}

bool FaultInjector::should_fire(FaultSite site) {
  if (!enabled_) return false;
  SitePlan& s = sites_[site_index(site)];
  const std::uint64_t opp = s.opportunities++;
  bool fire = false;
  if (s.armed_count > 0 && opp >= s.armed_at &&
      opp - s.armed_at < s.armed_count) {
    fire = true;
  } else if (s.probability > 0.0 && rng_.chance(s.probability)) {
    fire = true;
  }
  if (fire) {
    ++s.injected;
    obs::EventBus::instance().instant(
        obs::Subsystem::kFault, obs::ev::kInject, /*track=*/0, now(),
        static_cast<std::uint64_t>(site), s.injected);
  }
  return fire;
}

void FaultInjector::note_recovery(RecoveryEvent event) {
  ++recoveries_[event_index(event)];
  obs::EventBus::instance().instant(
      obs::Subsystem::kFault, obs::ev::kRecover, /*track=*/0, now(),
      static_cast<std::uint64_t>(event), recoveries_[event_index(event)]);
}

std::uint64_t FaultInjector::injected(FaultSite site) const {
  return sites_[site_index(site)].injected;
}

std::uint64_t FaultInjector::opportunities(FaultSite site) const {
  return sites_[site_index(site)].opportunities;
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t n = 0;
  for (const SitePlan& s : sites_) n += s.injected;
  return n;
}

std::uint64_t FaultInjector::recoveries(RecoveryEvent event) const {
  return recoveries_[event_index(event)];
}

std::uint64_t FaultInjector::total_recoveries() const {
  std::uint64_t n = 0;
  for (std::uint64_t r : recoveries_) n += r;
  return n;
}

std::string FaultInjector::report() const {
  std::ostringstream os;
  os << "faults injected: " << total_injected() << "\n";
  for (int i = 0; i < kNumFaultSites; ++i) {
    const SitePlan& s = sites_[static_cast<std::size_t>(i)];
    if (s.injected == 0) continue;
    os << "  " << fault_site_name(static_cast<FaultSite>(i)) << ": "
       << s.injected << " (of " << s.opportunities << " opportunities)\n";
  }
  os << "recoveries: " << total_recoveries() << "\n";
  for (int i = 0; i < kNumRecoveryEvents; ++i) {
    if (recoveries_[static_cast<std::size_t>(i)] == 0) continue;
    os << "  " << recovery_event_name(static_cast<RecoveryEvent>(i)) << ": "
       << recoveries_[static_cast<std::size_t>(i)] << "\n";
  }
  return os.str();
}

}  // namespace vapres::sim
