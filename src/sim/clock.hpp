// Clock domains.
//
// VAPRES clocks the static region and each PRR independently (local clock
// domains, Section III.B.2). A ClockDomain owns a period, a gating enable
// (PRSocket CLK_en bit), and the list of components clocked by it. The
// period can be changed at runtime — the model of the MicroBlaze driving
// the BUFGMUX select through the PRSocket CLK_sel bit.
//
// The domain is quiescence-aware (docs/SIMULATOR.md): each tick delivers
// the edge only to awake components, a post-tick poll deactivates the ones
// that report quiescent, and a domain whose every component sleeps stops
// being scheduled at all — the Simulator fast-forwards its cycle counter
// analytically, so cycle_count()/cycles_to_ps stay exact across sleeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/component.hpp"
#include "sim/time.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::sim {

/// Edge-delivery accounting, per domain and aggregated by the Simulator.
struct KernelStats {
  std::uint64_t edges_delivered = 0;  ///< component edges actually run
  std::uint64_t edges_skipped = 0;    ///< component edges elided as quiescent
  std::uint64_t domain_sleeps = 0;    ///< whole-domain sleep transitions
  std::uint64_t component_wakes = 0;  ///< sleeping components re-armed
  /// Domain cycles on which at least one component received the edge.
  std::uint64_t cycles_active = 0;
  /// Domain cycles credited while the whole domain slept (skipped or
  /// fast-forwarded). cycles_active + cycles_quiescent == cycle_count().
  std::uint64_t cycles_quiescent = 0;

  KernelStats& operator+=(const KernelStats& o) {
    edges_delivered += o.edges_delivered;
    edges_skipped += o.edges_skipped;
    domain_sleeps += o.domain_sleeps;
    component_wakes += o.component_wakes;
    cycles_active += o.cycles_active;
    cycles_quiescent += o.cycles_quiescent;
    return *this;
  }
};

class ClockDomain {
 public:
  ClockDomain(std::string name, double frequency_mhz);

  const std::string& name() const { return name_; }

  double frequency_mhz() const { return mhz_from_period_ps(period_ps_); }
  Picoseconds period_ps() const { return period_ps_; }

  /// Changes the clock frequency. Takes effect from the next edge: the next
  /// rising edge occurs one *new* period after the moment of the change,
  /// which is how a BUFGMUX glitch-free switchover behaves to first order.
  void set_frequency_mhz(double mhz);

  /// Gates the clock on/off (PRSocket CLK_en). While disabled, no edges are
  /// delivered and the cycle counter does not advance. Re-enabling delivers
  /// the first edge one period after the enable.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  /// Registers a component. The domain does not own the component; the
  /// owner must outlive the domain's use. Components are clocked in
  /// registration order (eval pass then commit pass). A component attached
  /// mid-tick receives its first edge on the next tick.
  void attach(Clocked* component);
  /// Deregisters a component. Safe to call from inside a tick (a module
  /// evicted during its own eval/commit): the slot is nulled immediately
  /// and compacted after the in-flight passes finish.
  void detach(Clocked* component);

  Cycles cycle_count() const { return cycle_count_; }

  /// Current simulation time of the owning Simulator (anchor time before
  /// the domain is owned). Lets clocked components stamp observability
  /// events without holding a Simulator reference.
  Picoseconds now() const { return now_ != nullptr ? *now_ : anchor_ps_; }

  /// Converts a duration in this domain's cycles to picoseconds at the
  /// current frequency.
  Picoseconds cycles_to_ps(Cycles n) const { return n * period_ps_; }

  /// Components currently receiving edges. 0 on a non-empty enabled domain
  /// means the domain is asleep and off the schedule.
  int active_components() const { return active_count_; }
  bool asleep() const { return !components_.empty() && active_count_ == 0; }

  const KernelStats& kernel_stats() const { return stats_; }

 private:
  friend class Clocked;
  friend class Simulator;
  // Checkpoint/restore overlays cycle_count_/anchor_ps_/stats_ directly
  // (snap/system_snapshot.cpp); components are woken afterwards so the
  // first post-restore tick re-evaluates every activity flag.
  friend class ::vapres::snap::SystemSnapshot;

  /// Absolute time of the next rising edge, given current time `now`.
  Picoseconds next_edge(Picoseconds now) const;

  /// Delivers one rising edge: eval pass, then commit pass, then (every
  /// few cycles) the quiescence poll. Skips sleeping components unless
  /// running exhaustively (activity-driven off, or fault injection armed —
  /// injection draws RNG per commit opportunity, so every commit must run
  /// to keep replays bit-identical).
  void tick();

  /// Credits one edge without delivering it (whole domain asleep and the
  /// edge lands exactly on the current instant).
  void skip_edge(Picoseconds now);

  /// Analytically credits the edges a sleeping domain would have received
  /// up to `until` (inclusive of an edge exactly at `until` when
  /// `inclusive`). No-op unless the domain is enabled, non-empty, and
  /// fully asleep.
  void fast_forward(Picoseconds until, bool inclusive);

  /// Whether every component must be ticked regardless of activity flags.
  bool exhaustive() const;

  /// Post-tick sweep: deactivates components whose quiescent() report (or
  /// whole ActivityGroup) allows sleeping.
  void poll_quiescence();

  void note_wake(Clocked* component);
  void compact();

  /// Rebuilds awake_idx_ (slot indices of awake components, ascending) so
  /// a tick over a mostly-asleep domain costs O(awake), not O(attached).
  void rebuild_awake_cache();

  /// Re-anchors the edge schedule to the current simulation time (set by
  /// the owning Simulator; valid for the domain's whole lifetime).
  void reanchor();

  std::string name_;
  Picoseconds period_ps_;
  bool enabled_ = true;
  bool activity_driven_ = true;  // mirrored from the owning Simulator
  Cycles cycle_count_ = 0;
  // Time of the most recent edge (or frequency-change anchor).
  Picoseconds anchor_ps_ = 0;
  // Simulation clock of the owning simulator; used to re-anchor on
  // frequency changes and clock-enable events.
  const Picoseconds* now_ = nullptr;
  std::vector<Clocked*> components_;
  int active_count_ = 0;
  int live_count_ = 0;  // non-null slots in components_
  bool ticking_ = false;
  bool pending_compaction_ = false;
  // Slot indices of awake components, ascending — the tick fast path.
  // Invalidated by any activity-set change; a wake landing mid-tick
  // degrades the in-flight passes to full visit-time-flag scans so
  // delivery order stays identical to the uncached kernel.
  std::vector<std::size_t> awake_idx_;
  bool cache_valid_ = false;
  bool woke_in_tick_ = false;
  KernelStats stats_;
};

}  // namespace vapres::sim
