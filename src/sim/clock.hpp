// Clock domains.
//
// VAPRES clocks the static region and each PRR independently (local clock
// domains, Section III.B.2). A ClockDomain owns a period, a gating enable
// (PRSocket CLK_en bit), and the list of components clocked by it. The
// period can be changed at runtime — the model of the MicroBlaze driving
// the BUFGMUX select through the PRSocket CLK_sel bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/component.hpp"
#include "sim/time.hpp"

namespace vapres::sim {

class ClockDomain {
 public:
  ClockDomain(std::string name, double frequency_mhz);

  const std::string& name() const { return name_; }

  double frequency_mhz() const { return mhz_from_period_ps(period_ps_); }
  Picoseconds period_ps() const { return period_ps_; }

  /// Changes the clock frequency. Takes effect from the next edge: the next
  /// rising edge occurs one *new* period after the moment of the change,
  /// which is how a BUFGMUX glitch-free switchover behaves to first order.
  void set_frequency_mhz(double mhz);

  /// Gates the clock on/off (PRSocket CLK_en). While disabled, no edges are
  /// delivered and the cycle counter does not advance. Re-enabling delivers
  /// the first edge one period after the enable.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  /// Registers a component. The domain does not own the component; the
  /// owner must outlive the domain's use. Components are clocked in
  /// registration order (eval pass then commit pass).
  void attach(Clocked* component);
  void detach(Clocked* component);

  Cycles cycle_count() const { return cycle_count_; }

  /// Converts a duration in this domain's cycles to picoseconds at the
  /// current frequency.
  Picoseconds cycles_to_ps(Cycles n) const { return n * period_ps_; }

 private:
  friend class Simulator;

  /// Absolute time of the next rising edge, given current time `now`.
  Picoseconds next_edge(Picoseconds now) const;

  /// Delivers one rising edge: eval pass, then commit pass.
  void tick();

  /// Re-anchors the edge schedule to the current simulation time (set by
  /// the owning Simulator; valid for the domain's whole lifetime).
  void reanchor();

  std::string name_;
  Picoseconds period_ps_;
  bool enabled_ = true;
  Cycles cycle_count_ = 0;
  // Time of the most recent edge (or frequency-change anchor).
  Picoseconds anchor_ps_ = 0;
  // Simulation clock of the owning simulator; used to re-anchor on
  // frequency changes and clock-enable events.
  const Picoseconds* now_ = nullptr;
  std::vector<Clocked*> components_;
};

}  // namespace vapres::sim
