// VCD (value-change-dump) waveform writer.
//
// Debugging aid for the simulation model: register boolean and word
// signals (stable pointers — interface outputs, feedback wires, FIFO
// occupancies via probes) and sample them each time sample() is called;
// the writer emits a standard IEEE-1364 VCD file that any waveform
// viewer opens. Sampling is pull-based so tests and examples decide the
// observation cadence (typically once per system-clock cycle).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace vapres::sim {

class VcdWriter {
 public:
  /// `timescale_ps` is the VCD time unit (default 1 ps, matching the
  /// simulator's time base).
  explicit VcdWriter(std::ostream& out, Picoseconds timescale_ps = 1);

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Registers a 1-bit signal. The pointer must stay valid for the
  /// writer's lifetime. Call before the first sample().
  void add_bool(const std::string& name, const bool* signal);

  /// Registers a 32-bit vector signal.
  void add_word(const std::string& name, const std::uint32_t* signal);

  /// Registers a computed signal (e.g. a FIFO's occupancy).
  void add_probe(const std::string& name,
                 std::function<std::uint32_t()> probe);

  /// Writes the header (module scope + var declarations) and the initial
  /// dump. Called automatically by the first sample().
  void write_header();

  /// Samples every signal at absolute time `now`; emits changes only.
  void sample(Picoseconds now);

  std::size_t signal_count() const { return signals_.size(); }

 private:
  struct Signal {
    std::string name;
    std::string id;  // VCD identifier code
    int width = 1;
    std::function<std::uint32_t()> read;
    std::uint32_t last = 0;
    bool has_last = false;
  };

  std::string next_id();
  void emit_value(const Signal& s, std::uint32_t value);

  std::ostream& out_;
  Picoseconds timescale_ps_;
  std::vector<Signal> signals_;
  int id_counter_ = 0;
  bool header_written_ = false;
  bool have_time_ = false;
  Picoseconds last_time_ = 0;
};

}  // namespace vapres::sim
