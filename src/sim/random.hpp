// Deterministic pseudo-random number generation for workloads and
// property-test sweeps. SplitMix64: tiny, fast, and identical on every
// platform, so benchmark workloads are reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace vapres::sim {

/// SplitMix64 PRNG (public-domain algorithm by Sebastiano Vigna).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Raw generator state, for checkpoint/restore (snap subsystem): a
  /// restored stream continues exactly where the saved one stopped.
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t state) { state_ = state; }

 private:
  std::uint64_t state_;
};

}  // namespace vapres::sim
