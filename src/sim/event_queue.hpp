// One-shot event queue: callbacks scheduled at absolute simulation times.
// Used for reconfiguration-completion events, software timers, and test
// fault injection. Events at the same timestamp fire in FIFO order of
// scheduling, which keeps the simulation deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace vapres::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle that can be used to cancel a pending event.
  using EventId = std::uint64_t;

  /// Schedules `cb` to run at absolute time `when`.
  EventId schedule_at(Picoseconds when, Callback cb);

  /// True if no event is pending.
  bool empty() const { return pending_ids_.empty(); }

  /// Time of the earliest pending event. Requires !empty().
  Picoseconds next_time() const;

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// Runs (and removes) every event scheduled at time <= `now`.
  /// Events scheduled *during* this call for time <= `now` also run.
  void run_due(Picoseconds now);

  std::size_t pending() const { return pending_ids_.size(); }

 private:
  struct Entry {
    Picoseconds when = 0;
    std::uint64_t seq = 0;
    EventId id = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_ids_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;

  void drop_cancelled_head() const;
};

}  // namespace vapres::sim
