// The simulation driver.
//
// A Simulator owns a set of clock domains and a one-shot event queue and
// advances global picosecond time to the next edge or event. At a given
// timestamp, due events run first (control actions precede the clock edge
// they gate), then every coincident domain ticks (eval pass across all
// coincident domains' components, then commit pass per domain).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace vapres::sim {

class Simulator {
 public:
  Simulator() = default;

  // Domains are addressed by reference; the simulator owns them.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Creates a new clock domain clocked at `frequency_mhz`.
  ClockDomain& create_domain(std::string name, double frequency_mhz);

  Picoseconds now() const { return now_; }

  /// Schedules a one-shot callback `delay` picoseconds from now.
  EventQueue::EventId schedule_after(Picoseconds delay,
                                     EventQueue::Callback cb) {
    return events_.schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedules a one-shot callback `cycles` edges of `domain` from now
  /// (at the domain's current frequency).
  EventQueue::EventId schedule_after_cycles(const ClockDomain& domain,
                                            Cycles cycles,
                                            EventQueue::Callback cb) {
    return events_.schedule_at(now_ + domain.cycles_to_ps(cycles),
                               std::move(cb));
  }

  bool cancel(EventQueue::EventId id) { return events_.cancel(id); }

  /// Advances to the next edge/event and processes it. Returns false if
  /// nothing remains to simulate (no enabled domain, no pending event).
  bool step();

  /// Runs for `duration` picoseconds of simulated time.
  void run_for(Picoseconds duration);

  /// Runs until `domain` has advanced by `n` cycles. Other domains tick as
  /// time passes. Requires the domain to be enabled.
  void run_cycles(const ClockDomain& domain, Cycles n);

  /// Runs until `pred()` is true, checking after every step, or until
  /// `max_duration` simulated picoseconds elapse. Returns true if the
  /// predicate fired.
  template <typename Pred>
  bool run_until(Pred pred, Picoseconds max_duration) {
    const Picoseconds deadline = now_ + max_duration;
    while (!pred()) {
      if (now_ >= deadline) return false;
      if (!step()) return false;
    }
    return true;
  }

  const std::vector<std::unique_ptr<ClockDomain>>& domains() const {
    return domains_;
  }

 private:
  Picoseconds now_ = 0;
  EventQueue events_;
  std::vector<std::unique_ptr<ClockDomain>> domains_;
};

}  // namespace vapres::sim
