// The simulation driver.
//
// A Simulator owns a set of clock domains and a one-shot event queue and
// advances global picosecond time to the next edge or event. At a given
// timestamp, due events run first (control actions precede the clock edge
// they gate), then every coincident domain ticks (eval pass across all
// coincident domains' components, then commit pass per domain).
//
// The kernel is activity-driven by default (docs/SIMULATOR.md): domains
// whose every component reports quiescent stop being scheduled, their
// cycle counters are fast-forwarded analytically, and simulated time jumps
// straight to the next event or active edge. set_activity_driven(false)
// restores the exhaustive tick-everything reference kernel, which the
// lockstep differential tests compare against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::sim {

class Simulator {
 public:
  Simulator() = default;

  // Domains are addressed by reference; the simulator owns them.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Creates a new clock domain clocked at `frequency_mhz`.
  ClockDomain& create_domain(std::string name, double frequency_mhz);

  Picoseconds now() const { return now_; }
  /// Stable pointer to the simulation clock, for hubs that must stamp
  /// events without holding a Simulator reference (sim::FaultInjector).
  const Picoseconds* now_ptr() const { return &now_; }

  /// Schedules a one-shot callback `delay` picoseconds from now.
  EventQueue::EventId schedule_after(Picoseconds delay,
                                     EventQueue::Callback cb) {
    return events_.schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedules a one-shot callback `cycles` edges of `domain` from now
  /// (at the domain's current frequency).
  EventQueue::EventId schedule_after_cycles(const ClockDomain& domain,
                                            Cycles cycles,
                                            EventQueue::Callback cb) {
    return events_.schedule_at(now_ + domain.cycles_to_ps(cycles),
                               std::move(cb));
  }

  bool cancel(EventQueue::EventId id) { return events_.cancel(id); }

  /// Selects the kernel: activity-driven (default) skips quiescent
  /// components and sleeping domains; exhaustive (false) ticks every
  /// component of every enabled domain on every edge — the reference for
  /// differential testing. Switchable at any point; activity flags stay
  /// conservative across the transition.
  void set_activity_driven(bool on);
  bool activity_driven() const { return activity_driven_; }

  /// Edge-delivery counters aggregated over all domains.
  KernelStats kernel_stats() const;

  /// Advances to the next edge/event and processes it. Returns false if
  /// nothing remains to simulate (no event pending and no enabled domain
  /// with an awake component).
  bool step();

  /// Runs for exactly `duration` picoseconds of simulated time. Activity
  /// landing on the final instant is still delivered; `now()` ends at the
  /// deadline even when the system went idle earlier.
  void run_for(Picoseconds duration);

  /// Runs until `domain` has advanced by `n` cycles. Other domains tick as
  /// time passes. Requires the domain to be enabled.
  void run_cycles(const ClockDomain& domain, Cycles n);

  /// Runs until `pred()` is true, checking after every delivered step, or
  /// until `max_duration` simulated picoseconds elapse. The deadline is
  /// inclusive: an edge or event landing exactly `max_duration` from now
  /// is still delivered (and the predicate checked) before giving up, and
  /// the simulation never advances past the deadline. Returns true if the
  /// predicate fired. When the whole system is asleep, time jumps directly
  /// to the deadline (crediting skipped cycles) and the predicate is
  /// checked there.
  template <typename Pred>
  bool run_until(Pred pred, Picoseconds max_duration) {
    const Picoseconds deadline = now_ + max_duration;
    while (!pred()) {
      if (now_ >= deadline) return false;
      if (!advance_to(deadline)) {
        // Nothing left to deliver at or before the deadline; we coasted
        // to it, fast-forwarding any sleeping domains.
        return pred();
      }
    }
    return true;
  }

  const std::vector<std::unique_ptr<ClockDomain>>& domains() const {
    return domains_;
  }

 private:
  // Checkpoint/restore sets now_ directly once the event queue is empty
  // (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  /// Time of the next schedulable activity (event or awake-domain edge),
  /// or Picoseconds max when there is none.
  Picoseconds next_activity() const;

  /// Advances to `t` and processes everything due there: strictly-earlier
  /// sleep credits, due events, coincident edges, zero-delay events.
  void deliver_at(Picoseconds t);

  /// One bounded scheduling quantum: delivers the next activity if it lies
  /// at or before `limit` and returns true; otherwise coasts straight to
  /// `limit` (crediting sleeping domains, inclusive of edges exactly on
  /// `limit`) and returns false.
  bool advance_to(Picoseconds limit);

  Picoseconds now_ = 0;
  bool activity_driven_ = true;
  EventQueue events_;
  std::vector<std::unique_ptr<ClockDomain>> domains_;
};

}  // namespace vapres::sim
