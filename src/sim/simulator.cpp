#include "sim/simulator.hpp"

#include <limits>

#include "sim/check.hpp"

namespace vapres::sim {

ClockDomain& Simulator::create_domain(std::string name, double frequency_mhz) {
  auto domain = std::make_unique<ClockDomain>(std::move(name), frequency_mhz);
  domain->now_ = &now_;
  domain->anchor_ps_ = now_;
  domains_.push_back(std::move(domain));
  return *domains_.back();
}

bool Simulator::step() {
  constexpr auto kNever = std::numeric_limits<Picoseconds>::max();

  Picoseconds next = kNever;
  for (const auto& d : domains_) {
    if (!d->enabled() || d->components_.empty()) continue;
    next = std::min(next, d->next_edge(now_));
  }
  if (!events_.empty()) {
    next = std::min(next, events_.next_time());
  }
  if (next == kNever) return false;

  VAPRES_REQUIRE(next >= now_, "simulation time cannot go backwards");
  now_ = next;

  // Control events first: a PRSocket write scheduled for this instant takes
  // effect before the clock edge it gates.
  events_.run_due(now_);

  // Tick every enabled domain whose edge falls exactly at `now_`. Domains
  // that re-anchored during the events above naturally skip this instant.
  for (const auto& d : domains_) {
    if (!d->enabled() || d->components_.empty()) continue;
    if (d->next_edge(now_) == now_) {
      d->tick();
      d->anchor_ps_ = now_;
    }
  }

  // Events scheduled *during* the edge for "now" (zero-delay callbacks)
  // fire before time advances further.
  events_.run_due(now_);
  return true;
}

void Simulator::run_for(Picoseconds duration) {
  const Picoseconds deadline = now_ + duration;
  while (now_ < deadline) {
    if (!step()) return;
  }
}

void Simulator::run_cycles(const ClockDomain& domain, Cycles n) {
  VAPRES_REQUIRE(domain.enabled(), "run_cycles on a gated clock domain");
  const Cycles target = domain.cycle_count() + n;
  while (domain.cycle_count() < target) {
    VAPRES_REQUIRE(step(), "simulation ran dry before requested cycle count");
  }
}

}  // namespace vapres::sim
