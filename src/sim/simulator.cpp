#include "sim/simulator.hpp"

#include <limits>

#include "sim/check.hpp"

namespace vapres::sim {

namespace {
constexpr auto kNever = std::numeric_limits<Picoseconds>::max();
}  // namespace

ClockDomain& Simulator::create_domain(std::string name, double frequency_mhz) {
  auto domain = std::make_unique<ClockDomain>(std::move(name), frequency_mhz);
  domain->now_ = &now_;
  domain->anchor_ps_ = now_;
  domain->activity_driven_ = activity_driven_;
  domains_.push_back(std::move(domain));
  return *domains_.back();
}

void Simulator::set_activity_driven(bool on) {
  activity_driven_ = on;
  for (auto& d : domains_) d->activity_driven_ = on;
}

KernelStats Simulator::kernel_stats() const {
  KernelStats total;
  for (const auto& d : domains_) total += d->stats_;
  return total;
}

Picoseconds Simulator::next_activity() const {
  Picoseconds next = kNever;
  for (const auto& d : domains_) {
    if (!d->enabled() || d->components_.empty()) continue;
    // A fully-asleep domain has no schedulable edge; its counter is
    // fast-forwarded when time moves. Exhaustive mode keeps every domain
    // on the schedule.
    if (d->active_count_ == 0 && !d->exhaustive()) continue;
    next = std::min(next, d->next_edge(now_));
  }
  if (!events_.empty()) {
    next = std::min(next, events_.next_time());
  }
  return next;
}

void Simulator::deliver_at(Picoseconds t) {
  VAPRES_REQUIRE(t >= now_, "simulation time cannot go backwards");
  now_ = t;

  // Credit sleeping domains the edges they would have received strictly
  // before this instant. Their edge exactly *at* this instant is decided
  // after the events below run — an event here may retune the domain
  // (cancelling the edge, as a re-anchor does for awake domains) or wake
  // it (turning the edge into a real tick). The active_count_ guard keeps
  // this a branch, not a call, on the hot all-awake path.
  for (const auto& d : domains_) {
    if (d->active_count_ == 0) d->fast_forward(now_, /*inclusive=*/false);
  }

  // Control events first: a PRSocket write scheduled for this instant takes
  // effect before the clock edge it gates.
  if (!events_.empty()) events_.run_due(now_);

  // Tick every enabled domain whose edge falls exactly at `now_`. Domains
  // that re-anchored during the events above naturally skip this instant;
  // domains still fully asleep take the edge as a credited skip.
  for (const auto& d : domains_) {
    if (!d->enabled() || d->components_.empty()) continue;
    if (d->next_edge(now_) != now_) continue;
    if (d->active_count_ == 0 && !d->exhaustive()) {
      d->skip_edge(now_);
    } else {
      d->tick();
      d->anchor_ps_ = now_;
    }
  }

  // Events scheduled *during* the edge for "now" (zero-delay callbacks)
  // fire before time advances further.
  if (!events_.empty()) events_.run_due(now_);
}

bool Simulator::step() {
  const Picoseconds next = next_activity();
  if (next == kNever) return false;
  deliver_at(next);
  return true;
}

bool Simulator::advance_to(Picoseconds limit) {
  const Picoseconds next = next_activity();
  if (next > limit) {
    // Nothing to deliver at or before `limit`: coast straight there.
    // Sleeping domains are credited every edge up to and including the
    // limit itself — the edges the exhaustive kernel would have ticked.
    if (now_ < limit) {
      now_ = limit;
      for (const auto& d : domains_) d->fast_forward(limit, /*inclusive=*/true);
    }
    return false;
  }
  deliver_at(next);
  return true;
}

void Simulator::run_for(Picoseconds duration) {
  const Picoseconds deadline = now_ + duration;
  while (now_ < deadline) {
    if (!advance_to(deadline)) return;  // coasted to the deadline
  }
}

void Simulator::run_cycles(const ClockDomain& domain, Cycles n) {
  VAPRES_REQUIRE(domain.enabled(), "run_cycles on a gated clock domain");
  const Cycles target = domain.cycle_count() + n;
  while (domain.cycle_count() < target) {
    // Absolute time of the edge that completes the request at the domain's
    // current frequency; recomputed every quantum because an event in
    // between may retune or gate the domain.
    const Picoseconds goal =
        domain.anchor_ps_ +
        (target - domain.cycle_count()) * domain.period_ps_;
    if (!advance_to(goal)) {
      // Coasted to the goal. A sleeping domain was credited up to the
      // target; a gated or empty domain can never get there.
      VAPRES_REQUIRE(domain.cycle_count() >= target,
                     "simulation ran dry before requested cycle count");
    }
  }
}

}  // namespace vapres::sim
