#include "load/fleet_soak.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "fleet/controlplane.hpp"
#include "load/soak.hpp"
#include "obs/metrics.hpp"
#include "sim/fault.hpp"
#include "sim/random.hpp"

namespace vapres::load {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

std::string route_hist_name(const std::string& fabric, bool first_choice) {
  return "fleet.route." + fabric +
         (first_choice ? ".first.cycles" : ".fallback.cycles");
}

/// The FaultInjector is process-global; never leak an enabled storm
/// into whatever runs after the soak (other tests in the same binary).
struct StormGuard {
  ~StormGuard() { sim::FaultInjector::instance().disable(); }
};

}  // namespace

std::string FleetSoakResult::summary() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "fleet soak: %llu lifetimes (%llu submitted, %llu admitted, "
                "%llu rejected, %llu quota-rejected) in %.2fs = %.0f "
                "lifetimes/s\n",
                static_cast<unsigned long long>(lifetimes_completed),
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(quota_rejected), wall_seconds,
                lifetimes_per_second);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  fallbacks %llu, migrations %llu (moved %llu, rolled back "
                "%llu, skipped %llu, lost %llu), quota preempt/grow/shrink "
                "%llu/%llu/%llu\n",
                static_cast<unsigned long long>(route_fallbacks),
                static_cast<unsigned long long>(migrations_attempted),
                static_cast<unsigned long long>(migrations_moved),
                static_cast<unsigned long long>(migrations_rolled_back),
                static_cast<unsigned long long>(migrations_skipped),
                static_cast<unsigned long long>(migrations_lost),
                static_cast<unsigned long long>(quota_preemptions),
                static_cast<unsigned long long>(quota_grows),
                static_cast<unsigned long long>(quota_shrinks));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  control plane: %llu agent kills, %llu replay checks, "
                "%llu reconcile violations\n",
                static_cast<unsigned long long>(agent_kills),
                static_cast<unsigned long long>(replay_checks),
                static_cast<unsigned long long>(reconcile_violations));
  out += buf;
  if (health_ticks > 0 || breaches > 0 || flight_bundles > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "  health: %llu ticks (%.3fs), %llu breaches (%llu cleared), "
        "%llu isolations (%llu lifted), %llu drains, %llu flight "
        "bundles, %llu faults\n",
        static_cast<unsigned long long>(health_ticks), health_wall_seconds,
        static_cast<unsigned long long>(breaches),
        static_cast<unsigned long long>(breaches_cleared),
        static_cast<unsigned long long>(isolations),
        static_cast<unsigned long long>(unisolations),
        static_cast<unsigned long long>(drains),
        static_cast<unsigned long long>(flight_bundles),
        static_cast<unsigned long long>(faults_injected));
    out += buf;
  }
  for (const RouteLatency& rl : route_latency) {
    std::snprintf(buf, sizeof(buf),
                  "  route latency %s: first-choice p50/p99 %llu/%llu "
                  "(%llu apps), fallback p50/p99 %llu/%llu (%llu apps)\n",
                  rl.fabric.c_str(),
                  static_cast<unsigned long long>(rl.first_p50),
                  static_cast<unsigned long long>(rl.first_p99),
                  static_cast<unsigned long long>(rl.first_count),
                  static_cast<unsigned long long>(rl.fallback_p50),
                  static_cast<unsigned long long>(rl.fallback_p99),
                  static_cast<unsigned long long>(rl.fallback_count));
    out += buf;
  }
  out += "  fabric mean utilization:";
  for (const double u : fabric_mean_utilization) {
    std::snprintf(buf, sizeof(buf), " %.0f%%", u * 100.0);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "\n  submit->launch p50 %llu / p99 %llu mb-cycles, %llu fleet "
                "cycles\n  digest %016llx\n  %s",
                static_cast<unsigned long long>(p50_submit_to_launch),
                static_cast<unsigned long long>(p99_submit_to_launch),
                static_cast<unsigned long long>(final_cycle),
                static_cast<unsigned long long>(digest),
                invariants.to_string().c_str());
  out += buf;
  return out;
}

FleetSoakResult run_fleet_soak(const FleetSoakOptions& opt) {
  const auto wall_start = std::chrono::steady_clock::now();
  FleetSoakResult res;
  res.digest = kFnvOffset;

  obs::Registry::instance().reset();

  fleet::FleetSpec fleet_spec =
      opt.fleet ? *opt.fleet : fleet::FleetSpec::uniform(2);
  if (opt.health) {
    fleet_spec.health = *opt.health;
    if (fleet_spec.health.enabled && fleet_spec.health.rules.empty()) {
      fleet_spec.health.rules = fleet::standard_health_rules(fleet_spec);
    }
  }
  fleet::ControlPlane fc(fleet_spec);
  if (!opt.flight_dir.empty()) fc.set_flight_dir(opt.flight_dir);
  const int nf = fc.num_fabrics();
  for (int i = 0; i < nf; ++i) {
    core::Rsb& rsb = fc.system(i).rsb(0);
    for (int j = 0; j < rsb.num_ioms(); ++j) {
      rsb.iom(j).set_received_history_limit(opt.history_limit_words);
    }
  }

  ScenarioSpec spec = opt.scenario
                          ? *opt.scenario
                          : ScenarioSpec::standard_fleet(
                                opt.seed, opt.lifetimes, opt.num_tenants, nf);
  spec.seed = opt.seed;
  ScenarioGenerator gen(std::move(spec));

  // Per-fabric clock monotonicity + fleet-time progress (per-fabric
  // stall is legal here: a fabric pushed ahead by admission work may
  // idle through a whole checkpoint interval while arrivals land on the
  // others, so the single-system MonotoneClockCheck would misfire).
  std::vector<sim::Cycles> last_cycle(static_cast<std::size_t>(nf), 0);
  sim::Cycles last_fleet_now = 0;
  bool clock_seen = false;

  std::vector<double> util_sum(static_cast<std::size_t>(nf), 0.0);
  std::uint64_t util_samples = 0;
  // Oldest local app id already conservation-checked, per fabric.
  std::vector<int> conservation_watermark(static_cast<std::size_t>(nf), 0);
  // fleet id -> sink location whose gap stats were reset for the app's
  // current incarnation (a migration re-launches on a new channel).
  std::map<int, fleet::FleetAppId> gap_armed;

  // Crash churn: a dedicated draw stream (never shared with the
  // workload generator) picks which agent dies and how far past the
  // current journal version the kill lands.
  sim::SplitMix64 kill_rng(opt.seed ^ 0xc5a5ce55c5a5ce55ULL);
  std::uint64_t since_kill = 0;
  std::uint64_t seen_restarts = 0;
  auto maybe_schedule_kill = [&]() {
    if (opt.crash_churn_every == 0) return;
    if (++since_kill < opt.crash_churn_every) return;
    since_kill = 0;
    // With the health monitor enabled it joins the kill lottery; the
    // modulus stays 3 + nf otherwise so monitor-off baselines keep
    // their historical kill draws.
    const int named = fc.health_enabled() ? 4 : 3;
    const std::uint64_t pick =
        kill_rng.next() % static_cast<std::uint64_t>(named + nf);
    fleet::AgentId agent = fleet::AgentId::kRouter;
    if (pick == 1) {
      agent = fleet::AgentId::kQuota;
    } else if (pick == 2) {
      agent = fleet::AgentId::kMigration;
    } else if (fc.health_enabled() && pick == 3) {
      agent = fleet::AgentId::kHealth;
    } else if (pick >= static_cast<std::uint64_t>(named)) {
      agent = fleet::fabric_agent_id(static_cast<int>(
          pick - static_cast<std::uint64_t>(named)));
    }
    const std::uint64_t offset = 1 + kill_rng.next() % 8;
    fc.schedule_kill(agent, fc.statedb().version() + offset);
    fold(res.digest, pick);
    fold(res.digest, offset);
  };
  // After any restart fired mid-pump, prove the restarted plane
  // reconverged: the table-vs-scheduler sweep is clean on every fabric
  // and replaying the retained journal reproduces the live view.
  auto absorb_restarts = [&]() {
    const std::uint64_t r = fc.agent_restarts();
    if (r == seen_restarts) return;
    seen_restarts = r;
    ++res.invariants.checks_run;
    for (const std::string& v : fc.reconcile()) {
      ++res.reconcile_violations;
      res.invariants.fail("post-restart reconcile: " + v);
    }
    ++res.invariants.checks_run;
    ++res.replay_checks;
    if (fc.statedb().replayed_view_digest() != fc.statedb().view_digest()) {
      res.invariants.fail(
          "journal replay diverged from the live view after an agent "
          "restart (version " +
          std::to_string(fc.statedb().version()) + ")");
    }
  };

  auto stop_checked = [&](int fleet_id) {
    const fleet::FleetAppId loc = *fc.locate(fleet_id);
    const sched::AppRecord& a = fc.record_of(fleet_id);
    core::Iom& iom = fc.system(loc.fabric).rsb(0).iom(a.sink.iom);
    check_stream_gap(a.request.name, iom.max_output_gap(a.sink.channel),
                     opt.gap_bound_cycles, res.invariants);
    fc.stop(fleet_id);
    const sched::AppRecord& done = fc.record_of(fleet_id);
    fold(res.digest, static_cast<std::uint64_t>(fleet_id));
    fold(res.digest, done.final_words_in);
    fold(res.digest, done.final_words_out);
    gap_armed.erase(fleet_id);
  };

  std::multimap<sim::Cycles, int> departures;  // fleet time -> fleet id
  auto stop_departed = [&]() {
    const sim::Cycles now = fc.now();
    while (!departures.empty() && departures.begin()->first <= now) {
      const int id = departures.begin()->second;
      departures.erase(departures.begin());
      if (fc.running(id)) stop_checked(id);
    }
  };

  auto checkpoint = [&]() {
    for (int i = 0; i < nf; ++i) {
      const sched::ApplicationScheduler& s = fc.scheduler(i);
      auto& mark = conservation_watermark[static_cast<std::size_t>(i)];
      for (int id = std::max(mark, s.first_live_id()); id < s.num_apps();
           ++id) {
        const sched::AppRecord& a = s.app(id);
        if (a.state == sched::AppState::kQueued || a.running()) break;
        if (a.state != sched::AppState::kRejected) {
          check_word_conservation(a, res.invariants,
                                  opt.pipeline_slack_words);
        }
        mark = id + 1;
      }
    }
    fc.retire_terminal();
    for (int i = 0; i < nf; ++i) {
      check_resource_ledger(fc.scheduler(i), res.invariants);
      check_accounting(fc.scheduler(i), res.invariants);
      util_sum[static_cast<std::size_t>(i)] +=
          fc.scheduler(i).fabric_utilization();
      ++res.invariants.checks_run;
      const sim::Cycles c = fc.system(i).system_clock().cycle_count();
      if (c < last_cycle[static_cast<std::size_t>(i)]) {
        res.invariants.fail("fabric " + fc.fabric_name(i) +
                            ": clock went backwards");
      }
      last_cycle[static_cast<std::size_t>(i)] = c;
    }
    ++res.invariants.checks_run;
    const sim::Cycles fleet_now = fc.now();
    if (clock_seen && fleet_now <= last_fleet_now) {
      res.invariants.fail("fleet time stalled at " +
                          std::to_string(fleet_now) +
                          " cycles across a checkpoint interval");
    }
    last_fleet_now = fleet_now;
    clock_seen = true;
    ++util_samples;
    // Prove the journal still replays to the live view, then snapshot
    // it away so retained depth stays bounded by the checkpoint
    // interval regardless of run length.
    ++res.invariants.checks_run;
    ++res.replay_checks;
    if (fc.statedb().replayed_view_digest() != fc.statedb().view_digest()) {
      res.invariants.fail(
          "journal replay diverged from the live view at checkpoint "
          "(version " +
          std::to_string(fc.statedb().version()) + ")");
    }
    fc.truncate_journal();
  };

  sim::FaultInjector& injector = sim::FaultInjector::instance();
  StormGuard storm_guard;
  bool storm_on = false;

  std::size_t last_phase = static_cast<std::size_t>(-1);
  while (std::optional<WorkloadEvent> ev = gen.next()) {
    const Phase& ph = gen.spec().phases[ev->phase_index];
    if (opt.verbose && ev->phase_index != last_phase) {
      std::printf("fleet soak: phase '%s' (%llu submissions)\n",
                  ph.name.c_str(),
                  static_cast<unsigned long long>(ph.submissions));
      last_phase = ev->phase_index;
    }

    // Fault-storm phases drive the ICAP corruption site fleet-wide (the
    // reconfig layer self-heals; the health monitor sees the retry and
    // recovery rates climb).
    const bool want_storm = ph.icap_fault_probability > 0.0;
    if (want_storm && !storm_on) {
      injector.enable(opt.seed ^ 0x5107A1C0FFEEULL);
      injector.set_probability(sim::FaultSite::kIcapBitstreamCorruption,
                               ph.icap_fault_probability);
      storm_on = true;
    } else if (!want_storm && storm_on) {
      injector.disable();
      storm_on = false;
    }

    fc.advance_to(ev->at_cycle);
    stop_departed();

    fold(res.digest, ev->sequence);
    fold(res.digest, ev->at_cycle);
    fold(res.digest, static_cast<std::uint64_t>(ev->class_index));
    fold(res.digest, static_cast<std::uint64_t>(ev->request.priority));
    fold(res.digest,
         static_cast<std::uint64_t>(ev->request.source_interval_cycles));
    fold(res.digest, ev->request.source_words);
    fold(res.digest, ev->hold_cycles);
    fold(res.digest, ev->churn_stop ? 1u : 0u);
    fold(res.digest, static_cast<std::uint64_t>(ev->tenant));
    fold(res.digest, ev->migrate ? 1u : 0u);

    maybe_schedule_kill();
    const std::string tenant = "t" + std::to_string(ev->tenant);
    const fleet::RouteDecision d = fc.submit(tenant, ev->request);
    absorb_restarts();
    fold(res.digest, d.admitted ? 1u : 0u);
    fold(res.digest, static_cast<std::uint64_t>(d.fabric + 1));
    fold(res.digest, static_cast<std::uint64_t>(d.verdict));
    fold(res.digest, d.quota_limited ? 1u : 0u);
    if (d.admitted) {
      departures.emplace(fc.now() + ev->hold_cycles, d.fleet_id);
      // Route-order tail latency: first-choice admissions vs apps that
      // only landed through a fallback attempt, per hosting fabric.
      const sched::AppRecord& rec = fc.record_of(d.fleet_id);
      const bool first_choice = !d.order.empty() && d.order.front() == d.fabric;
      obs::Registry::instance()
          .histogram(route_hist_name(fc.fabric_name(d.fabric), first_choice))
          .record(rec.launched_at - rec.submitted_at);
    }

    // Arm gap statistics per app incarnation: fresh launches and
    // migration re-launches both land on a (possibly reused) sink
    // channel whose gap window must start now.
    for (auto it = gap_armed.begin(); it != gap_armed.end();) {
      it = fc.running(it->first) ? std::next(it) : gap_armed.erase(it);
    }
    auto arm_running = [&]() {
      for (const int rid : fc.running_ids()) {
        const fleet::FleetAppId loc = *fc.locate(rid);
        const auto it = gap_armed.find(rid);
        if (it != gap_armed.end() && it->second.fabric == loc.fabric &&
            it->second.app == loc.app) {
          continue;
        }
        const sched::AppRecord& a = fc.record_of(rid);
        fc.system(loc.fabric).rsb(0).iom(a.sink.iom).reset_gap_stats(
            a.sink.channel);
        gap_armed[rid] = loc;
      }
    };
    arm_running();

    // Migration churn: move the oldest app off the busiest fabric onto
    // the least-utilized other fabric. Deterministic picks (ties to the
    // lowest fabric index), probe-first so hopeless moves are skipped.
    if (ev->migrate && nf > 1) {
      int src = 0;
      for (int i = 1; i < nf; ++i) {
        if (fc.running_on(i) > fc.running_on(src)) src = i;
      }
      int victim = -1;
      for (const int rid : fc.running_ids()) {
        if (fc.locate(rid)->fabric == src) {
          victim = rid;
          break;
        }
      }
      if (victim >= 0) {
        int dst = -1;
        for (int i = 0; i < nf; ++i) {
          if (i == src) continue;
          if (dst < 0 || fc.scheduler(i).fabric_utilization() <
                             fc.scheduler(dst).fabric_utilization()) {
            dst = i;
          }
        }
        const fleet::MigrateResult mr = fc.migrate(victim, dst);
        absorb_restarts();
        ++res.migrations_attempted;
        fold(res.digest, static_cast<std::uint64_t>(victim));
        fold(res.digest, static_cast<std::uint64_t>(mr.outcome));
        arm_running();  // a moved app streams on a new sink channel
      }
    }

    if (ev->churn_stop) {
      const std::vector<int> running = fc.running_ids();
      if (!running.empty()) {
        stop_checked(running.front());
        ++res.churn_stops;
      }
    }

    // Health tick: refresh signal gauges, freeze the sampler window,
    // and let the HealthAgent evaluate + remediate. Trips fold into the
    // digest, so remediation itself is part of the determinism gate.
    if (fc.health_enabled() && opt.health_tick_every > 0 &&
        (ev->sequence + 1) % opt.health_tick_every == 0) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::uint64_t tripped = fc.health_tick();
      res.health_wall_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      absorb_restarts();
      fold(res.digest, tripped);
      fold(res.digest,
           static_cast<std::uint64_t>(fc.statedb().available_fabrics()));
    }

    if ((ev->sequence + 1) % opt.checkpoint_interval == 0) checkpoint();
  }

  // The storm ends with its phase's last submission; disarm before the
  // multi-M-cycle drain advances.
  if (storm_on) {
    injector.disable();
    storm_on = false;
  }

  // Drain: advance the fleet to each remaining departure.
  while (!departures.empty()) {
    const sim::Cycles next = departures.begin()->first;
    if (next > fc.now()) fc.advance_to(next);
    stop_departed();
  }
  for (const int id : fc.running_ids()) stop_checked(id);
  checkpoint();

  // Black-box: any invariant violation leaves a postmortem bundle when
  // the recorder is armed (SLO breaches already recorded theirs inside
  // health_tick()).
  if (!res.invariants.ok()) {
    fc.record_flight("fleet_invariant_failure");
  }

  const fleet::ControlPlane::Counters& c = fc.counters();
  res.submitted = c.submissions;
  res.admitted = c.admitted;
  res.rejected = c.rejected;
  res.quota_rejected = c.quota_rejected;
  res.route_fallbacks = c.fallbacks;
  res.migrations_moved = c.migrations_moved;
  res.migrations_rolled_back = c.migrations_rolled_back;
  res.migrations_skipped = c.migrations_skipped;
  res.migrations_lost = c.migrations_lost;
  res.quota_preemptions = c.quota_preemptions;
  res.quota_grows = fc.governor().grows();
  res.quota_shrinks = fc.governor().shrinks();
  res.agent_kills = fc.agent_restarts();
  res.health_ticks = fc.health_ticks();
  res.breaches = c.breaches_tripped;
  res.breaches_cleared = c.breaches_cleared;
  res.isolations = c.isolations;
  res.unisolations = c.unisolations;
  res.drains = c.drains_started;
  res.flight_bundles = fc.flight_bundles();
  res.faults_injected =
      injector.injected(sim::FaultSite::kIcapBitstreamCorruption);
  res.lifetimes_completed =
      res.submitted - static_cast<std::uint64_t>(fc.running_ids().size());
  res.final_cycle = fc.now();

  res.fabric_mean_utilization.resize(static_cast<std::size_t>(nf), 0.0);
  for (int i = 0; i < nf; ++i) {
    res.fabric_mean_utilization[static_cast<std::size_t>(i)] =
        util_samples > 0
            ? util_sum[static_cast<std::size_t>(i)] /
                  static_cast<double>(util_samples)
            : 0.0;
  }

  // One percentile implementation fleet-wide: Registry::summary routes
  // through obs::summarize (docs/OBSERVABILITY.md).
  for (int i = 0; i < nf; ++i) {
    const obs::HistogramSummary first = obs::Registry::instance().summary(
        route_hist_name(fc.fabric_name(i), true));
    const obs::HistogramSummary fb = obs::Registry::instance().summary(
        route_hist_name(fc.fabric_name(i), false));
    RouteLatency rl;
    rl.fabric = fc.fabric_name(i);
    rl.first_count = first.count;
    rl.first_p50 = first.p50;
    rl.first_p99 = first.p99;
    rl.fallback_count = fb.count;
    rl.fallback_p50 = fb.p50;
    rl.fallback_p99 = fb.p99;
    res.route_latency.push_back(rl);
  }

  const obs::HistogramSummary lat =
      obs::Registry::instance().summary("sched.submit_to_launch.cycles");
  res.p50_submit_to_launch = lat.p50;
  res.p99_submit_to_launch = lat.p99;

  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  res.lifetimes_per_second =
      res.wall_seconds > 0.0
          ? static_cast<double>(res.lifetimes_completed) / res.wall_seconds
          : 0.0;
  return res;
}

}  // namespace vapres::load
