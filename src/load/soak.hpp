// Sustained-load soak harness.
//
// Drives one scheduler + fabric through 10^4..10^6 complete application
// lifetimes (submit -> admit/reject -> launch -> stream -> teardown)
// from a seeded ScenarioGenerator, continuously checking the soak
// invariants (resource-leak, accounting, word-conservation, stream-gap,
// monotone kernel time) and sampling RSS so a run can assert memory
// stability on top of correctness. Deterministic per seed: the run
// digest folds every workload event and every terminal verdict, so two
// runs with the same options must produce the same digest bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "load/invariants.hpp"
#include "load/scenario.hpp"
#include "sim/time.hpp"

namespace vapres::load {

struct SoakOptions {
  std::uint64_t lifetimes = 100'000;
  std::uint64_t seed = 1;
  /// Largest tolerated gap between consecutive sink words on a live
  /// channel, in system cycles (covers slow rate classes and hitless
  /// relocations of the app's own modules).
  sim::Cycles gap_bound_cycles = 2000;
  /// Words a chain may legitimately hold in flight at teardown (module
  /// state, channel FIFOs) before conservation counts them as lost.
  std::uint64_t pipeline_slack_words = 64;
  /// Submissions between checkpoint sweeps (retire + invariants + RSS).
  std::uint64_t checkpoint_interval = 512;
  /// Per-sink-channel received-word history cap (0 = unlimited; a soak
  /// run must cap, or sink histories grow with total words streamed).
  std::size_t history_limit_words = 4096;
  /// Print per-phase transitions and periodic checkpoint lines.
  bool verbose = false;
  /// Override the workload; default is ScenarioSpec::standard(seed,
  /// lifetimes).
  std::optional<ScenarioSpec> scenario;

  // ---- checkpoint/restore (snap subsystem, docs/SNAPSHOT.md) ----------
  /// Take one full-system checkpoint after this many submissions
  /// (0 = never). The blob wraps the system+scheduler snapshot plus the
  /// harness state (generator cursors, departure schedule, run digest).
  std::uint64_t snapshot_at = 0;
  /// Receives the most recent checkpoint blob when non-null.
  std::string* snapshot_out = nullptr;
  /// End the run right after the snapshot_at checkpoint (simulated
  /// crash); the result is partial and resumable via resume_from.
  bool stop_at_snapshot = false;
  /// Resume from a soak checkpoint blob (empty = fresh run). The other
  /// options must match the checkpointed run's; the final digest then
  /// equals the uninterrupted run's bit for bit.
  std::string resume_from;
  /// Additionally checkpoint every N submissions (0 = off) — the
  /// overhead-measurement knob bench_soak gates at <= 5% of wall time.
  std::uint64_t snapshot_every = 0;

  /// Black-box flight recorder (docs/HEALTH.md): when non-empty, any
  /// invariant violation detected by the final sweep writes a postmortem
  /// bundle (system snapshot + trace + metrics) under this directory.
  std::string flight_dir;
};

struct SoakResult {
  InvariantReport invariants;

  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  /// Submissions that reached a terminal state (stopped, preempted, or
  /// rejected) — the completed-lifetime count the gates are phrased in.
  std::uint64_t lifetimes_completed = 0;
  std::uint64_t churn_stops = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t defrag_migrations = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t fault_opportunities = 0;

  sim::Cycles final_cycle = 0;      ///< system-clock cycles simulated
  double wall_seconds = 0.0;        ///< host wall-clock for the run
  double lifetimes_per_second = 0.0;

  /// submit -> launch latency percentiles over admitted apps, in
  /// MicroBlaze cycles (from the "sched.submit_to_launch.cycles"
  /// histogram, reset at soak start).
  std::uint64_t p50_submit_to_launch = 0;
  std::uint64_t p99_submit_to_launch = 0;

  /// RSS samples (kB) at the first, middle, and last checkpoint plus
  /// the running peak; 0 when /proc/self/statm is unavailable.
  std::uint64_t rss_kb_start = 0;
  std::uint64_t rss_kb_mid = 0;
  std::uint64_t rss_kb_end = 0;
  std::uint64_t rss_kb_peak = 0;

  /// FNV-1a fold of the workload stream and every terminal verdict and
  /// word count: equal options => equal digest, byte for byte.
  std::uint64_t digest = 0;

  /// Flight-recorder bundles written (0 without flight_dir / on a clean
  /// run).
  std::uint64_t flight_bundles = 0;

  /// Checkpoints taken this run (snapshot_at + snapshot_every).
  std::uint64_t snapshots_taken = 0;
  /// Host wall-clock spent inside checkpointing (barrier + serialize) —
  /// the numerator of bench_soak's <= 5% overhead gate.
  double checkpoint_wall_seconds = 0.0;

  bool ok() const { return invariants.ok(); }
  std::string summary() const;
};

/// Runs one soak scenario to completion. Builds its own VapresSystem on
/// the shared server floorplan; the FaultInjector singleton is enabled
/// only inside fault-storm phases and always left disabled on return.
SoakResult run_soak(const SoakOptions& options);

/// Current resident set size in kB (from /proc/self/statm; 0 when the
/// file is unavailable, e.g. on non-Linux hosts).
std::uint64_t read_rss_kb();

}  // namespace vapres::load
