#include "load/soak.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <unordered_set>

#include "obs/health/flight.hpp"
#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "sim/fault.hpp"
#include "snap/format.hpp"
#include "snap/system_snapshot.hpp"

namespace vapres::load {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

/// The FaultInjector is process-global; never leak an enabled storm
/// into whatever runs after the soak (other tests in the same binary).
struct StormGuard {
  ~StormGuard() { sim::FaultInjector::instance().disable(); }
};

}  // namespace

std::uint64_t read_rss_kb() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t total_pages = 0;
  std::uint64_t resident_pages = 0;
  if (!(statm >> total_pages >> resident_pages)) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return resident_pages * static_cast<std::uint64_t>(page) / 1024u;
}

std::string SoakResult::summary() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "soak: %llu lifetimes (%llu submitted, %llu admitted, "
                "%llu rejected) in %.2fs = %.0f lifetimes/s\n",
                static_cast<unsigned long long>(lifetimes_completed),
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(rejected), wall_seconds,
                lifetimes_per_second);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  churn stops %llu, preemptions %llu, migrations %llu, "
                "faults %llu/%llu, %llu system cycles\n",
                static_cast<unsigned long long>(churn_stops),
                static_cast<unsigned long long>(preemptions),
                static_cast<unsigned long long>(defrag_migrations),
                static_cast<unsigned long long>(faults_injected),
                static_cast<unsigned long long>(fault_opportunities),
                static_cast<unsigned long long>(final_cycle));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  submit->launch p50 %llu / p99 %llu mb-cycles; rss kB "
                "start %llu mid %llu end %llu peak %llu\n",
                static_cast<unsigned long long>(p50_submit_to_launch),
                static_cast<unsigned long long>(p99_submit_to_launch),
                static_cast<unsigned long long>(rss_kb_start),
                static_cast<unsigned long long>(rss_kb_mid),
                static_cast<unsigned long long>(rss_kb_end),
                static_cast<unsigned long long>(rss_kb_peak));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  digest %016llx\n  %s",
                static_cast<unsigned long long>(digest),
                invariants.to_string().c_str());
  out += buf;
  return out;
}

SoakResult run_soak(const SoakOptions& opt) {
  const auto wall_start = std::chrono::steady_clock::now();
  SoakResult res;
  res.digest = kFnvOffset;

  ScenarioSpec spec = opt.scenario ? *opt.scenario
                                   : ScenarioSpec::standard(opt.seed,
                                                            opt.lifetimes);
  spec.seed = opt.seed;
  ScenarioGenerator gen(std::move(spec));

  bool storm_on = false;
  MonotoneClockCheck clock_check;
  std::vector<std::uint64_t> rss_samples;
  // Apps whose sink gap statistics were reset at launch (gap numbers
  // must not inherit the channel's previous tenant).
  std::unordered_set<int> gap_armed;
  // Oldest id whose terminal word counts were already conservation
  // checked; records behind a long-running app get swept once.
  int conservation_watermark = 0;
  std::size_t last_phase = static_cast<std::size_t>(-1);
  // Departure schedule (see below); restored from a resume blob.
  std::multimap<sim::Cycles, int> departures;

  std::unique_ptr<core::VapresSystem> sys_owner;
  std::unique_ptr<sched::ApplicationScheduler> sched_owner;
  if (!opt.resume_from.empty()) {
    // Resume a checkpointed run: restore the system + scheduler from the
    // embedded snapshot (which also rewinds the metrics registry and the
    // fault injector), then overlay the harness cursors so the event
    // stream and the run digest continue exactly where they stopped.
    const snap::SnapshotReader r(opt.resume_from);
    r.open_section("soakharness");
    ScenarioGenerator::State gs;
    gs.rng = r.u64();
    gs.side_rng = r.u64();
    gs.phase = r.u64();
    gs.emitted_in_phase = r.u64();
    gs.sequence = r.u64();
    gs.clock = r.f64();
    gs.burst_left = r.u64();
    gs.quiet_left = r.u64();
    gen.set_state(gs);
    res.digest = r.u64();
    res.churn_stops = r.u64();
    conservation_watermark = static_cast<int>(r.i64());
    storm_on = r.boolean();
    last_phase = static_cast<std::size_t>(r.u64());
    MonotoneClockCheck::State cs;
    cs.last_ps = r.u64();
    cs.last_cycle = r.u64();
    cs.seen = r.boolean();
    clock_check.set_state(cs);
    res.invariants.checks_run = r.u64();
    const std::uint32_t n_violations = r.u32();
    for (std::uint32_t i = 0; i < n_violations; ++i) {
      res.invariants.violations.push_back(r.str());
    }
    const std::uint32_t n_departures = r.u32();
    for (std::uint32_t i = 0; i < n_departures; ++i) {
      const sim::Cycles at = r.u64();
      departures.emplace(at, static_cast<int>(r.i64()));
    }
    const std::uint32_t n_armed = r.u32();
    for (std::uint32_t i = 0; i < n_armed; ++i) {
      gap_armed.insert(static_cast<int>(r.i64()));
    }
    const std::string sys_blob = r.str();
    sys_owner = snap::SystemSnapshot::restore_system(sys_blob,
                                                     server_params());
    sched_owner =
        snap::SystemSnapshot::restore_scheduler(sys_blob, *sys_owner);
  } else {
    // Per-run latency percentiles need a clean histogram; registrations
    // survive, values zero.
    obs::Registry::instance().reset();
    sys_owner = std::make_unique<core::VapresSystem>(server_params());
    sys_owner->bring_up_all_sites();
    for (int i = 0; i < sys_owner->rsb(0).num_ioms(); ++i) {
      sys_owner->rsb(0).iom(i).set_received_history_limit(
          opt.history_limit_words);
    }
    sched_owner = std::make_unique<sched::ApplicationScheduler>(*sys_owner);
  }
  core::VapresSystem& sys = *sys_owner;
  sched::ApplicationScheduler& sched = *sched_owner;
  core::Rsb& rsb = sys.rsb(0);

  sim::FaultInjector& injector = sim::FaultInjector::instance();
  StormGuard storm_guard;

  // Pre-stop checks that need the app's channel still routed: read the
  // live sink gap, then stop.
  auto stop_checked = [&](int id) {
    const sched::AppRecord& a = sched.app(id);
    core::Iom& iom = rsb.iom(a.sink.iom);
    check_stream_gap(a.request.name, iom.max_output_gap(a.sink.channel),
                     opt.gap_bound_cycles, res.invariants);
    sched.stop(id);
    const sched::AppRecord& done = sched.app(id);
    fold(res.digest, static_cast<std::uint64_t>(id));
    fold(res.digest, done.final_words_in);
    fold(res.digest, done.final_words_out);
    gap_armed.erase(id);
  };

  // Departure schedule: launch cycle + the event's resident hold. Apps
  // sit quiescent on the fabric (holding PRRs and IOM channels) until
  // their hold expires — that residency is what makes concurrent
  // arrivals contend. Entries for apps the scheduler already tore down
  // (preempted) are dropped when popped. (Declared above: a resumed run
  // restores the schedule from the checkpoint blob.)
  auto stop_departed = [&]() {
    const sim::Cycles now = sys.system_clock().cycle_count();
    while (!departures.empty() && departures.begin()->first <= now) {
      const int id = departures.begin()->second;
      departures.erase(departures.begin());
      if (id >= sched.first_live_id() && sched.app(id).running()) {
        stop_checked(id);
      }
    }
  };

  // Full-system checkpoint: reach the cold-snapshot barrier (drain any
  // in-flight reconfiguration and prefetch staging), then wrap the
  // system+scheduler snapshot together with the harness cursors. The
  // barrier's cycle advance is absorbed by the absolute-cycle arrival of
  // the next workload event, so a resumed run replays the uninterrupted
  // run's stream — and digest — exactly.
  auto take_snapshot = [&](std::uint64_t processed) {
    const auto t0 = std::chrono::steady_clock::now();
    sys.drain_transfer_path();
    while (sys.prefetch().pending() > 0 || sys.prefetch().staging()) {
      sys.run_system_cycles(64);
    }
    const std::string sys_blob =
        snap::SystemSnapshot::save(sys, processed, &sched);
    snap::SnapshotWriter w(processed);
    w.begin_section("soakharness");
    const ScenarioGenerator::State gs = gen.state();
    w.u64(gs.rng);
    w.u64(gs.side_rng);
    w.u64(gs.phase);
    w.u64(gs.emitted_in_phase);
    w.u64(gs.sequence);
    w.f64(gs.clock);
    w.u64(gs.burst_left);
    w.u64(gs.quiet_left);
    w.u64(res.digest);
    w.u64(res.churn_stops);
    w.i64(conservation_watermark);
    w.boolean(storm_on);
    w.u64(static_cast<std::uint64_t>(last_phase));
    const MonotoneClockCheck::State cs = clock_check.state();
    w.u64(cs.last_ps);
    w.u64(cs.last_cycle);
    w.boolean(cs.seen);
    w.u64(res.invariants.checks_run);
    w.u32(static_cast<std::uint32_t>(res.invariants.violations.size()));
    for (const std::string& v : res.invariants.violations) w.str(v);
    w.u32(static_cast<std::uint32_t>(departures.size()));
    for (const auto& [at, id] : departures) {
      w.u64(at);
      w.i64(id);
    }
    std::vector<int> armed(gap_armed.begin(), gap_armed.end());
    std::sort(armed.begin(), armed.end());
    w.u32(static_cast<std::uint32_t>(armed.size()));
    for (const int id : armed) w.i64(id);
    w.str(sys_blob);
    w.end_section();
    std::string blob = w.finish();
    ++res.snapshots_taken;
    res.checkpoint_wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (opt.snapshot_out != nullptr) *opt.snapshot_out = std::move(blob);
  };

  auto checkpoint = [&]() {
    // Conservation for records that went terminal since the last sweep
    // (reaped, churned, or preempted by the scheduler itself).
    for (int id = std::max(conservation_watermark, sched.first_live_id());
         id < sched.num_apps(); ++id) {
      const sched::AppRecord& a = sched.app(id);
      if (a.state == sched::AppState::kQueued || a.running()) break;
      if (a.state != sched::AppState::kRejected) {
        check_word_conservation(a, res.invariants, opt.pipeline_slack_words);
      }
      conservation_watermark = id + 1;
    }
    sched.retire_terminal();
    check_resource_ledger(sched, res.invariants);
    check_accounting(sched, res.invariants);
    clock_check.observe(sys, res.invariants);
    const std::uint64_t rss = read_rss_kb();
    rss_samples.push_back(rss);
    res.rss_kb_peak = std::max(res.rss_kb_peak, rss);
  };

  // Shared tail: both the normal exit and the stop_at_snapshot early
  // exit (simulated crash) fold accounting, latency percentiles, RSS and
  // wall time into the result the same way.
  auto finalize = [&]() {
    const core::SchedulerAccounting acc = sched.accounting();
    res.submitted = static_cast<std::uint64_t>(acc.submitted);
    res.admitted = static_cast<std::uint64_t>(acc.admitted);
    res.rejected = static_cast<std::uint64_t>(acc.rejected);
    res.lifetimes_completed =
        res.submitted -
        static_cast<std::uint64_t>(sched.running_apps().size());
    res.preemptions = static_cast<std::uint64_t>(acc.preemptions);
    res.defrag_migrations = static_cast<std::uint64_t>(acc.defrag_migrations);
    res.faults_injected =
        injector.injected(sim::FaultSite::kIcapBitstreamCorruption);
    res.fault_opportunities =
        injector.opportunities(sim::FaultSite::kIcapBitstreamCorruption);
    res.final_cycle = sys.system_clock().cycle_count();

    // One percentile implementation fleet-wide: Registry::summary routes
    // through obs::summarize (docs/OBSERVABILITY.md).
    const obs::HistogramSummary lat =
        obs::Registry::instance().summary("sched.submit_to_launch.cycles");
    res.p50_submit_to_launch = lat.p50;
    res.p99_submit_to_launch = lat.p99;

    // Black-box: a dirty invariant sweep writes a postmortem bundle with
    // the final system snapshot, trace ring, and metrics.
    if (!opt.flight_dir.empty() && !res.invariants.ok()) {
      obs::health::FlightRecorder rec(opt.flight_dir);
      const std::string blob =
          snap::SystemSnapshot::save(sys, res.submitted, &sched);
      if (!rec.record("soak_invariant_failure",
                      sys.system_clock().cycle_count(), blob, std::string{},
                      nullptr, res.invariants.to_string())
               .empty()) {
        ++res.flight_bundles;
      }
    }

    if (!rss_samples.empty()) {
      res.rss_kb_start = rss_samples.front();
      res.rss_kb_mid = rss_samples[rss_samples.size() / 2];
      res.rss_kb_end = rss_samples.back();
    }

    res.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    res.lifetimes_per_second =
        res.wall_seconds > 0.0
            ? static_cast<double>(res.lifetimes_completed) / res.wall_seconds
            : 0.0;
  };

  while (std::optional<WorkloadEvent> ev = gen.next()) {
    const Phase& ph = gen.spec().phases[ev->phase_index];
    if (opt.verbose && ev->phase_index != last_phase) {
      std::printf("soak: phase '%s' (%llu submissions)\n", ph.name.c_str(),
                  static_cast<unsigned long long>(ph.submissions));
      last_phase = ev->phase_index;
    }

    // Fault-storm phases drive the ICAP corruption site; the reconfig
    // layer self-heals, so streams stay checkable through the storm.
    const bool want_storm = ph.icap_fault_probability > 0.0;
    if (want_storm && !storm_on) {
      injector.enable(opt.seed ^ 0x5107A1C0FFEEULL);
      injector.set_probability(sim::FaultSite::kIcapBitstreamCorruption,
                               ph.icap_fault_probability);
      storm_on = true;
    } else if (!want_storm && storm_on) {
      injector.disable();
      storm_on = false;
    }

    // Advance the fabric to the arrival instant (admission work may
    // already have pushed the clock past slow-phase gaps), then free
    // whatever tenants departed in the meantime.
    const sim::Cycles now = sys.system_clock().cycle_count();
    if (ev->at_cycle > now) sys.run_system_cycles(ev->at_cycle - now);
    stop_departed();

    fold(res.digest, ev->sequence);
    fold(res.digest, ev->at_cycle);
    fold(res.digest, static_cast<std::uint64_t>(ev->class_index));
    fold(res.digest, static_cast<std::uint64_t>(ev->request.priority));
    fold(res.digest,
         static_cast<std::uint64_t>(ev->request.source_interval_cycles));
    fold(res.digest, ev->request.source_words);
    fold(res.digest, ev->hold_cycles);
    fold(res.digest, ev->churn_stop ? 1u : 0u);

    const int id = sched.submit(ev->request);
    sched.run_admission();
    fold(res.digest, static_cast<std::uint64_t>(id));
    fold(res.digest, static_cast<std::uint64_t>(sched.app(id).verdict));
    if (sched.app(id).running()) {
      departures.emplace(sys.system_clock().cycle_count() + ev->hold_cycles,
                         id);
    }

    // Arm gap statistics for every fresh launch: the sink channel is
    // reused across tenants, the gap window must start at this one.
    std::vector<int> running = sched.running_apps();
    for (auto it = gap_armed.begin(); it != gap_armed.end();) {
      const int armed_id = *it;
      const bool still_running =
          std::find(running.begin(), running.end(), armed_id) != running.end();
      it = still_running ? std::next(it) : gap_armed.erase(it);
    }
    for (const int rid : running) {
      if (gap_armed.insert(rid).second) {
        const sched::AppRecord& a = sched.app(rid);
        rsb.iom(a.sink.iom).reset_gap_stats(a.sink.channel);
      }
    }

    // Adversarial churn: tear down the oldest runner right as fresh
    // work lands on the fabric.
    if (ev->churn_stop) {
      running = sched.running_apps();
      if (!running.empty()) {
        stop_checked(running.front());
        ++res.churn_stops;
      }
    }

    if ((ev->sequence + 1) % opt.checkpoint_interval == 0) checkpoint();

    // Checkpoint/restore hooks. Departed-but-unstopped tenants stay on
    // the schedule: stopping them here (earlier than the uninterrupted
    // run would, at the next event's stop_departed) would diverge the
    // digest.
    const std::uint64_t processed = ev->sequence + 1;
    const bool named = opt.snapshot_at > 0 && processed == opt.snapshot_at;
    if (named || (opt.snapshot_every > 0 &&
                  processed % opt.snapshot_every == 0)) {
      take_snapshot(processed);
    }
    if (named && opt.stop_at_snapshot) {
      if (storm_on) {
        injector.disable();
        storm_on = false;
      }
      finalize();
      return res;
    }
  }

  // The storm ends with its phase's last submission; disarm before the
  // drain so the multi-M-cycle advances to the remaining departures run
  // on the activity-driven kernel, not the exhaustive one.
  if (storm_on) {
    injector.disable();
    storm_on = false;
  }

  // Drain: advance to each remaining departure and retire the tenant.
  while (!departures.empty()) {
    const sim::Cycles next = departures.begin()->first;
    const sim::Cycles now = sys.system_clock().cycle_count();
    if (next > now) sys.run_system_cycles(next - now);
    stop_departed();
  }
  for (const int id : sched.running_apps()) stop_checked(id);
  checkpoint();

  finalize();
  return res;
}

}  // namespace vapres::load
