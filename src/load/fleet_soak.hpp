// Sustained-load soak harness for the multi-fabric fleet.
//
// Mirrors load::run_soak, but drives a fleet::ControlPlane instead
// of one scheduler: every workload event is routed by the fleet router
// under a tenant name, migration-churn events move running apps across
// fabrics mid-stream, and the soak invariants (resource-leak,
// accounting, word-conservation, stream-gap, clock monotonicity) are
// swept per fabric at every checkpoint. With crash churn enabled the
// harness also kills and restarts a random control-plane agent at a
// random journal version every N submissions, then proves the restarted
// plane reconverged: reconcile sweeps stay clean and replaying the
// retained journal reproduces the live view digest. Deterministic per
// seed: the digest folds the workload stream, every routing decision
// (chosen fabric, verdict), every migration outcome, every kill draw,
// and every terminal word count, so two runs with equal options produce
// bit-identical digests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fleet/spec.hpp"
#include "load/invariants.hpp"
#include "load/scenario.hpp"
#include "sim/time.hpp"

namespace vapres::load {

struct FleetSoakOptions {
  std::uint64_t lifetimes = 1000;
  std::uint64_t seed = 1;
  int num_tenants = 3;
  sim::Cycles gap_bound_cycles = 2000;
  std::uint64_t pipeline_slack_words = 64;
  std::uint64_t checkpoint_interval = 256;
  std::size_t history_limit_words = 4096;
  bool verbose = false;
  /// Crash churn: every N routed submissions, schedule a kill of one
  /// random control-plane agent at a near-future journal version
  /// (0 = off). Draws come from a dedicated SplitMix64 stream so
  /// enabling churn never perturbs the workload stream itself.
  std::uint64_t crash_churn_every = 0;
  /// Override the workload; default is ScenarioSpec::standard_fleet(
  /// seed, lifetimes, num_tenants, num_fabrics). Phases with
  /// icap_fault_probability > 0 arm the FaultInjector fleet-wide for
  /// their duration (the bench_health fault-storm knob), exactly like
  /// run_soak's storm phases.
  std::optional<ScenarioSpec> scenario;
  /// Override the fleet; default is FleetSpec::uniform(2).
  std::optional<fleet::FleetSpec> fleet;

  // ---- health monitor / flight recorder (docs/HEALTH.md) --------------
  /// Overrides the fleet spec's health config when set. An enabled
  /// override with no rules gets standard_health_rules(fleet).
  std::optional<fleet::HealthConfig> health;
  /// Submissions between ControlPlane::health_tick() calls when health
  /// monitoring is enabled.
  std::uint64_t health_tick_every = 64;
  /// When non-empty, arms the flight recorder: SLO breaches and final
  /// invariant violations write postmortem bundles under this directory.
  std::string flight_dir;
};

/// Per-fabric submit->launch latency split by route order: apps the
/// router landed on its first-choice fabric vs apps admitted through a
/// fallback attempt (tail-latency cost of routing around a full fabric).
struct RouteLatency {
  std::string fabric;
  std::uint64_t first_count = 0;
  std::uint64_t first_p50 = 0;
  std::uint64_t first_p99 = 0;
  std::uint64_t fallback_count = 0;
  std::uint64_t fallback_p50 = 0;
  std::uint64_t fallback_p99 = 0;
};

struct FleetSoakResult {
  InvariantReport invariants;

  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;        ///< routed but every fabric refused
  std::uint64_t quota_rejected = 0;  ///< refused by the quota governor
  std::uint64_t lifetimes_completed = 0;
  std::uint64_t churn_stops = 0;
  std::uint64_t route_fallbacks = 0;
  std::uint64_t migrations_attempted = 0;
  std::uint64_t migrations_moved = 0;
  std::uint64_t migrations_rolled_back = 0;
  std::uint64_t migrations_skipped = 0;
  std::uint64_t migrations_lost = 0;
  std::uint64_t quota_preemptions = 0;
  std::uint64_t quota_grows = 0;
  std::uint64_t quota_shrinks = 0;

  /// Crash-churn ledger: agent restarts actually executed, journal
  /// replay-vs-live digest comparisons performed (each restart and each
  /// checkpoint), and reconcile violations found (0 = clean).
  std::uint64_t agent_kills = 0;
  std::uint64_t replay_checks = 0;
  std::uint64_t reconcile_violations = 0;

  /// Health-monitor ledger (zeros when monitoring is off).
  std::uint64_t health_ticks = 0;
  std::uint64_t breaches = 0;
  std::uint64_t breaches_cleared = 0;
  std::uint64_t isolations = 0;
  std::uint64_t unisolations = 0;
  std::uint64_t drains = 0;
  std::uint64_t flight_bundles = 0;
  /// Host wall-clock spent inside health_tick() — the numerator of
  /// bench_health's <= 1% monitoring-overhead gate.
  double health_wall_seconds = 0.0;
  /// ICAP faults injected by storm phases (0 without one).
  std::uint64_t faults_injected = 0;

  /// Mean fabric utilization over checkpoints, one entry per fabric —
  /// the load-spread signal bench_fleet reports.
  std::vector<double> fabric_mean_utilization;

  /// Submit->launch percentiles split first-choice vs fallback, one
  /// entry per fabric.
  std::vector<RouteLatency> route_latency;

  sim::Cycles final_cycle = 0;  ///< fleet time (max fabric clock)
  double wall_seconds = 0.0;
  double lifetimes_per_second = 0.0;

  /// submit -> launch latency percentiles over admitted apps, fleet-wide
  /// (all fabrics share the "sched.submit_to_launch.cycles" histogram).
  std::uint64_t p50_submit_to_launch = 0;
  std::uint64_t p99_submit_to_launch = 0;

  std::uint64_t digest = 0;

  bool ok() const { return invariants.ok(); }
  std::string summary() const;
};

/// Runs one fleet soak scenario to completion. Builds its own
/// ControlPlane; resets the obs registry at start (per-run latency
/// percentiles need a clean histogram).
FleetSoakResult run_fleet_soak(const FleetSoakOptions& options);

}  // namespace vapres::load
