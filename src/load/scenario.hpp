// Seeded workload generation for sustained-load (soak) runs.
//
// A ScenarioGenerator turns one ScenarioSpec — weighted application
// classes drawn from the example app mix, plus a list of phases with
// different arrival processes — into a deterministic stream of
// submission events. Same spec (including seed), same events, bit for
// bit: every draw comes from one SplitMix64 stream consumed in a fixed
// order, so a soak run, a failing shrink, and a CI replay all see the
// identical workload. Phases model the load shapes the elastic
// multi-tenant literature describes: steady Poisson arrivals, bursty
// "diurnal" traffic, fault storms (ICAP-level injection while the
// self-healing reconfig path keeps admitting), and adversarial churn
// (early teardowns racing fresh admissions).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "sched/request.hpp"
#include "sim/random.hpp"

namespace vapres::load {

/// One weighted application class: the template a submission is drawn
/// from. Ranges are sampled uniformly per submission.
struct AppClass {
  std::string tag;                    ///< name prefix ("amp", "tap", ...)
  std::vector<std::string> modules;   ///< chain, library module ids
  double weight = 1.0;                ///< relative class-mix weight
  int min_priority = 1;
  int max_priority = 3;
  /// Source interval is 2 << k cycles, k uniform in [lo, hi] — the
  /// example server's rate ladder (1/2, 1/4, .. words per cycle).
  int min_interval_shift = 0;
  int max_interval_shift = 2;
  /// Finite source length in words, uniform in [min, max]. The stream
  /// itself is short; the app then stays resident (holding its PRRs and
  /// IOM channels, quiescent) until its hold expires.
  std::uint64_t min_words = 32;
  std::uint64_t max_words = 256;
  /// Resident lifetime in system cycles from launch, uniform in
  /// [min, max]. Sized on the same scale as a PR transfer (millions of
  /// cycles) so concurrent tenants actually overlap and contend — the
  /// knob that turns arrival bursts into admission rejections.
  std::uint64_t min_hold_cycles = 2'000'000;
  std::uint64_t max_hold_cycles = 12'000'000;
};

enum class Arrivals {
  kPoisson,        ///< exponential interarrival at a fixed mean rate
  kBurstyDiurnal,  ///< alternating quiet / burst windows (peak-hour load)
};

/// One contiguous slice of the scenario. Phases are event-counted (not
/// wall-timed) so a spec scales linearly with the lifetime budget.
struct Phase {
  std::string name;
  Arrivals arrivals = Arrivals::kPoisson;
  /// Mean cycles between submissions (the quiet-time mean for bursty).
  double mean_interarrival_cycles = 2000.0;
  std::uint64_t submissions = 0;
  /// Bursty-diurnal shape: every burst is `burst_length` submissions at
  /// `burst_rate_multiplier` times the base rate, and bursts cover
  /// roughly `burst_fraction` of the phase's submissions.
  double burst_fraction = 0.25;
  double burst_rate_multiplier = 8.0;
  std::uint64_t burst_length = 16;
  /// Fault storm: per-opportunity ICAP corruption probability while the
  /// phase runs (0 = storm off). Restricted to ICAP sites by design —
  /// the reconfig layer self-heals those, so loss-free stream
  /// invariants stay assertable right through the storm.
  double icap_fault_probability = 0.0;
  /// Adversarial churn: probability that a submission is paired with an
  /// early stop of the oldest running app.
  double churn_stop_probability = 0.0;
  /// Fleet migration churn: probability that a submission is paired with
  /// a cross-fabric migration of a running app (fleet drivers only;
  /// single-fabric drivers ignore the flag).
  double migrate_probability = 0.0;
  /// Per-phase class-mix override: when non-empty must have one weight
  /// per spec class (0 = class never drawn this phase). Empty uses the
  /// global class weights. Fault-storm phases use this to stay on the
  /// small-footprint classes: injection forces the kernel exhaustive,
  /// so storm cost scales with the bitstreams configured under it.
  std::vector<double> class_weights;
};

struct ScenarioSpec {
  std::uint64_t seed = 1;
  std::vector<AppClass> classes;
  std::vector<Phase> phases;
  /// Tenants submissions are attributed to (round-robin weight-free
  /// uniform draw per event). Tenancy draws come from a side RNG stream,
  /// so raising this never perturbs the workload stream itself.
  int num_tenants = 1;

  std::uint64_t total_submissions() const;

  /// The standard soak scenario: the example app mix over warmup /
  /// steady-Poisson / bursty-diurnal / fault-storm / churn phases,
  /// scaled so the whole scenario submits exactly `lifetimes` apps.
  static ScenarioSpec standard(std::uint64_t seed, std::uint64_t lifetimes);

  /// The fleet soak scenario: multi-tenant, no fault storm (fleet runs
  /// stay on the activity-driven kernel), with a closing
  /// migration-churn phase that pairs submissions with cross-fabric
  /// moves. Interarrival means are divided by `num_fabrics` so an
  /// N-fabric fleet sees N fabrics' worth of offered load.
  static ScenarioSpec standard_fleet(std::uint64_t seed,
                                     std::uint64_t lifetimes,
                                     int num_tenants, int num_fabrics);
};

/// The fragmentation-prone 4-PRR / 3-IOM server floorplan shared by the
/// multi_app_server example and the soak harness.
core::SystemParams server_params();

/// The example application mix (the multi_app_server flavor table).
std::vector<AppClass> standard_classes();

/// One generated submission.
struct WorkloadEvent {
  std::uint64_t sequence = 0;   ///< 0-based submission index
  std::uint64_t at_cycle = 0;   ///< absolute system-clock arrival cycle
  std::size_t class_index = 0;  ///< into spec().classes
  std::size_t phase_index = 0;  ///< into spec().phases
  bool storm = false;           ///< emitted inside a fault-storm phase
  bool churn_stop = false;      ///< pair with an early stop of a runner
  /// Submitting tenant, in [0, spec().num_tenants).
  int tenant = 0;
  /// Pair with a cross-fabric migration of a running app (fleet only).
  bool migrate = false;
  /// Resident lifetime from launch, in system cycles (see AppClass).
  std::uint64_t hold_cycles = 0;
  sched::AppRequest request;
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(ScenarioSpec spec);

  /// The next submission, or nullopt once every phase is exhausted.
  std::optional<WorkloadEvent> next();

  const ScenarioSpec& spec() const { return spec_; }
  /// Phase the *next* event will come from; nullptr when exhausted.
  const Phase* current_phase() const;

  /// Raw generator state for checkpoint/restore (snap subsystem):
  /// the two RNG streams plus the phase/arrival cursors. Restoring it
  /// into a generator built from the same spec resumes the event
  /// stream exactly where the checkpointed run left it.
  struct State {
    std::uint64_t rng = 0;
    std::uint64_t side_rng = 0;
    std::uint64_t phase = 0;
    std::uint64_t emitted_in_phase = 0;
    std::uint64_t sequence = 0;
    double clock = 0.0;
    std::uint64_t burst_left = 0;
    std::uint64_t quiet_left = 0;
  };
  State state() const {
    return State{rng_.state(),          side_rng_.state(), phase_,
                 emitted_in_phase_,     sequence_,         clock_,
                 burst_left_,           quiet_left_};
  }
  void set_state(const State& s) {
    rng_.set_state(s.rng);
    side_rng_.set_state(s.side_rng);
    phase_ = static_cast<std::size_t>(s.phase);
    emitted_in_phase_ = s.emitted_in_phase;
    sequence_ = s.sequence;
    clock_ = s.clock;
    burst_left_ = s.burst_left;
    quiet_left_ = s.quiet_left;
  }

 private:
  double sample_interarrival(const Phase& ph);
  std::size_t pick_class(const Phase& ph);

  ScenarioSpec spec_;
  sim::SplitMix64 rng_;
  /// Side stream for the fleet-era draws (tenant, migrate). Kept apart
  /// from rng_ so pre-fleet scenarios replay the exact same workload
  /// stream — and digests — they did before these fields existed.
  sim::SplitMix64 side_rng_;
  double total_weight_ = 0.0;
  std::size_t phase_ = 0;
  std::uint64_t emitted_in_phase_ = 0;
  std::uint64_t sequence_ = 0;
  double clock_ = 0.0;  ///< accumulated arrival time, in cycles
  // Bursty-diurnal alternation state (submission-counted windows).
  std::uint64_t burst_left_ = 0;
  std::uint64_t quiet_left_ = 0;
};

}  // namespace vapres::load
