// Soak-run invariant checkers.
//
// Header-only predicates over a live ApplicationScheduler + VapresSystem
// pair. The soak harness sweeps them continuously at checkpoints; unit
// tests (scheduler_test, defrag_test) call the same checkers after their
// scenarios so a leak or accounting drift caught at 10^5 lifetimes is
// asserted by the fast tier too. Checkers never mutate the system; they
// append human-readable violations to an InvariantReport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "sched/scheduler.hpp"
#include "sim/time.hpp"

namespace vapres::load {

struct InvariantReport {
  std::vector<std::string> violations;
  std::uint64_t checks_run = 0;

  bool ok() const { return violations.empty(); }

  void fail(std::string what) {
    // Keep the first failures; a broken invariant usually repeats every
    // checkpoint and the tail adds nothing.
    if (violations.size() < 64) violations.push_back(std::move(what));
  }

  std::string to_string() const {
    if (violations.empty()) {
      return "invariants: all " + std::to_string(checks_run) + " checks ok";
    }
    std::string out = "invariant violations (" +
                      std::to_string(violations.size()) + "):";
    for (const std::string& v : violations) out += "\n  - " + v;
    return out;
  }
};

/// Resource ledger vs. fabric ground truth: every running app holds
/// exactly one source and one sink IOM channel plus its chain's PRRs,
/// and nothing terminal holds anything (the leak check).
inline void check_resource_ledger(const sched::ApplicationScheduler& s,
                                  InvariantReport& r) {
  ++r.checks_run;
  const std::vector<int> running = s.running_apps();
  int chain_slots = 0;
  for (const int id : running) {
    chain_slots += static_cast<int>(s.app(id).prrs.size());
  }
  const int occupied = s.fabric().num_slots() - s.fabric().free_count();
  if (occupied != chain_slots) {
    r.fail("PRR leak: " + std::to_string(occupied) +
           " slots occupied but running chains own " +
           std::to_string(chain_slots));
  }
  const int n_running = static_cast<int>(running.size());
  if (s.busy_source_channels() != n_running) {
    r.fail("IOM source-channel leak: " +
           std::to_string(s.busy_source_channels()) + " busy, " +
           std::to_string(n_running) + " running");
  }
  if (s.busy_sink_channels() != n_running) {
    r.fail("IOM sink-channel leak: " +
           std::to_string(s.busy_sink_channels()) + " busy, " +
           std::to_string(n_running) + " running");
  }
}

/// Verdict bookkeeping: every submission is admitted, rejected, or
/// still undecided — no record lost, none double-counted (holds across
/// record retirement, whose aggregates fold into accounting()).
inline void check_accounting(const sched::ApplicationScheduler& s,
                             InvariantReport& r) {
  ++r.checks_run;
  const core::SchedulerAccounting acc = s.accounting();
  int undecided = 0;
  for (int id = s.first_live_id(); id < s.num_apps(); ++id) {
    if (s.app(id).verdict == sched::AdmissionVerdict::kPending) ++undecided;
  }
  if (acc.submitted != s.num_apps()) {
    r.fail("accounting drift: submitted=" + std::to_string(acc.submitted) +
           " but num_apps=" + std::to_string(s.num_apps()));
  }
  if (acc.admitted + acc.rejected + undecided != acc.submitted) {
    r.fail("accounting drift: admitted=" + std::to_string(acc.admitted) +
           " + rejected=" + std::to_string(acc.rejected) + " + undecided=" +
           std::to_string(undecided) + " != submitted=" +
           std::to_string(acc.submitted));
  }
}

/// Word conservation for one terminal (stopped/preempted) app: the sink
/// got everything the source emitted, minus at most a pipeline's worth
/// of warm-up/in-flight words (ma8/fir4 hold state; teardown drains the
/// route before counting).
inline void check_word_conservation(const sched::AppRecord& a,
                                    InvariantReport& r,
                                    std::uint64_t pipeline_slack = 64) {
  ++r.checks_run;
  if (a.final_words_out > a.final_words_in) {
    r.fail(a.request.name + ": sink got " +
           std::to_string(a.final_words_out) + " words, source emitted " +
           std::to_string(a.final_words_in) + " (duplication)");
  } else if (a.final_words_in - a.final_words_out > pipeline_slack) {
    r.fail(a.request.name + ": lost " +
           std::to_string(a.final_words_in - a.final_words_out) +
           " of " + std::to_string(a.final_words_in) + " words");
  }
}

/// Output-stream continuity for one live channel: the largest gap
/// between consecutive sink words must stay within `bound` cycles (the
/// paper's no-interruption claim, measured by Iom gap statistics that
/// the harness resets per launch).
inline void check_stream_gap(const std::string& app_name, sim::Cycles gap,
                             sim::Cycles bound, InvariantReport& r) {
  ++r.checks_run;
  if (gap > bound) {
    r.fail(app_name + ": output gap " + std::to_string(gap) +
           " cycles exceeds bound " + std::to_string(bound));
  }
}

/// Kernel-time monotonicity across checkpoints: simulation time and the
/// system-domain cycle counter may never step backwards (and must make
/// progress while lifetimes complete).
class MonotoneClockCheck {
 public:
  void observe(core::VapresSystem& sys, InvariantReport& r) {
    ++r.checks_run;
    const sim::Picoseconds now = sys.sim().now();
    const sim::Cycles cycle = sys.system_clock().cycle_count();
    if (now < last_ps_ || cycle < last_cycle_) {
      r.fail("kernel time went backwards: " + std::to_string(last_ps_) +
             "ps -> " + std::to_string(now) + "ps, cycle " +
             std::to_string(last_cycle_) + " -> " + std::to_string(cycle));
    }
    if (seen_ && now == last_ps_ && cycle == last_cycle_) {
      r.fail("kernel time stalled at " + std::to_string(now) +
             "ps across a checkpoint interval");
    }
    last_ps_ = now;
    last_cycle_ = cycle;
    seen_ = true;
  }

  /// Raw observer state for checkpoint/restore (snap subsystem) — a
  /// resumed soak keeps asserting monotonicity across the restore
  /// boundary instead of restarting the window at zero.
  struct State {
    sim::Picoseconds last_ps = 0;
    sim::Cycles last_cycle = 0;
    bool seen = false;
  };
  State state() const { return State{last_ps_, last_cycle_, seen_}; }
  void set_state(const State& s) {
    last_ps_ = s.last_ps;
    last_cycle_ = s.last_cycle;
    seen_ = s.seen;
  }

 private:
  sim::Picoseconds last_ps_ = 0;
  sim::Cycles last_cycle_ = 0;
  bool seen_ = false;
};

}  // namespace vapres::load
