#include "load/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "sim/check.hpp"

namespace vapres::load {

std::uint64_t ScenarioSpec::total_submissions() const {
  std::uint64_t n = 0;
  for (const Phase& p : phases) n += p.submissions;
  return n;
}

core::SystemParams server_params() {
  core::SystemParams p;
  p.name = "appserver";
  core::RsbParams& r = p.rsbs[0];
  r.num_prrs = 4;
  r.num_ioms = 3;
  r.ki = 1;
  r.ko = 1;
  r.kr = 3;
  r.kl = 3;
  // Two big and two small PRRs, one per clock region: a deliberately
  // fragmentation-prone floorplan. The big sites (384 slices) take the
  // large filters (ma8, fir4_smooth); the small sites (128 slices) only
  // fit the single-stage modules. Heights are cut to the footprint
  // minimum because partial-bitstream size — and with it every PR
  // transfer the soak pays for — scales with PRR height.
  p.prr_rects = {fabric::ClbRect{0, 0, 16, 6},
                 fabric::ClbRect{16, 0, 16, 6},
                 fabric::ClbRect{32, 0, 16, 2},
                 fabric::ClbRect{48, 0, 16, 2}};
  return p;
}

std::vector<AppClass> standard_classes() {
  // The multi_app_server flavor table, weighted toward the single-stage
  // chains (they are what the small PRRs can host).
  auto cls = [](const char* tag, std::vector<std::string> modules,
                double weight) {
    AppClass c;
    c.tag = tag;
    c.modules = std::move(modules);
    c.weight = weight;
    return c;
  };
  return {
      cls("tap", {"passthrough"}, 2.0),
      cls("amp", {"gain_x2"}, 2.0),
      cls("bias", {"offset_100"}, 2.0),
      cls("crc", {"checksum"}, 1.5),
      cls("avg", {"ma8"}, 1.5),
      cls("smooth", {"fir4_smooth"}, 1.5),
      cls("amp+bias", {"gain_x2", "offset_100"}, 1.0),
  };
}

ScenarioSpec ScenarioSpec::standard(std::uint64_t seed,
                                    std::uint64_t lifetimes) {
  ScenarioSpec s;
  s.seed = seed;
  s.classes = standard_classes();

  auto phase = [](const char* name, Arrivals a, double mean,
                  std::uint64_t n) {
    Phase p;
    p.name = name;
    p.arrivals = a;
    p.mean_interarrival_cycles = mean;
    p.submissions = n;
    return p;
  };
  const std::uint64_t warmup = lifetimes / 20;        // 5%
  const std::uint64_t bursty = (lifetimes * 3) / 10;  // 30%
  // Armed fault injection forces the kernel exhaustive (docs/SIMULATOR.md
  // section 5), so each storm launch simulates its multi-million-cycle
  // PR transfer edge by edge. A dozen storm lifetimes give the
  // self-healing path plenty of opportunities; scaling the phase with
  // the lifetime budget would just scale wall time.
  const std::uint64_t churn = lifetimes / 5;          // 20%
  const std::uint64_t storm =
      std::min({lifetimes - warmup - bursty - churn,
                std::max<std::uint64_t>(lifetimes / 20, 1),
                std::uint64_t{12}});
  const std::uint64_t steady =
      lifetimes - warmup - bursty - storm - churn;    // remainder (~40%)

  // Interarrival means sit on the PR-transfer scale (a launch charges
  // 1.5M..4.4M MicroBlaze cycles on this floorplan) and under the mean
  // resident hold (~7M cycles), so tenants overlap: steady load keeps
  // the fabric ~70% subscribed, bursts oversubscribe it (rejections,
  // preemptions), quiet windows let it drain.
  s.phases.push_back(
      phase("warmup", Arrivals::kPoisson, 4.0e6, warmup));
  s.phases.push_back(
      phase("steady", Arrivals::kPoisson, 2.5e6, steady));
  Phase diurnal =
      phase("bursty-diurnal", Arrivals::kBurstyDiurnal, 3.0e6, bursty);
  diurnal.burst_fraction = 0.25;
  diurnal.burst_rate_multiplier = 8.0;
  diurnal.burst_length = 16;
  s.phases.push_back(diurnal);
  Phase storm_phase = phase("fault-storm", Arrivals::kPoisson, 2.5e6, storm);
  storm_phase.icap_fault_probability = 0.02;
  // Small-footprint classes only (see Phase::class_weights): the storm
  // runs on the exhaustive kernel, and a small site's bitstream costs
  // a third of a big one's per launch.
  storm_phase.class_weights = {2.0, 2.0, 2.0, 1.5, 0.0, 0.0, 0.0};
  s.phases.push_back(storm_phase);
  Phase churn_phase = phase("churn", Arrivals::kPoisson, 1.5e6, churn);
  churn_phase.churn_stop_probability = 0.4;
  s.phases.push_back(churn_phase);
  return s;
}

ScenarioSpec ScenarioSpec::standard_fleet(std::uint64_t seed,
                                          std::uint64_t lifetimes,
                                          int num_tenants, int num_fabrics) {
  VAPRES_REQUIRE(num_fabrics >= 1, "fleet scenario needs >= 1 fabric");
  ScenarioSpec s;
  s.seed = seed;
  s.classes = standard_classes();
  s.num_tenants = num_tenants;

  auto phase = [num_fabrics](const char* name, Arrivals a, double mean,
                             std::uint64_t n) {
    Phase p;
    p.name = name;
    p.arrivals = a;
    // A fleet with N fabrics has N fabrics' worth of service capacity;
    // offer it N times the single-fabric arrival rate so the router has
    // real load to spread.
    p.mean_interarrival_cycles = mean / static_cast<double>(num_fabrics);
    p.submissions = n;
    return p;
  };
  // No fault-storm phase: armed injection forces every fabric's kernel
  // exhaustive, and a fleet multiplies that wall-time cost by N.
  const std::uint64_t warmup = lifetimes / 20;        // 5%
  const std::uint64_t bursty = (lifetimes * 3) / 10;  // 30%
  const std::uint64_t churn = lifetimes / 4;          // 25%
  const std::uint64_t steady = lifetimes - warmup - bursty - churn;

  s.phases.push_back(phase("warmup", Arrivals::kPoisson, 4.0e6, warmup));
  s.phases.push_back(phase("steady", Arrivals::kPoisson, 2.5e6, steady));
  Phase diurnal =
      phase("bursty-diurnal", Arrivals::kBurstyDiurnal, 3.0e6, bursty);
  diurnal.burst_fraction = 0.25;
  diurnal.burst_rate_multiplier = 8.0;
  diurnal.burst_length = 16;
  s.phases.push_back(diurnal);
  Phase churn_phase =
      phase("migration-churn", Arrivals::kPoisson, 1.5e6, churn);
  churn_phase.churn_stop_probability = 0.2;
  churn_phase.migrate_probability = 0.3;
  s.phases.push_back(churn_phase);
  return s;
}

ScenarioGenerator::ScenarioGenerator(ScenarioSpec spec)
    : spec_(std::move(spec)),
      rng_(spec_.seed),
      side_rng_(spec_.seed ^ 0x9e3779b97f4a7c15ULL) {
  VAPRES_REQUIRE(!spec_.classes.empty(), "scenario needs app classes");
  VAPRES_REQUIRE(spec_.num_tenants >= 1, "scenario needs >= 1 tenant");
  for (const AppClass& c : spec_.classes) {
    VAPRES_REQUIRE(c.weight > 0.0, "class " + c.tag + ": weight must be > 0");
    VAPRES_REQUIRE(!c.modules.empty(), "class " + c.tag + ": empty chain");
    total_weight_ += c.weight;
  }
  for (const Phase& ph : spec_.phases) {
    if (ph.class_weights.empty()) continue;
    VAPRES_REQUIRE(ph.class_weights.size() == spec_.classes.size(),
                   "phase " + ph.name + ": class_weights must have one " +
                       "entry per class");
    double total = 0.0;
    for (const double w : ph.class_weights) {
      VAPRES_REQUIRE(w >= 0.0, "phase " + ph.name + ": negative weight");
      total += w;
    }
    VAPRES_REQUIRE(total > 0.0,
                   "phase " + ph.name + ": all class weights are zero");
  }
}

const Phase* ScenarioGenerator::current_phase() const {
  std::size_t ph = phase_;
  std::uint64_t emitted = emitted_in_phase_;
  while (ph < spec_.phases.size() && emitted >= spec_.phases[ph].submissions) {
    ++ph;
    emitted = 0;
  }
  return ph < spec_.phases.size() ? &spec_.phases[ph] : nullptr;
}

std::size_t ScenarioGenerator::pick_class(const Phase& ph) {
  const bool override = !ph.class_weights.empty();
  double total = total_weight_;
  if (override) {
    total = 0.0;
    for (const double w : ph.class_weights) total += w;
  }
  double x = rng_.next_double() * total;
  std::size_t last = 0;
  for (std::size_t i = 0; i < spec_.classes.size(); ++i) {
    const double w = override ? ph.class_weights[i] : spec_.classes[i].weight;
    if (w <= 0.0) continue;
    last = i;
    x -= w;
    if (x < 0.0) return i;
  }
  return last;  // floating-point edge
}

double ScenarioGenerator::sample_interarrival(const Phase& ph) {
  // Exponential draw via inverse CDF; clamp u away from 0 so the log is
  // finite. One RNG draw per gap regardless of the process, so the
  // stream layout is stable across phase-parameter tweaks.
  const double u = std::max(rng_.next_double(), 1e-12);
  double mean = ph.mean_interarrival_cycles;
  if (ph.arrivals == Arrivals::kBurstyDiurnal) {
    if (burst_left_ == 0 && quiet_left_ == 0) {
      // Start a quiet window, then a burst, alternating. Window sizes
      // are deterministic; the Poisson jitter stays in the gaps.
      const double bf = std::clamp(ph.burst_fraction, 0.01, 0.99);
      quiet_left_ = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 static_cast<double>(ph.burst_length) * (1.0 - bf) / bf));
      burst_left_ = std::max<std::uint64_t>(1, ph.burst_length);
    }
    if (quiet_left_ > 0) {
      --quiet_left_;
    } else {
      --burst_left_;
      mean /= std::max(ph.burst_rate_multiplier, 1.0);
    }
  }
  return -mean * std::log(1.0 - u);
}

std::optional<WorkloadEvent> ScenarioGenerator::next() {
  while (phase_ < spec_.phases.size() &&
         emitted_in_phase_ >= spec_.phases[phase_].submissions) {
    ++phase_;
    emitted_in_phase_ = 0;
    burst_left_ = 0;
    quiet_left_ = 0;
  }
  if (phase_ >= spec_.phases.size()) return std::nullopt;
  const Phase& ph = spec_.phases[phase_];

  WorkloadEvent ev;
  ev.sequence = sequence_++;
  ev.phase_index = phase_;
  ev.storm = ph.icap_fault_probability > 0.0;
  clock_ += sample_interarrival(ph);
  ev.at_cycle = static_cast<std::uint64_t>(clock_);
  ev.class_index = pick_class(ph);
  const AppClass& c = spec_.classes[ev.class_index];

  ev.request.name = c.tag + "-" + std::to_string(ev.sequence);
  ev.request.modules = c.modules;
  ev.request.priority = static_cast<int>(
      rng_.next_in(static_cast<std::uint64_t>(c.min_priority),
                   static_cast<std::uint64_t>(c.max_priority)));
  const int shift = static_cast<int>(
      rng_.next_in(static_cast<std::uint64_t>(c.min_interval_shift),
                   static_cast<std::uint64_t>(c.max_interval_shift)));
  ev.request.source_interval_cycles = 2 << shift;
  ev.request.source_words = rng_.next_in(c.min_words, c.max_words);
  ev.hold_cycles = rng_.next_in(c.min_hold_cycles, c.max_hold_cycles);
  // The churn draw happens unconditionally so event streams only differ
  // where specs differ, never downstream of a skipped draw.
  ev.churn_stop = rng_.chance(ph.churn_stop_probability);
  // Fleet-era draws live on the side stream (same unconditional-draw
  // rule): the main stream above stays bit-identical to pre-fleet specs.
  ev.tenant = static_cast<int>(side_rng_.next_below(
      static_cast<std::uint64_t>(spec_.num_tenants)));
  ev.migrate = side_rng_.chance(ph.migrate_probability);

  ++emitted_in_phase_;
  return ev;
}

}  // namespace vapres::load
