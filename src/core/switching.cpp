#include "core/switching.hpp"

#include "bitstream/bitgen.hpp"
#include "obs/metrics.hpp"
#include "sim/check.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace vapres::core {

namespace ctrl = hwmodule::ctrl;

ModuleSwitcher::ModuleSwitcher(VapresSystem& sys, SwitchRequest req)
    : sys_(sys), req_(std::move(req)) {
  VAPRES_REQUIRE(req_.src_prr != req_.dst_prr,
                 "switching needs a spare PRR distinct from the source");
  VAPRES_REQUIRE(sys_.library().contains(req_.new_module_id),
                 "unknown module: " + req_.new_module_id);
}

void ModuleSwitcher::close_step() {
  if (!step_span_.open()) return;
  obs::Histogram& hist = obs::Registry::instance().histogram(
      std::string("switch.") +
      obs::event_name(obs::Subsystem::kSwitch, step_code_) + ".cycles");
  step_span_.end(sys_.sim().now(), &hist,
                 static_cast<std::int64_t>(sys_.mb().cycle() -
                                           step_begin_cycle_));
}

void ModuleSwitcher::enter_step(std::uint16_t code) {
  close_step();
  step_code_ = code;
  step_begin_cycle_ = sys_.mb().cycle();
  step_span_ = obs::Span::begin(obs::Subsystem::kSwitch, code, obs_track_,
                                sys_.sim().now(),
                                static_cast<std::uint64_t>(req_.dst_prr));
}

void ModuleSwitcher::begin() {
  VAPRES_REQUIRE(state_ == State::kIdle, "switcher already started");
  Rsb& r = rsb();
  VAPRES_REQUIRE(r.channels().active(req_.upstream) &&
                     r.channels().active(req_.downstream),
                 "switch request channels are not active");

  // A background prefetch staging may hold the blocking transfer path;
  // let it finish before the switch claims the driver.
  sys_.drain_transfer_path();

  timeline_.started = sys_.mb().cycle();
  reconfig_complete_ = false;
  reconfig_ok_ = true;

  // Step 3: reconfigure the spare PRR while the stream keeps flowing.
  auto on_done = [this](const ReconfigOutcome& outcome) {
    reconfig_complete_ = true;
    reconfig_ok_ = outcome.ok();
  };
  const std::string dst_name = r.prr(req_.dst_prr).name();
  switch (req_.source) {
    case ReconfigSource::kSdramArray:
    case ReconfigSource::kManaged:
      // Resolve through the bitman cache: warm arrays take the fast
      // array2icap path (pinned against eviction for the transfer),
      // cold pairs stream from CompactFlash.
      sys_.bitman().reconfigure(req_.new_module_id, dst_name, on_done);
      break;
    case ReconfigSource::kCfStream:
      sys_.reconfig().cf2icap_streamed(
          bitstream::bitstream_filename(req_.new_module_id, dst_name),
          bitstream::Calibration::kStreamChunkBytes, on_done);
      break;
    case ReconfigSource::kCompactFlash:
      sys_.reconfig().cf2icap(
          bitstream::bitstream_filename(req_.new_module_id, dst_name),
          on_done);
      break;
  }
  state_ = State::kReconfiguring;
  obs_track_ = obs::EventBus::instance().track(
      r.prr(req_.src_prr).name() + ".switch");
  enter_step(obs::ev::kStep1Reconfigure);
  sys_.mb().add_task(this);
  VAPRES_TRACE_INFO(sys_.sim().now(), "switcher",
                    "step 3: reconfiguring spare PRR with "
                        << req_.new_module_id);
}

void ModuleSwitcher::reroute(ChannelId old_channel,
                             ChannelEndpoint new_producer,
                             ChannelEndpoint new_consumer, ChannelId& out,
                             proc::Microblaze& mb, bool enable_producer) {
  Rsb& r = rsb();
  r.channels().release(old_channel);
  auto id = r.channels().establish(new_producer, new_consumer);
  VAPRES_REQUIRE(id.has_value(),
                 "re-route failed: no free lanes for the new channel");
  out = *id;
  // Charge the PRSocket writes software performs to program the path.
  const auto& spec = r.channels().spec(out);
  mb.busy_for(static_cast<sim::Cycles>(
      ChannelManager::dcr_writes_for(spec) * comm::DcrBus::kBridgeAccessCycles));
  sys_.socket_set_bits(r.socket_address(new_consumer.box),
                       PrSocket::kFifoWen, true);
  if (enable_producer) {
    sys_.socket_set_bits(r.socket_address(new_producer.box),
                         PrSocket::kFifoRen, true);
  }
}

bool ModuleSwitcher::step(proc::Microblaze& mb) {
  Rsb& r = rsb();
  switch (state_) {
    case State::kIdle:
      return false;

    case State::kReconfiguring: {
      if (!reconfig_complete_) return false;
      if (!reconfig_ok_) {
        // The PR of the spare PRR failed permanently. Nothing was
        // re-routed yet — the new module was never on the processing path
        // — so rollback is: leave every channel and the source module
        // exactly as they are and walk away. The stream never noticed.
        sim::FaultInjector::instance().note_recovery(
            sim::RecoveryEvent::kSwitchRollback);
        timeline_.aborted = mb.cycle();
        close_step();
        obs::EventBus::instance().instant(
            obs::Subsystem::kSwitch, obs::ev::kSwitchRollback, obs_track_,
            sys_.sim().now(), static_cast<std::uint64_t>(req_.dst_prr));
        obs::Registry::instance().counter("switch.rollbacks").add();
        VAPRES_TRACE_INFO(sys_.sim().now(), "switcher",
                          "step 3 FAILED: PR of spare PRR gave up; switch "
                          "rolled back, source module keeps streaming");
        state_ = State::kAborted;
        return true;  // task finished; source path untouched
      }
      timeline_.reconfig_done = mb.cycle();
      VAPRES_TRACE_INFO(sys_.sim().now(), "switcher",
                        "step 3 done: PR complete, bringing up dst site");
      // Bring up the dst site with the module held in reset: slice macros
      // on, clock on, consumer writes accepted, PRR_reset asserted.
      const comm::DcrAddress dst = r.prr_socket_address(req_.dst_prr);
      mb.dcr_write(dst, mb.dcr_read(dst) | PrSocket::kSmEn |
                            PrSocket::kClkEn | PrSocket::kFifoWen |
                            PrSocket::kPrrReset);
      // Step 4 begins: stop the upstream producer draining so in-flight
      // words land before the muxes change.
      const auto& up = r.channels().spec(req_.upstream);
      const comm::DcrAddress up_sock = r.socket_address(up.producer_box);
      mb.dcr_write(up_sock, mb.dcr_read(up_sock) & ~PrSocket::kFifoRen);
      mb.busy_for(static_cast<sim::Cycles>(up.hops()) + 4);
      state_ = State::kQuiesceUpstream;
      enter_step(obs::ev::kStep2QuiesceUpstream);
      return false;
    }

    case State::kQuiesceUpstream: {
      // Pipeline is flushed (the busy_for above elapsed).
      state_ = State::kRerouteUpstream;
      enter_step(obs::ev::kStep3RerouteUpstream);
      return false;
    }

    case State::kRerouteUpstream: {
      const comm::RouteSpec up = r.channels().spec(req_.upstream);
      reroute(req_.upstream,
              ChannelEndpoint{up.producer_box, up.producer_channel},
              r.prr_consumer(req_.dst_prr), new_upstream_, mb,
              /*enable_producer=*/true);
      timeline_.input_rerouted = mb.cycle();
      VAPRES_TRACE_INFO(sys_.sim().now(), "switcher",
                        "step 4: input re-routed to the new module");
      state_ = State::kSendFlush;
      enter_step(obs::ev::kStep4SendFlush);
      return false;
    }

    case State::kSendFlush: {
      // Step 5: tell the old module to drain and emit the EOS word.
      comm::FslLink& t = r.prr(req_.src_prr).fsl_from_mb();
      if (!t.can_write()) return false;
      t.write(ctrl::kCmdFlush);
      mb.busy_for(1);
      saw_header_ = false;
      expected_words_ = -1;
      state_ = State::kCollectState;
      enter_step(obs::ev::kStep5CollectState);
      return false;
    }

    case State::kCollectState: {
      // Step 6: read the [STATE_HEADER, count, words...] frame, skipping
      // monitoring words that were already queued on the r-link.
      comm::FslLink& rl = r.prr(req_.src_prr).fsl_to_mb();
      while (auto w = rl.try_read()) {
        mb.busy_for(1);
        if (!saw_header_) {
          if (*w == ctrl::kStateHeader) {
            saw_header_ = true;
          } else if (*w != ctrl::kEosSentNote) {
            monitoring_.push_back(*w);
          }
        } else if (expected_words_ < 0) {
          expected_words_ = static_cast<int>(*w);
        } else {
          collected_state_.push_back(*w);
        }
        if (saw_header_ && expected_words_ >= 0 &&
            static_cast<int>(collected_state_.size()) == expected_words_) {
          timeline_.state_collected = mb.cycle();
          VAPRES_TRACE_INFO(sys_.sim().now(), "switcher",
                            "step 6: " << collected_state_.size()
                                       << " state words collected");
          state_ = State::kInitNewModule;
          enter_step(obs::ev::kStep6InitNewModule);
          return false;
        }
      }
      return false;
    }

    case State::kInitNewModule: {
      // Step 7: queue the LOAD_STATE frame, then release the reset. The
      // wrapper reads the frame before letting the module fire, so the
      // module never processes data with pre-restore state.
      comm::FslLink& t = r.prr(req_.dst_prr).fsl_from_mb();
      VAPRES_REQUIRE(t.capacity() - t.occupancy() >=
                         static_cast<int>(collected_state_.size()) + 2,
                     "dst t-link cannot hold the state frame");
      t.write(ctrl::kCmdLoadState);
      t.write(static_cast<comm::Word>(collected_state_.size()));
      for (comm::Word w : collected_state_) t.write(w);
      mb.busy_for(static_cast<sim::Cycles>(collected_state_.size()) + 2);
      const comm::DcrAddress dst = r.prr_socket_address(req_.dst_prr);
      mb.dcr_write(dst, mb.dcr_read(dst) & ~PrSocket::kPrrReset);
      timeline_.module_initialized = mb.cycle();
      VAPRES_TRACE_INFO(sys_.sim().now(), "switcher",
                        "step 7: new module initialized");
      state_ = State::kWaitIomEos;
      enter_step(obs::ev::kStep7WaitIomEos);
      return false;
    }

    case State::kWaitIomEos: {
      // Step 8: the IOM reports the EOS word on its r-link.
      comm::FslLink& rl = r.iom(req_.eos_iom).fsl_to_mb();
      while (auto w = rl.try_read()) {
        mb.busy_for(1);
        if (*w == kIomEosDetected) {
          timeline_.iom_eos_seen = mb.cycle();
          // Step 9 begins: quiesce the old module's producer.
          const auto& down = r.channels().spec(req_.downstream);
          const comm::DcrAddress src_sock =
              r.socket_address(down.producer_box);
          mb.dcr_write(src_sock,
                       mb.dcr_read(src_sock) & ~PrSocket::kFifoRen);
          mb.busy_for(static_cast<sim::Cycles>(down.hops()) + 4);
          state_ = State::kQuiesceSrc;
          enter_step(obs::ev::kStep8QuiesceSrc);
          return false;
        }
      }
      return false;
    }

    case State::kQuiesceSrc:
      state_ = State::kRerouteDownstream;
      enter_step(obs::ev::kStep9RerouteDownstream);
      return false;

    case State::kRerouteDownstream: {
      const comm::RouteSpec down = r.channels().spec(req_.downstream);
      reroute(req_.downstream, r.prr_producer(req_.dst_prr),
              ChannelEndpoint{down.consumer_box, down.consumer_channel},
              new_downstream_, mb, /*enable_producer=*/true);
      // Shut the old module's site down: isolate and gate its clock.
      const comm::DcrAddress src = r.prr_socket_address(req_.src_prr);
      mb.dcr_write(src, mb.dcr_read(src) &
                            ~(PrSocket::kSmEn | PrSocket::kClkEn |
                              PrSocket::kFifoWen | PrSocket::kFifoRen));
      timeline_.completed = mb.cycle();
      close_step();
      obs::Registry::instance().counter("switch.completed").add();
      obs::Registry::instance()
          .histogram("switch.total.cycles")
          .record(timeline_.completed - timeline_.started);
      VAPRES_TRACE_INFO(sys_.sim().now(), "switcher",
                        "step 9: output re-routed; switch complete");
      state_ = State::kDone;
      return true;  // task finished; MicroBlaze descheduules it
    }

    case State::kDone:
    case State::kAborted:
      return true;
  }
  return false;
}

}  // namespace vapres::core
