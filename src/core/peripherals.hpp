// External-peripheral signal sources for IOMs.
//
// IOMs "directly interface to external I/O pins or peripherals (i.e.
// ADCs, DACs, etc.)" (Section III.B). These factories build the
// generator callables Iom::set_source_generator consumes: fixed-point
// ADC-style waveforms (sine, chirp, noise, steps) with deterministic
// arithmetic, so tests and benches get reproducible "analog" inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "comm/flit.hpp"
#include "sim/random.hpp"

namespace vapres::core::peripherals {

using Generator = std::function<std::optional<comm::Word>()>;

/// Sine wave, amplitude in counts around `offset`, `period` samples per
/// cycle, quantized via a 256-entry quarter-wave integer table (as an
/// ADC front-end DDS would). Infinite unless `total_samples` > 0.
Generator sine_source(std::int32_t amplitude, std::int32_t offset,
                      int period, std::int64_t total_samples = 0);

/// Uniform noise in [offset - amplitude, offset + amplitude].
Generator noise_source(std::int32_t amplitude, std::int32_t offset,
                       std::uint64_t seed, std::int64_t total_samples = 0);

/// Step pattern: `low` for `half_period` samples, then `high`, repeating.
Generator square_source(comm::Word low, comm::Word high, int half_period,
                        std::int64_t total_samples = 0);

/// Ramp: counts up from 0 by `increment` per sample (wrap-around).
Generator ramp_source(comm::Word increment,
                      std::int64_t total_samples = 0);

/// Sums two generators sample-wise; ends when either ends.
Generator mix(Generator a, Generator b);

/// The integer quarter-wave sine table entry (exposed for golden models
/// in tests): round(sin(pi/2 * i / 256) * 32767) for i in [0, 256].
std::int32_t sine_table(int i);

}  // namespace vapres::core::peripherals
