#include "core/rsb.hpp"

#include "sim/check.hpp"

namespace vapres::core {

Rsb::Rsb(std::string name, const RsbParams& params,
         const fabric::DeviceGeometry& device, sim::Simulator& sim,
         sim::ClockDomain& static_domain, comm::DcrBus& dcr,
         double prr_clock_a_mhz, double prr_clock_b_mhz,
         std::vector<fabric::ClbRect> prr_rects, comm::DcrAddress dcr_base)
    : name_(std::move(name)), params_(params), dcr_(dcr),
      dcr_base_(dcr_base) {
  params_.validate();
  VAPRES_REQUIRE(static_cast<int>(prr_rects.size()) == params_.num_prrs,
                 name_ + ": need one rectangle per PRR");

  const comm::SwitchBoxShape shape{params_.kr, params_.kl, params_.ki,
                                   params_.ko};
  fabric_ = std::make_unique<comm::SwitchFabric>(
      static_domain, params_.num_attachments(), shape, name_ + ".fabric");
  channels_ = std::make_unique<ChannelManager>(*fabric_);

  for (int i = 0; i < params_.num_ioms; ++i) {
    const int box_index = params_.box_of_iom(i);
    ioms_.push_back(std::make_unique<Iom>(
        name_ + ".iom" + std::to_string(i), params_, static_domain,
        &fabric_->box(box_index)));
    for (int c = 0; c < params_.ko; ++c) {
      fabric_->attach_producer(box_index, c, &ioms_.back()->producer(c));
    }
    for (int c = 0; c < params_.ki; ++c) {
      fabric_->attach_consumer(box_index, c, &ioms_.back()->consumer(c));
    }
    dcr_.map(socket_address(box_index), &ioms_.back()->socket());
  }

  for (int i = 0; i < params_.num_prrs; ++i) {
    const int box_index = params_.box_of_prr(i);
    auto prr = std::make_unique<Prr>(
        name_ + ".prr" + std::to_string(i), i,
        prr_rects[static_cast<std::size_t>(i)], params_, device, sim,
        static_domain, prr_clock_a_mhz, prr_clock_b_mhz,
        &fabric_->box(box_index));
    for (int c = 0; c < params_.ko; ++c) {
      fabric_->attach_producer(box_index, c, &prr->producer(c));
    }
    for (int c = 0; c < params_.ki; ++c) {
      fabric_->attach_consumer(box_index, c, &prr->consumer(c));
    }
    dcr_.map(socket_address(box_index), &prr->socket());
    dcr_.map(prr_perf_address(i), &prr->perf_counters());
    prrs_.push_back(std::move(prr));
  }
}

Rsb::~Rsb() {
  for (int i = 0; i < params_.num_ioms; ++i) {
    dcr_.unmap(socket_address(params_.box_of_iom(i)));
  }
  for (int i = 0; i < num_prrs(); ++i) {
    dcr_.unmap(socket_address(params_.box_of_prr(i)));
    dcr_.unmap(prr_perf_address(i));
  }
}

Prr& Rsb::prr(int index) {
  VAPRES_REQUIRE(index >= 0 && index < num_prrs(),
                 name_ + ": PRR index out of range");
  return *prrs_[static_cast<std::size_t>(index)];
}

const Prr& Rsb::prr(int index) const {
  VAPRES_REQUIRE(index >= 0 && index < num_prrs(),
                 name_ + ": PRR index out of range");
  return *prrs_[static_cast<std::size_t>(index)];
}

Iom& Rsb::iom(int index) {
  VAPRES_REQUIRE(index >= 0 && index < num_ioms(),
                 name_ + ": IOM index out of range");
  return *ioms_[static_cast<std::size_t>(index)];
}

comm::DcrAddress Rsb::socket_address(int box_index) const {
  VAPRES_REQUIRE(box_index >= 0 && box_index < params_.num_attachments(),
                 name_ + ": box index out of range");
  return dcr_base_ + static_cast<comm::DcrAddress>(box_index);
}

comm::DcrAddress Rsb::prr_socket_address(int prr_index) const {
  return socket_address(params_.box_of_prr(prr_index));
}

comm::DcrAddress Rsb::iom_socket_address(int iom_index) const {
  return socket_address(params_.box_of_iom(iom_index));
}

comm::DcrAddress Rsb::prr_perf_address(int prr_index) const {
  VAPRES_REQUIRE(params_.num_attachments() <=
                     static_cast<int>(kPerfBankOffset),
                 name_ + ": socket bank would overlap the perf bank");
  return dcr_base_ + kPerfBankOffset +
         static_cast<comm::DcrAddress>(params_.box_of_prr(prr_index));
}

ChannelEndpoint Rsb::prr_producer(int prr_index, int channel) const {
  return ChannelEndpoint{params_.box_of_prr(prr_index), channel};
}
ChannelEndpoint Rsb::prr_consumer(int prr_index, int channel) const {
  return ChannelEndpoint{params_.box_of_prr(prr_index), channel};
}
ChannelEndpoint Rsb::iom_producer(int iom_index, int channel) const {
  return ChannelEndpoint{params_.box_of_iom(iom_index), channel};
}
ChannelEndpoint Rsb::iom_consumer(int iom_index, int channel) const {
  return ChannelEndpoint{params_.box_of_iom(iom_index), channel};
}

}  // namespace vapres::core
