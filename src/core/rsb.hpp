// Reconfigurable streaming block (RSB, paper Figure 1).
//
// An RSB assembles one linear switch-box fabric with its attached sites:
// IOMs on the first boxes, PRRs on the rest (the Figure 5 layout:
// SW0-IOM, SW1-PRR0, SW2-PRR1, ...). Every site's PRSocket is mapped on
// the DCR bus at a consecutive address, and a ChannelManager provides the
// routing layer over the fabric.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "comm/dcr.hpp"
#include "comm/switch_fabric.hpp"
#include "core/channel.hpp"
#include "core/iom.hpp"
#include "core/params.hpp"
#include "core/prr.hpp"

namespace vapres::core {

class Rsb {
 public:
  Rsb(std::string name, const RsbParams& params,
      const fabric::DeviceGeometry& device, sim::Simulator& sim,
      sim::ClockDomain& static_domain, comm::DcrBus& dcr,
      double prr_clock_a_mhz, double prr_clock_b_mhz,
      std::vector<fabric::ClbRect> prr_rects, comm::DcrAddress dcr_base);

  Rsb(const Rsb&) = delete;
  Rsb& operator=(const Rsb&) = delete;
  ~Rsb();

  const std::string& name() const { return name_; }
  const RsbParams& params() const { return params_; }

  comm::SwitchFabric& fabric() { return *fabric_; }
  ChannelManager& channels() { return *channels_; }

  int num_prrs() const { return static_cast<int>(prrs_.size()); }
  int num_ioms() const { return static_cast<int>(ioms_.size()); }
  Prr& prr(int index);
  const Prr& prr(int index) const;
  Iom& iom(int index);

  /// DCR address of the PRSocket paired with switch box `box_index`.
  comm::DcrAddress socket_address(int box_index) const;
  /// DCR address of PRR / IOM sockets by site index.
  comm::DcrAddress prr_socket_address(int prr_index) const;
  comm::DcrAddress iom_socket_address(int iom_index) const;

  /// PRR performance-counter registers live in a second bank above the
  /// sockets: dcr_base + kPerfBankOffset + box_index. The offset leaves
  /// room for any realistic number of sockets below the bank while
  /// staying inside the 0x40 address stride the system allots per RSB.
  static constexpr comm::DcrAddress kPerfBankOffset = 0x20;
  comm::DcrAddress prr_perf_address(int prr_index) const;

  /// Channel endpoints of module ports, for ChannelManager::establish.
  ChannelEndpoint prr_producer(int prr_index, int channel = 0) const;
  ChannelEndpoint prr_consumer(int prr_index, int channel = 0) const;
  ChannelEndpoint iom_producer(int iom_index, int channel = 0) const;
  ChannelEndpoint iom_consumer(int iom_index, int channel = 0) const;

 private:
  std::string name_;
  RsbParams params_;
  comm::DcrBus& dcr_;
  comm::DcrAddress dcr_base_;
  std::unique_ptr<comm::SwitchFabric> fabric_;
  std::unique_ptr<ChannelManager> channels_;
  std::vector<std::unique_ptr<Iom>> ioms_;
  std::vector<std::unique_ptr<Prr>> prrs_;
};

}  // namespace vapres::core
