#include "core/params.hpp"

#include "sim/check.hpp"

namespace vapres::core {

int RsbParams::box_of_iom(int iom_index) const {
  VAPRES_REQUIRE(iom_index >= 0 && iom_index < num_ioms,
                 "IOM index out of range");
  return iom_index;
}

int RsbParams::box_of_prr(int prr_index) const {
  VAPRES_REQUIRE(prr_index >= 0 && prr_index < num_prrs,
                 "PRR index out of range");
  return num_ioms + prr_index;
}

void RsbParams::validate() const {
  VAPRES_REQUIRE(num_prrs >= 1, "an RSB needs at least one PRR");
  VAPRES_REQUIRE(num_ioms >= 0, "negative IOM count");
  VAPRES_REQUIRE(width_bits >= 1 && width_bits <= 32,
                 "channel width must be 1..32 bits");
  VAPRES_REQUIRE(kr >= 0 && kl >= 0, "negative inter-box channel count");
  VAPRES_REQUIRE(kr + kl >= 1, "RSB needs at least one inter-box channel");
  VAPRES_REQUIRE(ki >= 1 && ko >= 1,
                 "each module needs at least one input and output channel");
  VAPRES_REQUIRE(fifo_depth >= 4, "FIFO depth must be at least 4 words");
  VAPRES_REQUIRE(prr_height_clbs >= 1 && prr_width_clbs >= 1,
                 "PRR dimensions must be positive");
  VAPRES_REQUIRE(prr_height_clbs <= 3 * fabric::DeviceGeometry::kClockRegionRows,
                 "PRR taller than the 48-CLB BUFR reach");
}

void SystemParams::validate() const {
  VAPRES_REQUIRE(!name.empty(), "system needs a name");
  VAPRES_REQUIRE(system_clock_mhz > 0.0, "system clock must be positive");
  VAPRES_REQUIRE(prr_clock_a_mhz > 0.0 && prr_clock_b_mhz > 0.0,
                 "PRR clock options must be positive");
  VAPRES_REQUIRE(!rsbs.empty(), "system needs at least one RSB");
  for (const RsbParams& rsb : rsbs) rsb.validate();
  VAPRES_REQUIRE(sdram_bytes > 0, "SDRAM capacity must be positive");
  if (!prr_rects.empty()) {
    VAPRES_REQUIRE(static_cast<int>(prr_rects.size()) == total_prrs(),
                   "floorplan must cover every PRR exactly once");
    for (std::size_t i = 0; i < prr_rects.size(); ++i) {
      const std::string violation =
          fabric::prr_legality_violation(prr_rects[i], device);
      VAPRES_REQUIRE(violation.empty(), violation);
      for (std::size_t j = 0; j < i; ++j) {
        VAPRES_REQUIRE(!prr_rects[i].overlaps(prr_rects[j]),
                       "PRR rectangles overlap");
        // Clock regions used by different PRRs may not intersect
        // (Section III.B.2).
        for (const auto& ri : regions_spanned(prr_rects[i], device)) {
          for (const auto& rj : regions_spanned(prr_rects[j], device)) {
            VAPRES_REQUIRE(!(ri == rj),
                           "PRRs share a local clock region");
          }
        }
      }
    }
  }
}

int SystemParams::total_prrs() const {
  int n = 0;
  for (const RsbParams& rsb : rsbs) n += rsb.num_prrs;
  return n;
}

SystemParams SystemParams::prototype() {
  SystemParams p;
  p.name = "vapres_ml401_prototype";
  p.device = fabric::DeviceGeometry::xc4vlx25();
  p.system_clock_mhz = 100.0;
  RsbParams rsb;
  rsb.num_prrs = 2;
  rsb.num_ioms = 1;
  rsb.width_bits = 32;
  rsb.kr = 2;
  rsb.kl = 2;
  rsb.ki = 1;
  rsb.ko = 1;
  rsb.prr_height_clbs = 16;
  rsb.prr_width_clbs = 10;
  p.rsbs = {rsb};
  return p;
}

}  // namespace vapres::core
