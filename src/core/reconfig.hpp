// Reconfiguration manager: the vapres_cf2icap / vapres_array2icap /
// vapres_cf2array driver paths (Table 2, evaluated in Section V.B).
//
// Each path is a blocking software driver on the MicroBlaze: the manager
// computes the path's cycle cost from the calibrated storage/ICAP models
// (bitstream/calibration.hpp), marks the processor busy for that long,
// holds the ICAP port for the duration, and applies the configuration
// effect (loading the module into the target PRR) at completion.
//
// Self-healing: a transfer the ICAP reports corrupted or timed out (or
// whose bitstream fails its integrity check) is retried after an
// exponential backoff, up to RetryPolicy::max_attempts per source. When
// the SDRAM-array source exhausts its attempts, the driver falls back to
// the pristine CompactFlash file (SDRAM array -> CF) before giving up.
// Completion callbacks receive a ReconfigOutcome so callers — notably
// the ModuleSwitcher — can roll back on permanent failure.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "bitstream/storage.hpp"
#include "fabric/icap.hpp"
#include "obs/bus.hpp"
#include "proc/microblaze.hpp"
#include "sim/simulator.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::core {

/// Cycle decomposition of one reconfiguration call, matching the paper's
/// reporting (storage transfer vs. ICAP write percentages).
struct ReconfigBreakdown {
  double storage_cycles = 0;  ///< CF or SDRAM transfer
  double icap_cycles = 0;     ///< software-driven ICAP write

  double total_cycles() const { return storage_cycles + icap_cycles; }
  double storage_fraction() const {
    return total_cycles() > 0 ? storage_cycles / total_cycles() : 0.0;
  }
  double seconds_at(double clock_mhz) const {
    return total_cycles() / (clock_mhz * 1e6);
  }
};

/// Recovery policy for corrupt / timed-out transfers.
struct RetryPolicy {
  int max_attempts = 3;  ///< transfer attempts per source (>= 1)
  /// Backoff before attempt k+1 is `backoff_base_cycles << (k-1)` cycles.
  sim::Cycles backoff_base_cycles = 256;
  bool fallback_to_cf = true;  ///< SDRAM array -> CF after exhaustion
};

/// How a reconfiguration call ended, delivered to its callback.
struct ReconfigOutcome {
  bool success = true;
  int attempts = 1;   ///< total transfer attempts across all sources
  int fallbacks = 0;  ///< source fallbacks taken (0 or 1)

  bool ok() const { return success; }
};

class ReconfigManager {
 public:
  using DoneCallback = std::function<void(const ReconfigOutcome&)>;

  ReconfigManager(sim::Simulator& sim, proc::Microblaze& mb,
                  fabric::IcapPort& icap, bitstream::CompactFlash& cf,
                  bitstream::Sdram& sdram);

  /// Registers the configuration effect for a PRR (by instance name).
  void register_target(
      const std::string& prr_name,
      std::function<void(const bitstream::PartialBitstream&)> apply);

  // ---- Analytic estimates (benches assert the simulation matches) ------
  static ReconfigBreakdown estimate_cf2icap(std::int64_t bytes);
  static ReconfigBreakdown estimate_array2icap(std::int64_t bytes);
  static double estimate_cf2array_cycles(std::int64_t bytes);
  /// Double-buffered chunked cf2icap: the CF read of chunk k+1 overlaps
  /// the ICAP write of chunk k. The card read is ~20x slower per byte
  /// than the ICAP write, so only the final chunk's ICAP write is
  /// exposed; the rest hides behind the card. Storage share = full CF
  /// read + per-chunk flip overhead, ICAP share = the exposed tail.
  static ReconfigBreakdown estimate_cf2icap_streamed(std::int64_t bytes,
                                                     std::int64_t chunk_bytes);

  // ---- Timed operations -------------------------------------------------
  // Each returns the cycle cost charged to the MicroBlaze for the first
  // attempt and invokes `on_done` with the outcome once the transfer
  // finally completes (retries and fallbacks extend the busy time beyond
  // the returned first-attempt cost). Throws if a reconfiguration is
  // already in flight (the ICAP and the blocking driver serialize all
  // paths).

  sim::Cycles cf2icap(const std::string& filename, DoneCallback on_done = {});
  /// Pipelined variant of cf2icap (estimate_cf2icap_streamed timing):
  /// the cold-miss path of the bitman subsystem (docs/BITSTREAMS.md).
  sim::Cycles cf2icap_streamed(const std::string& filename,
                               std::int64_t chunk_bytes,
                               DoneCallback on_done = {});
  sim::Cycles array2icap(const std::string& key, DoneCallback on_done = {});
  /// Stages a CF file into SDRAM under `key`, replacing any stale array
  /// already staged there (system startup and cache restaging).
  sim::Cycles cf2array(const std::string& filename, const std::string& key,
                       DoneCallback on_done = {});

  bool busy() const { return busy_; }

  /// Simulation-time / MicroBlaze-cycle passthroughs so the bitman layer
  /// can stamp observability events without holding its own Simulator or
  /// processor reference.
  sim::Picoseconds now() const { return sim_.now(); }
  sim::Cycles mb_cycle() const { return mb_.cycle(); }

  const ReconfigBreakdown& last_breakdown() const { return last_; }
  int completed() const { return completed_; }

  void set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const { return policy_; }

  /// Recovery counters (lifetime totals).
  int retries() const { return retries_; }
  int fallbacks() const { return fallbacks_; }
  int failures() const { return failures_; }

  /// Readback verification: after writing, read the configuration back
  /// through the ICAP and compare (standard EAPR-era hardening against
  /// configuration upsets). Doubles the ICAP share of every subsequent
  /// timed transfer; the bitstream's integrity tag is checked at apply
  /// time either way.
  void set_verify_after_write(bool verify) { verify_ = verify; }
  bool verify_after_write() const { return verify_; }

 private:
  // Checkpoint/restore overlays the lifetime counters and last-breakdown
  // record; snapshots require !busy() (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  /// One in-flight reconfiguration, surviving across retry attempts.
  struct Inflight {
    bitstream::PartialBitstream bs;
    ReconfigBreakdown cost;        // per-attempt cost for the current source
    std::string cf_fallback;       // CF filename, "" = no fallback possible
    bool on_fallback_source = false;
    int attempts_this_source = 0;
    ReconfigOutcome outcome;
    std::function<void(const bitstream::PartialBitstream&)> apply;
    DoneCallback on_done;
    // observability: one span per transfer, spanning retries/fallbacks
    obs::Span span;
    std::uint16_t path_code = 0;
    sim::Cycles started_cycle = 0;
  };

  sim::Cycles start(const bitstream::PartialBitstream& bs,
                    const ReconfigBreakdown& cost, bool sdram_source,
                    std::uint16_t path_code, DoneCallback on_done);
  sim::Cycles launch_attempt();
  void complete_attempt();
  void finish(bool success);

  sim::Simulator& sim_;
  proc::Microblaze& mb_;
  fabric::IcapPort& icap_;
  bitstream::CompactFlash& cf_;
  bitstream::Sdram& sdram_;
  std::map<std::string,
           std::function<void(const bitstream::PartialBitstream&)>>
      targets_;
  bool busy_ = false;
  bool verify_ = false;
  RetryPolicy policy_;
  ReconfigBreakdown last_;
  int completed_ = 0;
  int retries_ = 0;
  int fallbacks_ = 0;
  int failures_ = 0;
  std::unique_ptr<Inflight> inflight_;
};

}  // namespace vapres::core
