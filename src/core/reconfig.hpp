// Reconfiguration manager: the vapres_cf2icap / vapres_array2icap /
// vapres_cf2array driver paths (Table 2, evaluated in Section V.B).
//
// Each path is a blocking software driver on the MicroBlaze: the manager
// computes the path's cycle cost from the calibrated storage/ICAP models
// (bitstream/calibration.hpp), marks the processor busy for that long,
// holds the ICAP port for the duration, and applies the configuration
// effect (loading the module into the target PRR) at completion.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "bitstream/storage.hpp"
#include "fabric/icap.hpp"
#include "proc/microblaze.hpp"
#include "sim/simulator.hpp"

namespace vapres::core {

/// Cycle decomposition of one reconfiguration call, matching the paper's
/// reporting (storage transfer vs. ICAP write percentages).
struct ReconfigBreakdown {
  double storage_cycles = 0;  ///< CF or SDRAM transfer
  double icap_cycles = 0;     ///< software-driven ICAP write

  double total_cycles() const { return storage_cycles + icap_cycles; }
  double storage_fraction() const {
    return total_cycles() > 0 ? storage_cycles / total_cycles() : 0.0;
  }
  double seconds_at(double clock_mhz) const {
    return total_cycles() / (clock_mhz * 1e6);
  }
};

class ReconfigManager {
 public:
  ReconfigManager(sim::Simulator& sim, proc::Microblaze& mb,
                  fabric::IcapPort& icap, bitstream::CompactFlash& cf,
                  bitstream::Sdram& sdram);

  /// Registers the configuration effect for a PRR (by instance name).
  void register_target(
      const std::string& prr_name,
      std::function<void(const bitstream::PartialBitstream&)> apply);

  // ---- Analytic estimates (benches assert the simulation matches) ------
  static ReconfigBreakdown estimate_cf2icap(std::int64_t bytes);
  static ReconfigBreakdown estimate_array2icap(std::int64_t bytes);
  static double estimate_cf2array_cycles(std::int64_t bytes);

  // ---- Timed operations -------------------------------------------------
  // Each returns the cycle cost charged to the MicroBlaze and invokes
  // `on_done` when the transfer completes and the PRR is configured.
  // Throws if a reconfiguration is already in flight (the ICAP and the
  // blocking driver serialize all paths).

  sim::Cycles cf2icap(const std::string& filename,
                      std::function<void()> on_done = {});
  sim::Cycles array2icap(const std::string& key,
                         std::function<void()> on_done = {});
  /// Stages a CF file into SDRAM under `key` (system-startup staging).
  sim::Cycles cf2array(const std::string& filename, const std::string& key,
                       std::function<void()> on_done = {});

  bool busy() const { return busy_; }
  const ReconfigBreakdown& last_breakdown() const { return last_; }
  int completed() const { return completed_; }

  /// Readback verification: after writing, read the configuration back
  /// through the ICAP and compare (standard EAPR-era hardening against
  /// configuration upsets). Doubles the ICAP share of every subsequent
  /// timed transfer; the bitstream's integrity tag is checked at apply
  /// time either way.
  void set_verify_after_write(bool verify) { verify_ = verify; }
  bool verify_after_write() const { return verify_; }

 private:
  sim::Cycles start(const bitstream::PartialBitstream& bs,
                    const ReconfigBreakdown& cost,
                    std::function<void()> on_done);

  sim::Simulator& sim_;
  proc::Microblaze& mb_;
  fabric::IcapPort& icap_;
  bitstream::CompactFlash& cf_;
  bitstream::Sdram& sdram_;
  std::map<std::string,
           std::function<void(const bitstream::PartialBitstream&)>>
      targets_;
  bool busy_ = false;
  bool verify_ = false;
  ReconfigBreakdown last_;
  int completed_ = 0;
};

}  // namespace vapres::core
