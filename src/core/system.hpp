// The complete VAPRES system (paper Figure 1).
//
// Controlling region: MicroBlaze, DCR bus (PLB-to-DCR bridge), ICAP,
// CompactFlash, SDRAM, and the reconfiguration manager. Data-processing
// region: one or more RSBs. The system owns the simulator and the clock
// domains; helpers cover bring-up, bitstream synthesis/staging, channel
// connection, and timed reconfiguration so examples and tests read like
// the paper's scenarios.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bitman/cache.hpp"
#include "bitman/prefetch.hpp"
#include "bitstream/storage.hpp"
#include "comm/dcr.hpp"
#include "core/channel.hpp"
#include "core/params.hpp"
#include "core/reconfig.hpp"
#include "core/rsb.hpp"
#include "fabric/icap.hpp"
#include "hwmodule/library.hpp"
#include "proc/microblaze.hpp"
#include "sim/simulator.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::core {

/// Which storage a timed reconfiguration reads the bitstream from.
enum class ReconfigSource {
  kCompactFlash,  ///< classic read-all-then-write vapres_cf2icap
  kSdramArray,    ///< pre-staged vapres_array2icap (through the cache)
  kCfStream,      ///< pipelined chunked cf2icap (cold-miss streaming path)
  kManaged,       ///< bitman cache decides: array hit or streamed miss
};

class VapresSystem {
 public:
  explicit VapresSystem(
      SystemParams params,
      hwmodule::ModuleLibrary library = hwmodule::ModuleLibrary::standard());

  VapresSystem(const VapresSystem&) = delete;
  VapresSystem& operator=(const VapresSystem&) = delete;
  ~VapresSystem();

  const SystemParams& params() const { return params_; }
  const hwmodule::ModuleLibrary& library() const { return library_; }

  sim::Simulator& sim() { return sim_; }
  sim::ClockDomain& system_clock() { return *system_clock_; }
  proc::Microblaze& mb() { return *mb_; }
  comm::DcrBus& dcr() { return dcr_; }
  bitstream::CompactFlash& compact_flash() { return cf_; }
  bitstream::Sdram& sdram() { return *sdram_; }
  fabric::IcapPort& icap() { return icap_; }
  ReconfigManager& reconfig() { return *reconfig_; }
  bitman::BitstreamManager& bitman() { return *bitman_; }
  bitman::PrefetchEngine& prefetch() { return *prefetch_; }

  int num_rsbs() const { return static_cast<int>(rsbs_.size()); }
  Rsb& rsb(int index = 0);

  /// The floorplan in effect (explicit from params, or auto-stacked).
  const std::vector<fabric::ClbRect>& prr_floorplan() const {
    return floorplan_;
  }

  // ---- Bring-up and raw (untimed) control -----------------------------

  /// Boot-time site initialization: enables slice macros, PRR clocks, and
  /// consumer write enables on every site. Producer read enables stay off
  /// until a channel is connected.
  void bring_up_all_sites();

  /// Sets/clears single PRSocket bits by read-modify-write on the DCR bus
  /// (untimed; software-timed control goes through mb().dcr_write).
  void socket_set_bits(comm::DcrAddress addr, comm::DcrValue bits, bool set);

  /// Establishes a channel and enables the endpoint producer/consumer
  /// (FIFO_ren / FIFO_wen). Returns nullopt if no capacity.
  std::optional<ChannelId> connect(int rsb_index, ChannelEndpoint producer,
                                   ChannelEndpoint consumer);

  /// Quiesces (FIFO_ren off, pipeline flush) and releases a channel.
  void disconnect(int rsb_index, ChannelId id);

  // ---- Bitstream synthesis & staging -----------------------------------

  /// Runs the model's "bitgen" for (module, PRR) and stores the partial
  /// bitstream as a CF file. Returns the filename. Idempotent.
  std::string synthesize_to_cf(const std::string& module_id, int rsb_index,
                               int prr_index);

  /// Stages the (module, PRR) bitstream from CF into SDRAM, *timed*
  /// (vapres_cf2array), running the simulation until the copy completes.
  /// Returns the SDRAM key.
  std::string stage_to_sdram(const std::string& module_id, int rsb_index,
                             int prr_index);

  /// Untimed staging: synthesizes and places the bitstream directly into
  /// SDRAM (boot-time provisioning, before the measured interval starts).
  /// Returns the SDRAM key ("<module>@<prr-name>").
  std::string preload_sdram(const std::string& module_id, int rsb_index,
                            int prr_index);

  // ---- Timed reconfiguration -------------------------------------------

  /// Reconfigures a PRR with `module_id` via the chosen path, running the
  /// simulation until the configuration completes. Returns the cycles the
  /// call occupied the MicroBlaze.
  sim::Cycles reconfigure_now(int rsb_index, int prr_index,
                              const std::string& module_id,
                              ReconfigSource source =
                                  ReconfigSource::kSdramArray);

  // ---- Simulation helpers -----------------------------------------------

  /// Runs `n` system-clock cycles.
  void run_system_cycles(sim::Cycles n);

  /// Runs the simulation until the blocking transfer path is free (a
  /// background prefetch staging may hold it; demand callers drain
  /// before issuing their own transfer).
  void drain_transfer_path();

 private:
  // Checkpoint/restore walks every owned component to serialize and
  // overlay raw state (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  std::vector<fabric::ClbRect> auto_floorplan() const;

  SystemParams params_;
  hwmodule::ModuleLibrary library_;
  sim::Simulator sim_;
  sim::ClockDomain* system_clock_;
  comm::DcrBus dcr_;
  bitstream::CompactFlash cf_;
  std::unique_ptr<bitstream::Sdram> sdram_;
  fabric::IcapPort icap_;
  std::unique_ptr<proc::Microblaze> mb_;
  std::unique_ptr<ReconfigManager> reconfig_;
  std::unique_ptr<bitman::BitstreamManager> bitman_;
  std::unique_ptr<bitman::PrefetchEngine> prefetch_;
  std::vector<fabric::ClbRect> floorplan_;
  std::vector<std::unique_ptr<Rsb>> rsbs_;
};

}  // namespace vapres::core
