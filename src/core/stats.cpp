#include "core/stats.hpp"

#include <sstream>

#include "sim/fault.hpp"

namespace vapres::core {

std::uint64_t SystemStats::total_discarded() const {
  std::uint64_t n = 0;
  for (const SiteStats& s : sites) n += s.words_discarded;
  return n;
}

double SystemStats::mb_utilization() const {
  return system_cycles == 0
             ? 0.0
             : static_cast<double>(mb_busy_cycles) /
                   static_cast<double>(system_cycles);
}

std::string SystemStats::to_string() const {
  std::ostringstream os;
  os << "=== system statistics @ cycle " << system_cycles << " ===\n";
  os << "MicroBlaze busy: " << mb_busy_cycles << " cycles ("
     << static_cast<int>(100.0 * mb_utilization()) << "%), DCR accesses: "
     << dcr_accesses << "\n";
  os << "ICAP: " << reconfigurations << " reconfigurations, " << icap_bytes
     << " bytes configured\n";
  os << "active channels: " << active_channels << ", words discarded: "
     << total_discarded() << "\n";
  os << "sim kernel: " << kernel.edges_delivered << " edges delivered, "
     << kernel.edges_skipped << " skipped, " << kernel.domain_sleeps
     << " domain sleeps, " << kernel.component_wakes << " wakes; cycles "
     << kernel.cycles_active << " active / " << kernel.cycles_quiescent
     << " quiescent\n";
  for (const DomainStats& d : domains) {
    os << "  domain " << d.name << " @ " << d.frequency_mhz << " MHz: "
       << d.cycles << " cycles (" << d.cycles_active << " active, "
       << d.cycles_quiescent << " quiescent), " << d.sleeps << " sleeps\n";
  }
  for (const SiteStats& s : sites) {
    os << "  " << s.name;
    if (s.is_prr) {
      os << " [" << (s.loaded_module.empty() ? "empty" : s.loaded_module)
         << ", " << s.reconfigurations << " PRs]";
    }
    os << ": in " << s.words_in << ", out " << s.words_out;
    if (s.stall_cycles > 0) os << ", stalled " << s.stall_cycles;
    if (s.words_discarded > 0) os << ", DISCARDED " << s.words_discarded;
    os << "\n";
  }
  for (const FifoStats& f : fifos) {
    if (f.pushed == 0) continue;
    os << "  fifo " << f.name << ": " << f.pushed << " pushed, " << f.popped
       << " popped, watermark " << f.high_watermark << "/" << f.capacity;
    if (f.fault_dropped > 0) os << ", fault-dropped " << f.fault_dropped;
    if (f.fault_duplicated > 0) os << ", fault-dup " << f.fault_duplicated;
    os << "\n";
  }
  const bitman::BitmanStats& bc = bitcache;
  if (bc.hits + bc.misses + bc.staged > 0) {
    os << "bitstream cache: " << bc.hits << " hits / " << bc.misses
       << " misses (" << static_cast<int>(100.0 * bc.hit_rate())
       << "% hit rate), " << bc.evictions << " evictions ("
       << bc.evicted_bytes << " bytes), " << bc.staged << " staged ("
       << bc.replaced << " replaced), " << bc.invalidations
       << " invalidated\n";
    os << "  prefetch: " << bc.prefetch_issued << " issued, "
       << bc.prefetch_completed << " completed, " << bc.prefetch_useful
       << " useful, " << bc.prefetch_cancelled << " cancelled; streamed "
       << "misses: " << bc.streamed_misses << "\n";
  }
  const RobustnessStats& rb = robustness;
  if (rb.faults_injected > 0 || rb.total_recoveries() > 0 ||
      rb.reconfig_failures > 0) {
    os << "robustness: " << rb.faults_injected << " faults injected, "
       << rb.total_recoveries() << " recoveries\n";
    os << "  icap: " << rb.icap_corrupted << " corrupted, "
       << rb.icap_timeouts << " timed out\n";
    os << "  reconfig: " << rb.reconfig_retries << " retries, "
       << rb.source_fallbacks << " source fallbacks, "
       << rb.reconfig_failures << " permanent failures\n";
    os << "  switching: " << rb.switch_rollbacks << " rollbacks\n";
    os << "  scrubber: " << rb.scrub_repairs << " repairs, stuck ports now: "
       << rb.stuck_ports << "\n";
    os << "  fifo faults: " << rb.fifo_words_dropped << " dropped, "
       << rb.fifo_words_duplicated << " duplicated\n";
  }
  return os.str();
}

namespace {

FifoStats fifo_stats(const comm::Fifo& f) {
  return FifoStats{f.name(),         f.total_pushed(),  f.total_popped(),
                   f.high_watermark(), f.capacity(),
                   f.fault_dropped(), f.fault_duplicated()};
}

}  // namespace

SystemStats collect_stats(VapresSystem& sys) {
  SystemStats stats;
  stats.system_cycles = sys.system_clock().cycle_count();
  stats.mb_busy_cycles = sys.mb().total_busy_cycles();
  stats.dcr_accesses = sys.dcr().total_accesses();
  stats.icap_bytes = sys.icap().total_bytes_configured();
  stats.reconfigurations = sys.icap().completed_transfers();
  stats.kernel = sys.sim().kernel_stats();
  stats.bitcache = sys.bitman().stats();
  for (const auto& d : sys.sim().domains()) {
    DomainStats ds;
    ds.name = d->name();
    ds.frequency_mhz = d->frequency_mhz();
    ds.cycles = d->cycle_count();
    ds.cycles_active = d->kernel_stats().cycles_active;
    ds.cycles_quiescent = d->kernel_stats().cycles_quiescent;
    ds.sleeps = d->kernel_stats().domain_sleeps;
    stats.domains.push_back(std::move(ds));
  }

  RobustnessStats& rb = stats.robustness;
  const auto& faults = sim::FaultInjector::instance();
  rb.faults_injected = faults.total_injected();
  rb.icap_corrupted = sys.icap().corrupted_transfers();
  rb.icap_timeouts = sys.icap().timed_out_transfers();
  rb.reconfig_retries = sys.reconfig().retries();
  rb.source_fallbacks = sys.reconfig().fallbacks();
  rb.reconfig_failures = sys.reconfig().failures();
  rb.switch_rollbacks = faults.recoveries(sim::RecoveryEvent::kSwitchRollback);
  rb.scrub_repairs = faults.recoveries(sim::RecoveryEvent::kScrubRepair);

  for (int r = 0; r < sys.num_rsbs(); ++r) {
    Rsb& rsb = sys.rsb(r);
    stats.active_channels += rsb.channels().active_count();
    for (int i = 0; i < rsb.num_ioms(); ++i) {
      Iom& iom = rsb.iom(i);
      SiteStats site;
      site.name = iom.name();
      for (int c = 0; c < iom.num_consumers(); ++c) {
        site.words_in += iom.consumer(c).words_received();
        site.words_discarded += iom.consumer(c).words_discarded();
        stats.fifos.push_back(fifo_stats(iom.consumer(c).fifo()));
      }
      for (int c = 0; c < iom.num_producers(); ++c) {
        site.words_out += iom.producer(c).words_sent();
        site.stall_cycles += iom.producer(c).stall_cycles();
        stats.fifos.push_back(fifo_stats(iom.producer(c).fifo()));
      }
      stats.sites.push_back(site);
    }
    for (int p = 0; p < rsb.num_prrs(); ++p) {
      Prr& prr = rsb.prr(p);
      SiteStats site;
      site.name = prr.name();
      site.is_prr = true;
      site.loaded_module = prr.loaded_module();
      site.reconfigurations = prr.reconfiguration_count();
      for (int c = 0; c < prr.num_consumers(); ++c) {
        site.words_in += prr.consumer(c).words_received();
        site.words_discarded += prr.consumer(c).words_discarded();
        stats.fifos.push_back(fifo_stats(prr.consumer(c).fifo()));
      }
      for (int c = 0; c < prr.num_producers(); ++c) {
        site.words_out += prr.producer(c).words_sent();
        site.stall_cycles += prr.producer(c).stall_cycles();
        stats.fifos.push_back(fifo_stats(prr.producer(c).fifo()));
      }
      stats.sites.push_back(site);
    }
    comm::SwitchFabric& fabric = rsb.fabric();
    for (int b = 0; b < fabric.num_boxes(); ++b) {
      rb.stuck_ports +=
          static_cast<std::uint64_t>(fabric.box(b).stuck_output_count());
    }
  }
  for (const FifoStats& f : stats.fifos) {
    rb.fifo_words_dropped += f.fault_dropped;
    rb.fifo_words_duplicated += f.fault_duplicated;
  }
  return stats;
}

std::string SchedulerAccounting::to_string() const {
  std::ostringstream os;
  os << "=== scheduler accounting ===\n";
  os << "submitted " << submitted << ", admitted " << admitted << " (defrag "
     << admitted_after_defrag << ", preempt " << admitted_after_preempt
     << "), rejected " << rejected << "\n";
  os << "preemptions " << preemptions << ", migrations " << defrag_migrations
     << " (+" << migration_rollbacks << " rolled back), fabric utilization "
     << static_cast<int>(100.0 * fabric_utilization) << "%\n";
  for (const AppAccounting& a : apps) {
    os << "  #" << a.app_id << " " << a.name << " prio " << a.priority << " ["
       << a.state << "/" << a.verdict << "] slices " << a.module_slices
       << ", words " << a.words_in << "->" << a.words_out << ", migrations "
       << a.migrations << ", admission " << a.admission_mb_cycles
       << " MB cycles, t=" << a.submitted_at << "/" << a.launched_at << "/"
       << a.stopped_at << "\n";
  }
  return os.str();
}

}  // namespace vapres::core
