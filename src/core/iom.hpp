// I/O module (IOM).
//
// IOMs live in the static region and bridge external pins/peripherals
// (ADCs, DACs) to the RSB fabric (Section III.B). An IOM exposes the
// full ko producer / ki consumer channels of its switch box (Figure 7):
// each producer channel has a *source* half injecting words at a
// configurable rate (an external input stream), each consumer channel a
// *sink* half draining words (an external output). Sinks detect the
// end-of-stream word at channel width and inform the MicroBlaze over the
// r-link (Figure 5, step 8), and keep arrival-gap statistics — the
// measurement behind the "no stream-processing interruption" claim.
//
// EOS is in-band by design (as in the paper): an application data word
// of all ones is indistinguishable from the end-of-stream marker.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/fsl.hpp"
#include "comm/module_interface.hpp"
#include "core/params.hpp"
#include "core/prsocket.hpp"
#include "sim/clock.hpp"
#include "sim/component.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::core {

/// Message the IOM writes on its r-link when it sees the end-of-stream
/// word (Figure 5, step 8).
inline constexpr comm::Word kIomEosDetected = 0xC0DE0005u;

class Iom final : public sim::Clocked {
 public:
  Iom(std::string name, const RsbParams& params,
      sim::ClockDomain& static_domain, comm::SwitchBox* box);

  Iom(const Iom&) = delete;
  Iom& operator=(const Iom&) = delete;
  ~Iom() override;

  std::string name() const override { return name_; }

  int num_producers() const { return static_cast<int>(sources_.size()); }
  int num_consumers() const { return static_cast<int>(sinks_.size()); }
  comm::ProducerInterface& producer(int channel = 0);
  comm::ConsumerInterface& consumer(int channel = 0);
  comm::FslLink& fsl_to_mb() { return *fsl_to_mb_; }
  comm::FslLink& fsl_from_mb() { return *fsl_from_mb_; }
  PrSocket& socket() { return *socket_; }

  // ---- Source halves (external input streams), per producer channel --

  /// Feeds the words of `data` one per `interval_cycles`, then stops.
  void set_source_data(std::vector<comm::Word> data, int interval_cycles = 1,
                       int channel = 0);

  /// Feeds generator output one word per `interval_cycles` until the
  /// generator returns nullopt.
  void set_source_generator(std::function<std::optional<comm::Word>()> gen,
                            int interval_cycles = 1, int channel = 0);

  void stop_source(int channel = 0);
  bool source_active(int channel = 0) const;

  std::uint64_t words_emitted(int channel = 0) const;
  /// Cycles where the source had a word ready but the producer FIFO was
  /// full — ingress backpressure / stream interruption at the input.
  std::uint64_t source_stall_cycles(int channel = 0) const;

  // ---- Sink halves (external output streams), per consumer channel ---

  /// Words retained in the history window (everything ever received
  /// unless a history limit is set). Word `received(ch)[i]` is the
  /// `received_dropped(ch) + i`-th word the sink ever drained.
  const std::vector<comm::Word>& received(int channel = 0) const;
  std::vector<comm::Word> take_received(int channel = 0);
  std::uint64_t eos_seen(int channel = 0) const;

  /// Monotone count of (non-EOS) words ever drained on the channel.
  /// Unlike received().size(), unaffected by history capping or
  /// take_received() — the right basis for long-run accounting.
  std::uint64_t words_received(int channel = 0) const;

  /// Words discarded from the front of the history window (by the
  /// history limit or take_received()).
  std::uint64_t received_dropped(int channel = 0) const;

  /// Caps the per-channel received-word history at roughly `max_words`
  /// (0 = unlimited, the default). When the cap is exceeded the older
  /// half of the window is dropped, so a soak run over millions of
  /// words holds memory flat while recent output stays inspectable.
  void set_received_history_limit(std::size_t max_words);

  /// Largest gap (in static-domain cycles) between consecutive output
  /// words since the last reset_gap_stats(). The output-stream
  /// interruption metric of experiment E3.
  sim::Cycles max_output_gap(int channel = 0) const;
  void reset_gap_stats();
  /// Per-channel variant: forgets gap state for one sink only, so
  /// concurrent apps on sibling channels keep their statistics.
  void reset_gap_stats(int channel);

  void eval() override {}
  void commit() override;
  /// Nothing to inject (no generator, no stalled pending word) and
  /// nothing to drain (all sink FIFOs empty): the IOM sleeps until a
  /// source is armed or a consumer interface delivers a word.
  bool quiescent() const override;

 private:
  // Checkpoint/restore overlays source/sink counters and re-installs
  // generators without resetting pending/next_emit_cycle
  // (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  struct Source {
    std::unique_ptr<comm::ProducerInterface> interface;
    std::function<std::optional<comm::Word>()> generator;
    std::optional<comm::Word> pending;
    int interval_cycles = 1;
    sim::Cycles next_emit_cycle = 0;
    std::uint64_t words_emitted = 0;
    std::uint64_t stalls = 0;
  };
  struct Sink {
    std::unique_ptr<comm::ConsumerInterface> interface;
    std::vector<comm::Word> received;
    std::uint64_t words_received = 0;  // monotone; never decreases
    std::uint64_t dropped = 0;         // words aged out of `received`
    std::uint64_t eos_seen = 0;
    bool have_last_arrival = false;
    sim::Cycles last_arrival = 0;
    sim::Cycles max_gap = 0;
  };

  Source& source(int channel);
  const Source& source(int channel) const;
  Sink& sink(int channel);
  const Sink& sink(int channel) const;

  std::string name_;
  sim::ClockDomain& domain_;
  int width_bits_ = 32;
  std::size_t history_limit_ = 0;  // 0 = unlimited
  std::vector<Source> sources_;
  std::vector<Sink> sinks_;
  std::unique_ptr<comm::FslLink> fsl_to_mb_;
  std::unique_ptr<comm::FslLink> fsl_from_mb_;
  std::unique_ptr<PrSocket> socket_;
};

}  // namespace vapres::core
