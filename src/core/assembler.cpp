#include "core/assembler.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace vapres::core {

namespace {

bool is_iom(const std::string& endpoint) {
  return endpoint.rfind("iom:", 0) == 0;
}

int iom_index(const std::string& endpoint) {
  return std::stoi(endpoint.substr(4));
}

}  // namespace

RuntimeAssembler::RuntimeAssembler(VapresSystem& sys, int rsb_index)
    : sys_(sys), rsb_index_(rsb_index) {
  sys_.rsb(rsb_index_);  // range check
}

ChannelEndpoint RuntimeAssembler::resolve_producer(
    const std::string& endpoint, int port,
    const std::map<std::string, int>& placement) {
  Rsb& r = sys_.rsb(rsb_index_);
  if (is_iom(endpoint)) {
    VAPRES_REQUIRE(port >= 0 && port < r.params().ko,
                   "IOM producer channel out of range");
    return r.iom_producer(iom_index(endpoint), port);
  }
  auto it = placement.find(endpoint);
  VAPRES_REQUIRE(it != placement.end(), "edge names unknown node " + endpoint);
  return r.prr_producer(it->second, port);
}

ChannelEndpoint RuntimeAssembler::resolve_consumer(
    const std::string& endpoint, int port,
    const std::map<std::string, int>& placement) {
  Rsb& r = sys_.rsb(rsb_index_);
  if (is_iom(endpoint)) {
    VAPRES_REQUIRE(port >= 0 && port < r.params().ki,
                   "IOM consumer channel out of range");
    return r.iom_consumer(iom_index(endpoint), port);
  }
  auto it = placement.find(endpoint);
  VAPRES_REQUIRE(it != placement.end(), "edge names unknown node " + endpoint);
  return r.prr_consumer(it->second, port);
}

RuntimeAssembler::Assembly RuntimeAssembler::assemble(const KpnAppSpec& app,
                                                      ReconfigSource source) {
  Rsb& r = sys_.rsb(rsb_index_);
  const RsbParams& params = r.params();
  const auto& lib = sys_.library();

  // ---- Validate against the base system's architectural parameters ----
  VAPRES_REQUIRE(static_cast<int>(app.nodes.size()) <= params.num_prrs,
                 app.name + ": more nodes than PRRs");
  for (const KpnNodeSpec& node : app.nodes) {
    VAPRES_REQUIRE(lib.contains(node.module_id),
                   app.name + ": unknown module " + node.module_id);
    const auto& info = lib.info(node.module_id);
    VAPRES_REQUIRE(info.num_inputs <= params.ki,
                   node.name + ": needs more input channels than ki");
    VAPRES_REQUIRE(info.num_outputs <= params.ko,
                   node.name + ": needs more output channels than ko");
  }

  // ---- Place: first-fit into free PRRs by resource footprint ----------
  Assembly assembly;
  std::vector<bool> prr_used(static_cast<std::size_t>(params.num_prrs),
                             false);
  for (int p = 0; p < params.num_prrs; ++p) {
    prr_used[static_cast<std::size_t>(p)] = r.prr(p).occupied();
  }
  for (const KpnNodeSpec& node : app.nodes) {
    const auto& need = lib.info(node.module_id).resources;
    int chosen = -1;
    for (int p = 0; p < params.num_prrs; ++p) {
      if (!prr_used[static_cast<std::size_t>(p)] &&
          need.fits_in(r.prr(p).capacity())) {
        chosen = p;
        break;
      }
    }
    VAPRES_REQUIRE(chosen >= 0,
                   app.name + ": no free PRR fits node " + node.name);
    prr_used[static_cast<std::size_t>(chosen)] = true;
    assembly.placement[node.name] = chosen;
  }

  // ---- Reconfigure each placed PRR (timed) -----------------------------
  for (const KpnNodeSpec& node : app.nodes) {
    assembly.reconfig_cycles += sys_.reconfigure_now(
        rsb_index_, assembly.placement[node.name], node.module_id, source);
  }

  // ---- Bring up sockets and route every edge ----------------------------
  for (const auto& [name, prr_index] : assembly.placement) {
    sys_.socket_set_bits(r.prr_socket_address(prr_index),
                         PrSocket::kSmEn | PrSocket::kClkEn |
                             PrSocket::kFifoWen,
                         true);
  }
  for (const KpnEdgeSpec& edge : app.edges) {
    const ChannelEndpoint producer =
        resolve_producer(edge.from, edge.from_port, assembly.placement);
    const ChannelEndpoint consumer =
        resolve_consumer(edge.to, edge.to_port, assembly.placement);
    auto id = sys_.connect(rsb_index_, producer, consumer);
    VAPRES_REQUIRE(id.has_value(), app.name + ": no channel capacity for " +
                                       edge.from + " -> " + edge.to);
    assembly.channels.push_back(*id);
  }
  return assembly;
}

void RuntimeAssembler::disassemble(const Assembly& assembly) {
  for (auto it = assembly.channels.rbegin(); it != assembly.channels.rend();
       ++it) {
    sys_.disconnect(rsb_index_, *it);
  }
}

}  // namespace vapres::core
