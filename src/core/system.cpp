#include "core/system.hpp"

#include "bitstream/bitgen.hpp"
#include "sim/check.hpp"
#include "sim/fault.hpp"

namespace vapres::core {

VapresSystem::VapresSystem(SystemParams params,
                           hwmodule::ModuleLibrary library)
    : params_(std::move(params)), library_(std::move(library)) {
  params_.validate();

  // Fault inject/recover events carry this system's simulation time.
  sim::FaultInjector::instance().set_time_source(sim_.now_ptr());

  system_clock_ = &sim_.create_domain("clk_sys", params_.system_clock_mhz);
  sdram_ = std::make_unique<bitstream::Sdram>(params_.sdram_bytes);
  mb_ = std::make_unique<proc::Microblaze>("microblaze", *system_clock_,
                                           dcr_);
  // Lets long driver calls (PR transfers) sleep the core instead of
  // ticking every busy cycle. mb_ is destroyed before sim_, so the wake
  // event is always cancelled in time.
  mb_->set_simulator(&sim_);
  reconfig_ = std::make_unique<ReconfigManager>(sim_, *mb_, icap_, cf_,
                                                *sdram_);
  bitman_ = std::make_unique<bitman::BitstreamManager>(*reconfig_, cf_,
                                                       *sdram_);
  prefetch_ = std::make_unique<bitman::PrefetchEngine>(*mb_, *bitman_);

  floorplan_ =
      params_.prr_rects.empty() ? auto_floorplan() : params_.prr_rects;

  int rect_cursor = 0;
  comm::DcrAddress dcr_base = 0x100;
  for (std::size_t r = 0; r < params_.rsbs.size(); ++r) {
    const RsbParams& rp = params_.rsbs[r];
    std::vector<fabric::ClbRect> rects(
        floorplan_.begin() + rect_cursor,
        floorplan_.begin() + rect_cursor + rp.num_prrs);
    rect_cursor += rp.num_prrs;
    rsbs_.push_back(std::make_unique<Rsb>(
        params_.name + ".rsb" + std::to_string(r), rp, params_.device, sim_,
        *system_clock_, dcr_, params_.prr_clock_a_mhz,
        params_.prr_clock_b_mhz, std::move(rects), dcr_base));
    dcr_base += 0x40;

    // Register every PRR as a configuration target.
    Rsb& rsb_ref = *rsbs_.back();
    for (int p = 0; p < rp.num_prrs; ++p) {
      Prr& prr = rsb_ref.prr(p);
      reconfig_->register_target(
          prr.name(), [this, &prr](const bitstream::PartialBitstream& bs) {
            prr.apply_bitstream(bs, library_);
          });
    }
  }
}

VapresSystem::~VapresSystem() {
  // The FaultInjector outlives this system; stop it from dereferencing
  // our (about-to-die) simulation clock.
  sim::FaultInjector::instance().set_time_source(nullptr);
}

std::vector<fabric::ClbRect> VapresSystem::auto_floorplan() const {
  // Stack PRRs one per local clock region, filling the left half bottom-up
  // and then the right half, leaving the topmost-left region for the
  // controlling region (matching the prototype layout of Figure 8 in
  // spirit; the full placer lives in flow::Floorplanner).
  std::vector<fabric::ClbRect> rects;
  const int region_rows = params_.device.clock_region_rows();
  const int half_cols = params_.device.clock_region_width_clbs();
  int slot = 0;
  for (const RsbParams& rp : params_.rsbs) {
    for (int p = 0; p < rp.num_prrs; ++p) {
      const int rows_per_prr =
          (rp.prr_height_clbs + fabric::DeviceGeometry::kClockRegionRows - 1) /
          fabric::DeviceGeometry::kClockRegionRows;
      const int slots_per_half = region_rows / rows_per_prr;
      VAPRES_REQUIRE(slots_per_half > 0, "PRR taller than the device");
      const int half = slot / slots_per_half;
      const int pos = slot % slots_per_half;
      VAPRES_REQUIRE(half < 2,
                     "auto floorplan: too many PRRs for " +
                         params_.device.name());
      VAPRES_REQUIRE(rp.prr_width_clbs <= half_cols,
                     "PRR wider than a clock-region half");
      rects.push_back(fabric::ClbRect{
          pos * rows_per_prr * fabric::DeviceGeometry::kClockRegionRows,
          half * half_cols, rp.prr_height_clbs, rp.prr_width_clbs});
      ++slot;
    }
  }
  return rects;
}

Rsb& VapresSystem::rsb(int index) {
  VAPRES_REQUIRE(index >= 0 && index < num_rsbs(), "RSB index out of range");
  return *rsbs_[static_cast<std::size_t>(index)];
}

void VapresSystem::socket_set_bits(comm::DcrAddress addr,
                                   comm::DcrValue bits, bool set) {
  const comm::DcrValue old = dcr_.read(addr);
  dcr_.write(addr, set ? (old | bits) : (old & ~bits));
}

void VapresSystem::bring_up_all_sites() {
  for (auto& rsb_ptr : rsbs_) {
    Rsb& r = *rsb_ptr;
    for (int i = 0; i < r.num_ioms(); ++i) {
      socket_set_bits(r.iom_socket_address(i), PrSocket::kFifoWen, true);
    }
    for (int p = 0; p < r.num_prrs(); ++p) {
      socket_set_bits(r.prr_socket_address(p),
                      PrSocket::kSmEn | PrSocket::kClkEn | PrSocket::kFifoWen,
                      true);
    }
  }
}

std::optional<ChannelId> VapresSystem::connect(int rsb_index,
                                               ChannelEndpoint producer,
                                               ChannelEndpoint consumer) {
  Rsb& r = rsb(rsb_index);
  auto id = r.channels().establish(producer, consumer);
  if (!id) return std::nullopt;
  socket_set_bits(r.socket_address(consumer.box), PrSocket::kFifoWen, true);
  socket_set_bits(r.socket_address(producer.box), PrSocket::kFifoRen, true);
  return id;
}

void VapresSystem::disconnect(int rsb_index, ChannelId id) {
  Rsb& r = rsb(rsb_index);
  const comm::RouteSpec spec = r.channels().spec(id);
  // Quiesce: stop the producer draining, let in-flight words land.
  socket_set_bits(r.socket_address(spec.producer_box), PrSocket::kFifoRen,
                  false);
  run_system_cycles(static_cast<sim::Cycles>(spec.hops()) + 4);
  r.channels().release(id);
}

std::string VapresSystem::synthesize_to_cf(const std::string& module_id,
                                           int rsb_index, int prr_index) {
  Rsb& r = rsb(rsb_index);
  Prr& prr = r.prr(prr_index);
  const std::string filename =
      bitstream::bitstream_filename(module_id, prr.name());
  if (!cf_.contains(filename)) {
    const auto& info = library_.info(module_id);
    cf_.store(filename,
              bitstream::generate_partial_bitstream(
                  module_id, info.resources, prr.name(), prr.rect()));
  }
  return filename;
}

std::string VapresSystem::stage_to_sdram(const std::string& module_id,
                                         int rsb_index, int prr_index) {
  Rsb& r = rsb(rsb_index);
  synthesize_to_cf(module_id, rsb_index, prr_index);
  const std::string prr_name = r.prr(prr_index).name();
  const std::string key =
      bitman::BitstreamManager::key_for(module_id, prr_name);
  if (sdram_->contains(key)) return key;
  drain_transfer_path();
  bool done = false;
  bitman_->stage(module_id, prr_name,
                 [&done](const ReconfigOutcome&) { done = true; });
  const bool ok = sim_.run_until([&done] { return done; },
                                 sim::kPsPerSecond * 60);
  VAPRES_REQUIRE(ok, "cf2array staging did not complete");
  return key;
}

std::string VapresSystem::preload_sdram(const std::string& module_id,
                                        int rsb_index, int prr_index) {
  Rsb& r = rsb(rsb_index);
  const std::string filename =
      synthesize_to_cf(module_id, rsb_index, prr_index);
  const std::string key = bitman::BitstreamManager::key_for(
      module_id, r.prr(prr_index).name());
  if (!bitman_->resident(key)) bitman_->preload(cf_.read(filename));
  return key;
}

sim::Cycles VapresSystem::reconfigure_now(int rsb_index, int prr_index,
                                          const std::string& module_id,
                                          ReconfigSource source) {
  drain_transfer_path();
  const std::string prr_name = rsb(rsb_index).prr(prr_index).name();
  bool done = false;
  bool configured = false;
  auto on_done = [&done, &configured](const ReconfigOutcome& outcome) {
    done = true;
    configured = outcome.ok();
  };
  sim::Cycles charged = 0;
  switch (source) {
    case ReconfigSource::kSdramArray:
      // Pre-stage (untimed) then resolve through the cache: a warm hit
      // running the same array2icap driver as before the cache existed.
      preload_sdram(module_id, rsb_index, prr_index);
      charged = bitman_->reconfigure(module_id, prr_name, on_done);
      break;
    case ReconfigSource::kCompactFlash:
      charged = reconfig_->cf2icap(
          synthesize_to_cf(module_id, rsb_index, prr_index), on_done);
      break;
    case ReconfigSource::kCfStream:
      charged = reconfig_->cf2icap_streamed(
          synthesize_to_cf(module_id, rsb_index, prr_index),
          bitstream::Calibration::kStreamChunkBytes, on_done);
      break;
    case ReconfigSource::kManaged:
      synthesize_to_cf(module_id, rsb_index, prr_index);
      charged = bitman_->reconfigure(module_id, prr_name, on_done);
      break;
  }
  const bool ok = sim_.run_until([&done] { return done; },
                                 sim::kPsPerSecond * 60);
  VAPRES_REQUIRE(ok, "reconfiguration did not complete");
  VAPRES_REQUIRE(configured,
                 "reconfiguration of " + module_id + " failed permanently");
  return charged;
}

void VapresSystem::run_system_cycles(sim::Cycles n) {
  sim_.run_cycles(*system_clock_, n);
}

void VapresSystem::drain_transfer_path() {
  if (!reconfig_->busy()) return;
  const bool ok = sim_.run_until([this] { return !reconfig_->busy(); },
                                 sim::kPsPerSecond * 60);
  VAPRES_REQUIRE(ok, "bitstream transfer path did not drain");
}

}  // namespace vapres::core
