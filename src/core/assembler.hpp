// RSPS runtime assembly (paper Section III.B.1, Figure 4).
//
// A reconfigurable stream-processing system approximates a Kahn process
// network: hardware modules are KPN nodes, module-interface FIFOs and
// FSLs are the stream buffers. The RuntimeAssembler takes a KPN
// application spec, places each node into a free PRR (first-fit by
// resource footprint), reconfigures the PRRs (timed, through the real
// reconfiguration paths), and establishes the streaming channels for
// every edge.
//
// Edge endpoints name either a node or an IOM ("iom:<index>").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace vapres::core {

struct KpnNodeSpec {
  std::string name;
  std::string module_id;
};

struct KpnEdgeSpec {
  std::string from;   ///< node name or "iom:<index>"
  std::string to;     ///< node name or "iom:<index>"
  int from_port = 0;  ///< producer channel at `from`
  int to_port = 0;    ///< consumer channel at `to`
};

struct KpnAppSpec {
  std::string name;
  std::vector<KpnNodeSpec> nodes;
  std::vector<KpnEdgeSpec> edges;
};

class RuntimeAssembler {
 public:
  explicit RuntimeAssembler(VapresSystem& sys, int rsb_index = 0);

  struct Assembly {
    std::map<std::string, int> placement;  ///< node name -> PRR index
    std::vector<ChannelId> channels;
    sim::Cycles reconfig_cycles = 0;  ///< MicroBlaze cycles spent in PR
  };

  /// Validates the app against the base system's architectural
  /// parameters, places, reconfigures, routes, and enables everything.
  /// Throws ModelError when the app cannot be mapped.
  Assembly assemble(const KpnAppSpec& app,
                    ReconfigSource source = ReconfigSource::kSdramArray);

  /// Tears an assembly down: quiesces and releases all channels.
  void disassemble(const Assembly& assembly);

 private:
  ChannelEndpoint resolve_producer(const std::string& endpoint, int port,
                                   const std::map<std::string, int>& placement);
  ChannelEndpoint resolve_consumer(const std::string& endpoint, int port,
                                   const std::map<std::string, int>& placement);

  VapresSystem& sys_;
  int rsb_index_;
};

}  // namespace vapres::core
