// Configuration readback scrubbing (SEU mitigation).
//
// Standard hardening for SRAM-based FPGAs: software periodically reads
// configuration frames back through the ICAP, compares them against the
// golden bitstream, and rewrites any frame an upset flipped. The
// ScrubberTask is that software module for VAPRES — a periodic
// SoftwareTask on the MicroBlaze that scans every PRR's frames (the
// kConfigFrameUpset fault site) and every switch box's output muxes
// (stuck MUX_sel bits, the kSwitchBoxStuckPort site), repairing what it
// finds by rewriting the affected frame and charging the MicroBlaze the
// readback + rewrite cycles. Repairs are reported to the fault
// scoreboard as RecoveryEvent::kScrubRepair and surface in core::stats.
#pragma once

#include <cstdint>

#include "core/system.hpp"
#include "proc/microblaze.hpp"

namespace vapres::core {

class ScrubberTask final : public proc::SoftwareTask {
 public:
  /// Scrub pass every `period_cycles` MicroBlaze cycles.
  explicit ScrubberTask(VapresSystem& sys, sim::Cycles period_cycles = 100'000);

  /// Registers the task on the system's MicroBlaze; it never finishes.
  void start();

  bool step(proc::Microblaze& mb) override;
  std::string task_name() const override { return "config_scrubber"; }

  std::uint64_t scans() const { return scans_; }
  std::uint64_t frame_repairs() const { return frame_repairs_; }
  std::uint64_t mux_repairs() const { return mux_repairs_; }
  std::uint64_t repairs() const { return frame_repairs_ + mux_repairs_; }

  /// Cycles to read back and compare one PRR's frames (per scrub pass).
  static constexpr sim::Cycles kReadbackCyclesPerPrr = 64;
  /// Cycles to rewrite one corrupted frame through the ICAP.
  static constexpr sim::Cycles kRewriteCyclesPerFrame = 512;

 private:
  VapresSystem& sys_;
  sim::Cycles period_;
  sim::Cycles next_due_ = 0;
  std::uint64_t scans_ = 0;
  std::uint64_t frame_repairs_ = 0;
  std::uint64_t mux_repairs_ = 0;
};

}  // namespace vapres::core
