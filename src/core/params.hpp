// VAPRES architectural parameters (paper Figure 7 / Section IV.A).
//
// The data-processing region of an RSB is specialized by: the number of
// PRRs (N), the communication channel width (w bits), the number of
// one-way inter-switch-box channels (kr rightward, kl leftward), and the
// channels between each PRR/IOM and its switch box (ki in, ko out). A
// base system fixes these at design time; applications are validated
// against them by the application flow.
#pragma once

#include <string>
#include <vector>

#include "fabric/clock_region.hpp"
#include "fabric/device.hpp"

namespace vapres::core {

struct RsbParams {
  int num_prrs = 2;   ///< N
  int num_ioms = 1;
  int width_bits = 32;  ///< w (payload bits per channel, <= 32)
  int kr = 2;  ///< rightward inter-box channels
  int kl = 2;  ///< leftward inter-box channels
  int ki = 1;  ///< input channels per module (switch box -> module)
  int ko = 1;  ///< output channels per module (module -> switch box)
  int fifo_depth = 512;  ///< module-interface / FSL FIFO words (1 RAMB16)

  /// Uniform PRR rectangle size; the prototype uses 16 x 10 CLBs = 640
  /// slices within one clock region (Section V.A).
  int prr_height_clbs = 16;
  int prr_width_clbs = 10;

  /// Switch boxes / attachments: IOMs occupy the first boxes, then PRRs.
  int num_attachments() const { return num_prrs + num_ioms; }
  int box_of_iom(int iom_index) const;
  int box_of_prr(int prr_index) const;

  /// Throws ModelError on inconsistent parameters.
  void validate() const;
};

struct SystemParams {
  std::string name = "vapres";
  fabric::DeviceGeometry device = fabric::DeviceGeometry::xc4vlx25();
  double system_clock_mhz = 100.0;  ///< MicroBlaze + switch boxes + IOMs

  /// The two PRR clock frequencies selectable per-PRR through the
  /// BUFGMUX (PRSocket CLK_sel): input 0 and input 1.
  double prr_clock_a_mhz = 100.0;
  double prr_clock_b_mhz = 50.0;

  std::vector<RsbParams> rsbs{RsbParams{}};

  std::int64_t sdram_bytes = 64 * 1024 * 1024;

  /// Optional explicit PRR floorplan, one rect per PRR in RSB-major
  /// order. Empty = auto-stack PRRs into separate clock regions.
  std::vector<fabric::ClbRect> prr_rects;

  void validate() const;

  int total_prrs() const;

  /// The ML401/XC4VLX25 prototype of Section V.A: one RSB, two PRRs of
  /// 640 slices each, one IOM, kr = kl = 2, w = 32, ki = ko = 1.
  static SystemParams prototype();
};

}  // namespace vapres::core
