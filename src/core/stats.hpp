// System telemetry: a one-call snapshot of every counter the model keeps
// (FIFO traffic and watermarks, channel activity, PRR status, processor
// utilization), rendered as a human-readable report. Used by examples
// for post-run inspection and by tests to assert on system-wide
// invariants (e.g. "no consumer interface ever discarded a word").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "sim/clock.hpp"

namespace vapres::core {

struct FifoStats {
  std::string name;
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  int high_watermark = 0;
  int capacity = 0;
  std::uint64_t fault_dropped = 0;
  std::uint64_t fault_duplicated = 0;
};

/// Fault-injection and self-healing counters (all zero on a run without
/// injection): what was injected, what each recovery layer did about it.
struct RobustnessStats {
  std::uint64_t faults_injected = 0;  ///< all sites, from the injector
  std::uint64_t icap_corrupted = 0;
  std::uint64_t icap_timeouts = 0;
  std::uint64_t reconfig_retries = 0;
  std::uint64_t source_fallbacks = 0;
  std::uint64_t reconfig_failures = 0;  ///< permanent (post-recovery)
  std::uint64_t switch_rollbacks = 0;
  std::uint64_t scrub_repairs = 0;
  std::uint64_t fifo_words_dropped = 0;     ///< by injection, system-wide
  std::uint64_t fifo_words_duplicated = 0;  ///< by injection, system-wide
  std::uint64_t stuck_ports = 0;  ///< currently stuck (unrepaired)

  std::uint64_t total_recoveries() const {
    return reconfig_retries + source_fallbacks + switch_rollbacks +
           scrub_repairs;
  }
};

struct SiteStats {
  std::string name;
  bool is_prr = false;
  std::string loaded_module;  // PRRs only
  int reconfigurations = 0;   // PRRs only
  std::uint64_t words_in = 0;   // consumer interfaces, received
  std::uint64_t words_out = 0;  // producer interfaces, sent
  std::uint64_t words_discarded = 0;
  /// Producer cycles spent blocked on downstream backpressure.
  std::uint64_t stall_cycles = 0;
};

/// Per-clock-domain kernel accounting (the aggregate lives in
/// SystemStats::kernel).
struct DomainStats {
  std::string name;
  double frequency_mhz = 0.0;
  sim::Cycles cycles = 0;
  std::uint64_t cycles_active = 0;
  std::uint64_t cycles_quiescent = 0;
  std::uint64_t sleeps = 0;
};

struct SystemStats {
  std::vector<SiteStats> sites;
  std::vector<FifoStats> fifos;
  std::vector<DomainStats> domains;
  std::size_t active_channels = 0;
  std::uint64_t dcr_accesses = 0;
  std::uint64_t mb_busy_cycles = 0;
  sim::Cycles system_cycles = 0;
  std::int64_t icap_bytes = 0;
  int reconfigurations = 0;
  RobustnessStats robustness;
  /// Bitstream-cache and prefetch counters (bitman subsystem,
  /// docs/BITSTREAMS.md): hit/miss/eviction/prefetch-usefulness.
  bitman::BitmanStats bitcache;
  /// Simulation-kernel counters aggregated over every clock domain:
  /// edges actually delivered vs. skipped by quiescence tracking.
  sim::KernelStats kernel;

  /// Total words dropped anywhere in the system (0 on a healthy run).
  std::uint64_t total_discarded() const;
  /// Fraction of system cycles the MicroBlaze was busy.
  double mb_utilization() const;

  std::string to_string() const;
};

/// Snapshots every counter in `sys`.
SystemStats collect_stats(VapresSystem& sys);

// ---- Scheduler accounting ------------------------------------------------
//
// Per-application books kept by sched::ApplicationScheduler. The structs
// live here (not in sched/) so reporting tooling depends only on core;
// the scheduler fills them in ApplicationScheduler::accounting().

/// One application's ledger row.
struct AppAccounting {
  int app_id = -1;
  std::string name;
  int priority = 1;
  std::string state;    ///< sched::state_name of the app's state
  std::string verdict;  ///< sched::verdict_name of the admission verdict

  sim::Cycles submitted_at = 0;
  sim::Cycles launched_at = 0;  ///< 0 when never launched
  sim::Cycles stopped_at = 0;   ///< 0 while running / never launched
  /// MicroBlaze cycles its admission decision + launch cost.
  sim::Cycles admission_mb_cycles = 0;

  std::uint64_t words_in = 0;   ///< source words emitted for this app
  std::uint64_t words_out = 0;  ///< sink words received for this app
  int migrations = 0;           ///< live relocations survived
  int module_slices = 0;        ///< total footprint of the app's chain
};

/// Aggregate scheduler counters plus the per-app rows.
struct SchedulerAccounting {
  std::vector<AppAccounting> apps;

  int submitted = 0;
  int admitted = 0;  ///< all admissions, any path
  int admitted_after_defrag = 0;
  int admitted_after_preempt = 0;
  int rejected = 0;
  int preemptions = 0;         ///< apps evicted for higher priority
  int defrag_migrations = 0;   ///< completed live relocations
  int migration_rollbacks = 0; ///< relocations aborted by PR failure

  double fabric_utilization = 0.0;  ///< occupied slices / PRR slices

  std::string to_string() const;
};

}  // namespace vapres::core
