#include "core/prr.hpp"

#include "sim/check.hpp"

namespace vapres::core {

Prr::Prr(std::string name, int index, const fabric::ClbRect& rect,
         const RsbParams& params, const fabric::DeviceGeometry& device,
         sim::Simulator& sim, sim::ClockDomain& static_domain,
         double clock_a_mhz, double clock_b_mhz, comm::SwitchBox* box)
    : name_(std::move(name)),
      index_(index),
      rect_(rect),
      static_domain_(&static_domain) {
  const std::string violation = fabric::prr_legality_violation(rect_, device);
  VAPRES_REQUIRE(violation.empty(), violation);

  domain_ = &sim.create_domain(name_ + ".clk", clock_a_mhz);

  // Clock tree: BUFR in the PRR's (first) clock region, BUFGMUX selecting
  // between the two system-provided PRR frequencies.
  const auto regions = fabric::regions_spanned(rect_, device);
  fabric::Bufr bufr(name_ + ".bufr", regions.front());
  VAPRES_REQUIRE(bufr.can_drive(rect_, device),
                 name_ + ": BUFR cannot reach the whole PRR");
  fabric::Bufgmux mux(clock_a_mhz, clock_b_mhz);
  clock_tree_ =
      std::make_unique<fabric::PrrClockTree>(std::move(bufr), mux, *domain_);

  for (int c = 0; c < params.ki; ++c) {
    consumers_.push_back(std::make_unique<comm::ConsumerInterface>(
        name_ + ".c" + std::to_string(c), params.fifo_depth));
    static_domain.attach(consumers_.back().get());
  }
  for (int c = 0; c < params.ko; ++c) {
    producers_.push_back(std::make_unique<comm::ProducerInterface>(
        name_ + ".p" + std::to_string(c), params.fifo_depth,
        params.width_bits));
    static_domain.attach(producers_.back().get());
  }

  fsl_to_mb_ =
      std::make_unique<comm::FslLink>(name_ + ".r", params.fifo_depth);
  fsl_from_mb_ =
      std::make_unique<comm::FslLink>(name_ + ".t", params.fifo_depth);

  std::vector<comm::ConsumerInterface*> cons;
  for (auto& c : consumers_) cons.push_back(c.get());
  std::vector<comm::ProducerInterface*> prods;
  for (auto& p : producers_) prods.push_back(p.get());

  wrapper_ = std::make_unique<hwmodule::ModuleWrapper>(
      name_ + ".wrapper", cons, prods, fsl_to_mb_.get(), fsl_from_mb_.get());
  domain_->attach(wrapper_.get());

  socket_ = std::make_unique<PrSocket>(name_ + ".socket", box, prods, cons,
                                       fsl_to_mb_.get(), fsl_from_mb_.get(),
                                       wrapper_.get(), clock_tree_.get());

  // Stream counters sum across all of this PRR's channels; the sources
  // read the interfaces lazily, so the values stay live without any
  // per-cycle bookkeeping here.
  perf_ = std::make_unique<PerfCounters>(name_ + ".perf");
  perf_->set_source(PerfCounters::kSelWordsOut, [this] {
    std::uint64_t total = 0;
    for (const auto& p : producers_) total += p->words_sent();
    return total;
  });
  perf_->set_source(PerfCounters::kSelWordsIn, [this] {
    std::uint64_t total = 0;
    for (const auto& c : consumers_) total += c->words_received();
    return total;
  });
  perf_->set_source(PerfCounters::kSelStallCycles, [this] {
    std::uint64_t total = 0;
    for (const auto& p : producers_) total += p->stall_cycles();
    return total;
  });
  perf_->set_source(PerfCounters::kSelDiscarded, [this] {
    std::uint64_t total = 0;
    for (const auto& c : consumers_) total += c->words_discarded();
    return total;
  });
}

Prr::~Prr() {
  domain_->detach(wrapper_.get());
  for (auto& c : consumers_) static_domain_->detach(c.get());
  for (auto& p : producers_) static_domain_->detach(p.get());
}

comm::ConsumerInterface& Prr::consumer(int channel) {
  VAPRES_REQUIRE(channel >= 0 && channel < num_consumers(),
                 name_ + ": consumer channel out of range");
  return *consumers_[static_cast<std::size_t>(channel)];
}

comm::ProducerInterface& Prr::producer(int channel) {
  VAPRES_REQUIRE(channel >= 0 && channel < num_producers(),
                 name_ + ": producer channel out of range");
  return *producers_[static_cast<std::size_t>(channel)];
}

void Prr::apply_bitstream(const bitstream::PartialBitstream& bs,
                          const hwmodule::ModuleLibrary& library) {
  VAPRES_REQUIRE(bs.valid(), name_ + ": corrupt bitstream");
  VAPRES_REQUIRE(bs.target_prr == name_,
                 name_ + ": bitstream targets " + bs.target_prr);
  VAPRES_REQUIRE(bs.region == rect_,
                 name_ + ": bitstream region mismatch");
  VAPRES_REQUIRE(library.contains(bs.module_id),
                 name_ + ": module not in library: " + bs.module_id);
  const auto& info = library.info(bs.module_id);
  VAPRES_REQUIRE(info.resources.fits_in(capacity()),
                 name_ + ": module " + bs.module_id + " does not fit");
  wrapper_->load(library.instantiate(bs.module_id));
  loaded_module_ = bs.module_id;
  ++reconfigurations_;
}

}  // namespace vapres::core
