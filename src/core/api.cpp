#include "core/api.hpp"

#include "sim/check.hpp"

namespace vapres::core::api {

std::pair<int, int> resolve_prr(const VapresSystem& sys, int num) {
  VAPRES_REQUIRE(num >= 0, "PRR number must be >= 0");
  int base = 0;
  for (std::size_t r = 0; r < sys.params().rsbs.size(); ++r) {
    const int n = sys.params().rsbs[r].num_prrs;
    if (num < base + n) return {static_cast<int>(r), num - base};
    base += n;
  }
  throw ModelError("PRR number out of range: " + std::to_string(num));
}

int vapres_cf2icap(VapresSystem& sys, const std::string& filename) {
  if (!sys.compact_flash().contains(filename)) return 0;
  bool done = false;
  bool configured = false;
  try {
    sys.reconfig().cf2icap(filename,
                           [&done, &configured](const ReconfigOutcome& o) {
                             done = true;
                             configured = o.ok();
                           });
  } catch (const ModelError&) {
    return 0;
  }
  return sys.sim().run_until([&done] { return done; },
                             sim::kPsPerSecond * 60) &&
                 configured
             ? 1
             : 0;
}

int vapres_array2icap(VapresSystem& sys, const std::string& key) {
  if (!sys.sdram().contains(key)) return 0;
  bool done = false;
  bool configured = false;
  try {
    sys.reconfig().array2icap(key,
                              [&done, &configured](const ReconfigOutcome& o) {
                                done = true;
                                configured = o.ok();
                              });
  } catch (const ModelError&) {
    return 0;
  }
  return sys.sim().run_until([&done] { return done; },
                             sim::kPsPerSecond * 60) &&
                 configured
             ? 1
             : 0;
}

int vapres_cf2array(VapresSystem& sys, const std::string& filename,
                    const std::string& key, int* size) {
  if (!sys.compact_flash().contains(filename)) return 0;
  bool done = false;
  try {
    sys.reconfig().cf2array(
        filename, key, [&done](const ReconfigOutcome&) { done = true; });
  } catch (const ModelError&) {
    return 0;
  }
  if (!sys.sim().run_until([&done] { return done; }, sim::kPsPerSecond * 60)) {
    return 0;
  }
  if (size != nullptr) {
    *size = static_cast<int>(sys.sdram().read(key).size_bytes);
  }
  return 1;
}

int vapres_module_clock(VapresSystem& sys, int num, bool enable) {
  const auto [r, p] = resolve_prr(sys, num);
  sys.socket_set_bits(sys.rsb(r).prr_socket_address(p), PrSocket::kClkEn,
                      enable);
  return 1;
}

int vapres_module_reset(VapresSystem& sys, int num, bool assert_reset) {
  const auto [r, p] = resolve_prr(sys, num);
  sys.socket_set_bits(sys.rsb(r).prr_socket_address(p), PrSocket::kPrrReset,
                      assert_reset);
  return 1;
}

int vapres_module_write(VapresSystem& sys, int num, std::uint32_t value) {
  const auto [r, p] = resolve_prr(sys, num);
  comm::FslLink& t = sys.rsb(r).prr(p).fsl_from_mb();
  if (!t.can_write()) return 0;
  t.write(value);
  return 1;
}

int vapres_module_read(VapresSystem& sys, int num, std::uint32_t* value) {
  const auto [r, p] = resolve_prr(sys, num);
  comm::FslLink& rl = sys.rsb(r).prr(p).fsl_to_mb();
  auto w = rl.try_read();
  if (!w) return 0;
  if (value != nullptr) *value = *w;
  return 1;
}

int vapres_establish_channel(VapresSystem& sys, CommState* current_state,
                             std::uint8_t prr_x, std::uint8_t prr_y) {
  VAPRES_REQUIRE(current_state != nullptr,
                 "vapres_establish_channel: null comm state");
  // The paper's signature addresses PRRs within one RSB; the comm state
  // identifies which RSB. PRR numbers here are indices within that RSB.
  Rsb* owner = nullptr;
  for (int r = 0; r < sys.num_rsbs(); ++r) {
    if (&sys.rsb(r).channels() == current_state) {
      owner = &sys.rsb(r);
      break;
    }
  }
  VAPRES_REQUIRE(owner != nullptr,
                 "comm state does not belong to this system");
  const int x = static_cast<int>(prr_x);
  const int y = static_cast<int>(prr_y);
  if (x >= owner->num_prrs() || y >= owner->num_prrs()) return 0;
  auto id = current_state->establish(owner->prr_producer(x),
                                     owner->prr_consumer(y));
  return id.has_value() ? 1 : 0;
}

}  // namespace vapres::core::api
