#include "core/perfcounter.hpp"

namespace vapres::core {

void PerfCounters::set_source(Select sel, Source source) {
  VAPRES_REQUIRE(sel < kNumSelects, name_ + ": bad counter selector");
  sources_[static_cast<std::size_t>(sel)] = std::move(source);
}

std::uint64_t PerfCounters::raw(Select sel) const {
  VAPRES_REQUIRE(sel < kNumSelects, name_ + ": bad counter selector");
  const Source& src = sources_[static_cast<std::size_t>(sel)];
  return src ? src() : 0;
}

comm::DcrValue PerfCounters::dcr_read() const {
  return static_cast<comm::DcrValue>(raw(select_) & 0xFFFFFFFFu);
}

void PerfCounters::dcr_write(comm::DcrValue value) {
  if (value < kNumSelects) select_ = static_cast<Select>(value);
}

}  // namespace vapres::core
