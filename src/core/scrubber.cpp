#include "core/scrubber.hpp"

#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace vapres::core {

ScrubberTask::ScrubberTask(VapresSystem& sys, sim::Cycles period_cycles)
    : sys_(sys), period_(period_cycles) {
  VAPRES_REQUIRE(period_cycles > 0, "scrub period must be positive");
}

void ScrubberTask::start() { sys_.mb().add_task(this); }

bool ScrubberTask::step(proc::Microblaze& mb) {
  if (mb.cycle() < next_due_) return false;
  // The scrub readback shares the ICAP with reconfiguration; skip this
  // pass if a PR is in flight rather than corrupting its transfer.
  if (sys_.reconfig().busy() || sys_.icap().busy()) {
    next_due_ = mb.cycle() + period_;
    return false;
  }

  ++scans_;
  auto& faults = sim::FaultInjector::instance();
  sim::Cycles charged = 0;
  for (int r = 0; r < sys_.num_rsbs(); ++r) {
    Rsb& rsb = sys_.rsb(r);
    // Frame scan: each PRR's configuration is read back and compared.
    // The kConfigFrameUpset site decides whether an SEU hit the region
    // since the last pass.
    for (int p = 0; p < rsb.num_prrs(); ++p) {
      charged += kReadbackCyclesPerPrr;
      if (faults.enabled() &&
          faults.should_fire(sim::FaultSite::kConfigFrameUpset)) {
        ++frame_repairs_;
        faults.note_recovery(sim::RecoveryEvent::kScrubRepair);
        charged += kRewriteCyclesPerFrame;
        VAPRES_TRACE_INFO(sys_.sim().now(), "scrubber",
                          "frame upset in " << rsb.prr(p).name()
                                            << "; frame rewritten");
      }
    }
    // Mux scan: a stuck switch-box output is a flipped MUX_sel bit in
    // configuration memory — rewriting its frame un-sticks the port.
    comm::SwitchFabric& fabric = rsb.fabric();
    for (int b = 0; b < fabric.num_boxes(); ++b) {
      comm::SwitchBox& box = fabric.box(b);
      for (int port = 0; port < box.shape().num_outputs(); ++port) {
        if (!box.output_stuck(port)) continue;
        box.repair_output(port);
        ++mux_repairs_;
        faults.note_recovery(sim::RecoveryEvent::kScrubRepair);
        charged += kRewriteCyclesPerFrame;
        VAPRES_TRACE_INFO(sys_.sim().now(), "scrubber",
                          box.name() << " output " << port
                                     << " stuck; mux frame rewritten");
      }
    }
  }
  mb.busy_for(charged);
  next_due_ = mb.cycle() + period_;
  return false;  // periodic: never finishes
}

}  // namespace vapres::core
