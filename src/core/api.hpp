// Table-2 API surface.
//
// The paper exposes low-level system functionality to software-module
// authors as C-style functions (Table 2). These wrappers provide the same
// names and return conventions (1 = success, 0 = failure) over the C++
// system object, with blocking semantics: a call returns after the
// simulated operation completed, exactly as the real driver call returns
// after the hardware finished. `num` identifies a PRR by global index in
// RSB-major order, matching vapres_module_* in the paper.
#pragma once

#include <cstdint>
#include <string>

#include "core/channel.hpp"
#include "core/system.hpp"

namespace vapres::core::api {

/// The paper's comm_state: the routing state threaded through
/// vapres_establish_channel. One per RSB, owned by the Rsb.
using CommState = ChannelManager;

/// Transfers a partial bitstream stored as a CF file to the ICAP port.
int vapres_cf2icap(VapresSystem& sys, const std::string& filename);

/// Transfers a partial bitstream staged as an SDRAM array to the ICAP.
int vapres_array2icap(VapresSystem& sys, const std::string& key);

/// Transfers a partial bitstream file from CF memory to an SDRAM array.
/// The array size in bytes is returned through `size`.
int vapres_cf2array(VapresSystem& sys, const std::string& filename,
                    const std::string& key, int* size);

/// Enables/disables the regional clock buffer (BUFR) of PRR `num`.
int vapres_module_clock(VapresSystem& sys, int num, bool enable);

/// Asserts/deasserts reset of the module in PRR `num`.
int vapres_module_reset(VapresSystem& sys, int num, bool assert_reset);

/// Writes `value` to the module's t-link (MicroBlaze -> module FSL).
int vapres_module_write(VapresSystem& sys, int num, std::uint32_t value);

/// Reads a word from the module's r-link into `value` (0 if empty).
int vapres_module_read(VapresSystem& sys, int num, std::uint32_t* value);

/// Establishes a streaming channel from PRR X's producer to PRR Y's
/// consumer using `current_state`. Returns 1 and updates the state on
/// success, 0 otherwise (Table 2 semantics).
int vapres_establish_channel(VapresSystem& sys, CommState* current_state,
                             std::uint8_t prr_x, std::uint8_t prr_y);

/// Maps a global PRR number to (rsb index, prr index). Throws on a bad
/// number; exposed for tests.
std::pair<int, int> resolve_prr(const VapresSystem& sys, int num);

}  // namespace vapres::core::api
