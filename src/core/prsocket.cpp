#include "core/prsocket.hpp"

#include "sim/check.hpp"

namespace vapres::core {

namespace {

int bits_for(int values) {
  int bits = 1;
  while ((1 << bits) < values) ++bits;
  return bits;
}

}  // namespace

PrSocket::PrSocket(std::string name, comm::SwitchBox* box,
                   std::vector<comm::ProducerInterface*> producers,
                   std::vector<comm::ConsumerInterface*> consumers,
                   comm::FslLink* fsl_to_mb, comm::FslLink* fsl_from_mb,
                   hwmodule::ModuleWrapper* wrapper,
                   fabric::PrrClockTree* clock)
    : name_(std::move(name)),
      box_(box),
      producers_(std::move(producers)),
      consumers_(std::move(consumers)),
      fsl_to_mb_(fsl_to_mb),
      fsl_from_mb_(fsl_from_mb),
      wrapper_(wrapper),
      clock_(clock) {
  VAPRES_REQUIRE(box_ != nullptr, name_ + ": socket needs a switch box");
  // Field value range: inputs + 1 (the park value 0).
  sel_bits_ = bits_for(box_->shape().num_inputs() + 1);
  VAPRES_REQUIRE(
      kMuxSelBase + box_->shape().num_outputs() * sel_bits_ <= 32,
      name_ + ": MUX_sel fields do not fit a 32-bit DCR");
  // Power-on state: everything disabled/isolated until software brings the
  // site up (value_ = 0: SM_en clear, clock gated, wen/ren clear).
  apply(~comm::DcrValue{0}, 0);
}

comm::DcrValue PrSocket::with_mux_sel(comm::DcrValue current, int output_port,
                                      int input) const {
  VAPRES_REQUIRE(output_port >= 0 &&
                     output_port < box_->shape().num_outputs(),
                 name_ + ": MUX_sel output port out of range");
  VAPRES_REQUIRE(input >= -1 && input < box_->shape().num_inputs(),
                 name_ + ": MUX_sel input out of range");
  const int shift = kMuxSelBase + output_port * sel_bits_;
  const comm::DcrValue mask = ((1u << sel_bits_) - 1u) << shift;
  const comm::DcrValue field = static_cast<comm::DcrValue>(input + 1)
                               << shift;
  return (current & ~mask) | field;
}

void PrSocket::dcr_write(comm::DcrValue value) {
  const comm::DcrValue old = value_;
  value_ = value;
  apply(old, value);
}

void PrSocket::apply(comm::DcrValue old_value, comm::DcrValue new_value) {
  const auto changed = old_value ^ new_value;

  if ((changed & kSmEn) != 0 && wrapper_ != nullptr) {
    wrapper_->set_isolated((new_value & kSmEn) == 0);
  }
  if ((changed & kPrrReset) != 0 && wrapper_ != nullptr) {
    const bool asserted = (new_value & kPrrReset) != 0;
    if (asserted && wrapper_->loaded()) wrapper_->reset();
    wrapper_->set_reset(asserted);
  }
  if ((new_value & kFifoReset) != 0 && (changed & kFifoReset) != 0) {
    for (auto* p : producers_) p->reset();
    for (auto* c : consumers_) c->reset();
  }
  if ((new_value & kFslReset) != 0 && (changed & kFslReset) != 0) {
    if (fsl_to_mb_ != nullptr) fsl_to_mb_->reset();
    if (fsl_from_mb_ != nullptr) fsl_from_mb_->reset();
  }
  if ((changed & kFifoWen) != 0) {
    for (auto* c : consumers_) {
      c->set_write_enable((new_value & kFifoWen) != 0);
    }
  }
  if ((changed & kFifoRen) != 0) {
    for (auto* p : producers_) {
      p->set_read_enable((new_value & kFifoRen) != 0);
    }
  }
  if ((changed & kClkEn) != 0 && clock_ != nullptr) {
    clock_->set_enabled((new_value & kClkEn) != 0);
  }
  if ((changed & kClkSel) != 0 && clock_ != nullptr) {
    clock_->select((new_value & kClkSel) != 0 ? 1 : 0);
  }

  // MUX_sel fields.
  const int outputs = box_->shape().num_outputs();
  for (int p = 0; p < outputs; ++p) {
    const int shift = kMuxSelBase + p * sel_bits_;
    const comm::DcrValue mask = (1u << sel_bits_) - 1u;
    const comm::DcrValue old_field = (old_value >> shift) & mask;
    const comm::DcrValue new_field = (new_value >> shift) & mask;
    if (old_field != new_field) {
      const int input = static_cast<int>(new_field) - 1;
      VAPRES_REQUIRE(input < box_->shape().num_inputs(),
                     name_ + ": MUX_sel selects nonexistent input");
      box_->select(p, input);
    }
  }
}

}  // namespace vapres::core
