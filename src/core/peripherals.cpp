#include "core/peripherals.hpp"

#include <array>
#include <cmath>
#include <memory>

#include "sim/check.hpp"

namespace vapres::core::peripherals {

namespace {

/// Quarter-wave table, computed once. Index 0..256 covers 0..pi/2.
const std::array<std::int32_t, 257>& quarter_wave() {
  static const auto table = [] {
    std::array<std::int32_t, 257> t{};
    for (int i = 0; i <= 256; ++i) {
      t[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
          std::lround(std::sin(3.14159265358979323846 * i / 512.0) *
                      32767.0));
    }
    return t;
  }();
  return table;
}

/// Full-wave lookup over 1024 phase steps using quarter-wave symmetry.
std::int32_t sine_q15(int phase1024) {
  const int p = phase1024 & 1023;
  if (p < 256) return quarter_wave()[static_cast<std::size_t>(p)];
  if (p < 512) return quarter_wave()[static_cast<std::size_t>(512 - p)];
  if (p < 768) return -quarter_wave()[static_cast<std::size_t>(p - 512)];
  return -quarter_wave()[static_cast<std::size_t>(1024 - p)];
}

}  // namespace

std::int32_t sine_table(int i) {
  VAPRES_REQUIRE(i >= 0 && i <= 256, "sine table index out of range");
  return quarter_wave()[static_cast<std::size_t>(i)];
}

Generator sine_source(std::int32_t amplitude, std::int32_t offset,
                      int period, std::int64_t total_samples) {
  VAPRES_REQUIRE(amplitude >= 0, "amplitude must be >= 0");
  VAPRES_REQUIRE(period >= 2, "sine period must be >= 2 samples");
  auto n = std::make_shared<std::int64_t>(0);
  return [amplitude, offset, period, total_samples,
          n]() -> std::optional<comm::Word> {
    if (total_samples > 0 && *n >= total_samples) return std::nullopt;
    const int phase = static_cast<int>((*n % period) * 1024 / period);
    ++*n;
    const std::int64_t v =
        offset + static_cast<std::int64_t>(amplitude) * sine_q15(phase) /
                     32767;
    return static_cast<comm::Word>(v);
  };
}

Generator noise_source(std::int32_t amplitude, std::int32_t offset,
                       std::uint64_t seed, std::int64_t total_samples) {
  VAPRES_REQUIRE(amplitude >= 0, "amplitude must be >= 0");
  auto rng = std::make_shared<sim::SplitMix64>(seed);
  auto n = std::make_shared<std::int64_t>(0);
  return [amplitude, offset, total_samples, rng,
          n]() -> std::optional<comm::Word> {
    if (total_samples > 0 && *n >= total_samples) return std::nullopt;
    ++*n;
    const auto span = static_cast<std::uint64_t>(2 * amplitude + 1);
    const auto jitter =
        static_cast<std::int32_t>(rng->next_below(span)) - amplitude;
    return static_cast<comm::Word>(offset + jitter);
  };
}

Generator square_source(comm::Word low, comm::Word high, int half_period,
                        std::int64_t total_samples) {
  VAPRES_REQUIRE(half_period >= 1, "half period must be >= 1");
  auto n = std::make_shared<std::int64_t>(0);
  return [low, high, half_period, total_samples,
          n]() -> std::optional<comm::Word> {
    if (total_samples > 0 && *n >= total_samples) return std::nullopt;
    const bool hi = (*n / half_period) % 2 == 1;
    ++*n;
    return hi ? high : low;
  };
}

Generator ramp_source(comm::Word increment, std::int64_t total_samples) {
  auto n = std::make_shared<std::int64_t>(0);
  return [increment, total_samples, n]() -> std::optional<comm::Word> {
    if (total_samples > 0 && *n >= total_samples) return std::nullopt;
    const auto v = static_cast<comm::Word>(*n) * increment;
    ++*n;
    return v;
  };
}

Generator mix(Generator a, Generator b) {
  VAPRES_REQUIRE(a != nullptr && b != nullptr, "mix needs two generators");
  return [a = std::move(a), b = std::move(b)]() -> std::optional<comm::Word> {
    const auto va = a();
    const auto vb = b();
    if (!va || !vb) return std::nullopt;
    return *va + *vb;
  };
}

}  // namespace vapres::core::peripherals
