#include "core/reconfig.hpp"

#include <cmath>

#include "bitstream/bitgen.hpp"
#include "bitstream/calibration.hpp"
#include "obs/metrics.hpp"
#include "sim/check.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace vapres::core {

using bitstream::Calibration;

ReconfigManager::ReconfigManager(sim::Simulator& sim, proc::Microblaze& mb,
                                 fabric::IcapPort& icap,
                                 bitstream::CompactFlash& cf,
                                 bitstream::Sdram& sdram)
    : sim_(sim), mb_(mb), icap_(icap), cf_(cf), sdram_(sdram) {}

void ReconfigManager::register_target(
    const std::string& prr_name,
    std::function<void(const bitstream::PartialBitstream&)> apply) {
  VAPRES_REQUIRE(apply != nullptr, "null configuration target");
  VAPRES_REQUIRE(targets_.count(prr_name) == 0,
                 "target already registered: " + prr_name);
  targets_[prr_name] = std::move(apply);
}

void ReconfigManager::set_retry_policy(const RetryPolicy& policy) {
  VAPRES_REQUIRE(policy.max_attempts >= 1,
                 "retry policy needs at least one attempt");
  policy_ = policy;
}

ReconfigBreakdown ReconfigManager::estimate_cf2icap(std::int64_t bytes) {
  ReconfigBreakdown b;
  b.storage_cycles = bitstream::CompactFlash::read_cycles(bytes);
  b.icap_cycles =
      static_cast<double>(bytes) * Calibration::kIcapWriteCyclesPerByte;
  return b;
}

ReconfigBreakdown ReconfigManager::estimate_array2icap(std::int64_t bytes) {
  ReconfigBreakdown b;
  b.storage_cycles = bitstream::Sdram::read_cycles(bytes);
  b.icap_cycles =
      static_cast<double>(bytes) * Calibration::kIcapWriteCyclesPerByte;
  return b;
}

double ReconfigManager::estimate_cf2array_cycles(std::int64_t bytes) {
  return bitstream::CompactFlash::read_cycles(bytes) +
         bitstream::Sdram::write_cycles(bytes);
}

ReconfigBreakdown ReconfigManager::estimate_cf2icap_streamed(
    std::int64_t bytes, std::int64_t chunk_bytes) {
  VAPRES_REQUIRE(chunk_bytes > 0, "stream chunk size must be positive");
  const std::int64_t chunks = (bytes + chunk_bytes - 1) / chunk_bytes;
  const std::int64_t tail =
      bytes == 0 ? 0 : bytes - (chunks - 1) * chunk_bytes;
  ReconfigBreakdown b;
  b.storage_cycles =
      bitstream::CompactFlash::read_cycles(bytes) +
      static_cast<double>(chunks) * Calibration::kStreamChunkOverheadCycles;
  b.icap_cycles =
      static_cast<double>(tail) * Calibration::kIcapWriteCyclesPerByte;
  return b;
}

sim::Cycles ReconfigManager::start(const bitstream::PartialBitstream& bs,
                                   const ReconfigBreakdown& base_cost,
                                   bool sdram_source,
                                   std::uint16_t path_code,
                                   DoneCallback on_done) {
  VAPRES_REQUIRE(!busy_, "reconfiguration already in flight");
  auto target_it = targets_.find(bs.target_prr);
  VAPRES_REQUIRE(target_it != targets_.end(),
                 "no configuration target registered for " + bs.target_prr);

  ReconfigBreakdown cost = base_cost;
  if (verify_) cost.icap_cycles *= 2.0;  // readback + compare pass

  busy_ = true;
  last_ = cost;
  inflight_ = std::make_unique<Inflight>();
  // Copy the bitstream: storage contents may change while in flight.
  inflight_->bs = bs;
  inflight_->cost = cost;
  inflight_->apply = target_it->second;
  inflight_->on_done = std::move(on_done);
  inflight_->outcome.attempts = 0;  // counted per launch_attempt()
  inflight_->path_code = path_code;
  inflight_->started_cycle = mb_.cycle();
  // All timed paths serialize on the ICAP port: one "icap" track.
  inflight_->span = obs::Span::begin(
      obs::Subsystem::kReconfig, path_code,
      obs::EventBus::instance().track("icap"), sim_.now(),
      static_cast<std::uint64_t>(bs.size_bytes));
  if (sdram_source) {
    // The pristine file the SDRAM array was staged from, if it exists.
    const std::string filename =
        bitstream::bitstream_filename(bs.module_id, bs.target_prr);
    if (cf_.contains(filename)) inflight_->cf_fallback = filename;
  }
  return launch_attempt();
}

sim::Cycles ReconfigManager::launch_attempt() {
  Inflight& fl = *inflight_;
  ++fl.attempts_this_source;
  ++fl.outcome.attempts;
  const auto cycles =
      static_cast<sim::Cycles>(std::llround(fl.cost.total_cycles()));
  icap_.begin_transfer(fl.bs.size_bytes);
  mb_.busy_for(cycles, [this] { complete_attempt(); });
  return cycles;
}

void ReconfigManager::complete_attempt() {
  Inflight& fl = *inflight_;
  const fabric::IcapTransferResult result = icap_.end_transfer();
  if (result.ok() && fl.bs.valid()) {
    finish(/*success=*/true);
    return;
  }

  auto& faults = sim::FaultInjector::instance();
  if (fl.attempts_this_source < policy_.max_attempts) {
    // Bounded retry with exponential backoff.
    ++retries_;
    faults.note_recovery(sim::RecoveryEvent::kIcapRetry);
    const sim::Cycles backoff =
        policy_.backoff_base_cycles
        << static_cast<unsigned>(fl.attempts_this_source - 1);
    obs::EventBus::instance().instant(
        obs::Subsystem::kReconfig, obs::ev::kRetry,
        obs::EventBus::instance().track("icap"), sim_.now(),
        static_cast<std::uint64_t>(fl.attempts_this_source), backoff);
    VAPRES_TRACE_INFO(sim_.now(), "reconfig",
                      "transfer "
                          << (result.timed_out ? "timed out" : "corrupt")
                          << "; retry " << fl.attempts_this_source
                          << " after " << backoff << "-cycle backoff");
    mb_.busy_for(backoff, [this] { launch_attempt(); });
    return;
  }

  if (!fl.on_fallback_source && policy_.fallback_to_cf &&
      !fl.cf_fallback.empty()) {
    // Source fallback: abandon the SDRAM array, re-read the pristine
    // CompactFlash file (the slow path — but a working one).
    ++fallbacks_;
    faults.note_recovery(sim::RecoveryEvent::kSourceFallback);
    fl.on_fallback_source = true;
    fl.attempts_this_source = 0;
    ++fl.outcome.fallbacks;
    fl.bs = cf_.read(fl.cf_fallback);
    fl.cost = estimate_cf2icap(fl.bs.size_bytes);
    if (verify_) fl.cost.icap_cycles *= 2.0;
    last_ = fl.cost;
    obs::EventBus::instance().instant(
        obs::Subsystem::kReconfig, obs::ev::kSourceFallback,
        obs::EventBus::instance().track("icap"), sim_.now());
    VAPRES_TRACE_INFO(sim_.now(), "reconfig",
                      "SDRAM source exhausted "
                          << policy_.max_attempts
                          << " attempts; falling back to CF file "
                          << fl.cf_fallback);
    const sim::Cycles backoff = policy_.backoff_base_cycles;
    mb_.busy_for(backoff, [this] { launch_attempt(); });
    return;
  }

  obs::EventBus::instance().instant(
      obs::Subsystem::kReconfig, obs::ev::kPermanentFailure,
      obs::EventBus::instance().track("icap"), sim_.now(),
      static_cast<std::uint64_t>(fl.outcome.attempts));
  VAPRES_TRACE_INFO(sim_.now(), "reconfig",
                    "reconfiguration failed permanently after "
                        << fl.outcome.attempts << " attempts");
  finish(/*success=*/false);
}

void ReconfigManager::finish(bool success) {
  // Detach the context first: the callbacks may start a new
  // reconfiguration re-entrantly.
  std::unique_ptr<Inflight> fl = std::move(inflight_);
  busy_ = false;
  fl->outcome.success = success;
  obs::Histogram& hist = obs::Registry::instance().histogram(
      std::string("reconfig.") +
      obs::event_name(obs::Subsystem::kReconfig, fl->path_code) +
      ".cycles");
  fl->span.end(sim_.now(), &hist,
               static_cast<std::int64_t>(mb_.cycle() - fl->started_cycle));
  if (success) {
    ++completed_;
    fl->apply(fl->bs);
  } else {
    ++failures_;
  }
  if (fl->on_done) fl->on_done(fl->outcome);
}

sim::Cycles ReconfigManager::cf2icap(const std::string& filename,
                                     DoneCallback on_done) {
  const auto& bs = cf_.read(filename);
  return start(bs, estimate_cf2icap(bs.size_bytes), /*sdram_source=*/false,
               obs::ev::kCf2Icap, std::move(on_done));
}

sim::Cycles ReconfigManager::cf2icap_streamed(const std::string& filename,
                                              std::int64_t chunk_bytes,
                                              DoneCallback on_done) {
  const auto& bs = cf_.read(filename);
  return start(bs, estimate_cf2icap_streamed(bs.size_bytes, chunk_bytes),
               /*sdram_source=*/false, obs::ev::kCfStream,
               std::move(on_done));
}

sim::Cycles ReconfigManager::array2icap(const std::string& key,
                                        DoneCallback on_done) {
  const auto& bs = sdram_.read(key);
  return start(bs, estimate_array2icap(bs.size_bytes),
               /*sdram_source=*/true, obs::ev::kArray2Icap,
               std::move(on_done));
}

sim::Cycles ReconfigManager::cf2array(const std::string& filename,
                                      const std::string& key,
                                      DoneCallback on_done) {
  VAPRES_REQUIRE(!busy_, "reconfiguration path busy");
  const auto& bs = cf_.read(filename);
  const auto cycles = static_cast<sim::Cycles>(
      std::llround(estimate_cf2array_cycles(bs.size_bytes)));
  busy_ = true;
  auto span = obs::Span::begin(obs::Subsystem::kReconfig,
                               obs::ev::kCf2Array,
                               obs::EventBus::instance().track("icap"),
                               sim_.now(),
                               static_cast<std::uint64_t>(bs.size_bytes));
  const sim::Cycles started_cycle = mb_.cycle();
  auto bs_copy = bs;
  mb_.busy_for(cycles, [this, key, span, started_cycle,
                        bs_copy = std::move(bs_copy),
                        on_done = std::move(on_done)]() mutable {
    busy_ = false;
    span.end(sim_.now(),
             &obs::Registry::instance().histogram("reconfig.cf2array.cycles"),
             static_cast<std::int64_t>(mb_.cycle() - started_cycle));
    sdram_.replace(key, bs_copy);
    if (on_done) on_done(ReconfigOutcome{});
  });
  return cycles;
}

}  // namespace vapres::core
