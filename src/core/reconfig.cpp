#include "core/reconfig.hpp"

#include <cmath>

#include "bitstream/calibration.hpp"
#include "sim/check.hpp"

namespace vapres::core {

using bitstream::Calibration;

ReconfigManager::ReconfigManager(sim::Simulator& sim, proc::Microblaze& mb,
                                 fabric::IcapPort& icap,
                                 bitstream::CompactFlash& cf,
                                 bitstream::Sdram& sdram)
    : sim_(sim), mb_(mb), icap_(icap), cf_(cf), sdram_(sdram) {}

void ReconfigManager::register_target(
    const std::string& prr_name,
    std::function<void(const bitstream::PartialBitstream&)> apply) {
  VAPRES_REQUIRE(apply != nullptr, "null configuration target");
  VAPRES_REQUIRE(targets_.count(prr_name) == 0,
                 "target already registered: " + prr_name);
  targets_[prr_name] = std::move(apply);
}

ReconfigBreakdown ReconfigManager::estimate_cf2icap(std::int64_t bytes) {
  ReconfigBreakdown b;
  b.storage_cycles = bitstream::CompactFlash::read_cycles(bytes);
  b.icap_cycles =
      static_cast<double>(bytes) * Calibration::kIcapWriteCyclesPerByte;
  return b;
}

ReconfigBreakdown ReconfigManager::estimate_array2icap(std::int64_t bytes) {
  ReconfigBreakdown b;
  b.storage_cycles = bitstream::Sdram::read_cycles(bytes);
  b.icap_cycles =
      static_cast<double>(bytes) * Calibration::kIcapWriteCyclesPerByte;
  return b;
}

double ReconfigManager::estimate_cf2array_cycles(std::int64_t bytes) {
  return bitstream::CompactFlash::read_cycles(bytes) +
         bitstream::Sdram::write_cycles(bytes);
}

sim::Cycles ReconfigManager::start(const bitstream::PartialBitstream& bs,
                                   const ReconfigBreakdown& base_cost,
                                   std::function<void()> on_done) {
  VAPRES_REQUIRE(!busy_, "reconfiguration already in flight");
  auto target_it = targets_.find(bs.target_prr);
  VAPRES_REQUIRE(target_it != targets_.end(),
                 "no configuration target registered for " + bs.target_prr);

  ReconfigBreakdown cost = base_cost;
  if (verify_) cost.icap_cycles *= 2.0;  // readback + compare pass

  const auto cycles =
      static_cast<sim::Cycles>(std::llround(cost.total_cycles()));
  busy_ = true;
  last_ = cost;
  icap_.begin_transfer(bs.size_bytes);

  // Copy the bitstream: storage contents may change while in flight.
  auto bs_copy = bs;
  auto apply = target_it->second;
  mb_.busy_for(cycles, [this, bs_copy = std::move(bs_copy),
                        apply = std::move(apply),
                        on_done = std::move(on_done)]() {
    icap_.end_transfer();
    busy_ = false;
    ++completed_;
    apply(bs_copy);
    if (on_done) on_done();
  });
  return cycles;
}

sim::Cycles ReconfigManager::cf2icap(const std::string& filename,
                                     std::function<void()> on_done) {
  const auto& bs = cf_.read(filename);
  return start(bs, estimate_cf2icap(bs.size_bytes), std::move(on_done));
}

sim::Cycles ReconfigManager::array2icap(const std::string& key,
                                        std::function<void()> on_done) {
  const auto& bs = sdram_.read(key);
  return start(bs, estimate_array2icap(bs.size_bytes), std::move(on_done));
}

sim::Cycles ReconfigManager::cf2array(const std::string& filename,
                                      const std::string& key,
                                      std::function<void()> on_done) {
  VAPRES_REQUIRE(!busy_, "reconfiguration path busy");
  const auto& bs = cf_.read(filename);
  const auto cycles = static_cast<sim::Cycles>(
      std::llround(estimate_cf2array_cycles(bs.size_bytes)));
  busy_ = true;
  auto bs_copy = bs;
  mb_.busy_for(cycles, [this, key, bs_copy = std::move(bs_copy),
                        on_done = std::move(on_done)]() {
    busy_ = false;
    if (!sdram_.contains(key)) sdram_.store(key, bs_copy);
    if (on_done) on_done();
  });
  return cycles;
}

}  // namespace vapres::core
