#include "core/reconfig.hpp"

#include <cmath>

#include "bitstream/bitgen.hpp"
#include "bitstream/calibration.hpp"
#include "sim/check.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace vapres::core {

using bitstream::Calibration;

namespace {

void trace_recovery(sim::Simulator& sim, const std::string& message) {
  auto& hub = sim::Trace::instance();
  if (hub.enabled(sim::TraceLevel::kInfo)) {
    hub.emit(sim.now(), "reconfig", message);
  }
}

}  // namespace

ReconfigManager::ReconfigManager(sim::Simulator& sim, proc::Microblaze& mb,
                                 fabric::IcapPort& icap,
                                 bitstream::CompactFlash& cf,
                                 bitstream::Sdram& sdram)
    : sim_(sim), mb_(mb), icap_(icap), cf_(cf), sdram_(sdram) {}

void ReconfigManager::register_target(
    const std::string& prr_name,
    std::function<void(const bitstream::PartialBitstream&)> apply) {
  VAPRES_REQUIRE(apply != nullptr, "null configuration target");
  VAPRES_REQUIRE(targets_.count(prr_name) == 0,
                 "target already registered: " + prr_name);
  targets_[prr_name] = std::move(apply);
}

void ReconfigManager::set_retry_policy(const RetryPolicy& policy) {
  VAPRES_REQUIRE(policy.max_attempts >= 1,
                 "retry policy needs at least one attempt");
  policy_ = policy;
}

ReconfigBreakdown ReconfigManager::estimate_cf2icap(std::int64_t bytes) {
  ReconfigBreakdown b;
  b.storage_cycles = bitstream::CompactFlash::read_cycles(bytes);
  b.icap_cycles =
      static_cast<double>(bytes) * Calibration::kIcapWriteCyclesPerByte;
  return b;
}

ReconfigBreakdown ReconfigManager::estimate_array2icap(std::int64_t bytes) {
  ReconfigBreakdown b;
  b.storage_cycles = bitstream::Sdram::read_cycles(bytes);
  b.icap_cycles =
      static_cast<double>(bytes) * Calibration::kIcapWriteCyclesPerByte;
  return b;
}

double ReconfigManager::estimate_cf2array_cycles(std::int64_t bytes) {
  return bitstream::CompactFlash::read_cycles(bytes) +
         bitstream::Sdram::write_cycles(bytes);
}

ReconfigBreakdown ReconfigManager::estimate_cf2icap_streamed(
    std::int64_t bytes, std::int64_t chunk_bytes) {
  VAPRES_REQUIRE(chunk_bytes > 0, "stream chunk size must be positive");
  const std::int64_t chunks = (bytes + chunk_bytes - 1) / chunk_bytes;
  const std::int64_t tail =
      bytes == 0 ? 0 : bytes - (chunks - 1) * chunk_bytes;
  ReconfigBreakdown b;
  b.storage_cycles =
      bitstream::CompactFlash::read_cycles(bytes) +
      static_cast<double>(chunks) * Calibration::kStreamChunkOverheadCycles;
  b.icap_cycles =
      static_cast<double>(tail) * Calibration::kIcapWriteCyclesPerByte;
  return b;
}

sim::Cycles ReconfigManager::start(const bitstream::PartialBitstream& bs,
                                   const ReconfigBreakdown& base_cost,
                                   bool sdram_source, DoneCallback on_done) {
  VAPRES_REQUIRE(!busy_, "reconfiguration already in flight");
  auto target_it = targets_.find(bs.target_prr);
  VAPRES_REQUIRE(target_it != targets_.end(),
                 "no configuration target registered for " + bs.target_prr);

  ReconfigBreakdown cost = base_cost;
  if (verify_) cost.icap_cycles *= 2.0;  // readback + compare pass

  busy_ = true;
  last_ = cost;
  inflight_ = std::make_unique<Inflight>();
  // Copy the bitstream: storage contents may change while in flight.
  inflight_->bs = bs;
  inflight_->cost = cost;
  inflight_->apply = target_it->second;
  inflight_->on_done = std::move(on_done);
  inflight_->outcome.attempts = 0;  // counted per launch_attempt()
  if (sdram_source) {
    // The pristine file the SDRAM array was staged from, if it exists.
    const std::string filename =
        bitstream::bitstream_filename(bs.module_id, bs.target_prr);
    if (cf_.contains(filename)) inflight_->cf_fallback = filename;
  }
  return launch_attempt();
}

sim::Cycles ReconfigManager::launch_attempt() {
  Inflight& fl = *inflight_;
  ++fl.attempts_this_source;
  ++fl.outcome.attempts;
  const auto cycles =
      static_cast<sim::Cycles>(std::llround(fl.cost.total_cycles()));
  icap_.begin_transfer(fl.bs.size_bytes);
  mb_.busy_for(cycles, [this] { complete_attempt(); });
  return cycles;
}

void ReconfigManager::complete_attempt() {
  Inflight& fl = *inflight_;
  const fabric::IcapTransferResult result = icap_.end_transfer();
  if (result.ok() && fl.bs.valid()) {
    finish(/*success=*/true);
    return;
  }

  auto& faults = sim::FaultInjector::instance();
  if (fl.attempts_this_source < policy_.max_attempts) {
    // Bounded retry with exponential backoff.
    ++retries_;
    faults.note_recovery(sim::RecoveryEvent::kIcapRetry);
    const sim::Cycles backoff =
        policy_.backoff_base_cycles
        << static_cast<unsigned>(fl.attempts_this_source - 1);
    trace_recovery(sim_, std::string("transfer ") +
                             (result.timed_out ? "timed out" : "corrupt") +
                             "; retry " +
                             std::to_string(fl.attempts_this_source) +
                             " after " + std::to_string(backoff) +
                             "-cycle backoff");
    mb_.busy_for(backoff, [this] { launch_attempt(); });
    return;
  }

  if (!fl.on_fallback_source && policy_.fallback_to_cf &&
      !fl.cf_fallback.empty()) {
    // Source fallback: abandon the SDRAM array, re-read the pristine
    // CompactFlash file (the slow path — but a working one).
    ++fallbacks_;
    faults.note_recovery(sim::RecoveryEvent::kSourceFallback);
    fl.on_fallback_source = true;
    fl.attempts_this_source = 0;
    ++fl.outcome.fallbacks;
    fl.bs = cf_.read(fl.cf_fallback);
    fl.cost = estimate_cf2icap(fl.bs.size_bytes);
    if (verify_) fl.cost.icap_cycles *= 2.0;
    last_ = fl.cost;
    trace_recovery(sim_, "SDRAM source exhausted " +
                             std::to_string(policy_.max_attempts) +
                             " attempts; falling back to CF file " +
                             fl.cf_fallback);
    const sim::Cycles backoff = policy_.backoff_base_cycles;
    mb_.busy_for(backoff, [this] { launch_attempt(); });
    return;
  }

  trace_recovery(sim_, "reconfiguration failed permanently after " +
                           std::to_string(fl.outcome.attempts) +
                           " attempts");
  finish(/*success=*/false);
}

void ReconfigManager::finish(bool success) {
  // Detach the context first: the callbacks may start a new
  // reconfiguration re-entrantly.
  std::unique_ptr<Inflight> fl = std::move(inflight_);
  busy_ = false;
  fl->outcome.success = success;
  if (success) {
    ++completed_;
    fl->apply(fl->bs);
  } else {
    ++failures_;
  }
  if (fl->on_done) fl->on_done(fl->outcome);
}

sim::Cycles ReconfigManager::cf2icap(const std::string& filename,
                                     DoneCallback on_done) {
  const auto& bs = cf_.read(filename);
  return start(bs, estimate_cf2icap(bs.size_bytes), /*sdram_source=*/false,
               std::move(on_done));
}

sim::Cycles ReconfigManager::cf2icap_streamed(const std::string& filename,
                                              std::int64_t chunk_bytes,
                                              DoneCallback on_done) {
  const auto& bs = cf_.read(filename);
  return start(bs, estimate_cf2icap_streamed(bs.size_bytes, chunk_bytes),
               /*sdram_source=*/false, std::move(on_done));
}

sim::Cycles ReconfigManager::array2icap(const std::string& key,
                                        DoneCallback on_done) {
  const auto& bs = sdram_.read(key);
  return start(bs, estimate_array2icap(bs.size_bytes),
               /*sdram_source=*/true, std::move(on_done));
}

sim::Cycles ReconfigManager::cf2array(const std::string& filename,
                                      const std::string& key,
                                      DoneCallback on_done) {
  VAPRES_REQUIRE(!busy_, "reconfiguration path busy");
  const auto& bs = cf_.read(filename);
  const auto cycles = static_cast<sim::Cycles>(
      std::llround(estimate_cf2array_cycles(bs.size_bytes)));
  busy_ = true;
  auto bs_copy = bs;
  mb_.busy_for(cycles, [this, key, bs_copy = std::move(bs_copy),
                        on_done = std::move(on_done)]() {
    busy_ = false;
    sdram_.replace(key, bs_copy);
    if (on_done) on_done(ReconfigOutcome{});
  });
  return cycles;
}

}  // namespace vapres::core
