#include "core/channel.hpp"

#include "sim/check.hpp"

namespace vapres::core {

ChannelManager::ChannelManager(comm::SwitchFabric& fabric) : fabric_(fabric) {
  const int segments = fabric_.num_boxes() - 1;
  right_used_.assign(
      static_cast<std::size_t>(segments),
      std::vector<bool>(static_cast<std::size_t>(fabric_.shape().kr), false));
  left_used_.assign(
      static_cast<std::size_t>(segments),
      std::vector<bool>(static_cast<std::size_t>(fabric_.shape().kl), false));
}

int ChannelManager::num_segments() const { return fabric_.num_boxes() - 1; }

std::vector<bool>& ChannelManager::lane_table(int segment, bool rightward) {
  VAPRES_REQUIRE(segment >= 0 && segment < num_segments(),
                 "segment index out of range");
  return rightward ? right_used_[static_cast<std::size_t>(segment)]
                   : left_used_[static_cast<std::size_t>(segment)];
}

const std::vector<bool>& ChannelManager::lane_table(int segment,
                                                    bool rightward) const {
  VAPRES_REQUIRE(segment >= 0 && segment < num_segments(),
                 "segment index out of range");
  return rightward ? right_used_[static_cast<std::size_t>(segment)]
                   : left_used_[static_cast<std::size_t>(segment)];
}

int ChannelManager::free_lanes(int segment, bool rightward) const {
  int n = 0;
  for (bool used : lane_table(segment, rightward)) {
    if (!used) ++n;
  }
  return n;
}

int ChannelManager::physical_segment(const comm::RouteSpec& spec,
                                     int route_seg) const {
  return spec.rightward() ? spec.producer_box + route_seg
                          : spec.producer_box - 1 - route_seg;
}

std::optional<ChannelId> ChannelManager::establish(
    ChannelEndpoint producer, ChannelEndpoint consumer,
    comm::BackpressurePolicy policy) {
  VAPRES_REQUIRE(producer.box >= 0 && producer.box < fabric_.num_boxes(),
                 "producer box out of range");
  VAPRES_REQUIRE(consumer.box >= 0 && consumer.box < fabric_.num_boxes(),
                 "consumer box out of range");
  VAPRES_REQUIRE(
      producer.channel >= 0 && producer.channel < fabric_.shape().ko,
      "producer channel out of range");
  VAPRES_REQUIRE(
      consumer.channel >= 0 && consumer.channel < fabric_.shape().ki,
      "consumer channel out of range");
  // The routing layer only builds channels between distinct sites: the
  // priced switch-box connectivity has consumer outputs multiplexing the
  // inter-box lanes, not the site's own producers (see
  // flow::ResourceModel::switch_box_slices).
  VAPRES_REQUIRE(producer.box != consumer.box,
                 "streaming channels connect distinct PRRs/IOMs");

  if (producers_used_.count(producer) > 0 ||
      consumers_used_.count(consumer) > 0) {
    return std::nullopt;  // endpoint already carries a channel
  }

  comm::RouteSpec spec;
  spec.producer_box = producer.box;
  spec.producer_channel = producer.channel;
  spec.consumer_box = consumer.box;
  spec.consumer_channel = consumer.channel;

  // First-fit lane selection per segment; switch boxes can change lanes
  // at each hop, so segments are independent.
  const bool rightward = spec.rightward();
  for (int seg = 0; seg < spec.segments(); ++seg) {
    spec.lanes.push_back(-1);
    const auto& table = lane_table(physical_segment(spec, seg), rightward);
    for (std::size_t lane = 0; lane < table.size(); ++lane) {
      if (!table[lane]) {
        spec.lanes.back() = static_cast<int>(lane);
        break;
      }
    }
    if (spec.lanes.back() < 0) return std::nullopt;  // segment saturated
  }

  const comm::RouteId route = fabric_.establish(spec, policy);

  for (int seg = 0; seg < spec.segments(); ++seg) {
    lane_table(physical_segment(spec, seg), rightward)
        [static_cast<std::size_t>(spec.lanes[static_cast<std::size_t>(seg)])] =
            true;
  }
  producers_used_.insert(producer);
  consumers_used_.insert(consumer);

  const ChannelId id = next_id_++;
  channels_.emplace(id, Entry{route, std::move(spec)});
  return id;
}

void ChannelManager::release(ChannelId id) {
  auto it = channels_.find(id);
  VAPRES_REQUIRE(it != channels_.end(), "release of unknown channel");
  const Entry& entry = it->second;
  const comm::RouteSpec& spec = entry.spec;

  fabric_.release(entry.route);

  const bool rightward = spec.rightward();
  for (int seg = 0; seg < spec.segments(); ++seg) {
    lane_table(physical_segment(spec, seg), rightward)
        [static_cast<std::size_t>(spec.lanes[static_cast<std::size_t>(seg)])] =
            false;
  }
  producers_used_.erase(
      ChannelEndpoint{spec.producer_box, spec.producer_channel});
  consumers_used_.erase(
      ChannelEndpoint{spec.consumer_box, spec.consumer_channel});
  channels_.erase(it);
}

const comm::RouteSpec& ChannelManager::spec(ChannelId id) const {
  auto it = channels_.find(id);
  VAPRES_REQUIRE(it != channels_.end(), "unknown channel");
  return it->second.spec;
}

comm::RouteId ChannelManager::route(ChannelId id) const {
  auto it = channels_.find(id);
  VAPRES_REQUIRE(it != channels_.end(), "unknown channel");
  return it->second.route;
}

int ChannelManager::dcr_writes_for(const comm::RouteSpec& spec) {
  // One MUX_sel write per traversed box, plus consumer FIFO_wen and
  // producer FIFO_ren updates.
  return spec.hops() + 2;
}

}  // namespace vapres::core
