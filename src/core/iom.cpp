#include "core/iom.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace vapres::core {

Iom::Iom(std::string name, const RsbParams& params,
         sim::ClockDomain& static_domain, comm::SwitchBox* box)
    : name_(std::move(name)), domain_(static_domain) {
  width_bits_ = params.width_bits;
  std::vector<comm::ProducerInterface*> prods;
  std::vector<comm::ConsumerInterface*> cons;
  for (int c = 0; c < params.ko; ++c) {
    Source src;
    src.interface = std::make_unique<comm::ProducerInterface>(
        name_ + ".p" + std::to_string(c), params.fifo_depth,
        params.width_bits);
    prods.push_back(src.interface.get());
    sources_.push_back(std::move(src));
  }
  for (int c = 0; c < params.ki; ++c) {
    Sink snk;
    snk.interface = std::make_unique<comm::ConsumerInterface>(
        name_ + ".c" + std::to_string(c), params.fifo_depth);
    cons.push_back(snk.interface.get());
    sinks_.push_back(std::move(snk));
  }
  fsl_to_mb_ =
      std::make_unique<comm::FslLink>(name_ + ".r", params.fifo_depth);
  fsl_from_mb_ =
      std::make_unique<comm::FslLink>(name_ + ".t", params.fifo_depth);
  socket_ = std::make_unique<PrSocket>(
      name_ + ".socket", box, prods, cons, fsl_to_mb_.get(),
      fsl_from_mb_.get(), /*wrapper=*/nullptr, /*clock=*/nullptr);

  for (auto& s : sources_) domain_.attach(s.interface.get());
  for (auto& s : sinks_) domain_.attach(s.interface.get());
  domain_.attach(this);
  // A word landing in a sink FIFO (pushed by the consumer interface) must
  // re-arm the IOM's drain loop even when the IOM slept through it.
  for (auto& s : sinks_) s.interface->fifo().add_wake_target(this);
  // Space freeing up in a source FIFO unblocks a stalled pending word.
  for (auto& s : sources_) s.interface->fifo().add_wake_target(this);
}

Iom::~Iom() {
  domain_.detach(this);
  for (auto& s : sources_) domain_.detach(s.interface.get());
  for (auto& s : sinks_) domain_.detach(s.interface.get());
}

Iom::Source& Iom::source(int channel) {
  VAPRES_REQUIRE(channel >= 0 && channel < num_producers(),
                 name_ + ": producer channel out of range");
  return sources_[static_cast<std::size_t>(channel)];
}
const Iom::Source& Iom::source(int channel) const {
  VAPRES_REQUIRE(channel >= 0 && channel < num_producers(),
                 name_ + ": producer channel out of range");
  return sources_[static_cast<std::size_t>(channel)];
}
Iom::Sink& Iom::sink(int channel) {
  VAPRES_REQUIRE(channel >= 0 && channel < num_consumers(),
                 name_ + ": consumer channel out of range");
  return sinks_[static_cast<std::size_t>(channel)];
}
const Iom::Sink& Iom::sink(int channel) const {
  VAPRES_REQUIRE(channel >= 0 && channel < num_consumers(),
                 name_ + ": consumer channel out of range");
  return sinks_[static_cast<std::size_t>(channel)];
}

comm::ProducerInterface& Iom::producer(int channel) {
  return *source(channel).interface;
}

comm::ConsumerInterface& Iom::consumer(int channel) {
  return *sink(channel).interface;
}

void Iom::set_source_data(std::vector<comm::Word> data, int interval_cycles,
                          int channel) {
  auto cursor = std::make_shared<std::size_t>(0);
  auto shared = std::make_shared<std::vector<comm::Word>>(std::move(data));
  set_source_generator(
      [cursor, shared]() -> std::optional<comm::Word> {
        if (*cursor >= shared->size()) return std::nullopt;
        return (*shared)[(*cursor)++];
      },
      interval_cycles, channel);
}

void Iom::set_source_generator(
    std::function<std::optional<comm::Word>()> gen, int interval_cycles,
    int channel) {
  VAPRES_REQUIRE(interval_cycles >= 1, name_ + ": emit interval must be >= 1");
  Source& src = source(channel);
  src.generator = std::move(gen);
  src.interval_cycles = interval_cycles;
  src.next_emit_cycle = domain_.cycle_count();
  src.pending.reset();
  wake();
}

void Iom::stop_source(int channel) { source(channel).generator = nullptr; }

bool Iom::source_active(int channel) const {
  return source(channel).generator != nullptr;
}

std::uint64_t Iom::words_emitted(int channel) const {
  return source(channel).words_emitted;
}

std::uint64_t Iom::source_stall_cycles(int channel) const {
  return source(channel).stalls;
}

const std::vector<comm::Word>& Iom::received(int channel) const {
  return sink(channel).received;
}

std::vector<comm::Word> Iom::take_received(int channel) {
  Sink& snk = sink(channel);
  std::vector<comm::Word> out;
  out.swap(snk.received);
  snk.dropped += out.size();  // absolute indexing stays consistent
  return out;
}

std::uint64_t Iom::words_received(int channel) const {
  return sink(channel).words_received;
}

std::uint64_t Iom::received_dropped(int channel) const {
  return sink(channel).dropped;
}

void Iom::set_received_history_limit(std::size_t max_words) {
  history_limit_ = max_words;
}

std::uint64_t Iom::eos_seen(int channel) const {
  return sink(channel).eos_seen;
}

sim::Cycles Iom::max_output_gap(int channel) const {
  return sink(channel).max_gap;
}

void Iom::reset_gap_stats() {
  for (Sink& s : sinks_) {
    s.have_last_arrival = false;
    s.max_gap = 0;
  }
}

void Iom::reset_gap_stats(int channel) {
  Sink& s = sink(channel);
  s.have_last_arrival = false;
  s.max_gap = 0;
}

bool Iom::quiescent() const {
  for (const Source& src : sources_) {
    if (src.generator != nullptr || src.pending) return false;
  }
  for (const Sink& snk : sinks_) {
    if (!snk.interface->fifo().empty()) return false;
  }
  return true;
}

void Iom::commit() {
  const sim::Cycles now = domain_.cycle_count();

  // ---- Sources: one word per interval, external data does not wait ----
  for (Source& src : sources_) {
    if (src.generator == nullptr || now < src.next_emit_cycle) continue;
    if (!src.pending) {
      src.pending = src.generator();
      if (!src.pending) src.generator = nullptr;  // stream exhausted
    }
    if (src.pending) {
      if (!src.interface->fifo().full()) {
        src.interface->fifo().push(*src.pending);
        src.pending.reset();
        ++src.words_emitted;
        src.next_emit_cycle =
            now + static_cast<sim::Cycles>(src.interval_cycles);
      } else {
        // External sample arrived but the interface FIFO is full.
        ++src.stalls;
      }
    }
  }

  // ---- Sinks: drain one word per cycle per channel ---------------------
  for (Sink& snk : sinks_) {
    if (snk.interface->fifo().empty()) continue;
    const comm::Word w = snk.interface->fifo().pop();
    if (w == comm::eos_word(width_bits_)) {
      ++snk.eos_seen;
      if (fsl_to_mb_->can_write()) fsl_to_mb_->write(kIomEosDetected);
    } else {
      if (snk.have_last_arrival) {
        snk.max_gap = std::max(snk.max_gap, now - snk.last_arrival);
      }
      snk.last_arrival = now;
      snk.have_last_arrival = true;
      ++snk.words_received;
      snk.received.push_back(w);
      if (history_limit_ > 0 && snk.received.size() > history_limit_) {
        // Age out the older half in one move: O(1) amortized per word,
        // and the window never shrinks below half the limit.
        const std::size_t drop = snk.received.size() / 2;
        snk.received.erase(snk.received.begin(),
                           snk.received.begin() +
                               static_cast<std::ptrdiff_t>(drop));
        snk.dropped += drop;
      }
    }
  }
}

}  // namespace vapres::core
