// Hardware-module switching methodology (paper Section III.B.3, Figure 5).
//
// The ModuleSwitcher is the software side of the protocol, expressed as a
// SoftwareTask on the MicroBlaze. Given an active module in src_prr fed by
// an upstream channel and feeding a downstream channel, it replaces the
// module with `new_module_id` hosted in spare dst_prr, with these steps
// (circled numbers from Figure 5):
//
//   (3) reconfigure dst_prr while the module keeps processing — the
//       MicroBlaze is blocked in the driver, the stream is not;
//   (4) re-route the upstream channel from src's consumer to dst's
//       consumer (new input now buffers in dst's consumer FIFO; dst is
//       still held in reset);
//   (5) command src to drain: it processes its remaining consumer-FIFO
//       words and emits the end-of-stream word;
//   (6) collect src's state registers over its r-link;
//   (7) initialize dst with the state and release its reset;
//   (8) wait for the IOM to report the end-of-stream word;
//   (9) re-route the downstream channel from src's producer to dst's
//       producer, completing the switch; src is shut down.
//
// The new module is placed *outside* the processing path and joins it only
// after PR finished — the overlap that avoids stream interruption.
//
// Failure handling: if the PR of the spare PRR fails permanently (after
// the ReconfigManager's retries and source fallback), the switcher rolls
// back — it aborts before any re-routing happened, so the source module
// keeps streaming untouched (graceful degradation). The same overlap
// property that avoids stream interruption makes the rollback trivial:
// at the failure point the new module was never part of the path.
#pragma once

#include <string>
#include <vector>

#include "core/system.hpp"
#include "hwmodule/wrapper.hpp"
#include "obs/bus.hpp"
#include "proc/microblaze.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::core {

struct SwitchRequest {
  int rsb_index = 0;
  int src_prr = 0;
  int dst_prr = 1;
  std::string new_module_id;
  ChannelId upstream = 0;    ///< producer -> src consumer (to re-route)
  ChannelId downstream = 0;  ///< src producer -> consumer (to re-route)
  int eos_iom = 0;           ///< IOM that reports the EOS word (step 8)
  ReconfigSource source = ReconfigSource::kSdramArray;
};

class ModuleSwitcher final : public proc::SoftwareTask {
 public:
  ModuleSwitcher(VapresSystem& sys, SwitchRequest req);

  enum class State {
    kIdle,
    kReconfiguring,     // step 3
    kQuiesceUpstream,   // step 4 (flush in-flight words)
    kRerouteUpstream,   // step 4
    kSendFlush,         // step 5 trigger
    kCollectState,      // step 6
    kInitNewModule,     // step 7
    kWaitIomEos,        // step 8
    kQuiesceSrc,        // step 9 (flush)
    kRerouteDownstream, // step 9
    kDone,
    kAborted,           // PR of the spare failed; switch rolled back
  };

  /// Kicks off the protocol: registers this task with the MicroBlaze and
  /// starts the dst reconfiguration. The bitstream must be reachable for
  /// the chosen source (use VapresSystem::synthesize_to_cf /
  /// stage_to_sdram beforehand).
  void begin();

  bool step(proc::Microblaze& mb) override;
  std::string task_name() const override { return "module_switcher"; }

  State state() const { return state_; }
  bool done() const { return state_ == State::kDone; }
  /// The PR of the spare PRR failed permanently and the switch was rolled
  /// back: no channel moved, the source module keeps streaming.
  bool aborted() const { return state_ == State::kAborted; }
  /// Terminal either way (completed or rolled back).
  bool finished() const { return done() || aborted(); }

  /// MicroBlaze cycle stamps of protocol milestones (0 = not reached).
  struct Timeline {
    sim::Cycles started = 0;
    sim::Cycles reconfig_done = 0;
    sim::Cycles input_rerouted = 0;
    sim::Cycles state_collected = 0;
    sim::Cycles module_initialized = 0;
    sim::Cycles iom_eos_seen = 0;
    sim::Cycles completed = 0;
    sim::Cycles aborted = 0;  ///< rollback stamp (0 = never rolled back)
  };
  const Timeline& timeline() const { return timeline_; }

  /// State registers carried from the old module to the new one.
  const std::vector<comm::Word>& collected_state() const {
    return collected_state_;
  }
  /// Monitoring words received while waiting for the state frame.
  const std::vector<comm::Word>& skipped_monitoring() const {
    return monitoring_;
  }

  /// Channels after completion (the re-routed paths).
  ChannelId new_upstream() const { return new_upstream_; }
  ChannelId new_downstream() const { return new_downstream_; }

 private:
  // Warm restart journals the protocol state and rebuilds an equivalent
  // in-flight switcher on a fresh controller (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  Rsb& rsb() { return sys_.rsb(req_.rsb_index); }
  void reroute(ChannelId old_channel, ChannelEndpoint new_producer,
               ChannelEndpoint new_consumer, ChannelId& out,
               proc::Microblaze& mb, bool enable_producer);

  /// Closes the current step span (feeding its MicroBlaze-cycle duration
  /// to the per-step registry histogram) and opens the next one. Each of
  /// the nine protocol states is one named span on this switcher's track.
  void enter_step(std::uint16_t code);
  void close_step();

  VapresSystem& sys_;
  SwitchRequest req_;
  State state_ = State::kIdle;
  Timeline timeline_;
  bool reconfig_complete_ = false;
  bool reconfig_ok_ = true;
  std::vector<comm::Word> collected_state_;
  std::vector<comm::Word> monitoring_;
  // state-frame parsing
  bool saw_header_ = false;
  int expected_words_ = -1;
  ChannelId new_upstream_ = 0;
  ChannelId new_downstream_ = 0;
  // observability: one span per protocol step, on a per-switcher track
  obs::Span step_span_;
  std::uint16_t step_code_ = 0;
  std::uint32_t obs_track_ = 0;
  sim::Cycles step_begin_cycle_ = 0;
};

}  // namespace vapres::core
