// Partially reconfigurable region (PRR) site.
//
// One PRR bundles everything at its slot of the RSB: the reconfigurable
// rectangle on the fabric, its local clock domain and BUFR/BUFGMUX clock
// tree, its module-interface FIFOs, the asynchronous FSL pair to the
// MicroBlaze, the module wrapper hosting the currently loaded hardware
// module, and the PRSocket that lets software control all of it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "comm/fsl.hpp"
#include "comm/module_interface.hpp"
#include "core/params.hpp"
#include "core/perfcounter.hpp"
#include "core/prsocket.hpp"
#include "fabric/clocking.hpp"
#include "hwmodule/library.hpp"
#include "hwmodule/wrapper.hpp"
#include "sim/simulator.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::core {

class Prr {
 public:
  /// `box` is the paired switch box (for the socket); interfaces are
  /// created here and attached to fabric/domains by the owning RSB.
  Prr(std::string name, int index, const fabric::ClbRect& rect,
      const RsbParams& params, const fabric::DeviceGeometry& device,
      sim::Simulator& sim, sim::ClockDomain& static_domain,
      double clock_a_mhz, double clock_b_mhz, comm::SwitchBox* box);

  Prr(const Prr&) = delete;
  Prr& operator=(const Prr&) = delete;
  ~Prr();

  const std::string& name() const { return name_; }
  int index() const { return index_; }
  const fabric::ClbRect& rect() const { return rect_; }
  fabric::ResourceVector capacity() const { return rect_.resources(); }

  sim::ClockDomain& clock_domain() { return *domain_; }
  fabric::PrrClockTree& clock_tree() { return *clock_tree_; }

  comm::ConsumerInterface& consumer(int channel);
  comm::ProducerInterface& producer(int channel);
  int num_consumers() const { return static_cast<int>(consumers_.size()); }
  int num_producers() const { return static_cast<int>(producers_.size()); }

  comm::FslLink& fsl_to_mb() { return *fsl_to_mb_; }
  comm::FslLink& fsl_from_mb() { return *fsl_from_mb_; }

  hwmodule::ModuleWrapper& wrapper() { return *wrapper_; }
  PrSocket& socket() { return *socket_; }
  /// DCR-mapped stream counters (words in/out, stalls, discards summed
  /// across this PRR's channels). Mapped by the owning RSB next to the
  /// socket; read by StreamMonitor-style software over the bridge.
  PerfCounters& perf_counters() { return *perf_; }

  /// Applies a partial bitstream: validates it targets this PRR (name,
  /// rectangle, integrity tag) and instantiates the module from the
  /// library into the wrapper. This is the configuration *effect*; the
  /// reconfiguration *time* is charged by core::ReconfigManager.
  void apply_bitstream(const bitstream::PartialBitstream& bs,
                       const hwmodule::ModuleLibrary& library);

  const std::string& loaded_module() const { return loaded_module_; }
  bool occupied() const { return wrapper_->loaded(); }
  int reconfiguration_count() const { return reconfigurations_; }

 private:
  friend class ::vapres::snap::SystemSnapshot;

  std::string name_;
  int index_;
  fabric::ClbRect rect_;
  sim::ClockDomain* domain_;  // owned by the Simulator
  std::unique_ptr<fabric::PrrClockTree> clock_tree_;
  std::vector<std::unique_ptr<comm::ConsumerInterface>> consumers_;
  std::vector<std::unique_ptr<comm::ProducerInterface>> producers_;
  std::unique_ptr<comm::FslLink> fsl_to_mb_;
  std::unique_ptr<comm::FslLink> fsl_from_mb_;
  std::unique_ptr<hwmodule::ModuleWrapper> wrapper_;
  std::unique_ptr<PrSocket> socket_;
  std::unique_ptr<PerfCounters> perf_;
  sim::ClockDomain* static_domain_;
  std::string loaded_module_;
  int reconfigurations_ = 0;
};

}  // namespace vapres::core
