#include "core/monitor.hpp"

#include "sim/check.hpp"

namespace vapres::core {

ThresholdTrigger::ThresholdTrigger(comm::Word high, comm::Word low,
                                   int persistence)
    : high_(high), low_(low), persistence_(persistence) {
  VAPRES_REQUIRE(low <= high, "hysteresis band inverted");
  VAPRES_REQUIRE(persistence >= 1, "persistence must be >= 1");
}

bool ThresholdTrigger::operator()(comm::Word sample) {
  if (sample >= high_) {
    below_count_ = 0;
    if (++above_count_ >= persistence_ && armed_) {
      armed_ = false;
      return true;
    }
    return false;
  }
  above_count_ = 0;
  if (sample <= low_) {
    if (++below_count_ >= persistence_) armed_ = true;
  } else {
    below_count_ = 0;
  }
  return false;
}

StreamMonitor::StreamMonitor(std::string name, comm::FslLink& rlink,
                             Trigger trigger, Action action)
    : name_(std::move(name)),
      rlink_(rlink),
      trigger_(std::move(trigger)),
      action_(std::move(action)) {
  VAPRES_REQUIRE(trigger_ != nullptr && action_ != nullptr,
                 name_ + ": monitor needs trigger and action");
}

void StreamMonitor::start_polling(proc::Microblaze& mb) {
  mb.add_task(this);
}

int StreamMonitor::register_interrupt(proc::InterruptController& intc) {
  const int irq = intc.add_source(
      name_, [this] { return rlink_.can_read(); });
  intc.enable(irq);
  return irq;
}

bool StreamMonitor::service(proc::Microblaze& mb) {
  bool fired_now = false;
  while (auto w = rlink_.try_read()) {
    mb.busy_for(1);
    if ((*w & 0xFFFF0000u) == 0xC0DE0000u) continue;  // protocol words
    ++words_seen_;
    if (!fired_ && trigger_(*w)) {
      fired_ = true;
      fired_now = true;
      action_();
    }
  }
  return fired_now;
}

bool StreamMonitor::step(proc::Microblaze& mb) {
  service(mb);
  // One-shot: deschedule after firing.
  return fired_;
}

DcrCounterMonitor::DcrCounterMonitor(std::string name,
                                     comm::DcrAddress perf_address,
                                     comm::DcrValue counter_select,
                                     Trigger trigger, Action action,
                                     int period_quanta)
    : name_(std::move(name)),
      address_(perf_address),
      select_(counter_select),
      trigger_(std::move(trigger)),
      action_(std::move(action)),
      period_(period_quanta) {
  VAPRES_REQUIRE(trigger_ != nullptr && action_ != nullptr,
                 name_ + ": monitor needs trigger and action");
  VAPRES_REQUIRE(period_quanta >= 1,
                 name_ + ": sampling period must be >= 1 quanta");
}

void DcrCounterMonitor::start_polling(proc::Microblaze& mb) {
  mb.add_task(this);
}

bool DcrCounterMonitor::step(proc::Microblaze& mb) {
  if (countdown_ > 0) {
    --countdown_;
    return fired_;
  }
  countdown_ = period_ - 1;

  // Another task may have re-pointed the shared select register since
  // our last sample; always re-select before reading.
  mb.dcr_write(address_, select_);
  const comm::DcrValue raw = mb.dcr_read(address_);
  // Unsigned 32-bit subtraction: correct across counter wrap.
  const comm::DcrValue delta = raw - last_raw_;
  last_raw_ = raw;
  if (!primed_) {
    primed_ = true;
    return fired_;
  }
  ++samples_;
  if (!fired_ && trigger_(delta)) {
    fired_ = true;
    action_();
  }
  return fired_;
}

}  // namespace vapres::core
