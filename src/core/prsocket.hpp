// PRSocket (paper Figure 3 / Table 1).
//
// One PRSocket per switch-box/PRR (or switch-box/IOM) pair. It is a DCR
// slave through which the MicroBlaze controls everything at that site:
//
//   bit 0  SM_en      slice-macro isolation between PRR and static region
//   bit 1  PRR_reset  reset of the hardware module inside the PRR
//   bit 2  FIFO_reset reset of the module-interface FIFOs
//   bit 3  FSL_reset  reset of the FSL FIFOs
//   bit 4  FIFO_wen   switch box may write into the consumer interface
//   bit 5  FIFO_ren   switch box may read from the producer interface
//   bit 6  CLK_en     PRR clock enable (BUFR gate)
//   bit 7  CLK_sel    BUFGMUX select for the PRR clock
//   bit 8+ MUX_sel    switch-box output multiplexer selects
//
// MUX_sel packing: output port p occupies a field of sel_bits() bits
// starting at bit 8 + p * sel_bits(); field value 0 parks the output,
// value v >= 1 selects registered input v-1.
#pragma once

#include <string>
#include <vector>

#include "comm/dcr.hpp"
#include "comm/fsl.hpp"
#include "comm/module_interface.hpp"
#include "comm/switch_box.hpp"
#include "fabric/clocking.hpp"
#include "hwmodule/wrapper.hpp"

namespace vapres::core {

class PrSocket final : public comm::DcrSlave {
 public:
  /// All pointers are non-owning; null is allowed where the site has no
  /// such component (IOM sockets have no wrapper or clock tree).
  PrSocket(std::string name, comm::SwitchBox* box,
           std::vector<comm::ProducerInterface*> producers,
           std::vector<comm::ConsumerInterface*> consumers,
           comm::FslLink* fsl_to_mb, comm::FslLink* fsl_from_mb,
           hwmodule::ModuleWrapper* wrapper, fabric::PrrClockTree* clock);

  // Bit positions (Table 1).
  static constexpr comm::DcrValue kSmEn = 1u << 0;
  static constexpr comm::DcrValue kPrrReset = 1u << 1;
  static constexpr comm::DcrValue kFifoReset = 1u << 2;
  static constexpr comm::DcrValue kFslReset = 1u << 3;
  static constexpr comm::DcrValue kFifoWen = 1u << 4;
  static constexpr comm::DcrValue kFifoRen = 1u << 5;
  static constexpr comm::DcrValue kClkEn = 1u << 6;
  static constexpr comm::DcrValue kClkSel = 1u << 7;
  static constexpr int kMuxSelBase = 8;

  /// Bits per MUX_sel field for this socket's switch box.
  int sel_bits() const { return sel_bits_; }

  /// Encodes a MUX_sel field update into a DCR value: current value with
  /// output `port`'s field set to select `input` (-1 parks).
  comm::DcrValue with_mux_sel(comm::DcrValue current, int output_port,
                              int input) const;

  // DcrSlave
  comm::DcrValue dcr_read() const override { return value_; }
  void dcr_write(comm::DcrValue value) override;
  std::string dcr_name() const override { return name_; }

  /// Convenience for software: read-modify-write single control bits.
  comm::DcrValue value() const { return value_; }

 private:
  void apply(comm::DcrValue old_value, comm::DcrValue new_value);

  std::string name_;
  comm::SwitchBox* box_;
  std::vector<comm::ProducerInterface*> producers_;
  std::vector<comm::ConsumerInterface*> consumers_;
  comm::FslLink* fsl_to_mb_;
  comm::FslLink* fsl_from_mb_;
  hwmodule::ModuleWrapper* wrapper_;
  fabric::PrrClockTree* clock_;
  int sel_bits_ = 0;
  comm::DcrValue value_ = 0;
};

}  // namespace vapres::core
