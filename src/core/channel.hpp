// Streaming-channel establishment (Table 2: vapres_establish_channel).
//
// The ChannelManager is the model of the software routing layer: it keeps
// the comm_state the paper's API threads through calls — which inter-box
// lanes are free on every segment, and which module endpoints are in use —
// picks a lane per segment (first-fit; switch boxes can change lanes at
// every hop because each output mux sees all registered inputs), and
// drives the SwitchFabric to program the path. Establishment *fails
// softly* (returns nullopt, the paper's "returns zero") when some segment
// has no free lane in the needed direction or an endpoint is busy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "comm/switch_fabric.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::core {

struct ChannelEndpoint {
  int box = 0;
  int channel = 0;

  friend constexpr auto operator<=>(const ChannelEndpoint&,
                                    const ChannelEndpoint&) = default;
};

using ChannelId = std::uint32_t;

class ChannelManager {
 public:
  explicit ChannelManager(comm::SwitchFabric& fabric);

  /// Establishes a streaming channel from `producer` to `consumer`.
  /// Returns nullopt (no side effects) when no route capacity exists.
  std::optional<ChannelId> establish(
      ChannelEndpoint producer, ChannelEndpoint consumer,
      comm::BackpressurePolicy policy =
          comm::BackpressurePolicy::kPipelineDepth);

  /// Releases a channel, freeing its lanes and endpoints.
  void release(ChannelId id);

  bool active(ChannelId id) const { return channels_.count(id) > 0; }
  std::size_t active_count() const { return channels_.size(); }

  const comm::RouteSpec& spec(ChannelId id) const;
  comm::RouteId route(ChannelId id) const;

  /// Free lanes on physical segment `segment` (between boxes segment and
  /// segment+1) in the given direction.
  int free_lanes(int segment, bool rightward) const;
  int num_segments() const;

  /// PRSocket DCR writes software performs to program a path: one MUX_sel
  /// write per traversed switch box plus the endpoint wen/ren writes.
  static int dcr_writes_for(const comm::RouteSpec& spec);

 private:
  // Checkpoint/restore re-registers channels under their original ids
  // with their exact saved route specs — replaying establish() could
  // pick different lanes than the saved interleaving of establishes and
  // releases did (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  struct Entry {
    comm::RouteId route = 0;
    comm::RouteSpec spec;
  };

  int physical_segment(const comm::RouteSpec& spec, int route_seg) const;
  std::vector<bool>& lane_table(int segment, bool rightward);
  const std::vector<bool>& lane_table(int segment, bool rightward) const;

  comm::SwitchFabric& fabric_;
  std::vector<std::vector<bool>> right_used_;  // [segment][lane]
  std::vector<std::vector<bool>> left_used_;
  std::set<ChannelEndpoint> producers_used_;
  std::set<ChannelEndpoint> consumers_used_;
  std::map<ChannelId, Entry> channels_;
  ChannelId next_id_ = 1;
};

}  // namespace vapres::core
