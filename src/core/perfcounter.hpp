// DCR-mapped per-site performance counters.
//
// The PRSocket gives software *control* over a site (Table 1 bits);
// this unit gives software *visibility*: four free-running stream
// counters behind one DCR register, mapped next to the socket. A DCR
// write selects which counter the register exposes; a DCR read returns
// the selected counter's low 32 bits. Counters wrap naturally at 2^32
// — readers compute deltas with unsigned 32-bit subtraction, so wrap
// costs nothing (DcrCounterMonitor in core/monitor.hpp does exactly
// that before feeding samples to a ThresholdTrigger).
//
// Counter values come from `Source` callables wired by the owning PRR
// (producer words-sent, consumer words-received, producer stall
// cycles, consumer words-discarded); tests can wire arbitrary fakes to
// exercise wrap behaviour without simulating 2^32 words.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "comm/dcr.hpp"

namespace vapres::core {

class PerfCounters final : public comm::DcrSlave {
 public:
  using Source = std::function<std::uint64_t()>;

  /// Counter selectors (DCR write values).
  enum Select : comm::DcrValue {
    kSelWordsOut = 0,     ///< producer words drained onto the fabric
    kSelWordsIn = 1,      ///< consumer words accepted into the FIFO
    kSelStallCycles = 2,  ///< producer cycles blocked on feedback-full
    kSelDiscarded = 3,    ///< consumer words dropped on a full FIFO
    kNumSelects = 4,
  };

  explicit PerfCounters(std::string name) : name_(std::move(name)) {}

  /// Wires the value source for one selector. Unwired selectors read 0.
  void set_source(Select sel, Source source);

  /// Full 64-bit value of one counter (model-side, not DCR-visible).
  std::uint64_t raw(Select sel) const;

  /// DCR read: low 32 bits of the selected counter (wrapping).
  comm::DcrValue dcr_read() const override;
  /// DCR write: selects the counter exposed by subsequent reads.
  /// Out-of-range selects are ignored (the register keeps its value).
  void dcr_write(comm::DcrValue value) override;
  std::string dcr_name() const override { return name_; }

  Select selected() const { return select_; }

 private:
  std::string name_;
  std::array<Source, kNumSelects> sources_{};
  Select select_ = kSelWordsOut;
};

}  // namespace vapres::core
