// Stream-monitoring framework (Figure 5, step 2).
//
// "While filter A processes data, filter A periodically sends monitoring
// information about input data characteristics through r1 to the
// Microblaze processor. The Microblaze evaluates this monitoring
// information to determine if filter B would better meet the design
// constraints." StreamMonitor is that software module, factored out of
// application code: it drains a module's r-link (polling as a task, or
// interrupt-driven through the intc), feeds each monitoring word to a
// trigger predicate, and fires a one-shot action when the predicate
// trips. ThresholdTrigger provides the standard predicate: level
// crossing with hysteresis and a minimum-persistence count, so noise
// does not cause spurious module switches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "comm/dcr.hpp"
#include "comm/fsl.hpp"
#include "proc/interrupt.hpp"
#include "proc/microblaze.hpp"

namespace vapres::core {

/// Level-crossing trigger with hysteresis and persistence: fires after
/// `persistence` consecutive samples >= `high`; re-arms after
/// `persistence` consecutive samples <= `low`.
class ThresholdTrigger {
 public:
  ThresholdTrigger(comm::Word high, comm::Word low, int persistence = 1);

  /// Returns true exactly once per excursion above the threshold.
  bool operator()(comm::Word sample);

  bool armed() const { return armed_; }

 private:
  comm::Word high_;
  comm::Word low_;
  int persistence_;
  int above_count_ = 0;
  int below_count_ = 0;
  bool armed_ = true;
};

/// Watches one r-link for monitoring words and fires `action` when
/// `trigger` returns true. Control-range words (0xC0DExxxx) are ignored
/// — they belong to the wrapper protocol, not to monitoring.
class StreamMonitor final : public proc::SoftwareTask {
 public:
  using Trigger = std::function<bool(comm::Word)>;
  using Action = std::function<void()>;

  StreamMonitor(std::string name, comm::FslLink& rlink, Trigger trigger,
                Action action);

  /// Registers as a polling task on `mb` (one quantum per idle cycle).
  void start_polling(proc::Microblaze& mb);

  /// Registers interrupt-driven: the monitor's FSL level becomes an intc
  /// source and words are handled from the ISR — no polling quanta.
  /// Requires mb.attach_interrupts to have been wired to `intc` with a
  /// handler that calls `service()` for this monitor's irq.
  int register_interrupt(proc::InterruptController& intc);

  /// Drains available words, evaluating the trigger; used by both modes.
  /// Returns true if the action fired.
  bool service(proc::Microblaze& mb);

  bool step(proc::Microblaze& mb) override;
  std::string task_name() const override { return name_; }

  bool fired() const { return fired_; }
  std::uint64_t words_seen() const { return words_seen_; }

 private:
  std::string name_;
  comm::FslLink& rlink_;
  Trigger trigger_;
  Action action_;
  bool fired_ = false;
  std::uint64_t words_seen_ = 0;
};

/// Periodic sampler over a PRR's DCR-mapped performance counters
/// (core/perfcounter.hpp): every `period_quanta` task quanta it selects
/// the counter over the PLB-to-DCR bridge, reads the 32-bit value, and
/// feeds the *delta since the previous read* to the trigger. The delta
/// is computed with unsigned 32-bit subtraction, so a counter wrapping
/// past 2^32 between samples still yields the correct rate. The first
/// read only primes the baseline; no trigger evaluation happens on it.
class DcrCounterMonitor final : public proc::SoftwareTask {
 public:
  using Trigger = std::function<bool(comm::Word)>;
  using Action = std::function<void()>;

  DcrCounterMonitor(std::string name, comm::DcrAddress perf_address,
                    comm::DcrValue counter_select, Trigger trigger,
                    Action action, int period_quanta = 64);

  /// Registers as a polling task on `mb`.
  void start_polling(proc::Microblaze& mb);

  /// One quantum: either burns down the sampling period or performs a
  /// select-write + value-read over the bridge and evaluates the
  /// trigger. One-shot: the task deschedules after the action fires.
  bool step(proc::Microblaze& mb) override;
  std::string task_name() const override { return name_; }

  bool fired() const { return fired_; }
  std::uint64_t samples() const { return samples_; }
  comm::DcrValue last_raw() const { return last_raw_; }

 private:
  std::string name_;
  comm::DcrAddress address_;
  comm::DcrValue select_;
  Trigger trigger_;
  Action action_;
  int period_;
  int countdown_ = 0;
  bool primed_ = false;
  bool fired_ = false;
  comm::DcrValue last_raw_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace vapres::core
