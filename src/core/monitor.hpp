// Stream-monitoring framework (Figure 5, step 2).
//
// "While filter A processes data, filter A periodically sends monitoring
// information about input data characteristics through r1 to the
// Microblaze processor. The Microblaze evaluates this monitoring
// information to determine if filter B would better meet the design
// constraints." StreamMonitor is that software module, factored out of
// application code: it drains a module's r-link (polling as a task, or
// interrupt-driven through the intc), feeds each monitoring word to a
// trigger predicate, and fires a one-shot action when the predicate
// trips. ThresholdTrigger provides the standard predicate: level
// crossing with hysteresis and a minimum-persistence count, so noise
// does not cause spurious module switches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "comm/fsl.hpp"
#include "proc/interrupt.hpp"
#include "proc/microblaze.hpp"

namespace vapres::core {

/// Level-crossing trigger with hysteresis and persistence: fires after
/// `persistence` consecutive samples >= `high`; re-arms after
/// `persistence` consecutive samples <= `low`.
class ThresholdTrigger {
 public:
  ThresholdTrigger(comm::Word high, comm::Word low, int persistence = 1);

  /// Returns true exactly once per excursion above the threshold.
  bool operator()(comm::Word sample);

  bool armed() const { return armed_; }

 private:
  comm::Word high_;
  comm::Word low_;
  int persistence_;
  int above_count_ = 0;
  int below_count_ = 0;
  bool armed_ = true;
};

/// Watches one r-link for monitoring words and fires `action` when
/// `trigger` returns true. Control-range words (0xC0DExxxx) are ignored
/// — they belong to the wrapper protocol, not to monitoring.
class StreamMonitor final : public proc::SoftwareTask {
 public:
  using Trigger = std::function<bool(comm::Word)>;
  using Action = std::function<void()>;

  StreamMonitor(std::string name, comm::FslLink& rlink, Trigger trigger,
                Action action);

  /// Registers as a polling task on `mb` (one quantum per idle cycle).
  void start_polling(proc::Microblaze& mb);

  /// Registers interrupt-driven: the monitor's FSL level becomes an intc
  /// source and words are handled from the ISR — no polling quanta.
  /// Requires mb.attach_interrupts to have been wired to `intc` with a
  /// handler that calls `service()` for this monitor's irq.
  int register_interrupt(proc::InterruptController& intc);

  /// Drains available words, evaluating the trigger; used by both modes.
  /// Returns true if the action fired.
  bool service(proc::Microblaze& mb);

  bool step(proc::Microblaze& mb) override;
  std::string task_name() const override { return name_; }

  bool fired() const { return fired_; }
  std::uint64_t words_seen() const { return words_seen_; }

 private:
  std::string name_;
  comm::FslLink& rlink_;
  Trigger trigger_;
  Action action_;
  bool fired_ = false;
  std::uint64_t words_seen_ = 0;
};

}  // namespace vapres::core
