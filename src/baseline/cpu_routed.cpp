#include "baseline/cpu_routed.hpp"

#include "sim/check.hpp"

namespace vapres::baseline {

CpuRoutedLink::CpuRoutedLink(std::string name, comm::FslLink& from,
                             comm::FslLink& to, int cycles_per_word)
    : name_(std::move(name)),
      from_(from),
      to_(to),
      cycles_per_word_(cycles_per_word) {
  VAPRES_REQUIRE(cycles_per_word_ >= 1, name_ + ": cost must be >= 1");
}

bool CpuRoutedLink::step(proc::Microblaze& mb) {
  if (from_.can_read() && to_.can_write()) {
    to_.write(from_.read());
    ++words_;
    mb.busy_for(static_cast<sim::Cycles>(cycles_per_word_));
  }
  return false;  // routes forever; remove via Microblaze::remove_task
}

}  // namespace vapres::baseline
