// Processor-routed communication baseline (Ullmann et al., paper
// Section II): "the communication architecture required all communication
// between PRRs to be routed through the Microblaze".
//
// A CpuRoutedLink is a software task that shovels stream words from one
// module's r-link to another module's t-link. Each word costs the
// FSL-get / FSL-put instruction pair plus loop overhead on the processor,
// and the processor is a single shared resource — with L links active,
// per-link throughput is clock / (L * cycles_per_word), far below a
// dedicated switch-box channel's word per cycle.
#pragma once

#include <cstdint>
#include <string>

#include "comm/fsl.hpp"
#include "proc/microblaze.hpp"

namespace vapres::baseline {

class CpuRoutedLink final : public proc::SoftwareTask {
 public:
  /// Default per-word software cost: fsl get + fsl put + branch/loop.
  static constexpr int kDefaultCyclesPerWord = 6;

  CpuRoutedLink(std::string name, comm::FslLink& from, comm::FslLink& to,
                int cycles_per_word = kDefaultCyclesPerWord);

  bool step(proc::Microblaze& mb) override;
  std::string task_name() const override { return name_; }

  std::uint64_t words_routed() const { return words_; }

 private:
  std::string name_;
  comm::FslLink& from_;
  comm::FslLink& to_;
  int cycles_per_word_;
  std::uint64_t words_ = 0;
};

}  // namespace vapres::baseline
