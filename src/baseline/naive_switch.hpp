// Halt-and-reconfigure switching baseline (paper Section III.B.3's
// problem statement: "PR imposes stream processing interruption because
// the reconfigured PRR must halt operation as the new hardware module is
// loaded").
//
// The NaiveSwitcher replaces the module *in place*: it quiesces the
// stream, saves state, isolates and reconfigures the same PRR, restores
// state and resumes. The output stream gaps for (at least) the whole
// reconfiguration; upstream FIFOs can only absorb fifo_depth words.
// Benchmarked head-to-head against core::ModuleSwitcher in
// bench_switching (experiment E3).
#pragma once

#include <string>
#include <vector>

#include "core/switching.hpp"
#include "core/system.hpp"
#include "proc/microblaze.hpp"

namespace vapres::baseline {

struct NaiveSwitchRequest {
  int rsb_index = 0;
  int prr = 0;  ///< the module is replaced in this same PRR
  std::string new_module_id;
  core::ChannelId upstream = 0;
  core::ChannelId downstream = 0;
  core::ReconfigSource source = core::ReconfigSource::kSdramArray;
};

class NaiveSwitcher final : public proc::SoftwareTask {
 public:
  NaiveSwitcher(core::VapresSystem& sys, NaiveSwitchRequest req);

  enum class State {
    kIdle,
    kQuiesce,       // stop upstream, drain the module
    kCollectState,  // save state registers
    kReconfigure,   // PR of the same PRR (stream halted!)
    kRestore,       // load state, resume
    kDone,
  };

  void begin();
  bool step(proc::Microblaze& mb) override;
  std::string task_name() const override { return "naive_switcher"; }

  State state() const { return state_; }
  bool done() const { return state_ == State::kDone; }

  struct Timeline {
    sim::Cycles started = 0;
    sim::Cycles halted = 0;        ///< stream stopped flowing
    sim::Cycles reconfig_done = 0;
    sim::Cycles resumed = 0;       ///< stream flowing again
  };
  const Timeline& timeline() const { return timeline_; }

  /// Analytic model: output-gap cycles for a halt-and-reconfigure switch.
  /// The gap is the drain+save+restore overhead plus the full
  /// reconfiguration; upstream FIFO capacity does not help the *output*
  /// side because the module producing output is the one being replaced.
  static double predicted_gap_cycles(double reconfig_cycles,
                                     double protocol_overhead_cycles = 100.0);

 private:
  core::Rsb& rsb() { return sys_.rsb(req_.rsb_index); }

  core::VapresSystem& sys_;
  NaiveSwitchRequest req_;
  State state_ = State::kIdle;
  Timeline timeline_;
  bool reconfig_complete_ = false;
  bool saw_header_ = false;
  int expected_words_ = -1;
  std::vector<comm::Word> collected_state_;
};

}  // namespace vapres::baseline
