// Shared time-multiplexed bus baseline (Sonic-on-a-Chip, Sedcole et al.,
// paper Section II).
//
// The comparison architecture establishes channels by allocating slots on
// one time-multiplexed bus shared by all module pairs; long bus routing
// limited its clock to 50 MHz where VAPRES' pipelined switch boxes run at
// 100 MHz. The model: one transfer per bus cycle, slots round-robin over
// the registered channels, so per-channel throughput is
// bus_clock / active_channels — the crossover bench_comm_throughput
// reproduces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/fifo.hpp"
#include "sim/clock.hpp"
#include "sim/component.hpp"

namespace vapres::baseline {

class SharedBus final : public sim::Clocked {
 public:
  /// The reported Sonic-on-a-Chip bus clock.
  static constexpr double kDefaultBusClockMhz = 50.0;

  SharedBus(std::string name, sim::ClockDomain& bus_domain);
  ~SharedBus() override;

  SharedBus(const SharedBus&) = delete;
  SharedBus& operator=(const SharedBus&) = delete;

  std::string name() const override { return name_; }

  /// Registers a channel moving words from `src` to `dst`. Returns the
  /// slot id. FIFOs are not owned.
  int add_channel(comm::Fifo* src, comm::Fifo* dst);
  void remove_channel(int slot);

  int active_channels() const;
  std::uint64_t words_transferred(int slot) const;
  std::uint64_t total_words() const { return total_words_; }

  void eval() override {}
  void commit() override;

 private:
  struct Slot {
    comm::Fifo* src = nullptr;
    comm::Fifo* dst = nullptr;
    std::uint64_t words = 0;
    bool active = false;
  };

  std::string name_;
  sim::ClockDomain& domain_;
  std::vector<Slot> slots_;
  std::size_t next_slot_ = 0;
  std::uint64_t total_words_ = 0;
};

}  // namespace vapres::baseline
