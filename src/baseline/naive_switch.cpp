#include "baseline/naive_switch.hpp"

#include "bitstream/bitgen.hpp"
#include "sim/check.hpp"

namespace vapres::baseline {

namespace ctrl = hwmodule::ctrl;
using core::PrSocket;

NaiveSwitcher::NaiveSwitcher(core::VapresSystem& sys, NaiveSwitchRequest req)
    : sys_(sys), req_(std::move(req)) {
  VAPRES_REQUIRE(sys_.library().contains(req_.new_module_id),
                 "unknown module: " + req_.new_module_id);
}

void NaiveSwitcher::begin() {
  VAPRES_REQUIRE(state_ == State::kIdle, "switcher already started");
  core::Rsb& r = rsb();
  VAPRES_REQUIRE(r.channels().active(req_.upstream) &&
                     r.channels().active(req_.downstream),
                 "request channels are not active");
  timeline_.started = sys_.mb().cycle();

  // Halt the stream: stop the upstream producer feeding this module.
  const auto& up = r.channels().spec(req_.upstream);
  sys_.socket_set_bits(r.socket_address(up.producer_box),
                       PrSocket::kFifoRen, false);
  // Ask the module to drain whatever it already has and emit its state.
  comm::FslLink& t = r.prr(req_.prr).fsl_from_mb();
  t.write(ctrl::kCmdFlush);
  saw_header_ = false;
  expected_words_ = -1;
  state_ = State::kCollectState;
  sys_.mb().add_task(this);
}

bool NaiveSwitcher::step(proc::Microblaze& mb) {
  core::Rsb& r = rsb();
  switch (state_) {
    case State::kIdle:
    case State::kQuiesce:
      return false;

    case State::kCollectState: {
      comm::FslLink& rl = r.prr(req_.prr).fsl_to_mb();
      while (auto w = rl.try_read()) {
        mb.busy_for(1);
        if (!saw_header_) {
          if (*w == ctrl::kStateHeader) saw_header_ = true;
        } else if (expected_words_ < 0) {
          expected_words_ = static_cast<int>(*w);
        } else {
          collected_state_.push_back(*w);
        }
        if (saw_header_ && expected_words_ >= 0 &&
            static_cast<int>(collected_state_.size()) == expected_words_) {
          timeline_.halted = mb.cycle();
          // Isolate and gate the PRR, then reconfigure it in place. The
          // stream is dead from here until kRestore completes.
          const comm::DcrAddress sock = r.prr_socket_address(req_.prr);
          mb.dcr_write(sock, (mb.dcr_read(sock) | PrSocket::kPrrReset) &
                                 ~(PrSocket::kSmEn | PrSocket::kClkEn));
          reconfig_complete_ = false;
          auto on_done = [this](const core::ReconfigOutcome&) {
            reconfig_complete_ = true;
          };
          if (req_.source == core::ReconfigSource::kSdramArray) {
            sys_.reconfig().array2icap(
                req_.new_module_id + "@" + r.prr(req_.prr).name(), on_done);
          } else {
            sys_.reconfig().cf2icap(
                bitstream::bitstream_filename(req_.new_module_id,
                                              r.prr(req_.prr).name()),
                on_done);
          }
          state_ = State::kReconfigure;
          return false;
        }
      }
      return false;
    }

    case State::kReconfigure: {
      if (!reconfig_complete_) return false;
      timeline_.reconfig_done = mb.cycle();
      // Bring the site back up with the module held in reset, queue the
      // state restore, then release reset and the upstream producer.
      const comm::DcrAddress sock = r.prr_socket_address(req_.prr);
      mb.dcr_write(sock, mb.dcr_read(sock) | PrSocket::kSmEn |
                             PrSocket::kClkEn | PrSocket::kFifoWen |
                             PrSocket::kPrrReset);
      comm::FslLink& t = r.prr(req_.prr).fsl_from_mb();
      t.write(ctrl::kCmdLoadState);
      t.write(static_cast<comm::Word>(collected_state_.size()));
      for (comm::Word w : collected_state_) t.write(w);
      mb.busy_for(static_cast<sim::Cycles>(collected_state_.size()) + 2);
      state_ = State::kRestore;
      return false;
    }

    case State::kRestore: {
      core::Rsb& rb = rsb();
      const comm::DcrAddress sock = rb.prr_socket_address(req_.prr);
      mb.dcr_write(sock, (mb.dcr_read(sock) & ~PrSocket::kPrrReset) |
                             PrSocket::kFifoRen);
      const auto& up = rb.channels().spec(req_.upstream);
      sys_.socket_set_bits(rb.socket_address(up.producer_box),
                           PrSocket::kFifoRen, true);
      timeline_.resumed = mb.cycle();
      state_ = State::kDone;
      return true;
    }

    case State::kDone:
      return true;
  }
  return false;
}

double NaiveSwitcher::predicted_gap_cycles(double reconfig_cycles,
                                           double protocol_overhead_cycles) {
  return reconfig_cycles + protocol_overhead_cycles;
}

}  // namespace vapres::baseline
