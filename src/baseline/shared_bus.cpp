#include "baseline/shared_bus.hpp"

#include "sim/check.hpp"

namespace vapres::baseline {

SharedBus::SharedBus(std::string name, sim::ClockDomain& bus_domain)
    : name_(std::move(name)), domain_(bus_domain) {
  domain_.attach(this);
}

SharedBus::~SharedBus() { domain_.detach(this); }

int SharedBus::add_channel(comm::Fifo* src, comm::Fifo* dst) {
  VAPRES_REQUIRE(src != nullptr && dst != nullptr,
                 name_ + ": bus channel needs both FIFOs");
  slots_.push_back(Slot{src, dst, 0, true});
  return static_cast<int>(slots_.size()) - 1;
}

void SharedBus::remove_channel(int slot) {
  VAPRES_REQUIRE(slot >= 0 && slot < static_cast<int>(slots_.size()),
                 name_ + ": bad bus slot");
  slots_[static_cast<std::size_t>(slot)].active = false;
}

int SharedBus::active_channels() const {
  int n = 0;
  for (const Slot& s : slots_) {
    if (s.active) ++n;
  }
  return n;
}

std::uint64_t SharedBus::words_transferred(int slot) const {
  VAPRES_REQUIRE(slot >= 0 && slot < static_cast<int>(slots_.size()),
                 name_ + ": bad bus slot");
  return slots_[static_cast<std::size_t>(slot)].words;
}

void SharedBus::commit() {
  if (slots_.empty()) return;
  // One bus cycle = one slot's turn (TDM). The slot transfers one word if
  // it can; an idle slot's turn is wasted, as on the real bus.
  for (std::size_t tried = 0; tried < slots_.size(); ++tried) {
    Slot& slot = slots_[next_slot_];
    next_slot_ = (next_slot_ + 1) % slots_.size();
    if (!slot.active) continue;  // de-allocated slots are reclaimed
    if (!slot.src->empty() && !slot.dst->full()) {
      slot.dst->push(slot.src->pop());
      ++slot.words;
      ++total_words_;
    }
    return;  // exactly one slot serviced per bus cycle
  }
}

}  // namespace vapres::baseline
