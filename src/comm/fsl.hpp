// FSL (Fast Simplex Link) model.
//
// PRRs interface with the MicroBlaze through *asynchronous* FSLs (Section
// III.B): unidirectional FIFO links with a master (writing) end and a
// slave (reading) end, used in the switching methodology to carry module
// monitoring data, state registers, and control messages (Figure 5,
// links r0..r2 towards the MicroBlaze and t0..t2 towards the PRRs/IOMs).
// The asynchronous FIFO inside the link is the clock-domain-crossing
// isolation between the PRR's local clock domain and the static region.
#pragma once

#include <optional>
#include <string>

#include "comm/fifo.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::comm {

class FslLink {
 public:
  explicit FslLink(std::string name, int depth = Fifo::kDefaultDepth);

  const std::string& name() const { return name_; }

  // Master (writing) end.
  bool can_write() const { return !fifo_.full(); }
  /// Blocking-write semantics are built by the caller spinning on
  /// can_write(); write() itself throws on a full link (protocol bug).
  void write(Word w) { fifo_.push(w); }

  // Slave (reading) end.
  bool can_read() const { return !fifo_.empty(); }
  Word read() { return fifo_.pop(); }
  Word peek() const { return fifo_.front(); }
  /// Non-throwing read used by polling software.
  std::optional<Word> try_read();

  /// PRSocket FSL_reset bit.
  void reset() { fifo_.reset(); }

  /// Registers a component to wake whenever the link is written, read,
  /// or reset (see Fifo::add_wake_target). Lets a clocked reader sleep
  /// while the link is idle without missing a message.
  void add_wake_target(sim::Clocked* target) { fifo_.add_wake_target(target); }

  int occupancy() const { return fifo_.size(); }
  int capacity() const { return fifo_.capacity(); }
  std::uint64_t total_written() const { return fifo_.total_pushed(); }

 private:
  friend class ::vapres::snap::SystemSnapshot;

  std::string name_;
  Fifo fifo_;
};

}  // namespace vapres::comm
