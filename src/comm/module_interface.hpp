// Producer and consumer module interfaces (paper Figure 2).
//
// Every PRR/IOM pairs with a switch box through FIFO-based module
// interfaces. The *producer* interface holds a FIFO written by the
// hardware module (in the module's local clock domain) and drained onto
// the switch-box fabric (in the static-region domain) when the PRSocket
// FIFO_ren bit is set and the pipelined feedback-full signal is clear.
// The *consumer* interface receives flits from the fabric, writes valid
// words into its FIFO when FIFO_wen is set, and asserts the feedback-full
// signal early enough to absorb every word still in the pipeline.
//
// Backpressure threshold: the paper states the signal asserts when the
// consumer FIFO's remaining space is "2*(N-d)" (N = FIFO capacity, d =
// switch-box hops). That expression is dimensionally inconsistent for
// N >> d (see DESIGN.md); the in-flight bound after assertion is the
// forward + backward pipeline depth, ~2d+2 words. The default policy
// asserts at remaining <= 2d+2 and is property-tested to never drop a
// word; the literal paper policy is also implemented so its behaviour can
// be demonstrated.
#pragma once

#include <cstdint>
#include <string>

#include "comm/fifo.hpp"
#include "comm/flit.hpp"
#include "sim/component.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::comm {

enum class BackpressurePolicy {
  kPipelineDepth,  ///< assert when remaining <= 2*d + 2 (default, safe)
  kHalfCapacity,   ///< assert when remaining <= N/2 (safe, conservative)
  kLiteralPaper,   ///< assert when remaining <= 2*(N - d) (as printed)
};

/// Producer interface: module-side FIFO -> fabric flit output.
/// Clocked in the static-region domain.
class ProducerInterface final : public sim::Clocked {
 public:
  explicit ProducerInterface(std::string name,
                             int fifo_capacity = Fifo::kDefaultDepth,
                             int width_bits = 32);

  std::string name() const override { return name_; }

  /// Module-side access (called from the module's clock domain).
  Fifo& fifo() { return fifo_; }
  const Fifo& fifo() const { return fifo_; }

  /// PRSocket FIFO_ren bit: enables draining the FIFO onto the fabric.
  void set_read_enable(bool enable) {
    read_enable_ = enable;
    wake();
  }
  bool read_enable() const { return read_enable_; }

  /// Wires the pipelined feedback-full signal (owned by the fabric's
  /// feedback pipeline). Null means "never full".
  void set_feedback_full_source(const bool* src) {
    feedback_full_ = src;
    wake();
  }

  /// Fabric-side output register (read by the paired switch box's input
  /// register during its eval).
  const Flit* output_signal() const { return &output_; }

  /// PRSocket FIFO_reset bit.
  void reset();

  std::uint64_t words_sent() const { return words_sent_; }
  /// Clock edges on which the interface had a word ready to drain but
  /// was blocked by the feedback-full backpressure signal. A rising
  /// count with a flat words_sent() is the software-visible signature
  /// of a congested channel (exposed over DCR by core::PerfCounters).
  /// Edges skipped while the whole domain is quiescent are not stalls:
  /// a stalled producer with a non-empty FIFO is kept non-quiescent so
  /// the count stays cycle-accurate.
  std::uint64_t stall_cycles() const { return stall_cycles_; }

  void eval() override;
  void commit() override;
  /// Idle output and nothing drainable (empty FIFO, read disabled, or
  /// stalled on feedback-full): further edges are no-ops until the FIFO
  /// or a PRSocket bit wakes the interface.
  bool quiescent() const override;

  /// Payload width of the attached channel (w in the paper's Figure 7).
  int width_bits() const { return width_bits_; }

 private:
  friend class ::vapres::snap::SystemSnapshot;

  std::string name_;
  Fifo fifo_;
  int width_bits_;
  bool read_enable_ = false;
  const bool* feedback_full_ = nullptr;
  Flit output_{};
  Flit next_output_{};
  bool pop_pending_ = false;
  std::uint64_t words_sent_ = 0;
  std::uint64_t stall_cycles_ = 0;
};

/// Consumer interface: fabric flit input -> module-side FIFO.
/// Clocked in the static-region domain.
class ConsumerInterface final : public sim::Clocked {
 public:
  explicit ConsumerInterface(std::string name, int fifo_capacity = Fifo::kDefaultDepth);

  std::string name() const override { return name_; }

  Fifo& fifo() { return fifo_; }
  const Fifo& fifo() const { return fifo_; }

  /// PRSocket FIFO_wen bit: enables writing received words into the FIFO.
  void set_write_enable(bool enable) {
    write_enable_ = enable;
    wake();
  }
  bool write_enable() const { return write_enable_; }

  /// Wires the fabric-side input (the paired switch box's consumer-channel
  /// output slot). Null reads as idle.
  void set_input_signal(const Flit* src) {
    input_ = src;
    wake();
  }

  /// Configures backpressure for an established channel crossing `hops`
  /// switch boxes.
  void configure_backpressure(int hops, BackpressurePolicy policy);

  /// The registered feedback-full output (entry of the feedback pipeline).
  const bool* full_feedback_signal() const { return &full_feedback_; }

  void reset();

  std::uint64_t words_received() const { return words_received_; }
  /// Words discarded because the FIFO was full when they arrived
  /// (Section III.B: "when a consumer interface FIFO becomes full, all
  /// subsequent data words are discarded").
  std::uint64_t words_discarded() const { return words_discarded_; }

  void eval() override;
  void commit() override;
  /// Idle fabric input and a settled feedback-full register: further edges
  /// are no-ops until a flit arrives or the FIFO's fill level changes.
  bool quiescent() const override;

 private:
  friend class ::vapres::snap::SystemSnapshot;

  bool threshold_reached() const;

  std::string name_;
  Fifo fifo_;
  bool write_enable_ = false;
  const Flit* input_ = nullptr;
  int hops_ = 0;
  BackpressurePolicy policy_ = BackpressurePolicy::kPipelineDepth;
  bool full_feedback_ = false;
  bool next_full_feedback_ = false;
  Flit pending_{};
  std::uint64_t words_received_ = 0;
  std::uint64_t words_discarded_ = 0;
};

}  // namespace vapres::comm
