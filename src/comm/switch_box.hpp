// Switch box (paper Section III.B, Figure 3).
//
// Each PRR/IOM pairs with one switch box in a linear array. Internally a
// switch box is "a set of multiplexers and one register connected to each
// switch box input port": every input port latches its source each
// static-region cycle, and every output port combinationally selects one
// registered input via a multiplexer whose select lines are the MUX_sel
// bits of the paired PRSocket's DCR. Data therefore advances one switch
// box per cycle — the pipelining that lets the fabric close timing at
// 100 MHz where a long shared bus reached only 50 MHz (Section II).
//
// Port layout for a box with parameters (kr, kl, ki, ko):
//   inputs : [0, kr)            rightward lanes arriving from the left
//            [kr, kr+kl)        leftward  lanes arriving from the right
//            [kr+kl, kr+kl+ko)  producer channels of the paired module
//   outputs: [0, kr)            rightward lanes departing to the right
//            [kr, kr+kl)        leftward  lanes departing to the left
//            [kr+kl, kr+kl+ki)  consumer channels of the paired module
#pragma once

#include <string>
#include <vector>

#include "comm/flit.hpp"
#include "sim/component.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::comm {

/// Lane-count parameters of one switch box.
struct SwitchBoxShape {
  int kr = 2;  ///< rightward-flowing inter-box lanes
  int kl = 2;  ///< leftward-flowing inter-box lanes
  int ki = 1;  ///< consumer channels into the paired module
  int ko = 1;  ///< producer channels out of the paired module

  int num_inputs() const { return kr + kl + ko; }
  int num_outputs() const { return kr + kl + ki; }
};

class SwitchBox final : public sim::Clocked {
 public:
  SwitchBox(std::string name, SwitchBoxShape shape);

  std::string name() const override { return name_; }
  const SwitchBoxShape& shape() const { return shape_; }

  // -- Port index helpers ---------------------------------------------
  int input_right_lane(int lane) const;
  int input_left_lane(int lane) const;
  int input_producer(int channel) const;
  int output_right_lane(int lane) const;
  int output_left_lane(int lane) const;
  int output_consumer(int channel) const;

  // -- Wiring (done once by the fabric) --------------------------------
  /// Connects input port `port` to read from `source` each cycle. A null
  /// source reads as idle (array-boundary lanes).
  void connect_input(int port, const Flit* source);

  /// Signal slot readers attach to (stable for the box's lifetime).
  const Flit* output_signal(int port) const;

  // -- Runtime configuration (PRSocket MUX_sel bits) --------------------
  /// Routes output `port` from registered input `input_port`; -1 parks the
  /// output (drives idle flits).
  void select(int output_port, int input_port);
  int selected(int output_port) const;
  void park_all_outputs();

  // -- Fault state (kSwitchBoxStuckPort site) ---------------------------
  // With injection enabled, each commit is an opportunity per output for
  // the mux to go stuck: the output register latches its current flit and
  // ignores the select until repaired (configuration-memory upset in the
  // MUX_sel bits). Repair is a frame rewrite — the scrubber's job.
  bool output_stuck(int port) const;
  void repair_output(int port);
  int stuck_output_count() const;
  /// Total stuck events injected over the box's lifetime.
  int stuck_events() const { return stuck_events_; }

  void eval() override;
  void commit() override;
  /// Input registers already equal their sources and every (non-stuck)
  /// output already equals its mux selection: further edges are no-ops.
  /// Only meaningful group-wide — the fabric groups its boxes, feedback
  /// pipelines, and attached interfaces into one ActivityGroup, so a box
  /// never sleeps while a neighbour could still push a flit into it.
  bool quiescent() const override;

 private:
  friend class ::vapres::snap::SystemSnapshot;

  void check_input(int port) const;
  void check_output(int port) const;

  std::string name_;
  SwitchBoxShape shape_;
  std::vector<const Flit*> sources_;
  std::vector<Flit> regs_;       ///< registered input ports (current)
  std::vector<Flit> regs_next_;  ///< registered input ports (next)
  std::vector<int> selects_;     ///< per-output mux select, -1 = parked
  std::vector<Flit> outputs_;    ///< materialized output values
  std::vector<bool> stuck_;      ///< per-output stuck-fault latch
  int stuck_events_ = 0;
};

}  // namespace vapres::comm
