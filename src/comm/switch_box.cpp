#include "comm/switch_box.hpp"

#include "sim/check.hpp"
#include "sim/fault.hpp"

namespace vapres::comm {

SwitchBox::SwitchBox(std::string name, SwitchBoxShape shape)
    : name_(std::move(name)), shape_(shape) {
  VAPRES_REQUIRE(shape_.kr >= 0 && shape_.kl >= 0 && shape_.ki >= 0 &&
                     shape_.ko >= 0,
                 "switch box lane counts must be non-negative");
  VAPRES_REQUIRE(shape_.kr + shape_.kl > 0,
                 "switch box needs at least one inter-box lane");
  sources_.assign(static_cast<std::size_t>(shape_.num_inputs()), nullptr);
  regs_.assign(sources_.size(), kIdleFlit);
  regs_next_.assign(sources_.size(), kIdleFlit);
  selects_.assign(static_cast<std::size_t>(shape_.num_outputs()), -1);
  outputs_.assign(selects_.size(), kIdleFlit);
  stuck_.assign(selects_.size(), false);
}

void SwitchBox::check_input(int port) const {
  VAPRES_REQUIRE(port >= 0 && port < shape_.num_inputs(),
                 name_ + ": input port out of range");
}

void SwitchBox::check_output(int port) const {
  VAPRES_REQUIRE(port >= 0 && port < shape_.num_outputs(),
                 name_ + ": output port out of range");
}

int SwitchBox::input_right_lane(int lane) const {
  VAPRES_REQUIRE(lane >= 0 && lane < shape_.kr, name_ + ": bad right lane");
  return lane;
}
int SwitchBox::input_left_lane(int lane) const {
  VAPRES_REQUIRE(lane >= 0 && lane < shape_.kl, name_ + ": bad left lane");
  return shape_.kr + lane;
}
int SwitchBox::input_producer(int channel) const {
  VAPRES_REQUIRE(channel >= 0 && channel < shape_.ko,
                 name_ + ": bad producer channel");
  return shape_.kr + shape_.kl + channel;
}
int SwitchBox::output_right_lane(int lane) const {
  VAPRES_REQUIRE(lane >= 0 && lane < shape_.kr, name_ + ": bad right lane");
  return lane;
}
int SwitchBox::output_left_lane(int lane) const {
  VAPRES_REQUIRE(lane >= 0 && lane < shape_.kl, name_ + ": bad left lane");
  return shape_.kr + lane;
}
int SwitchBox::output_consumer(int channel) const {
  VAPRES_REQUIRE(channel >= 0 && channel < shape_.ki,
                 name_ + ": bad consumer channel");
  return shape_.kr + shape_.kl + channel;
}

void SwitchBox::connect_input(int port, const Flit* source) {
  check_input(port);
  sources_[static_cast<std::size_t>(port)] = source;
  wake();
}

const Flit* SwitchBox::output_signal(int port) const {
  check_output(port);
  return &outputs_[static_cast<std::size_t>(port)];
}

void SwitchBox::select(int output_port, int input_port) {
  check_output(output_port);
  if (input_port >= 0) check_input(input_port);
  selects_[static_cast<std::size_t>(output_port)] = input_port;
  wake();
}

int SwitchBox::selected(int output_port) const {
  check_output(output_port);
  return selects_[static_cast<std::size_t>(output_port)];
}

void SwitchBox::park_all_outputs() {
  for (auto& s : selects_) s = -1;
  wake();
}

bool SwitchBox::output_stuck(int port) const {
  check_output(port);
  return stuck_[static_cast<std::size_t>(port)];
}

void SwitchBox::repair_output(int port) {
  check_output(port);
  stuck_[static_cast<std::size_t>(port)] = false;
  wake();
}

int SwitchBox::stuck_output_count() const {
  int n = 0;
  for (bool s : stuck_) n += s ? 1 : 0;
  return n;
}

bool SwitchBox::quiescent() const {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const Flit in = sources_[i] != nullptr ? *sources_[i] : kIdleFlit;
    if (!(in == regs_[i])) return false;
  }
  for (std::size_t p = 0; p < outputs_.size(); ++p) {
    if (stuck_[p]) continue;  // holds its last flit: stable by definition
    const int sel = selects_[p];
    const Flit expect =
        sel >= 0 ? regs_[static_cast<std::size_t>(sel)] : kIdleFlit;
    if (!(outputs_[p] == expect)) return false;
  }
  return true;
}

void SwitchBox::eval() {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    regs_next_[i] = sources_[i] != nullptr ? *sources_[i] : kIdleFlit;
  }
}

void SwitchBox::commit() {
  regs_ = regs_next_;
  auto& faults = sim::FaultInjector::instance();
  const bool injecting = faults.enabled();
  // Output muxes are combinational over the (just latched) input
  // registers; materialize them so downstream eval() reads this cycle's
  // values next cycle — one register of latency per box, as in the RTL.
  for (std::size_t p = 0; p < outputs_.size(); ++p) {
    if (injecting && !stuck_[p] &&
        faults.should_fire(sim::FaultSite::kSwitchBoxStuckPort)) {
      stuck_[p] = true;
      ++stuck_events_;
    }
    if (stuck_[p]) continue;  // output holds its last flit until repaired
    const int sel = selects_[p];
    outputs_[p] =
        sel >= 0 ? regs_[static_cast<std::size_t>(sel)] : kIdleFlit;
  }
}

}  // namespace vapres::comm
