// Asynchronous FIFO model.
//
// Module interfaces and FSLs use BlockRAM-based asynchronous FIFOs to
// cross between the static-region clock domain and each PRR's local clock
// domain (Section III.B.2). In the discrete-event model, cross-domain
// accesses are totally ordered by simulation time, so a plain bounded
// queue is an exact behavioural model; the "asynchronous" property shows
// up as the two sides being clocked by different domains.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "comm/flit.hpp"
#include "sim/check.hpp"
#include "sim/component.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::comm {

class Fifo {
 public:
  /// Default depth: one RAMB16 configured 512 x 32 (the prototype's
  /// module-interface and FSL FIFOs).
  static constexpr int kDefaultDepth = 512;

  explicit Fifo(std::string name, int capacity = kDefaultDepth);

  const std::string& name() const { return name_; }
  int capacity() const { return capacity_; }

  bool empty() const { return words_.empty(); }
  bool full() const { return size() >= capacity_; }
  int size() const { return static_cast<int>(words_.size()); }
  int remaining() const { return capacity_ - size(); }

  /// Pushes a word. Throws on overflow — hardware FIFOs silently drop, but
  /// every writer in the model checks full()/backpressure first, so an
  /// overflow here is a protocol bug we want loud. (The consumer-interface
  /// drop path of Section III.B is modelled in ConsumerInterface, which
  /// counts discards explicitly.) With fault injection enabled, a push is
  /// an opportunity for the kFifoDropWord / kFifoDuplicateWord sites.
  void push(Word w);

  /// Pops and returns the oldest word. Throws on underflow.
  Word pop();

  /// Oldest word without removing it. Throws if empty.
  Word front() const;

  /// Clears contents (PRSocket FIFO_reset / FSL_reset).
  void reset();

  /// Registers a component whose activity depends on this FIFO. Every
  /// push, pop, and reset calls wake() on each target: a push gives the
  /// reader work, and a pop changes the fill level that backpressure
  /// thresholds are computed from. Targets are never unregistered — wire
  /// only components that outlive the FIFO's use.
  void add_wake_target(sim::Clocked* target);

  std::uint64_t total_pushed() const { return pushed_; }
  std::uint64_t total_popped() const { return popped_; }
  int high_watermark() const { return high_watermark_; }

  /// Words lost / doubled by injected faults (0 unless injection is on).
  std::uint64_t fault_dropped() const { return fault_dropped_; }
  std::uint64_t fault_duplicated() const { return fault_duplicated_; }

 private:
  // Checkpoint/restore overlays contents and counters without waking
  // targets or drawing fault opportunities (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  void wake_targets();

  std::string name_;
  int capacity_;
  std::deque<Word> words_;
  std::vector<sim::Clocked*> wake_targets_;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  std::uint64_t fault_dropped_ = 0;
  std::uint64_t fault_duplicated_ = 0;
  int high_watermark_ = 0;
};

}  // namespace vapres::comm
