// Stream flits.
//
// Section III.B: the producer interface bit-extends each w-bit data word
// with the negated FIFO-empty flag as an extra MSB, so only valid words
// propagate through the switch boxes; the MSB becomes the consumer FIFO's
// write enable. Flit models the extended word: `data` is the w-bit payload,
// `valid` is the extension bit.
#pragma once

#include <cstdint>

namespace vapres::comm {

/// One stream data word (payload of up to 32 bits).
using Word = std::uint32_t;

/// Mask selecting the payload bits of a w-bit channel (w = 1..32).
constexpr Word payload_mask(int width_bits) {
  return width_bits >= 32 ? 0xFFFFFFFFu
                          : ((Word{1} << width_bits) - 1u);
}

/// The distinguished end-of-stream word of the switching methodology
/// (Figure 5, step 5): all-ones at the channel width. In-band by design,
/// as in the paper — an application data word of all ones is
/// indistinguishable from EOS.
constexpr Word eos_word(int width_bits) { return payload_mask(width_bits); }

/// The 32-bit EOS word modules emit; narrower channels truncate it to
/// their own eos_word() in the producer interface.
inline constexpr Word kEndOfStreamWord = 0xFFFFFFFFu;

struct Flit {
  Word data = 0;
  bool valid = false;

  friend constexpr bool operator==(const Flit&, const Flit&) = default;
};

inline constexpr Flit kIdleFlit{};

}  // namespace vapres::comm
