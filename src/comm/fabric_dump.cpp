#include "comm/fabric_dump.hpp"

#include <sstream>

#include "sim/check.hpp"

namespace vapres::comm {

std::string input_port_name(const SwitchBox& box, int port) {
  const SwitchBoxShape& s = box.shape();
  VAPRES_REQUIRE(port >= 0 && port < s.num_inputs(),
                 "input port out of range");
  if (port < s.kr) return "R" + std::to_string(port);
  if (port < s.kr + s.kl) return "L" + std::to_string(port - s.kr);
  return "P" + std::to_string(port - s.kr - s.kl);
}

std::string output_port_name(const SwitchBox& box, int port) {
  const SwitchBoxShape& s = box.shape();
  VAPRES_REQUIRE(port >= 0 && port < s.num_outputs(),
                 "output port out of range");
  if (port < s.kr) return "R" + std::to_string(port);
  if (port < s.kr + s.kl) return "L" + std::to_string(port - s.kr);
  return "C" + std::to_string(port - s.kr - s.kl);
}

std::string dump_fabric(const SwitchFabric& fabric) {
  std::ostringstream os;
  os << "fabric: " << fabric.num_boxes() << " switch boxes, kr="
     << fabric.shape().kr << " kl=" << fabric.shape().kl << " ki="
     << fabric.shape().ki << " ko=" << fabric.shape().ko << ", "
     << fabric.active_routes() << " active route(s)\n";
  for (int b = 0; b < fabric.num_boxes(); ++b) {
    const SwitchBox& box = fabric.box(b);
    os << "  " << box.name() << ":";
    bool any = false;
    for (int p = 0; p < box.shape().num_outputs(); ++p) {
      const int sel = box.selected(p);
      if (sel < 0) continue;
      os << " " << output_port_name(box, p) << "<-"
         << input_port_name(box, sel);
      any = true;
    }
    if (!any) os << " (all outputs parked)";
    os << "\n";
  }
  return os.str();
}

}  // namespace vapres::comm
