// Linear switch-box array + streaming-channel mechanics.
//
// The fabric owns the switch boxes of one RSB, wires the inter-box lanes,
// and applies/clears route configurations (the mux selects a PRSocket's
// MUX_sel bits control, plus the backwards-pipelined feedback-full signal
// of Section III.B). *Which* lanes a channel uses is decided above, by
// core::ChannelManager (the model of vapres_establish_channel); the fabric
// enforces physical legality: ports exist, are attached, and are not
// already driven by another active route.
//
// The feedback-full signal is modelled as a per-route backward shift
// register of the same depth as the forward path. In the RTL it is one
// backward register per traversed switch box; a depth-d shift register is
// cycle-for-cycle identical (see DESIGN.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comm/module_interface.hpp"
#include "comm/switch_box.hpp"
#include "sim/clock.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::comm {

/// A fully specified streaming-channel route: endpoints plus the lane to
/// use on every inter-box segment (|producer_box - consumer_box| lanes,
/// rightward lanes if the consumer is to the right, leftward otherwise).
struct RouteSpec {
  int producer_box = 0;
  int producer_channel = 0;
  int consumer_box = 0;
  int consumer_channel = 0;
  std::vector<int> lanes;

  int segments() const;
  bool rightward() const { return consumer_box > producer_box; }
  /// Switch boxes traversed (= registers on the forward path).
  int hops() const { return segments() + 1; }
};

using RouteId = std::uint32_t;

class SwitchFabric {
 public:
  /// Builds `num_boxes` switch boxes of identical `shape`, clocked by
  /// `static_domain`, and wires the inter-box lanes.
  SwitchFabric(sim::ClockDomain& static_domain, int num_boxes,
               SwitchBoxShape shape, std::string name = "fabric");

  SwitchFabric(const SwitchFabric&) = delete;
  SwitchFabric& operator=(const SwitchFabric&) = delete;
  ~SwitchFabric();

  int num_boxes() const { return static_cast<int>(boxes_.size()); }
  const SwitchBoxShape& shape() const { return shape_; }
  SwitchBox& box(int index);
  const SwitchBox& box(int index) const;

  /// Attaches a producer interface to producer channel `channel` of box
  /// `box_index`. The interface must outlive the fabric's use of it.
  void attach_producer(int box_index, int channel, ProducerInterface* prod);
  void attach_consumer(int box_index, int channel, ConsumerInterface* cons);

  ProducerInterface* producer_at(int box_index, int channel) const;
  ConsumerInterface* consumer_at(int box_index, int channel) const;

  /// Applies a route: configures the mux selects along the path, the
  /// consumer's backpressure threshold, and the feedback pipeline.
  /// Throws ModelError on any physical conflict.
  RouteId establish(const RouteSpec& spec,
                    BackpressurePolicy policy = BackpressurePolicy::kPipelineDepth);

  /// Tears down a route, parking its output ports.
  void release(RouteId id);

  bool route_active(RouteId id) const { return routes_.count(id) > 0; }
  std::size_t active_routes() const { return routes_.size(); }

 private:
  // Checkpoint/restore re-establishes routes under their original ids
  // (forcing next_route_id_) and overlays feedback-pipeline stages
  // (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  /// Backward shift register carrying the consumer's full signal to the
  /// producer with one register per traversed switch box.
  class FeedbackPipeline final : public sim::Clocked {
   public:
    FeedbackPipeline(const bool* source, int depth);
    const bool* output_signal() const { return &output_; }
    void eval() override;
    void commit() override;
    /// Every stage (and the output) already equals the source: shifting
    /// is a no-op until the consumer's full register flips.
    bool quiescent() const override;
    std::string name() const override { return "feedback"; }

   private:
    friend class ::vapres::snap::SystemSnapshot;

    const bool* source_;
    std::vector<bool> stages_;
    bool output_ = false;
  };

  struct ActiveRoute {
    RouteSpec spec;
    // (box index, output port) pairs this route configured.
    std::vector<std::pair<int, int>> outputs;
    std::unique_ptr<FeedbackPipeline> feedback;
    ProducerInterface* producer = nullptr;
    ConsumerInterface* consumer = nullptr;
  };

  void validate_spec(const RouteSpec& spec) const;
  void claim_output(int box_index, int port, const std::string& what);

  sim::ClockDomain& domain_;
  std::string name_;
  SwitchBoxShape shape_;
  // The fabric is pull-model wiring over raw flit pointers: a box has no
  // way to notify its neighbour when a flit enters a lane. Activity is
  // therefore tracked fabric-wide: boxes, feedback pipelines, and the
  // attached producer/consumer interfaces share one ActivityGroup that
  // sleeps all-or-nothing. Declared before the Clocked members it tracks
  // so it outlives them (their destructors deregister from it).
  sim::ActivityGroup group_;
  std::vector<std::unique_ptr<SwitchBox>> boxes_;
  // attachment tables: [box][channel]
  std::vector<std::vector<ProducerInterface*>> producers_;
  std::vector<std::vector<ConsumerInterface*>> consumers_;
  // output-port occupancy: key = box * 1000 + port -> owning route
  std::map<std::pair<int, int>, RouteId> output_owner_;
  std::map<RouteId, ActiveRoute> routes_;
  RouteId next_route_id_ = 1;
};

}  // namespace vapres::comm
