#include "comm/module_interface.hpp"

namespace vapres::comm {

ProducerInterface::ProducerInterface(std::string name, int fifo_capacity,
                                     int width_bits)
    : name_(std::move(name)),
      fifo_(name_ + ".fifo", fifo_capacity),
      width_bits_(width_bits) {
  VAPRES_REQUIRE(width_bits_ >= 1 && width_bits_ <= 32,
                 name_ + ": channel width must be 1..32 bits");
  // The module-side writer (wrapper or IOM source) pushes from another
  // context; the push must re-arm the fabric-side drain.
  fifo_.add_wake_target(this);
}

void ProducerInterface::reset() {
  fifo_.reset();
  output_ = kIdleFlit;
  next_output_ = kIdleFlit;
  pop_pending_ = false;
  wake();
}

bool ProducerInterface::quiescent() const {
  const bool feedback = feedback_full_ != nullptr && *feedback_full_;
  // A stalled producer (word ready, blocked on feedback-full) must keep
  // ticking so stall_cycles_ counts every blocked edge.
  const bool stalled = read_enable_ && feedback && !fifo_.empty();
  const bool next_idle = !(read_enable_ && !feedback && !fifo_.empty());
  return !output_.valid && next_idle && !stalled;
}

void ProducerInterface::eval() {
  const bool feedback = feedback_full_ != nullptr && *feedback_full_;
  if (read_enable_ && !feedback && !fifo_.empty()) {
    // Bit-extension: w payload bits + negated-empty flag as the valid
    // MSB. A w-bit channel physically carries only the low w bits.
    next_output_ = Flit{fifo_.front() & payload_mask(width_bits_), true};
    pop_pending_ = true;
  } else {
    if (read_enable_ && feedback && !fifo_.empty()) ++stall_cycles_;
    next_output_ = kIdleFlit;
    pop_pending_ = false;
  }
}

void ProducerInterface::commit() {
  if (pop_pending_) {
    fifo_.pop();
    ++words_sent_;
    pop_pending_ = false;
  }
  output_ = next_output_;
}

ConsumerInterface::ConsumerInterface(std::string name, int fifo_capacity)
    : name_(std::move(name)), fifo_(name_ + ".fifo", fifo_capacity) {
  // An external drain (module or IOM sink popping words) changes the fill
  // level the feedback-full threshold is computed from.
  fifo_.add_wake_target(this);
}

void ConsumerInterface::configure_backpressure(int hops,
                                               BackpressurePolicy policy) {
  VAPRES_REQUIRE(hops >= 0, "negative hop count");
  // The FIFO must be able to hold the full in-flight window above the
  // assertion threshold, or the feedback signal would stay asserted
  // forever and the channel deadlocks. This is the design rule behind the
  // paper's capacity-vs-hops formula: N must exceed ~2d (see DESIGN.md).
  const bool deep_enough =
      (policy == BackpressurePolicy::kPipelineDepth &&
       fifo_.capacity() > 2 * hops + 2) ||
      (policy == BackpressurePolicy::kHalfCapacity &&
       fifo_.capacity() / 2 >= 2 * hops + 2) ||
      policy == BackpressurePolicy::kLiteralPaper;
  VAPRES_REQUIRE(deep_enough,
                 name_ + ": consumer FIFO depth " +
                     std::to_string(fifo_.capacity()) +
                     " too shallow for a " + std::to_string(hops) +
                     "-hop channel under this backpressure policy");
  hops_ = hops;
  policy_ = policy;
  wake();
}

void ConsumerInterface::reset() {
  fifo_.reset();
  full_feedback_ = false;
  next_full_feedback_ = false;
  pending_ = kIdleFlit;
  wake();
}

bool ConsumerInterface::quiescent() const {
  const bool input_idle = input_ == nullptr || !input_->valid;
  return input_idle && full_feedback_ == threshold_reached();
}

bool ConsumerInterface::threshold_reached() const {
  switch (policy_) {
    case BackpressurePolicy::kPipelineDepth:
      // Forward pipeline (producer output register + one register per
      // switch box) plus backward feedback latency: <= 2*hops + 2 words
      // can still arrive after the producer sees the assertion.
      return fifo_.remaining() <= 2 * hops_ + 2;
    case BackpressurePolicy::kHalfCapacity:
      // Hop-oblivious conservative rule: safe whenever the pipeline fits
      // in half the FIFO, at the cost of halving usable buffering.
      return fifo_.remaining() <= fifo_.capacity() / 2;
    case BackpressurePolicy::kLiteralPaper:
      return fifo_.remaining() <= 2 * (fifo_.capacity() - hops_);
  }
  return true;  // unreachable
}

void ConsumerInterface::eval() {
  pending_ = input_ != nullptr ? *input_ : kIdleFlit;
  next_full_feedback_ = threshold_reached();
}

void ConsumerInterface::commit() {
  if (pending_.valid && write_enable_) {
    if (fifo_.full()) {
      ++words_discarded_;
    } else {
      fifo_.push(pending_.data);
      ++words_received_;
    }
  }
  pending_ = kIdleFlit;
  full_feedback_ = next_full_feedback_;
}

}  // namespace vapres::comm
