// Switch-fabric introspection: renders the current mux configuration of
// every switch box as text, with symbolic port names — the debugging
// view of "which PRSocket MUX_sel bits are set right now".
#pragma once

#include <string>

#include "comm/switch_fabric.hpp"

namespace vapres::comm {

/// Symbolic name of an input port of `box` ("R0" = rightward lane 0 in,
/// "L1" = leftward lane 1 in, "P0" = producer channel 0).
std::string input_port_name(const SwitchBox& box, int port);

/// Symbolic name of an output port ("R0" out, "L0" out, "C0" consumer).
std::string output_port_name(const SwitchBox& box, int port);

/// One line per switch box listing each driven output and its source,
/// e.g. "sw1: R0<-P0 C0<-R1"; parked outputs are omitted. Active-route
/// and lane-occupancy summary at the end.
std::string dump_fabric(const SwitchFabric& fabric);

}  // namespace vapres::comm
