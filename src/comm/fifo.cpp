#include "comm/fifo.hpp"

#include <algorithm>

#include "sim/fault.hpp"

namespace vapres::comm {

Fifo::Fifo(std::string name, int capacity)
    : name_(std::move(name)), capacity_(capacity) {
  VAPRES_REQUIRE(capacity_ > 0, "FIFO capacity must be positive: " + name_);
}

void Fifo::add_wake_target(sim::Clocked* target) {
  VAPRES_REQUIRE(target != nullptr, name_ + ": null wake target");
  wake_targets_.push_back(target);
}

void Fifo::wake_targets() {
  for (sim::Clocked* t : wake_targets_) t->wake();
}

void Fifo::push(Word w) {
  VAPRES_REQUIRE(!full(), "FIFO overflow: " + name_);
  wake_targets();
  auto& faults = sim::FaultInjector::instance();
  if (faults.enabled()) {
    if (faults.should_fire(sim::FaultSite::kFifoDropWord)) {
      ++fault_dropped_;
      return;
    }
    if (faults.should_fire(sim::FaultSite::kFifoDuplicateWord) &&
        size() + 1 < capacity_) {
      words_.push_back(w);
      ++pushed_;
      ++fault_duplicated_;
    }
  }
  words_.push_back(w);
  ++pushed_;
  high_watermark_ = std::max(high_watermark_, size());
}

Word Fifo::pop() {
  VAPRES_REQUIRE(!empty(), "FIFO underflow: " + name_);
  wake_targets();
  const Word w = words_.front();
  words_.pop_front();
  ++popped_;
  return w;
}

Word Fifo::front() const {
  VAPRES_REQUIRE(!empty(), "FIFO front() on empty FIFO: " + name_);
  return words_.front();
}

void Fifo::reset() {
  words_.clear();
  wake_targets();
}

}  // namespace vapres::comm
