#include "comm/dcr.hpp"

namespace vapres::comm {

void DcrBus::map(DcrAddress address, DcrSlave* slave) {
  VAPRES_REQUIRE(slave != nullptr, "cannot map null DCR slave");
  VAPRES_REQUIRE(slaves_.count(address) == 0,
                 "DCR address already mapped: " + std::to_string(address));
  slaves_[address] = slave;
}

void DcrBus::unmap(DcrAddress address) {
  VAPRES_REQUIRE(slaves_.erase(address) > 0,
                 "DCR address not mapped: " + std::to_string(address));
}

DcrSlave* DcrBus::find(DcrAddress address) const {
  auto it = slaves_.find(address);
  VAPRES_REQUIRE(it != slaves_.end(),
                 "DCR access to unmapped address " + std::to_string(address));
  return it->second;
}

DcrValue DcrBus::read(DcrAddress address) const {
  DcrSlave* slave = find(address);
  ++accesses_;
  return slave->dcr_read();
}

void DcrBus::write(DcrAddress address, DcrValue value) {
  DcrSlave* slave = find(address);
  ++accesses_;
  slave->dcr_write(value);
}

}  // namespace vapres::comm
