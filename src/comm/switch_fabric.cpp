#include "comm/switch_fabric.hpp"

#include <cstdlib>

#include "sim/check.hpp"

namespace vapres::comm {

int RouteSpec::segments() const {
  return std::abs(consumer_box - producer_box);
}

SwitchFabric::FeedbackPipeline::FeedbackPipeline(const bool* source, int depth)
    : source_(source) {
  VAPRES_REQUIRE(source != nullptr, "feedback pipeline needs a source");
  VAPRES_REQUIRE(depth >= 1, "feedback pipeline depth must be >= 1");
  stages_.assign(static_cast<std::size_t>(depth), false);
}

void SwitchFabric::FeedbackPipeline::eval() {
  // Shift one stage per static-region cycle; commit publishes.
}

void SwitchFabric::FeedbackPipeline::commit() {
  output_ = stages_.back();
  for (std::size_t i = stages_.size() - 1; i > 0; --i) {
    stages_[i] = stages_[i - 1];
  }
  stages_[0] = *source_;
}

bool SwitchFabric::FeedbackPipeline::quiescent() const {
  const bool level = *source_;
  if (output_ != level) return false;
  for (bool s : stages_) {
    if (s != level) return false;
  }
  return true;
}

SwitchFabric::SwitchFabric(sim::ClockDomain& static_domain, int num_boxes,
                           SwitchBoxShape shape, std::string name)
    : domain_(static_domain), name_(std::move(name)), shape_(shape) {
  VAPRES_REQUIRE(num_boxes >= 1, "fabric needs at least one switch box");
  boxes_.reserve(static_cast<std::size_t>(num_boxes));
  for (int i = 0; i < num_boxes; ++i) {
    boxes_.push_back(std::make_unique<SwitchBox>(
        name_ + ".sw" + std::to_string(i), shape_));
    domain_.attach(boxes_.back().get());
    group_.add(boxes_.back().get());
  }
  producers_.assign(static_cast<std::size_t>(num_boxes),
                    std::vector<ProducerInterface*>(
                        static_cast<std::size_t>(shape_.ko), nullptr));
  consumers_.assign(static_cast<std::size_t>(num_boxes),
                    std::vector<ConsumerInterface*>(
                        static_cast<std::size_t>(shape_.ki), nullptr));

  // Wire inter-box lanes: rightward lanes flow i -> i+1, leftward i+1 -> i.
  for (int i = 0; i + 1 < num_boxes; ++i) {
    SwitchBox& left = *boxes_[static_cast<std::size_t>(i)];
    SwitchBox& right = *boxes_[static_cast<std::size_t>(i + 1)];
    for (int lane = 0; lane < shape_.kr; ++lane) {
      right.connect_input(right.input_right_lane(lane),
                          left.output_signal(left.output_right_lane(lane)));
    }
    for (int lane = 0; lane < shape_.kl; ++lane) {
      left.connect_input(left.input_left_lane(lane),
                         right.output_signal(right.output_left_lane(lane)));
    }
  }
}

SwitchFabric::~SwitchFabric() {
  for (auto& [id, route] : routes_) {
    if (route.feedback) domain_.detach(route.feedback.get());
  }
  for (auto& box : boxes_) domain_.detach(box.get());
}

SwitchBox& SwitchFabric::box(int index) {
  VAPRES_REQUIRE(index >= 0 && index < num_boxes(),
                 name_ + ": box index out of range");
  return *boxes_[static_cast<std::size_t>(index)];
}

const SwitchBox& SwitchFabric::box(int index) const {
  VAPRES_REQUIRE(index >= 0 && index < num_boxes(),
                 name_ + ": box index out of range");
  return *boxes_[static_cast<std::size_t>(index)];
}

void SwitchFabric::attach_producer(int box_index, int channel,
                                   ProducerInterface* prod) {
  VAPRES_REQUIRE(prod != nullptr, "cannot attach null producer");
  SwitchBox& b = box(box_index);
  auto& slot =
      producers_[static_cast<std::size_t>(box_index)]
                [static_cast<std::size_t>(b.input_producer(channel) -
                                          shape_.kr - shape_.kl)];
  VAPRES_REQUIRE(slot == nullptr, "producer channel already attached");
  slot = prod;
  b.connect_input(b.input_producer(channel), prod->output_signal());
  group_.add(prod);
}

void SwitchFabric::attach_consumer(int box_index, int channel,
                                   ConsumerInterface* cons) {
  VAPRES_REQUIRE(cons != nullptr, "cannot attach null consumer");
  SwitchBox& b = box(box_index);
  auto& slot =
      consumers_[static_cast<std::size_t>(box_index)]
                [static_cast<std::size_t>(channel)];
  VAPRES_REQUIRE(slot == nullptr, "consumer channel already attached");
  slot = cons;
  cons->set_input_signal(b.output_signal(b.output_consumer(channel)));
  group_.add(cons);
}

ProducerInterface* SwitchFabric::producer_at(int box_index,
                                             int channel) const {
  VAPRES_REQUIRE(box_index >= 0 && box_index < num_boxes(),
                 "box index out of range");
  VAPRES_REQUIRE(channel >= 0 && channel < shape_.ko,
                 "producer channel out of range");
  return producers_[static_cast<std::size_t>(box_index)]
                   [static_cast<std::size_t>(channel)];
}

ConsumerInterface* SwitchFabric::consumer_at(int box_index,
                                             int channel) const {
  VAPRES_REQUIRE(box_index >= 0 && box_index < num_boxes(),
                 "box index out of range");
  VAPRES_REQUIRE(channel >= 0 && channel < shape_.ki,
                 "consumer channel out of range");
  return consumers_[static_cast<std::size_t>(box_index)]
                   [static_cast<std::size_t>(channel)];
}

void SwitchFabric::validate_spec(const RouteSpec& spec) const {
  VAPRES_REQUIRE(spec.producer_box >= 0 && spec.producer_box < num_boxes(),
                 "route producer box out of range");
  VAPRES_REQUIRE(spec.consumer_box >= 0 && spec.consumer_box < num_boxes(),
                 "route consumer box out of range");
  VAPRES_REQUIRE(static_cast<int>(spec.lanes.size()) == spec.segments(),
                 "route must name one lane per inter-box segment");
  const int lane_count = spec.rightward() ? shape_.kr : shape_.kl;
  for (int lane : spec.lanes) {
    VAPRES_REQUIRE(lane >= 0 && lane < lane_count,
                   "route lane index out of range");
  }
  VAPRES_REQUIRE(producer_at(spec.producer_box, spec.producer_channel) !=
                     nullptr,
                 "no producer interface attached at route source");
  VAPRES_REQUIRE(consumer_at(spec.consumer_box, spec.consumer_channel) !=
                     nullptr,
                 "no consumer interface attached at route sink");
}

void SwitchFabric::claim_output(int box_index, int port,
                                const std::string& what) {
  const auto key = std::make_pair(box_index, port);
  VAPRES_REQUIRE(output_owner_.count(key) == 0,
                 name_ + ": " + what + " already carries an active route");
  // Ownership id is recorded by the caller after all claims succeed; a
  // placeholder marks the claim so later claims in the same call conflict.
  output_owner_[key] = 0;
}

RouteId SwitchFabric::establish(const RouteSpec& spec,
                                BackpressurePolicy policy) {
  validate_spec(spec);

  // Configure backpressure first: it rejects consumer FIFOs too shallow
  // for the route's in-flight window, and must fail before any physical
  // state is claimed.
  ConsumerInterface* consumer =
      consumer_at(spec.consumer_box, spec.consumer_channel);
  consumer->configure_backpressure(spec.hops(), policy);

  // Compute the (box, output port) list first, then claim atomically.
  std::vector<std::pair<int, int>> outputs;
  const int step = spec.rightward() ? 1 : -1;
  if (spec.segments() == 0) {
    SwitchBox& b = box(spec.producer_box);
    outputs.emplace_back(spec.producer_box,
                         b.output_consumer(spec.consumer_channel));
  } else {
    int box_index = spec.producer_box;
    for (int seg = 0; seg < spec.segments(); ++seg) {
      SwitchBox& b = box(box_index);
      const int out = spec.rightward()
                          ? b.output_right_lane(spec.lanes[
                                static_cast<std::size_t>(seg)])
                          : b.output_left_lane(spec.lanes[
                                static_cast<std::size_t>(seg)]);
      outputs.emplace_back(box_index, out);
      box_index += step;
    }
    SwitchBox& last = box(spec.consumer_box);
    outputs.emplace_back(spec.consumer_box,
                         last.output_consumer(spec.consumer_channel));
  }

  for (const auto& [bi, port] : outputs) {
    // Roll back earlier claims if any claim fails.
    try {
      claim_output(bi, port, box(bi).name());
    } catch (...) {
      for (const auto& [ubi, uport] : outputs) {
        if (ubi == bi && uport == port) break;
        output_owner_.erase(std::make_pair(ubi, uport));
      }
      throw;
    }
  }

  // Apply mux selects.
  if (spec.segments() == 0) {
    SwitchBox& b = box(spec.producer_box);
    b.select(b.output_consumer(spec.consumer_channel),
             b.input_producer(spec.producer_channel));
  } else {
    int box_index = spec.producer_box;
    for (int seg = 0; seg < spec.segments(); ++seg) {
      SwitchBox& b = box(box_index);
      const int lane = spec.lanes[static_cast<std::size_t>(seg)];
      const int out = spec.rightward() ? b.output_right_lane(lane)
                                       : b.output_left_lane(lane);
      int in;
      if (seg == 0) {
        in = b.input_producer(spec.producer_channel);
      } else {
        const int prev_lane = spec.lanes[static_cast<std::size_t>(seg - 1)];
        in = spec.rightward() ? b.input_right_lane(prev_lane)
                              : b.input_left_lane(prev_lane);
      }
      b.select(out, in);
      box_index += step;
    }
    SwitchBox& last = box(spec.consumer_box);
    const int last_lane = spec.lanes.back();
    last.select(last.output_consumer(spec.consumer_channel),
                spec.rightward() ? last.input_right_lane(last_lane)
                                 : last.input_left_lane(last_lane));
  }

  ActiveRoute route;
  route.spec = spec;
  route.outputs = outputs;
  route.producer = producer_at(spec.producer_box, spec.producer_channel);
  route.consumer = consumer;
  route.feedback = std::make_unique<FeedbackPipeline>(
      route.consumer->full_feedback_signal(), spec.hops());
  route.producer->set_feedback_full_source(route.feedback->output_signal());
  domain_.attach(route.feedback.get());
  group_.add(route.feedback.get());

  const RouteId id = next_route_id_++;
  for (const auto& key : outputs) output_owner_[key] = id;
  routes_.emplace(id, std::move(route));
  return id;
}

void SwitchFabric::release(RouteId id) {
  auto it = routes_.find(id);
  VAPRES_REQUIRE(it != routes_.end(), "release of unknown route");
  ActiveRoute& route = it->second;
  for (const auto& [bi, port] : route.outputs) {
    box(bi).select(port, -1);
    output_owner_.erase(std::make_pair(bi, port));
  }
  route.producer->set_feedback_full_source(nullptr);
  domain_.detach(route.feedback.get());
  routes_.erase(it);
}

}  // namespace vapres::comm
