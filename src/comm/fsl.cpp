#include "comm/fsl.hpp"

namespace vapres::comm {

FslLink::FslLink(std::string name, int depth)
    : name_(std::move(name)), fifo_(name_ + ".fifo", depth) {}

std::optional<Word> FslLink::try_read() {
  if (!can_read()) return std::nullopt;
  return fifo_.pop();
}

}  // namespace vapres::comm
