// DCR (Device Control Register) bus and PLB-to-DCR bridge.
//
// Each PRSocket exposes one DCR as a slave peripheral; the MicroBlaze
// reaches it through a PLB-to-DCR bridge (Section III.B, ref [11]).
// DcrBus routes 10-bit-style addresses to slave registers; the bridge's
// contribution is the per-access latency the MicroBlaze pays, accounted
// in processor cycles.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/check.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::comm {

using DcrAddress = std::uint32_t;
using DcrValue = std::uint32_t;

/// A DCR slave: one 32-bit control register with write side effects.
class DcrSlave {
 public:
  virtual ~DcrSlave() = default;
  virtual DcrValue dcr_read() const = 0;
  virtual void dcr_write(DcrValue value) = 0;
  virtual std::string dcr_name() const = 0;
};

class DcrBus {
 public:
  /// Cycle cost of one bridged access, paid by the MicroBlaze. The
  /// PLB-to-DCR bridge serializes a PLB transaction into the DCR daisy
  /// chain; a handful of cycles per access.
  static constexpr int kBridgeAccessCycles = 6;

  /// Maps `slave` at `address`. The slave must outlive the bus.
  void map(DcrAddress address, DcrSlave* slave);
  void unmap(DcrAddress address);

  DcrValue read(DcrAddress address) const;
  void write(DcrAddress address, DcrValue value);

  bool mapped(DcrAddress address) const { return slaves_.count(address) > 0; }
  std::size_t slave_count() const { return slaves_.size(); }

  std::uint64_t total_accesses() const { return accesses_; }

 private:
  // Checkpoint/restore overlays the access counter, which restore-time
  // socket writes would otherwise inflate (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  DcrSlave* find(DcrAddress address) const;

  std::map<DcrAddress, DcrSlave*> slaves_;
  mutable std::uint64_t accesses_ = 0;
};

}  // namespace vapres::comm
