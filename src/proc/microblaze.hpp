// MicroBlaze-class controller model.
//
// The VAPRES controlling region runs software modules on a soft-core
// MicroBlaze (Section III.A). The evaluation never depends on the ISA —
// it depends on *what the software does to the system and how many cycles
// it spends doing it*. So the model executes cooperative SoftwareTasks,
// one step per processor cycle when the core is idle, and charges cycle
// costs for bus accesses and long-running driver calls (reconfiguration)
// through an explicit busy counter. This substitution is documented in
// DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "comm/dcr.hpp"
#include "proc/interrupt.hpp"
#include "sim/clock.hpp"
#include "sim/component.hpp"
#include "sim/event_queue.hpp"

namespace vapres::sim {
class Simulator;
}  // namespace vapres::sim

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::proc {

class Microblaze;

/// A software module: cooperative task stepped once per idle processor
/// cycle. Long operations charge time via Microblaze::busy_for().
class SoftwareTask {
 public:
  virtual ~SoftwareTask() = default;
  /// One scheduling quantum. Return true when the task is finished and
  /// should be descheduled.
  virtual bool step(Microblaze& mb) = 0;
  virtual std::string task_name() const { return "<task>"; }
};

/// Adapts a callable to SoftwareTask.
class FunctionTask final : public SoftwareTask {
 public:
  using Fn = std::function<bool(Microblaze&)>;
  explicit FunctionTask(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  bool step(Microblaze& mb) override { return fn_(mb); }
  std::string task_name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
};

class Microblaze final : public sim::Clocked {
 public:
  Microblaze(std::string name, sim::ClockDomain& domain, comm::DcrBus& dcr);
  ~Microblaze() override;

  Microblaze(const Microblaze&) = delete;
  Microblaze& operator=(const Microblaze&) = delete;

  std::string name() const override { return name_; }
  sim::ClockDomain& domain() { return domain_; }
  comm::DcrBus& dcr_bus() { return dcr_; }

  /// Registers a task (not owned). Tasks are stepped round-robin, one per
  /// idle cycle. Finished tasks are removed automatically.
  void add_task(SoftwareTask* task);
  void remove_task(SoftwareTask* task);
  std::size_t task_count() const { return tasks_.size(); }

  // ---- Software-visible operations (call from task steps) -------------

  /// PRSocket DCR access through the PLB-to-DCR bridge: immediate effect,
  /// charges the bridge latency.
  void dcr_write(comm::DcrAddress addr, comm::DcrValue value);
  comm::DcrValue dcr_read(comm::DcrAddress addr);

  /// Marks the core busy for `n` cycles (a blocking driver call). The
  /// span is tracked analytically: the next commit anchors an expiry
  /// cycle instead of decrementing a counter every edge, so a long
  /// driver call (a PR transfer is millions of cycles) costs O(1) host
  /// work when the activity kernel can sleep the core through it.
  void busy_for(sim::Cycles n);

  /// Busy for `n` cycles, then run `on_complete` (still on this core).
  void busy_for(sim::Cycles n, std::function<void()> on_complete);

  bool busy() const { return busy_pending_ > 0 || busy_anchored_; }

  /// Wires the owning simulator so busy spans can be slept through: the
  /// expiry edge is delivered by a scheduled wake event. Without it the
  /// core simply stays awake while busy — identical behaviour, no skip.
  void set_simulator(sim::Simulator* sim) { sim_ = sim; }

  // ---- Interrupts ------------------------------------------------------

  /// Cycles charged per ISR dispatch (context save/restore).
  static constexpr sim::Cycles kIsrOverheadCycles = 12;

  /// Attaches an interrupt controller and the handler invoked for each
  /// pending interrupt. The handler runs between task quanta when the
  /// core is idle; the interrupt is acknowledged after it returns.
  using InterruptHandler = std::function<void(int irq, Microblaze&)>;
  void attach_interrupts(InterruptController* intc,
                         InterruptHandler handler);
  InterruptController* intc() { return intc_; }
  std::uint64_t interrupts_serviced() const { return interrupts_serviced_; }

  /// Current processor cycle count.
  sim::Cycles cycle() const { return domain_.cycle_count(); }

  std::uint64_t total_busy_cycles() const { return total_busy_cycles_; }

  void eval() override {}
  void commit() override;
  /// The core sleeps when it has nothing schedulable: no tasks, no
  /// un-anchored busy work, and no interrupt controller to sample (the
  /// intc latches sources every cycle, so attaching one pins the core
  /// awake). An *anchored* busy span may be slept through — but only
  /// once the expiry wake event is armed for the current expiry cycle,
  /// otherwise the expiry edge would never be delivered.
  /// add_task()/busy_for() re-arm the clock domain.
  bool quiescent() const override {
    if (intc_ != nullptr || busy_pending_ > 0) return false;
    if (busy_anchored_) {
      return busy_wake_.has_value() && busy_wake_cycle_ == busy_last_cycle_;
    }
    return tasks_.empty();
  }

 private:
  // Checkpoint/restore overlays the busy-span fields and re-arms the
  // expiry wake event through arm_busy_wake() (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  /// Schedules (or reschedules) the wake event for the expiry edge.
  /// Called from commit(), so "now" is edge-aligned and the event lands
  /// exactly on the expiry edge — events run before coincident edges,
  /// so the woken core receives that edge. No-op without a simulator.
  void arm_busy_wake();
  void disarm_busy_wake();

  std::string name_;
  sim::ClockDomain& domain_;
  comm::DcrBus& dcr_;
  sim::Simulator* sim_ = nullptr;
  std::vector<SoftwareTask*> tasks_;
  std::size_t next_task_ = 0;
  // Busy time is two-stage: busy_for() accumulates into busy_pending_,
  // and the next commit folds it into the absolute expiry cycle
  // busy_last_cycle_ (the last edge on which the core is still busy;
  // on_idle_ fires on that edge). Cycle-for-cycle equivalent to the old
  // per-edge decrement, but sleepable.
  sim::Cycles busy_pending_ = 0;
  bool busy_anchored_ = false;
  sim::Cycles busy_last_cycle_ = 0;
  std::optional<sim::EventQueue::EventId> busy_wake_;
  sim::Cycles busy_wake_cycle_ = 0;
  std::uint64_t total_busy_cycles_ = 0;
  std::function<void()> on_idle_;
  InterruptController* intc_ = nullptr;
  InterruptHandler interrupt_handler_;
  std::uint64_t interrupts_serviced_ = 0;
};

}  // namespace vapres::proc
