// xps_timer model.
//
// Section V.B measures reconfiguration time with the MicroBlaze xps_timer
// peripheral: a free-running counter of system-clock cycles. The model
// reads the clock domain's cycle counter, so timed intervals are exact.
#pragma once

#include <string>

#include "sim/clock.hpp"

namespace vapres::proc {

class XpsTimer {
 public:
  explicit XpsTimer(const sim::ClockDomain& domain) : domain_(domain) {}

  /// Captures the current cycle count as the interval start.
  void start() {
    start_cycle_ = domain_.cycle_count();
    running_ = true;
  }

  /// Stops and returns the elapsed cycles since start().
  sim::Cycles stop() {
    VAPRES_REQUIRE(running_, "xps_timer stopped without start");
    running_ = false;
    stopped_elapsed_ = domain_.cycle_count() - start_cycle_;
    return stopped_elapsed_;
  }

  /// Elapsed cycles: live value while running, captured value after stop.
  sim::Cycles elapsed_cycles() const {
    return running_ ? domain_.cycle_count() - start_cycle_ : stopped_elapsed_;
  }

  /// Elapsed time in seconds at the domain's current frequency.
  double elapsed_seconds() const {
    return static_cast<double>(elapsed_cycles()) /
           (domain_.frequency_mhz() * 1e6);
  }

 private:
  const sim::ClockDomain& domain_;
  sim::Cycles start_cycle_ = 0;
  sim::Cycles stopped_elapsed_ = 0;
  bool running_ = false;
};

}  // namespace vapres::proc
