#include "proc/interrupt.hpp"

namespace vapres::proc {

int InterruptController::add_source(std::string name,
                                    std::function<bool()> level) {
  VAPRES_REQUIRE(level != nullptr, "interrupt source needs a predicate");
  VAPRES_REQUIRE(num_sources() < kMaxSources,
                 "interrupt controller supports 32 sources");
  sources_.push_back(Source{std::move(name), std::move(level)});
  return num_sources() - 1;
}

void InterruptController::check_irq(int irq) const {
  VAPRES_REQUIRE(irq >= 0 && irq < num_sources(),
                 "interrupt number out of range");
}

const std::string& InterruptController::source_name(int irq) const {
  check_irq(irq);
  return sources_[static_cast<std::size_t>(irq)].name;
}

void InterruptController::enable(int irq, bool enabled) {
  check_irq(irq);
  const std::uint32_t bit = 1u << irq;
  if (enabled) {
    enable_mask_ |= bit;
  } else {
    enable_mask_ &= ~bit;
    pending_ &= ~bit;
  }
}

bool InterruptController::enabled(int irq) const {
  check_irq(irq);
  return (enable_mask_ & (1u << irq)) != 0;
}

void InterruptController::sample() {
  for (int i = 0; i < num_sources(); ++i) {
    const std::uint32_t bit = 1u << i;
    if ((enable_mask_ & bit) == 0 || (pending_ & bit) != 0) continue;
    if (sources_[static_cast<std::size_t>(i)].level()) {
      pending_ |= bit;
      ++total_latched_;
    }
  }
}

int InterruptController::next_pending() const {
  if (pending_ == 0) return -1;
  for (int i = 0; i < num_sources(); ++i) {
    if ((pending_ & (1u << i)) != 0) return i;
  }
  return -1;
}

void InterruptController::acknowledge(int irq) {
  check_irq(irq);
  pending_ &= ~(1u << irq);
}

}  // namespace vapres::proc
