#include "proc/microblaze.hpp"

#include <algorithm>

#include "obs/bus.hpp"
#include "sim/check.hpp"
#include "sim/simulator.hpp"

namespace vapres::proc {

namespace {

/// Tracks are registered per task name, so each software task gets its
/// own lane in the exported trace. Guarded by the bus mask: no string
/// work when the proc subsystem is not being captured.
void note_task_event(std::uint16_t code, SoftwareTask* task,
                     sim::ClockDomain& domain) {
  auto& bus = obs::EventBus::instance();
  if (!bus.enabled(obs::Subsystem::kProc)) return;
  bus.instant(obs::Subsystem::kProc, code, bus.track(task->task_name()),
              domain.now(), domain.cycle_count());
}

}  // namespace

Microblaze::Microblaze(std::string name, sim::ClockDomain& domain,
                       comm::DcrBus& dcr)
    : name_(std::move(name)), domain_(domain), dcr_(dcr) {
  domain_.attach(this);
}

Microblaze::~Microblaze() {
  disarm_busy_wake();
  domain_.detach(this);
}

void Microblaze::add_task(SoftwareTask* task) {
  VAPRES_REQUIRE(task != nullptr, "cannot schedule null task");
  tasks_.push_back(task);
  note_task_event(obs::ev::kTaskScheduled, task, domain_);
  wake();
}

void Microblaze::remove_task(SoftwareTask* task) {
  auto it = std::find(tasks_.begin(), tasks_.end(), task);
  if (it == tasks_.end()) return;
  note_task_event(obs::ev::kTaskDescheduled, task, domain_);
  const auto idx = static_cast<std::size_t>(it - tasks_.begin());
  tasks_.erase(it);
  if (next_task_ > idx) --next_task_;
  if (!tasks_.empty()) next_task_ %= tasks_.size();
}

void Microblaze::dcr_write(comm::DcrAddress addr, comm::DcrValue value) {
  dcr_.write(addr, value);
  busy_for(comm::DcrBus::kBridgeAccessCycles);
}

comm::DcrValue Microblaze::dcr_read(comm::DcrAddress addr) {
  const comm::DcrValue v = dcr_.read(addr);
  busy_for(comm::DcrBus::kBridgeAccessCycles);
  return v;
}

void Microblaze::busy_for(sim::Cycles n) {
  busy_pending_ += n;
  total_busy_cycles_ += n;
  wake();
}

void Microblaze::arm_busy_wake() {
  if (sim_ == nullptr) return;  // no skip; the core just stays awake
  if (busy_wake_.has_value() && busy_wake_cycle_ == busy_last_cycle_) return;
  disarm_busy_wake();
  const sim::Cycles delta = busy_last_cycle_ - domain_.cycle_count();
  busy_wake_cycle_ = busy_last_cycle_;
  busy_wake_ = sim_->schedule_after_cycles(domain_, delta, [this] {
    busy_wake_.reset();
    wake();
  });
}

void Microblaze::disarm_busy_wake() {
  if (!busy_wake_.has_value()) return;
  if (sim_ != nullptr) sim_->cancel(*busy_wake_);
  busy_wake_.reset();
}

void Microblaze::busy_for(sim::Cycles n, std::function<void()> on_complete) {
  VAPRES_REQUIRE(on_idle_ == nullptr,
                 name_ + ": a completion is already pending");
  busy_for(n);
  on_idle_ = std::move(on_complete);
}

void Microblaze::attach_interrupts(InterruptController* intc,
                                   InterruptHandler handler) {
  VAPRES_REQUIRE(intc != nullptr && handler != nullptr,
                 name_ + ": interrupt wiring needs intc and handler");
  intc_ = intc;
  interrupt_handler_ = std::move(handler);
  wake();
}

void Microblaze::commit() {
  // The intc samples its sources every cycle, even while the core is
  // busy — pending interrupts latch and wait.
  if (intc_ != nullptr) intc_->sample();

  // Fold newly-charged busy time into the absolute expiry cycle. Work
  // charged during a previous commit on edge E first reaches this fold on
  // edge E+1, so anchoring n cycles here ends on edge E+n — exactly where
  // a per-edge countdown started at E would hit zero.
  if (busy_pending_ > 0) {
    if (busy_anchored_) {
      busy_last_cycle_ += busy_pending_;
    } else {
      busy_anchored_ = true;
      busy_last_cycle_ = domain_.cycle_count() + busy_pending_ - 1;
    }
    busy_pending_ = 0;
  }

  if (busy_anchored_) {
    if (domain_.cycle_count() < busy_last_cycle_) {
      // Still busy: arm (or retarget) the expiry wake so the activity
      // kernel may sleep the core through the remainder of the span.
      arm_busy_wake();
      return;
    }
    busy_anchored_ = false;
    disarm_busy_wake();
    if (on_idle_) {
      auto fn = std::move(on_idle_);
      on_idle_ = nullptr;
      fn();
    }
    return;
  }

  // Interrupts preempt the task round-robin.
  if (intc_ != nullptr) {
    const int irq = intc_->next_pending();
    if (irq >= 0) {
      busy_for(kIsrOverheadCycles);
      interrupt_handler_(irq, *this);
      intc_->acknowledge(irq);
      ++interrupts_serviced_;
      return;
    }
  }

  if (tasks_.empty()) return;

  // Round-robin: one task quantum per idle cycle.
  next_task_ %= tasks_.size();
  SoftwareTask* task = tasks_[next_task_];
  const bool done = task->step(*this);
  // The task may have been removed (or others added) during step().
  if (done) {
    remove_task(task);
  } else {
    auto it = std::find(tasks_.begin(), tasks_.end(), task);
    if (it != tasks_.end()) {
      next_task_ = (static_cast<std::size_t>(it - tasks_.begin()) + 1) %
                   tasks_.size();
    }
  }
}

}  // namespace vapres::proc
