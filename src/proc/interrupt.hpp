// Interrupt controller (xps_intc) model.
//
// The static region's intc (priced in the resource model) lets software
// modules block on events instead of polling: interrupt sources are
// level predicates (canonically "FSL r-link not empty"); the controller
// latches enabled, asserted sources and the MicroBlaze dispatches the
// lowest-numbered pending one to its handler between task quanta. This
// removes the polling cost from event-driven software modules (the
// monitoring watcher of Figure 5 step 2 is the motivating user).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/check.hpp"

namespace vapres::proc {

class InterruptController {
 public:
  static constexpr int kMaxSources = 32;

  /// Registers a level-sensitive source; returns its interrupt number.
  /// The predicate is sampled once per processor cycle.
  int add_source(std::string name, std::function<bool()> level);

  int num_sources() const { return static_cast<int>(sources_.size()); }
  const std::string& source_name(int irq) const;

  /// Interrupt enable register (bit per source). All disabled at reset.
  void enable(int irq, bool enabled = true);
  bool enabled(int irq) const;

  /// Samples all sources and latches newly asserted enabled ones into
  /// the pending register (called by the Microblaze each cycle).
  void sample();

  /// Lowest-numbered pending interrupt, or -1. Does not acknowledge.
  int next_pending() const;

  /// Acknowledge: clears the pending latch for `irq` (level sources
  /// re-latch on the next sample if still asserted).
  void acknowledge(int irq);

  std::uint32_t pending_mask() const { return pending_; }
  std::uint64_t total_latched() const { return total_latched_; }

 private:
  void check_irq(int irq) const;

  struct Source {
    std::string name;
    std::function<bool()> level;
  };
  std::vector<Source> sources_;
  std::uint32_t enable_mask_ = 0;
  std::uint32_t pending_ = 0;
  std::uint64_t total_latched_ = 0;
};

}  // namespace vapres::proc
