#include "proc/timer.hpp"

// XpsTimer is header-only; this translation unit anchors the target.
