// Structured-event taxonomy for the observability layer.
//
// Every record the obs::EventBus carries is typed: a subsystem id, an
// event kind (instant / span begin / span end / counter sample), a
// subsystem-local event code, a track id (one track per clock domain,
// PRR, or software task — docs/OBSERVABILITY.md), and two u64 arguments.
// No strings travel on the hot path; names are resolved from the static
// tables below only at export time.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace vapres::obs {

/// Emitting subsystems. Each has a bit in the EventBus enable mask.
enum class Subsystem : unsigned {
  kKernel = 0,   ///< simulation kernel: domain sleep/wake
  kReconfig = 1, ///< ReconfigManager transfer paths
  kSwitch = 2,   ///< ModuleSwitcher 9-step protocol
  kSched = 3,    ///< ApplicationScheduler admission/placement/launch
  kBitman = 4,   ///< BitstreamManager cache + prefetch
  kFault = 5,    ///< FaultInjector inject/recover
  kProc = 6,     ///< MicroBlaze software-task scheduling
  kFleet = 7,    ///< fleet control-plane routing/migration/quota decisions
  kCount = 8,
};

const char* subsystem_name(Subsystem s);

enum class EventKind : std::uint8_t {
  kInstant = 0,  ///< a point event
  kBegin = 1,    ///< opens a duration span on its track
  kEnd = 2,      ///< closes the innermost open span on its track
  kCounter = 3,  ///< a sampled counter value (arg0 = value)
};

/// One trace record. 32 bytes, trivially copyable; the ring buffer
/// stores these by value.
struct Event {
  sim::Picoseconds time_ps = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint32_t track = 0;  ///< EventBus::track() id (0 = "main")
  std::uint16_t code = 0;   ///< subsystem-local; named via event_name()
  Subsystem subsystem = Subsystem::kKernel;
  EventKind kind = EventKind::kInstant;
};

// ---- Subsystem-local event codes ---------------------------------------
// Code 0 is reserved ("none") in every subsystem so a cleared VCD track
// reads as idle.

namespace ev {

// kKernel
enum : std::uint16_t {
  kDomainSleep = 1,  ///< every component of the domain went quiescent
  kDomainWake = 2,   ///< a sleeping domain re-armed
};

// kReconfig (span codes per transfer path; instants for recovery)
enum : std::uint16_t {
  kCf2Icap = 1,
  kArray2Icap = 2,
  kCfStream = 3,
  kCf2Array = 4,
  kRetry = 5,            ///< instant: attempt repeated after backoff
  kSourceFallback = 6,   ///< instant: SDRAM source abandoned for CF
  kPermanentFailure = 7, ///< instant: transfer gave up
};

// kSwitch: the nine protocol steps of Figure 5, each a span. The paper
// circles the reconfigure/reroute numbers 3..9; the model's nine states
// split 4 and 9 into their quiesce + reroute halves.
enum : std::uint16_t {
  kStep1Reconfigure = 1,       // (3) PR of the spare PRR
  kStep2QuiesceUpstream = 2,   // (4) drain in-flight upstream words
  kStep3RerouteUpstream = 3,   // (4) input re-routed to the new module
  kStep4SendFlush = 4,         // (5) CMD_FLUSH to the old module
  kStep5CollectState = 5,      // (6) state frame over the r-link
  kStep6InitNewModule = 6,     // (7) LOAD_STATE + reset release
  kStep7WaitIomEos = 7,        // (8) EOS word reaches the IOM sink
  kStep8QuiesceSrc = 8,        // (9) drain the old module's producer
  kStep9RerouteDownstream = 9, // (9) output re-routed; switch complete
  kSwitchRollback = 10,        ///< instant: PR failed, switch rolled back
};
inline constexpr int kNumSwitchSteps = 9;

// kSched
enum : std::uint16_t {
  kSubmit = 1,    ///< instant: request queued (arg0 = app id)
  kAdmission = 2, ///< span: one try_admit walk (arg0 = app id)
  kLaunch = 3,    ///< instant: app running (arg0 = app id)
  kReject = 4,    ///< instant: admission failed (arg0 = app id)
  kPreempt = 5,   ///< instant: victim evicted (arg0 = victim app id)
  kMigrate = 6,   ///< span: one live defrag relocation
  kStop = 7,      ///< instant: app stopped (arg0 = app id)
};

// kBitman
enum : std::uint16_t {
  kHit = 1,      ///< instant: demand reconfiguration served warm
  kMiss = 2,     ///< instant: demand reconfiguration served cold
  kStage = 3,    ///< span: cf2array staging (arg0 = bytes)
  kEvict = 4,    ///< instant: LRU eviction (arg0 = bytes)
  kInvalidate = 5,
  kPrefetchIssue = 6,
  kPrefetchComplete = 7,
};

// kFault
enum : std::uint16_t {
  kInject = 1,   ///< instant: a fault fired (arg0 = FaultSite)
  kRecover = 2,  ///< instant: a recovery was reported (arg0 = RecoveryEvent)
};

// kProc
enum : std::uint16_t {
  kTaskScheduled = 1,   ///< instant: software task added
  kTaskDescheduled = 2, ///< instant: software task removed
};

// kFleet
enum : std::uint16_t {
  kRoute = 1,         ///< span: one routed submission (arg0 = fleet app id)
  kFallback = 2,      ///< instant: fabric rejected, trying next (arg0 = fabric)
  kFleetMigrate = 3,  ///< span: cross-fabric move (arg0 = fleet app id)
  kQuotaReject = 4,   ///< instant: governor refused admission
  kQuotaPreempt = 5,  ///< instant: over-quota app evicted for a starved tenant
  kQuotaGrow = 6,     ///< instant: tenant budget grew (arg1 = new budget)
  kQuotaShrink = 7,   ///< instant: tenant budget shrank (arg1 = new budget)
  kAgentRestart = 8,  ///< instant: control-plane agent restarted
                      ///< (arg0 = AgentId, arg1 = journal version)
  kReconcile = 9,     ///< instant: table-vs-scheduler reconcile sweep
                      ///< (arg0 = checks, arg1 = violations)
  kHealthBreach = 10,  ///< instant: an SLO rule tripped (arg0 = rule id,
                       ///< arg1 = evaluated value)
  kHealthClear = 11,   ///< instant: a breached rule cleared (arg0 = rule id)
  kHealthIsolate = 12, ///< instant: fabric isolation toggled
                       ///< (arg0 = fabric, arg1 = 1 isolate / 0 restore)
  kFlightRecord = 13,  ///< instant: flight-recorder bundle written
                       ///< (arg0 = bundle seq)
};

}  // namespace ev

/// Human-readable name for (subsystem, code); "none" for code 0 and
/// "event<N>" for unknown codes (a forward-compatible exporter never
/// fails on an unnamed event).
const char* event_name(Subsystem s, std::uint16_t code);

}  // namespace vapres::obs
