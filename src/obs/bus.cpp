#include "obs/bus.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sim/check.hpp"

namespace vapres::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* subsystem_name(Subsystem s) {
  switch (s) {
    case Subsystem::kKernel: return "kernel";
    case Subsystem::kReconfig: return "reconfig";
    case Subsystem::kSwitch: return "switch";
    case Subsystem::kSched: return "sched";
    case Subsystem::kBitman: return "bitman";
    case Subsystem::kFault: return "fault";
    case Subsystem::kProc: return "proc";
    case Subsystem::kFleet: return "fleet";
    case Subsystem::kCount: break;
  }
  return "unknown";
}

const char* event_name(Subsystem s, std::uint16_t code) {
  if (code == 0) return "none";
  switch (s) {
    case Subsystem::kKernel:
      switch (code) {
        case ev::kDomainSleep: return "domain_sleep";
        case ev::kDomainWake: return "domain_wake";
      }
      break;
    case Subsystem::kReconfig:
      switch (code) {
        case ev::kCf2Icap: return "cf2icap";
        case ev::kArray2Icap: return "array2icap";
        case ev::kCfStream: return "cf2icap_streamed";
        case ev::kCf2Array: return "cf2array";
        case ev::kRetry: return "retry";
        case ev::kSourceFallback: return "source_fallback";
        case ev::kPermanentFailure: return "permanent_failure";
      }
      break;
    case Subsystem::kSwitch:
      switch (code) {
        case ev::kStep1Reconfigure: return "step1.reconfigure";
        case ev::kStep2QuiesceUpstream: return "step2.quiesce_upstream";
        case ev::kStep3RerouteUpstream: return "step3.reroute_upstream";
        case ev::kStep4SendFlush: return "step4.send_flush";
        case ev::kStep5CollectState: return "step5.collect_state";
        case ev::kStep6InitNewModule: return "step6.init_new_module";
        case ev::kStep7WaitIomEos: return "step7.wait_iom_eos";
        case ev::kStep8QuiesceSrc: return "step8.quiesce_src";
        case ev::kStep9RerouteDownstream: return "step9.reroute_downstream";
        case ev::kSwitchRollback: return "rollback";
      }
      break;
    case Subsystem::kSched:
      switch (code) {
        case ev::kSubmit: return "submit";
        case ev::kAdmission: return "admission";
        case ev::kLaunch: return "launch";
        case ev::kReject: return "reject";
        case ev::kPreempt: return "preempt";
        case ev::kMigrate: return "migrate";
        case ev::kStop: return "stop";
      }
      break;
    case Subsystem::kBitman:
      switch (code) {
        case ev::kHit: return "hit";
        case ev::kMiss: return "miss";
        case ev::kStage: return "stage";
        case ev::kEvict: return "evict";
        case ev::kInvalidate: return "invalidate";
        case ev::kPrefetchIssue: return "prefetch_issue";
        case ev::kPrefetchComplete: return "prefetch_complete";
      }
      break;
    case Subsystem::kFault:
      switch (code) {
        case ev::kInject: return "inject";
        case ev::kRecover: return "recover";
      }
      break;
    case Subsystem::kProc:
      switch (code) {
        case ev::kTaskScheduled: return "task_scheduled";
        case ev::kTaskDescheduled: return "task_descheduled";
      }
      break;
    case Subsystem::kFleet:
      switch (code) {
        case ev::kRoute: return "route";
        case ev::kFallback: return "fallback";
        case ev::kFleetMigrate: return "migrate";
        case ev::kQuotaReject: return "quota_reject";
        case ev::kQuotaPreempt: return "quota_preempt";
        case ev::kQuotaGrow: return "quota_grow";
        case ev::kQuotaShrink: return "quota_shrink";
        case ev::kAgentRestart: return "agent_restart";
        case ev::kReconcile: return "reconcile";
        case ev::kHealthBreach: return "health_breach";
        case ev::kHealthClear: return "health_clear";
        case ev::kHealthIsolate: return "health_isolate";
        case ev::kFlightRecord: return "flight_record";
      }
      break;
    case Subsystem::kCount:
      break;
  }
  return "event?";
}

EventBus::EventBus() : ring_(kDefaultCapacity) {
  tracks_.push_back("main");
  track_ids_["main"] = 0;
}

EventBus& EventBus::instance() {
  static EventBus bus;
  return bus;
}

void EventBus::enable(std::uint32_t subsystem_mask, std::size_t capacity) {
  VAPRES_REQUIRE(capacity >= 2, "event ring needs at least 2 slots");
  mask_ = subsystem_mask;
  const std::size_t cap = round_up_pow2(capacity);
  if (cap != ring_.size()) {
    ring_.assign(cap, Event{});
  }
  head_ = 0;
}

std::uint32_t EventBus::track(const std::string& name) {
  const auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tracks_.size());
  tracks_.push_back(name);
  track_ids_[name] = id;
  return id;
}

std::size_t EventBus::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(head_, ring_.size()));
}

std::uint64_t EventBus::dropped() const {
  return head_ > ring_.size() ? head_ - ring_.size() : 0;
}

std::vector<Event> EventBus::snapshot() const {
  std::vector<Event> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = head_ - n;
  for (std::uint64_t i = first; i < head_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i) & (ring_.size() - 1)]);
  }
  return out;
}

void EventBus::clear() { head_ = 0; }

void EventBus::publish_gauges() const {
  Registry& reg = Registry::instance();
  reg.gauge("obs.bus.dropped").set(static_cast<std::int64_t>(dropped()));
  reg.gauge("obs.bus.retained").set(static_cast<std::int64_t>(size()));
  reg.gauge("obs.bus.capacity").set(static_cast<std::int64_t>(capacity()));
  reg.gauge("obs.bus.total_emitted").set(
      static_cast<std::int64_t>(total_emitted()));
}

Span Span::begin(Subsystem s, std::uint16_t code, std::uint32_t track,
                 sim::Picoseconds now, std::uint64_t arg0) {
  Span span;
  span.subsystem_ = s;
  span.code_ = code;
  span.track_ = track;
  span.begin_ps_ = now;
  span.open_ = true;
  EventBus::instance().begin_span(s, code, track, now, arg0);
  return span;
}

sim::Picoseconds Span::end(sim::Picoseconds now, Histogram* hist,
                           std::int64_t cycles) {
  if (!open_) return 0;
  open_ = false;
  const sim::Picoseconds duration = now - begin_ps_;
  EventBus::instance().end_span(subsystem_, code_, track_, now,
                                static_cast<std::uint64_t>(duration));
  if (hist != nullptr) {
    hist->record(cycles >= 0 ? static_cast<std::uint64_t>(cycles)
                             : static_cast<std::uint64_t>(duration));
  }
  return duration;
}

}  // namespace vapres::obs
