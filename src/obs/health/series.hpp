// Fixed-capacity health time-series over the metrics registry.
//
// A HealthSampler periodically freezes obs::Registry into per-metric
// ring time-series keyed by a typed prefix: counters become wrap-aware
// deltas ("rate:<name>"), gauges become levels ("gauge:<name>"), and
// histograms become bucket-quantile tracks ("p50:<name>" /
// "p99:<name>"). Samples are stamped with the *simulated* cycle they
// were taken at, never wall time, so two identical runs produce
// byte-identical series and a byte-stable FNV digest. The sampler is
// observational scratch: restarting it loses history but never changes
// a health decision — decision state lives in journaled StateDb rows
// (fleet/health_agent.hpp, docs/HEALTH.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace vapres::snap {
class SnapshotWriter;
}

namespace vapres::obs {
class Registry;
}

namespace vapres::obs::health {

/// Wrap/reset-aware counter delta (the Prometheus rate convention): a
/// reading below the previous one is treated as a counter reset and the
/// whole new reading counts as the delta.
inline std::uint64_t counter_delta(std::uint64_t prev, std::uint64_t cur) {
  return cur >= prev ? cur - prev : cur;
}

struct Sample {
  sim::Cycles cycle = 0;
  std::int64_t value = 0;
};

/// Bounded ring of samples, oldest overwritten first. The digest folds
/// only the retained window, oldest-first, so it is a pure function of
/// the last `capacity` pushes.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity);

  void push(sim::Cycles cycle, std::int64_t value);

  std::size_t size() const;
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t total_pushed() const { return head_; }

  /// i-th retained sample, oldest first (0 <= i < size()).
  Sample at(std::size_t i) const;
  /// Latest value (0 when empty).
  std::int64_t last() const;

  /// FNV-1a over the retained (cycle, value) pairs, oldest first.
  std::uint64_t digest() const;

 private:
  std::vector<Sample> ring_;
  std::uint64_t head_ = 0;  ///< monotonic write cursor
};

class HealthSampler {
 public:
  explicit HealthSampler(std::size_t series_capacity = 256);

  /// Freezes the process-wide Registry at simulated cycle `now`: one
  /// push per counter/gauge plus p50/p99 pushes per histogram. Also
  /// publishes the EventBus occupancy gauges (obs.bus.*) first, so
  /// trace loss is part of the frozen window.
  void sample(sim::Cycles now);

  std::uint64_t samples_taken() const { return samples_; }
  std::size_t num_series() const { return series_.size(); }
  /// nullptr when the key has never been sampled.
  const TimeSeries* series(const std::string& key) const;
  std::vector<std::string> keys() const;

  /// Fold of every series digest, keyed by name — byte-stable across
  /// identical runs.
  std::uint64_t digest() const;

  /// Serializes the retained window into an already-open snapshot
  /// section (the flight bundle's "flight.health" payload).
  void write_to(snap::SnapshotWriter& w) const;

 private:
  TimeSeries& at(const std::string& key);

  std::size_t capacity_;
  std::uint64_t samples_ = 0;
  std::map<std::string, TimeSeries> series_;           // ordered => deterministic
  std::map<std::string, std::uint64_t> last_counter_;  // raw value at last sample
};

}  // namespace vapres::obs::health
