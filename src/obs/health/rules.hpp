// SLO / health rule engine: threshold checks with hysteresis streaks.
//
// A rule reads one metric (counter rate, gauge level, gauge delta, or a
// histogram quantile), compares it against a threshold, and folds the
// verdict into a streak pair in the QuotaGovernor style: only
// `breach_observations` consecutive bad readings trip the rule, and
// only `clear_observations` consecutive good readings clear it again —
// a flapping signal cannot flap the remediation machinery.
//
// evaluate() is a pure function of (spec, raw reading, prior state), so
// the same state can live anywhere: tests drive it standalone, and the
// fleet HealthAgent persists RuleState inside journaled StateDb rows so
// a killed-and-restarted monitor resumes its streaks mid-count
// (docs/HEALTH.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vapres::obs::health {

enum class Source : std::uint8_t {
  kCounterRate = 0,   ///< wrap-aware delta of a Counter between evals
  kGauge = 1,         ///< Gauge level as-is
  kGaugeRate = 2,     ///< wrap-aware delta of a (monotone) Gauge
  kHistogramP99 = 3,  ///< Histogram::percentile(0.99)
  kHistogramP50 = 4,  ///< Histogram::percentile(0.50)
};

const char* source_name(Source s);

struct HealthRuleSpec {
  std::string name;    ///< unique within the rule set
  Source source = Source::kCounterRate;
  std::string metric;  ///< Registry metric name
  /// Fabric this rule indicts (drives isolate/drain); -1 = fleet-wide,
  /// observe-only.
  int fabric = -1;
  std::int64_t threshold = 0;
  /// true: reading > threshold is bad; false: reading < threshold is bad.
  bool breach_above = true;
  int breach_observations = 3;  ///< consecutive bad evals to trip
  int clear_observations = 5;   ///< consecutive good evals to clear
};

/// The complete per-rule evaluation state. Small and integer-only on
/// purpose: the HealthAgent packs it into one journal entry per eval.
struct RuleState {
  std::int64_t last_raw = 0;  ///< previous raw reading (rate sources)
  bool primed = false;        ///< first reading only primes last_raw
  int bad_streak = 0;
  int good_streak = 0;
  bool breached = false;
  std::uint64_t breaches = 0;  ///< lifetime trips
};

struct RuleOutcome {
  std::int64_t value = 0;  ///< the evaluated rate/level/quantile
  bool bad = false;
  bool tripped = false;  ///< healthy -> breached this eval
  bool cleared = false;  ///< breached -> healthy this eval
  RuleState state;       ///< post-eval state
};

class RuleEngine {
 public:
  explicit RuleEngine(std::vector<HealthRuleSpec> rules);

  int num_rules() const { return static_cast<int>(rules_.size()); }
  const HealthRuleSpec& rule(int id) const { return rules_[id]; }
  const std::vector<HealthRuleSpec>& rules() const { return rules_; }

  /// Raw reading for `r` from the process-wide Registry (counter value,
  /// gauge level, or histogram quantile — rate conversion happens in
  /// evaluate(), against state.last_raw).
  static std::int64_t read_raw(const HealthRuleSpec& r);

  /// Folds one raw reading into `state`. Pure: no registry access, no
  /// side effects. The first reading of a rate source only primes
  /// last_raw and is never counted bad.
  static RuleOutcome evaluate(const HealthRuleSpec& r, std::int64_t raw,
                              RuleState state);

 private:
  std::vector<HealthRuleSpec> rules_;
};

}  // namespace vapres::obs::health
