#include "obs/health/series.hpp"

#include "obs/bus.hpp"
#include "obs/metrics.hpp"
#include "snap/format.hpp"

namespace vapres::obs::health {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fold_u64(std::uint64_t& d, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    d ^= (v >> (8 * i)) & 0xff;
    d *= kFnvPrime;
  }
}

void fold_str(std::uint64_t& d, const std::string& s) {
  fold_u64(d, s.size());
  for (const char c : s) {
    d ^= static_cast<unsigned char>(c);
    d *= kFnvPrime;
  }
}

}  // namespace

TimeSeries::TimeSeries(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void TimeSeries::push(sim::Cycles cycle, std::int64_t value) {
  ring_[static_cast<std::size_t>(head_) % ring_.size()] = Sample{cycle, value};
  ++head_;
}

std::size_t TimeSeries::size() const {
  return head_ < ring_.size() ? static_cast<std::size_t>(head_) : ring_.size();
}

Sample TimeSeries::at(std::size_t i) const {
  const std::size_t n = size();
  if (i >= n) return Sample{};
  const std::uint64_t oldest = head_ - n;
  return ring_[static_cast<std::size_t>(oldest + i) % ring_.size()];
}

std::int64_t TimeSeries::last() const {
  const std::size_t n = size();
  return n == 0 ? 0 : at(n - 1).value;
}

std::uint64_t TimeSeries::digest() const {
  std::uint64_t d = kFnvOffset;
  const std::size_t n = size();
  fold_u64(d, n);
  for (std::size_t i = 0; i < n; ++i) {
    const Sample s = at(i);
    fold_u64(d, s.cycle);
    fold_u64(d, static_cast<std::uint64_t>(s.value));
  }
  return d;
}

HealthSampler::HealthSampler(std::size_t series_capacity)
    : capacity_(series_capacity == 0 ? 1 : series_capacity) {}

TimeSeries& HealthSampler::at(const std::string& key) {
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, TimeSeries(capacity_)).first;
  }
  return it->second;
}

void HealthSampler::sample(sim::Cycles now) {
  EventBus::instance().publish_gauges();
  const MetricsSnapshot snap = Registry::instance().snapshot();
  for (const auto& [name, value] : snap.counters) {
    auto last = last_counter_.find(name);
    const std::uint64_t prev = last == last_counter_.end() ? 0 : last->second;
    at("rate:" + name)
        .push(now, static_cast<std::int64_t>(counter_delta(prev, value)));
    last_counter_[name] = value;
  }
  for (const auto& [name, value] : snap.gauges) {
    at("gauge:" + name).push(now, value);
  }
  for (const auto& h : snap.histograms) {
    at("p50:" + h.name).push(now, static_cast<std::int64_t>(h.p50));
    at("p99:" + h.name).push(now, static_cast<std::int64_t>(h.p99));
  }
  ++samples_;
}

const TimeSeries* HealthSampler::series(const std::string& key) const {
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::string> HealthSampler::keys() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [key, ts] : series_) out.push_back(key);
  return out;
}

std::uint64_t HealthSampler::digest() const {
  std::uint64_t d = kFnvOffset;
  fold_u64(d, samples_);
  for (const auto& [key, ts] : series_) {
    fold_str(d, key);
    fold_u64(d, ts.digest());
  }
  return d;
}

void HealthSampler::write_to(snap::SnapshotWriter& w) const {
  w.u64(samples_);
  w.u64(series_.size());
  for (const auto& [key, ts] : series_) {
    w.str(key);
    const std::size_t n = ts.size();
    w.u64(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Sample s = ts.at(i);
      w.u64(s.cycle);
      w.i64(s.value);
    }
  }
}

}  // namespace vapres::obs::health
