#include "obs/health/rules.hpp"

#include "obs/health/series.hpp"
#include "obs/metrics.hpp"

namespace vapres::obs::health {

const char* source_name(Source s) {
  switch (s) {
    case Source::kCounterRate: return "counter_rate";
    case Source::kGauge: return "gauge";
    case Source::kGaugeRate: return "gauge_rate";
    case Source::kHistogramP99: return "histogram_p99";
    case Source::kHistogramP50: return "histogram_p50";
  }
  return "?";
}

RuleEngine::RuleEngine(std::vector<HealthRuleSpec> rules)
    : rules_(std::move(rules)) {}

std::int64_t RuleEngine::read_raw(const HealthRuleSpec& r) {
  Registry& reg = Registry::instance();
  switch (r.source) {
    case Source::kCounterRate:
      return static_cast<std::int64_t>(reg.counter(r.metric).value());
    case Source::kGauge:
    case Source::kGaugeRate:
      return reg.gauge(r.metric).value();
    case Source::kHistogramP99:
      return static_cast<std::int64_t>(reg.histogram(r.metric).percentile(0.99));
    case Source::kHistogramP50:
      return static_cast<std::int64_t>(reg.histogram(r.metric).percentile(0.50));
  }
  return 0;
}

RuleOutcome RuleEngine::evaluate(const HealthRuleSpec& r, std::int64_t raw,
                                 RuleState state) {
  RuleOutcome out;
  const bool rate = r.source == Source::kCounterRate ||
                    r.source == Source::kGaugeRate;
  if (rate) {
    if (!state.primed) {
      // First reading of a rate source: prime only. Not bad, not good —
      // streaks untouched, so a monitor brought up mid-incident neither
      // trips early nor eats into an existing clear streak.
      state.primed = true;
      state.last_raw = raw;
      out.state = state;
      return out;
    }
    out.value = static_cast<std::int64_t>(
        counter_delta(static_cast<std::uint64_t>(state.last_raw),
                      static_cast<std::uint64_t>(raw)));
    state.last_raw = raw;
  } else {
    state.primed = true;
    out.value = raw;
  }

  out.bad = r.breach_above ? out.value > r.threshold
                           : out.value < r.threshold;
  if (out.bad) {
    ++state.bad_streak;
    state.good_streak = 0;
    if (!state.breached && state.bad_streak >= r.breach_observations) {
      state.breached = true;
      ++state.breaches;
      out.tripped = true;
    }
  } else {
    ++state.good_streak;
    state.bad_streak = 0;
    if (state.breached && state.good_streak >= r.clear_observations) {
      state.breached = false;
      out.cleared = true;
    }
  }
  out.state = state;
  return out;
}

}  // namespace vapres::obs::health
