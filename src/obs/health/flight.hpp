// Black-box flight recorder: postmortem bundles on SLO breach or
// invariant failure.
//
// One bundle is one snap-format blob (magic "VSNP", per-section FNV
// digests — snap/format.hpp) written to <dir>/flight_<seq>.vsnp:
//
//   flight.meta      reason string, simulated cycle, bundle sequence
//   flight.snapshot  full-system snapshot blob (snap::SystemSnapshot;
//                    may be empty when no fabric was quiesced)
//   flight.trace     Chrome trace_event JSON of the EventBus ring
//   flight.journal   serialized fleet journal tail (may be empty)
//   flight.metrics   Registry text snapshot
//   flight.health    HealthSampler window + rule-state dump
//
// Everything in a bundle is a function of simulated state — no wall
// clock, no hostnames — so the bundle a deterministic rerun writes is
// byte-identical. A cap on bundles per recorder keeps a breach storm
// from filling the disk (docs/HEALTH.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace vapres::obs::health {

class HealthSampler;

class FlightRecorder {
 public:
  explicit FlightRecorder(std::string dir, std::size_t max_bundles = 8);

  const std::string& dir() const { return dir_; }
  std::uint64_t bundles_written() const { return seq_; }
  const std::vector<std::string>& paths() const { return paths_; }

  /// Writes one bundle and returns its path ("" once the cap is hit or
  /// when the directory cannot be created). `snapshot_blob` and
  /// `journal_tail` may be empty; `sampler` and `rule_dump` are
  /// optional. The trace and metrics sections are captured here, from
  /// the process-wide bus and registry.
  std::string record(const std::string& reason, sim::Cycles cycle,
                     const std::string& snapshot_blob,
                     const std::string& journal_tail,
                     const HealthSampler* sampler,
                     const std::string& rule_dump);

 private:
  std::string dir_;
  std::size_t max_bundles_;
  std::uint64_t seq_ = 0;
  std::vector<std::string> paths_;
};

}  // namespace vapres::obs::health
