#include "obs/health/flight.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"
#include "obs/health/series.hpp"
#include "obs/metrics.hpp"
#include "snap/format.hpp"

namespace vapres::obs::health {

FlightRecorder::FlightRecorder(std::string dir, std::size_t max_bundles)
    : dir_(std::move(dir)), max_bundles_(max_bundles) {}

std::string FlightRecorder::record(const std::string& reason,
                                   sim::Cycles cycle,
                                   const std::string& snapshot_blob,
                                   const std::string& journal_tail,
                                   const HealthSampler* sampler,
                                   const std::string& rule_dump) {
  if (dir_.empty() || seq_ >= max_bundles_) return "";

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return "";

  snap::SnapshotWriter w(seq_);
  w.begin_section("flight.meta");
  w.str(reason);
  w.u64(cycle);
  w.u64(seq_);
  w.end_section();

  w.begin_section("flight.snapshot");
  w.str(snapshot_blob);
  w.end_section();

  w.begin_section("flight.trace");
  std::ostringstream trace;
  write_chrome_trace(trace);
  w.str(trace.str());
  w.end_section();

  w.begin_section("flight.journal");
  w.str(journal_tail);
  w.end_section();

  w.begin_section("flight.metrics");
  w.str(Registry::instance().to_string());
  w.end_section();

  w.begin_section("flight.health");
  if (sampler != nullptr) {
    w.boolean(true);
    sampler->write_to(w);
  } else {
    w.boolean(false);
  }
  w.str(rule_dump);
  w.end_section();

  const std::string blob = w.finish();
  const std::string path =
      (std::filesystem::path(dir_) /
       ("flight_" + std::to_string(seq_) + ".vsnp")).string();
  std::ofstream out(path, std::ios::binary);
  if (!out) return "";
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.close();
  ++seq_;
  paths_.push_back(path);
  return path;
}

}  // namespace vapres::obs::health
