#include "obs/export.hpp"

#include <cstdio>
#include <iomanip>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sim/vcd.hpp"

namespace vapres::obs {

namespace {

const char* phase_of(EventKind kind) {
  switch (kind) {
    case EventKind::kInstant: return "i";
    case EventKind::kBegin: return "B";
    case EventKind::kEnd: return "E";
    case EventKind::kCounter: return "C";
  }
  return "i";
}

/// JSON string escaping for names (tracks come from user-visible
/// component names; keep the exporter robust).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_chrome_trace(std::ostream& out, const EventBus& bus) {
  const std::vector<Event> events = bus.snapshot();
  const std::vector<std::string>& tracks = bus.track_names();

  // ts is microseconds; six decimals keep the full ps resolution.
  out << std::fixed << std::setprecision(6);
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Metadata: subsystem -> process name, (subsystem, track) -> thread
  // name, emitted only for lanes that actually carry events.
  std::set<unsigned> pids;
  std::set<std::pair<unsigned, std::uint32_t>> lanes;
  for (const Event& e : events) {
    const auto pid = static_cast<unsigned>(e.subsystem);
    pids.insert(pid);
    lanes.insert({pid, e.track});
  }
  for (const unsigned pid : pids) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"name\":\"process_name\",\"args\":{\"name\":\""
        << subsystem_name(static_cast<Subsystem>(pid)) << "\"}}";
  }
  for (const auto& [pid, tid] : lanes) {
    const std::string& name =
        tid < tracks.size() ? tracks[tid] : "track?";
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(name) << "\"}}";
  }

  for (const Event& e : events) {
    const auto pid = static_cast<unsigned>(e.subsystem);
    sep();
    out << "{\"ph\":\"" << phase_of(e.kind) << "\",\"pid\":" << pid
        << ",\"tid\":" << e.track << ",\"ts\":"
        // trace_event timestamps are microseconds; keep ps resolution
        // as a fraction.
        << static_cast<double>(e.time_ps) / 1e6 << ",\"name\":\""
        << event_name(e.subsystem, e.code) << "\"";
    if (e.kind == EventKind::kInstant) out << ",\"s\":\"t\"";
    out << ",\"args\":{\"arg0\":" << e.arg0 << ",\"arg1\":" << e.arg1
        << "}}";
  }

  out << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped\":"
      << bus.dropped() << "}}\n";
}

void write_vcd_trace(std::ostream& out, const EventBus& bus) {
  const std::vector<Event> events = bus.snapshot();
  const std::vector<std::string>& tracks = bus.track_names();

  // One VCD word signal per (subsystem, track) lane, value = active code.
  std::map<std::pair<unsigned, std::uint32_t>, std::size_t> lane_index;
  for (const Event& e : events) {
    lane_index.emplace(
        std::pair<unsigned, std::uint32_t>{
            static_cast<unsigned>(e.subsystem), e.track},
        lane_index.size());
  }

  std::vector<std::uint32_t> state(lane_index.size(), 0);
  sim::VcdWriter vcd(out);
  for (const auto& [lane, index] : lane_index) {
    const std::string& track_name =
        lane.second < tracks.size() ? tracks[lane.second] : "track?";
    vcd.add_word(
        std::string("obs.") +
            subsystem_name(static_cast<Subsystem>(lane.first)) + "." +
            track_name,
        &state[index]);
  }
  vcd.write_header();

  // Chronological walk, batching coincident events before each sample.
  std::size_t i = 0;
  const std::size_t n = events.size();
  while (i < n) {
    const sim::Picoseconds t = events[i].time_ps;
    for (; i < n && events[i].time_ps == t; ++i) {
      const Event& e = events[i];
      const std::size_t lane = lane_index.at(
          {static_cast<unsigned>(e.subsystem), e.track});
      state[lane] = e.kind == EventKind::kEnd ? 0 : e.code;
    }
    vcd.sample(t);
  }
}

}  // namespace vapres::obs
