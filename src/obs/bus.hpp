// The structured event-tracing bus.
//
// Process-wide hub (mirroring sim::Trace, which it supersedes for
// structured data) collecting typed obs::Event records into a bounded
// power-of-two ring buffer. Disabled — the default — every emit call is
// one mask load and branch; no allocation, no string formatting, no
// ring traffic. Enabled, an emit is a couple of stores into the ring;
// when the ring is full the *oldest* record is overwritten and the
// dropped counter advances, so a long run keeps the most recent window.
//
// Tracks give events a home lane in the exporters: one track per clock
// domain, PRR, or software task, registered by name on first use. Track
// 0 is always "main".
//
// Exporters (Chrome trace_event JSON for Perfetto/chrome://tracing and
// the VCD writer) live in obs/export.hpp; metrics in obs/metrics.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "sim/time.hpp"

namespace vapres::obs {

class Histogram;

class EventBus {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  static EventBus& instance();

  /// Enables capture for the subsystems in `subsystem_mask` (bit i =
  /// Subsystem(i)) with a ring of at least `capacity` events (rounded up
  /// to a power of two). Clears previously captured events.
  void enable(std::uint32_t subsystem_mask = ~0u,
              std::size_t capacity = kDefaultCapacity);
  /// Stops capture. Captured events stay readable until the next
  /// enable() or clear().
  void disable() { mask_ = 0; }

  static constexpr std::uint32_t bit(Subsystem s) {
    return 1u << static_cast<unsigned>(s);
  }
  /// The one-branch hot-path guard.
  bool enabled(Subsystem s) const { return (mask_ & bit(s)) != 0; }
  bool enabled() const { return mask_ != 0; }
  std::uint32_t mask() const { return mask_; }

  /// Appends one record (no-op when the subsystem is disabled).
  void emit(const Event& e) {
    if (!enabled(e.subsystem)) return;
    push(e);
  }

  void instant(Subsystem s, std::uint16_t code, std::uint32_t track,
               sim::Picoseconds t, std::uint64_t arg0 = 0,
               std::uint64_t arg1 = 0) {
    if (!enabled(s)) return;
    push(Event{t, arg0, arg1, track, code, s, EventKind::kInstant});
  }
  void begin_span(Subsystem s, std::uint16_t code, std::uint32_t track,
                  sim::Picoseconds t, std::uint64_t arg0 = 0,
                  std::uint64_t arg1 = 0) {
    if (!enabled(s)) return;
    push(Event{t, arg0, arg1, track, code, s, EventKind::kBegin});
  }
  void end_span(Subsystem s, std::uint16_t code, std::uint32_t track,
                sim::Picoseconds t, std::uint64_t arg0 = 0,
                std::uint64_t arg1 = 0) {
    if (!enabled(s)) return;
    push(Event{t, arg0, arg1, track, code, s, EventKind::kEnd});
  }

  /// Looks up (or registers) a named track and returns its id. Track
  /// names are stable for the life of the bus; exporters use them as
  /// thread names.
  std::uint32_t track(const std::string& name);
  const std::vector<std::string>& track_names() const { return tracks_; }

  /// Events currently retained (<= capacity), oldest first.
  std::vector<Event> snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const { return ring_.size(); }
  /// Oldest records overwritten because the ring was full.
  std::uint64_t dropped() const;
  /// Lifetime records accepted (retained + dropped).
  std::uint64_t total_emitted() const { return head_; }

  /// Drops captured events and the drop counter; keeps mask and tracks.
  void clear();

  /// Publishes ring occupancy and trace loss as Registry gauges
  /// (obs.bus.dropped / retained / capacity / total_emitted), so a
  /// metrics snapshot shows whether the trace window is complete.
  /// Called off the hot path: by the health sampler, exporters, and
  /// harness reports.
  void publish_gauges() const;

 private:
  EventBus();

  void push(const Event& e) {
    ring_[static_cast<std::size_t>(head_) & (ring_.size() - 1)] = e;
    ++head_;
  }

  std::uint32_t mask_ = 0;
  std::vector<Event> ring_;
  std::uint64_t head_ = 0;  ///< monotonic write cursor
  std::vector<std::string> tracks_;
  std::map<std::string, std::uint32_t> track_ids_;
};

/// A duration span whose begin and end live in different callbacks (the
/// common case in a discrete-event model, where RAII scoping does not
/// match simulated time). Copyable value type; `end()` emits the closing
/// record and optionally feeds the duration to a latency histogram.
class Span {
 public:
  Span() = default;

  static Span begin(Subsystem s, std::uint16_t code, std::uint32_t track,
                    sim::Picoseconds now, std::uint64_t arg0 = 0);

  /// Emits the end record and returns the duration. `cycles` (when
  /// >= 0) is recorded into `hist` instead of the picosecond duration —
  /// control-path latencies are conventionally tracked in MicroBlaze
  /// cycles. Ending a never-begun span is a no-op returning 0.
  sim::Picoseconds end(sim::Picoseconds now, Histogram* hist = nullptr,
                       std::int64_t cycles = -1);

  bool open() const { return open_; }
  sim::Picoseconds begin_ps() const { return begin_ps_; }

 private:
  Subsystem subsystem_ = Subsystem::kKernel;
  std::uint16_t code_ = 0;
  std::uint32_t track_ = 0;
  sim::Picoseconds begin_ps_ = 0;
  bool open_ = false;
};

}  // namespace vapres::obs
