// Metrics registry: named counters, gauges, and log2-bucketed
// histograms.
//
// Subsystems register a metric once (name lookup, allocation) and keep
// the returned reference; bumping it afterwards is a plain integer
// operation. Registry::snapshot() freezes every value into a plain
// struct for reporting; to_string() renders the text export used by
// benches and examples. core::SystemStats publishes its whole snapshot
// here (core/stats.hpp), so ad-hoc stats structs and first-class
// metrics meet in one place.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

/// Power-of-two latency histogram: bucket 0 holds value 0, bucket i
/// (i >= 1) holds values in [2^(i-1), 2^i). 64 buckets cover the full
/// u64 range, so record() never clips.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  /// Upper bound of the bucket holding the p-quantile (0 < p <= 1).
  std::uint64_t percentile(double p) const;
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  void reset();

 private:
  // Checkpoint/restore overlays raw buckets and extrema — the public
  // surface can only re-record, which loses min_/max_ exactness
  // (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// A frozen histogram for snapshots.
struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

/// THE percentile convention. Every p50/p99 the harnesses, benches, and
/// health rules report comes through here (Histogram::percentile's
/// nearest-rank-over-log2-buckets rounding) — one implementation, one
/// rounding convention.
HistogramSummary summarize(const std::string& name, const Histogram& h);

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSummary> histograms;

  std::string to_string() const;
};

class Registry {
 public:
  static Registry& instance();

  /// Lookup-or-create by name; returned references stay valid for the
  /// registry's lifetime (reset() clears values, not registrations).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  std::string to_string() const { return snapshot().to_string(); }

  /// Summary of one histogram by name without registering it: a
  /// zero-count summary when the name was never recorded. Const —
  /// usable on a registry snapshot path that must not mutate.
  HistogramSummary summary(const std::string& name) const;

  /// Zeroes every metric (registrations and references survive). Tests
  /// and benches call this between scenarios; the registry is
  /// process-wide.
  void reset();

 private:
  Registry() = default;

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace vapres::obs
