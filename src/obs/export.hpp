// Event-trace exporters.
//
// write_chrome_trace() renders the bus's retained events as Chrome
// trace_event JSON (the "JSON Array Format" with metadata): open the
// file in Perfetto (ui.perfetto.dev) or chrome://tracing. Subsystems
// map to processes, tracks (clock domains, PRRs, software tasks) to
// threads, kBegin/kEnd spans to "B"/"E" duration events.
//
// write_vcd_trace() renders the same events through the existing
// sim::VcdWriter: one 32-bit signal per (subsystem, track) lane whose
// value is the active event code (0 = idle), so any waveform viewer
// shows the control-path activity next to the data-path dumps.
#pragma once

#include <ostream>

#include "obs/bus.hpp"

namespace vapres::obs {

void write_chrome_trace(std::ostream& out,
                        const EventBus& bus = EventBus::instance());

void write_vcd_trace(std::ostream& out,
                     const EventBus& bus = EventBus::instance());

}  // namespace vapres::obs
