#include "obs/metrics.hpp"

#include <sstream>

namespace vapres::obs {

namespace {

int bucket_of(std::uint64_t v) {
  if (v == 0) return 0;
  int b = 1;
  while (v >>= 1) ++b;
  return b;  // values in [2^(b-1), 2^b) land in bucket b
}

std::uint64_t bucket_upper_bound(int bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

}  // namespace

void Histogram::record(std::uint64_t v) {
  ++buckets_[static_cast<std::size_t>(bucket_of(v))];
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      p * static_cast<double>(count_) + 0.5);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= rank && seen > 0) {
      // Clamp the bucket bound into the observed range so p100 == max.
      const std::uint64_t bound = bucket_upper_bound(b);
      return bound > max_ ? max_ : bound;
    }
  }
  return max_;
}

void Histogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~std::uint64_t{0};
  max_ = 0;
}

HistogramSummary summarize(const std::string& name, const Histogram& h) {
  HistogramSummary s;
  s.name = name;
  s.count = h.count();
  s.sum = h.sum();
  s.min = h.min();
  s.max = h.max();
  s.mean = h.mean();
  s.p50 = h.percentile(0.50);
  s.p90 = h.percentile(0.90);
  s.p99 = h.percentile(0.99);
  return s;
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream os;
  os << "=== metrics registry ===\n";
  for (const auto& [name, value] : counters) {
    os << "counter " << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << "gauge " << name << " = " << value << "\n";
  }
  for (const HistogramSummary& h : histograms) {
    os << "histogram " << h.name << ": n=" << h.count << " mean=" << h.mean
       << " min=" << h.min << " p50=" << h.p50 << " p90=" << h.p90
       << " p99=" << h.p99 << " max=" << h.max << "\n";
  }
  return os.str();
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(summarize(name, *h));
  }
  return snap;
}

HistogramSummary Registry::summary(const std::string& name) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramSummary s;
    s.name = name;
    return s;
  }
  return summarize(name, *it->second);
}

void Registry::reset() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace vapres::obs
