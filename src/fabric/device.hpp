// Virtex-4-class device geometry.
//
// Everything the paper's floorplanning rules reason about is geometric:
// the CLB array, local clock regions (16 CLB rows tall, half the device
// wide, Section III.B.2), and slice/BRAM/DSP budgets. The numbers for the
// XC4VLX25 (ML401 board) and XC4VLX60 match the Xilinx DS112 datasheet;
// arbitrary devices can be constructed for parameter sweeps.
#pragma once

#include <string>

#include "fabric/resources.hpp"

namespace vapres::fabric {

class DeviceGeometry {
 public:
  DeviceGeometry(std::string name, int clb_rows, int clb_cols, int brams,
                 int dsps);

  /// The XC4VLX25 on the ML401 evaluation board used for the prototype.
  static DeviceGeometry xc4vlx25();
  /// The XC4VLX60 referenced in Section V.B.
  static DeviceGeometry xc4vlx60();

  const std::string& name() const { return name_; }
  int clb_rows() const { return clb_rows_; }
  int clb_cols() const { return clb_cols_; }

  /// Virtex-4 CLBs hold four slices each.
  static constexpr int kSlicesPerClb = 4;
  /// Virtex-4 local clock regions span sixteen CLB rows ([6], WP344).
  static constexpr int kClockRegionRows = 16;

  int total_slices() const {
    return clb_rows_ * clb_cols_ * kSlicesPerClb;
  }
  ResourceVector total_resources() const {
    return ResourceVector{total_slices(), brams_, dsps_};
  }

  /// Clock regions per column of regions (the vertical count).
  int clock_region_rows() const { return clb_rows_ / kClockRegionRows; }
  /// Clock regions are half the device wide: two columns of regions.
  static constexpr int kClockRegionCols = 2;
  int clock_region_count() const {
    return clock_region_rows() * kClockRegionCols;
  }
  /// CLB columns per clock region (half the device).
  int clock_region_width_clbs() const { return clb_cols_ / 2; }

 private:
  std::string name_;
  int clb_rows_;
  int clb_cols_;
  int brams_;
  int dsps_;
};

}  // namespace vapres::fabric
