#include "fabric/clock_region.hpp"

#include <sstream>

#include "sim/check.hpp"

namespace vapres::fabric {

std::string ClbRect::to_string() const {
  std::ostringstream os;
  os << "CLB[" << row << ".." << row + height - 1 << "][" << col << ".."
     << col + width - 1 << "]";
  return os.str();
}

std::vector<ClockRegionId> regions_spanned(const ClbRect& rect,
                                           const DeviceGeometry& dev) {
  VAPRES_REQUIRE(rect.inside_device(dev),
                 "rectangle " + rect.to_string() + " outside device " +
                     dev.name());
  const int rows = DeviceGeometry::kClockRegionRows;
  const int first_row = rect.row / rows;
  const int last_row = (rect.row + rect.height - 1) / rows;
  const int half_cols = dev.clock_region_width_clbs();
  const int first_half = rect.col / half_cols;
  const int last_half = (rect.col + rect.width - 1) / half_cols;

  std::vector<ClockRegionId> out;
  for (int r = first_row; r <= last_row; ++r) {
    for (int h = first_half; h <= last_half; ++h) {
      out.push_back(ClockRegionId{r, h});
    }
  }
  return out;
}

bool within_one_half(const ClbRect& rect, const DeviceGeometry& dev) {
  const int half_cols = dev.clock_region_width_clbs();
  return rect.col / half_cols ==
         (rect.col + rect.width - 1) / half_cols;
}

int vertical_region_span(const ClbRect& rect) {
  const int rows = DeviceGeometry::kClockRegionRows;
  return (rect.row + rect.height - 1) / rows - rect.row / rows + 1;
}

std::string prr_legality_violation(const ClbRect& rect,
                                   const DeviceGeometry& dev) {
  if (!rect.inside_device(dev)) {
    return "PRR " + rect.to_string() + " does not fit device " + dev.name();
  }
  if (!within_one_half(rect, dev)) {
    return "PRR " + rect.to_string() +
           " straddles the clock-region centre line";
  }
  // BUFR reach: own region plus the two vertically adjacent regions, so at
  // most three regions and at most 48 CLB rows (Section III.B.2).
  const int span = vertical_region_span(rect);
  if (span > 3) {
    return "PRR " + rect.to_string() + " spans " + std::to_string(span) +
           " clock regions; BUFR reach allows at most 3";
  }
  if (rect.height > 3 * DeviceGeometry::kClockRegionRows) {
    return "PRR " + rect.to_string() + " taller than 48 CLBs";
  }
  return {};
}

}  // namespace vapres::fabric
