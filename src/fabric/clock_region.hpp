// Clock regions and CLB-grid rectangles.
//
// Section III.B.2 / IV.A floorplanning rules:
//  * a PRR must fit inside one to three *vertically adjacent* local clock
//    regions (a BUFR can only drive its own region plus the two adjacent
//    ones, so PRR height <= 3 x 16 = 48 CLBs);
//  * local clock regions used by different PRRs must not intersect;
//  * a region is half the device wide, so a PRR must not straddle the
//    vertical centre line.
// This header provides the geometry; the floorplanner in src/flow enforces
// the rules on whole systems.
#pragma once

#include <string>
#include <vector>

#include "fabric/device.hpp"
#include "fabric/resources.hpp"

namespace vapres::fabric {

/// Identifies one local clock region: vertical index (0 = bottom) and
/// horizontal half (0 = left, 1 = right).
struct ClockRegionId {
  int row = 0;
  int half = 0;

  friend constexpr bool operator==(const ClockRegionId&,
                                   const ClockRegionId&) = default;
  /// Linear index (row-major, left half first).
  int linear() const { return row * DeviceGeometry::kClockRegionCols + half; }
};

/// An axis-aligned rectangle on the CLB grid. `row`/`col` address the
/// bottom-left CLB; the rectangle spans `height` rows and `width` columns.
struct ClbRect {
  int row = 0;
  int col = 0;
  int height = 0;
  int width = 0;

  friend constexpr bool operator==(const ClbRect&, const ClbRect&) = default;

  int clbs() const { return height * width; }
  int slices() const { return clbs() * DeviceGeometry::kSlicesPerClb; }
  ResourceVector resources() const { return ResourceVector{slices(), 0, 0}; }

  bool overlaps(const ClbRect& o) const {
    return row < o.row + o.height && o.row < row + height &&
           col < o.col + o.width && o.col < col + width;
  }

  bool inside_device(const DeviceGeometry& dev) const {
    return row >= 0 && col >= 0 && height > 0 && width > 0 &&
           row + height <= dev.clb_rows() && col + width <= dev.clb_cols();
  }

  std::string to_string() const;
};

/// The set of local clock regions a rectangle touches.
std::vector<ClockRegionId> regions_spanned(const ClbRect& rect,
                                           const DeviceGeometry& dev);

/// True if `rect` lies entirely within one horizontal half of the device
/// (does not straddle the clock-region centre line).
bool within_one_half(const ClbRect& rect, const DeviceGeometry& dev);

/// Number of vertically adjacent clock regions the rectangle spans.
int vertical_region_span(const ClbRect& rect);

/// Checks every per-PRR legality rule from the paper for a candidate PRR
/// rectangle. Returns an empty string if legal, else a diagnostic.
std::string prr_legality_violation(const ClbRect& rect,
                                   const DeviceGeometry& dev);

}  // namespace vapres::fabric
