#include "fabric/device.hpp"

#include "sim/check.hpp"

namespace vapres::fabric {

DeviceGeometry::DeviceGeometry(std::string name, int clb_rows, int clb_cols,
                               int brams, int dsps)
    : name_(std::move(name)),
      clb_rows_(clb_rows),
      clb_cols_(clb_cols),
      brams_(brams),
      dsps_(dsps) {
  VAPRES_REQUIRE(clb_rows_ > 0 && clb_cols_ > 0, "device must have CLBs");
  VAPRES_REQUIRE(clb_rows_ % kClockRegionRows == 0,
                 "CLB rows must be a multiple of the clock-region height");
  VAPRES_REQUIRE(clb_cols_ % 2 == 0,
                 "CLB columns must split into two clock-region halves");
  VAPRES_REQUIRE(brams >= 0 && dsps >= 0, "resource counts must be >= 0");
}

DeviceGeometry DeviceGeometry::xc4vlx25() {
  // 96 x 28 CLB array -> 10,752 slices; 72 RAMB16; 48 DSP48 (XtremeDSP).
  return DeviceGeometry("xc4vlx25", 96, 28, 72, 48);
}

DeviceGeometry DeviceGeometry::xc4vlx60() {
  // 128 x 52 CLB array -> 26,624 slices; 160 RAMB16; 64 DSP48.
  return DeviceGeometry("xc4vlx60", 128, 52, 160, 64);
}

}  // namespace vapres::fabric
