// Configuration-frame geometry.
//
// Virtex-4 configuration memory is addressed in frames of 41 32-bit words;
// one CLB column within one clock region occupies 22 frames. A partial
// bitstream for a PRR therefore scales with the PRR's width in CLB columns
// and the number of clock regions it spans — which is what makes the
// paper's fragmentation-vs-reconfiguration-time trade-off (Section VI)
// quantifiable in the model.
#pragma once

#include <cstdint>

#include "fabric/clock_region.hpp"

namespace vapres::fabric {

struct FrameGeometry {
  /// Words per configuration frame (Virtex-4: 41 x 32-bit words).
  static constexpr int kWordsPerFrame = 41;
  static constexpr int kBytesPerWord = 4;
  /// Configuration frames per CLB column per clock region (Virtex-4: 22).
  static constexpr int kFramesPerClbColumn = 22;
  /// Fixed command header/footer bytes of a partial bitstream (sync word,
  /// FAR/CRC command sequences). One flash sector in the model.
  static constexpr int kOverheadBytes = 1024;

  static constexpr int bytes_per_frame() {
    return kWordsPerFrame * kBytesPerWord;
  }
};

/// Number of configuration frames covering `rect` (CLB resources only; the
/// model charges BRAM/DSP columns to the static region).
int frames_for_rect(const ClbRect& rect);

/// Size in bytes of a partial bitstream reconfiguring `rect`.
std::int64_t partial_bitstream_bytes(const ClbRect& rect);

}  // namespace vapres::fabric
