#include "fabric/clocking.hpp"

#include <cmath>
#include <cstdlib>

namespace vapres::fabric {

Dcm::Dcm(double input_mhz, double clkdv_divide, int clkfx_multiply,
         int clkfx_divide)
    : input_mhz_(input_mhz),
      clkdv_divide_(clkdv_divide),
      clkfx_multiply_(clkfx_multiply),
      clkfx_divide_(clkfx_divide) {
  VAPRES_REQUIRE(input_mhz > 0.0, "DCM input frequency must be positive");
  VAPRES_REQUIRE(clkdv_divide >= 1.5 && clkdv_divide <= 16.0,
                 "DCM CLKDV divide out of range [1.5, 16]");
  VAPRES_REQUIRE(clkfx_multiply >= 2 && clkfx_multiply <= 32,
                 "DCM CLKFX multiply out of range [2, 32]");
  VAPRES_REQUIRE(clkfx_divide >= 1 && clkfx_divide <= 32,
                 "DCM CLKFX divide out of range [1, 32]");
}

Pmcd::Pmcd(double input_mhz) : input_mhz_(input_mhz) {
  VAPRES_REQUIRE(input_mhz > 0.0, "PMCD input frequency must be positive");
}

Bufgmux::Bufgmux(double input0_mhz, double input1_mhz)
    : inputs_mhz_{input0_mhz, input1_mhz} {
  VAPRES_REQUIRE(input0_mhz > 0.0 && input1_mhz > 0.0,
                 "BUFGMUX input frequencies must be positive");
}

void Bufgmux::set_input(int index, double mhz) {
  VAPRES_REQUIRE(index == 0 || index == 1, "BUFGMUX has two inputs");
  VAPRES_REQUIRE(mhz > 0.0, "BUFGMUX input frequency must be positive");
  inputs_mhz_[static_cast<std::size_t>(index)] = mhz;
}

double Bufgmux::input_mhz(int index) const {
  VAPRES_REQUIRE(index == 0 || index == 1, "BUFGMUX has two inputs");
  return inputs_mhz_[static_cast<std::size_t>(index)];
}

void Bufgmux::select(int index) {
  VAPRES_REQUIRE(index == 0 || index == 1, "BUFGMUX select must be 0 or 1");
  select_ = index;
}

Bufr::Bufr(std::string name, ClockRegionId location)
    : name_(std::move(name)), location_(location) {}

bool Bufr::can_drive(const ClbRect& rect, const DeviceGeometry& dev) const {
  for (const ClockRegionId& region : regions_spanned(rect, dev)) {
    if (region.half != location_.half) return false;
    if (std::abs(region.row - location_.row) > 1) return false;
  }
  return true;
}

PrrClockTree::PrrClockTree(Bufr bufr, Bufgmux mux, sim::ClockDomain& domain)
    : bufr_(std::move(bufr)), mux_(mux), domain_(domain) {
  domain_.set_frequency_mhz(mux_.output_mhz());
  domain_.set_enabled(bufr_.enabled());
}

void PrrClockTree::select(int index) {
  mux_.select(index);
  domain_.set_frequency_mhz(mux_.output_mhz());
}

void PrrClockTree::set_enabled(bool enabled) {
  bufr_.set_enabled(enabled);
  domain_.set_enabled(enabled);
}

void PrrClockTree::set_mux_input(int index, double mhz) {
  mux_.set_input(index, mhz);
  if (mux_.selected() == index) {
    domain_.set_frequency_mhz(mux_.output_mhz());
  }
}

}  // namespace vapres::fabric
