#include "fabric/frame.hpp"

#include "sim/check.hpp"

namespace vapres::fabric {

int frames_for_rect(const ClbRect& rect) {
  VAPRES_REQUIRE(rect.height > 0 && rect.width > 0,
                 "frame count of an empty rectangle");
  // A frame spans a full clock region vertically, so a PRR pays for every
  // region it touches even if it covers the region only partially.
  const int rows = DeviceGeometry::kClockRegionRows;
  const int regions =
      (rect.row + rect.height - 1) / rows - rect.row / rows + 1;
  return rect.width * regions * FrameGeometry::kFramesPerClbColumn;
}

std::int64_t partial_bitstream_bytes(const ClbRect& rect) {
  return static_cast<std::int64_t>(frames_for_rect(rect)) *
             FrameGeometry::bytes_per_frame() +
         FrameGeometry::kOverheadBytes;
}

}  // namespace vapres::fabric
