#include "fabric/icap.hpp"

namespace vapres::fabric {

IcapPort::IcapPort(double port_clock_mhz) : port_clock_mhz_(port_clock_mhz) {
  VAPRES_REQUIRE(port_clock_mhz > 0.0, "ICAP clock must be positive");
}

void IcapPort::begin_transfer(std::int64_t bytes) {
  VAPRES_REQUIRE(!busy_, "ICAP port is busy; configuration is serialized");
  VAPRES_REQUIRE(bytes > 0, "ICAP transfer must move at least one byte");
  busy_ = true;
  inflight_bytes_ = bytes;
}

void IcapPort::end_transfer() {
  VAPRES_REQUIRE(busy_, "no ICAP transfer in flight");
  busy_ = false;
  total_bytes_ += inflight_bytes_;
  inflight_bytes_ = 0;
  ++transfers_;
}

sim::Picoseconds IcapPort::min_transfer_time_ps(std::int64_t bytes) const {
  VAPRES_REQUIRE(bytes >= 0, "negative transfer size");
  const auto words =
      static_cast<std::uint64_t>((bytes + 3) / 4);  // 32-bit port
  return words * sim::period_ps_from_mhz(port_clock_mhz_);
}

}  // namespace vapres::fabric
