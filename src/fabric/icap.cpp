#include "fabric/icap.hpp"

namespace vapres::fabric {

IcapPort::IcapPort(double port_clock_mhz) : port_clock_mhz_(port_clock_mhz) {
  VAPRES_REQUIRE(port_clock_mhz > 0.0, "ICAP clock must be positive");
}

void IcapPort::begin_transfer(std::int64_t bytes) {
  VAPRES_REQUIRE(!busy_,
                 "ICAP port is busy (" + std::to_string(inflight_bytes_) +
                     " bytes in flight); configuration is serialized");
  VAPRES_REQUIRE(bytes > 0, "ICAP transfer must move at least one byte");
  busy_ = true;
  inflight_bytes_ = bytes;
  inflight_corrupted_ = false;
  inflight_timed_out_ = false;
  auto& faults = sim::FaultInjector::instance();
  if (faults.enabled()) {
    inflight_corrupted_ =
        faults.should_fire(sim::FaultSite::kIcapBitstreamCorruption);
    inflight_timed_out_ =
        faults.should_fire(sim::FaultSite::kIcapTransferTimeout);
  }
}

IcapTransferResult IcapPort::end_transfer() {
  VAPRES_REQUIRE(busy_, "no ICAP transfer in flight");
  busy_ = false;
  const IcapTransferResult result{inflight_corrupted_, inflight_timed_out_};
  total_bytes_ += inflight_bytes_;
  inflight_bytes_ = 0;
  inflight_corrupted_ = false;
  inflight_timed_out_ = false;
  if (result.ok()) {
    ++transfers_;
  } else {
    if (result.corrupted) ++corrupted_;
    if (result.timed_out) ++timed_out_;
  }
  return result;
}

sim::Picoseconds IcapPort::min_transfer_time_ps(std::int64_t bytes) const {
  VAPRES_REQUIRE(bytes >= 0, "negative transfer size");
  const auto words =
      static_cast<std::uint64_t>((bytes + 3) / 4);  // 32-bit port
  return words * sim::period_ps_from_mhz(port_clock_mhz_);
}

}  // namespace vapres::fabric
