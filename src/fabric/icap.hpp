// ICAP (Internal Configuration Access Port) model.
//
// The Virtex-4 ICAP accepts one 32-bit configuration word per port-clock
// cycle. This class models the *hardware* port: occupancy, byte counters,
// and the physical lower bound on transfer time. The (much larger)
// software-driver overhead measured in the paper — the XHwICAP-style
// per-frame processing that dominates vapres_array2icap — is modelled by
// the reconfiguration manager in src/core/reconfig using calibrated costs.
#pragma once

#include <cstdint>

#include "sim/check.hpp"
#include "sim/time.hpp"

namespace vapres::fabric {

class IcapPort {
 public:
  explicit IcapPort(double port_clock_mhz = 100.0);

  double port_clock_mhz() const { return port_clock_mhz_; }

  bool busy() const { return busy_; }

  /// Marks the port busy for a transfer of `bytes`. Throws if already busy
  /// (the EAPR flow serializes all ICAP access through one controller).
  void begin_transfer(std::int64_t bytes);

  /// Completes the in-flight transfer.
  void end_transfer();

  /// Physical lower bound on the time to clock `bytes` through the port
  /// (one 32-bit word per port cycle).
  sim::Picoseconds min_transfer_time_ps(std::int64_t bytes) const;

  std::int64_t total_bytes_configured() const { return total_bytes_; }
  int completed_transfers() const { return transfers_; }

 private:
  double port_clock_mhz_;
  bool busy_ = false;
  std::int64_t inflight_bytes_ = 0;
  std::int64_t total_bytes_ = 0;
  int transfers_ = 0;
};

}  // namespace vapres::fabric
