// ICAP (Internal Configuration Access Port) model.
//
// The Virtex-4 ICAP accepts one 32-bit configuration word per port-clock
// cycle. This class models the *hardware* port: occupancy, byte counters,
// and the physical lower bound on transfer time. The (much larger)
// software-driver overhead measured in the paper — the XHwICAP-style
// per-frame processing that dominates vapres_array2icap — is modelled by
// the reconfiguration manager in src/core/reconfig using calibrated costs.
//
// Fault model: at begin_transfer the port samples the fault injector for
// the two ICAP fault sites (word corruption / CRC mismatch, transfer
// timeout); end_transfer reports the result. The port performs the
// bitstream CRC check that real Virtex configuration logic runs, so a
// corrupted transfer is detected at the port — recovery policy (retry,
// backoff, source fallback) lives in core::ReconfigManager.
#pragma once

#include <cstdint>

#include "sim/check.hpp"
#include "sim/fault.hpp"
#include "sim/time.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::fabric {

/// Outcome of one ICAP transfer, as seen by the port's CRC/handshake
/// logic at completion.
struct IcapTransferResult {
  bool corrupted = false;  ///< bitstream CRC mismatch
  bool timed_out = false;  ///< transfer handshake timed out

  bool ok() const { return !corrupted && !timed_out; }
};

class IcapPort {
 public:
  explicit IcapPort(double port_clock_mhz = 100.0);

  double port_clock_mhz() const { return port_clock_mhz_; }

  bool busy() const { return busy_; }
  std::int64_t inflight_bytes() const { return inflight_bytes_; }

  /// Marks the port busy for a transfer of `bytes`. Throws if already busy
  /// (the EAPR flow serializes all ICAP access through one controller).
  void begin_transfer(std::int64_t bytes);

  /// Completes the in-flight transfer and reports whether it was clean.
  IcapTransferResult end_transfer();

  /// Physical lower bound on the time to clock `bytes` through the port
  /// (one 32-bit word per port cycle).
  sim::Picoseconds min_transfer_time_ps(std::int64_t bytes) const;

  std::int64_t total_bytes_configured() const { return total_bytes_; }
  /// Transfers that completed clean (CRC good, no timeout).
  int completed_transfers() const { return transfers_; }
  int corrupted_transfers() const { return corrupted_; }
  int timed_out_transfers() const { return timed_out_; }

 private:
  // Checkpoint/restore overlays the lifetime byte/transfer counters;
  // snapshots require !busy() (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  double port_clock_mhz_;
  bool busy_ = false;
  std::int64_t inflight_bytes_ = 0;
  std::int64_t total_bytes_ = 0;
  int transfers_ = 0;
  int corrupted_ = 0;
  int timed_out_ = 0;
  bool inflight_corrupted_ = false;
  bool inflight_timed_out_ = false;
};

}  // namespace vapres::fabric
