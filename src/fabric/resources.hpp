// FPGA resource accounting.
//
// The paper evaluates VAPRES by slice counts on a Virtex-4 (Section V.B);
// ResourceVector is the unit of that accounting, also carrying BlockRAM and
// DSP counts for the module library and fragmentation experiments.
#pragma once

#include <ostream>

namespace vapres::fabric {

struct ResourceVector {
  int slices = 0;  ///< Virtex-4 slices (2 4-LUTs + 2 FFs each).
  int brams = 0;   ///< RAMB16 blocks.
  int dsps = 0;    ///< DSP48 blocks.

  constexpr ResourceVector& operator+=(const ResourceVector& o) {
    slices += o.slices;
    brams += o.brams;
    dsps += o.dsps;
    return *this;
  }
  constexpr ResourceVector& operator-=(const ResourceVector& o) {
    slices -= o.slices;
    brams -= o.brams;
    dsps -= o.dsps;
    return *this;
  }
  friend constexpr ResourceVector operator+(ResourceVector a,
                                            const ResourceVector& b) {
    return a += b;
  }
  friend constexpr ResourceVector operator-(ResourceVector a,
                                            const ResourceVector& b) {
    return a -= b;
  }
  friend constexpr ResourceVector operator*(int n, ResourceVector v) {
    v.slices *= n;
    v.brams *= n;
    v.dsps *= n;
    return v;
  }
  friend constexpr bool operator==(const ResourceVector&,
                                   const ResourceVector&) = default;

  /// True if every component of this vector fits within `budget`.
  constexpr bool fits_in(const ResourceVector& budget) const {
    return slices <= budget.slices && brams <= budget.brams &&
           dsps <= budget.dsps;
  }

  friend std::ostream& operator<<(std::ostream& os, const ResourceVector& v) {
    return os << "{slices=" << v.slices << ", brams=" << v.brams
              << ", dsps=" << v.dsps << '}';
  }
};

}  // namespace vapres::fabric
