#include "fleet/controlplane.hpp"

#include <algorithm>
#include <cmath>

#include "core/stats.hpp"
#include "obs/bus.hpp"
#include "obs/metrics.hpp"
#include "sim/check.hpp"
#include "snap/system_snapshot.hpp"

namespace vapres::fleet {

namespace {

obs::Counter& ctr(const char* name) {
  return obs::Registry::instance().counter(name);
}

}  // namespace

const char* migrate_outcome_name(MigrateOutcome o) {
  switch (o) {
    case MigrateOutcome::kMoved: return "moved";
    case MigrateOutcome::kRolledBack: return "rolled_back";
    case MigrateOutcome::kLost: return "lost";
    case MigrateOutcome::kSkipped: return "skipped";
  }
  return "?";
}

ControlPlane::ControlPlane(const FleetSpec& spec,
                           std::unique_ptr<CostModel> model)
    : spec_(spec),
      model_(model ? std::move(model)
                   : std::make_unique<WeightedCostModel>(spec.weights)),
      db_(static_cast<int>(spec.fabrics.size())) {
  VAPRES_REQUIRE(!spec_.fabrics.empty(), "fleet needs at least one fabric");
  for (const FabricSpec& fs : spec_.fabrics) {
    auto f = std::make_unique<Fabric>();
    f->name = fs.name;
    f->sys = std::make_unique<core::VapresSystem>(fs.params);
    f->sys->bring_up_all_sites();
    f->sched = std::make_unique<sched::ApplicationScheduler>(*f->sys,
                                                             spec_.scheduler);
    fabrics_.push_back(std::move(f));
  }
  checkpoints_.resize(fabrics_.size());
  for (int i = 0; i < num_fabrics(); ++i) {
    Fabric& f = *fabrics_[static_cast<std::size_t>(i)];
    fabric_agents_.push_back(std::make_unique<FabricAgent>(
        i, FabricHost{f.name, f.sys.get(), f.sched.get()}, db_, counters_));
  }
  quota_ = std::make_unique<QuotaAgent>(db_, spec_, fabric_agents_,
                                        counters_);
  router_ = std::make_unique<RouterAgent>(db_, spec_, *model_,
                                          fabric_agents_, counters_);
  migration_ = std::make_unique<MigrationAgent>(db_, fabric_agents_,
                                                counters_);
  if (spec_.health.enabled) {
    health_ = std::make_unique<HealthAgent>(db_, spec_, fabric_agents_,
                                            counters_);
  }
}

ControlPlane::Fabric& ControlPlane::fabric(int index) {
  VAPRES_REQUIRE(index >= 0 && index < num_fabrics(), "fabric out of range");
  return *fabrics_[static_cast<std::size_t>(index)];
}

const ControlPlane::Fabric& ControlPlane::fabric(int index) const {
  VAPRES_REQUIRE(index >= 0 && index < num_fabrics(), "fabric out of range");
  return *fabrics_[static_cast<std::size_t>(index)];
}

const std::string& ControlPlane::fabric_name(int index) const {
  return fabric(index).name;
}

core::VapresSystem& ControlPlane::system(int index) {
  return *fabric(index).sys;
}

sched::ApplicationScheduler& ControlPlane::scheduler(int index) {
  return *fabric(index).sched;
}

const sched::ApplicationScheduler& ControlPlane::scheduler(int index) const {
  return *fabric(index).sched;
}

sim::Picoseconds ControlPlane::now_ps() const {
  sim::Picoseconds t = 0;
  for (const auto& f : fabrics_) t = std::max(t, f->sys->sim().now());
  return t;
}

sim::Cycles ControlPlane::now() const {
  sim::Cycles c = 0;
  for (const auto& f : fabrics_) {
    c = std::max(c, f->sys->system_clock().cycle_count());
  }
  return c;
}

void ControlPlane::advance_to(sim::Cycles cycle) {
  for (const auto& f : fabrics_) {
    const sim::Cycles at = f->sys->system_clock().cycle_count();
    if (at < cycle) f->sys->run_system_cycles(cycle - at);
  }
}

int ControlPlane::total_prrs() const {
  int n = 0;
  for (const auto& f : fabrics_) n += f->sched->fabric().num_slots();
  return n;
}

int ControlPlane::free_prrs() const {
  int n = 0;
  for (const auto& f : fabrics_) n += f->sched->fabric().free_count();
  return n;
}

void ControlPlane::check_kill() {
  if (!kill_ || db_.version() < kill_->at_version) return;
  const AgentId agent = kill_->agent;
  kill_.reset();
  restart_agent(agent);
}

void ControlPlane::pump() {
  bool progress = true;
  while (progress) {
    progress = false;
    check_kill();
    if (quota_->poll()) progress = true;
    check_kill();
    if (router_->poll()) progress = true;
    check_kill();
    if (migration_->poll()) progress = true;
    check_kill();
    if (health_ && health_->poll()) progress = true;
    check_kill();
    for (auto& fa : fabric_agents_) {
      if (fa->publish()) progress = true;
    }
    check_kill();
  }
}

RouteDecision ControlPlane::assemble_decision(
    std::uint64_t since_version) const {
  RouteDecision d;
  for (const JournalEntry& e : db_.journal()) {
    if (e.version <= since_version) continue;
    switch (e.op) {
      case Op::kRouteOrder: {
        d.order.clear();
        std::string num;
        for (const char c : e.note) {
          if (c == ',') {
            d.order.push_back(std::stoi(num));
            num.clear();
          } else {
            num.push_back(c);
          }
        }
        if (!num.empty()) d.order.push_back(std::stoi(num));
        break;
      }
      case Op::kAdmitResult:
        ++d.attempts;
        break;
      case Op::kAppLocation:
        if (e.agent == AgentId::kRouter) {
          d.fleet_id = static_cast<int>(e.key);
        }
        break;
      case Op::kRouteResult:
        d.admitted = e.args[0] != 0;
        d.fabric = static_cast<int>(e.args[1]);
        d.verdict = static_cast<sched::AdmissionVerdict>(e.args[2]);
        d.quota_limited = (e.args[3] & 1) != 0;
        d.preempted_for = (e.args[3] & 2) != 0;
        break;
      default:
        break;
    }
  }
  d.reason = d.quota_limited ? "tenant over quota and fleet slack exhausted"
                             : router_->last_reason();
  return d;
}

RouteDecision ControlPlane::submit(const std::string& tenant,
                                   const sched::AppRequest& request) {
  ++counters_.submissions;
  ctr("fleet.route.submissions").add();

  obs::EventBus& bus = obs::EventBus::instance();
  const std::uint32_t track = bus.track("fleet");
  obs::Span span = obs::Span::begin(
      obs::Subsystem::kFleet, obs::ev::kRoute, track, now_ps(),
      static_cast<std::uint64_t>(db_.next_fleet_id()));

  const std::uint64_t mark = db_.version();
  const std::int64_t seq = ++submit_seq_;
  db_.append(AgentId::kOrchestrator, Op::kSubmitIntent, seq, {},
             tenant + '\x1E' + serialize_request(request));
  pump();

  RouteDecision d = assemble_decision(mark);
  refresh_gauges();
  span.end(now_ps());
  return d;
}

MigrateResult ControlPlane::migrate(int fleet_id, int dst_fabric,
                                    bool probe_first) {
  VAPRES_REQUIRE(dst_fabric >= 0 && dst_fabric < num_fabrics(),
                 "migration destination out of range");
  MigrateResult r;
  r.fleet_id = fleet_id;
  r.to_fabric = dst_fabric;
  const AppRow* before = db_.app(fleet_id);
  if (before) r.from_fabric = before->fabric;

  const std::uint64_t mark = db_.version();
  db_.append(AgentId::kOrchestrator, Op::kMigrateIntent, fleet_id,
             {dst_fabric, probe_first ? 1 : 0});
  pump();

  // The terminal kMigrateStep written since the intent is the outcome.
  for (auto it = db_.journal().rbegin(); it != db_.journal().rend(); ++it) {
    if (it->version <= mark) break;
    if (it->op != Op::kMigrateStep ||
        it->key != static_cast<std::int64_t>(fleet_id)) {
      continue;
    }
    const MigStep step = static_cast<MigStep>(it->args[0]);
    if (step == MigStep::kMoved) r.outcome = MigrateOutcome::kMoved;
    else if (step == MigStep::kRolledBack) {
      r.outcome = MigrateOutcome::kRolledBack;
    } else if (step == MigStep::kLost) r.outcome = MigrateOutcome::kLost;
    else if (step == MigStep::kSkipped) r.outcome = MigrateOutcome::kSkipped;
    else continue;
    break;
  }
  r.reason = migration_->last_reason();

  if (r.outcome != MigrateOutcome::kSkipped) {
    quota_->sync_usage();
    refresh_gauges();
  }
  return r;
}

void ControlPlane::stop(int fleet_id) {
  const AppRow* row = db_.app(fleet_id);
  VAPRES_REQUIRE(row != nullptr, "stop: unknown fleet id");
  if (scheduler(row->fabric).app(row->local).running()) {
    fabric_agents_[static_cast<std::size_t>(row->fabric)]->stop_local(
        row->local);
  }
  quota_->sync_usage();
  refresh_gauges();
}

bool ControlPlane::running(int fleet_id) const {
  const AppRow* row = db_.app(fleet_id);
  if (!row) return false;
  return scheduler(row->fabric).app(row->local).running();
}

std::optional<FleetAppId> ControlPlane::locate(int fleet_id) const {
  const AppRow* row = db_.app(fleet_id);
  if (!row) return std::nullopt;
  return FleetAppId{row->fabric, row->local};
}

const sched::AppRecord& ControlPlane::record_of(int fleet_id) const {
  const AppRow* row = db_.app(fleet_id);
  VAPRES_REQUIRE(row != nullptr, "record_of: unknown fleet id");
  return scheduler(row->fabric).app(row->local);
}

const std::string& ControlPlane::tenant_of(int fleet_id) const {
  const AppRow* row = db_.app(fleet_id);
  VAPRES_REQUIRE(row != nullptr, "tenant_of: unknown fleet id");
  return db_.tenant(row->tenant).name;
}

std::vector<int> ControlPlane::running_ids() const {
  std::vector<int> out;
  for (const auto& [id, row] : db_.apps()) {
    if (scheduler(row.fabric).app(row.local).running()) out.push_back(id);
  }
  return out;
}

int ControlPlane::running_on(int index) const {
  return static_cast<int>(scheduler(index).running_apps().size());
}

int ControlPlane::retire_terminal() {
  std::vector<int> dead;
  for (const auto& [id, row] : db_.apps()) {
    const sched::AppRecord& rec = scheduler(row.fabric).app(row.local);
    const bool terminal =
        !rec.running() && rec.state != sched::AppState::kQueued;
    if (terminal) dead.push_back(id);
  }
  for (const int id : dead) {
    db_.append(AgentId::kOrchestrator, Op::kAppRemoved, id,
               {static_cast<std::int64_t>(RemoveCause::kRetired)});
  }
  for (const auto& f : fabrics_) f->sched->retire_terminal();
  return static_cast<int>(dead.size());
}

void ControlPlane::schedule_kill(AgentId agent, std::uint64_t at_version) {
  kill_ = PendingKill{agent, at_version};
}

std::vector<std::string> ControlPlane::restart_agent(AgentId agent) {
  switch (agent) {
    case AgentId::kRouter:
      router_ = std::make_unique<RouterAgent>(db_, spec_, *model_,
                                              fabric_agents_, counters_);
      router_->restart();
      return {};
    case AgentId::kQuota:
      quota_ = std::make_unique<QuotaAgent>(db_, spec_, fabric_agents_,
                                            counters_);
      quota_->restart();
      return {};
    case AgentId::kMigration:
      migration_ = std::make_unique<MigrationAgent>(db_, fabric_agents_,
                                                    counters_);
      migration_->restart();
      return {};
    case AgentId::kOrchestrator:
      VAPRES_REQUIRE(false, "the orchestrator is not a restartable agent");
      return {};
    case AgentId::kHealth:
      VAPRES_REQUIRE(health_ != nullptr,
                     "restart: health monitoring is not enabled");
      health_ = std::make_unique<HealthAgent>(db_, spec_, fabric_agents_,
                                              counters_);
      health_->restart();
      return {};
    default: {
      const int i = static_cast<int>(agent) -
                    static_cast<int>(AgentId::kFabric0);
      VAPRES_REQUIRE(i >= 0 && i < num_fabrics(),
                     "restart: unknown fabric agent");
      Fabric& f = *fabrics_[static_cast<std::size_t>(i)];
      fabric_agents_[static_cast<std::size_t>(i)] =
          std::make_unique<FabricAgent>(
              i, FabricHost{f.name, f.sys.get(), f.sched.get()}, db_,
              counters_);
      FabricAgent& fa = *fabric_agents_[static_cast<std::size_t>(i)];
      fa.restart();
      return fa.reconcile();
    }
  }
}

std::vector<std::string> ControlPlane::reconcile() {
  ++reconciles_run_;
  std::vector<std::string> violations;
  for (const auto& fa : fabric_agents_) {
    std::vector<std::string> v = fa->reconcile();
    violations.insert(violations.end(), v.begin(), v.end());
  }
  return violations;
}

std::uint64_t ControlPlane::checkpoint_fabric(int index) {
  Fabric& f = fabric(index);
  // Cold-snapshot barrier (the same one load/soak.cpp reaches): no
  // reconfiguration or prefetch in flight when the blob is cut.
  f.sys->drain_transfer_path();
  while (f.sys->prefetch().pending() > 0 || f.sys->prefetch().staging()) {
    f.sys->run_system_cycles(64);
  }
  FabricCheckpoint cp;
  cp.epoch = db_.version();
  cp.blob = snap::SystemSnapshot::save(*f.sys, cp.epoch, f.sched.get());
  cp.cycle = f.sys->system_clock().cycle_count();
  cp.running = running_on(index);
  const JournalEntry& e = db_.append(
      AgentId::kOrchestrator, Op::kFabricCheckpoint, index,
      {static_cast<std::int64_t>(cp.epoch),
       static_cast<std::int64_t>(cp.blob.size()), cp.running, 0});
  cp.version = e.version;
  const std::uint64_t epoch = cp.epoch;
  checkpoints_[static_cast<std::size_t>(index)] = std::move(cp);
  ++checkpoints_taken_;
  ctr("fleet.checkpoint.taken").add();
  return epoch;
}

void ControlPlane::checkpoint_all() {
  for (int i = 0; i < num_fabrics(); ++i) checkpoint_fabric(i);
}

const FabricCheckpoint* ControlPlane::last_checkpoint(int index) const {
  VAPRES_REQUIRE(index >= 0 && index < num_fabrics(),
                 "fabric out of range");
  const auto& cp = checkpoints_[static_cast<std::size_t>(index)];
  return cp ? &*cp : nullptr;
}

void ControlPlane::kill_fabric(int index) {
  Fabric& f = fabric(index);
  f.sched.reset();
  f.sys = std::make_unique<core::VapresSystem>(
      spec_.fabrics[static_cast<std::size_t>(index)].params);
  f.sys->bring_up_all_sites();
  f.sched = std::make_unique<sched::ApplicationScheduler>(*f.sys,
                                                          spec_.scheduler);
  fabric_agents_[static_cast<std::size_t>(index)] =
      std::make_unique<FabricAgent>(
          index, FabricHost{f.name, f.sys.get(), f.sched.get()}, db_,
          counters_);
  fabric_agents_[static_cast<std::size_t>(index)]->restart();
}

FailoverResult ControlPlane::failover(int crashed, int spare) {
  VAPRES_REQUIRE(spare >= 0 && spare < num_fabrics() && crashed >= 0 &&
                     crashed < num_fabrics(),
                 "failover fabric out of range");
  VAPRES_REQUIRE(crashed != spare, "failover needs a distinct spare");
  const auto& cp = checkpoints_[static_cast<std::size_t>(crashed)];
  VAPRES_REQUIRE(cp.has_value(), "failover: fabric '" +
                                     fabric(crashed).name +
                                     "' was never checkpointed");

  FailoverResult r;
  r.from_fabric = crashed;
  r.to_fabric = spare;
  r.epoch = cp->epoch;
  db_.append(AgentId::kOrchestrator, Op::kFailover, crashed,
             {spare, static_cast<std::int64_t>(cp->epoch)},
             fabric(crashed).name + "->" + fabric(spare).name);

  // Reconstruct the crashed fabric's checkpointed state off to the side
  // — the blob is the only surviving truth — then seed the spare with
  // the relocation masters the moved apps will need.
  auto ghost_sys =
      snap::SystemSnapshot::restore_system(
          cp->blob, spec_.fabrics[static_cast<std::size_t>(crashed)].params);
  auto ghost_sched = snap::SystemSnapshot::restore_scheduler(cp->blob,
                                                             *ghost_sys);
  fabric(spare).sched->adopt_masters(ghost_sched->store());

  // Copy the rows first: the per-app journal appends mutate the view.
  std::vector<std::pair<int, AppRow>> rows;
  for (const auto& [id, row] : db_.apps()) {
    if (row.fabric == crashed) rows.emplace_back(id, row);
  }
  for (const auto& [id, row] : rows) {
    const sched::AppRecord& rec = ghost_sched->app(row.local);
    if (!rec.running()) {
      db_.append(AgentId::kOrchestrator, Op::kAppRemoved, id,
                 {static_cast<std::int64_t>(RemoveCause::kRetired)});
      ++r.apps_retired;
      continue;
    }
    const FabricAgent::AdmitOutcome out =
        fabric_agents_[static_cast<std::size_t>(spare)]->admit_raw(
            rec.request);
    if (out.running) {
      db_.append(AgentId::kOrchestrator, Op::kAppLocation, id,
                 {spare, out.local, row.tenant});
      ++r.apps_restored;
      r.restored_ids.push_back(id);
      ctr("fleet.failover.apps_restored").add();
    } else {
      db_.append(AgentId::kOrchestrator, Op::kAppRemoved, id,
                 {static_cast<std::int64_t>(RemoveCause::kLost)});
      ++r.apps_lost;
      ctr("fleet.failover.apps_lost").add();
    }
  }

  ++failovers_;
  failover_apps_restored_ += static_cast<std::uint64_t>(r.apps_restored);
  failover_apps_lost_ += static_cast<std::uint64_t>(r.apps_lost);
  ctr("fleet.failover.performed").add();
  quota_->sync_usage();
  refresh_gauges();
  return r;
}

std::uint64_t ControlPlane::agent_restarts() const {
  std::uint64_t n = 0;
  n += db_.restarts(AgentId::kRouter);
  n += db_.restarts(AgentId::kQuota);
  n += db_.restarts(AgentId::kMigration);
  n += db_.restarts(AgentId::kHealth);
  for (int i = 0; i < num_fabrics(); ++i) n += db_.restarts(fabric_agent_id(i));
  return n;
}

HealthAgent& ControlPlane::health_agent() {
  VAPRES_REQUIRE(health_ != nullptr, "health monitoring is not enabled");
  return *health_;
}

const HealthAgent& ControlPlane::health_agent() const {
  VAPRES_REQUIRE(health_ != nullptr, "health monitoring is not enabled");
  return *health_;
}

void ControlPlane::refresh_health_gauges() {
  obs::Registry& reg = obs::Registry::instance();
  for (int i = 0; i < num_fabrics(); ++i) {
    Fabric& f = fabric(i);
    const core::SystemStats stats = core::collect_stats(*f.sys);
    const std::string base = "fleet." + f.name;
    reg.gauge(base + ".reconfig_retries")
        .set(static_cast<std::int64_t>(stats.robustness.reconfig_retries));
    reg.gauge(base + ".fault_recoveries")
        .set(static_cast<std::int64_t>(stats.robustness.total_recoveries()));
    reg.gauge(base + ".words_discarded")
        .set(static_cast<std::int64_t>(stats.total_discarded()));
    reg.gauge(base + ".reject_streak").set(f.sched->rejection_streak());
  }
}

std::uint64_t ControlPlane::health_tick() {
  VAPRES_REQUIRE(health_ != nullptr, "health monitoring is not enabled");
  ++health_ticks_;
  refresh_gauges();
  refresh_health_gauges();
  health_->sampler().sample(now());

  const std::uint64_t mark = db_.version();
  db_.append(AgentId::kOrchestrator, Op::kHealthTick, 0,
             {static_cast<std::int64_t>(now()), 0, 0, 0});
  pump();

  std::uint64_t tripped = 0;
  for (auto it = db_.journal().rbegin(); it != db_.journal().rend(); ++it) {
    if (it->version <= mark) break;
    if (it->op == Op::kHealthRuleState &&
        ((static_cast<std::uint64_t>(it->args[0]) >> 41) & 1) != 0) {
      ++tripped;
    }
  }
  if (tripped > 0 && flight_) record_flight("slo_breach");
  return tripped;
}

void ControlPlane::set_flight_dir(const std::string& dir,
                                  std::size_t max_bundles) {
  flight_ = std::make_unique<obs::health::FlightRecorder>(dir, max_bundles);
}

std::string ControlPlane::record_flight(const std::string& reason) {
  if (!flight_) return {};
  // Checkpoint the most suspect fabric (first one with active breaches,
  // else fabric 0) so the bundle carries a restorable snapshot. The
  // checkpoint journals — callers comparing replay digests across runs
  // must record flights in both or neither.
  int suspect = 0;
  for (int i = 0; i < num_fabrics(); ++i) {
    if (db_.active_breaches(i) > 0) {
      suspect = i;
      break;
    }
  }
  checkpoint_fabric(suspect);
  const FabricCheckpoint* cp = last_checkpoint(suspect);

  const std::string path = flight_->record(
      reason, now(), cp ? cp->blob : std::string{}, db_.serialize_journal(),
      health_ ? &health_->sampler() : nullptr,
      health_ ? health_->rules_to_string() : std::string{});
  if (!path.empty()) {
    ctr("fleet.flight.bundles").add();
    obs::EventBus& bus = obs::EventBus::instance();
    bus.instant(obs::Subsystem::kFleet, obs::ev::kFlightRecord,
                bus.track("fleet"), now_ps(), flight_->bundles_written());
  }
  return path;
}

void ControlPlane::refresh_gauges() {
  obs::Registry& reg = obs::Registry::instance();
  for (int i = 0; i < num_fabrics(); ++i) {
    const Fabric& f = fabric(i);
    const std::string base = "fleet." + f.name;
    reg.gauge(base + ".running").set(running_on(i));
    reg.gauge(base + ".utilization_pct")
        .set(static_cast<std::int64_t>(
            std::lround(f.sched->fabric_utilization() * 100.0)));
    reg.gauge(base + ".occupied_slices")
        .set(static_cast<std::int64_t>(
            std::lround(f.sched->fabric_utilization() *
                        static_cast<double>(
                            f.sched->fabric().total_slices()))));
  }
  reg.gauge("fleet.free_prrs").set(free_prrs());
  reg.gauge("fleet.journal.depth")
      .set(static_cast<std::int64_t>(db_.journal_depth()));
  reg.gauge("fleet.journal.version")
      .set(static_cast<std::int64_t>(db_.version()));
}

std::string ControlPlane::fleet_status() const {
  std::string out = "fleet control plane (" +
                    std::string(policy_name(spec_.policy)) + ", " +
                    std::to_string(num_fabrics()) + " fabrics)\n";
  std::vector<std::string> names;
  names.reserve(fabrics_.size());
  for (const auto& f : fabrics_) names.push_back(f->name);
  out += db_.to_string(&names);
  auto agent_line = [&](AgentId a) {
    out += "  agent " + agent_label(a) + ": alive, " +
           std::to_string(db_.restarts(a)) + " restart(s)\n";
  };
  agent_line(AgentId::kQuota);
  agent_line(AgentId::kRouter);
  agent_line(AgentId::kMigration);
  if (health_) agent_line(AgentId::kHealth);
  for (int i = 0; i < num_fabrics(); ++i) agent_line(fabric_agent_id(i));
  out += "  decisions: " + std::to_string(counters_.submissions) +
         " submitted, " + std::to_string(counters_.admitted) + " admitted, " +
         std::to_string(counters_.rejected) + " rejected, " +
         std::to_string(counters_.quota_rejected) + " quota-rejected, " +
         std::to_string(counters_.fallbacks) + " fallbacks\n";
  out += "  migrations: " + std::to_string(counters_.migrations_moved) +
         " moved, " + std::to_string(counters_.migrations_rolled_back) +
         " rolled back, " + std::to_string(counters_.migrations_skipped) +
         " skipped, " + std::to_string(counters_.migrations_lost) +
         " lost\n";
  if (health_) {
    out += "  health: " + std::to_string(health_ticks_) + " tick(s), " +
           std::to_string(counters_.breaches_tripped) + " breach(es) (" +
           std::to_string(counters_.breaches_cleared) + " cleared), " +
           std::to_string(counters_.isolations) + " isolation(s) (" +
           std::to_string(counters_.unisolations) + " lifted), " +
           std::to_string(counters_.drains_started) + " drain(s)\n";
  }
  if (flight_) {
    out += "  flight recorder: " + flight_->dir() + ", " +
           std::to_string(flight_->bundles_written()) + " bundle(s)\n";
  }
  for (int i = 0; i < num_fabrics(); ++i) {
    const FabricCheckpoint* cp = last_checkpoint(i);
    if (cp == nullptr) {
      out += "  checkpoint " + fabric(i).name + ": none\n";
    } else {
      out += "  checkpoint " + fabric(i).name + ": epoch " +
             std::to_string(cp->epoch) + " @v" +
             std::to_string(cp->version) + ", " +
             std::to_string(cp->blob.size()) + " bytes, " +
             std::to_string(cp->running) + " running, cycle " +
             std::to_string(cp->cycle) + "\n";
    }
  }
  out += "  failovers: " + std::to_string(failovers_) + " performed, " +
         std::to_string(failover_apps_restored_) + " apps restored, " +
         std::to_string(failover_apps_lost_) + " lost; " +
         std::to_string(checkpoints_taken_) + " checkpoints, " +
         std::to_string(reconciles_run_) + " reconciles\n";
  return out;
}

}  // namespace vapres::fleet
