#include "fleet/statedb.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/check.hpp"

namespace vapres::fleet {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fold_bytes(std::uint64_t& h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
}

void fold_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

void fold_str(std::uint64_t& h, const std::string& s) {
  fold_u64(h, s.size());
  fold_bytes(h, s.data(), s.size());
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

constexpr char kUnit = '\x1F';  ///< field separator in request blobs

}  // namespace

AgentId fabric_agent_id(int fabric) {
  return static_cast<AgentId>(static_cast<int>(AgentId::kFabric0) + fabric);
}

std::string agent_label(AgentId a) {
  switch (a) {
    case AgentId::kOrchestrator: return "orchestrator";
    case AgentId::kRouter: return "router";
    case AgentId::kQuota: return "quota";
    case AgentId::kMigration: return "migration";
    case AgentId::kHealth: return "health";
    default:
      return "fabric" + std::to_string(static_cast<int>(a) -
                                       static_cast<int>(AgentId::kFabric0));
  }
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kSubmitIntent: return "submit_intent";
    case Op::kQuotaDecision: return "quota_decision";
    case Op::kTenantState: return "tenant_state";
    case Op::kRouteOrder: return "route_order";
    case Op::kAdmitResult: return "admit_result";
    case Op::kRouteResult: return "route_result";
    case Op::kAppLocation: return "app_location";
    case Op::kAppRemoved: return "app_removed";
    case Op::kRouterCursor: return "router_cursor";
    case Op::kMigrateIntent: return "migrate_intent";
    case Op::kMigrateStep: return "migrate_step";
    case Op::kFabricState: return "fabric_state";
    case Op::kPreemption: return "preemption";
    case Op::kAgentRestart: return "agent_restart";
    case Op::kFabricCheckpoint: return "fabric_checkpoint";
    case Op::kFailover: return "failover";
    case Op::kHealthTick: return "health_tick";
    case Op::kHealthRuleState: return "health_rule_state";
    case Op::kIsolateFabric: return "isolate_fabric";
  }
  return "?";
}

const char* mig_step_name(MigStep s) {
  switch (s) {
    case MigStep::kNone: return "none";
    case MigStep::kPlanned: return "planned";
    case MigStep::kMastersAdopted: return "masters_adopted";
    case MigStep::kSourceStopped: return "source_stopped";
    case MigStep::kDstAdmitted: return "dst_admitted";
    case MigStep::kDstRejected: return "dst_rejected";
    case MigStep::kMoved: return "moved";
    case MigStep::kRolledBack: return "rolled_back";
    case MigStep::kSkipped: return "skipped";
    case MigStep::kLost: return "lost";
  }
  return "?";
}

std::string JournalEntry::to_bytes() const {
  std::string out;
  out.reserve(8 + 2 + 8 + 4 * 8 + 8 + note.size());
  put_u64(out, version);
  out.push_back(static_cast<char>(agent));
  out.push_back(static_cast<char>(op));
  put_u64(out, static_cast<std::uint64_t>(key));
  for (const std::int64_t a : args) {
    put_u64(out, static_cast<std::uint64_t>(a));
  }
  put_u64(out, note.size());
  out += note;
  return out;
}

std::string serialize_request(const sched::AppRequest& r) {
  std::string mods;
  for (std::size_t i = 0; i < r.modules.size(); ++i) {
    if (i > 0) mods.push_back(',');
    mods += r.modules[i];
  }
  std::string out = r.name;
  out.push_back(kUnit);
  out += mods;
  out.push_back(kUnit);
  out += std::to_string(r.priority);
  out.push_back(kUnit);
  out += std::to_string(r.source_interval_cycles);
  out.push_back(kUnit);
  out += std::to_string(r.source_words);
  return out;
}

sched::AppRequest parse_request(const std::string& blob) {
  std::vector<std::string> fields;
  std::string cur;
  for (const char c : blob) {
    if (c == kUnit) {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  VAPRES_REQUIRE(fields.size() == 5, "malformed request blob in journal");
  sched::AppRequest r;
  r.name = fields[0];
  std::string mod;
  for (const char c : fields[1]) {
    if (c == ',') {
      r.modules.push_back(mod);
      mod.clear();
    } else {
      mod.push_back(c);
    }
  }
  if (!mod.empty()) r.modules.push_back(mod);
  r.priority = std::stoi(fields[2]);
  r.source_interval_cycles = std::stoi(fields[3]);
  r.source_words = std::stoull(fields[4]);
  return r;
}

StateDb::StateDb(int num_fabrics) : journal_digest_(kFnvOffset) {
  VAPRES_REQUIRE(num_fabrics > 0, "state table needs at least one fabric");
  view_.fabrics.resize(static_cast<std::size_t>(num_fabrics));
  view_.fabric_health.resize(static_cast<std::size_t>(num_fabrics));
  base_ = view_;
}

const JournalEntry& StateDb::append(AgentId agent, Op op, std::int64_t key,
                                    std::array<std::int64_t, 4> args,
                                    std::string note) {
  JournalEntry e;
  e.version = ++version_;
  e.agent = agent;
  e.op = op;
  e.key = key;
  e.args = args;
  e.note = std::move(note);
  const std::string bytes = e.to_bytes();
  fold_bytes(journal_digest_, bytes.data(), bytes.size());
  journal_.push_back(std::move(e));
  apply(view_, journal_.back());
  if (journal_.back().op == Op::kAgentRestart) {
    ++restarts_[static_cast<AgentId>(journal_.back().key)];
  }
  return journal_.back();
}

void StateDb::apply(View& v, const JournalEntry& e) {
  const auto ai = [&](int i) { return static_cast<int>(e.args[static_cast<
      std::size_t>(i)]); };
  switch (e.op) {
    case Op::kSubmitIntent: {
      const std::size_t sep = e.note.find('\x1E');
      VAPRES_REQUIRE(sep != std::string::npos, "malformed submit intent");
      const std::string tenant = e.note.substr(0, sep);
      IntentRow row;
      row.seq = e.key;
      auto it = v.tenant_ids.find(tenant);
      if (it == v.tenant_ids.end()) {
        const int id = static_cast<int>(v.tenants.size());
        v.tenant_ids[tenant] = id;
        TenantRow t;
        t.name = tenant;
        v.tenants.push_back(t);
        it = v.tenant_ids.find(tenant);
      }
      row.tenant = it->second;
      row.request_blob = e.note.substr(sep + 1);
      v.intent = std::move(row);
      break;
    }
    case Op::kQuotaDecision:
      if (v.intent && v.intent->seq == e.key) {
        v.intent->quota_decided = true;
        v.intent->quota_allowed = e.args[0] != 0;
      }
      break;
    case Op::kTenantState: {
      // Tenant rows may be created by quota publication before any
      // submit intent names them (restores, preemption bookkeeping).
      auto it = v.tenant_ids.find(e.note);
      int id = static_cast<int>(e.key);
      if (!e.note.empty() && it == v.tenant_ids.end()) {
        VAPRES_REQUIRE(id == static_cast<int>(v.tenants.size()),
                       "tenant ids must be dense");
        v.tenant_ids[e.note] = id;
        TenantRow t;
        t.name = e.note;
        v.tenants.push_back(t);
      }
      VAPRES_REQUIRE(id >= 0 && id < static_cast<int>(v.tenants.size()),
                     "tenant state for unknown tenant id");
      TenantRow& t = v.tenants[static_cast<std::size_t>(id)];
      t.budget = ai(0);
      t.usage = ai(1);
      t.pressure = ai(2);
      t.idle = ai(3);
      break;
    }
    case Op::kRouteOrder:
      if (v.intent) {
        v.intent->round = ai(0);
        v.intent->planned = true;
        v.intent->order.clear();
        std::string num;
        for (const char c : e.note) {
          if (c == ',') {
            v.intent->order.push_back(std::stoi(num));
            num.clear();
          } else {
            num.push_back(c);
          }
        }
        if (!num.empty()) v.intent->order.push_back(std::stoi(num));
        v.intent->next_try = 0;
      }
      break;
    case Op::kAdmitResult:
      if (v.intent && v.intent->seq == e.key) {
        ++v.intent->attempts;
        ++v.intent->next_try;
        v.intent->last_verdict = ai(2);
      }
      break;
    case Op::kRouteResult:
      v.intent.reset();
      break;
    case Op::kAppLocation: {
      AppRow row;
      row.fabric = ai(0);
      row.local = ai(1);
      row.tenant = ai(2);
      v.apps[static_cast<int>(e.key)] = row;
      if (static_cast<int>(e.key) >= v.next_fleet_id) {
        v.next_fleet_id = static_cast<int>(e.key) + 1;
      }
      break;
    }
    case Op::kAppRemoved:
      v.apps.erase(static_cast<int>(e.key));
      break;
    case Op::kRouterCursor:
      v.rr_cursor = ai(0);
      break;
    case Op::kMigrateIntent: {
      MigrationRow row;
      row.fleet_id = static_cast<int>(e.key);
      row.dst = ai(0);
      row.probe_first = e.args[1] != 0;
      row.step = MigStep::kNone;
      v.migration = row;
      // A health-authored intent is a drain: stamp the source fabric so
      // the HealthAgent caps drains at one per fabric per tick.
      if (e.agent == AgentId::kHealth) {
        const auto it = v.apps.find(static_cast<int>(e.key));
        if (it != v.apps.end() && it->second.fabric >= 0 &&
            it->second.fabric <
                static_cast<int>(v.fabric_health.size())) {
          v.fabric_health[static_cast<std::size_t>(it->second.fabric)]
              .last_drain_version = e.version;
        }
      }
      break;
    }
    case Op::kMigrateStep:
      if (v.migration && v.migration->fleet_id == static_cast<int>(e.key)) {
        const MigStep step = static_cast<MigStep>(e.args[0]);
        v.migration->step = step;
        switch (step) {
          case MigStep::kPlanned:
            v.migration->src = ai(1);
            v.migration->src_local = ai(2);
            break;
          case MigStep::kDstAdmitted:
            v.migration->dst_local = ai(1);
            break;
          case MigStep::kMoved:
          case MigStep::kRolledBack:
          case MigStep::kSkipped:
          case MigStep::kLost:
            v.migration.reset();
            break;
          default:
            break;
        }
      }
      break;
    case Op::kFabricState: {
      const int f = static_cast<int>(e.key);
      VAPRES_REQUIRE(f >= 0 && f < static_cast<int>(v.fabrics.size()),
                     "fabric state for unknown fabric");
      FabricRow& row = v.fabrics[static_cast<std::size_t>(f)];
      row.free_prrs = ai(0);
      row.queued = ai(1);
      row.running = ai(2);
      row.util_permille = ai(3);
      row.version = e.version;
      break;
    }
    case Op::kPreemption:
      // The victim's app row stays (terminal until retirement); the open
      // intent — if any — gets a fresh post-preemption routing round.
      if (v.intent) {
        v.intent->preempted_for = true;
        v.intent->round += 1;
        v.intent->planned = false;
        v.intent->order.clear();
        v.intent->next_try = 0;
      }
      break;
    case Op::kHealthTick:
      v.health_tick_cycle = static_cast<std::uint64_t>(e.args[0]);
      v.health_tick_version = e.version;
      break;
    case Op::kHealthRuleState: {
      const int id = static_cast<int>(e.key);
      VAPRES_REQUIRE(id >= 0 && id < 4096, "health rule id out of range");
      if (id >= static_cast<int>(v.health.size())) {
        v.health.resize(static_cast<std::size_t>(id) + 1);
      }
      HealthRuleRow& row = v.health[static_cast<std::size_t>(id)];
      if (!e.note.empty()) row.name = e.note;
      const auto packed = static_cast<std::uint64_t>(e.args[0]);
      row.bad_streak = static_cast<int>(packed & 0xfffffu);
      row.good_streak = static_cast<int>((packed >> 20) & 0xfffffu);
      row.breached = (packed & (1ull << 40)) != 0;
      row.primed = (packed & (1ull << 43)) != 0;
      row.fabric = static_cast<int>((packed >> 48) & 0xffffu) - 1;
      row.last_raw = e.args[1];
      row.last_eval_version = static_cast<std::uint64_t>(e.args[2]);
      row.breaches = static_cast<std::uint64_t>(e.args[3]);
      const bool tripped = (packed & (1ull << 41)) != 0;
      if (tripped && row.fabric >= 0 &&
          row.fabric < static_cast<int>(v.fabric_health.size())) {
        FabricHealthRow& fh =
            v.fabric_health[static_cast<std::size_t>(row.fabric)];
        fh.last_breach_version = e.version;
        fh.last_breach_cycle = v.health_tick_cycle;
      }
      break;
    }
    case Op::kIsolateFabric: {
      const int f = static_cast<int>(e.key);
      VAPRES_REQUIRE(f >= 0 && f < static_cast<int>(v.fabric_health.size()),
                     "isolation for unknown fabric");
      FabricHealthRow& fh = v.fabric_health[static_cast<std::size_t>(f)];
      const bool on = e.args[0] != 0;
      if (on && !fh.isolated) ++fh.isolations;
      fh.isolated = on;
      break;
    }
    case Op::kAgentRestart:
    case Op::kFabricCheckpoint:
    case Op::kFailover:
      // Audit-only entries; the view moves via the kAppLocation /
      // kAppRemoved rows a failover writes per app.
      break;
  }
}

std::string StateDb::serialize_journal() const {
  std::string out;
  for (const JournalEntry& e : journal_) out += e.to_bytes();
  return out;
}

std::uint64_t StateDb::digest_view(const View& v) {
  std::uint64_t h = kFnvOffset;
  fold_u64(h, static_cast<std::uint64_t>(v.next_fleet_id));
  fold_u64(h, static_cast<std::uint64_t>(v.rr_cursor));
  fold_u64(h, v.apps.size());
  for (const auto& [id, row] : v.apps) {
    fold_u64(h, static_cast<std::uint64_t>(id));
    fold_u64(h, static_cast<std::uint64_t>(row.fabric));
    fold_u64(h, static_cast<std::uint64_t>(row.local));
    fold_u64(h, static_cast<std::uint64_t>(row.tenant));
  }
  fold_u64(h, v.tenants.size());
  for (const TenantRow& t : v.tenants) {
    fold_str(h, t.name);
    fold_u64(h, static_cast<std::uint64_t>(t.budget));
    fold_u64(h, static_cast<std::uint64_t>(t.usage));
    fold_u64(h, static_cast<std::uint64_t>(t.pressure));
    fold_u64(h, static_cast<std::uint64_t>(t.idle));
  }
  fold_u64(h, v.fabrics.size());
  for (const FabricRow& f : v.fabrics) {
    fold_u64(h, static_cast<std::uint64_t>(f.free_prrs));
    fold_u64(h, static_cast<std::uint64_t>(f.queued));
    fold_u64(h, static_cast<std::uint64_t>(f.running));
    fold_u64(h, static_cast<std::uint64_t>(f.util_permille));
  }
  fold_u64(h, v.intent ? 1u : 0u);
  if (v.intent) {
    fold_u64(h, static_cast<std::uint64_t>(v.intent->seq));
    fold_u64(h, static_cast<std::uint64_t>(v.intent->tenant));
    fold_str(h, v.intent->request_blob);
    fold_u64(h, static_cast<std::uint64_t>(v.intent->round));
    fold_u64(h, v.intent->planned ? 1u : 0u);
    fold_u64(h, static_cast<std::uint64_t>(v.intent->next_try));
    fold_u64(h, static_cast<std::uint64_t>(v.intent->attempts));
    fold_u64(h, v.intent->preempted_for ? 1u : 0u);
  }
  fold_u64(h, v.migration ? 1u : 0u);
  if (v.migration) {
    fold_u64(h, static_cast<std::uint64_t>(v.migration->fleet_id));
    fold_u64(h, static_cast<std::uint64_t>(v.migration->step));
    fold_u64(h, static_cast<std::uint64_t>(v.migration->src));
    fold_u64(h, static_cast<std::uint64_t>(v.migration->dst));
  }
  fold_u64(h, v.health_tick_cycle);
  fold_u64(h, v.health_tick_version);
  fold_u64(h, v.health.size());
  for (const HealthRuleRow& r : v.health) {
    fold_str(h, r.name);
    fold_u64(h, static_cast<std::uint64_t>(r.fabric));
    fold_u64(h, static_cast<std::uint64_t>(r.bad_streak));
    fold_u64(h, static_cast<std::uint64_t>(r.good_streak));
    fold_u64(h, r.breached ? 1u : 0u);
    fold_u64(h, r.primed ? 1u : 0u);
    fold_u64(h, static_cast<std::uint64_t>(r.last_raw));
    fold_u64(h, r.last_eval_version);
    fold_u64(h, r.breaches);
  }
  fold_u64(h, v.fabric_health.size());
  for (const FabricHealthRow& fh : v.fabric_health) {
    fold_u64(h, fh.isolated ? 1u : 0u);
    fold_u64(h, fh.isolations);
    fold_u64(h, fh.last_breach_version);
    fold_u64(h, fh.last_breach_cycle);
    fold_u64(h, fh.last_drain_version);
  }
  return h;
}

std::uint64_t StateDb::view_digest() const { return digest_view(view_); }

void StateDb::truncate() {
  base_ = view_;
  journal_.clear();
}

std::uint64_t StateDb::replayed_view_digest() const {
  View v = base_;
  for (const JournalEntry& e : journal_) apply(v, e);
  return digest_view(v);
}

const AppRow* StateDb::app(int fleet_id) const {
  const auto it = view_.apps.find(fleet_id);
  return it != view_.apps.end() ? &it->second : nullptr;
}

int StateDb::tenant_id(const std::string& name) const {
  const auto it = view_.tenant_ids.find(name);
  return it != view_.tenant_ids.end() ? it->second : -1;
}

const TenantRow& StateDb::tenant(int id) const {
  VAPRES_REQUIRE(id >= 0 && id < num_tenants(), "tenant id out of range");
  return view_.tenants[static_cast<std::size_t>(id)];
}

const FabricRow& StateDb::fabric(int index) const {
  VAPRES_REQUIRE(index >= 0 && index < num_fabrics(),
                 "fabric index out of range");
  return view_.fabrics[static_cast<std::size_t>(index)];
}

const IntentRow* StateDb::open_intent() const {
  return view_.intent ? &*view_.intent : nullptr;
}

const MigrationRow* StateDb::inflight_migration() const {
  return view_.migration ? &*view_.migration : nullptr;
}

const FabricHealthRow& StateDb::fabric_health(int index) const {
  VAPRES_REQUIRE(index >= 0 && index < num_fabrics(),
                 "fabric index out of range");
  return view_.fabric_health[static_cast<std::size_t>(index)];
}

bool StateDb::isolated(int fabric) const {
  return fabric_health(fabric).isolated;
}

int StateDb::available_fabrics() const {
  int n = 0;
  for (const FabricHealthRow& fh : view_.fabric_health) {
    if (!fh.isolated) ++n;
  }
  return n;
}

int StateDb::active_breaches(int fabric) const {
  int n = 0;
  for (const HealthRuleRow& r : view_.health) {
    if (r.breached && r.fabric == fabric) ++n;
  }
  return n;
}

std::uint64_t StateDb::restarts(AgentId a) const {
  const auto it = restarts_.find(a);
  return it != restarts_.end() ? it->second : 0;
}

std::string StateDb::to_string(
    const std::vector<std::string>* fabric_names) const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "state table: journal v%llu (depth %zu, digest %016llx, "
                "view %016llx)\n",
                static_cast<unsigned long long>(version_), journal_.size(),
                static_cast<unsigned long long>(journal_digest_),
                static_cast<unsigned long long>(view_digest()));
  out += buf;
  int running_rows = static_cast<int>(view_.apps.size());
  std::snprintf(buf, sizeof(buf),
                "  apps: %d located, next fleet id %d, rr cursor %d\n",
                running_rows, view_.next_fleet_id, view_.rr_cursor);
  out += buf;
  for (const TenantRow& t : view_.tenants) {
    std::snprintf(buf, sizeof(buf),
                  "  tenant %-8s budget %2d usage %2d streaks +%d/-%d\n",
                  t.name.c_str(), t.budget, t.usage, t.pressure, t.idle);
    out += buf;
  }
  for (std::size_t i = 0; i < view_.fabrics.size(); ++i) {
    const FabricRow& f = view_.fabrics[i];
    const std::string label =
        fabric_names != nullptr && i < fabric_names->size()
            ? (*fabric_names)[i]
            : std::to_string(i);
    std::snprintf(buf, sizeof(buf),
                  "  fabric %s: free %d PRRs, queued %d, running %d, "
                  "util %.1f%% (published @v%llu)\n",
                  label.c_str(), f.free_prrs, f.queued, f.running,
                  static_cast<double>(f.util_permille) / 10.0,
                  static_cast<unsigned long long>(f.version));
    out += buf;
  }
  if (view_.migration) {
    std::snprintf(buf, sizeof(buf),
                  "  in-flight migration: fleet id %d %d->%d at step %s\n",
                  view_.migration->fleet_id, view_.migration->src,
                  view_.migration->dst, mig_step_name(view_.migration->step));
    out += buf;
  }
  if (!view_.health.empty()) {
    for (std::size_t i = 0; i < view_.fabric_health.size(); ++i) {
      const FabricHealthRow& fh = view_.fabric_health[i];
      const int breaches = active_breaches(static_cast<int>(i));
      const int score =
          std::max(0, 1000 - 250 * breaches - (fh.isolated ? 100 : 0));
      const std::string label =
          fabric_names != nullptr && i < fabric_names->size()
              ? (*fabric_names)[i]
              : std::to_string(i);
      std::snprintf(buf, sizeof(buf),
                    "  health %s: score %4d, %s, %d active breach(es), "
                    "last breach @v%llu, %llu isolation(s)\n",
                    label.c_str(), score,
                    fh.isolated ? "ISOLATED" : "serving", breaches,
                    static_cast<unsigned long long>(fh.last_breach_version),
                    static_cast<unsigned long long>(fh.isolations));
      out += buf;
    }
    for (std::size_t i = 0; i < view_.health.size(); ++i) {
      const HealthRuleRow& r = view_.health[i];
      if (!r.breached) continue;
      std::snprintf(buf, sizeof(buf),
                    "    breached rule %zu (%s): streaks +%d/-%d, "
                    "%llu trip(s), last eval @v%llu\n",
                    i, r.name.c_str(), r.bad_streak, r.good_streak,
                    static_cast<unsigned long long>(r.breaches),
                    static_cast<unsigned long long>(r.last_eval_version));
      out += buf;
    }
  }
  return out;
}

}  // namespace vapres::fleet
