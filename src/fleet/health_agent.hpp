// HealthAgent: the fleet's SLO monitor and remediation daemon.
//
// Sits in the ControlPlane's pump loop next to the router/quota/
// migration agents and follows the same discipline: at most ONE
// journaled step's side effects per poll(), so kills land exactly on
// journal version boundaries and a restarted agent reconverges from
// table rows alone.
//
// Decision-critical state never lives in this object. Rule hysteresis
// streaks, last raw readings, and eval cycles are journaled
// kHealthRuleState rows; isolation is a kIsolateFabric row; drains are
// plain kMigrateIntent rows executed by the MigrationAgent's existing
// step machine. The only member state is observational scratch (the
// HealthSampler rings) — a restart loses history graphs, never a
// decision (docs/HEALTH.md).
//
// One poll() performs the highest-priority applicable step:
//   1. evaluate the lowest-id rule still pending for the current
//      kHealthTick (one complete evaluation — streak update and breach
//      transition — in one journal entry);
//   2. isolate a fabric with active breaches (never the last
//      non-isolated fabric) or un-isolate one whose breaches cleared;
//   3. drain one running app off an isolated fabric (at most one drain
//      intent per fabric per tick, capped via the journaled
//      last_drain_version);
//   4. otherwise: no progress.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fleet/agents.hpp"
#include "fleet/spec.hpp"
#include "fleet/statedb.hpp"
#include "obs/health/rules.hpp"
#include "obs/health/series.hpp"

namespace vapres::fleet {

class HealthAgent {
 public:
  HealthAgent(StateDb& db, const FleetSpec& spec,
              std::vector<std::unique_ptr<FabricAgent>>& fabrics,
              FleetCounters& counters);

  /// One journaled step (see file comment). Returns whether it made
  /// progress.
  bool poll();

  /// Journals the restart marker. Nothing to rebuild: streaks and
  /// remediation state are table rows, the sampler is scratch.
  void restart();

  const obs::health::RuleEngine& engine() const { return engine_; }
  obs::health::HealthSampler& sampler() { return sampler_; }
  const obs::health::HealthSampler& sampler() const { return sampler_; }

  /// Human-readable rule-state dump (flight bundles, fleet_status).
  std::string rules_to_string() const;

 private:
  /// Lowest rule id whose journaled eval cycle predates the current
  /// tick; -1 when the round is complete (or no tick happened yet).
  int pending_rule() const;
  bool evaluate_pending(int rule_id);
  bool step_isolation();
  bool step_drain();
  sim::Picoseconds now_ps() const;

  StateDb& db_;
  const FleetSpec& spec_;
  std::vector<std::unique_ptr<FabricAgent>>& fabrics_;
  FleetCounters& counters_;
  obs::health::RuleEngine engine_;
  obs::health::HealthSampler sampler_;
};

}  // namespace vapres::fleet
