#include "fleet/quota.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sim/check.hpp"

namespace vapres::fleet {

QuotaGovernor::QuotaGovernor(const QuotaConfig& config, int fleet_prrs)
    : cfg_(config), fleet_prrs_(fleet_prrs) {
  VAPRES_REQUIRE(fleet_prrs_ > 0, "quota governor needs a non-empty fleet");
  VAPRES_REQUIRE(cfg_.min_budget_prrs >= 1, "minimum budget must be >= 1");
  VAPRES_REQUIRE(cfg_.max_budget_prrs >= cfg_.min_budget_prrs,
                 "max budget below min budget");
  VAPRES_REQUIRE(cfg_.grow_observations >= 1 && cfg_.shrink_observations >= 1,
                 "hysteresis streaks must be >= 1");
}

int QuotaGovernor::initial_budget() const {
  const int b = cfg_.initial_budget_prrs > 0 ? cfg_.initial_budget_prrs
                                             : fleet_prrs_ / 4;
  return clamp_budget(b);
}

int QuotaGovernor::clamp_budget(int b) const {
  return std::clamp(b, cfg_.min_budget_prrs, cfg_.max_budget_prrs);
}

QuotaGovernor::Tenant& QuotaGovernor::tenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    Tenant t;
    t.budget = initial_budget();
    it = tenants_.emplace(name, t).first;
  }
  return it->second;
}

void QuotaGovernor::observe_demand(const std::string& name, int want_prrs) {
  if (!cfg_.enabled) return;
  Tenant& t = tenant(name);
  t.idle = 0;  // demand resets the shrink streak
  if (t.usage + want_prrs > t.budget) {
    if (++t.pressure >= cfg_.grow_observations) {
      const int grown = clamp_budget(t.budget + cfg_.grow_step_prrs);
      if (grown != t.budget) {
        t.budget = grown;
        ++grows_;
        obs::Registry::instance().counter("fleet.quota.grows").add();
      }
      t.pressure = 0;
    }
  } else {
    t.pressure = 0;
  }
}

void QuotaGovernor::set_usage(const std::string& name, int prrs) {
  tenant(name).usage = prrs;
}

void QuotaGovernor::tick() {
  if (!cfg_.enabled) return;
  for (auto& [name, t] : tenants_) {
    const double low_mark = cfg_.shrink_below * static_cast<double>(t.budget);
    if (t.budget > cfg_.min_budget_prrs &&
        static_cast<double>(t.usage) < low_mark) {
      if (++t.idle >= cfg_.shrink_observations) {
        const int shrunk = clamp_budget(t.budget - cfg_.shrink_step_prrs);
        if (shrunk != t.budget) {
          t.budget = shrunk;
          ++shrinks_;
          obs::Registry::instance().counter("fleet.quota.shrinks").add();
        }
        t.idle = 0;
      }
    } else {
      t.idle = 0;
    }
  }
}

bool QuotaGovernor::admit(const std::string& name, int want_prrs,
                          int fleet_free_prrs) const {
  if (!cfg_.enabled) return true;
  const auto it = tenants_.find(name);
  const int budget = it != tenants_.end() ? it->second.budget
                                          : initial_budget();
  const int usage = it != tenants_.end() ? it->second.usage : 0;
  if (usage + want_prrs <= budget) return true;
  // Elastic overshoot: allowed while the fleet keeps its slack reserve
  // free after the grant.
  return fleet_free_prrs - want_prrs >= cfg_.elastic_slack_prrs;
}

int QuotaGovernor::budget(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it != tenants_.end() ? it->second.budget : initial_budget();
}

int QuotaGovernor::usage(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it != tenants_.end() ? it->second.usage : 0;
}

int QuotaGovernor::pressure(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it != tenants_.end() ? it->second.pressure : 0;
}

int QuotaGovernor::idle(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it != tenants_.end() ? it->second.idle : 0;
}

std::vector<std::string> QuotaGovernor::tenant_names() const {
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) out.push_back(name);
  return out;
}

void QuotaGovernor::restore(const std::string& name, int budget, int usage,
                            int pressure, int idle) {
  Tenant& t = tenant(name);
  t.budget = clamp_budget(budget);
  t.usage = usage;
  t.pressure = pressure;
  t.idle = idle;
}

bool QuotaGovernor::over_quota(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it != tenants_.end() && it->second.usage > it->second.budget;
}

std::vector<std::string> QuotaGovernor::over_quota_tenants() const {
  std::vector<std::string> out;
  for (const auto& [name, t] : tenants_) {
    if (t.usage > t.budget) out.push_back(name);
  }
  return out;
}

}  // namespace vapres::fleet
