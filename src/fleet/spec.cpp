#include "fleet/spec.hpp"

#include "sim/check.hpp"

namespace vapres::fleet {

namespace {

/// Stacks `widths.size()` PRRs one per 16-row clock region, starting at
/// `col` (each XC4VLX25 half holds six regions vertically).
std::vector<fabric::ClbRect> stack_prrs(const std::vector<int>& widths,
                                        int col, int first_row = 0) {
  std::vector<fabric::ClbRect> rects;
  int row = first_row;
  for (const int w : widths) {
    rects.push_back(fabric::ClbRect{row, col, 16, w});
    row += fabric::DeviceGeometry::kClockRegionRows;
  }
  return rects;
}

core::SystemParams base_params(const std::string& name, int num_prrs,
                               int num_ioms, int lanes) {
  core::SystemParams p;
  p.name = name;
  core::RsbParams& r = p.rsbs[0];
  r.num_prrs = num_prrs;
  r.num_ioms = num_ioms;
  r.ki = 1;
  r.ko = 1;
  r.kr = lanes;
  r.kl = lanes;
  return p;
}

}  // namespace

FabricSpec FabricSpec::standard(const std::string& name) {
  FabricSpec f;
  f.name = name;
  f.params = base_params(name, 4, 3, 3);
  // Two big + two small sites, one per clock region — the same
  // deliberately fragmentation-prone shape as load::server_params().
  f.params.prr_rects = stack_prrs({6, 6, 2, 2}, 0);
  return f;
}

FabricSpec FabricSpec::big(const std::string& name) {
  FabricSpec f;
  f.name = name;
  // Lanes stay at 3: the PRSocket packs (kr+kl+ki) MUX_sel fields into
  // one 32-bit DCR, which caps a socket at 3 lanes per direction.
  f.params = base_params(name, 6, 4, 3);
  f.params.prr_rects = stack_prrs({6, 6, 6, 6, 2, 2}, 0);
  return f;
}

FabricSpec FabricSpec::compact(const std::string& name) {
  FabricSpec f;
  f.name = name;
  f.params = base_params(name, 3, 2, 2);
  f.params.prr_rects = stack_prrs({2, 2, 2}, 0);
  // Halved ladder: an interval-2 stream (50 Mwords/s) finds no feasible
  // PRR clock here, so this tier only hosts relaxed-rate apps.
  f.params.prr_clock_a_mhz = 25.0;
  f.params.prr_clock_b_mhz = 12.5;
  return f;
}

FabricSpec FabricSpec::mega(const std::string& name) {
  FabricSpec f;
  f.name = name;
  f.params = base_params(name, 8, 5, 3);
  // Left half: 4 big + 2 small; right half (col 14): 1 big + 1 small.
  std::vector<fabric::ClbRect> rects = stack_prrs({6, 6, 6, 6, 2, 2}, 0);
  const std::vector<fabric::ClbRect> right = stack_prrs({6, 2}, 14);
  rects.insert(rects.end(), right.begin(), right.end());
  f.params.prr_rects = std::move(rects);
  return f;
}

const char* policy_name(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kCostBased: return "cost";
    case RoutePolicy::kRoundRobin: return "round-robin";
  }
  return "?";
}

int FleetSpec::total_prrs() const {
  int n = 0;
  for (const FabricSpec& f : fabrics) n += f.params.total_prrs();
  return n;
}

FleetSpec FleetSpec::uniform(int n) {
  VAPRES_REQUIRE(n > 0, "fleet needs at least one fabric");
  FleetSpec spec;
  for (int i = 0; i < n; ++i) {
    spec.fabrics.push_back(FabricSpec::standard("fab" + std::to_string(i)));
  }
  return spec;
}

FleetSpec FleetSpec::heterogeneous() {
  FleetSpec spec;
  spec.fabrics.push_back(FabricSpec::big("big0"));
  spec.fabrics.push_back(FabricSpec::standard("std0"));
  spec.fabrics.push_back(FabricSpec::standard("std1"));
  spec.fabrics.push_back(FabricSpec::compact("mini0"));
  return spec;
}

std::vector<obs::health::HealthRuleSpec> standard_health_rules(
    const FleetSpec& spec) {
  using obs::health::HealthRuleSpec;
  using obs::health::Source;
  std::vector<HealthRuleSpec> rules;
  for (std::size_t i = 0; i < spec.fabrics.size(); ++i) {
    const std::string& n = spec.fabrics[i].name;
    const int fab = static_cast<int>(i);

    HealthRuleSpec retries;
    retries.name = n + ".icap_retry_rate";
    retries.source = Source::kGaugeRate;
    retries.metric = "fleet." + n + ".reconfig_retries";
    retries.fabric = fab;
    retries.threshold = 8;  // retries per tick before the fabric is sick
    retries.breach_observations = 2;
    retries.clear_observations = 3;
    rules.push_back(retries);

    HealthRuleSpec recoveries;
    recoveries.name = n + ".fault_recovery_rate";
    recoveries.source = Source::kGaugeRate;
    recoveries.metric = "fleet." + n + ".fault_recoveries";
    recoveries.fabric = fab;
    recoveries.threshold = 12;
    recoveries.breach_observations = 2;
    recoveries.clear_observations = 3;
    rules.push_back(recoveries);

    HealthRuleSpec gaps;
    gaps.name = n + ".stream_gap_rate";
    gaps.source = Source::kGaugeRate;
    gaps.metric = "fleet." + n + ".words_discarded";
    gaps.fabric = fab;
    gaps.threshold = 0;  // hitless fabric: any discarded word is bad
    gaps.breach_observations = 1;
    gaps.clear_observations = 2;
    rules.push_back(gaps);

    HealthRuleSpec rejects;
    rejects.name = n + ".reject_streak";
    rejects.source = Source::kGauge;
    rejects.metric = "fleet." + n + ".reject_streak";
    rejects.fabric = fab;
    rejects.threshold = 6;  // consecutive admission rejections
    rejects.breach_observations = 2;
    rejects.clear_observations = 3;
    rules.push_back(rejects);

    HealthRuleSpec latency;
    latency.name = n + ".route_p99";
    latency.source = Source::kHistogramP99;
    latency.metric = "fleet.route." + n + ".first.cycles";
    latency.fabric = fab;
    latency.threshold = 32'000'000;  // the bench_soak p99 gate bound
    latency.breach_observations = 3;
    latency.clear_observations = 5;
    rules.push_back(latency);
  }

  HealthRuleSpec reconcile;
  reconcile.name = "fleet.reconcile_violations";
  reconcile.source = Source::kCounterRate;
  reconcile.metric = "fleet.reconcile.violations";
  reconcile.fabric = -1;  // fleet-wide: observe + flight-record only
  reconcile.threshold = 0;
  reconcile.breach_observations = 1;
  reconcile.clear_observations = 1;
  rules.push_back(reconcile);
  return rules;
}

}  // namespace vapres::fleet
