// Fleet control plane: the orchestrator over the cooperating agents.
//
// The ControlPlane replaces PR 7's monolithic FleetController with the
// same public surface, but internally every operation is an *intent*
// journaled into the shared StateDb and executed by the agents
// (fleet/agents.hpp) as the orchestrator pumps them round-robin until
// the table is quiescent. Decision logic is call-for-call identical to
// the monolith — same probe order, same governor sequence, same
// tie-breaks — so routing stays bit-compatible; what changed is that
// every intermediate step is now journaled, which buys crash
// tolerance: schedule_kill() (or restart_agent()) destroys and
// reconstructs any single agent between journal entries, and the fresh
// agent replays the table + live scheduler state to reconverge —
// in-flight migrations resume or roll back from their journaled step,
// quota hysteresis streaks are restored mid-count, and routing resumes
// at the exact attempt index. See docs/CONTROLPLANE.md.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "fleet/agents.hpp"
#include "fleet/cost.hpp"
#include "fleet/health_agent.hpp"
#include "fleet/quota.hpp"
#include "fleet/spec.hpp"
#include "fleet/statedb.hpp"
#include "obs/health/flight.hpp"
#include "sched/scheduler.hpp"

namespace vapres::fleet {

/// Fleet-wide app handle: which fabric, which local scheduler app id.
struct FleetAppId {
  int fabric = -1;
  int app = -1;
};

/// What the router did with one submission (assembled from the journal
/// entries the agents wrote while the intent was open).
struct RouteDecision {
  int fleet_id = -1;       ///< stable fleet-wide id (-1 when not admitted)
  int fabric = -1;         ///< hosting fabric when admitted
  bool admitted = false;
  bool quota_limited = false;  ///< refused by the governor, never routed
  int attempts = 0;        ///< fabrics actually tried (submissions made)
  bool preempted_for = false;  ///< an over-quota app was evicted for this
  /// Last scheduler verdict (the blocking one when every fabric
  /// rejected; kPending when quota-limited or no fabric was eligible).
  sched::AdmissionVerdict verdict = sched::AdmissionVerdict::kPending;
  std::string reason;
  std::vector<int> order;  ///< fabric indices in the order they were tried
};

enum class MigrateOutcome {
  kMoved,       ///< running on the destination under the same fleet id
  kRolledBack,  ///< destination refused; re-admitted on the source
  kLost,        ///< destination and rollback both failed; app is gone
  kSkipped,     ///< not attempted (probe said no / not running / same fabric)
};

const char* migrate_outcome_name(MigrateOutcome o);

struct MigrateResult {
  MigrateOutcome outcome = MigrateOutcome::kSkipped;
  int fleet_id = -1;
  int from_fabric = -1;
  int to_fabric = -1;
  std::string reason;
};

/// One fabric's most recent full-system checkpoint (snap subsystem,
/// docs/SNAPSHOT.md): the system+scheduler blob plus capture metadata.
struct FabricCheckpoint {
  std::string blob;
  std::uint64_t epoch = 0;    ///< journal version at capture (blob epoch)
  std::uint64_t version = 0;  ///< version of the kFabricCheckpoint row
  sim::Cycles cycle = 0;      ///< fabric system-clock cycle at capture
  int running = 0;            ///< running apps captured in the blob
};

/// What failover(crashed, spare) did with the crashed fabric's apps.
struct FailoverResult {
  int from_fabric = -1;
  int to_fabric = -1;
  std::uint64_t epoch = 0;  ///< checkpoint epoch restored from
  int apps_restored = 0;    ///< running on the spare under their fleet ids
  int apps_retired = 0;     ///< already terminal in the checkpoint
  int apps_lost = 0;        ///< spare refused admission (gated at zero)
  std::vector<int> restored_ids;  ///< fleet ids restored, in table order
};

class ControlPlane {
 public:
  using Counters = FleetCounters;

  /// Builds every fabric (bring-up included) and the agents over them.
  /// `model` defaults to a WeightedCostModel over `spec.weights`.
  explicit ControlPlane(const FleetSpec& spec,
                        std::unique_ptr<CostModel> model = nullptr);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  int num_fabrics() const { return static_cast<int>(fabrics_.size()); }
  const std::string& fabric_name(int fabric) const;
  core::VapresSystem& system(int fabric);
  sched::ApplicationScheduler& scheduler(int fabric);
  const sched::ApplicationScheduler& scheduler(int fabric) const;

  /// Routes one submission for `tenant`: journals the intent, pumps the
  /// agents to quiescence, and assembles the decision from the journal.
  RouteDecision submit(const std::string& tenant,
                       const sched::AppRequest& request);

  /// Moves a running app to `dst_fabric` through the MigrationAgent's
  /// journaled step machine (masters adopted, teardown on the source,
  /// replay admission on the destination, rollback re-admit on refusal).
  MigrateResult migrate(int fleet_id, int dst_fabric,
                        bool probe_first = true);

  /// Stops a running app. The fleet id stays resolvable (terminal
  /// record) until retire_terminal() prunes it.
  void stop(int fleet_id);

  bool running(int fleet_id) const;
  /// Location of a still-resolvable fleet id (live or terminal).
  std::optional<FleetAppId> locate(int fleet_id) const;
  /// Scheduler record behind a still-resolvable fleet id.
  const sched::AppRecord& record_of(int fleet_id) const;
  const std::string& tenant_of(int fleet_id) const;
  /// Fleet ids of currently running apps, ascending.
  std::vector<int> running_ids() const;
  /// Running apps hosted on `fabric`.
  int running_on(int fabric) const;

  /// Journals kAppRemoved for fleet ids whose records went terminal,
  /// then retires terminal records on every fabric. Returns ids pruned.
  int retire_terminal();

  /// Runs every fabric that is behind forward to `cycle` (fabrics ahead
  /// are left untouched — fleet time is the max, never rewound).
  void advance_to(sim::Cycles cycle);
  /// Fleet time: the furthest fabric's system-clock cycle count.
  sim::Cycles now() const;

  int total_prrs() const;
  int free_prrs() const;

  /// The QuotaAgent's governor. The reference is invalidated when that
  /// agent restarts — re-fetch rather than caching across restarts.
  QuotaGovernor& governor() { return quota_->governor(); }
  const QuotaGovernor& governor() const { return quota_->governor(); }
  const Counters& counters() const { return counters_; }
  const FleetSpec& spec() const { return spec_; }

  // ---- control-plane surface (new vs the monolith) ---------------------

  const StateDb& statedb() const { return db_; }
  /// Truncates the journal (snapshotting the view as the replay base) —
  /// the soak calls this at checkpoints to bound journal depth.
  void truncate_journal() { db_.truncate(); }

  /// Schedules one kill: the next time the journal reaches
  /// `at_version` between agent polls, `agent` is destroyed,
  /// reconstructed, and restarted. One kill is pending at a time.
  void schedule_kill(AgentId agent, std::uint64_t at_version);

  /// Destroys, reconstructs, and restarts one agent immediately; fabric
  /// agents reconcile against their live scheduler on the way up.
  /// Returns reconcile violations (always empty for non-fabric agents).
  std::vector<std::string> restart_agent(AgentId agent);

  /// Full table-vs-scheduler consistency sweep across every fabric.
  std::vector<std::string> reconcile();

  /// Total agent restarts (from the table's restart ledger).
  std::uint64_t agent_restarts() const;

  // ---- checkpoint / failover (snap subsystem, docs/SNAPSHOT.md) --------

  /// Quiesces `fabric` to the cold-snapshot barrier and captures a full
  /// system+scheduler checkpoint tagged with the current journal
  /// version; journals kFabricCheckpoint. Returns the checkpoint epoch.
  /// Call periodically (the fleet soak does so per sweep) so failover
  /// always has a recent blob.
  std::uint64_t checkpoint_fabric(int fabric);
  /// checkpoint_fabric() over every fabric.
  void checkpoint_all();
  /// Most recent checkpoint of `fabric` (nullptr before the first).
  const FabricCheckpoint* last_checkpoint(int fabric) const;

  /// Simulated fabric loss: destroys the fabric's system, scheduler,
  /// and agent, and brings up a blank replacement (journaling the agent
  /// restart). Table rows still point at the dead fabric — call
  /// failover() next; resolving those fleet ids in between is invalid.
  void kill_fabric(int fabric);

  /// Restores the crashed fabric's checkpointed apps onto `spare`:
  /// reconstructs the last checkpoint off to the side, adopts its
  /// relocation masters, replay-admits every running app on the spare
  /// under its original fleet id, and journals every move
  /// (kFailover + per-app kAppLocation/kAppRemoved rows).
  FailoverResult failover(int crashed, int spare);

  std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t reconciles_run() const { return reconciles_run_; }

  // ---- health monitor / flight recorder (docs/HEALTH.md) ---------------

  /// Present when spec.health.enabled — the SLO monitor pumped next to
  /// the other agents.
  bool health_enabled() const { return health_ != nullptr; }
  HealthAgent& health_agent();
  const HealthAgent& health_agent() const;

  /// One monitoring tick: refreshes the per-fabric health gauges,
  /// freezes the sampler window, journals kHealthTick, and pumps the
  /// agents (the HealthAgent evaluates every rule exactly once per tick
  /// and remediates). Returns the number of rules that newly tripped.
  /// When a flight directory is set, any trip records a bundle.
  std::uint64_t health_tick();
  std::uint64_t health_ticks() const { return health_ticks_; }

  /// Arms the flight recorder: health_tick() breaches (and explicit
  /// record_flight() calls) write postmortem bundles under `dir`.
  void set_flight_dir(const std::string& dir, std::size_t max_bundles = 8);
  /// Writes one bundle now (harnesses call this on invariant failures).
  /// Returns the bundle path, or "" without an armed recorder / at cap.
  std::string record_flight(const std::string& reason);
  std::uint64_t flight_bundles() const {
    return flight_ ? flight_->bundles_written() : 0;
  }
  const obs::health::FlightRecorder* flight_recorder() const {
    return flight_.get();
  }

  /// Operator-facing text dump: journal version/depth/digest, per-agent
  /// restart counts, per-fabric occupancy from the table, per-fabric
  /// checkpoint epochs, tenants, decision/failover counters.
  std::string fleet_status() const;

 private:
  struct Fabric {
    std::string name;
    std::unique_ptr<core::VapresSystem> sys;
    std::unique_ptr<sched::ApplicationScheduler> sched;
  };

  Fabric& fabric(int index);
  const Fabric& fabric(int index) const;
  sim::Picoseconds now_ps() const;

  /// Polls the agents round-robin until none makes progress, executing
  /// any scheduled kill between polls.
  void pump();
  void check_kill();
  void refresh_gauges();
  /// Per-fabric health signal gauges (fleet.<name>.reconfig_retries /
  /// .fault_recoveries / .words_discarded / .reject_streak) the standard
  /// rules watch — refreshed at each health_tick() before sampling.
  void refresh_health_gauges();
  RouteDecision assemble_decision(std::uint64_t since_version) const;

  FleetSpec spec_;
  std::vector<std::unique_ptr<Fabric>> fabrics_;
  std::unique_ptr<CostModel> model_;
  StateDb db_;
  FleetCounters counters_;
  std::vector<std::optional<FabricCheckpoint>> checkpoints_;
  std::uint64_t checkpoints_taken_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t failover_apps_restored_ = 0;
  std::uint64_t failover_apps_lost_ = 0;
  std::uint64_t reconciles_run_ = 0;
  std::vector<std::unique_ptr<FabricAgent>> fabric_agents_;
  std::unique_ptr<QuotaAgent> quota_;
  std::unique_ptr<RouterAgent> router_;
  std::unique_ptr<MigrationAgent> migration_;
  std::unique_ptr<HealthAgent> health_;
  std::unique_ptr<obs::health::FlightRecorder> flight_;
  std::uint64_t health_ticks_ = 0;
  std::int64_t submit_seq_ = 0;

  struct PendingKill {
    AgentId agent;
    std::uint64_t at_version;
  };
  std::optional<PendingKill> kill_;
};

}  // namespace vapres::fleet
