#include "fleet/cost.hpp"

#include <algorithm>

namespace vapres::fleet {

bool capability_mismatch(sched::AdmissionVerdict v) {
  switch (v) {
    case sched::AdmissionVerdict::kRejectedBadSpec:
    case sched::AdmissionVerdict::kRejectedRateInfeasible:
    case sched::AdmissionVerdict::kRejectedNoPrrFit:
      return true;
    default:
      return false;
  }
}

bool capacity_blocked(sched::AdmissionVerdict v) {
  switch (v) {
    case sched::AdmissionVerdict::kRejectedFragmented:
    case sched::AdmissionVerdict::kRejectedNoIomChannel:
    case sched::AdmissionVerdict::kRejectedNoRoute:
      return true;
    default:
      return false;
  }
}

double WeightedCostModel::score(const FabricSnapshot& snap) const {
  if (!snap.probe.admissible && capability_mismatch(snap.probe.verdict)) {
    return kExcluded;
  }
  // Free-capacity term: prefer the *fullest* fabric that can still host
  // the app (best-fit consolidation). Spreading load evenly looks fair
  // but dribbles a little occupancy onto every fabric, so a burst finds
  // no fabric with headroom; packing keeps whole fabrics in reserve.
  // bench_fleet measures consolidation beating round-robin spread on
  // admissions at every seed tried. A fabric is as full as its scarcest
  // resource: occupied slices or allocated IOM channel pairs.
  const double free_fraction =
      1.0 - std::max(snap.utilization, snap.channel_utilization);
  // Fragmentation term: each planned defrag relocation costs a quarter
  // point (it burns ICAP bandwidth and delays the launch); a fabric that
  // is capacity-blocked right now takes a full point so every currently
  // admissible fabric sorts ahead of it. Placement slack the plan would
  // strand (a small module on a big site) is fragmentation-to-be and
  // costs up to a quarter point.
  double frag = 0.25 * static_cast<double>(snap.probe.defrag_migrations);
  if (!snap.probe.admissible) frag += 1.0;
  frag += 0.25 * snap.fit_waste;
  // Queue-delay term: submissions already waiting in the fabric's
  // admission queue. (The fabric's clock lead is deliberately NOT used
  // as a delay proxy: it penalizes exactly the busy fabric that
  // consolidation wants to keep filling, and measurably costs
  // admissions.)
  const double queue = static_cast<double>(snap.queued);
  // Affinity: cap the bonus at one point so a tenant's warm fabric does
  // not absorb unbounded load.
  const double affinity =
      std::min(1.0, 0.5 * static_cast<double>(snap.tenant_running));
  return w_.occupancy * free_fraction + w_.fragmentation * frag +
         w_.queue_delay * queue - w_.affinity * affinity;
}

}  // namespace vapres::fleet
