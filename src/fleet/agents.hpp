// Control-plane agents: the per-concern tasks the PR 7 monolithic
// FleetController was decomposed into (sonic-swss style: orchestrator +
// per-concern daemons over a shared state DB).
//
// Four agent kinds cooperate through the StateDb journal instead of
// calling each other's state:
//
//   - QuotaAgent      owns the QuotaGovernor; decides open submit
//                     intents (kQuotaDecision) and publishes per-tenant
//                     budget/usage/streak rows (kTenantState) the other
//                     agents and a restarted successor read back.
//   - RouterAgent     plans fabric try orders (kRouteOrder, probing
//                     through FabricAgent snapshots), walks them one
//                     admission attempt per poll, performs starvation
//                     preemption from table rows, and closes intents
//                     (kRouteResult).
//   - MigrationAgent  executes cross-fabric moves as a journaled step
//                     machine (kMigrateStep) — exactly one step's side
//                     effects per poll, so a kill at any journal version
//                     leaves a row its restarted successor resumes or
//                     rolls back from.
//   - FabricAgent     one per fabric: the only agent that touches that
//                     fabric's scheduler. Executes admissions/stops on
//                     behalf of the router and migrator (results are
//                     journaled before control returns), publishes
//                     occupancy rows (kFabricState), and reconciles
//                     table rows against live scheduler state after a
//                     restart.
//
// Every poll() does at most one journaled step and returns whether it
// made progress; the ControlPlane pumps the agents round-robin until
// the table is quiescent, checking scheduled kills between polls — so
// crash points are exactly journal version boundaries. Where
// restartability matters (anything multi-step), state flows through the
// table; single-step execution is delegated synchronously to the owning
// FabricAgent, with the result journaled before the call returns.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "fleet/cost.hpp"
#include "obs/bus.hpp"
#include "fleet/quota.hpp"
#include "fleet/spec.hpp"
#include "fleet/statedb.hpp"
#include "sched/scheduler.hpp"

namespace vapres::fleet {

/// Plain (non-obs) decision counters shared by the agents — the
/// decomposed equivalent of the monolith's per-controller counters.
struct FleetCounters {
  std::uint64_t submissions = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;        ///< routed but every fabric refused
  std::uint64_t quota_rejected = 0;  ///< refused by the governor
  std::uint64_t fallbacks = 0;       ///< fabric rejected, next one tried
  std::uint64_t quota_preemptions = 0;
  std::uint64_t migrations_moved = 0;
  std::uint64_t migrations_rolled_back = 0;
  std::uint64_t migrations_lost = 0;
  std::uint64_t migrations_skipped = 0;
  // Health monitor decisions (fleet/health_agent.hpp):
  std::uint64_t breaches_tripped = 0;
  std::uint64_t breaches_cleared = 0;
  std::uint64_t isolations = 0;
  std::uint64_t unisolations = 0;
  std::uint64_t drains_started = 0;
};

class FabricAgent;

/// Journals the kAgentRestart marker for `a`, bumps the
/// fleet.agent.restarts counter, and emits the bus instant — the shared
/// tail of every agent's restart() (HealthAgent included,
/// fleet/health_agent.cpp).
void note_agent_restart(
    StateDb& db, AgentId a,
    const std::vector<std::unique_ptr<FabricAgent>>& fabrics);

/// One fabric as the agents see it (owned by the ControlPlane).
struct FabricHost {
  std::string name;
  core::VapresSystem* sys = nullptr;
  sched::ApplicationScheduler* sched = nullptr;
};

// ---- FabricAgent -------------------------------------------------------

class FabricAgent {
 public:
  FabricAgent(int index, FabricHost host, StateDb& db,
              FleetCounters& counters);

  int index() const { return index_; }
  const std::string& name() const { return host_.name; }
  sched::ApplicationScheduler& sched() { return *host_.sched; }
  const sched::ApplicationScheduler& sched() const { return *host_.sched; }
  core::VapresSystem& sys() { return *host_.sys; }

  sim::Cycles cycle_count() const;

  /// Result of one delegated admission attempt.
  struct AdmitOutcome {
    int local = -1;
    bool running = false;
    sched::AdmissionVerdict verdict = sched::AdmissionVerdict::kPending;
    std::string reason;
  };

  /// Submits + runs admission for an open intent, journaling the
  /// kAdmitResult before returning (the router's execution arm).
  AdmitOutcome try_admit(std::int64_t seq, const sched::AppRequest& request);

  /// Submit + run admission outside an intent (migration replay /
  /// rollback); the caller journals the step that records the outcome.
  AdmitOutcome admit_raw(const sched::AppRequest& request);

  void stop_local(int local);
  void adopt_masters_from(const FabricAgent& src);

  /// Read-only scoring snapshot for the router. `slowest_cycle` is the
  /// fleet-wide minimum system-clock count (clock_lead base);
  /// tenant_running is derived from table app rows + live records.
  FabricSnapshot snapshot(const std::string& tenant,
                          const sched::AppRequest& request,
                          sim::Cycles slowest_cycle) const;

  /// Publishes a kFabricState row when occupancy changed since the last
  /// publication. Returns whether it journaled.
  bool publish();

  /// Journals the restart marker. A fresh FabricAgent has no private
  /// state to rebuild — its truth is the live scheduler — so recovery
  /// is reconcile() proving table rows and scheduler state agree.
  void restart();

  /// Table-vs-scheduler consistency sweep: every table app row hosted
  /// here resolves to a live record whose PRR slots it owns, every
  /// occupied slot belongs to a table-row app, and channel accounting
  /// matches the running population. Returns human-readable violations
  /// (empty = clean).
  std::vector<std::string> reconcile() const;

 private:
  int index_;
  FabricHost host_;
  StateDb& db_;
  FleetCounters& counters_;
};

// ---- QuotaAgent --------------------------------------------------------

class QuotaAgent {
 public:
  QuotaAgent(StateDb& db, const FleetSpec& spec,
             std::vector<std::unique_ptr<FabricAgent>>& fabrics,
             FleetCounters& counters);

  /// One step: decide an undecided open intent (observe_demand + admit,
  /// journal kQuotaDecision + the tenant's kTenantState), or perform
  /// the end-of-submission usage sync + hysteresis tick for a closed
  /// one. Returns whether it made progress.
  bool poll();

  /// Usage resync outside a submission (stop / migration / preemption):
  /// set_usage for every table tenant from live running rows, publish
  /// changed rows. No tick — mirrors the monolith's sync_usage().
  void sync_usage();

  QuotaGovernor& governor() { return *governor_; }
  const QuotaGovernor& governor() const { return *governor_; }

  /// Journals the restart marker and rebuilds the governor from table
  /// kTenantState rows — budgets, usage, and both hysteresis streaks
  /// resume mid-count instead of zeroing. A pending end-of-submission
  /// tick (kRouteResult newer than the last quota publication) is
  /// re-detected from the retained journal.
  void restart();

 private:
  int free_prrs() const;
  void publish_tenant(const std::string& name);
  /// Versions of the newest retained kRouteResult / quota-authored
  /// kTenantState (0 = none) — the pending-tick detector.
  void scan_retained(std::uint64_t& last_result,
                     std::uint64_t& last_publish) const;

  StateDb& db_;
  const FleetSpec& spec_;
  std::vector<std::unique_ptr<FabricAgent>>& fabrics_;
  FleetCounters& counters_;
  std::unique_ptr<QuotaGovernor> governor_;
};

// ---- RouterAgent -------------------------------------------------------

class RouterAgent {
 public:
  RouterAgent(StateDb& db, const FleetSpec& spec, const CostModel& model,
              std::vector<std::unique_ptr<FabricAgent>>& fabrics,
              FleetCounters& counters);

  /// One step of the open intent: close a quota-refused one, plan the
  /// try order for the current round, make one admission attempt, or —
  /// order exhausted, capacity-blocked, requester within budget —
  /// preempt the worst over-quota tenant's youngest app and open a
  /// retry round. Returns whether it made progress.
  bool poll();

  /// Last human-readable failure detail (scratch, not journaled; empty
  /// after a restart).
  const std::string& last_reason() const { return reason_; }

  /// Journals the restart marker. All routing progress (round, order,
  /// next attempt index, rr cursor) lives in the table, so the fresh
  /// agent resumes the open intent exactly where its predecessor died.
  void restart();

 private:
  sim::Cycles slowest_cycle() const;
  sim::Picoseconds now_ps() const;
  std::vector<int> plan_order(const std::string& tenant,
                              const sched::AppRequest& request);
  /// Worst-overshoot over-quota tenant's youngest running app, computed
  /// purely from table rows (+ live running checks). -1 = no victim.
  int pick_preemption_victim(const std::string& for_tenant) const;
  void close_intent(const IntentRow& row, bool admitted, int fabric,
                    sched::AdmissionVerdict verdict);

  StateDb& db_;
  const FleetSpec& spec_;
  const CostModel& model_;
  std::vector<std::unique_ptr<FabricAgent>>& fabrics_;
  FleetCounters& counters_;
  std::string reason_;
};

// ---- MigrationAgent ----------------------------------------------------

class MigrationAgent {
 public:
  MigrationAgent(StateDb& db,
                 std::vector<std::unique_ptr<FabricAgent>>& fabrics,
                 FleetCounters& counters);

  /// Advances the in-flight migration row by exactly one journaled
  /// step: validate -> adopt masters -> stop source -> replay admission
  /// on the destination -> finalize (or roll back onto the source).
  /// Returns whether it made progress.
  bool poll();

  /// Last skip/rollback detail (scratch, not journaled).
  const std::string& last_reason() const { return reason_; }

  /// Journals the restart marker and drops all scratch. The fresh agent
  /// re-derives the moving app's request from the source scheduler's
  /// record (live, or terminal after kSourceStopped — the genuine
  /// reconcile-against-live-scheduler path) and resumes the step
  /// machine from the journaled row.
  void restart();

 private:
  FabricAgent& fabric(int index);
  /// The moving app's request, from scratch or recovered from the
  /// source scheduler's (possibly terminal) record.
  const sched::AppRequest& request_of(const MigrationRow& row);

  StateDb& db_;
  std::vector<std::unique_ptr<FabricAgent>>& fabrics_;
  FleetCounters& counters_;
  std::optional<sched::AppRequest> request_;  ///< scratch for the row
  std::string reason_;
  /// Open kFleetMigrate span for the in-flight row (scratch: a restart
  /// drops it, leaving an unmatched begin in the ring — harmless).
  std::optional<obs::Span> span_;
};

}  // namespace vapres::fleet
