// Elastic per-tenant PRR quotas.
//
// The QuotaGovernor tracks, fleet-wide, how many PRRs each tenant's
// running apps occupy and maintains a per-tenant admission budget that
// adapts to observed demand with hysteresis: a streak of over-budget
// demand grows the budget in steps; a streak of low-usage ticks shrinks
// it back. Budgets are elastic rather than hard — an over-budget tenant
// is still admitted while the fleet has slack beyond a configured
// reserve, and is only preempted when another tenant is actually
// starved (the RouterAgent drives that part). All state transitions
// are deterministic functions of the observation sequence.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fleet/spec.hpp"

namespace vapres::fleet {

class QuotaGovernor {
 public:
  QuotaGovernor(const QuotaConfig& config, int fleet_prrs);

  /// Records that `tenant` just asked for `want_prrs` more PRRs. Feeds
  /// the grow side of the hysteresis: `grow_observations` consecutive
  /// calls that would overshoot the budget trigger one grow step.
  void observe_demand(const std::string& tenant, int want_prrs);

  /// Replaces the tenant's tracked usage with the controller's current
  /// fleet-wide count (called after every admission/stop/migration).
  void set_usage(const std::string& tenant, int prrs);

  /// One hysteresis tick for the shrink side: `shrink_observations`
  /// consecutive ticks with usage below `shrink_below` x budget shrink
  /// the budget one step. Call once per routing round, not per fabric.
  void tick();

  /// Admission check: within budget always passes; over budget passes
  /// only while the fleet keeps `elastic_slack_prrs` free after the
  /// grant.
  bool admit(const std::string& tenant, int want_prrs,
             int fleet_free_prrs) const;

  int budget(const std::string& tenant) const;
  int usage(const std::string& tenant) const;
  /// Current grow-side streak (consecutive over-budget observations).
  int pressure(const std::string& tenant) const;
  /// Current shrink-side streak (consecutive low-usage ticks).
  int idle(const std::string& tenant) const;
  bool over_quota(const std::string& tenant) const;
  /// Every tenant the governor tracks, in name order.
  std::vector<std::string> tenant_names() const;

  /// Reinstates one tenant's full hysteresis state — the warm-restart
  /// path: a restarted QuotaAgent rebuilds its governor from journaled
  /// kTenantState rows so streaks resume mid-count instead of zeroing.
  void restore(const std::string& tenant, int budget, int usage,
               int pressure, int idle);
  /// Tenants currently using more than their budget, sorted by name so
  /// preemption victim selection is deterministic.
  std::vector<std::string> over_quota_tenants() const;

  std::uint64_t grows() const { return grows_; }
  std::uint64_t shrinks() const { return shrinks_; }

 private:
  struct Tenant {
    int budget = 0;
    int usage = 0;
    int pressure = 0;  ///< consecutive over-budget demand observations
    int idle = 0;      ///< consecutive low-usage ticks
  };

  Tenant& tenant(const std::string& name);
  int initial_budget() const;
  int clamp_budget(int b) const;

  QuotaConfig cfg_;
  int fleet_prrs_ = 0;
  std::map<std::string, Tenant> tenants_;  // ordered: deterministic walks
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
};

}  // namespace vapres::fleet
