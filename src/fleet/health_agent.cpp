#include "fleet/health_agent.hpp"

#include <algorithm>
#include <climits>

#include "obs/bus.hpp"
#include "obs/metrics.hpp"
#include "sim/check.hpp"

namespace vapres::fleet {

namespace {

obs::Counter& ctr(const char* name) {
  return obs::Registry::instance().counter(name);
}

/// args[0] layout of a kHealthRuleState entry (statedb.hpp).
std::int64_t pack_rule_state(const obs::health::RuleOutcome& out,
                             int fabric) {
  const auto clamp20 = [](int v) {
    return static_cast<std::uint64_t>(std::clamp(v, 0, 0xfffff));
  };
  std::uint64_t packed = clamp20(out.state.bad_streak) |
                         (clamp20(out.state.good_streak) << 20);
  if (out.state.breached) packed |= 1ull << 40;
  if (out.tripped) packed |= 1ull << 41;
  if (out.cleared) packed |= 1ull << 42;
  if (out.state.primed) packed |= 1ull << 43;
  packed |= static_cast<std::uint64_t>(fabric + 1) << 48;
  return static_cast<std::int64_t>(packed);
}

}  // namespace

HealthAgent::HealthAgent(StateDb& db, const FleetSpec& spec,
                         std::vector<std::unique_ptr<FabricAgent>>& fabrics,
                         FleetCounters& counters)
    : db_(db),
      spec_(spec),
      fabrics_(fabrics),
      counters_(counters),
      engine_(spec.health.rules),
      sampler_(spec.health.series_capacity) {
  for (const obs::health::HealthRuleSpec& r : spec.health.rules) {
    VAPRES_REQUIRE(r.fabric >= -1 && r.fabric < db_.num_fabrics(),
                   "health rule indicts an unknown fabric");
    VAPRES_REQUIRE(!r.name.empty(), "health rules must be named");
  }
}

sim::Picoseconds HealthAgent::now_ps() const {
  sim::Picoseconds t = 0;
  for (const auto& f : fabrics_) t = std::max(t, f->sys().sim().now());
  return t;
}

int HealthAgent::pending_rule() const {
  const std::uint64_t tick = db_.health_tick_version();
  if (tick == 0) return -1;  // no tick yet: nothing to evaluate
  const auto& rows = db_.health_rules();
  for (int id = 0; id < engine_.num_rules(); ++id) {
    const std::uint64_t evaluated =
        id < static_cast<int>(rows.size())
            ? rows[static_cast<std::size_t>(id)].last_eval_version
            : 0;
    if (evaluated < tick) return id;
  }
  return -1;
}

bool HealthAgent::evaluate_pending(int rule_id) {
  const obs::health::HealthRuleSpec& rule = engine_.rule(rule_id);
  const auto& rows = db_.health_rules();

  obs::health::RuleState state;
  bool named = false;
  if (rule_id < static_cast<int>(rows.size())) {
    const HealthRuleRow& row = rows[static_cast<std::size_t>(rule_id)];
    state.last_raw = row.last_raw;
    state.primed = row.primed;
    state.bad_streak = row.bad_streak;
    state.good_streak = row.good_streak;
    state.breached = row.breached;
    state.breaches = row.breaches;
    named = !row.name.empty();
  }

  const std::int64_t raw = obs::health::RuleEngine::read_raw(rule);
  const obs::health::RuleOutcome out =
      obs::health::RuleEngine::evaluate(rule, raw, state);

  // The whole evaluation — streak update AND breach transition — is one
  // journal entry, so no kill point can split them.
  db_.append(AgentId::kHealth, Op::kHealthRuleState, rule_id,
             {pack_rule_state(out, rule.fabric), out.state.last_raw,
              static_cast<std::int64_t>(db_.health_tick_version()),
              static_cast<std::int64_t>(out.state.breaches)},
             named ? std::string{} : rule.name);

  obs::EventBus& bus = obs::EventBus::instance();
  if (out.tripped) {
    ++counters_.breaches_tripped;
    ctr("fleet.health.breaches").add();
    bus.instant(obs::Subsystem::kFleet, obs::ev::kHealthBreach,
                bus.track("fleet"), now_ps(),
                static_cast<std::uint64_t>(rule_id),
                static_cast<std::uint64_t>(out.value));
  }
  if (out.cleared) {
    ++counters_.breaches_cleared;
    ctr("fleet.health.clears").add();
    bus.instant(obs::Subsystem::kFleet, obs::ev::kHealthClear,
                bus.track("fleet"), now_ps(),
                static_cast<std::uint64_t>(rule_id));
  }
  return true;
}

bool HealthAgent::step_isolation() {
  obs::EventBus& bus = obs::EventBus::instance();
  for (int f = 0; f < db_.num_fabrics(); ++f) {
    const int breaches = db_.active_breaches(f);
    const bool isolated = db_.isolated(f);
    if (breaches > 0 && !isolated && db_.available_fabrics() > 1) {
      // Never isolate the last serving fabric: a fully-fenced fleet
      // rejects everything, which is worse than any degradation.
      db_.append(AgentId::kHealth, Op::kIsolateFabric, f, {1, breaches});
      ++counters_.isolations;
      ctr("fleet.health.isolations").add();
      bus.instant(obs::Subsystem::kFleet, obs::ev::kHealthIsolate,
                  bus.track("fleet"), now_ps(),
                  static_cast<std::uint64_t>(f), 1);
      return true;
    }
    if (isolated && breaches == 0) {
      // Un-isolate once every indicting rule cleared (the rules' own
      // clear_observations streaks are the healthy-streak hysteresis).
      db_.append(AgentId::kHealth, Op::kIsolateFabric, f, {0, 0});
      ++counters_.unisolations;
      ctr("fleet.health.unisolations").add();
      bus.instant(obs::Subsystem::kFleet, obs::ev::kHealthIsolate,
                  bus.track("fleet"), now_ps(),
                  static_cast<std::uint64_t>(f), 0);
      return true;
    }
  }
  return false;
}

bool HealthAgent::step_drain() {
  // Drains ride the existing migration step machine, one in flight at a
  // time, and never preempt an open submission intent.
  if (db_.open_intent() != nullptr || db_.inflight_migration() != nullptr) {
    return false;
  }
  for (int f = 0; f < db_.num_fabrics(); ++f) {
    if (!db_.isolated(f)) continue;
    // At most one drain intent per fabric per tick: the journaled
    // last_drain_version gates retries, so a restarted agent never
    // re-issues an intent its predecessor already opened.
    if (db_.fabric_health(f).last_drain_version >=
        db_.health_tick_version()) {
      continue;
    }
    int app_id = -1;
    for (const auto& [id, row] : db_.apps()) {
      if (row.fabric != f) continue;
      if (!fabrics_[static_cast<std::size_t>(f)]
               ->sched()
               .app(row.local)
               .running()) {
        continue;
      }
      app_id = id;
      break;  // lowest fleet id first: deterministic drain order
    }
    if (app_id < 0) continue;
    int dst = -1;
    int best_util = INT_MAX;
    for (int j = 0; j < db_.num_fabrics(); ++j) {
      if (j == f || db_.isolated(j)) continue;
      const int util = db_.fabric(j).util_permille;
      if (util < best_util) {
        best_util = util;
        dst = j;
      }
    }
    if (dst < 0) return false;  // nowhere to drain to
    db_.append(AgentId::kHealth, Op::kMigrateIntent, app_id,
               {dst, 1 /* probe_first: never lose the app */});
    ++counters_.drains_started;
    ctr("fleet.health.drains").add();
    return true;
  }
  return false;
}

bool HealthAgent::poll() {
  const int pending = pending_rule();
  if (pending >= 0) return evaluate_pending(pending);
  if (!spec_.health.remediate) return false;
  if (step_isolation()) return true;
  return step_drain();
}

void HealthAgent::restart() {
  // Streaks, isolation, and in-flight drains are all table rows; the
  // sampler is observational scratch whose loss changes no decision.
  note_agent_restart(db_, AgentId::kHealth, fabrics_);
}

std::string HealthAgent::rules_to_string() const {
  std::string out = "health rules (" +
                    std::to_string(engine_.num_rules()) + "):\n";
  const auto& rows = db_.health_rules();
  for (int id = 0; id < engine_.num_rules(); ++id) {
    const obs::health::HealthRuleSpec& r = engine_.rule(id);
    out += "  [" + std::to_string(id) + "] " + r.name + " (" +
           obs::health::source_name(r.source) + " " + r.metric +
           (r.breach_above ? " > " : " < ") + std::to_string(r.threshold) +
           ", trip " + std::to_string(r.breach_observations) + ", clear " +
           std::to_string(r.clear_observations) + ")";
    if (id < static_cast<int>(rows.size())) {
      const HealthRuleRow& row = rows[static_cast<std::size_t>(id)];
      out += row.breached ? " BREACHED" : " ok";
      out += " streaks +" + std::to_string(row.bad_streak) + "/-" +
             std::to_string(row.good_streak) + " trips " +
             std::to_string(row.breaches);
    }
    out += "\n";
  }
  return out;
}

}  // namespace vapres::fleet
