// Pluggable per-submission fabric scoring for the fleet router.
//
// For each submission the router takes one FabricSnapshot per fabric —
// a probe_admit dry run plus cheap load signals — and asks the cost
// model for a score. Lower is better; +infinity removes the fabric from
// the candidate list entirely (capability mismatches: a chain that fits
// no PRR of the fabric, a stream rate its clock ladder cannot sustain).
// Scores must be pure functions of the snapshot so routing stays
// deterministic: equal workloads produce equal decisions, bit for bit.
#pragma once

#include <limits>

#include "fleet/spec.hpp"
#include "sched/scheduler.hpp"
#include "sim/time.hpp"

namespace vapres::fleet {

/// Everything the cost model may look at for one (fabric, submission)
/// pair. Assembled by the router from const scheduler state.
struct FabricSnapshot {
  int fabric = 0;
  sched::ApplicationScheduler::AdmitProbe probe;
  double utilization = 0.0;   ///< occupied slices / total PRR slices
  /// Allocated IOM channel-pair fraction. Channel pairs cap concurrent
  /// apps per fabric and are usually the binding fleet resource, so the
  /// occupancy term scores whichever of slice and channel pressure is
  /// higher.
  double channel_utilization = 0.0;
  int free_prrs = 0;
  int total_prrs = 0;
  int queued = 0;             ///< submissions waiting in the admission queue
  /// How far this fabric's system clock runs ahead of the least-loaded
  /// fabric's — admission and launch work push a busy fabric's clock
  /// forward. Available for custom cost models; WeightedCostModel does
  /// not score it (penalizing the busy fabric fights consolidation).
  sim::Cycles clock_lead = 0;
  int tenant_running = 0;     ///< submitting tenant's running apps here
  /// Fraction of the planned sites' slices the app would leave idle
  /// (0 = perfect fit). Steers small apps away from big sites so the
  /// fleet keeps large footprint classes placeable — cross-fabric
  /// best-fit.
  double fit_waste = 0.0;
};

class CostModel {
 public:
  virtual ~CostModel() = default;
  /// Lower is better; +infinity excludes the fabric.
  virtual double score(const FabricSnapshot& snap) const = 0;

  static constexpr double kExcluded =
      std::numeric_limits<double>::infinity();
};

/// The default model: a weighted sum of free capacity, fragmentation
/// (defrag relocations the probe plan would spend, plus a flat penalty
/// when the fabric is capacity-blocked right now), predicted queue
/// delay, and tenant affinity (prefer fabrics already hosting the
/// tenant — their stores hold the tenant's masters warm).
class WeightedCostModel : public CostModel {
 public:
  WeightedCostModel() = default;
  explicit WeightedCostModel(CostWeights weights) : w_(weights) {}

  double score(const FabricSnapshot& snap) const override;

  const CostWeights& weights() const { return w_; }

 private:
  CostWeights w_;
};

/// True for verdicts no amount of waiting or defragmentation fixes on
/// this fabric (the router excludes rather than deprioritizes these).
bool capability_mismatch(sched::AdmissionVerdict v);

/// True for verdicts that mean "full right now" — worth a fallback try
/// (the scheduler may still preempt its way in) but scored behind every
/// admissible fabric.
bool capacity_blocked(sched::AdmissionVerdict v);

}  // namespace vapres::fleet
