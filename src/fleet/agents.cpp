#include "fleet/agents.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/bus.hpp"
#include "obs/metrics.hpp"
#include "sim/check.hpp"

namespace vapres::fleet {

namespace {

obs::Counter& ctr(const char* name) {
  return obs::Registry::instance().counter(name);
}

sim::Picoseconds fleet_now_ps(
    const std::vector<std::unique_ptr<FabricAgent>>& fabrics) {
  sim::Picoseconds t = 0;
  for (const auto& f : fabrics) t = std::max(t, f->sys().sim().now());
  return t;
}

}  // namespace

void note_agent_restart(
    StateDb& db, AgentId a,
    const std::vector<std::unique_ptr<FabricAgent>>& fabrics) {
  db.append(a, Op::kAgentRestart, static_cast<std::int64_t>(a));
  ctr("fleet.agent.restarts").add();
  obs::EventBus& bus = obs::EventBus::instance();
  bus.instant(obs::Subsystem::kFleet, obs::ev::kAgentRestart,
              bus.track("fleet"), fleet_now_ps(fabrics),
              static_cast<std::uint64_t>(a), db.version());
}

// ---- FabricAgent -------------------------------------------------------

FabricAgent::FabricAgent(int index, FabricHost host, StateDb& db,
                         FleetCounters& counters)
    : index_(index), host_(host), db_(db), counters_(counters) {}

sim::Cycles FabricAgent::cycle_count() const {
  return host_.sys->system_clock().cycle_count();
}

FabricAgent::AdmitOutcome FabricAgent::admit_raw(
    const sched::AppRequest& request) {
  AdmitOutcome out;
  out.local = host_.sched->submit(request);
  host_.sched->run_admission();
  const sched::AppRecord& rec = host_.sched->app(out.local);
  out.running = rec.running();
  out.verdict = rec.verdict;
  out.reason = rec.reject_reason;
  return out;
}

FabricAgent::AdmitOutcome FabricAgent::try_admit(
    std::int64_t seq, const sched::AppRequest& request) {
  const AdmitOutcome out = admit_raw(request);
  db_.append(fabric_agent_id(index_), Op::kAdmitResult, seq,
             {index_, out.local, static_cast<std::int64_t>(out.verdict),
              out.running ? 1 : 0});
  return out;
}

void FabricAgent::stop_local(int local) { host_.sched->stop(local); }

void FabricAgent::adopt_masters_from(const FabricAgent& src) {
  host_.sched->adopt_masters(src.sched().store());
}

FabricSnapshot FabricAgent::snapshot(const std::string& tenant,
                                     const sched::AppRequest& request,
                                     sim::Cycles slowest_cycle) const {
  const sched::ApplicationScheduler& sched = *host_.sched;
  FabricSnapshot snap;
  snap.fabric = index_;
  snap.probe = sched.probe_admit(request);
  snap.utilization = sched.fabric_utilization();
  const int total_pairs = std::min(sched.total_source_channels(),
                                   sched.total_sink_channels());
  if (total_pairs > 0) {
    snap.channel_utilization =
        1.0 - static_cast<double>(sched.free_channel_pairs()) /
                  static_cast<double>(total_pairs);
  }
  if (snap.probe.admissible &&
      snap.probe.prrs.size() == request.modules.size()) {
    int site_slices = 0;
    int need_slices = 0;
    const auto& rects = host_.sys->params().prr_rects;
    for (std::size_t i = 0; i < snap.probe.prrs.size(); ++i) {
      site_slices += rects[static_cast<std::size_t>(snap.probe.prrs[i])]
                         .slices();
      need_slices +=
          host_.sys->library().info(request.modules[i]).resources.slices;
    }
    if (site_slices > 0) {
      snap.fit_waste =
          static_cast<double>(site_slices - need_slices) / site_slices;
    }
  }
  snap.free_prrs = sched.fabric().free_count();
  snap.total_prrs = sched.fabric().num_slots();
  snap.queued = sched.queued_count();
  snap.clock_lead = cycle_count() - slowest_cycle;
  for (const auto& [id, row] : db_.apps()) {
    if (row.fabric != index_) continue;
    if (db_.tenant(row.tenant).name != tenant) continue;
    if (sched.app(row.local).running()) ++snap.tenant_running;
  }
  return snap;
}

bool FabricAgent::publish() {
  const sched::ApplicationScheduler& sched = *host_.sched;
  const int free = sched.fabric().free_count();
  const int queued = sched.queued_count();
  const int running = static_cast<int>(sched.running_apps().size());
  const int utilp = static_cast<int>(
      std::lround(sched.fabric_utilization() * 1000.0));
  const FabricRow& cur = db_.fabric(index_);
  if (cur.free_prrs == free && cur.queued == queued &&
      cur.running == running && cur.util_permille == utilp) {
    return false;
  }
  db_.append(fabric_agent_id(index_), Op::kFabricState, index_,
             {free, queued, running, utilp});
  return true;
}

void FabricAgent::restart() {
  // A FabricAgent's only truth is the live scheduler; nothing private
  // to rebuild. The marker feeds the restart ledger and the churn gate.
  db_.append(fabric_agent_id(index_), Op::kAgentRestart,
             static_cast<std::int64_t>(fabric_agent_id(index_)));
  ctr("fleet.agent.restarts").add();
  obs::EventBus& bus = obs::EventBus::instance();
  bus.instant(obs::Subsystem::kFleet, obs::ev::kAgentRestart,
              bus.track("fleet"), host_.sys->sim().now(),
              static_cast<std::uint64_t>(fabric_agent_id(index_)),
              db_.version());
}

std::vector<std::string> FabricAgent::reconcile() const {
  std::vector<std::string> violations;
  const sched::ApplicationScheduler& sched = *host_.sched;
  const std::vector<int> owners = sched.prr_owners();
  std::set<int> table_running;  // local app ids the table says run here
  int checks = 0;

  for (const auto& [fleet_id, row] : db_.apps()) {
    if (row.fabric != index_) continue;
    ++checks;
    if (row.local < sched.first_live_id() || row.local >= sched.num_apps()) {
      violations.push_back("fleet id " + std::to_string(fleet_id) +
                           " names unknown local app " +
                           std::to_string(row.local));
      continue;
    }
    const sched::AppRecord& rec = sched.app(row.local);
    if (!rec.running()) continue;  // terminal rows await retirement
    table_running.insert(row.local);
    for (const int prr : rec.prrs) {
      ++checks;
      if (prr < 0 || prr >= static_cast<int>(owners.size()) ||
          owners[static_cast<std::size_t>(prr)] != row.local) {
        violations.push_back("fleet id " + std::to_string(fleet_id) +
                             " claims PRR " + std::to_string(prr) +
                             " the fabric does not assign to it");
      }
    }
  }

  for (std::size_t prr = 0; prr < owners.size(); ++prr) {
    ++checks;
    const int owner = owners[prr];
    if (owner >= 0 && table_running.count(owner) == 0) {
      violations.push_back("PRR " + std::to_string(prr) +
                           " occupied by local app " + std::to_string(owner) +
                           " with no table row");
    }
  }

  // Channel accounting: every running app pins exactly one source and
  // one sink channel.
  const int running = static_cast<int>(sched.running_apps().size());
  ++checks;
  if (sched.busy_source_channels() != running ||
      sched.busy_sink_channels() != running) {
    violations.push_back(
        "channel accounting drift: " +
        std::to_string(sched.busy_source_channels()) + " source / " +
        std::to_string(sched.busy_sink_channels()) + " sink busy for " +
        std::to_string(running) + " running apps");
  }

  ctr("fleet.reconcile.checks").add(static_cast<std::uint64_t>(checks));
  if (!violations.empty()) {
    ctr("fleet.reconcile.violations")
        .add(static_cast<std::uint64_t>(violations.size()));
  }
  obs::EventBus& bus = obs::EventBus::instance();
  bus.instant(obs::Subsystem::kFleet, obs::ev::kReconcile,
              bus.track("fleet"), host_.sys->sim().now(),
              static_cast<std::uint64_t>(checks),
              static_cast<std::uint64_t>(violations.size()));
  return violations;
}

// ---- QuotaAgent --------------------------------------------------------

QuotaAgent::QuotaAgent(StateDb& db, const FleetSpec& spec,
                       std::vector<std::unique_ptr<FabricAgent>>& fabrics,
                       FleetCounters& counters)
    : db_(db), spec_(spec), fabrics_(fabrics), counters_(counters),
      governor_(std::make_unique<QuotaGovernor>(spec.quota,
                                                spec.total_prrs())) {}

int QuotaAgent::free_prrs() const {
  int n = 0;
  for (const auto& f : fabrics_) n += f->sched().fabric().free_count();
  return n;
}

void QuotaAgent::publish_tenant(const std::string& name) {
  int id = db_.tenant_id(name);
  if (id < 0) id = db_.num_tenants();  // first publication names the row
  db_.append(AgentId::kQuota, Op::kTenantState, id,
             {governor_->budget(name), governor_->usage(name),
              governor_->pressure(name), governor_->idle(name)},
             name);
}

void QuotaAgent::scan_retained(std::uint64_t& last_result,
                               std::uint64_t& last_publish) const {
  last_result = 0;
  last_publish = 0;
  for (auto it = db_.journal().rbegin(); it != db_.journal().rend(); ++it) {
    if (last_result == 0 && it->op == Op::kRouteResult) {
      last_result = it->version;
    }
    if (last_publish == 0 && it->op == Op::kTenantState &&
        it->agent == AgentId::kQuota) {
      last_publish = it->version;
    }
    if (last_result != 0 && last_publish != 0) break;
  }
}

void QuotaAgent::sync_usage() {
  // Fleet-wide per-tenant PRR usage from table rows + live records; the
  // decomposed sync_usage() of the monolith (zeroing included — every
  // table tenant gets set, running or not).
  std::vector<int> use(static_cast<std::size_t>(db_.num_tenants()), 0);
  for (const auto& [id, row] : db_.apps()) {
    const sched::AppRecord& rec =
        fabrics_[static_cast<std::size_t>(row.fabric)]->sched().app(row.local);
    if (rec.running()) {
      use[static_cast<std::size_t>(row.tenant)] +=
          static_cast<int>(rec.prrs.size());
    }
  }
  for (int t = 0; t < db_.num_tenants(); ++t) {
    const std::string& name = db_.tenant(t).name;
    governor_->set_usage(name, use[static_cast<std::size_t>(t)]);
    const TenantRow& row = db_.tenant(t);
    if (row.usage != governor_->usage(name) ||
        row.budget != governor_->budget(name) ||
        row.pressure != governor_->pressure(name) ||
        row.idle != governor_->idle(name)) {
      publish_tenant(name);
    }
  }
}

bool QuotaAgent::poll() {
  const IntentRow* in = db_.open_intent();
  if (in && !in->quota_decided) {
    const std::int64_t seq = in->seq;
    const std::string name = db_.tenant(in->tenant).name;
    const sched::AppRequest request = parse_request(in->request_blob);
    const int want = static_cast<int>(request.modules.size());
    governor_->observe_demand(name, want);
    const bool allowed = governor_->admit(name, want, free_prrs());
    if (!allowed) {
      ++counters_.quota_rejected;
      ctr("fleet.route.quota_rejected").add();
      obs::EventBus& bus = obs::EventBus::instance();
      bus.instant(obs::Subsystem::kFleet, obs::ev::kQuotaReject,
                  bus.track("fleet"), fleet_now_ps(fabrics_),
                  static_cast<std::uint64_t>(want),
                  static_cast<std::uint64_t>(governor_->budget(name)));
    }
    db_.append(AgentId::kQuota, Op::kQuotaDecision, seq,
               {allowed ? 1 : 0, governor_->budget(name), want, 0});
    publish_tenant(name);
    return true;
  }
  if (!in) {
    // End-of-submission hysteresis: a kRouteResult newer than our last
    // kTenantState publication means a submission closed that we have
    // not synced + ticked for yet. The publication below flips the
    // detector, so the tick happens exactly once per closed submission
    // — and a successor agent re-detects a pending one from the
    // retained journal.
    std::uint64_t last_result = 0;
    std::uint64_t last_publish = 0;
    scan_retained(last_result, last_publish);
    if (last_result > last_publish) {
      sync_usage();
      governor_->tick();
      for (int t = 0; t < db_.num_tenants(); ++t) {
        publish_tenant(db_.tenant(t).name);
      }
      return true;
    }
  }
  return false;
}

void QuotaAgent::restart() {
  note_agent_restart(db_, AgentId::kQuota, fabrics_);
  governor_ = std::make_unique<QuotaGovernor>(spec_.quota,
                                              spec_.total_prrs());
  for (const TenantRow& t : db_.tenants()) {
    governor_->restore(t.name, t.budget, t.usage, t.pressure, t.idle);
  }
}

// ---- RouterAgent -------------------------------------------------------

RouterAgent::RouterAgent(StateDb& db, const FleetSpec& spec,
                         const CostModel& model,
                         std::vector<std::unique_ptr<FabricAgent>>& fabrics,
                         FleetCounters& counters)
    : db_(db), spec_(spec), model_(model), fabrics_(fabrics),
      counters_(counters) {}

sim::Cycles RouterAgent::slowest_cycle() const {
  sim::Cycles c = fabrics_.front()->cycle_count();
  for (const auto& f : fabrics_) c = std::min(c, f->cycle_count());
  return c;
}

sim::Picoseconds RouterAgent::now_ps() const {
  return fleet_now_ps(fabrics_);
}

std::vector<int> RouterAgent::plan_order(const std::string& tenant,
                                         const sched::AppRequest& request) {
  const int n = static_cast<int>(fabrics_.size());
  std::vector<int> order;
  if (spec_.policy == RoutePolicy::kRoundRobin) {
    // Blind rotation: no probes, no exclusion (isolation excepted) — the
    // baseline the cost model is benchmarked against. The cursor lives
    // in the table so a restarted router keeps rotating instead of
    // restarting at 0.
    const int cursor = db_.rr_cursor();
    order.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int f = (cursor + i) % n;
      if (!db_.isolated(f)) order.push_back(f);
    }
    db_.append(AgentId::kRouter, Op::kRouterCursor, 0, {(cursor + 1) % n});
    return order;
  }
  const sim::Cycles slowest = slowest_cycle();
  std::vector<std::pair<double, int>> scored;
  for (int i = 0; i < n; ++i) {
    // A health-isolated fabric scores +inf, exactly like a capability
    // mismatch: it takes no new traffic until un-isolated.
    if (db_.isolated(i)) continue;
    const double s = model_.score(
        fabrics_[static_cast<std::size_t>(i)]->snapshot(tenant, request,
                                                        slowest));
    if (s != CostModel::kExcluded) scored.emplace_back(s, i);
  }
  // Ties break on fabric index: identical fleets route identically.
  std::stable_sort(scored.begin(), scored.end());
  order.reserve(scored.size());
  for (const auto& [s, i] : scored) order.push_back(i);
  return order;
}

int RouterAgent::pick_preemption_victim(const std::string& for_tenant) const {
  // Worst offender among over-quota tenants from table rows (ties
  // resolve to name order), then that tenant's youngest running app
  // (largest fleet id) — bit-identical to the monolith's governor walk.
  std::vector<std::pair<std::string, int>> over;  // (name, overshoot)
  for (const TenantRow& t : db_.tenants()) {
    if (t.name == for_tenant) continue;
    if (t.usage > t.budget) over.emplace_back(t.name, t.usage - t.budget);
  }
  std::sort(over.begin(), over.end());
  std::string victim_tenant;
  int worst_overshoot = 0;
  for (const auto& [name, overshoot] : over) {
    if (overshoot > worst_overshoot) {
      worst_overshoot = overshoot;
      victim_tenant = name;
    }
  }
  if (victim_tenant.empty()) return -1;
  const int victim_tid = db_.tenant_id(victim_tenant);
  int victim = -1;
  for (const auto& [id, row] : db_.apps()) {
    if (row.tenant != victim_tid) continue;
    const auto& sched =
        fabrics_[static_cast<std::size_t>(row.fabric)]->sched();
    if (sched.app(row.local).running()) victim = id;
  }
  return victim;
}

void RouterAgent::close_intent(const IntentRow& row, bool admitted,
                               int fabric, sched::AdmissionVerdict verdict) {
  const std::int64_t flags = (row.quota_allowed ? 0 : 1) |
                             (row.preempted_for ? 2 : 0);
  db_.append(AgentId::kRouter, Op::kRouteResult, row.seq,
             {admitted ? 1 : 0, fabric, static_cast<std::int64_t>(verdict),
              flags});
}

bool RouterAgent::poll() {
  const IntentRow* in = db_.open_intent();
  if (!in || !in->quota_decided) return false;
  const IntentRow row = *in;  // appends invalidate the pointer
  const std::string tenant = db_.tenant(row.tenant).name;

  if (!row.quota_allowed) {
    reason_ = "tenant over quota and fleet slack exhausted";
    close_intent(row, false, -1, sched::AdmissionVerdict::kPending);
    return true;
  }
  const sched::AppRequest request = parse_request(row.request_blob);

  if (!row.planned) {
    const std::vector<int> order = plan_order(tenant, request);
    std::string note;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i > 0) note.push_back(',');
      note += std::to_string(order[i]);
    }
    db_.append(AgentId::kRouter, Op::kRouteOrder, row.seq,
               {row.round, 0, 0, 0}, note);
    return true;
  }

  if (row.next_try < static_cast<int>(row.order.size())) {
    const int fi = row.order[static_cast<std::size_t>(row.next_try)];
    FabricAgent& f = *fabrics_[static_cast<std::size_t>(fi)];
    const FabricAgent::AdmitOutcome out = f.try_admit(row.seq, request);
    reason_ = out.reason;
    if (out.running) {
      const int fleet_id = db_.next_fleet_id();
      db_.append(AgentId::kRouter, Op::kAppLocation, fleet_id,
                 {fi, out.local, row.tenant, 0});
      ++counters_.admitted;
      ctr("fleet.route.admitted").add();
      close_intent(row, true, fi, out.verdict);
    } else if (row.next_try + 1 < static_cast<int>(row.order.size())) {
      ++counters_.fallbacks;
      ctr("fleet.route.fallbacks").add();
      obs::EventBus& bus = obs::EventBus::instance();
      bus.instant(obs::Subsystem::kFleet, obs::ev::kFallback,
                  bus.track("fleet"), now_ps(),
                  static_cast<std::uint64_t>(fi),
                  static_cast<std::uint64_t>(out.verdict));
    }
    return true;
  }

  // Order exhausted (or planned empty). The blocking verdict: the last
  // attempt's, or — when every fabric was excluded — fabric 0's probe
  // verdict, so the caller sees the capability mismatch.
  sched::AdmissionVerdict verdict =
      static_cast<sched::AdmissionVerdict>(row.last_verdict);
  if (row.order.empty() && row.attempts == 0) {
    const FabricSnapshot snap =
        fabrics_.front()->snapshot(tenant, request, slowest_cycle());
    verdict = snap.probe.verdict;
    reason_ = snap.probe.reason.empty() ? "no eligible fabric"
                                        : snap.probe.reason;
  }

  // Starvation relief: the tenant is within budget but every fabric is
  // capacity-blocked — evict the youngest app of the worst over-quota
  // tenant and open a retry round.
  const TenantRow& trow = db_.tenant(row.tenant);
  const bool requester_over_quota = trow.usage > trow.budget;
  if (row.round == 0 && capacity_blocked(verdict) && !requester_over_quota) {
    const int victim = pick_preemption_victim(tenant);
    if (victim >= 0) {
      const AppRow* loc = db_.app(victim);
      fabrics_[static_cast<std::size_t>(loc->fabric)]->stop_local(loc->local);
      ++counters_.quota_preemptions;
      ctr("fleet.quota.preemptions").add();
      obs::EventBus& bus = obs::EventBus::instance();
      bus.instant(obs::Subsystem::kFleet, obs::ev::kQuotaPreempt,
                  bus.track("fleet"), now_ps(),
                  static_cast<std::uint64_t>(victim));
      db_.append(AgentId::kRouter, Op::kPreemption, victim, {}, tenant);
      return true;
    }
  }

  ++counters_.rejected;
  ctr("fleet.route.rejected").add();
  close_intent(row, false, -1, verdict);
  return true;
}

void RouterAgent::restart() {
  note_agent_restart(db_, AgentId::kRouter, fabrics_);
  reason_.clear();
  // Nothing else: round, try order, attempt index, and the rr cursor
  // all live in the table, so poll() resumes the open intent exactly
  // where the predecessor died.
}

// ---- MigrationAgent ----------------------------------------------------

MigrationAgent::MigrationAgent(
    StateDb& db, std::vector<std::unique_ptr<FabricAgent>>& fabrics,
    FleetCounters& counters)
    : db_(db), fabrics_(fabrics), counters_(counters) {}

FabricAgent& MigrationAgent::fabric(int index) {
  VAPRES_REQUIRE(index >= 0 && index < static_cast<int>(fabrics_.size()),
                 "migration fabric out of range");
  return *fabrics_[static_cast<std::size_t>(index)];
}

const sched::AppRequest& MigrationAgent::request_of(const MigrationRow& row) {
  if (!request_) {
    // Restart recovery: the request survives in the source scheduler's
    // record — live before kSourceStopped, terminal after (terminal
    // records are never retired while a migration row is open).
    request_ = fabric(row.src).sched().app(row.src_local).request;
  }
  return *request_;
}

bool MigrationAgent::poll() {
  const MigrationRow* m = db_.inflight_migration();
  if (!m) return false;
  const MigrationRow row = *m;  // appends invalidate the pointer

  auto step = [&](MigStep s, std::int64_t aux0 = 0, std::int64_t aux1 = 0) {
    db_.append(AgentId::kMigration, Op::kMigrateStep, row.fleet_id,
               {static_cast<std::int64_t>(s), aux0, aux1, 0});
  };
  auto skip = [&](const std::string& why) {
    reason_ = why;
    ++counters_.migrations_skipped;
    ctr("fleet.migrate.skipped").add();
    step(MigStep::kSkipped);
    request_.reset();
    return true;
  };

  switch (row.step) {
    case MigStep::kNone: {
      const AppRow* app = db_.app(row.fleet_id);
      if (!app) return skip("unknown fleet id");
      if (app->fabric == row.dst) return skip("already on destination");
      const sched::AppRecord& rec =
          fabric(app->fabric).sched().app(app->local);
      if (!rec.running()) return skip("app not running");
      request_ = rec.request;
      if (row.probe_first) {
        const auto probe = fabric(row.dst).sched().probe_admit(*request_);
        if (!probe.admissible) {
          return skip("destination probe: " + probe.reason);
        }
      }
      span_.emplace(obs::Span::begin(
          obs::Subsystem::kFleet, obs::ev::kFleetMigrate,
          obs::EventBus::instance().track("fleet"), fleet_now_ps(fabrics_),
          static_cast<std::uint64_t>(row.fleet_id)));
      step(MigStep::kPlanned, app->fabric, app->local);
      return true;
    }
    case MigStep::kPlanned:
      // Seed the destination store first: the replayed admission then
      // materializes the moved modules from relocated masters instead
      // of paying a cold regenerate on arrival. adopt_masters copies
      // only missing masters, so redoing this step after a restart is
      // harmless.
      fabric(row.dst).adopt_masters_from(fabric(row.src));
      step(MigStep::kMastersAdopted);
      return true;
    case MigStep::kMastersAdopted:
      fabric(row.src).stop_local(row.src_local);
      step(MigStep::kSourceStopped);
      return true;
    case MigStep::kSourceStopped: {
      const FabricAgent::AdmitOutcome out =
          fabric(row.dst).admit_raw(request_of(row));
      if (out.running) {
        step(MigStep::kDstAdmitted, out.local);
      } else {
        reason_ = out.reason;
        step(MigStep::kDstRejected);
      }
      return true;
    }
    case MigStep::kDstAdmitted: {
      const AppRow* app = db_.app(row.fleet_id);
      db_.append(AgentId::kMigration, Op::kAppLocation, row.fleet_id,
                 {row.dst, row.dst_local, app->tenant, 0});
      ++counters_.migrations_moved;
      ctr("fleet.migrate.moved").add();
      step(MigStep::kMoved);
      if (span_) span_->end(fleet_now_ps(fabrics_));
      span_.reset();
      request_.reset();
      return true;
    }
    case MigStep::kDstRejected: {
      // Rollback: the source just freed this app's resources, so
      // replaying the admission there restores the pre-migration state.
      const FabricAgent::AdmitOutcome out =
          fabric(row.src).admit_raw(request_of(row));
      if (out.running) {
        const AppRow* app = db_.app(row.fleet_id);
        db_.append(AgentId::kMigration, Op::kAppLocation, row.fleet_id,
                   {row.src, out.local, app->tenant, 0});
        ++counters_.migrations_rolled_back;
        ctr("fleet.migrate.rolled_back").add();
        step(MigStep::kRolledBack, out.local);
      } else {
        // Source re-admission lost a race with nothing — it should be
        // rare, but a preempting admission on the destination path could
        // have taken the channel. The app is gone; account it honestly.
        db_.append(AgentId::kMigration, Op::kAppRemoved, row.fleet_id,
                   {static_cast<std::int64_t>(RemoveCause::kLost)});
        ++counters_.migrations_lost;
        ctr("fleet.migrate.lost").add();
        step(MigStep::kLost);
      }
      if (span_) span_->end(fleet_now_ps(fabrics_));
      span_.reset();
      request_.reset();
      return true;
    }
    default:
      return false;  // terminal steps clear the row before we see them
  }
}

void MigrationAgent::restart() {
  note_agent_restart(db_, AgentId::kMigration, fabrics_);
  request_.reset();  // re-derived from the source scheduler's record
  reason_.clear();
  span_.reset();
}

}  // namespace vapres::fleet
