// Declarative fleet specification.
//
// A FleetSpec names N independently-simulated fabrics — each a full
// VapresSystem (its own MicroBlaze, ICAP, SDRAM, RSB, clock ladder) —
// plus the routing policy, cost-model weights, and quota configuration
// the ControlPlane wires over them. Fabrics are heterogeneous on
// purpose: different PRR counts, footprint mixes (big 16x6 sites vs
// small 16x2 sites), IOM channel counts, and PRR clock ladders, so the
// router has real capability and capacity differences to reason about.
// The canonical shapes below all validate against the XC4VLX25 clock
// region rules (16-row regions, one PRR per region).
#pragma once

#include <string>
#include <vector>

#include "core/params.hpp"
#include "obs/health/rules.hpp"
#include "sched/scheduler.hpp"

namespace vapres::fleet {

/// One fabric of the fleet: a named, self-contained system parameter
/// set. The canonical builders cover the heterogeneity axes the router
/// scores; arbitrary params are accepted too.
struct FabricSpec {
  std::string name;
  core::SystemParams params;

  /// The 4-PRR / 3-IOM fragmentation-prone server floorplan shared with
  /// the soak harness (2 big 384-slice sites + 2 small 128-slice sites).
  static FabricSpec standard(const std::string& name);

  /// 6 PRRs (4 big + 2 small), 4 IOMs: the capacity tier.
  static FabricSpec big(const std::string& name);

  /// 3 small PRRs, 2 IOMs, 2 switch-box lanes, and a halved PRR clock
  /// ladder (25/12.5 MHz):
  /// hosts only single-stage small-footprint apps at relaxed stream
  /// rates. Interval-2 submissions are rate-infeasible here, so a
  /// probing router must steer them elsewhere.
  static FabricSpec compact(const std::string& name);

  /// 8 PRRs (5 big + 3 small) across both device halves, 5 IOMs: the
  /// consolidated "one big fabric" bench_fleet compares the sharded
  /// fleet against.
  static FabricSpec mega(const std::string& name);
};

/// How the router orders candidate fabrics for one submission.
enum class RoutePolicy {
  kCostBased,   ///< score every fabric with the cost model, best first
  kRoundRobin,  ///< rotate blindly; fallback order is submission order
};

const char* policy_name(RoutePolicy p);

/// Weights of the WeightedCostModel terms (see fleet/cost.hpp). All
/// terms are normalized to roughly [0, 1] before weighting.
struct CostWeights {
  /// Free-capacity penalty: prefer the fullest admissible fabric
  /// (best-fit consolidation keeps whole fabrics in reserve for
  /// bursts; even spreading measurably loses admissions).
  double occupancy = 2.0;
  double fragmentation = 2.0;  ///< defrag work + slack the plan strands
  double queue_delay = 1.0;    ///< submissions waiting in admission queue
  double affinity = 0.5;       ///< bonus: tenant already runs here
};

/// Elastic per-tenant quota knobs (see fleet/quota.hpp).
struct QuotaConfig {
  bool enabled = true;
  int min_budget_prrs = 2;
  int max_budget_prrs = 64;
  /// Starting budget for a first-seen tenant; 0 = fleet PRRs / 4,
  /// clamped into [min, max].
  int initial_budget_prrs = 0;
  /// Consecutive over-budget demand observations before a grow.
  int grow_observations = 3;
  /// Consecutive low-usage ticks before a shrink.
  int shrink_observations = 12;
  /// Usage below this fraction of budget counts as a low-usage tick.
  double shrink_below = 0.5;
  int grow_step_prrs = 2;
  int shrink_step_prrs = 1;
  /// Free PRRs that must remain fleet-wide for an over-budget tenant to
  /// be admitted anyway (the elastic overshoot headroom).
  int elastic_slack_prrs = 2;
};

/// Fleet health monitoring / remediation knobs (docs/HEALTH.md). Off by
/// default: an unconfigured fleet journals nothing health-related and
/// its digests are untouched.
struct HealthConfig {
  bool enabled = false;
  /// Retained samples per time-series ring in the HealthSampler.
  std::size_t series_capacity = 256;
  /// When false the monitor observes and journals rule state but never
  /// isolates or drains (alerting-only mode; also the bench's
  /// monitoring-overhead measurement mode).
  bool remediate = true;
  std::vector<obs::health::HealthRuleSpec> rules;
};

struct FleetSpec {
  std::vector<FabricSpec> fabrics;
  RoutePolicy policy = RoutePolicy::kCostBased;
  CostWeights weights;
  QuotaConfig quota;
  HealthConfig health;
  /// Scheduler options applied to every fabric's ApplicationScheduler.
  sched::ApplicationScheduler::Options scheduler;

  int total_prrs() const;

  /// `n` identical standard fabrics ("fab0".."fabN-1").
  static FleetSpec uniform(int n);

  /// The canonical 4-fabric heterogeneous fleet: 1 big + 2 standard +
  /// 1 compact.
  static FleetSpec heterogeneous();
};

/// The canonical per-fabric rule set over the signals the ControlPlane
/// publishes every health tick (ICAP retry rate, fault-recovery rate,
/// stream-gap words, admission reject streak, first-choice
/// submit->launch p99) plus a fleet-wide reconcile-violation watch.
/// Thresholds are starting points; callers tune per workload.
std::vector<obs::health::HealthRuleSpec> standard_health_rules(
    const FleetSpec& spec);

}  // namespace vapres::fleet
