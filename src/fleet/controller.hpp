// Multi-fabric fleet controller.
//
// The FleetController owns N independently-simulated fabrics — each a
// full core::VapresSystem with its own sched::ApplicationScheduler —
// and fronts them with a router: every submission is scored against
// every fabric (a probe_admit dry run plus load signals through the
// pluggable CostModel) and tried in score order, falling back to the
// next candidate on rejection. Apps get fleet-wide ids that stay stable
// across cross-fabric migration; a migration tears the app down on the
// source fabric and replays its admission on the destination after
// seeding the destination's RelocatingStore with the source's master
// bitstreams, so the moved app restreams from a relocated master
// instead of a cold regenerate. Per-tenant PRR budgets are enforced
// elastically by the QuotaGovernor; a starved under-budget tenant may
// preempt the youngest app of an over-budget tenant fleet-wide.
//
// Everything is deterministic given the submission sequence: cost ties
// break on fabric index, round-robin rotates a plain counter, victim
// selection walks ordered maps.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "fleet/cost.hpp"
#include "fleet/quota.hpp"
#include "fleet/spec.hpp"
#include "sched/scheduler.hpp"

namespace vapres::fleet {

/// Fleet-wide app handle: which fabric, which local scheduler app id.
struct FleetAppId {
  int fabric = -1;
  int app = -1;
};

/// What the router did with one submission.
struct RouteDecision {
  int fleet_id = -1;       ///< stable fleet-wide id (-1 when not admitted)
  int fabric = -1;         ///< hosting fabric when admitted
  bool admitted = false;
  bool quota_limited = false;  ///< refused by the governor, never routed
  int attempts = 0;        ///< fabrics actually tried (submissions made)
  bool preempted_for = false;  ///< an over-quota app was evicted for this
  /// Last scheduler verdict (the blocking one when every fabric
  /// rejected; kPending when quota-limited or no fabric was eligible).
  sched::AdmissionVerdict verdict = sched::AdmissionVerdict::kPending;
  std::string reason;
  std::vector<int> order;  ///< fabric indices in the order they were tried
};

enum class MigrateOutcome {
  kMoved,       ///< running on the destination under the same fleet id
  kRolledBack,  ///< destination refused; re-admitted on the source
  kLost,        ///< destination and rollback both failed; app is gone
  kSkipped,     ///< not attempted (probe said no / app not running / same fabric)
};

const char* migrate_outcome_name(MigrateOutcome o);

struct MigrateResult {
  MigrateOutcome outcome = MigrateOutcome::kSkipped;
  int fleet_id = -1;
  int from_fabric = -1;
  int to_fabric = -1;
  std::string reason;
};

class FleetController {
 public:
  /// Plain (non-obs) decision counters, per controller instance — the
  /// obs::Registry mirrors of these are process-global and shared across
  /// controllers.
  struct Counters {
    std::uint64_t submissions = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;         ///< routed but every fabric refused
    std::uint64_t quota_rejected = 0;   ///< refused by the governor
    std::uint64_t fallbacks = 0;        ///< fabric rejected, next one tried
    std::uint64_t quota_preemptions = 0;
    std::uint64_t migrations_moved = 0;
    std::uint64_t migrations_rolled_back = 0;
    std::uint64_t migrations_lost = 0;
    std::uint64_t migrations_skipped = 0;
  };

  /// Builds every fabric (bring-up included). `model` defaults to a
  /// WeightedCostModel over `spec.weights`.
  explicit FleetController(const FleetSpec& spec,
                           std::unique_ptr<CostModel> model = nullptr);

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  int num_fabrics() const { return static_cast<int>(fabrics_.size()); }
  const std::string& fabric_name(int fabric) const;
  core::VapresSystem& system(int fabric);
  sched::ApplicationScheduler& scheduler(int fabric);
  const sched::ApplicationScheduler& scheduler(int fabric) const;

  /// Routes one submission for `tenant`: quota gate, score + order the
  /// fabrics, submit + run_admission down the order until one admits.
  RouteDecision submit(const std::string& tenant,
                       const sched::AppRequest& request);

  /// Moves a running app to `dst_fabric` (teardown on the source, replay
  /// admission on the destination, masters adopted first). With
  /// `probe_first` the move is skipped when the destination's dry run
  /// says it would not admit; without it a failed destination admission
  /// exercises the rollback path (re-admission on the source).
  MigrateResult migrate(int fleet_id, int dst_fabric,
                        bool probe_first = true);

  /// Stops a running app. The fleet id stays resolvable (terminal
  /// record) until retire_terminal() prunes it.
  void stop(int fleet_id);

  bool running(int fleet_id) const;
  /// Location of a still-resolvable fleet id (live or terminal).
  std::optional<FleetAppId> locate(int fleet_id) const;
  /// Scheduler record behind a still-resolvable fleet id.
  const sched::AppRecord& record_of(int fleet_id) const;
  const std::string& tenant_of(int fleet_id) const;
  /// Fleet ids of currently running apps, ascending.
  std::vector<int> running_ids() const;
  /// Running apps hosted on `fabric`.
  int running_on(int fabric) const;

  /// Drops fleet ids whose records went terminal, then retires terminal
  /// records on every fabric. Returns fleet ids pruned.
  int retire_terminal();

  /// Runs every fabric that is behind forward to `cycle` (fabrics ahead
  /// are left untouched — fleet time is the max, never rewound).
  void advance_to(sim::Cycles cycle);
  /// Fleet time: the furthest fabric's system-clock cycle count.
  sim::Cycles now() const;

  int total_prrs() const;
  int free_prrs() const;

  QuotaGovernor& governor() { return governor_; }
  const QuotaGovernor& governor() const { return governor_; }
  const Counters& counters() const { return counters_; }
  const FleetSpec& spec() const { return spec_; }

 private:
  struct Fabric {
    std::string name;
    std::unique_ptr<core::VapresSystem> sys;
    std::unique_ptr<sched::ApplicationScheduler> sched;
  };

  Fabric& fabric(int index);
  const Fabric& fabric(int index) const;

  sim::Picoseconds now_ps() const;
  FabricSnapshot snapshot(int index, const std::string& tenant,
                          const sched::AppRequest& request) const;
  /// Fabric indices in try order for this submission (cost order or
  /// round-robin rotation).
  std::vector<int> plan_order(const std::string& tenant,
                              const sched::AppRequest& request);
  RouteDecision route_once(const std::string& tenant,
                           const sched::AppRequest& request,
                           std::uint32_t track);
  /// Evicts the youngest running app of the over-quota tenant with the
  /// highest usage overshoot (ties: tenant name order). Returns whether
  /// a victim was found.
  bool preempt_over_quota(const std::string& for_tenant);
  /// Rebuilds per-tenant fleet-wide PRR usage and pushes it into the
  /// governor (tenants with no running apps are zeroed).
  void sync_usage();
  void refresh_gauges();

  FleetSpec spec_;
  std::vector<std::unique_ptr<Fabric>> fabrics_;
  std::unique_ptr<CostModel> model_;
  QuotaGovernor governor_;
  /// fleet id -> location; kept through the terminal state, pruned by
  /// retire_terminal().
  std::map<int, FleetAppId> live_;
  std::map<int, std::string> tenants_;
  /// Every tenant name ever routed (usage zeroing on departure).
  std::vector<std::string> known_tenants_;
  int next_fleet_id_ = 0;
  int rr_next_ = 0;
  Counters counters_;
};

}  // namespace vapres::fleet
