#include "fleet/controller.hpp"

#include <algorithm>
#include <cmath>

#include "obs/bus.hpp"
#include "obs/metrics.hpp"
#include "sim/check.hpp"

namespace vapres::fleet {

namespace {

obs::Counter& ctr(const char* name) {
  return obs::Registry::instance().counter(name);
}

}  // namespace

const char* migrate_outcome_name(MigrateOutcome o) {
  switch (o) {
    case MigrateOutcome::kMoved: return "moved";
    case MigrateOutcome::kRolledBack: return "rolled_back";
    case MigrateOutcome::kLost: return "lost";
    case MigrateOutcome::kSkipped: return "skipped";
  }
  return "?";
}

FleetController::FleetController(const FleetSpec& spec,
                                 std::unique_ptr<CostModel> model)
    : spec_(spec),
      model_(model ? std::move(model)
                   : std::make_unique<WeightedCostModel>(spec.weights)),
      governor_(spec.quota, spec.total_prrs()) {
  VAPRES_REQUIRE(!spec_.fabrics.empty(), "fleet needs at least one fabric");
  for (const FabricSpec& fs : spec_.fabrics) {
    auto f = std::make_unique<Fabric>();
    f->name = fs.name;
    f->sys = std::make_unique<core::VapresSystem>(fs.params);
    f->sys->bring_up_all_sites();
    f->sched = std::make_unique<sched::ApplicationScheduler>(*f->sys,
                                                             spec_.scheduler);
    fabrics_.push_back(std::move(f));
  }
}

FleetController::Fabric& FleetController::fabric(int index) {
  VAPRES_REQUIRE(index >= 0 && index < num_fabrics(), "fabric out of range");
  return *fabrics_[static_cast<std::size_t>(index)];
}

const FleetController::Fabric& FleetController::fabric(int index) const {
  VAPRES_REQUIRE(index >= 0 && index < num_fabrics(), "fabric out of range");
  return *fabrics_[static_cast<std::size_t>(index)];
}

const std::string& FleetController::fabric_name(int index) const {
  return fabric(index).name;
}

core::VapresSystem& FleetController::system(int index) {
  return *fabric(index).sys;
}

sched::ApplicationScheduler& FleetController::scheduler(int index) {
  return *fabric(index).sched;
}

const sched::ApplicationScheduler& FleetController::scheduler(
    int index) const {
  return *fabric(index).sched;
}

sim::Picoseconds FleetController::now_ps() const {
  sim::Picoseconds t = 0;
  for (const auto& f : fabrics_) t = std::max(t, f->sys->sim().now());
  return t;
}

sim::Cycles FleetController::now() const {
  sim::Cycles c = 0;
  for (const auto& f : fabrics_) {
    c = std::max(c, f->sys->system_clock().cycle_count());
  }
  return c;
}

void FleetController::advance_to(sim::Cycles cycle) {
  for (const auto& f : fabrics_) {
    const sim::Cycles at = f->sys->system_clock().cycle_count();
    if (at < cycle) f->sys->run_system_cycles(cycle - at);
  }
}

int FleetController::total_prrs() const {
  int n = 0;
  for (const auto& f : fabrics_) n += f->sched->fabric().num_slots();
  return n;
}

int FleetController::free_prrs() const {
  int n = 0;
  for (const auto& f : fabrics_) n += f->sched->fabric().free_count();
  return n;
}

FabricSnapshot FleetController::snapshot(
    int index, const std::string& tenant,
    const sched::AppRequest& request) const {
  const Fabric& f = fabric(index);
  FabricSnapshot snap;
  snap.fabric = index;
  snap.probe = f.sched->probe_admit(request);
  snap.utilization = f.sched->fabric_utilization();
  const int total_pairs = std::min(f.sched->total_source_channels(),
                                   f.sched->total_sink_channels());
  if (total_pairs > 0) {
    snap.channel_utilization =
        1.0 - static_cast<double>(f.sched->free_channel_pairs()) /
                  static_cast<double>(total_pairs);
  }
  if (snap.probe.admissible &&
      snap.probe.prrs.size() == request.modules.size()) {
    int site_slices = 0;
    int need_slices = 0;
    const auto& rects = f.sys->params().prr_rects;
    for (std::size_t i = 0; i < snap.probe.prrs.size(); ++i) {
      site_slices += rects[static_cast<std::size_t>(snap.probe.prrs[i])]
                         .slices();
      need_slices +=
          f.sys->library().info(request.modules[i]).resources.slices;
    }
    if (site_slices > 0) {
      snap.fit_waste =
          static_cast<double>(site_slices - need_slices) / site_slices;
    }
  }
  snap.free_prrs = f.sched->fabric().free_count();
  snap.total_prrs = f.sched->fabric().num_slots();
  snap.queued = f.sched->queued_count();
  sim::Cycles slowest = f.sys->system_clock().cycle_count();
  for (const auto& other : fabrics_) {
    slowest = std::min(slowest, other->sys->system_clock().cycle_count());
  }
  snap.clock_lead = f.sys->system_clock().cycle_count() - slowest;
  for (const auto& [id, loc] : live_) {
    if (loc.fabric != index) continue;
    if (tenants_.at(id) != tenant) continue;
    if (f.sched->app(loc.app).running()) ++snap.tenant_running;
  }
  return snap;
}

std::vector<int> FleetController::plan_order(
    const std::string& tenant, const sched::AppRequest& request) {
  const int n = num_fabrics();
  std::vector<int> order;
  if (spec_.policy == RoutePolicy::kRoundRobin) {
    // Blind rotation: no probes, no exclusion — the baseline the cost
    // model is benchmarked against.
    order.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) order.push_back((rr_next_ + i) % n);
    rr_next_ = (rr_next_ + 1) % n;
    return order;
  }
  std::vector<std::pair<double, int>> scored;
  for (int i = 0; i < n; ++i) {
    const double s = model_->score(snapshot(i, tenant, request));
    if (s != CostModel::kExcluded) scored.emplace_back(s, i);
  }
  // Ties break on fabric index: identical fleets route identically.
  std::stable_sort(scored.begin(), scored.end());
  order.reserve(scored.size());
  for (const auto& [s, i] : scored) order.push_back(i);
  return order;
}

RouteDecision FleetController::route_once(const std::string& tenant,
                                          const sched::AppRequest& request,
                                          std::uint32_t track) {
  RouteDecision d;
  d.order = plan_order(tenant, request);
  if (d.order.empty()) {
    // Every fabric was excluded by the cost model; report the first
    // fabric's probe verdict so the caller sees the capability mismatch.
    const FabricSnapshot snap = snapshot(0, tenant, request);
    d.verdict = snap.probe.verdict;
    d.reason = snap.probe.reason.empty() ? "no eligible fabric"
                                         : snap.probe.reason;
    return d;
  }
  obs::EventBus& bus = obs::EventBus::instance();
  for (std::size_t k = 0; k < d.order.size(); ++k) {
    const int fi = d.order[k];
    Fabric& f = fabric(fi);
    ++d.attempts;
    const int local = f.sched->submit(request);
    f.sched->run_admission();
    const sched::AppRecord& rec = f.sched->app(local);
    d.verdict = rec.verdict;
    d.reason = rec.reject_reason;
    if (rec.running()) {
      d.admitted = true;
      d.fabric = fi;
      d.fleet_id = next_fleet_id_++;
      live_[d.fleet_id] = FleetAppId{fi, local};
      tenants_[d.fleet_id] = tenant;
      return d;
    }
    if (k + 1 < d.order.size()) {
      ++counters_.fallbacks;
      ctr("fleet.route.fallbacks").add();
      bus.instant(obs::Subsystem::kFleet, obs::ev::kFallback, track, now_ps(),
                  static_cast<std::uint64_t>(fi),
                  static_cast<std::uint64_t>(rec.verdict));
    }
  }
  return d;
}

RouteDecision FleetController::submit(const std::string& tenant,
                                      const sched::AppRequest& request) {
  ++counters_.submissions;
  ctr("fleet.route.submissions").add();
  if (std::find(known_tenants_.begin(), known_tenants_.end(), tenant) ==
      known_tenants_.end()) {
    known_tenants_.push_back(tenant);
  }

  obs::EventBus& bus = obs::EventBus::instance();
  const std::uint32_t track = bus.track("fleet");
  obs::Span span =
      obs::Span::begin(obs::Subsystem::kFleet, obs::ev::kRoute, track,
                       now_ps(), static_cast<std::uint64_t>(next_fleet_id_));

  const int want = static_cast<int>(request.modules.size());
  governor_.observe_demand(tenant, want);

  RouteDecision d;
  if (!governor_.admit(tenant, want, free_prrs())) {
    d.quota_limited = true;
    d.reason = "tenant over quota and fleet slack exhausted";
    ++counters_.quota_rejected;
    ctr("fleet.route.quota_rejected").add();
    bus.instant(obs::Subsystem::kFleet, obs::ev::kQuotaReject, track, now_ps(),
                static_cast<std::uint64_t>(want),
                static_cast<std::uint64_t>(governor_.budget(tenant)));
  } else {
    d = route_once(tenant, request, track);
    // Starvation relief: the tenant is within budget but every fabric is
    // capacity-blocked — evict the youngest app of the worst over-quota
    // tenant and try the route once more.
    if (!d.admitted && capacity_blocked(d.verdict) &&
        !governor_.over_quota(tenant) && preempt_over_quota(tenant)) {
      RouteDecision retry = route_once(tenant, request, track);
      retry.attempts += d.attempts;
      retry.preempted_for = true;
      d = retry;
    }
    if (d.admitted) {
      ++counters_.admitted;
      ctr("fleet.route.admitted").add();
    } else {
      ++counters_.rejected;
      ctr("fleet.route.rejected").add();
    }
  }

  sync_usage();
  governor_.tick();
  refresh_gauges();
  span.end(now_ps());
  return d;
}

bool FleetController::preempt_over_quota(const std::string& for_tenant) {
  // Worst offender: the over-quota tenant with the largest overshoot
  // (ties resolve to name order, which over_quota_tenants() provides).
  std::string victim_tenant;
  int worst_overshoot = 0;
  for (const std::string& t : governor_.over_quota_tenants()) {
    if (t == for_tenant) continue;
    const int overshoot = governor_.usage(t) - governor_.budget(t);
    if (overshoot > worst_overshoot) {
      worst_overshoot = overshoot;
      victim_tenant = t;
    }
  }
  if (victim_tenant.empty()) return false;
  // Youngest running app of that tenant (largest fleet id).
  int victim = -1;
  for (const auto& [id, loc] : live_) {
    if (tenants_.at(id) != victim_tenant) continue;
    if (scheduler(loc.fabric).app(loc.app).running()) victim = id;
  }
  if (victim < 0) return false;
  const FleetAppId loc = live_.at(victim);
  scheduler(loc.fabric).stop(loc.app);
  ++counters_.quota_preemptions;
  ctr("fleet.quota.preemptions").add();
  obs::EventBus::instance().instant(
      obs::Subsystem::kFleet, obs::ev::kQuotaPreempt,
      obs::EventBus::instance().track("fleet"), now_ps(),
      static_cast<std::uint64_t>(victim));
  sync_usage();
  return true;
}

MigrateResult FleetController::migrate(int fleet_id, int dst_fabric,
                                       bool probe_first) {
  MigrateResult r;
  r.fleet_id = fleet_id;
  r.to_fabric = dst_fabric;
  VAPRES_REQUIRE(dst_fabric >= 0 && dst_fabric < num_fabrics(),
                 "migration destination out of range");

  auto skip = [&](const std::string& why) {
    r.outcome = MigrateOutcome::kSkipped;
    r.reason = why;
    ++counters_.migrations_skipped;
    ctr("fleet.migrate.skipped").add();
    return r;
  };

  const auto it = live_.find(fleet_id);
  if (it == live_.end()) return skip("unknown fleet id");
  const FleetAppId loc = it->second;
  r.from_fabric = loc.fabric;
  if (loc.fabric == dst_fabric) return skip("already on destination");
  Fabric& src = fabric(loc.fabric);
  Fabric& dst = fabric(dst_fabric);
  if (!src.sched->app(loc.app).running()) return skip("app not running");
  const sched::AppRequest request = src.sched->app(loc.app).request;

  if (probe_first) {
    const auto probe = dst.sched->probe_admit(request);
    if (!probe.admissible) {
      return skip("destination probe: " + probe.reason);
    }
  }

  obs::EventBus& bus = obs::EventBus::instance();
  const std::uint32_t track = bus.track("fleet");
  obs::Span span =
      obs::Span::begin(obs::Subsystem::kFleet, obs::ev::kFleetMigrate, track,
                       now_ps(), static_cast<std::uint64_t>(fleet_id));

  // Seed the destination store first: the replayed admission then
  // materializes the moved modules from relocated masters instead of
  // paying a cold regenerate on arrival.
  dst.sched->adopt_masters(src.sched->store());
  src.sched->stop(loc.app);

  const int moved = dst.sched->submit(request);
  dst.sched->run_admission();
  if (dst.sched->app(moved).running()) {
    it->second = FleetAppId{dst_fabric, moved};
    r.outcome = MigrateOutcome::kMoved;
    ++counters_.migrations_moved;
    ctr("fleet.migrate.moved").add();
  } else {
    r.reason = dst.sched->app(moved).reject_reason;
    // Rollback: the source just freed this app's resources, so replaying
    // the admission there restores the pre-migration state.
    const int back = src.sched->submit(request);
    src.sched->run_admission();
    if (src.sched->app(back).running()) {
      it->second = FleetAppId{loc.fabric, back};
      r.outcome = MigrateOutcome::kRolledBack;
      ++counters_.migrations_rolled_back;
      ctr("fleet.migrate.rolled_back").add();
    } else {
      // Source re-admission lost a race with nothing — it should be rare
      // (another tenant cannot have slipped in between stop and replay),
      // but a preempting admission on the destination path could have
      // taken the channel. The app is gone; account it honestly.
      live_.erase(it);
      tenants_.erase(fleet_id);
      r.outcome = MigrateOutcome::kLost;
      ++counters_.migrations_lost;
      ctr("fleet.migrate.lost").add();
    }
  }

  sync_usage();
  refresh_gauges();
  span.end(now_ps());
  return r;
}

void FleetController::stop(int fleet_id) {
  const auto it = live_.find(fleet_id);
  VAPRES_REQUIRE(it != live_.end(), "stop: unknown fleet id");
  const FleetAppId loc = it->second;
  if (scheduler(loc.fabric).app(loc.app).running()) {
    scheduler(loc.fabric).stop(loc.app);
  }
  sync_usage();
  refresh_gauges();
}

bool FleetController::running(int fleet_id) const {
  const auto it = live_.find(fleet_id);
  if (it == live_.end()) return false;
  return scheduler(it->second.fabric).app(it->second.app).running();
}

std::optional<FleetAppId> FleetController::locate(int fleet_id) const {
  const auto it = live_.find(fleet_id);
  if (it == live_.end()) return std::nullopt;
  return it->second;
}

const sched::AppRecord& FleetController::record_of(int fleet_id) const {
  const auto it = live_.find(fleet_id);
  VAPRES_REQUIRE(it != live_.end(), "record_of: unknown fleet id");
  return scheduler(it->second.fabric).app(it->second.app);
}

const std::string& FleetController::tenant_of(int fleet_id) const {
  const auto it = tenants_.find(fleet_id);
  VAPRES_REQUIRE(it != tenants_.end(), "tenant_of: unknown fleet id");
  return it->second;
}

std::vector<int> FleetController::running_ids() const {
  std::vector<int> out;
  for (const auto& [id, loc] : live_) {
    if (scheduler(loc.fabric).app(loc.app).running()) out.push_back(id);
  }
  return out;
}

int FleetController::running_on(int index) const {
  return static_cast<int>(scheduler(index).running_apps().size());
}

int FleetController::retire_terminal() {
  int pruned = 0;
  for (auto it = live_.begin(); it != live_.end();) {
    const sched::AppRecord& rec = scheduler(it->second.fabric).app(
        it->second.app);
    const bool terminal =
        !rec.running() && rec.state != sched::AppState::kQueued;
    if (terminal) {
      tenants_.erase(it->first);
      it = live_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  for (const auto& f : fabrics_) f->sched->retire_terminal();
  return pruned;
}

void FleetController::sync_usage() {
  std::map<std::string, int> use;
  for (const auto& [id, loc] : live_) {
    const sched::AppRecord& rec = scheduler(loc.fabric).app(loc.app);
    if (rec.running()) {
      use[tenants_.at(id)] += static_cast<int>(rec.prrs.size());
    }
  }
  for (const std::string& t : known_tenants_) {
    const auto it = use.find(t);
    governor_.set_usage(t, it != use.end() ? it->second : 0);
  }
}

void FleetController::refresh_gauges() {
  obs::Registry& reg = obs::Registry::instance();
  for (int i = 0; i < num_fabrics(); ++i) {
    const Fabric& f = fabric(i);
    const std::string base = "fleet." + f.name;
    reg.gauge(base + ".running").set(running_on(i));
    reg.gauge(base + ".utilization_pct")
        .set(static_cast<std::int64_t>(
            std::lround(f.sched->fabric_utilization() * 100.0)));
    reg.gauge(base + ".occupied_slices")
        .set(static_cast<std::int64_t>(
            std::lround(f.sched->fabric_utilization() *
                        static_cast<double>(f.sched->fabric().total_slices()))));
  }
  reg.gauge("fleet.free_prrs").set(free_prrs());
}

}  // namespace vapres::fleet
