// Shared, versioned fleet-state table with an append-only journal.
//
// The StateDb is the one place the control-plane agents (fleet/agents.*)
// meet: every intent (submit / migrate / preempt) and every observation
// (app locations, tenant quota state, per-fabric occupancy, migration
// progress) enters the table as a journal entry with a monotonic
// version, and the materialized view is a pure fold of the journal.
// That buys two properties the monolithic PR 7 controller lacked:
//
//   - *replayability*: StateDb::replay() reconstructs the view from the
//     retained journal (applied on top of the last truncation snapshot)
//     and must land on the identical view digest — the determinism gate
//     bench_fleet --quick and tests/statedb_test.cpp assert;
//   - *restartability*: an agent's private state is always recoverable
//     from the table plus read-only queries against the live schedulers,
//     so killing any one agent at an arbitrary journal version never
//     resets a fabric — in-flight migrations resume or roll back from
//     their journaled step (see MigrationAgent).
//
// Journal serialization is byte-deterministic (fixed-width little-endian
// fields, length-prefixed notes): two runs over the same intent stream
// produce byte-identical journals.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sched/request.hpp"

namespace vapres::fleet {

/// Journal authorship. Fabric agent i writes as kFabric0 + i; the
/// health monitor sits at the top of the id space so fabric ids can
/// keep growing from kFabric0.
enum class AgentId : std::uint8_t {
  kOrchestrator = 0,  ///< the ControlPlane facade (intent ingress)
  kRouter = 1,
  kQuota = 2,
  kMigration = 3,
  kFabric0 = 4,
  kHealth = 255,  ///< SLO monitor / remediation agent (docs/HEALTH.md)
};

AgentId fabric_agent_id(int fabric);
/// "router", "quota", "migration", "fabric3", ...
std::string agent_label(AgentId a);

/// Table operations. Every mutation of the view is one of these.
enum class Op : std::uint8_t {
  /// key = intent seq; note = tenant '\x1E' serialized AppRequest.
  kSubmitIntent = 1,
  /// key = intent seq; args = {allowed, budget, want_prrs, 0}.
  kQuotaDecision = 2,
  /// key = tenant id; args = {budget, usage, pressure, idle};
  /// note = tenant name on first publication.
  kTenantState = 3,
  /// key = intent seq; args = {round, 0, 0, 0}; note = "i,j,k" try order.
  kRouteOrder = 4,
  /// key = intent seq; args = {fabric, local app id, verdict, running}.
  kAdmitResult = 5,
  /// key = intent seq; args = {admitted, fabric, verdict, flags}
  /// (flags bit0 = quota_limited, bit1 = preempted_for). Closes the
  /// intent.
  kRouteResult = 6,
  /// key = fleet id; args = {fabric, local app id, tenant id, 0}.
  kAppLocation = 7,
  /// key = fleet id; args = {cause, 0, 0, 0} (RemoveCause). Drops the
  /// row.
  kAppRemoved = 8,
  /// key = 0; args = {rr_next, 0, 0, 0}.
  kRouterCursor = 9,
  /// key = fleet id; args = {dst_fabric, probe_first, 0, 0}. Opens the
  /// in-flight migration row.
  kMigrateIntent = 10,
  /// key = fleet id; args = {step, aux0, aux1, 0} (MigStep). Terminal
  /// steps close the row.
  kMigrateStep = 11,
  /// key = fabric; args = {free_prrs, queued, running, util_permille}.
  kFabricState = 12,
  /// key = victim fleet id; note = starved tenant name.
  kPreemption = 13,
  /// key = (int) AgentId of the restarted agent.
  kAgentRestart = 14,
  /// key = fabric; args = {checkpoint epoch (journal version at capture),
  /// blob bytes, running apps captured, 0}. Audit row for one full-system
  /// snap checkpoint of a fabric (docs/SNAPSHOT.md); the blob itself
  /// lives in the ControlPlane, not the journal.
  kFabricCheckpoint = 15,
  /// key = crashed fabric; args = {spare fabric, checkpoint epoch
  /// restored from, 0, 0}; note = "crashed->spare" names. Opens a
  /// failover: the kAppLocation/kAppRemoved rows that follow move every
  /// checkpointed app to the spare (or account for it explicitly).
  kFailover = 16,
  /// key = 0; args = {sim cycle, 0, 0, 0}. Orchestrator-authored start
  /// of one health evaluation round: every rule whose row's eval cycle
  /// is older than this tick is pending, so a HealthAgent killed
  /// mid-round resumes at the exact rule it stopped at.
  kHealthTick = 17,
  /// key = rule id; args[0] packs the hysteresis state (bits 0..19 bad
  /// streak, 20..39 good streak, 40 breached, 41 tripped-this-eval,
  /// 42 cleared-this-eval, 43 primed, 48..63 fabric+1); args[1] = last
  /// raw reading, args[2] = kHealthTick version this evaluation belongs
  /// to, args[3] = lifetime trips.
  /// note = rule name on first publication. One entry carries a
  /// complete evaluation — streak update and breach transition are
  /// never split across journal versions.
  kHealthRuleState = 18,
  /// key = fabric; args = {1 isolate / 0 restore, active breaches, 0, 0}.
  kIsolateFabric = 19,
};

const char* op_name(Op op);

/// Why an app row left the table.
enum class RemoveCause : std::uint8_t {
  kRetired = 0,  ///< terminal record pruned by retire_terminal()
  kLost = 1,     ///< migration lost the app (gated at zero everywhere)
};

/// Journaled progress of one cross-fabric migration. The MigrationAgent
/// performs exactly one step's side effects per poll, journals it, and
/// returns — so a kill at any journal version leaves a row a restarted
/// agent resumes or rolls back from.
enum class MigStep : std::uint8_t {
  kNone = 0,
  kPlanned = 1,         ///< intent validated, src recorded
  kMastersAdopted = 2,  ///< dst store seeded with src masters
  kSourceStopped = 3,   ///< src app torn down (request recoverable from
                        ///< the src scheduler's terminal record)
  kDstAdmitted = 4,     ///< dst replay-admission launched (aux0 = local)
  kDstRejected = 5,     ///< dst refused; rollback pending
  // Terminal steps:
  kMoved = 6,
  kRolledBack = 7,  ///< re-admitted on the source (aux0 = new local)
  kSkipped = 8,
  kLost = 9,
};

const char* mig_step_name(MigStep s);

struct JournalEntry {
  std::uint64_t version = 0;  ///< 1-based, monotonic
  AgentId agent = AgentId::kOrchestrator;
  Op op = Op::kSubmitIntent;
  std::int64_t key = 0;
  std::array<std::int64_t, 4> args{};
  std::string note;

  /// Deterministic byte serialization (fixed-width LE + length-prefixed
  /// note).
  std::string to_bytes() const;
};

// ---- Materialized view rows --------------------------------------------

struct AppRow {
  int fabric = -1;
  int local = -1;   ///< app id on the hosting fabric's scheduler
  int tenant = -1;  ///< tenant id (see tenant_name())
};

struct TenantRow {
  std::string name;
  int budget = 0;
  int usage = 0;
  int pressure = 0;  ///< consecutive over-budget demand observations
  int idle = 0;      ///< consecutive low-usage ticks
};

struct FabricRow {
  int free_prrs = 0;
  int queued = 0;
  int running = 0;
  int util_permille = 0;  ///< occupied slices / total, in 0..1000
  std::uint64_t version = 0;  ///< journal version of the last publication
};

/// Routing progress of one open submission intent. Everything a
/// restarted RouterAgent needs to resume the intent lives here; the
/// row is dropped when kRouteResult closes it.
struct IntentRow {
  std::int64_t seq = 0;
  int tenant = -1;
  std::string request_blob;  ///< serialized AppRequest (see below)
  bool quota_decided = false;
  bool quota_allowed = false;
  int round = 0;              ///< 0 = initial route, 1 = post-preemption
  bool planned = false;       ///< kRouteOrder journaled for this round
  std::vector<int> order;     ///< fabric try order for the current round
  int next_try = 0;           ///< index into order of the next attempt
  int attempts = 0;           ///< admission attempts made (all rounds)
  int last_verdict = 0;       ///< sched::AdmissionVerdict of the last try
  bool preempted_for = false;
};

/// Journaled hysteresis state of one health rule — everything a
/// restarted HealthAgent needs to resume its streaks mid-count
/// (obs/health/rules.hpp RuleState plus attribution).
struct HealthRuleRow {
  std::string name;
  int fabric = -1;  ///< fabric this rule indicts; -1 = fleet-wide
  int bad_streak = 0;
  int good_streak = 0;
  bool breached = false;
  bool primed = false;
  std::int64_t last_raw = 0;
  /// Journal version of the kHealthTick this rule was last evaluated
  /// under (0 = never): the pending-rule detector a restarted
  /// HealthAgent resumes a half-finished evaluation round from.
  std::uint64_t last_eval_version = 0;
  std::uint64_t breaches = 0;  ///< lifetime trips
};

/// Per-fabric remediation state.
struct FabricHealthRow {
  bool isolated = false;
  std::uint64_t isolations = 0;          ///< lifetime isolate transitions
  std::uint64_t last_breach_version = 0; ///< journal version of last trip
  std::uint64_t last_breach_cycle = 0;
  /// Version of the last health-authored drain intent — caps drains at
  /// one per fabric per tick (compared against health_tick_version()).
  std::uint64_t last_drain_version = 0;
};

/// In-flight migration row; at most one migration runs at a time.
struct MigrationRow {
  int fleet_id = -1;
  int src = -1;
  int dst = -1;
  bool probe_first = true;
  MigStep step = MigStep::kNone;
  int src_local = -1;
  int dst_local = -1;
};

/// Serialized AppRequest round-trip for journal notes (unit-separator
/// fields; module list comma-joined).
std::string serialize_request(const sched::AppRequest& r);
sched::AppRequest parse_request(const std::string& blob);

class StateDb {
 public:
  explicit StateDb(int num_fabrics);

  /// Appends one journal entry (assigning the next version) and applies
  /// it to the view. Returns the stored entry.
  const JournalEntry& append(AgentId agent, Op op, std::int64_t key,
                             std::array<std::int64_t, 4> args = {},
                             std::string note = {});

  std::uint64_t version() const { return version_; }
  /// Entries currently retained (journal depth after truncation).
  std::size_t journal_depth() const { return journal_.size(); }
  const std::deque<JournalEntry>& journal() const { return journal_; }

  /// Rolling FNV-1a over the bytes of every entry ever appended —
  /// stable across truncation, byte-identical across identical runs.
  std::uint64_t journal_digest() const { return journal_digest_; }
  /// All retained entries, serialized back to back.
  std::string serialize_journal() const;

  /// FNV-1a digest of the materialized view (apps, tenants, fabric
  /// rows, cursors, open intents/migrations).
  std::uint64_t view_digest() const;

  /// Drops the retained journal prefix, snapshotting the current view
  /// as the new replay base. journal_digest() is unaffected.
  void truncate();

  /// Rebuilds a view by folding the retained journal over the last
  /// truncation snapshot. Equality with view_digest() is the replay
  /// gate.
  std::uint64_t replayed_view_digest() const;

  // ---- view accessors --------------------------------------------------
  int num_fabrics() const { return static_cast<int>(view_.fabrics.size()); }
  int next_fleet_id() const { return view_.next_fleet_id; }
  int rr_cursor() const { return view_.rr_cursor; }

  const std::map<int, AppRow>& apps() const { return view_.apps; }
  const AppRow* app(int fleet_id) const;

  int num_tenants() const { return static_cast<int>(view_.tenants.size()); }
  /// Tenant id for `name`, creating nothing; -1 when unseen.
  int tenant_id(const std::string& name) const;
  const TenantRow& tenant(int id) const;
  const std::vector<TenantRow>& tenants() const { return view_.tenants; }

  const FabricRow& fabric(int index) const;

  const IntentRow* open_intent() const;
  const MigrationRow* inflight_migration() const;

  // ---- health view -----------------------------------------------------
  const std::vector<HealthRuleRow>& health_rules() const {
    return view_.health;
  }
  const FabricHealthRow& fabric_health(int index) const;
  bool isolated(int fabric) const;
  /// Fabrics currently not isolated.
  int available_fabrics() const;
  /// Breached rules currently indicting `fabric`.
  int active_breaches(int fabric) const;
  std::uint64_t health_tick_cycle() const { return view_.health_tick_cycle; }
  std::uint64_t health_tick_version() const {
    return view_.health_tick_version;
  }

  std::uint64_t restarts(AgentId a) const;

  /// Human-readable table dump (fleet_status building block). Fabric
  /// rows are labeled with `fabric_names` when provided (the table
  /// itself only knows indices).
  std::string to_string(
      const std::vector<std::string>* fabric_names = nullptr) const;

 private:
  struct View {
    std::map<int, AppRow> apps;
    std::vector<TenantRow> tenants;
    std::map<std::string, int> tenant_ids;
    std::vector<FabricRow> fabrics;
    std::optional<IntentRow> intent;
    std::optional<MigrationRow> migration;
    int rr_cursor = 0;
    int next_fleet_id = 0;
    std::vector<HealthRuleRow> health;  ///< dense by rule id
    std::vector<FabricHealthRow> fabric_health;
    std::uint64_t health_tick_cycle = 0;
    std::uint64_t health_tick_version = 0;
  };

  static void apply(View& v, const JournalEntry& e);
  static std::uint64_t digest_view(const View& v);

  View view_;
  View base_;  ///< snapshot at the last truncate()
  std::deque<JournalEntry> journal_;
  std::uint64_t version_ = 0;
  std::uint64_t journal_digest_;
  std::map<AgentId, std::uint64_t> restarts_;
};

}  // namespace vapres::fleet
