#include "bitman/prefetch.hpp"

#include <algorithm>

namespace vapres::bitman {

PrefetchEngine::PrefetchEngine(proc::Microblaze& mb,
                               BitstreamManager& manager)
    : mb_(mb), man_(manager) {
  man_.attach_prefetcher(this);
}

PrefetchEngine::~PrefetchEngine() {
  if (scheduled_) mb_.remove_task(this);
  man_.attach_prefetcher(nullptr);
}

bool PrefetchEngine::queued(const std::string& key) const {
  for (const Hint& h : queue_) {
    if (BitstreamManager::key_for(h.module_id, h.prr_name) == key) {
      return true;
    }
  }
  return false;
}

void PrefetchEngine::hint(const std::string& module_id,
                          const std::string& prr_name, int tag) {
  const std::string key = BitstreamManager::key_for(module_id, prr_name);
  // Drop stale hints eagerly: nothing to do for resident arrays, nothing
  // possible for uninstalled bitstreams, no point queueing duplicates.
  if (man_.resident(key) || !man_.installed(module_id, prr_name) ||
      queued(key)) {
    return;
  }
  queue_.push_back(Hint{module_id, prr_name, tag});
  if (!scheduled_) {
    mb_.add_task(this);
    scheduled_ = true;
  }
}

int PrefetchEngine::cancel(int tag) {
  if (tag == kNoTag) return 0;
  const auto old_size = queue_.size();
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [tag](const Hint& h) { return h.tag == tag; }),
               queue_.end());
  const int dropped = static_cast<int>(old_size - queue_.size());
  if (dropped > 0) {
    man_.note_prefetch_cancelled(static_cast<std::uint64_t>(dropped));
  }
  return dropped;
}

bool PrefetchEngine::step(proc::Microblaze&) {
  if (staging_in_flight_) return false;  // cf2array completion pending
  // Hints can go stale while queued (a demand miss restaged the pair, a
  // preload landed it): drop them before considering the path.
  while (!queue_.empty()) {
    const Hint& front = queue_.front();
    const std::string key =
        BitstreamManager::key_for(front.module_id, front.prr_name);
    if (man_.resident(key) ||
        !man_.installed(front.module_id, front.prr_name)) {
      queue_.pop_front();
      continue;
    }
    break;
  }
  if (queue_.empty()) {
    scheduled_ = false;
    return true;  // deschedule; hint() re-registers
  }
  if (man_.transfer_busy()) return false;  // demand traffic has priority
  const Hint h = queue_.front();
  queue_.pop_front();
  staging_in_flight_ = true;
  man_.stage(
      h.module_id, h.prr_name,
      [this](const core::ReconfigOutcome&) { staging_in_flight_ = false; },
      /*from_prefetch=*/true);
  return false;
}

}  // namespace vapres::bitman
