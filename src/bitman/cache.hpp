// Bitstream management subsystem ("bitman"): SDRAM residency as a cache.
//
// The paper pre-stages partial bitstreams in SDRAM at startup
// (vapres_cf2array) because the CF->ICAP path is ~14.5x slower than the
// SDRAM->ICAP path (Section V.B). That breaks down once the working set
// of partial bitstreams outgrows the finite SDRAM. The BitstreamManager
// turns residency into an LRU cache in front of CompactFlash:
//
//   * a demand reconfiguration resolves through the cache — a warm hit
//     runs the fast array2icap driver with the entry pinned against
//     eviction for the duration of the transfer; a cold miss falls
//     through to the double-buffered chunked CF->ICAP streaming driver
//     (ReconfigManager::cf2icap_streamed) and, by default, queues a
//     background restage so the next request is warm;
//   * staging a new array evicts cold arrays LRU-first (pinned and
//     in-flight entries are never eviction victims) and replaces stale
//     arrays in place on restage;
//   * a per-PRR next-module predictor (last observed switch transition)
//     feeds the PrefetchEngine, which stages likely-next bitstreams in
//     otherwise-idle MicroBlaze time while streams keep flowing;
//   * fault integration: a transfer that exhausted its SDRAM-source
//     retry budget and fell back to the pristine CompactFlash file
//     (ReconfigOutcome::fallbacks > 0) had a poisoned array — it is
//     invalidated and queued for restage (docs/FAULTS.md).
//
// Counters surface through core::SystemStats; design and bench notes in
// docs/BITSTREAMS.md.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "bitstream/calibration.hpp"
#include "bitstream/storage.hpp"
#include "core/reconfig.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::bitman {

class PrefetchEngine;

/// Cache and prefetch counters (lifetime totals).
struct BitmanStats {
  std::uint64_t hits = 0;    ///< demand reconfigurations served warm
  std::uint64_t misses = 0;  ///< demand reconfigurations served cold
  std::uint64_t streamed_misses = 0;  ///< misses served via cf2icap_streamed
  std::uint64_t evictions = 0;
  std::int64_t evicted_bytes = 0;
  std::uint64_t staged = 0;    ///< completed cf2array stagings
  std::uint64_t replaced = 0;  ///< stagings that overwrote a stale array
  std::uint64_t invalidations = 0;  ///< arrays dropped as poisoned/stale
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_completed = 0;
  std::uint64_t prefetch_cancelled = 0;  ///< queued hints dropped
  std::uint64_t prefetch_useful = 0;  ///< prefetched entries hit on demand

  double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

struct BitmanOptions {
  /// Queue a background restage (via the prefetcher) after a cold miss,
  /// so a repeated request finds the array warm.
  bool stage_on_miss = true;
  /// Chunk size of the streamed cold-miss path.
  std::int64_t stream_chunk_bytes = bitstream::Calibration::kStreamChunkBytes;
  /// Hint the per-PRR predicted next module to the prefetcher after each
  /// successful load.
  bool predict_next = true;
};

/// Owns SDRAM residency of partial bitstreams. All SDRAM array traffic
/// (staging, eviction, invalidation) goes through this manager; callers
/// hold on to CompactFlash only for installing synthesized files.
class BitstreamManager {
 public:
  BitstreamManager(core::ReconfigManager& reconfig,
                   bitstream::CompactFlash& cf, bitstream::Sdram& sdram,
                   BitmanOptions options = {});

  BitstreamManager(const BitstreamManager&) = delete;
  BitstreamManager& operator=(const BitstreamManager&) = delete;

  /// The SDRAM array key for a (module, PRR) pair.
  static std::string key_for(const std::string& module_id,
                             const std::string& prr_name);

  /// Registers the prefetcher that receives restage and predicted-next
  /// hints (optional; without one, misses simply stay cold).
  void attach_prefetcher(PrefetchEngine* prefetch) { prefetch_ = prefetch; }

  // ---- Installation (CompactFlash backing store) -----------------------

  /// Stores `bs` as a CF file under its canonical name (idempotent).
  /// Every bitstream must be installed before it can be staged or loaded.
  std::string install(const bitstream::PartialBitstream& bs);
  bool installed(const std::string& module_id,
                 const std::string& prr_name) const;

  // ---- Residency -------------------------------------------------------

  bool resident(const std::string& key) const;
  bool pinned(const std::string& key) const;
  int resident_count() const { return static_cast<int>(entries_.size()); }

  /// Untimed boot-time staging (the measured interval has not started):
  /// installs `bs` and places it resident, evicting LRU entries if the
  /// cache is full. Replaces any stale array under the same key.
  std::string preload(const bitstream::PartialBitstream& bs);

  /// Drops a resident array (poisoned or known-stale). Pinned entries
  /// are left alone (the in-flight transfer still reads them). Returns
  /// whether the array was dropped.
  bool invalidate(const std::string& key);

  // ---- Timed operations ------------------------------------------------
  // Both require the blocking transfer path to be idle (the MicroBlaze
  // driver serializes every CF/SDRAM/ICAP transfer); callers drain via
  // transfer_busy() first.

  /// True while a reconfiguration or staging transfer holds the path.
  bool transfer_busy() const { return reconfig_.busy(); }

  /// Stages the installed (module, PRR) bitstream into SDRAM
  /// (vapres_cf2array), evicting LRU entries to make room, replacing a
  /// stale array in place. Returns the first-attempt cycles charged.
  sim::Cycles stage(const std::string& module_id, const std::string& prr_name,
                    core::ReconfigManager::DoneCallback on_done = {},
                    bool from_prefetch = false);

  /// Demand reconfiguration through the cache: array2icap on a warm hit
  /// (entry pinned for the transfer; a CF fallback taken by the retry
  /// machinery invalidates the poisoned array and queues a restage),
  /// cf2icap_streamed on a cold miss (plus a restage hint when
  /// stage_on_miss). Returns the first-attempt cycles charged.
  sim::Cycles reconfigure(const std::string& module_id,
                          const std::string& prr_name,
                          core::ReconfigManager::DoneCallback on_done = {});

  // ---- Prediction ------------------------------------------------------

  /// The module the per-PRR history predicts will be requested after
  /// `module_id` on `prr_name` ("" when unknown).
  std::string predicted_next(const std::string& prr_name,
                             const std::string& module_id) const;

  const BitmanStats& stats() const { return stats_; }
  const BitmanOptions& options() const { return opt_; }

  /// Bookkeeping entry point for the prefetcher (cancelled queued hints).
  void note_prefetch_cancelled(std::uint64_t n) {
    stats_.prefetch_cancelled += n;
  }

 private:
  // Checkpoint/restore overlays residency metadata (LRU ticks, pins,
  // prefetched flags), stats, and the per-PRR predictor tables
  // (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  struct Entry {
    std::uint64_t last_use = 0;
    int pins = 0;
    bool prefetched = false;       ///< staged by the prefetch engine
    bool demand_hit_seen = false;  ///< already counted as prefetch_useful
  };

  void touch(Entry& e) { e.last_use = ++use_tick_; }
  /// Evicts LRU unpinned entries until `bytes` (plus in-flight
  /// reservations) fit. Throws ModelError when impossible.
  void ensure_capacity(std::int64_t bytes, const std::string& for_key);
  /// Records a completed load for the per-PRR predictor and hints the
  /// predicted next module to the prefetcher.
  void note_loaded(const std::string& prr_name, const std::string& module_id);
  /// Queues a background restage of (module, PRR) via the prefetcher.
  void request_restage(const std::string& module_id,
                       const std::string& prr_name);

  core::ReconfigManager& reconfig_;
  bitstream::CompactFlash& cf_;
  bitstream::Sdram& sdram_;
  BitmanOptions opt_;
  BitmanStats stats_;
  PrefetchEngine* prefetch_ = nullptr;

  std::map<std::string, Entry> entries_;
  std::set<std::string> staging_;      ///< keys with a cf2array in flight
  std::int64_t reserved_bytes_ = 0;    ///< SDRAM held for in-flight staging
  std::uint64_t use_tick_ = 0;

  /// Per-PRR switch history: last loaded module and observed
  /// last -> next transitions (the predictor).
  std::map<std::string, std::string> last_module_;
  std::map<std::string, std::map<std::string, std::string>> next_after_;
};

}  // namespace vapres::bitman
