#include "bitman/cache.hpp"

#include "bitman/prefetch.hpp"
#include "bitstream/bitgen.hpp"
#include "obs/bus.hpp"
#include "obs/metrics.hpp"
#include "sim/check.hpp"

namespace vapres::bitman {

namespace {

/// Cache decisions share one trace lane; stagings serialize on the
/// transfer path, so stage spans never overlap within it.
std::uint32_t bitman_track() {
  return obs::EventBus::instance().track("bitman");
}

}  // namespace

BitstreamManager::BitstreamManager(core::ReconfigManager& reconfig,
                                   bitstream::CompactFlash& cf,
                                   bitstream::Sdram& sdram,
                                   BitmanOptions options)
    : reconfig_(reconfig), cf_(cf), sdram_(sdram), opt_(options) {
  VAPRES_REQUIRE(opt_.stream_chunk_bytes > 0,
                 "stream chunk size must be positive");
}

std::string BitstreamManager::key_for(const std::string& module_id,
                                      const std::string& prr_name) {
  return module_id + "@" + prr_name;
}

std::string BitstreamManager::install(const bitstream::PartialBitstream& bs) {
  VAPRES_REQUIRE(bs.valid(), "refusing to install corrupt bitstream");
  const std::string filename =
      bitstream::bitstream_filename(bs.module_id, bs.target_prr);
  if (!cf_.contains(filename)) cf_.store(filename, bs);
  return filename;
}

bool BitstreamManager::installed(const std::string& module_id,
                                 const std::string& prr_name) const {
  return cf_.contains(bitstream::bitstream_filename(module_id, prr_name));
}

bool BitstreamManager::resident(const std::string& key) const {
  return entries_.count(key) > 0;
}

bool BitstreamManager::pinned(const std::string& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.pins > 0;
}

void BitstreamManager::ensure_capacity(std::int64_t bytes,
                                       const std::string& for_key) {
  // In-flight stagings already hold their reservation; their SDRAM store
  // only happens at completion, so free_bytes() alone over-promises.
  while (sdram_.free_bytes() - reserved_bytes_ < bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    VAPRES_REQUIRE(
        victim != entries_.end(),
        "bitstream cache cannot free " + std::to_string(bytes) +
            " bytes for " + for_key + ": every resident array is pinned (" +
            std::to_string(sdram_.free_bytes() - reserved_bytes_) +
            " unreserved bytes free of " +
            std::to_string(sdram_.capacity_bytes()) + ")");
    const std::int64_t sz = sdram_.read(victim->first).size_bytes;
    sdram_.erase(victim->first);
    entries_.erase(victim);
    ++stats_.evictions;
    stats_.evicted_bytes += sz;
    obs::EventBus::instance().instant(
        obs::Subsystem::kBitman, obs::ev::kEvict, bitman_track(),
        reconfig_.now(), static_cast<std::uint64_t>(sz), stats_.evictions);
    obs::Registry::instance().counter("bitman.evictions").add();
  }
}

std::string BitstreamManager::preload(const bitstream::PartialBitstream& bs) {
  install(bs);
  const std::string key = key_for(bs.module_id, bs.target_prr);
  if (resident(key)) {
    sdram_.replace(key, bs);
  } else {
    ensure_capacity(bs.size_bytes, key);
    sdram_.store(key, bs);
  }
  touch(entries_[key]);
  return key;
}

bool BitstreamManager::invalidate(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (it->second.pins > 0) return false;  // in-flight transfer reads it
  sdram_.erase(key);
  entries_.erase(it);
  ++stats_.invalidations;
  obs::EventBus::instance().instant(
      obs::Subsystem::kBitman, obs::ev::kInvalidate, bitman_track(),
      reconfig_.now(), stats_.invalidations);
  return true;
}

sim::Cycles BitstreamManager::stage(const std::string& module_id,
                                    const std::string& prr_name,
                                    core::ReconfigManager::DoneCallback on_done,
                                    bool from_prefetch) {
  VAPRES_REQUIRE(!reconfig_.busy(),
                 "bitstream transfer path busy; drain before staging");
  const std::string filename =
      bitstream::bitstream_filename(module_id, prr_name);
  VAPRES_REQUIRE(cf_.contains(filename),
                 "bitstream not installed: " + module_id + "@" + prr_name);
  const std::string key = key_for(module_id, prr_name);
  const std::int64_t bytes = cf_.read(filename).size_bytes;
  // Restaging overwrites in place, so only fresh keys need new space.
  const bool restage = resident(key);
  if (!restage) {
    ensure_capacity(bytes, key);
    reserved_bytes_ += bytes;
  }
  staging_.insert(key);
  if (from_prefetch) {
    ++stats_.prefetch_issued;
    obs::EventBus::instance().instant(
        obs::Subsystem::kBitman, obs::ev::kPrefetchIssue, bitman_track(),
        reconfig_.now(), static_cast<std::uint64_t>(bytes));
  }
  obs::Span stage_span = obs::Span::begin(
      obs::Subsystem::kBitman, obs::ev::kStage, bitman_track(),
      reconfig_.now(), static_cast<std::uint64_t>(bytes));
  const sim::Cycles stage_t0 = reconfig_.mb_cycle();
  return reconfig_.cf2array(
      filename, key,
      [this, key, bytes, restage, from_prefetch, stage_span, stage_t0,
       on_done = std::move(on_done)](const core::ReconfigOutcome& outcome)
          mutable {
        staging_.erase(key);
        if (!restage) reserved_bytes_ -= bytes;
        Entry& e = entries_[key];
        touch(e);
        e.prefetched = from_prefetch;
        e.demand_hit_seen = false;
        ++stats_.staged;
        if (restage) ++stats_.replaced;
        stage_span.end(
            reconfig_.now(),
            &obs::Registry::instance().histogram("bitman.stage.cycles"),
            static_cast<std::int64_t>(reconfig_.mb_cycle() - stage_t0));
        if (from_prefetch) {
          ++stats_.prefetch_completed;
          obs::EventBus::instance().instant(
              obs::Subsystem::kBitman, obs::ev::kPrefetchComplete,
              bitman_track(), reconfig_.now(),
              static_cast<std::uint64_t>(bytes));
        }
        if (on_done) on_done(outcome);
      });
}

sim::Cycles BitstreamManager::reconfigure(
    const std::string& module_id, const std::string& prr_name,
    core::ReconfigManager::DoneCallback on_done) {
  VAPRES_REQUIRE(!reconfig_.busy(),
                 "bitstream transfer path busy; drain before reconfiguring");
  const std::string key = key_for(module_id, prr_name);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Warm hit: fast array path, entry pinned for the transfer.
    Entry& e = it->second;
    ++stats_.hits;
    obs::EventBus::instance().instant(
        obs::Subsystem::kBitman, obs::ev::kHit, bitman_track(),
        reconfig_.now(), stats_.hits);
    obs::Registry::instance().counter("bitman.hits").add();
    if (e.prefetched && !e.demand_hit_seen) ++stats_.prefetch_useful;
    e.demand_hit_seen = true;
    touch(e);
    ++e.pins;
    return reconfig_.array2icap(
        key, [this, key, module_id, prr_name,
              on_done = std::move(on_done)](const core::ReconfigOutcome& o) {
          auto eit = entries_.find(key);
          if (eit != entries_.end() && eit->second.pins > 0) {
            --eit->second.pins;
          }
          if (o.fallbacks > 0) {
            // The retry machinery burned through the SDRAM source and
            // rescued the transfer from the pristine CF file: the array
            // is poisoned. Drop it and queue a fresh restage.
            invalidate(key);
            request_restage(module_id, prr_name);
          }
          if (o.ok()) note_loaded(prr_name, module_id);
          if (on_done) on_done(o);
        });
  }

  // Cold miss: pipelined CF->ICAP streaming, plus a restage so the next
  // request for this pair is warm.
  ++stats_.misses;
  ++stats_.streamed_misses;
  obs::EventBus::instance().instant(
      obs::Subsystem::kBitman, obs::ev::kMiss, bitman_track(),
      reconfig_.now(), stats_.misses);
  obs::Registry::instance().counter("bitman.misses").add();
  const std::string filename =
      bitstream::bitstream_filename(module_id, prr_name);
  VAPRES_REQUIRE(cf_.contains(filename),
                 "bitstream neither resident nor installed: " + key);
  if (opt_.stage_on_miss) request_restage(module_id, prr_name);
  return reconfig_.cf2icap_streamed(
      filename, opt_.stream_chunk_bytes,
      [this, module_id, prr_name,
       on_done = std::move(on_done)](const core::ReconfigOutcome& o) {
        if (o.ok()) note_loaded(prr_name, module_id);
        if (on_done) on_done(o);
      });
}

std::string BitstreamManager::predicted_next(
    const std::string& prr_name, const std::string& module_id) const {
  auto prr_it = next_after_.find(prr_name);
  if (prr_it == next_after_.end()) return "";
  auto it = prr_it->second.find(module_id);
  return it == prr_it->second.end() ? "" : it->second;
}

void BitstreamManager::note_loaded(const std::string& prr_name,
                                   const std::string& module_id) {
  auto last_it = last_module_.find(prr_name);
  if (last_it != last_module_.end() && last_it->second != module_id) {
    next_after_[prr_name][last_it->second] = module_id;
  }
  last_module_[prr_name] = module_id;
  if (!opt_.predict_next || prefetch_ == nullptr) return;
  const std::string next = predicted_next(prr_name, module_id);
  if (!next.empty()) prefetch_->hint(next, prr_name);
}

void BitstreamManager::request_restage(const std::string& module_id,
                                       const std::string& prr_name) {
  if (prefetch_ != nullptr) prefetch_->hint(module_id, prr_name);
}

}  // namespace vapres::bitman
