// Asynchronous bitstream prefetch engine.
//
// A cooperative proc::SoftwareTask that drains a queue of (module, PRR)
// staging hints — from the scheduler's admission queue and defrag plans,
// from cold-miss restage requests, and from the BitstreamManager's
// per-PRR next-module predictor — issuing one vapres_cf2array transfer
// at a time whenever the blocking transfer path is otherwise idle. The
// staging runs on the MicroBlaze while the RSB fabric keeps streaming
// (the overlap Section V.B's 14.5x gap makes worthwhile), so a later
// demand reconfiguration finds the array warm.
//
// The engine self-deschedules when its queue drains (step() returns
// true), keeping the MicroBlaze quiescent for the activity-driven
// kernel; hint() re-registers it. Hints are tagged so an application
// teardown or preemption cancels its still-queued prefetches; a staging
// already in flight is left to complete (the array is useful either
// way).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "bitman/cache.hpp"
#include "proc/microblaze.hpp"

namespace vapres::bitman {

class PrefetchEngine final : public proc::SoftwareTask {
 public:
  /// Tag for hints not owned by any application (never cancelled as a
  /// group).
  static constexpr int kNoTag = -1;

  PrefetchEngine(proc::Microblaze& mb, BitstreamManager& manager);
  ~PrefetchEngine() override;

  PrefetchEngine(const PrefetchEngine&) = delete;
  PrefetchEngine& operator=(const PrefetchEngine&) = delete;

  /// Queues a staging hint for an installed (module, PRR) bitstream.
  /// Already-resident, not-installed, and already-queued pairs are
  /// dropped immediately (stale hints cost nothing). Registers the task
  /// with the MicroBlaze when the queue becomes non-empty.
  void hint(const std::string& module_id, const std::string& prr_name,
            int tag = kNoTag);

  /// Drops every queued hint carrying `tag` (app teardown/preemption).
  /// A staging already in flight completes regardless. Returns the
  /// number of hints dropped.
  int cancel(int tag);

  int pending() const { return static_cast<int>(queue_.size()); }
  bool staging() const { return staging_in_flight_; }

  bool step(proc::Microblaze& mb) override;
  std::string task_name() const override { return "prefetch_engine"; }

 private:
  struct Hint {
    std::string module_id;
    std::string prr_name;
    int tag = kNoTag;
  };

  bool queued(const std::string& key) const;

  proc::Microblaze& mb_;
  BitstreamManager& man_;
  std::deque<Hint> queue_;
  bool scheduled_ = false;
  bool staging_in_flight_ = false;
};

}  // namespace vapres::bitman
