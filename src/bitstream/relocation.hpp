// Partial-bitstream relocation (hardware module *reuse*).
//
// The VAPRES authors' follow-on work ("Hardware Module Reuse and Runtime
// Assembly for Dynamic Management of Reconfigurable Resources",
// Jara-Berrocal & Gordon-Ross) removes the one-bitstream-per-(module,
// PRR) blow-up of the EAPR flow: when two PRRs have identical footprints,
// a module's bitstream can be *relocated* between them by rewriting the
// frame addresses (FAR) while streaming it to the ICAP, so CompactFlash
// holds one bitstream per module per footprint class.
//
// Relocatability on Virtex-4-class fabric requires:
//   * identical rectangle dimensions (same frame count per column),
//   * the same row offset within the clock region (frames span whole
//     regions; a vertical shift by non-multiples of 16 CLBs changes the
//     word layout inside frames),
//   * the same resource column structure — in this model, rectangles
//     carry CLB fabric only, so equal width suffices.
//
// The rewrite is a single streaming pass over the bitstream on the
// MicroBlaze; RelocatingStore models the storage saving and prices the
// rewrite cost.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"

namespace vapres::bitstream {

/// True if a bitstream placed for `from` can be relocated into `to`.
bool relocatable(const fabric::ClbRect& from, const fabric::ClbRect& to);

/// Canonical footprint-class key ("h16w10o0": height, width, row offset
/// within the clock region). Bitstreams relocate freely within a class.
std::string footprint_class(const fabric::ClbRect& rect);

/// Rewrites `bs` to target `new_prr` at `new_rect`. Throws ModelError if
/// the rectangles are not relocation-compatible.
PartialBitstream relocate(const PartialBitstream& bs,
                          const std::string& new_prr,
                          const fabric::ClbRect& new_rect);

/// MicroBlaze cycles for the streaming FAR rewrite of `bytes` (one pass,
/// word-at-a-time, ~2 cycles/byte — negligible next to the ICAP write).
double relocation_cycles(std::int64_t bytes);

/// A bitstream store that keeps ONE master bitstream per (module,
/// footprint class) and materializes per-PRR copies by relocation —
/// versus the EAPR baseline of one stored bitstream per (module, PRR).
class RelocatingStore {
 public:
  /// Registers the master copy for its footprint class. Re-registering
  /// the same (module, class) is a no-op (the master already covers it).
  void add_master(const PartialBitstream& bs);

  bool has_master(const std::string& module_id,
                  const fabric::ClbRect& rect) const;

  /// Materializes the bitstream for (module, prr at rect), relocating
  /// the master. Throws if no master covers the footprint class.
  PartialBitstream materialize(const std::string& module_id,
                               const std::string& prr_name,
                               const fabric::ClbRect& rect) const;

  /// Copies every master from `other` that this store lacks (existing
  /// masters win). Lets a fleet controller seed one scheduler's store
  /// from another's before a cross-fabric migration, so footprint
  /// classes shared between fabrics reuse the already-generated master.
  void absorb(const RelocatingStore& other);

  /// Total bytes held (the storage the CF card actually needs).
  std::int64_t stored_bytes() const;
  std::size_t master_count() const { return masters_.size(); }

  /// Bytes the EAPR baseline would store for the same coverage:
  /// one bitstream per (module, PRR) over `prrs_per_class` PRRs.
  static std::int64_t baseline_bytes(std::int64_t master_bytes,
                                     int prrs_per_class) {
    return master_bytes * prrs_per_class;
  }

 private:
  // key: module_id + '@' + footprint_class
  std::map<std::string, PartialBitstream> masters_;
};

}  // namespace vapres::bitstream
