#include "bitstream/storage.hpp"

#include "sim/check.hpp"

namespace vapres::bitstream {

bool CompactFlash::valid_filename(const std::string& filename) {
  const auto valid_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '~' || c == '-';
  };
  const std::size_t dot = filename.find('.');
  const std::string base = filename.substr(0, dot);
  const std::string ext =
      dot == std::string::npos ? "" : filename.substr(dot + 1);
  if (base.empty() || base.size() > 8 || ext.size() > 3) return false;
  if (ext.find('.') != std::string::npos) return false;  // one dot only
  for (char c : base) {
    if (!valid_char(c)) return false;
  }
  for (char c : ext) {
    if (!valid_char(c)) return false;
  }
  return true;
}

void CompactFlash::store(const std::string& filename, PartialBitstream bs) {
  VAPRES_REQUIRE(!filename.empty(), "CF filename must be non-empty");
  VAPRES_REQUIRE(valid_filename(filename),
                 "CF filename '" + filename +
                     "' violates the FAT 8.3 convention (base <= 8 chars, "
                     "extension <= 3, one dot, [A-Za-z0-9_~-])");
  VAPRES_REQUIRE(bs.valid(), "refusing to store corrupt bitstream");
  files_[filename] = std::move(bs);
}

bool CompactFlash::contains(const std::string& filename) const {
  return files_.count(filename) > 0;
}

const PartialBitstream& CompactFlash::read(const std::string& filename) const {
  auto it = files_.find(filename);
  VAPRES_REQUIRE(it != files_.end(),
                 "CF file not found: " + filename);
  return it->second;
}

std::vector<std::string> CompactFlash::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, bs] : files_) names.push_back(name);
  return names;
}

Sdram::Sdram(std::int64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {
  VAPRES_REQUIRE(capacity_bytes > 0, "SDRAM capacity must be positive");
}

void Sdram::store(const std::string& key, PartialBitstream bs) {
  VAPRES_REQUIRE(!key.empty(), "SDRAM array key must be non-empty");
  VAPRES_REQUIRE(!contains(key), "SDRAM array already staged: " + key);
  VAPRES_REQUIRE(bs.valid(), "refusing to stage corrupt bitstream");
  VAPRES_REQUIRE(bs.size_bytes <= free_bytes(),
                 "SDRAM capacity exceeded staging " + key + ": need " +
                     std::to_string(bs.size_bytes) + " bytes, " +
                     std::to_string(free_bytes()) + " of " +
                     std::to_string(capacity_bytes_) + " free");
  used_bytes_ += bs.size_bytes;
  arrays_[key] = std::move(bs);
}

void Sdram::replace(const std::string& key, PartialBitstream bs) {
  if (contains(key)) erase(key);
  store(key, std::move(bs));
}

void Sdram::erase(const std::string& key) {
  auto it = arrays_.find(key);
  VAPRES_REQUIRE(it != arrays_.end(), "SDRAM array not staged: " + key);
  used_bytes_ -= it->second.size_bytes;
  arrays_.erase(it);
}

bool Sdram::contains(const std::string& key) const {
  return arrays_.count(key) > 0;
}

const PartialBitstream& Sdram::read(const std::string& key) const {
  auto it = arrays_.find(key);
  VAPRES_REQUIRE(it != arrays_.end(), "SDRAM array not staged: " + key);
  return it->second;
}

std::vector<std::string> Sdram::list() const {
  std::vector<std::string> names;
  names.reserve(arrays_.size());
  for (const auto& [name, bs] : arrays_) names.push_back(name);
  return names;
}

}  // namespace vapres::bitstream
