#include "bitstream/relocation.hpp"

#include "fabric/frame.hpp"
#include "sim/check.hpp"

namespace vapres::bitstream {

bool relocatable(const fabric::ClbRect& from, const fabric::ClbRect& to) {
  if (from.height != to.height || from.width != to.width) return false;
  const int region_rows = fabric::DeviceGeometry::kClockRegionRows;
  return from.row % region_rows == to.row % region_rows;
}

std::string footprint_class(const fabric::ClbRect& rect) {
  const int region_rows = fabric::DeviceGeometry::kClockRegionRows;
  return "h" + std::to_string(rect.height) + "w" +
         std::to_string(rect.width) + "o" +
         std::to_string(rect.row % region_rows);
}

PartialBitstream relocate(const PartialBitstream& bs,
                          const std::string& new_prr,
                          const fabric::ClbRect& new_rect) {
  VAPRES_REQUIRE(bs.valid(), "refusing to relocate corrupt bitstream");
  VAPRES_REQUIRE(relocatable(bs.region, new_rect),
                 "bitstream for " + bs.region.to_string() +
                     " is not relocatable to " + new_rect.to_string() +
                     " (footprints differ)");
  // The FAR rewrite changes only frame addresses: the size is identical
  // by construction (same frame count), and the tag is recomputed over
  // the new placement.
  PartialBitstream out = bs;
  out.target_prr = new_prr;
  out.region = new_rect;
  out.tag = bitstream_tag(out.module_id, out.target_prr, out.region,
                          out.size_bytes);
  VAPRES_REQUIRE(out.size_bytes == fabric::partial_bitstream_bytes(new_rect),
                 "relocation changed the frame count (model bug)");
  return out;
}

double relocation_cycles(std::int64_t bytes) {
  VAPRES_REQUIRE(bytes >= 0, "negative bitstream size");
  return 2.0 * static_cast<double>(bytes);
}

void RelocatingStore::add_master(const PartialBitstream& bs) {
  VAPRES_REQUIRE(bs.valid(), "refusing to store corrupt bitstream");
  const std::string key = bs.module_id + "@" + footprint_class(bs.region);
  masters_.emplace(key, bs);  // keep the first master for the class
}

bool RelocatingStore::has_master(const std::string& module_id,
                                 const fabric::ClbRect& rect) const {
  return masters_.count(module_id + "@" + footprint_class(rect)) > 0;
}

PartialBitstream RelocatingStore::materialize(
    const std::string& module_id, const std::string& prr_name,
    const fabric::ClbRect& rect) const {
  auto it = masters_.find(module_id + "@" + footprint_class(rect));
  VAPRES_REQUIRE(it != masters_.end(),
                 "no master bitstream for " + module_id +
                     " with footprint " + footprint_class(rect));
  return relocate(it->second, prr_name, rect);
}

void RelocatingStore::absorb(const RelocatingStore& other) {
  for (const auto& [key, bs] : other.masters_) {
    masters_.emplace(key, bs);  // existing masters win, same as add_master
  }
}

std::int64_t RelocatingStore::stored_bytes() const {
  std::int64_t total = 0;
  for (const auto& [key, bs] : masters_) total += bs.size_bytes;
  return total;
}

}  // namespace vapres::bitstream
