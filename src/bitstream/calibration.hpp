// Reconfiguration-path timing calibration.
//
// Section V.B of the paper measures, for the prototype PRR (16 x 10 CLBs =
// 640 slices, one clock region, partial bitstream ~= 37,104 bytes in the
// frame model), at a 100 MHz MicroBlaze/system clock:
//
//   * vapres_cf2icap   : 1.043 s total, of which 95.3 % is the CompactFlash
//                        -> ICAP-BRAM-buffer transfer and 4.7 % is writing
//                        the buffer into the ICAP;
//   * vapres_array2icap: 71.94 ms total (bitstream pre-staged in SDRAM).
//
// (The raw cycle counts printed in the paper are internally 10x
// inconsistent with these times at 100 MHz; we treat the times and the
// percentage split as authoritative — see DESIGN.md.)
//
// Solving per-byte costs from those three numbers with S = 37,104 bytes:
//
//   cf_read    = 0.953 * 104.3e6 cycles / S = 2678.9 cycles/byte
//   icap_write = 0.047 * 104.3e6 cycles / S =  132.1 cycles/byte
//   sdram_read = (7.194e6 - 0.047 * 104.3e6) cycles / S = 61.8 cycles/byte
//
// The large per-byte ICAP cost is the software driver (XHwICAP-era
// frame-by-frame processing), three orders of magnitude above the port's
// physical limit of one word per cycle — which is exactly what the EAPR
// flow measured in 2009. fabric::IcapPort models the physical floor; these
// constants model the measured software path.
#pragma once

#include <cstdint>

namespace vapres::bitstream {

struct Calibration {
  /// System/MicroBlaze clock the costs are expressed in (MHz).
  static constexpr double kSystemClockMhz = 100.0;

  /// CompactFlash (SystemACE) read, byte-polled by the MicroBlaze.
  static constexpr double kCfReadCyclesPerByte = 2678.9;

  /// SDRAM read on the PLB during the ICAP driver loop.
  static constexpr double kSdramReadCyclesPerByte = 61.8;

  /// SDRAM write (used by vapres_cf2array staging).
  static constexpr double kSdramWriteCyclesPerByte = 61.8;

  /// Software-driven ICAP write (driver loop + port).
  static constexpr double kIcapWriteCyclesPerByte = 132.1;

  /// Fixed per-call driver setup (file open, ICAP sync sequence). Small
  /// against any real bitstream; keeps zero-byte calls non-instantaneous.
  static constexpr double kCallOverheadCycles = 5000.0;

  /// Chunk size of the pipelined cf2icap streaming driver: one sector
  /// batch per double-buffer flip (bitman subsystem, docs/BITSTREAMS.md).
  static constexpr std::int64_t kStreamChunkBytes = 4096;

  /// Per-chunk bookkeeping of the streaming driver (buffer flip, sector
  /// request issue). The CF read is ~20x slower per byte than the ICAP
  /// write, so the card read dominates and all but the final chunk's
  /// ICAP write hides behind it.
  static constexpr double kStreamChunkOverheadCycles = 32.0;
};

}  // namespace vapres::bitstream
