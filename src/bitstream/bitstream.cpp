#include "bitstream/bitstream.hpp"

#include "fabric/frame.hpp"
#include "sim/check.hpp"

namespace vapres::bitstream {

namespace {

void fnv_mix(std::uint32_t& h, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    h ^= (value >> (8 * i)) & 0xffU;
    h *= 16777619U;
  }
}

void fnv_mix(std::uint32_t& h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 16777619U;
  }
  fnv_mix(h, 0xfeU);  // field separator
}

}  // namespace

std::uint32_t bitstream_tag(const std::string& module_id,
                            const std::string& target_prr,
                            const fabric::ClbRect& region,
                            std::int64_t size_bytes) {
  std::uint32_t h = 2166136261U;
  fnv_mix(h, module_id);
  fnv_mix(h, target_prr);
  fnv_mix(h, static_cast<std::uint32_t>(region.row));
  fnv_mix(h, static_cast<std::uint32_t>(region.col));
  fnv_mix(h, static_cast<std::uint32_t>(region.height));
  fnv_mix(h, static_cast<std::uint32_t>(region.width));
  fnv_mix(h, static_cast<std::uint32_t>(size_bytes));
  return h;
}

PartialBitstream PartialBitstream::create(std::string module_id,
                                          std::string target_prr,
                                          const fabric::ClbRect& region) {
  VAPRES_REQUIRE(!module_id.empty(), "bitstream needs a module id");
  VAPRES_REQUIRE(!target_prr.empty(), "bitstream needs a target PRR");
  PartialBitstream bs;
  bs.module_id = std::move(module_id);
  bs.target_prr = std::move(target_prr);
  bs.region = region;
  bs.size_bytes = fabric::partial_bitstream_bytes(region);
  bs.tag = bitstream_tag(bs.module_id, bs.target_prr, bs.region,
                         bs.size_bytes);
  return bs;
}

bool PartialBitstream::valid() const {
  return tag == bitstream_tag(module_id, target_prr, region, size_bytes);
}

StaticBitstream StaticBitstream::create(std::string system_name,
                                        const fabric::DeviceGeometry& dev) {
  StaticBitstream bs;
  bs.system_name = std::move(system_name);
  bs.device_name = dev.name();
  const fabric::ClbRect whole{0, 0, dev.clb_rows(), dev.clb_cols()};
  bs.size_bytes = fabric::partial_bitstream_bytes(whole);
  return bs;
}

}  // namespace vapres::bitstream
