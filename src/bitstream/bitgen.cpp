#include "bitstream/bitgen.hpp"

#include "sim/check.hpp"

namespace vapres::bitstream {

PartialBitstream generate_partial_bitstream(
    const std::string& module_id, const fabric::ResourceVector& required,
    const std::string& prr_name, const fabric::ClbRect& region) {
  const fabric::ResourceVector available = region.resources();
  VAPRES_REQUIRE(required.fits_in(available),
                 "module " + module_id + " needs " +
                     std::to_string(required.slices) +
                     " slices but PRR " + prr_name + " provides " +
                     std::to_string(available.slices));
  return PartialBitstream::create(module_id, prr_name, region);
}

std::string bitstream_filename(const std::string& module_id,
                               const std::string& prr_name) {
  return module_id + "_" + prr_name + ".bit";
}

}  // namespace vapres::bitstream
