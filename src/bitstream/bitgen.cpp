#include "bitstream/bitgen.hpp"

#include <cstdint>

#include "sim/check.hpp"

namespace vapres::bitstream {

PartialBitstream generate_partial_bitstream(
    const std::string& module_id, const fabric::ResourceVector& required,
    const std::string& prr_name, const fabric::ClbRect& region) {
  const fabric::ResourceVector available = region.resources();
  VAPRES_REQUIRE(required.fits_in(available),
                 "module " + module_id + " needs " +
                     std::to_string(required.slices) +
                     " slices but PRR " + prr_name + " provides " +
                     std::to_string(available.slices));
  return PartialBitstream::create(module_id, prr_name, region);
}

std::string bitstream_filename(const std::string& module_id,
                               const std::string& prr_name) {
  // FNV-1a over "<module>@<prr>", truncated to 24 bits for the name.
  std::uint32_t h = 2166136261u;
  const auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 16777619u;
    }
  };
  mix(module_id);
  mix("@");
  mix(prr_name);

  std::string base;
  for (char c : module_id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    if (ok) base.push_back(c);
    if (base.size() == 2) break;
  }
  while (base.size() < 2) base.push_back('x');
  static const char* kHex = "0123456789abcdef";
  for (int shift = 20; shift >= 0; shift -= 4) {
    base.push_back(kHex[(h >> shift) & 0xF]);
  }
  return base + ".bit";
}

}  // namespace vapres::bitstream
