// Bitstream generation ("bitgen") for the application flow.
//
// In the real flow, each hardware module is synthesized and
// placed-and-routed once per PRR it may occupy, producing one partial
// bitstream per (module, PRR) pair (Section IV.B). The model checks that
// the module's resource requirement fits the PRR rectangle and emits the
// geometry-sized bitstream record.
#pragma once

#include <string>

#include "bitstream/bitstream.hpp"
#include "fabric/resources.hpp"

namespace vapres::bitstream {

/// Generates the partial bitstream implementing module `module_id` (which
/// requires `required` resources) inside PRR `prr_name` at `region`.
/// Throws ModelError if the module does not fit the PRR.
PartialBitstream generate_partial_bitstream(
    const std::string& module_id, const fabric::ResourceVector& required,
    const std::string& prr_name, const fabric::ClbRect& region);

/// Canonical CF filename for a (module, PRR) bitstream. CompactFlash
/// enforces the FAT 8.3 convention (SystemACE), so the pair is packed
/// into "mmhhhhhh.bit": two sanitized module characters plus six hex
/// digits of an FNV-1a hash over "<module>@<prr>". Stable across runs; a
/// (vanishingly unlikely) hash collision would hand the wrong file to a
/// PRR and is caught by the bitstream integrity tag at apply time.
std::string bitstream_filename(const std::string& module_id,
                               const std::string& prr_name);

}  // namespace vapres::bitstream
