// External storage models: CompactFlash (SystemACE) and SDRAM.
//
// The paper stores partial bitstreams as files in CompactFlash and,
// optionally, pre-stages them as arrays in SDRAM at system startup
// (vapres_cf2array); the two reconfiguration paths differ by ~14.5x in
// time (Section V.B). These classes model the namespace (files / arrays)
// and per-byte access costs; the reconfiguration manager turns costs into
// simulated time.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "bitstream/calibration.hpp"
#include "sim/time.hpp"

namespace vapres::bitstream {

/// CompactFlash card holding partial-bitstream files, read through a
/// SystemACE-style byte interface.
class CompactFlash {
 public:
  /// True iff `filename` follows the FAT 8.3 convention the SystemACE
  /// controller requires: a 1-8 character base, at most one dot, an
  /// extension of at most 3 characters, all from [A-Za-z0-9_~-].
  static bool valid_filename(const std::string& filename);

  /// Stores `bs` under `filename`. Names are validated against the 8.3
  /// convention (ModelError on violation — the real card's FAT layer
  /// would reject or silently mangle them).
  void store(const std::string& filename, PartialBitstream bs);

  bool contains(const std::string& filename) const;

  /// Returns the file. Throws ModelError if absent.
  const PartialBitstream& read(const std::string& filename) const;

  std::vector<std::string> list() const;

  /// Cycles (at the system clock) for the MicroBlaze to read `bytes` from
  /// the card into on-chip memory.
  static double read_cycles(std::int64_t bytes) {
    return Calibration::kCallOverheadCycles +
           static_cast<double>(bytes) * Calibration::kCfReadCyclesPerByte;
  }

 private:
  std::map<std::string, PartialBitstream> files_;
};

/// External SDRAM used to pre-stage bitstream arrays.
class Sdram {
 public:
  explicit Sdram(std::int64_t capacity_bytes);

  std::int64_t capacity_bytes() const { return capacity_bytes_; }
  std::int64_t used_bytes() const { return used_bytes_; }
  std::int64_t free_bytes() const { return capacity_bytes_ - used_bytes_; }

  /// Stores `bs` as the array named `key`. Throws if capacity is exceeded
  /// or the key exists (use replace() to overwrite in place).
  void store(const std::string& key, PartialBitstream bs);

  /// Stores `bs` under `key`, overwriting any existing array (the old
  /// array's space is reclaimed first — restaging a key never needs more
  /// free space than a fresh store). Throws if capacity is exceeded.
  void replace(const std::string& key, PartialBitstream bs);

  /// Removes a staged array, reclaiming its space.
  void erase(const std::string& key);

  bool contains(const std::string& key) const;
  const PartialBitstream& read(const std::string& key) const;
  std::vector<std::string> list() const;

  /// Cycles to stream `bytes` out of SDRAM on the PLB.
  static double read_cycles(std::int64_t bytes) {
    return static_cast<double>(bytes) * Calibration::kSdramReadCyclesPerByte;
  }
  /// Cycles to stream `bytes` into SDRAM on the PLB.
  static double write_cycles(std::int64_t bytes) {
    return static_cast<double>(bytes) * Calibration::kSdramWriteCyclesPerByte;
  }

 private:
  std::int64_t capacity_bytes_;
  std::int64_t used_bytes_ = 0;
  std::map<std::string, PartialBitstream> arrays_;
};

}  // namespace vapres::bitstream
