// Bitstream objects.
//
// A partial bitstream configures one PRR with one hardware module; its
// size follows from the PRR's frame geometry (fabric/frame.hpp), which is
// what couples PRR dimensions to reconfiguration time in the model. The
// content is summarized by an integrity tag (the model's stand-in for the
// bitstream CRC) so tests can detect misdirected configuration.
#pragma once

#include <cstdint>
#include <string>

#include "fabric/clock_region.hpp"
#include "fabric/device.hpp"

namespace vapres::bitstream {

struct PartialBitstream {
  std::string module_id;   ///< Netlist/behaviour the bitstream implements.
  std::string target_prr;  ///< PRR instance the bitstream was placed for.
  fabric::ClbRect region;  ///< The PRR rectangle it reconfigures.
  std::int64_t size_bytes = 0;
  std::uint32_t tag = 0;  ///< Integrity tag over the fields above.

  /// Builds a bitstream record for `module_id` implemented in `target_prr`
  /// at `region`; size derives from the frame geometry.
  static PartialBitstream create(std::string module_id, std::string target_prr,
                                 const fabric::ClbRect& region);

  /// Recomputes the integrity tag and compares.
  bool valid() const;
};

struct StaticBitstream {
  std::string system_name;
  std::string device_name;
  std::int64_t size_bytes = 0;

  /// Full-device configuration size for `dev` in the frame model.
  static StaticBitstream create(std::string system_name,
                                const fabric::DeviceGeometry& dev);
};

/// FNV-1a based tag over a bitstream's identifying fields.
std::uint32_t bitstream_tag(const std::string& module_id,
                            const std::string& target_prr,
                            const fabric::ClbRect& region,
                            std::int64_t size_bytes);

}  // namespace vapres::bitstream
