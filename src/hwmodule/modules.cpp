#include "hwmodule/modules.hpp"

#include "sim/check.hpp"

namespace vapres::hwmodule {

namespace {

/// Standard 1-in-1-out firing rule: consume only when the output can be
/// written this cycle (KPN blocking write).
bool fire_ready(const ModulePorts& ports) {
  return ports.can_read(0) && ports.can_write(0);
}

}  // namespace

// ---------------------------------------------------------------- Passthrough

void Passthrough::on_cycle(ModulePorts& ports) {
  if (fire_ready(ports)) ports.write(0, ports.read(0));
}

// ----------------------------------------------------------------------- Gain

Gain::Gain(std::string type_id, Word multiplier, int shift)
    : type_id_(std::move(type_id)), multiplier_(multiplier), shift_(shift) {
  VAPRES_REQUIRE(shift_ >= 0 && shift_ < 64, "gain shift out of range");
}

void Gain::on_cycle(ModulePorts& ports) {
  if (!fire_ready(ports)) return;
  const std::uint64_t product =
      static_cast<std::uint64_t>(ports.read(0)) * multiplier_;
  ports.write(0, static_cast<Word>(product >> shift_));
}

void Gain::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.size() == 1, type_id_ + ": expected 1 state word");
  multiplier_ = state[0];
}

// ------------------------------------------------------------------ AddOffset

AddOffset::AddOffset(std::string type_id, Word offset)
    : type_id_(std::move(type_id)), offset_(offset) {}

void AddOffset::on_cycle(ModulePorts& ports) {
  if (fire_ready(ports)) ports.write(0, ports.read(0) + offset_);
}

void AddOffset::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.size() == 1, type_id_ + ": expected 1 state word");
  offset_ = state[0];
}

// -------------------------------------------------------------- MovingAverage

MovingAverage::MovingAverage(std::string type_id, int window_log2,
                             int monitor_interval)
    : type_id_(std::move(type_id)),
      window_log2_(window_log2),
      monitor_interval_(monitor_interval) {
  VAPRES_REQUIRE(window_log2_ >= 0 && window_log2_ <= 10,
                 type_id_ + ": window must be 2^0..2^10");
  VAPRES_REQUIRE(monitor_interval_ >= 0, "monitor interval must be >= 0");
  reset();
}

void MovingAverage::reset() {
  line_.assign(static_cast<std::size_t>(window()), 0);
  sum_ = 0;
  samples_ = 0;
}

Word MovingAverage::current_average() const {
  return static_cast<Word>(sum_ >> window_log2_);
}

void MovingAverage::on_cycle(ModulePorts& ports) {
  if (!fire_ready(ports)) return;
  const Word in = ports.read(0);
  sum_ -= line_.front();
  line_.pop_front();
  line_.push_back(in);
  sum_ += in;
  ++samples_;
  ports.write(0, current_average());
  if (monitor_interval_ > 0 &&
      samples_ % static_cast<std::uint64_t>(monitor_interval_) == 0 &&
      ports.fsl_can_write()) {
    ports.fsl_write(current_average());
  }
}

std::vector<Word> MovingAverage::save_state() const {
  return std::vector<Word>(line_.begin(), line_.end());
}

std::vector<Word> MovingAverage::snapshot_extra() const {
  return {static_cast<Word>(samples_ & 0xFFFFFFFFu),
          static_cast<Word>(samples_ >> 32)};
}

void MovingAverage::restore_extra(std::span<const Word> extra) {
  VAPRES_REQUIRE(extra.size() == 2,
                 type_id_ + ": expected 2 extra snapshot words");
  samples_ = static_cast<std::uint64_t>(extra[0]) |
             (static_cast<std::uint64_t>(extra[1]) << 32);
}

void MovingAverage::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(static_cast<int>(state.size()) == window(),
                 type_id_ + ": state size must equal window length");
  line_.assign(state.begin(), state.end());
  sum_ = 0;
  for (Word w : line_) sum_ += w;
}

// ------------------------------------------------------------------ FirFilter

FirFilter::FirFilter(std::string type_id, std::vector<std::int32_t> taps_q15)
    : type_id_(std::move(type_id)), taps_(std::move(taps_q15)) {
  VAPRES_REQUIRE(!taps_.empty(), type_id_ + ": FIR needs at least one tap");
  reset();
}

void FirFilter::reset() {
  line_.assign(taps_.size(), 0);
}

void FirFilter::on_cycle(ModulePorts& ports) {
  if (!fire_ready(ports)) return;
  // Shift in the new sample (newest first).
  for (std::size_t i = line_.size() - 1; i > 0; --i) line_[i] = line_[i - 1];
  line_[0] = ports.read(0);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < taps_.size(); ++i) {
    acc += static_cast<std::int64_t>(taps_[i]) *
           static_cast<std::int32_t>(line_[i]);
  }
  ports.write(0, static_cast<Word>(static_cast<std::uint64_t>(acc) >> 15));
}

std::vector<Word> FirFilter::save_state() const { return line_; }

void FirFilter::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.size() == taps_.size(),
                 type_id_ + ": state size must equal tap count");
  line_.assign(state.begin(), state.end());
}

// ------------------------------------------------------------------ Decimator

Decimator::Decimator(std::string type_id, int factor)
    : type_id_(std::move(type_id)), factor_(factor) {
  VAPRES_REQUIRE(factor_ >= 1, type_id_ + ": decimation factor must be >= 1");
}

void Decimator::on_cycle(ModulePorts& ports) {
  // Emitting cycles need output space; dropping cycles do not.
  if (!ports.can_read(0)) return;
  if (phase_ == 0 && !ports.can_write(0)) return;
  const Word in = ports.read(0);
  if (phase_ == 0) ports.write(0, in);
  phase_ = (phase_ + 1) % static_cast<Word>(factor_);
}

void Decimator::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.size() == 1, type_id_ + ": expected 1 state word");
  VAPRES_REQUIRE(state[0] < static_cast<Word>(factor_),
                 type_id_ + ": phase out of range");
  phase_ = state[0];
}

// ------------------------------------------------------------------ Upsampler

Upsampler::Upsampler(std::string type_id, int factor)
    : type_id_(std::move(type_id)), factor_(factor) {
  VAPRES_REQUIRE(factor_ >= 1, type_id_ + ": upsample factor must be >= 1");
}

void Upsampler::on_cycle(ModulePorts& ports) {
  if (pending_ > 0) {
    if (ports.can_write(0)) {
      ports.write(0, held_);
      --pending_;
    }
    return;
  }
  if (fire_ready(ports)) {
    held_ = ports.read(0);
    ports.write(0, held_);
    pending_ = factor_ - 1;
  }
}

std::vector<Word> Upsampler::save_state() const {
  return {held_, static_cast<Word>(pending_)};
}

void Upsampler::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.size() == 2, type_id_ + ": expected 2 state words");
  held_ = state[0];
  pending_ = static_cast<int>(state[1]);
  VAPRES_REQUIRE(pending_ >= 0 && pending_ < factor_,
                 type_id_ + ": pending count out of range");
}

void Upsampler::reset() {
  held_ = 0;
  pending_ = 0;
}

// ------------------------------------------------------------------ DelayLine

DelayLine::DelayLine(std::string type_id, int depth)
    : type_id_(std::move(type_id)), depth_(depth) {
  VAPRES_REQUIRE(depth_ >= 1, type_id_ + ": delay depth must be >= 1");
  reset();
}

void DelayLine::reset() {
  buffer_.assign(static_cast<std::size_t>(depth_), 0);
}

void DelayLine::on_cycle(ModulePorts& ports) {
  if (!fire_ready(ports)) return;
  buffer_.push_back(ports.read(0));
  ports.write(0, buffer_.front());
  buffer_.pop_front();
}

std::vector<Word> DelayLine::save_state() const {
  return std::vector<Word>(buffer_.begin(), buffer_.end());
}

void DelayLine::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(static_cast<int>(state.size()) == depth_,
                 type_id_ + ": state size must equal delay depth");
  buffer_.assign(state.begin(), state.end());
}

// ------------------------------------------------------------------- Checksum

Checksum::Checksum(std::string type_id) : type_id_(std::move(type_id)) {}

void Checksum::on_cycle(ModulePorts& ports) {
  if (!fire_ready(ports)) return;
  const Word in = ports.read(0);
  sum_ += in;
  ports.write(0, in);
}

std::vector<Word> Checksum::save_state() const {
  return {static_cast<Word>(sum_ & 0xFFFFFFFFu),
          static_cast<Word>(sum_ >> 32)};
}

void Checksum::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.size() == 2, type_id_ + ": expected 2 state words");
  sum_ = (static_cast<std::uint64_t>(state[1]) << 32) | state[0];
}

// --------------------------------------------------------------------- Adder2

void Adder2::on_cycle(ModulePorts& ports) {
  if (ports.can_read(0) && ports.can_read(1) && ports.can_write(0)) {
    ports.write(0, ports.read(0) + ports.read(1));
  }
}

// ------------------------------------------------------------------ Splitter2

void Splitter2::on_cycle(ModulePorts& ports) {
  if (ports.can_read(0) && ports.can_write(0) && ports.can_write(1)) {
    const Word in = ports.read(0);
    ports.write(0, in);
    ports.write(1, in);
  }
}

// ------------------------------------------------------------------ Threshold

Threshold::Threshold(std::string type_id, Word threshold)
    : type_id_(std::move(type_id)), threshold_(threshold) {}

void Threshold::on_cycle(ModulePorts& ports) {
  if (!ports.can_read(0) || !ports.can_write(0)) return;
  const Word in = ports.read(0);
  if ((in & 0x7FFFFFFFu) >= threshold_) {
    ports.write(0, in);
    ++passed_;
  } else {
    ++suppressed_;
  }
}

std::vector<Word> Threshold::save_state() const {
  return {passed_, suppressed_};
}

void Threshold::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.size() == 2, type_id_ + ": expected 2 state words");
  passed_ = state[0];
  suppressed_ = state[1];
}

void Threshold::reset() {
  passed_ = 0;
  suppressed_ = 0;
}

// ------------------------------------------------------------------ IirBiquad

IirBiquad::IirBiquad(std::string type_id, Coefficients coeffs)
    : type_id_(std::move(type_id)), coeffs_(coeffs) {}

void IirBiquad::on_cycle(ModulePorts& ports) {
  if (!fire_ready(ports)) return;
  const auto x0 = static_cast<std::int32_t>(ports.read(0));
  std::int64_t acc = 0;
  acc += static_cast<std::int64_t>(coeffs_.b0) * x0;
  acc += static_cast<std::int64_t>(coeffs_.b1) * x1_;
  acc += static_cast<std::int64_t>(coeffs_.b2) * x2_;
  acc -= static_cast<std::int64_t>(coeffs_.a1) * y1_;
  acc -= static_cast<std::int64_t>(coeffs_.a2) * y2_;
  const auto y0 = static_cast<std::int32_t>(
      static_cast<std::uint64_t>(acc) >> 14);
  x2_ = x1_;
  x1_ = x0;
  y2_ = y1_;
  y1_ = y0;
  ports.write(0, static_cast<Word>(y0));
}

std::vector<Word> IirBiquad::save_state() const {
  return {static_cast<Word>(x1_), static_cast<Word>(x2_),
          static_cast<Word>(y1_), static_cast<Word>(y2_)};
}

void IirBiquad::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.size() == 4, type_id_ + ": expected 4 state words");
  x1_ = static_cast<std::int32_t>(state[0]);
  x2_ = static_cast<std::int32_t>(state[1]);
  y1_ = static_cast<std::int32_t>(state[2]);
  y2_ = static_cast<std::int32_t>(state[3]);
}

void IirBiquad::reset() {
  x1_ = x2_ = y1_ = y2_ = 0;
}

// ------------------------------------------------------------------- Saturate

Saturate::Saturate(std::string type_id, std::int32_t limit)
    : type_id_(std::move(type_id)), limit_(limit) {
  VAPRES_REQUIRE(limit_ > 0, type_id_ + ": limit must be positive");
}

void Saturate::on_cycle(ModulePorts& ports) {
  if (!fire_ready(ports)) return;
  auto v = static_cast<std::int32_t>(ports.read(0));
  if (v > limit_) v = limit_;
  if (v < -limit_) v = -limit_;
  ports.write(0, static_cast<Word>(v));
}

// ------------------------------------------------------------------- PeakHold

PeakHold::PeakHold(std::string type_id) : type_id_(std::move(type_id)) {}

void PeakHold::on_cycle(ModulePorts& ports) {
  if (!fire_ready(ports)) return;
  const Word in = ports.read(0);
  if (in > peak_) peak_ = in;
  ports.write(0, peak_);
}

void PeakHold::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.size() == 1, type_id_ + ": expected 1 state word");
  peak_ = state[0];
}

// ---------------------------------------------------------------- FSL bridges

void FslBridgeOut::on_cycle(ModulePorts& ports) {
  if (ports.can_read(0) && ports.fsl_can_write()) {
    ports.fsl_write(ports.read(0));
  }
}

void FslBridgeIn::on_cycle(ModulePorts& ports) {
  if (!ports.can_write(0)) return;
  if (auto w = ports.fsl_try_read()) {
    ports.write(0, *w);
  }
}

}  // namespace vapres::hwmodule
