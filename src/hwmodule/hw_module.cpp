#include "hwmodule/hw_module.hpp"

#include "sim/check.hpp"

namespace vapres::hwmodule {

void ModuleBehavior::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.empty(),
                 type_id() + " does not accept state registers");
}

}  // namespace vapres::hwmodule
