#include "hwmodule/hw_module.hpp"

#include "sim/check.hpp"

namespace vapres::hwmodule {

void ModuleBehavior::restore_state(std::span<const Word> state) {
  VAPRES_REQUIRE(state.empty(),
                 type_id() + " does not accept state registers");
}

void ModuleBehavior::restore_extra(std::span<const Word> extra) {
  VAPRES_REQUIRE(extra.empty(),
                 type_id() + " does not carry extra snapshot registers");
}

}  // namespace vapres::hwmodule
