// Composite hardware module: several behaviours fused into one PRR.
//
// Application designers commonly fuse a short chain of simple operators
// into one module to save PRRs (the alternative to giving every KPN node
// its own region). CompositeBehavior chains 1-in/1-out stages through
// small internal buffers, fires the stages back-to-front each cycle (so
// a word advances one stage per cycle, like the fused RTL's pipeline
// registers), and frames the concatenated stage states + buffer contents
// as its own state registers — so composites participate fully in the
// Figure 5 switching methodology.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "hwmodule/hw_module.hpp"

namespace vapres::hwmodule {

class CompositeBehavior final : public ModuleBehavior {
 public:
  /// Internal inter-stage buffer depth (pipeline register pairs).
  static constexpr int kBufferDepth = 4;

  /// All stages must be 1-in/1-out behaviours.
  CompositeBehavior(std::string type_id,
                    std::vector<std::unique_ptr<ModuleBehavior>> stages);

  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  bool pipeline_empty() const override;
  std::vector<Word> save_state() const override;
  void restore_state(std::span<const Word> state) override;
  /// Concatenated per-stage extras, framed [count, words...] per stage.
  std::vector<Word> snapshot_extra() const override;
  void restore_extra(std::span<const Word> extra) override;
  void reset() override;
  /// Quiescent only when every stage is and the inter-stage buffers hold
  /// no words still advancing through the pipeline.
  bool quiescent() const override;

  int num_stages() const { return static_cast<int>(stages_.size()); }
  const ModuleBehavior& stage(int index) const;

 private:
  // Adapts one stage's view: input from buffer i (or the real input
  // port), output to buffer i+1 (or the real output port).
  class StagePorts;

  std::string type_id_;
  std::vector<std::unique_ptr<ModuleBehavior>> stages_;
  // buffers_[i] feeds stage i's output into stage i+1; size = stages-1.
  std::vector<std::deque<Word>> buffers_;
};

}  // namespace vapres::hwmodule
