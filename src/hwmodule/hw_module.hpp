// Hardware-module behaviour interface.
//
// Application designers develop hardware modules against FIFO-based ports
// and are insulated from the VAPRES architecture (Section III.B.1 / IV.B):
// a module sees consumer ports (stream in), producer ports (stream out),
// and an FSL pair to/from the MicroBlaze. Blocking-read / blocking-write
// KPN semantics fall out of the modules checking FIFO empty/full before
// acting. A behaviour executes one on_cycle() per edge of its PRR's local
// clock domain.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "comm/flit.hpp"

namespace vapres::hwmodule {

using comm::Word;

/// The port surface a module behaviour programs against. Implemented by
/// the module wrapper, which binds real interfaces behind it.
class ModulePorts {
 public:
  virtual ~ModulePorts() = default;

  virtual int num_inputs() const = 0;
  virtual int num_outputs() const = 0;

  /// Consumer port: words streamed *to* the module.
  virtual bool can_read(int port) const = 0;
  virtual Word read(int port) = 0;

  /// Producer port: words streamed *from* the module.
  virtual bool can_write(int port) const = 0;
  virtual void write(int port, Word w) = 0;

  /// FSL master towards the MicroBlaze (monitoring, state).
  virtual bool fsl_can_write() const = 0;
  virtual void fsl_write(Word w) = 0;

  /// FSL slave from the MicroBlaze (module-directed data; control words
  /// are intercepted by the wrapper before reaching the behaviour).
  virtual std::optional<Word> fsl_try_read() = 0;
};

/// One hardware module's behaviour. Implementations must be deterministic
/// functions of their inputs and internal state.
class ModuleBehavior {
 public:
  virtual ~ModuleBehavior() = default;

  /// Stable identifier matching the module-library netlist entry.
  virtual std::string type_id() const = 0;

  /// One local-clock cycle. KPN discipline: only consume an input word
  /// when the outputs it produces can be written this cycle.
  virtual void on_cycle(ModulePorts& ports) = 0;

  /// True when no partially processed data is held inside the module.
  /// The wrapper uses this during the drain step of module switching.
  virtual bool pipeline_empty() const { return true; }

  /// True when on_cycle() is a state no-op given no readable input word:
  /// nothing buffered awaiting emission, nothing produced spontaneously.
  /// The wrapper only consults this once every consumer FIFO is empty and
  /// uses it to let the PRR's clock domain sleep; behaviours that source
  /// words from elsewhere than the consumer ports must keep the default.
  virtual bool quiescent() const { return false; }

  /// State registers (Section III.B.3): captured from the replaced module
  /// and restored into its replacement.
  virtual std::vector<Word> save_state() const { return {}; }
  virtual void restore_state(std::span<const Word> state);

  /// Registers outside the paper's state-transfer protocol that a
  /// bit-exact checkpoint must still carry (e.g. monitoring phase
  /// counters the r-link frame deliberately omits). Never sent between
  /// modules — only the snap subsystem reads/writes them, always paired
  /// with save_state()/restore_state().
  virtual std::vector<Word> snapshot_extra() const { return {}; }
  virtual void restore_extra(std::span<const Word> extra);

  /// PRR_reset: return to the power-on state.
  virtual void reset() {}
};

}  // namespace vapres::hwmodule
