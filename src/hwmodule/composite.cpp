#include "hwmodule/composite.hpp"

#include "sim/check.hpp"

namespace vapres::hwmodule {

class CompositeBehavior::StagePorts final : public ModulePorts {
 public:
  StagePorts(ModulePorts& outer, std::deque<Word>* in,
             std::deque<Word>* out)
      : outer_(outer), in_(in), out_(out) {}

  int num_inputs() const override { return 1; }
  int num_outputs() const override { return 1; }

  bool can_read(int) const override {
    return in_ != nullptr ? !in_->empty() : outer_.can_read(0);
  }
  Word read(int) override {
    if (in_ == nullptr) return outer_.read(0);
    const Word w = in_->front();
    in_->pop_front();
    return w;
  }
  bool can_write(int) const override {
    return out_ != nullptr
               ? static_cast<int>(out_->size()) < kBufferDepth
               : outer_.can_write(0);
  }
  void write(int, Word w) override {
    if (out_ == nullptr) {
      outer_.write(0, w);
    } else {
      out_->push_back(w);
    }
  }
  bool fsl_can_write() const override { return outer_.fsl_can_write(); }
  void fsl_write(Word w) override { outer_.fsl_write(w); }
  std::optional<Word> fsl_try_read() override {
    // FSL input is not demultiplexed across stages; composites receive
    // module-directed data at the composite level only.
    return std::nullopt;
  }

 private:
  ModulePorts& outer_;
  std::deque<Word>* in_;
  std::deque<Word>* out_;
};

CompositeBehavior::CompositeBehavior(
    std::string type_id, std::vector<std::unique_ptr<ModuleBehavior>> stages)
    : type_id_(std::move(type_id)), stages_(std::move(stages)) {
  VAPRES_REQUIRE(!stages_.empty(), type_id_ + ": composite needs stages");
  for (const auto& s : stages_) {
    VAPRES_REQUIRE(s != nullptr, type_id_ + ": null stage");
  }
  buffers_.resize(stages_.size() - 1);
}

const ModuleBehavior& CompositeBehavior::stage(int index) const {
  VAPRES_REQUIRE(index >= 0 && index < num_stages(),
                 type_id_ + ": stage index out of range");
  return *stages_[static_cast<std::size_t>(index)];
}

void CompositeBehavior::on_cycle(ModulePorts& ports) {
  // Back to front: downstream stages drain their input buffers first,
  // making room for upstream stages in the same cycle — one-word-per-
  // cycle steady-state throughput, like the fused pipeline's registers.
  for (int i = num_stages() - 1; i >= 0; --i) {
    std::deque<Word>* in =
        i == 0 ? nullptr : &buffers_[static_cast<std::size_t>(i - 1)];
    std::deque<Word>* out = i == num_stages() - 1
                                ? nullptr
                                : &buffers_[static_cast<std::size_t>(i)];
    StagePorts stage_ports(ports, in, out);
    stages_[static_cast<std::size_t>(i)]->on_cycle(stage_ports);
  }
}

bool CompositeBehavior::pipeline_empty() const {
  for (const auto& b : buffers_) {
    if (!b.empty()) return false;
  }
  for (const auto& s : stages_) {
    if (!s->pipeline_empty()) return false;
  }
  return true;
}

bool CompositeBehavior::quiescent() const {
  for (const auto& b : buffers_) {
    if (!b.empty()) return false;
  }
  for (const auto& s : stages_) {
    if (!s->quiescent()) return false;
  }
  return true;
}

std::vector<Word> CompositeBehavior::save_state() const {
  // Frame: per stage [len, words...], then per buffer [len, words...].
  std::vector<Word> out;
  for (const auto& s : stages_) {
    const auto st = s->save_state();
    out.push_back(static_cast<Word>(st.size()));
    out.insert(out.end(), st.begin(), st.end());
  }
  for (const auto& b : buffers_) {
    out.push_back(static_cast<Word>(b.size()));
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

void CompositeBehavior::restore_state(std::span<const Word> state) {
  std::size_t cursor = 0;
  const auto take_frame = [&](const char* what) {
    VAPRES_REQUIRE(cursor < state.size(),
                   type_id_ + ": truncated composite state (" + what + ")");
    const std::size_t len = state[cursor++];
    VAPRES_REQUIRE(cursor + len <= state.size(),
                   type_id_ + ": truncated composite state (" + what + ")");
    const auto frame = state.subspan(cursor, len);
    cursor += len;
    return frame;
  };
  for (auto& s : stages_) {
    const auto frame = take_frame("stage");
    if (!frame.empty() || !s->save_state().empty()) {
      s->restore_state(frame);
    }
  }
  for (auto& b : buffers_) {
    const auto frame = take_frame("buffer");
    b.assign(frame.begin(), frame.end());
  }
  VAPRES_REQUIRE(cursor == state.size(),
                 type_id_ + ": trailing words in composite state");
}

std::vector<Word> CompositeBehavior::snapshot_extra() const {
  std::vector<Word> out;
  for (const auto& s : stages_) {
    const auto extra = s->snapshot_extra();
    out.push_back(static_cast<Word>(extra.size()));
    out.insert(out.end(), extra.begin(), extra.end());
  }
  return out;
}

void CompositeBehavior::restore_extra(std::span<const Word> extra) {
  std::size_t cursor = 0;
  for (auto& s : stages_) {
    VAPRES_REQUIRE(cursor < extra.size(),
                   type_id_ + ": truncated composite extra frame");
    const std::size_t len = extra[cursor++];
    VAPRES_REQUIRE(cursor + len <= extra.size(),
                   type_id_ + ": truncated composite extra frame");
    if (len > 0 || !s->snapshot_extra().empty()) {
      s->restore_extra(extra.subspan(cursor, len));
    }
    cursor += len;
  }
  VAPRES_REQUIRE(cursor == extra.size(),
                 type_id_ + ": trailing words in composite extra frame");
}

void CompositeBehavior::reset() {
  for (auto& s : stages_) s->reset();
  for (auto& b : buffers_) b.clear();
}

}  // namespace vapres::hwmodule
