// Built-in hardware-module behaviours.
//
// A small signal-processing library in the spirit of the paper's digital
// filter examples (Figure 5) and KPN nodes (Figure 4). Arithmetic is
// integer/fixed-point with wrap-around semantics so behaviour is exactly
// reproducible; each class documents its transfer function, state
// registers, and KPN firing rule.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "hwmodule/hw_module.hpp"

namespace vapres::hwmodule {

/// out[n] = in[n]. No state.
class Passthrough final : public ModuleBehavior {
 public:
  std::string type_id() const override { return "passthrough"; }
  void on_cycle(ModulePorts& ports) override;
  bool quiescent() const override { return true; }
};

/// out[n] = (in[n] * multiplier) >> shift, wrap-around.
/// State registers: {multiplier}.
class Gain final : public ModuleBehavior {
 public:
  Gain(std::string type_id, Word multiplier, int shift);
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  std::vector<Word> save_state() const override { return {multiplier_}; }
  void restore_state(std::span<const Word> state) override;
  void reset() override {}
  bool quiescent() const override { return true; }

  Word multiplier() const { return multiplier_; }

 private:
  std::string type_id_;
  Word multiplier_;
  int shift_;
};

/// out[n] = in[n] + offset, wrap-around. State registers: {offset}.
class AddOffset final : public ModuleBehavior {
 public:
  AddOffset(std::string type_id, Word offset);
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  std::vector<Word> save_state() const override { return {offset_}; }
  void restore_state(std::span<const Word> state) override;
  bool quiescent() const override { return true; }

 private:
  std::string type_id_;
  Word offset_;
};

/// Moving average over a power-of-two window (zero-initialized delay
/// line): out[n] = (sum of the last W inputs) >> log2(W).
/// State registers: the delay line, oldest first — restoring them into a
/// different window length is rejected.
/// Optionally emits a monitoring word (the current average) to the
/// MicroBlaze every `monitor_interval` samples (0 = never), as the
/// filters in Figure 5 do (step 2).
class MovingAverage final : public ModuleBehavior {
 public:
  MovingAverage(std::string type_id, int window_log2,
                int monitor_interval = 0);
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  std::vector<Word> save_state() const override;
  void restore_state(std::span<const Word> state) override;
  /// The monitoring phase counter, which the r-link state frame omits
  /// (a replacement module restarts its monitor cadence) but a
  /// bit-exact checkpoint must preserve.
  std::vector<Word> snapshot_extra() const override;
  void restore_extra(std::span<const Word> extra) override;
  void reset() override;
  bool quiescent() const override { return true; }

  int window() const { return 1 << window_log2_; }

 private:
  Word current_average() const;

  std::string type_id_;
  int window_log2_;
  int monitor_interval_;
  std::deque<Word> line_;
  std::uint64_t sum_ = 0;
  std::uint64_t samples_ = 0;
};

/// Direct-form FIR with Q15 coefficients:
/// out[n] = (sum_i taps[i] * in[n-i]) >> 15, wrap-around, zero-initial
/// delay line. State registers: the delay line, newest first.
class FirFilter final : public ModuleBehavior {
 public:
  FirFilter(std::string type_id, std::vector<std::int32_t> taps_q15);
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  std::vector<Word> save_state() const override;
  void restore_state(std::span<const Word> state) override;
  void reset() override;
  bool quiescent() const override { return true; }

  const std::vector<std::int32_t>& taps() const { return taps_; }

 private:
  std::string type_id_;
  std::vector<std::int32_t> taps_;
  std::vector<Word> line_;  // newest first
};

/// Keeps one input word of every `factor`. State registers: {phase}.
class Decimator final : public ModuleBehavior {
 public:
  Decimator(std::string type_id, int factor);
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  std::vector<Word> save_state() const override { return {phase_}; }
  void restore_state(std::span<const Word> state) override;
  void reset() override { phase_ = 0; }
  bool quiescent() const override { return true; }

 private:
  std::string type_id_;
  int factor_;
  Word phase_ = 0;
};

/// Repeats each input word `factor` times. Holds a word while repeating,
/// so pipeline_empty() is false mid-burst.
class Upsampler final : public ModuleBehavior {
 public:
  Upsampler(std::string type_id, int factor);
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  bool pipeline_empty() const override { return pending_ == 0; }
  std::vector<Word> save_state() const override;
  void restore_state(std::span<const Word> state) override;
  void reset() override;
  /// Mid-burst the held word still has copies to emit without new input.
  bool quiescent() const override { return pending_ == 0; }

 private:
  std::string type_id_;
  int factor_;
  Word held_ = 0;
  int pending_ = 0;
};

/// out[n] = in[n - depth] (zeros before). State: the buffer, oldest first.
class DelayLine final : public ModuleBehavior {
 public:
  DelayLine(std::string type_id, int depth);
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  std::vector<Word> save_state() const override;
  void restore_state(std::span<const Word> state) override;
  void reset() override;
  bool quiescent() const override { return true; }

 private:
  std::string type_id_;
  int depth_;
  std::deque<Word> buffer_;
};

/// Passes data through while accumulating a wrap-around sum.
/// State registers: {checksum_low, checksum_high}.
class Checksum final : public ModuleBehavior {
 public:
  explicit Checksum(std::string type_id = "checksum");
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  std::vector<Word> save_state() const override;
  void restore_state(std::span<const Word> state) override;
  void reset() override { sum_ = 0; }
  bool quiescent() const override { return true; }

  std::uint64_t sum() const { return sum_; }

 private:
  std::string type_id_;
  std::uint64_t sum_ = 0;
};

/// Two-input adder: out[n] = a[n] + b[n] (wrap). Fires only when both
/// inputs have data (KPN blocking read on both ports).
class Adder2 final : public ModuleBehavior {
 public:
  std::string type_id() const override { return "adder2"; }
  void on_cycle(ModulePorts& ports) override;
  bool quiescent() const override { return true; }
};

/// One-input, two-output splitter: copies each word to both outputs.
class Splitter2 final : public ModuleBehavior {
 public:
  std::string type_id() const override { return "splitter2"; }
  void on_cycle(ModulePorts& ports) override;
  bool quiescent() const override { return true; }
};

/// Emits only words whose low 31 bits (as magnitude) reach `threshold`;
/// counts passed/suppressed words. State: {passed, suppressed}.
class Threshold final : public ModuleBehavior {
 public:
  Threshold(std::string type_id, Word threshold);
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  std::vector<Word> save_state() const override;
  void restore_state(std::span<const Word> state) override;
  void reset() override;
  bool quiescent() const override { return true; }

 private:
  std::string type_id_;
  Word threshold_;
  Word passed_ = 0;
  Word suppressed_ = 0;
};

/// Direct-form-I IIR biquad with Q14 coefficients:
/// y[n] = (b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]) >> 14
/// (wrap-around, signed arithmetic). State registers: {x1, x2, y1, y2}.
class IirBiquad final : public ModuleBehavior {
 public:
  struct Coefficients {
    std::int32_t b0, b1, b2, a1, a2;  // Q14
  };

  IirBiquad(std::string type_id, Coefficients coeffs);
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  std::vector<Word> save_state() const override;
  void restore_state(std::span<const Word> state) override;
  void reset() override;
  bool quiescent() const override { return true; }

  const Coefficients& coefficients() const { return coeffs_; }

 private:
  std::string type_id_;
  Coefficients coeffs_;
  std::int32_t x1_ = 0, x2_ = 0, y1_ = 0, y2_ = 0;
};

/// Clamps samples (as signed 32-bit) into [-limit, +limit]. Stateless.
class Saturate final : public ModuleBehavior {
 public:
  Saturate(std::string type_id, std::int32_t limit);
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  bool quiescent() const override { return true; }

 private:
  std::string type_id_;
  std::int32_t limit_;
};

/// Emits the running maximum of the input (unsigned compare).
/// State registers: {peak}.
class PeakHold final : public ModuleBehavior {
 public:
  explicit PeakHold(std::string type_id = "peak_hold");
  std::string type_id() const override { return type_id_; }
  void on_cycle(ModulePorts& ports) override;
  std::vector<Word> save_state() const override { return {peak_}; }
  void restore_state(std::span<const Word> state) override;
  void reset() override { peak_ = 0; }
  bool quiescent() const override { return true; }

 private:
  std::string type_id_;
  Word peak_ = 0;
};

/// Stream -> MicroBlaze bridge: forwards consumer-port words onto the
/// r-link FSL. The hardware half of a *software* KPN node (Figure 4 shows
/// KPN nodes running on the MicroBlaze connected through FSLs).
class FslBridgeOut final : public ModuleBehavior {
 public:
  std::string type_id() const override { return "fsl_bridge_out"; }
  void on_cycle(ModulePorts& ports) override;
  bool quiescent() const override { return true; }
};

/// MicroBlaze -> stream bridge: forwards t-link FSL words (non-control
/// range) onto producer port 0. The other half of a software KPN node.
class FslBridgeIn final : public ModuleBehavior {
 public:
  std::string type_id() const override { return "fsl_bridge_in"; }
  void on_cycle(ModulePorts& ports) override;
  /// Sources words from the t-link FSL, not the consumer ports — but the
  /// wrapper stays awake whenever that FSL is readable, so idle is idle.
  bool quiescent() const override { return true; }
};

}  // namespace vapres::hwmodule
