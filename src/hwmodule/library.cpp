#include "hwmodule/library.hpp"

#include "hwmodule/modules.hpp"
#include "sim/check.hpp"

namespace vapres::hwmodule {

void ModuleLibrary::register_module(NetlistInfo info) {
  VAPRES_REQUIRE(!info.type_id.empty(), "netlist needs a type id");
  VAPRES_REQUIRE(info.factory != nullptr,
                 info.type_id + ": netlist needs a factory");
  VAPRES_REQUIRE(info.num_inputs >= 0 && info.num_outputs >= 0,
                 info.type_id + ": negative port count");
  VAPRES_REQUIRE(netlists_.count(info.type_id) == 0,
                 "module already registered: " + info.type_id);
  netlists_.emplace(info.type_id, std::move(info));
}

bool ModuleLibrary::contains(const std::string& type_id) const {
  return netlists_.count(type_id) > 0;
}

const NetlistInfo& ModuleLibrary::info(const std::string& type_id) const {
  auto it = netlists_.find(type_id);
  VAPRES_REQUIRE(it != netlists_.end(),
                 "module not in library: " + type_id);
  return it->second;
}

std::unique_ptr<ModuleBehavior> ModuleLibrary::instantiate(
    const std::string& type_id) const {
  return info(type_id).factory();
}

std::vector<std::string> ModuleLibrary::list() const {
  std::vector<std::string> ids;
  ids.reserve(netlists_.size());
  for (const auto& [id, info] : netlists_) ids.push_back(id);
  return ids;
}

ModuleLibrary ModuleLibrary::standard() {
  using fabric::ResourceVector;
  ModuleLibrary lib;

  // Slice footprints are representative Virtex-4 figures for the given
  // structure (taps * MAC slices + control), sized so the larger filters
  // approach the prototype's 640-slice PRR capacity. Footprints are
  // slices-only: PRR rectangles provide CLB fabric, while BlockRAM/DSP
  // columns are charged to the static region in this model (module
  // buffers use distributed RAM).
  lib.register_module({"passthrough", "wire with handshaking",
                       ResourceVector{20, 0, 0}, 1, 1,
                       [] { return std::make_unique<Passthrough>(); }});
  lib.register_module({"gain_x2", "Q16 gain of 2.0",
                       ResourceVector{90, 0, 0}, 1, 1, [] {
                         return std::make_unique<Gain>("gain_x2", 2u << 16,
                                                       16);
                       }});
  lib.register_module({"gain_half", "Q16 gain of 0.5",
                       ResourceVector{90, 0, 0}, 1, 1, [] {
                         return std::make_unique<Gain>("gain_half", 1u << 15,
                                                       16);
                       }});
  lib.register_module({"offset_100", "adds 100 to every sample",
                       ResourceVector{50, 0, 0}, 1, 1, [] {
                         return std::make_unique<AddOffset>("offset_100",
                                                            100);
                       }});
  lib.register_module({"ma4", "moving average, window 4, monitored",
                       ResourceVector{180, 0, 0}, 1, 1, [] {
                         return std::make_unique<MovingAverage>("ma4", 2,
                                                                256);
                       }});
  lib.register_module({"ma8", "moving average, window 8, monitored",
                       ResourceVector{300, 0, 0}, 1, 1, [] {
                         return std::make_unique<MovingAverage>("ma8", 3,
                                                                256);
                       }});
  lib.register_module(
      {"fir4_smooth", "4-tap Q15 smoothing FIR", ResourceVector{350, 0, 0},
       1, 1, [] {
         return std::make_unique<FirFilter>(
             "fir4_smooth", std::vector<std::int32_t>{8192, 8192, 8192, 8192});
       }});
  lib.register_module(
      {"fir8_lowpass", "8-tap Q15 low-pass FIR", ResourceVector{620, 0, 0},
       1, 1, [] {
         return std::make_unique<FirFilter>(
             "fir8_lowpass",
             std::vector<std::int32_t>{1024, 3072, 5120, 7168, 7168, 5120,
                                       3072, 1024});
       }});
  lib.register_module(
      {"fir16_sharp", "16-tap Q15 FIR (needs a large PRR)",
       ResourceVector{1200, 0, 0}, 1, 1, [] {
         std::vector<std::int32_t> taps(16, 2048);
         return std::make_unique<FirFilter>("fir16_sharp", std::move(taps));
       }});
  lib.register_module({"decim2", "decimate by 2",
                       ResourceVector{40, 0, 0}, 1, 1,
                       [] { return std::make_unique<Decimator>("decim2", 2); },
                       /*rate_in=*/2, /*rate_out=*/1});
  lib.register_module({"decim4", "decimate by 4",
                       ResourceVector{40, 0, 0}, 1, 1,
                       [] { return std::make_unique<Decimator>("decim4", 4); },
                       /*rate_in=*/4, /*rate_out=*/1});
  lib.register_module({"upsample2", "repeat each sample twice",
                       ResourceVector{60, 0, 0}, 1, 1,
                       [] { return std::make_unique<Upsampler>("upsample2", 2); },
                       /*rate_in=*/1, /*rate_out=*/2});
  lib.register_module({"delay16", "16-sample delay line",
                       ResourceVector{120, 0, 0}, 1, 1, [] {
                         return std::make_unique<DelayLine>("delay16", 16);
                       }});
  lib.register_module({"checksum", "passthrough with running checksum",
                       ResourceVector{70, 0, 0}, 1, 1,
                       [] { return std::make_unique<Checksum>(); }});
  lib.register_module({"adder2", "two-stream adder",
                       ResourceVector{50, 0, 0}, 2, 1,
                       [] { return std::make_unique<Adder2>(); }});
  lib.register_module({"splitter2", "one-to-two splitter",
                       ResourceVector{40, 0, 0}, 1, 2,
                       [] { return std::make_unique<Splitter2>(); }});
  lib.register_module({"fsl_bridge_out", "stream to MicroBlaze bridge",
                       ResourceVector{30, 0, 0}, 1, 0,
                       [] { return std::make_unique<FslBridgeOut>(); }});
  lib.register_module({"fsl_bridge_in", "MicroBlaze to stream bridge",
                       ResourceVector{30, 0, 0}, 0, 1,
                       [] { return std::make_unique<FslBridgeIn>(); }});
  lib.register_module(
      {"iir_dcblock", "DC-blocking IIR biquad (Q14)",
       ResourceVector{420, 0, 0}, 1, 1, [] {
         // y[n] = x[n] - x[n-1] + 0.9375 y[n-1]  (high-pass DC blocker)
         return std::make_unique<IirBiquad>(
             "iir_dcblock",
             IirBiquad::Coefficients{16384, -16384, 0, -15360, 0});
       }});
  lib.register_module({"saturate_4k", "clamp magnitude to +/-4096",
                       ResourceVector{45, 0, 0}, 1, 1, [] {
                         return std::make_unique<Saturate>("saturate_4k",
                                                           4096);
                       }});
  lib.register_module({"peak_hold", "running-maximum detector",
                       ResourceVector{55, 0, 0}, 1, 1,
                       [] { return std::make_unique<PeakHold>(); }});
  lib.register_module({"threshold_1k", "suppress samples below 1024",
                       ResourceVector{60, 0, 0}, 1, 1, [] {
                         return std::make_unique<Threshold>("threshold_1k",
                                                            1024);
                       }});
  return lib;
}

}  // namespace vapres::hwmodule
