#include "hwmodule/wrapper.hpp"

#include "sim/check.hpp"

namespace vapres::hwmodule {

ModuleWrapper::ModuleWrapper(std::string name,
                             std::vector<comm::ConsumerInterface*> inputs,
                             std::vector<comm::ProducerInterface*> outputs,
                             comm::FslLink* to_mb, comm::FslLink* from_mb)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      to_mb_(to_mb),
      from_mb_(from_mb) {
  for (auto* in : inputs_) {
    VAPRES_REQUIRE(in != nullptr, name_ + ": null consumer interface");
  }
  for (auto* out : outputs_) {
    VAPRES_REQUIRE(out != nullptr, name_ + ": null producer interface");
  }
  VAPRES_REQUIRE(to_mb_ != nullptr && from_mb_ != nullptr,
                 name_ + ": wrapper needs both FSL links");
  // Writes from the static region (fabric delivering words, MicroBlaze
  // sending control) and drains of the producer FIFOs (freeing space a
  // stalled behaviour waits for) must re-arm the wrapper's clock domain.
  for (auto* in : inputs_) in->fifo().add_wake_target(this);
  for (auto* out : outputs_) out->fifo().add_wake_target(this);
  from_mb_->add_wake_target(this);
}

void ModuleWrapper::load(std::unique_ptr<ModuleBehavior> behavior) {
  VAPRES_REQUIRE(behavior != nullptr, name_ + ": cannot load null module");
  behavior_ = std::move(behavior);
  phase_ = Phase::kRunning;
  words_processed_ = 0;
  state_out_.clear();
  state_cursor_ = 0;
  load_remaining_ = -1;
  state_in_.clear();
  wake();
}

std::unique_ptr<ModuleBehavior> ModuleWrapper::unload() {
  phase_ = Phase::kIdle;
  wake();
  return std::move(behavior_);
}

void ModuleWrapper::reset() {
  if (behavior_) {
    behavior_->reset();
    phase_ = Phase::kRunning;
  } else {
    phase_ = Phase::kIdle;
  }
  words_processed_ = 0;
  state_out_.clear();
  state_cursor_ = 0;
  load_remaining_ = -1;
  state_in_.clear();
  wake();
}

bool ModuleWrapper::quiescent() const {
  if (in_reset_ || isolated_ || behavior_ == nullptr) return true;
  if (from_mb_->can_read()) return false;  // control or data word pending
  // Mid LOAD_STATE transfer the wrapper only waits for the next FSL word.
  if (load_remaining_ != -1) return true;
  switch (phase_) {
    case Phase::kIdle:
    case Phase::kDone:
      return true;
    case Phase::kRunning:
      break;
    default:
      return false;  // switching protocol still making progress
  }
  for (const auto* in : inputs_) {
    if (!in->fifo().empty()) return false;
  }
  return behavior_->quiescent();
}

int ModuleWrapper::num_inputs() const {
  return static_cast<int>(inputs_.size());
}
int ModuleWrapper::num_outputs() const {
  return static_cast<int>(outputs_.size());
}

bool ModuleWrapper::can_read(int port) const {
  VAPRES_REQUIRE(port >= 0 && port < num_inputs(), name_ + ": bad in port");
  return !inputs_[static_cast<std::size_t>(port)]->fifo().empty();
}

Word ModuleWrapper::read(int port) {
  VAPRES_REQUIRE(port >= 0 && port < num_inputs(), name_ + ": bad in port");
  if (port == 0) ++words_processed_;
  return inputs_[static_cast<std::size_t>(port)]->fifo().pop();
}

bool ModuleWrapper::can_write(int port) const {
  VAPRES_REQUIRE(port >= 0 && port < num_outputs(), name_ + ": bad out port");
  return !outputs_[static_cast<std::size_t>(port)]->fifo().full();
}

void ModuleWrapper::write(int port, Word w) {
  VAPRES_REQUIRE(port >= 0 && port < num_outputs(), name_ + ": bad out port");
  outputs_[static_cast<std::size_t>(port)]->fifo().push(w);
}

bool ModuleWrapper::fsl_can_write() const { return to_mb_->can_write(); }
void ModuleWrapper::fsl_write(Word w) { to_mb_->write(w); }
std::optional<Word> ModuleWrapper::fsl_try_read() {
  // Control words never reach the behaviour; handle_control consumed them.
  if (!from_mb_->can_read()) return std::nullopt;
  const Word w = from_mb_->peek();
  if ((w & 0xFFFF0000u) == 0xC0DE0000u) return std::nullopt;
  return from_mb_->read();
}

bool ModuleWrapper::drained() const {
  for (const auto* in : inputs_) {
    if (!in->fifo().empty()) return false;
  }
  return behavior_ == nullptr || behavior_->pipeline_empty();
}

void ModuleWrapper::handle_control() {
  if (!from_mb_->can_read()) return;

  // Complete an in-progress LOAD_STATE transfer first.
  if (load_remaining_ == -2) {
    load_remaining_ = static_cast<int>(from_mb_->read());
    if (load_remaining_ == 0) {
      // Empty frame: the replaced module was stateless — nothing to
      // restore (restore_state on a fresh module would be a misuse).
      load_remaining_ = -1;
    }
    return;
  }
  if (load_remaining_ > 0) {
    state_in_.push_back(from_mb_->read());
    if (--load_remaining_ == 0) {
      behavior_->restore_state(state_in_);
      state_in_.clear();
      load_remaining_ = -1;
    }
    return;
  }

  const Word w = from_mb_->peek();
  if (w == ctrl::kCmdFlush) {
    from_mb_->read();
    VAPRES_REQUIRE(behavior_ != nullptr,
                   name_ + ": FLUSH with no module loaded");
    phase_ = Phase::kDraining;
  } else if (w == ctrl::kCmdLoadState) {
    from_mb_->read();
    VAPRES_REQUIRE(behavior_ != nullptr,
                   name_ + ": LOAD_STATE with no module loaded");
    state_in_.clear();
    load_remaining_ = -2;  // next word is the count
  }
  // Non-control words are left for the behaviour's fsl_try_read().
}

void ModuleWrapper::commit() {
  if (in_reset_ || isolated_ || behavior_ == nullptr) return;

  handle_control();

  // While a LOAD_STATE transfer is in progress the module must not fire:
  // it would process data with pre-restore state (Figure 5 step 7 happens
  // before the module joins the processing path).
  if (load_remaining_ != -1) return;

  switch (phase_) {
    case Phase::kIdle:
    case Phase::kDone:
      return;

    case Phase::kRunning:
      behavior_->on_cycle(*this);
      return;

    case Phase::kDraining:
      // Step 5 precondition: "filter A continues processing the remaining
      // data words present in the consumer interface FIFO".
      if (!drained()) {
        behavior_->on_cycle(*this);
        return;
      }
      phase_ = Phase::kSendEos;
      [[fallthrough]];

    case Phase::kSendEos:
      if (!outputs_.empty()) {
        if (!can_write(0)) return;  // wait for space
        write(0, comm::kEndOfStreamWord);
      }
      // Stage the state registers for step 6.
      state_out_ = behavior_->save_state();
      state_cursor_ = 0;
      if (fsl_can_write()) fsl_write(ctrl::kEosSentNote);
      phase_ = Phase::kSendState;
      return;

    case Phase::kSendState: {
      // Frame: STATE_HEADER, count, then the words; one word per cycle.
      const std::size_t frame_len = 2 + state_out_.size();
      if (state_cursor_ < frame_len && fsl_can_write()) {
        if (state_cursor_ == 0) {
          fsl_write(ctrl::kStateHeader);
        } else if (state_cursor_ == 1) {
          fsl_write(static_cast<Word>(state_out_.size()));
        } else {
          fsl_write(state_out_[state_cursor_ - 2]);
        }
        ++state_cursor_;
      }
      if (state_cursor_ >= frame_len) phase_ = Phase::kDone;
      return;
    }
  }
}

}  // namespace vapres::hwmodule
