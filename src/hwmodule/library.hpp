// Module library: the application flow's netlist registry.
//
// During the application flow (Section IV.B), each hardware module is
// synthesized once per PRR it may occupy; the library is the model's
// synthesis result store: per module, a resource footprint, the port
// signature (number of consumer/producer channels the wrapper must bind),
// and a factory producing the behaviour. The resource footprints are used
// by bitgen (does the module fit the PRR?) and by the fragmentation
// experiment (wasted slices per PRR).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fabric/resources.hpp"
#include "hwmodule/hw_module.hpp"

namespace vapres::hwmodule {

struct NetlistInfo {
  std::string type_id;
  std::string description;
  fabric::ResourceVector resources;
  int num_inputs = 1;   ///< consumer ports required (<= RSB ki)
  int num_outputs = 1;  ///< producer ports required (<= RSB ko)
  std::function<std::unique_ptr<ModuleBehavior>()> factory;
  /// SDF-style rate signature: the module emits `rate_out` words per
  /// `rate_in` words consumed (per input port). 1:1 for plain filters,
  /// M:1 for decimators, 1:M for upsamplers. Used by flow::RateAnalyzer
  /// to derive per-PRR local-clock requirements.
  int rate_in = 1;
  int rate_out = 1;
};

class ModuleLibrary {
 public:
  ModuleLibrary() = default;

  /// A library pre-populated with the built-in behaviours of modules.hpp.
  static ModuleLibrary standard();

  void register_module(NetlistInfo info);
  bool contains(const std::string& type_id) const;
  const NetlistInfo& info(const std::string& type_id) const;
  std::unique_ptr<ModuleBehavior> instantiate(const std::string& type_id) const;
  std::vector<std::string> list() const;

 private:
  std::map<std::string, NetlistInfo> netlists_;
};

}  // namespace vapres::hwmodule
