// Module wrapper (Section III.B.1 / IV.B).
//
// Application designers "encapsulate hardware modules inside special
// module wrappers to connect the original module's input and output ports
// with the external FIFO-based ports". The wrapper here additionally
// implements the generic parts of the switching methodology (Figure 5):
//
//   * on the FLUSH command from the MicroBlaze (t-link), the wrapper lets
//     the module drain its consumer FIFO and internal pipeline, emits the
//     special end-of-stream word on producer port 0 (step 5), then sends
//     the module's state registers to the MicroBlaze over the r-link
//     framed as [STATE_HEADER, count, words...] (step 6);
//   * on LOAD_STATE [count, words...], it restores the registers into a
//     freshly placed module (step 7).
//
// Control words live in a reserved 0xC0DExxxx range of the FSL word space;
// the model's software modules never send raw data in that range on
// t-links (see DESIGN.md on model simplifications).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/fsl.hpp"
#include "comm/module_interface.hpp"
#include "hwmodule/hw_module.hpp"
#include "sim/component.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::hwmodule {

/// Reserved FSL control words.
namespace ctrl {
inline constexpr Word kCmdFlush = 0xC0DE0001u;      ///< MB -> module
inline constexpr Word kCmdLoadState = 0xC0DE0002u;  ///< MB -> module
inline constexpr Word kStateHeader = 0xC0DE0003u;   ///< module -> MB
inline constexpr Word kEosSentNote = 0xC0DE0004u;   ///< module -> MB
}  // namespace ctrl

/// Binds a ModuleBehavior to consumer/producer interfaces and FSL links.
/// Clocked in the PRR's local clock domain.
class ModuleWrapper final : public sim::Clocked, private ModulePorts {
 public:
  ModuleWrapper(std::string name,
                std::vector<comm::ConsumerInterface*> inputs,
                std::vector<comm::ProducerInterface*> outputs,
                comm::FslLink* to_mb, comm::FslLink* from_mb);

  std::string name() const override { return name_; }

  /// Loads a behaviour (PRR reconfiguration completed). Replaces any
  /// previous behaviour.
  void load(std::unique_ptr<ModuleBehavior> behavior);
  /// Unloads the behaviour (PRR holds no module / is being reconfigured).
  std::unique_ptr<ModuleBehavior> unload();

  bool loaded() const { return behavior_ != nullptr; }
  ModuleBehavior* behavior() { return behavior_.get(); }
  const ModuleBehavior* behavior() const { return behavior_.get(); }

  /// PRR_reset (PRSocket bit 1): reset behaviour and wrapper protocol.
  void reset();

  /// Held in reset? While asserted, the wrapper does nothing per cycle.
  void set_reset(bool asserted) {
    in_reset_ = asserted;
    wake();
  }
  bool in_reset() const { return in_reset_; }

  /// Slice-macro isolation (PRSocket SM_en = 0): while isolated, the
  /// module cannot reach the static region — no FIFO or FSL activity.
  void set_isolated(bool isolated) {
    isolated_ = isolated;
    wake();
  }
  bool isolated() const { return isolated_; }

  enum class Phase { kIdle, kRunning, kDraining, kSendEos, kSendState, kDone };
  Phase phase() const { return phase_; }

  /// Words the behaviour has consumed from port 0 (monitoring aid).
  std::uint64_t words_processed() const { return words_processed_; }

  void eval() override {}
  void commit() override;
  /// True when commit() would be a state no-op: held in reset/isolation,
  /// no behaviour, no FSL word pending, no words to drain, and the
  /// behaviour itself has nothing buffered. Re-armed by writes to the
  /// consumer FIFOs or the t-link FSL (wired in the constructor).
  bool quiescent() const override;

 private:
  // Checkpoint/restore overlays the protocol phase and in-flight
  // state-frame buffers (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  // ModulePorts implementation (behaviour-facing).
  int num_inputs() const override;
  int num_outputs() const override;
  bool can_read(int port) const override;
  Word read(int port) override;
  bool can_write(int port) const override;
  void write(int port, Word w) override;
  bool fsl_can_write() const override;
  void fsl_write(Word w) override;
  std::optional<Word> fsl_try_read() override;

  void handle_control();
  bool drained() const;

  std::string name_;
  std::vector<comm::ConsumerInterface*> inputs_;
  std::vector<comm::ProducerInterface*> outputs_;
  comm::FslLink* to_mb_;
  comm::FslLink* from_mb_;
  std::unique_ptr<ModuleBehavior> behavior_;
  Phase phase_ = Phase::kIdle;
  bool in_reset_ = false;
  bool isolated_ = false;
  std::uint64_t words_processed_ = 0;
  std::vector<Word> state_out_;   ///< pending state words to send
  std::size_t state_cursor_ = 0;
  // LOAD_STATE receive progress: -1 none, -2 awaiting count, >=0 remaining.
  int load_remaining_ = -1;
  std::vector<Word> state_in_;
};

}  // namespace vapres::hwmodule
