#include "sched/request.hpp"

namespace vapres::sched {

core::KpnAppSpec AppRequest::to_kpn(int source_iom, int sink_iom) const {
  core::KpnAppSpec spec;
  spec.name = name;
  const int k = static_cast<int>(modules.size());
  for (int i = 0; i < k; ++i) {
    spec.nodes.push_back(core::KpnNodeSpec{node_name(i), modules[i]});
  }
  const std::string src = "iom:" + std::to_string(source_iom);
  const std::string dst = "iom:" + std::to_string(sink_iom);
  if (k == 0) {
    spec.edges.push_back(core::KpnEdgeSpec{src, dst, 0, 0});
    return spec;
  }
  spec.edges.push_back(core::KpnEdgeSpec{src, node_name(0), 0, 0});
  for (int i = 0; i + 1 < k; ++i) {
    spec.edges.push_back(core::KpnEdgeSpec{node_name(i), node_name(i + 1),
                                           0, 0});
  }
  spec.edges.push_back(core::KpnEdgeSpec{node_name(k - 1), dst, 0, 0});
  return spec;
}

const char* verdict_name(AdmissionVerdict v) {
  switch (v) {
    case AdmissionVerdict::kPending: return "pending";
    case AdmissionVerdict::kAdmitted: return "admitted";
    case AdmissionVerdict::kAdmittedAfterDefrag: return "admitted-after-defrag";
    case AdmissionVerdict::kAdmittedAfterPreempt:
      return "admitted-after-preempt";
    case AdmissionVerdict::kRejectedBadSpec: return "rejected-bad-spec";
    case AdmissionVerdict::kRejectedRateInfeasible:
      return "rejected-rate-infeasible";
    case AdmissionVerdict::kRejectedNoIomChannel:
      return "rejected-no-iom-channel";
    case AdmissionVerdict::kRejectedNoPrrFit: return "rejected-no-prr-fit";
    case AdmissionVerdict::kRejectedFragmented: return "rejected-fragmented";
    case AdmissionVerdict::kRejectedNoRoute: return "rejected-no-route";
    case AdmissionVerdict::kRejectedPrFailure: return "rejected-pr-failure";
  }
  return "?";
}

const char* state_name(AppState s) {
  switch (s) {
    case AppState::kQueued: return "queued";
    case AppState::kRunning: return "running";
    case AppState::kRejected: return "rejected";
    case AppState::kPreempted: return "preempted";
    case AppState::kStopped: return "stopped";
  }
  return "?";
}

}  // namespace vapres::sched
