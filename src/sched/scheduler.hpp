// Runtime multi-application scheduler (admission control, online
// placement, relocation-based defragmentation, priority preemption).
//
// The scheduler is the software layer the paper's Section III points at
// but does not elaborate: the MicroBlaze deciding, at runtime, which
// requested streaming applications run on the RSB fabric. Admission of
// one request walks:
//
//   1. spec validation + RateAnalyzer feasibility (a PRR clock from the
//      {clk_a, clk_b} ladder must sustain every module at the requested
//      stream rate);
//   2. IOM source/sink channel allocation;
//   3. placement of the module chain onto free, footprint-compatible
//      PRRs (first-fit or best-fit over a FabricMap copy);
//   4. if fragmented: DefragPlanner picks live relocations, executed
//      hitlessly through the 9-step core::ModuleSwitcher;
//   5. if still stuck and allowed: evict the lowest-priority running
//      app and retry;
//   6. launch — bitstreams materialized from one master per footprint
//      class (bitstream::RelocatingStore), staged to CF + SDRAM,
//      configured with VapresSystem::reconfigure_now, channels routed,
//      the source started.
//
// Every failure path is rolled back (partial launches are torn down,
// aborted relocations leave the donor app streaming untouched), and
// every decision is deterministic given the same submission sequence.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/relocation.hpp"
#include "core/stats.hpp"
#include "core/system.hpp"
#include "flow/rate_analyzer.hpp"
#include "sched/defrag.hpp"
#include "sched/placement.hpp"
#include "sched/request.hpp"

namespace vapres::snap {
class SystemSnapshot;
}

namespace vapres::sched {

class ApplicationScheduler {
 public:
  struct Options {
    int rsb_index = 0;
    PlacementPolicy policy = PlacementPolicy::kBestFit;
    bool enable_defrag = true;
    bool enable_preemption = true;
    /// Live relocations one admission may spend (defrag plan budget).
    int max_defrag_migrations = 4;
    core::ReconfigSource source = core::ReconfigSource::kSdramArray;
    /// Feed the PrefetchEngine with admission-queue and defrag-plan
    /// hints at submit time, so staging overlaps the wait in the queue.
    /// Only consulted under kManaged (the other sources stage
    /// synchronously at launch).
    bool prefetch_hints = true;
  };

  /// Outcome of a probe_admit() dry run: would this request launch right
  /// now, and at what cost? Nothing in the scheduler or the fabric moves
  /// while computing it, so a fleet router can score many fabrics per
  /// submission without perturbing any of them.
  struct AdmitProbe {
    bool admissible = false;
    /// kAdmitted / kAdmittedAfterDefrag when admissible; the blocking
    /// rejection verdict otherwise. Preemption is never considered — a
    /// probe must not promise an eviction it has no authority to make.
    AdmissionVerdict verdict = AdmissionVerdict::kPending;
    std::string reason;
    std::vector<int> prrs;       ///< placement the plan would commit
    int defrag_migrations = 0;   ///< live relocations the plan would spend
    bool iom_available = false;  ///< a source + sink channel pair is free
  };

  explicit ApplicationScheduler(core::VapresSystem& sys);
  ApplicationScheduler(core::VapresSystem& sys, Options options);

  ApplicationScheduler(const ApplicationScheduler&) = delete;
  ApplicationScheduler& operator=(const ApplicationScheduler&) = delete;

  /// Queues a request; returns its app id. Call run_admission() to act.
  int submit(AppRequest request);

  /// Feasibility + placement dry run for `request` with no side effects:
  /// no record is created, no MicroBlaze time is charged, no obs event
  /// is emitted, and the fabric map is only copied. Walks the same
  /// admission steps as try_admit (spec validation, rate feasibility,
  /// IOM availability, placement with defrag planning) minus preemption.
  AdmitProbe probe_admit(const AppRequest& request) const;

  /// Admits queued requests (highest priority first, FIFO within a
  /// priority). Returns the number of apps launched by this call.
  int run_admission();

  /// Gracefully stops a running app and frees its fabric resources.
  void stop(int app_id);

  /// Total apps ever submitted (retired records included).
  int num_apps() const {
    return first_id_ + static_cast<int>(apps_.size());
  }
  /// Records still held in memory (ids >= first_live_id()).
  int live_records() const { return static_cast<int>(apps_.size()); }
  int first_live_id() const { return first_id_; }
  /// Requires first_live_id() <= app_id < num_apps(); retired records
  /// are gone (their contribution lives on in accounting() totals).
  const AppRecord& app(int app_id) const;
  std::vector<int> running_apps() const;
  /// Submitted-but-undecided records still waiting for run_admission().
  int queued_count() const;

  /// Drops terminal records (rejected / stopped / preempted) from the
  /// front of the history, folding their verdicts into retained
  /// aggregate totals. Keeps everything from the oldest still-queued or
  /// still-running app onward, so ids stay dense. Returns the number
  /// retired. A sustained-load driver calls this periodically to hold
  /// scheduler memory (and per-admission scan cost) at O(live apps)
  /// instead of O(lifetimes).
  int retire_terminal();

  /// True once a finite-length source (source_words > 0) emitted all of
  /// its words.
  bool source_done(int app_id) const;

  /// The words this app's sink IOM channel received while the app has
  /// been running (the channel's history is sliced per app, since IOM
  /// channels are reused across admissions).
  std::vector<comm::Word> received_words(int app_id) const;

  const FabricMap& fabric() const { return map_; }
  double fabric_utilization() const { return map_.utilization(); }
  /// IOM channels currently allocated to running apps — the leak-check
  /// counterpart of FabricMap occupancy.
  int busy_source_channels() const;
  int busy_sink_channels() const;
  int total_source_channels() const;
  int total_sink_channels() const;
  /// Source+sink channel pairs still allocatable — the hard cap on
  /// concurrent apps this fabric can host (each app pins one pair).
  int free_channel_pairs() const;

  /// Owning app id per PRR slot (-1 = free) — a read-only occupancy
  /// export for control-plane reconciliation: a restarted fleet agent
  /// checks its journaled app locations against what the fabric
  /// actually hosts.
  std::vector<int> prr_owners() const;

  /// Busy flags per IOM channel, [iom][channel] — the channel-side
  /// reconciliation export matching prr_owners().
  struct ChannelOccupancy {
    std::vector<std::vector<bool>> source;
    std::vector<std::vector<bool>> sink;
  };
  ChannelOccupancy channel_occupancy() const;

  const bitstream::RelocatingStore& store() const { return store_; }

  /// Copies every master bitstream from `other` that this scheduler's
  /// store lacks. A fleet controller seeds the destination scheduler
  /// with the source's masters before a cross-fabric migration, so the
  /// moved app restreams from a relocated master instead of paying a
  /// cold regenerate-and-stage on arrival.
  void adopt_masters(const bitstream::RelocatingStore& other);

  core::SchedulerAccounting accounting() const;

  /// Consecutive admission rejections with no successful launch in
  /// between (zeroed by every launch). The fleet health monitor exports
  /// this as the per-fabric "fleet.<name>.reject_streak" gauge — a
  /// sustained streak is the capacity-exhaustion/degradation signal the
  /// reject-streak SLO rule watches (docs/HEALTH.md).
  int rejection_streak() const { return rejection_streak_; }

 private:
  // Checkpoint/restore overlays app records, channel-busy tables, and
  // aggregate counters, and re-installs running sources' generators with
  // their remaining word budgets (snap/system_snapshot.cpp).
  friend class ::vapres::snap::SystemSnapshot;

  /// Outcome of planning one chain onto a FabricMap copy.
  struct ChainPlan {
    bool ok = false;
    AdmissionVerdict fail_verdict = AdmissionVerdict::kPending;
    std::string reason;
    std::vector<int> prrs;            ///< PRR per chain position
    std::vector<MigrationStep> steps; ///< relocations to execute first
  };

  core::Rsb& rsb() { return sys_.rsb(opt_.rsb_index); }
  const core::Rsb& rsb() const { return sys_.rsb(opt_.rsb_index); }

  bool try_admit(AppRecord& app);
  ChainPlan plan_chain(const AppRecord& app) const;
  bool allocate_ioms(AppRecord& app);
  void free_ioms(const AppRecord& app);
  /// Lowest-priority (then youngest) running app below `priority`.
  int pick_victim(int priority) const;

  /// Executes one planned relocation hitlessly (9-step switch). Returns
  /// false when the spare's PR failed permanently and the switch rolled
  /// back (the donor app keeps streaming on its old PRR).
  bool execute_migration(const MigrationStep& step);

  /// Configures PRRs, routes channels, and starts the source. On any
  /// failure the partial launch is torn down and `app.verdict`/`reason`
  /// say why. Returns success.
  bool launch(AppRecord& app, const std::vector<int>& prrs);

  /// Stops the source, disconnects channels, blanks PRRs, frees IOM
  /// channels and fabric slots, captures final word counts.
  void teardown(AppRecord& app, AppState final_state);

  /// Materializes (module @ prr) from the footprint-class master and
  /// installs it as a CF file through the BitstreamManager. Returns the
  /// relocated bitstream.
  bitstream::PartialBitstream install_bitstream(const std::string& module_id,
                                                int prr);

  /// install_bitstream + residency: under kManaged the cache/prefetcher
  /// own residency; otherwise the array is preloaded for the array path.
  void stage_bitstream(const std::string& module_id, int prr);

  /// Queues prefetch hints for the placement the admission pass would
  /// pick for `app` right now (admission-queue + defrag-plan hints).
  void hint_request(const AppRecord& app);

  /// Isolates, resets, and unloads a vacated PRR site.
  void blank_prr(int prr);

  void set_prr_clock(int prr, double mhz);

  AppRecord& record(int app_id);
  const AppRecord& record(int app_id) const;

  core::VapresSystem& sys_;
  Options opt_;
  FabricMap map_;
  bitstream::RelocatingStore store_;
  flow::RateAnalyzer analyzer_;
  /// Live + recent records; record for app id `i` sits at index
  /// `i - first_id_`. Retired prefixes are popped from the front.
  std::deque<AppRecord> apps_;
  int first_id_ = 0;
  /// Busy flags per IOM producer/consumer channel: [iom][channel].
  std::vector<std::vector<bool>> source_busy_;
  std::vector<std::vector<bool>> sink_busy_;

  int preemptions_ = 0;
  int defrag_migrations_ = 0;
  int rejection_streak_ = 0;
  int migration_rollbacks_ = 0;
  // Aggregate verdicts of retired records (accounting() totals stay
  // exact after retirement; only the per-app rows are dropped).
  int retired_admitted_ = 0;
  int retired_admitted_after_defrag_ = 0;
  int retired_admitted_after_preempt_ = 0;
  int retired_rejected_ = 0;
};

}  // namespace vapres::sched
