// Application requests for the runtime multi-application scheduler.
//
// The scheduler's unit of work is a *streaming application*: a linear
// pipeline of library modules fed by an IOM source channel and drained by
// an IOM sink channel (iom -> m1 -> ... -> mk -> iom), with a priority
// class and a stream rate. Linear chains keep the hitless 9-step
// switching methodology applicable for relocation (the EOS word of a
// draining tail module is observable at the sink IOM); general DAGs
// still run through core::RuntimeAssembler outside the scheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/assembler.hpp"
#include "core/channel.hpp"
#include "sim/time.hpp"

namespace vapres::sched {

/// One application request, submitted to the scheduler's queue.
struct AppRequest {
  std::string name;
  /// Module chain in stream order (front consumes the source stream).
  std::vector<std::string> modules;
  /// Higher priorities may preempt lower ones under contention.
  int priority = 1;
  /// The external source produces one word per this many system cycles
  /// (the stream-rate class; feeds the RateAnalyzer feasibility check).
  int source_interval_cycles = 4;
  /// Words the source emits before ending the stream; 0 = unbounded.
  std::uint64_t source_words = 0;

  /// The request as a KPN spec against the given IOM endpoints, for
  /// validation and rate analysis (flow::RateAnalyzer::analyze).
  core::KpnAppSpec to_kpn(int source_iom, int sink_iom) const;

  /// Node name of chain position `i` in the to_kpn() spec.
  static std::string node_name(int i) { return "n" + std::to_string(i); }
};

/// Where an admission attempt ended up.
enum class AdmissionVerdict {
  kPending = 0,            ///< still queued, not yet decided
  kAdmitted,               ///< placed directly onto free PRRs
  kAdmittedAfterDefrag,    ///< placed after live-module relocation
  kAdmittedAfterPreempt,   ///< placed after evicting lower priority
  kRejectedBadSpec,        ///< unknown module / inconsistent rates
  kRejectedRateInfeasible, ///< no PRR clock satisfies the stream rate
  kRejectedNoIomChannel,   ///< all IOM source or sink channels busy
  kRejectedNoPrrFit,       ///< some module fits no PRR of the fabric
  kRejectedFragmented,     ///< capacity exists, defrag could not free it
  kRejectedNoRoute,        ///< switch-box lane capacity exhausted
  kRejectedPrFailure,      ///< permanent PR failure while launching
};

const char* verdict_name(AdmissionVerdict v);

/// Lifecycle of a submitted application.
enum class AppState {
  kQueued,     ///< submitted, awaiting admission
  kRunning,    ///< launched and streaming
  kRejected,   ///< admission failed (see verdict)
  kPreempted,  ///< was running, evicted for a higher-priority app
  kStopped,    ///< stopped via ApplicationScheduler::stop
};

const char* state_name(AppState s);

/// One IOM producer or consumer channel, as allocated to an app.
struct IomChannelRef {
  int iom = 0;
  int channel = 0;
};

/// Scheduler-side record of one submitted application.
struct AppRecord {
  int id = -1;
  AppRequest request;
  AppState state = AppState::kQueued;
  AdmissionVerdict verdict = AdmissionVerdict::kPending;
  std::string reject_reason;  ///< human-readable detail on rejection

  IomChannelRef source;  ///< IOM producer channel feeding the chain
  IomChannelRef sink;    ///< IOM consumer channel draining the chain
  /// PRR index per chain position (placement), valid while running.
  std::vector<int> prrs;
  /// Streaming channels, chain order: source->m1, m1->m2, ..., mk->sink.
  std::vector<core::ChannelId> channels;
  /// Local clock chosen per chain position by the rate analysis (MHz).
  std::vector<double> clocks_mhz;

  sim::Cycles submitted_at = 0;
  sim::Cycles launched_at = 0;
  sim::Cycles stopped_at = 0;
  /// MicroBlaze cycles the admission decision + launch of this app cost.
  sim::Cycles admission_mb_cycles = 0;

  /// IOM counters at launch (the channels are reused across apps).
  std::uint64_t base_words_emitted = 0;
  std::uint64_t base_words_received = 0;
  /// Final word counts, captured when the app stops / is preempted.
  std::uint64_t final_words_in = 0;
  std::uint64_t final_words_out = 0;

  int migrations = 0;  ///< live relocations this app survived

  bool running() const { return state == AppState::kRunning; }
};

}  // namespace vapres::sched
