#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "bitstream/bitgen.hpp"
#include "core/prsocket.hpp"
#include "core/switching.hpp"
#include "obs/bus.hpp"
#include "obs/metrics.hpp"
#include "sim/check.hpp"

namespace vapres::sched {

namespace {

/// MicroBlaze cycles charged for one admission decision's bookkeeping
/// (placement scan + tables); the launch itself is timed for real.
sim::Cycles decision_cycles(int num_slots, int chain_length) {
  return 64 + 16 * static_cast<sim::Cycles>(num_slots) +
         32 * static_cast<sim::Cycles>(chain_length);
}

/// All scheduler decisions land on one trace lane: admissions are
/// serialized on the MicroBlaze, so spans never overlap within it.
std::uint32_t sched_track() {
  return obs::EventBus::instance().track("scheduler");
}

}  // namespace

ApplicationScheduler::ApplicationScheduler(core::VapresSystem& sys)
    : ApplicationScheduler(sys, Options{}) {}

ApplicationScheduler::ApplicationScheduler(core::VapresSystem& sys,
                                           Options options)
    : sys_(sys), opt_(options), analyzer_(sys.library()) {
  VAPRES_REQUIRE(opt_.rsb_index >= 0 && opt_.rsb_index < sys_.num_rsbs(),
                 "scheduler RSB index out of range");
  // Slice this RSB's portion out of the RSB-major floorplan.
  int offset = 0;
  for (int i = 0; i < opt_.rsb_index; ++i) {
    offset += sys_.params().rsbs[static_cast<std::size_t>(i)].num_prrs;
  }
  const int n = rsb().num_prrs();
  const auto& floorplan = sys_.prr_floorplan();
  std::vector<fabric::ClbRect> rects(
      floorplan.begin() + offset, floorplan.begin() + offset + n);
  map_ = FabricMap(std::move(rects));

  for (int i = 0; i < rsb().num_ioms(); ++i) {
    core::Iom& iom = rsb().iom(i);
    source_busy_.emplace_back(
        static_cast<std::size_t>(iom.num_producers()), false);
    sink_busy_.emplace_back(
        static_cast<std::size_t>(iom.num_consumers()), false);
  }
}

int ApplicationScheduler::submit(AppRequest request) {
  AppRecord rec;
  rec.id = num_apps();
  rec.request = std::move(request);
  rec.submitted_at = sys_.mb().cycle();
  apps_.push_back(std::move(rec));
  AppRecord& stored = apps_.back();
  obs::EventBus::instance().instant(
      obs::Subsystem::kSched, obs::ev::kSubmit, sched_track(),
      sys_.sim().now(), static_cast<std::uint64_t>(stored.id),
      static_cast<std::uint64_t>(stored.request.priority));
  if (opt_.prefetch_hints &&
      opt_.source == core::ReconfigSource::kManaged) {
    hint_request(stored);
  }
  return stored.id;
}

void ApplicationScheduler::hint_request(const AppRecord& app) {
  // Guess the placement the admission pass would pick right now and warm
  // those (module, PRR) bitstreams while the request waits in the queue.
  // The guess can go stale — a wrong hint only costs background staging
  // time, never correctness.
  for (const std::string& m : app.request.modules) {
    if (!sys_.library().contains(m)) return;  // admission will reject
  }
  ChainPlan plan;
  try {
    plan = plan_chain(app);
  } catch (const ModelError&) {
    return;
  }
  if (!plan.ok) return;
  for (const MigrationStep& s : plan.steps) {
    install_bitstream(s.module_id, s.dst_prr);
    sys_.prefetch().hint(s.module_id, rsb().prr(s.dst_prr).name(), app.id);
  }
  for (std::size_t i = 0; i < plan.prrs.size(); ++i) {
    const std::string& m = app.request.modules[i];
    install_bitstream(m, plan.prrs[i]);
    sys_.prefetch().hint(m, rsb().prr(plan.prrs[i]).name(), app.id);
  }
}

int ApplicationScheduler::run_admission() {
  std::vector<int> queue;
  for (const AppRecord& a : apps_) {
    if (a.state == AppState::kQueued) queue.push_back(a.id);
  }
  std::stable_sort(queue.begin(), queue.end(), [this](int a, int b) {
    return record(a).request.priority > record(b).request.priority;
  });
  int launched = 0;
  for (int id : queue) {
    if (try_admit(record(id))) ++launched;
  }
  return launched;
}

void ApplicationScheduler::stop(int app_id) {
  AppRecord& a = record(app_id);
  VAPRES_REQUIRE(a.running(), "app " + std::to_string(app_id) +
                                  " is not running");
  teardown(a, AppState::kStopped);
}

int ApplicationScheduler::retire_terminal() {
  int retired = 0;
  while (!apps_.empty()) {
    const AppRecord& a = apps_.front();
    if (a.state == AppState::kQueued || a.state == AppState::kRunning) break;
    switch (a.verdict) {
      case AdmissionVerdict::kAdmitted:
        ++retired_admitted_;
        break;
      case AdmissionVerdict::kAdmittedAfterDefrag:
        ++retired_admitted_;
        ++retired_admitted_after_defrag_;
        break;
      case AdmissionVerdict::kAdmittedAfterPreempt:
        ++retired_admitted_;
        ++retired_admitted_after_preempt_;
        break;
      case AdmissionVerdict::kPending:
        break;
      default:
        ++retired_rejected_;
        break;
    }
    apps_.pop_front();
    ++first_id_;
    ++retired;
  }
  return retired;
}

AppRecord& ApplicationScheduler::record(int app_id) {
  VAPRES_REQUIRE(app_id >= first_id_ && app_id < num_apps(),
                 "app id " + std::to_string(app_id) +
                     " out of range or retired");
  return apps_[static_cast<std::size_t>(app_id - first_id_)];
}

const AppRecord& ApplicationScheduler::record(int app_id) const {
  VAPRES_REQUIRE(app_id >= first_id_ && app_id < num_apps(),
                 "app id " + std::to_string(app_id) +
                     " out of range or retired");
  return apps_[static_cast<std::size_t>(app_id - first_id_)];
}

const AppRecord& ApplicationScheduler::app(int app_id) const {
  return record(app_id);
}

std::vector<int> ApplicationScheduler::running_apps() const {
  std::vector<int> out;
  for (const AppRecord& a : apps_) {
    if (a.running()) out.push_back(a.id);
  }
  return out;
}

int ApplicationScheduler::queued_count() const {
  int n = 0;
  for (const AppRecord& a : apps_) {
    if (a.state == AppState::kQueued) ++n;
  }
  return n;
}

void ApplicationScheduler::adopt_masters(
    const bitstream::RelocatingStore& other) {
  store_.absorb(other);
}

ApplicationScheduler::AdmitProbe ApplicationScheduler::probe_admit(
    const AppRequest& request) const {
  AdmitProbe probe;
  auto blocked = [&](AdmissionVerdict v, std::string why) {
    probe.verdict = v;
    probe.reason = std::move(why);
    return probe;
  };

  // Spec validation, mirroring try_admit step 1.
  if (request.modules.empty()) {
    return blocked(AdmissionVerdict::kRejectedBadSpec, "empty module chain");
  }
  if (request.source_interval_cycles < 1) {
    return blocked(AdmissionVerdict::kRejectedBadSpec,
                   "source interval must be >= 1 cycle");
  }
  for (const std::string& m : request.modules) {
    if (!sys_.library().contains(m)) {
      return blocked(AdmissionVerdict::kRejectedBadSpec,
                     "unknown module " + m);
    }
    const hwmodule::NetlistInfo& info = sys_.library().info(m);
    if (info.num_inputs != 1 || info.num_outputs != 1) {
      return blocked(AdmissionVerdict::kRejectedBadSpec,
                     "module " + m + " is not a 1-in/1-out chain stage");
    }
  }

  // Rate feasibility against this fabric's clock ladder (step 2).
  try {
    const flow::RateReport report = analyzer_.analyze(request.to_kpn(0, 0));
    const double source_mwords_per_s =
        sys_.params().system_clock_mhz /
        static_cast<double>(request.source_interval_cycles);
    report.assign_clocks(
        source_mwords_per_s,
        {sys_.params().prr_clock_a_mhz, sys_.params().prr_clock_b_mhz});
  } catch (const ModelError& e) {
    return blocked(AdmissionVerdict::kRejectedRateInfeasible, e.what());
  }

  // IOM channel availability (step 3's allocation, read-only).
  bool source_free = false;
  bool sink_free = false;
  for (const auto& iom : source_busy_) {
    for (const bool b : iom) source_free = source_free || !b;
  }
  for (const auto& iom : sink_busy_) {
    for (const bool b : iom) sink_free = sink_free || !b;
  }
  probe.iom_available = source_free && sink_free;

  // Placement + defrag planning over a FabricMap copy (steps 3-4).
  AppRecord tmp;
  tmp.request = request;
  const ChainPlan plan = plan_chain(tmp);
  if (!plan.ok) {
    return blocked(plan.fail_verdict, plan.reason);
  }
  if (!probe.iom_available) {
    return blocked(AdmissionVerdict::kRejectedNoIomChannel,
                   "all IOM source or sink channels busy");
  }
  probe.admissible = true;
  probe.verdict = plan.steps.empty() ? AdmissionVerdict::kAdmitted
                                     : AdmissionVerdict::kAdmittedAfterDefrag;
  probe.prrs = plan.prrs;
  probe.defrag_migrations = static_cast<int>(plan.steps.size());
  return probe;
}

bool ApplicationScheduler::source_done(int app_id) const {
  const AppRecord& a = app(app_id);
  if (!a.running() || a.request.source_words == 0) return false;
  return !sys_.rsb(opt_.rsb_index)
              .iom(a.source.iom)
              .source_active(a.source.channel);
}

std::vector<comm::Word> ApplicationScheduler::received_words(
    int app_id) const {
  const AppRecord& a = app(app_id);
  VAPRES_REQUIRE(a.launched_at != 0 || a.running(),
                 "app " + std::to_string(app_id) + " never launched");
  const core::Iom& iom = sys_.rsb(opt_.rsb_index).iom(a.sink.iom);
  const auto& all = iom.received(a.sink.channel);
  const std::uint64_t dropped = iom.received_dropped(a.sink.channel);
  // The app's words occupy absolute sink indices
  // [base_words_received, base + final_words_out); map them into the
  // retained window (words before `dropped` have been aged out).
  const std::uint64_t abs_end =
      a.running() ? dropped + all.size()
                  : a.base_words_received + a.final_words_out;
  const std::uint64_t lo =
      std::max<std::uint64_t>(a.base_words_received, dropped);
  const std::uint64_t hi = std::min<std::uint64_t>(
      std::max(abs_end, dropped), dropped + all.size());
  if (hi <= lo) return {};
  return std::vector<comm::Word>(
      all.begin() + static_cast<std::ptrdiff_t>(lo - dropped),
      all.begin() + static_cast<std::ptrdiff_t>(hi - dropped));
}

// ---- Admission -----------------------------------------------------------

bool ApplicationScheduler::try_admit(AppRecord& app) {
  const sim::Cycles t0 = sys_.mb().cycle();
  const int k = static_cast<int>(app.request.modules.size());
  sys_.mb().busy_for(decision_cycles(map_.num_slots(), k));

  auto& bus = obs::EventBus::instance();
  const std::uint32_t track = sched_track();
  obs::Span admission =
      obs::Span::begin(obs::Subsystem::kSched, obs::ev::kAdmission, track,
                       sys_.sim().now(), static_cast<std::uint64_t>(app.id));
  auto close_admission = [&]() {
    admission.end(
        sys_.sim().now(),
        &obs::Registry::instance().histogram("sched.admission.cycles"),
        static_cast<std::int64_t>(app.admission_mb_cycles));
  };

  auto reject = [&](AdmissionVerdict v, const std::string& why) {
    app.state = AppState::kRejected;
    app.verdict = v;
    app.reject_reason = why;
    app.admission_mb_cycles = sys_.mb().cycle() - t0;
    close_admission();
    bus.instant(obs::Subsystem::kSched, obs::ev::kReject, track,
                sys_.sim().now(), static_cast<std::uint64_t>(app.id),
                static_cast<std::uint64_t>(v));
    obs::Registry::instance().counter("sched.rejected").add();
    ++rejection_streak_;
    return false;
  };

  // 1. Spec validation: a linear chain of known 1-in/1-out modules.
  if (k == 0) {
    return reject(AdmissionVerdict::kRejectedBadSpec, "empty module chain");
  }
  if (app.request.source_interval_cycles < 1) {
    return reject(AdmissionVerdict::kRejectedBadSpec,
                  "source interval must be >= 1 cycle");
  }
  for (const std::string& m : app.request.modules) {
    if (!sys_.library().contains(m)) {
      return reject(AdmissionVerdict::kRejectedBadSpec,
                    "unknown module " + m);
    }
    const hwmodule::NetlistInfo& info = sys_.library().info(m);
    if (info.num_inputs != 1 || info.num_outputs != 1) {
      return reject(AdmissionVerdict::kRejectedBadSpec,
                    "module " + m + " is not a 1-in/1-out chain stage");
    }
  }

  // 2. Rate feasibility: some ladder clock must sustain every stage at
  // the requested stream rate (flow::RateAnalyzer, Section IV).
  flow::RateReport report;
  try {
    report = analyzer_.analyze(app.request.to_kpn(0, 0));
  } catch (const ModelError& e) {
    return reject(AdmissionVerdict::kRejectedBadSpec, e.what());
  }
  try {
    const double source_mwords_per_s =
        sys_.params().system_clock_mhz /
        static_cast<double>(app.request.source_interval_cycles);
    const auto chosen = report.assign_clocks(
        source_mwords_per_s,
        {sys_.params().prr_clock_a_mhz, sys_.params().prr_clock_b_mhz});
    app.clocks_mhz.clear();
    for (int i = 0; i < k; ++i) {
      app.clocks_mhz.push_back(chosen.at(AppRequest::node_name(i)));
    }
  } catch (const ModelError& e) {
    return reject(AdmissionVerdict::kRejectedRateInfeasible, e.what());
  }

  // 3-5. IOM + placement, with preemption retries.
  bool preempted_any = false;
  for (;;) {
    const bool ioms_ok = allocate_ioms(app);
    ChainPlan plan;
    if (ioms_ok) {
      plan = plan_chain(app);
      if (plan.ok) {
        bool migration_failed = false;
        for (const MigrationStep& s : plan.steps) {
          if (!execute_migration(s)) {
            migration_failed = true;
            break;
          }
        }
        if (migration_failed) {
          // Completed relocations stay (the fabric only got tidier);
          // this admission gives up.
          free_ioms(app);
          return reject(
              AdmissionVerdict::kRejectedFragmented,
              "live relocation rolled back (permanent PR failure)");
        }
        if (!launch(app, plan.prrs)) {
          free_ioms(app);
          app.admission_mb_cycles = sys_.mb().cycle() - t0;
          close_admission();
          bus.instant(obs::Subsystem::kSched, obs::ev::kReject, track,
                      sys_.sim().now(), static_cast<std::uint64_t>(app.id),
                      static_cast<std::uint64_t>(app.verdict));
          obs::Registry::instance().counter("sched.rejected").add();
          ++rejection_streak_;
          return false;  // verdict + reason set by launch()
        }
        app.state = AppState::kRunning;
        app.verdict = preempted_any
                          ? AdmissionVerdict::kAdmittedAfterPreempt
                          : (plan.steps.empty()
                                 ? AdmissionVerdict::kAdmitted
                                 : AdmissionVerdict::kAdmittedAfterDefrag);
        app.launched_at = sys_.mb().cycle();
        app.admission_mb_cycles = app.launched_at - t0;
        rejection_streak_ = 0;
        // Queue wait + decision + launch, end to end — the latency an
        // external submitter observes (soak gates its p99).
        obs::Registry::instance()
            .histogram("sched.submit_to_launch.cycles")
            .record(app.launched_at - app.submitted_at);
        close_admission();
        bus.instant(obs::Subsystem::kSched, obs::ev::kLaunch, track,
                    sys_.sim().now(), static_cast<std::uint64_t>(app.id),
                    static_cast<std::uint64_t>(app.prrs.size()));
        obs::Registry::instance().counter("sched.launched").add();
        return true;
      }
      free_ioms(app);
      if (plan.fail_verdict == AdmissionVerdict::kRejectedNoPrrFit) {
        // Fabric-capability failure: no eviction can create a fit.
        return reject(plan.fail_verdict, plan.reason);
      }
    }
    const AdmissionVerdict blocked =
        ioms_ok ? plan.fail_verdict
                : AdmissionVerdict::kRejectedNoIomChannel;
    const std::string why =
        ioms_ok ? plan.reason : "all IOM source or sink channels busy";
    if (!opt_.enable_preemption) return reject(blocked, why);
    const int victim = pick_victim(app.request.priority);
    if (victim < 0) {
      return reject(blocked, why + " (no lower-priority app to preempt)");
    }
    bus.instant(obs::Subsystem::kSched, obs::ev::kPreempt, track,
                sys_.sim().now(), static_cast<std::uint64_t>(victim),
                static_cast<std::uint64_t>(app.id));
    teardown(record(victim), AppState::kPreempted);
    ++preemptions_;
    obs::Registry::instance().counter("sched.preemptions").add();
    preempted_any = true;
  }
}

ApplicationScheduler::ChainPlan ApplicationScheduler::plan_chain(
    const AppRecord& app) const {
  ChainPlan plan;
  FabricMap copy = map_;
  int budget = opt_.enable_defrag ? opt_.max_defrag_migrations : 0;
  const int k = static_cast<int>(app.request.modules.size());
  for (int i = 0; i < k; ++i) {
    const std::string& m = app.request.modules[i];
    const fabric::ResourceVector need = sys_.library().info(m).resources;
    int p = copy.find_free(need, opt_.policy);
    if (p < 0 && !copy.fits_somewhere(need)) {
      plan.fail_verdict = AdmissionVerdict::kRejectedNoPrrFit;
      plan.reason = "module " + m + " (" + std::to_string(need.slices) +
                    " slices) fits no PRR of this fabric";
      return plan;
    }
    if (p < 0 && budget > 0) {
      std::vector<MigrationStep> steps =
          DefragPlanner::plan(copy, need, opt_.policy, budget, &p);
      if (p >= 0) {
        budget -= static_cast<int>(steps.size());
        plan.steps.insert(plan.steps.end(), steps.begin(), steps.end());
      }
    }
    if (p < 0) {
      plan.fail_verdict = AdmissionVerdict::kRejectedFragmented;
      plan.reason = "module " + m + " (" + std::to_string(need.slices) +
                    " slices): capacity exists only in occupied or "
                    "too-small slots";
      return plan;
    }
    // Tentative occupancy; migratable=false so the planner never tries
    // to relocate a module that is not launched yet.
    copy.occupy(p, app.id, i, m, need.slices, /*migratable=*/false);
    plan.prrs.push_back(p);
  }
  plan.ok = true;
  return plan;
}

bool ApplicationScheduler::allocate_ioms(AppRecord& app) {
  int s_iom = -1, s_ch = -1, k_iom = -1, k_ch = -1;
  for (std::size_t i = 0; i < source_busy_.size() && s_iom < 0; ++i) {
    for (std::size_t c = 0; c < source_busy_[i].size(); ++c) {
      if (!source_busy_[i][c]) {
        s_iom = static_cast<int>(i);
        s_ch = static_cast<int>(c);
        break;
      }
    }
  }
  for (std::size_t i = 0; i < sink_busy_.size() && k_iom < 0; ++i) {
    for (std::size_t c = 0; c < sink_busy_[i].size(); ++c) {
      if (!sink_busy_[i][c]) {
        k_iom = static_cast<int>(i);
        k_ch = static_cast<int>(c);
        break;
      }
    }
  }
  if (s_iom < 0 || k_iom < 0) return false;
  source_busy_[static_cast<std::size_t>(s_iom)]
              [static_cast<std::size_t>(s_ch)] = true;
  sink_busy_[static_cast<std::size_t>(k_iom)]
            [static_cast<std::size_t>(k_ch)] = true;
  app.source = IomChannelRef{s_iom, s_ch};
  app.sink = IomChannelRef{k_iom, k_ch};
  return true;
}

void ApplicationScheduler::free_ioms(const AppRecord& app) {
  source_busy_[static_cast<std::size_t>(app.source.iom)]
              [static_cast<std::size_t>(app.source.channel)] = false;
  sink_busy_[static_cast<std::size_t>(app.sink.iom)]
            [static_cast<std::size_t>(app.sink.channel)] = false;
}

int ApplicationScheduler::busy_source_channels() const {
  int n = 0;
  for (const auto& iom : source_busy_) {
    for (const bool b : iom) n += b ? 1 : 0;
  }
  return n;
}

int ApplicationScheduler::busy_sink_channels() const {
  int n = 0;
  for (const auto& iom : sink_busy_) {
    for (const bool b : iom) n += b ? 1 : 0;
  }
  return n;
}

int ApplicationScheduler::total_source_channels() const {
  int n = 0;
  for (const auto& iom : source_busy_) n += static_cast<int>(iom.size());
  return n;
}

int ApplicationScheduler::total_sink_channels() const {
  int n = 0;
  for (const auto& iom : sink_busy_) n += static_cast<int>(iom.size());
  return n;
}

int ApplicationScheduler::free_channel_pairs() const {
  return std::min(total_source_channels() - busy_source_channels(),
                  total_sink_channels() - busy_sink_channels());
}

std::vector<int> ApplicationScheduler::prr_owners() const {
  std::vector<int> owners;
  owners.reserve(static_cast<std::size_t>(map_.num_slots()));
  for (int i = 0; i < map_.num_slots(); ++i) {
    const PrrSlot& s = map_.slot(i);
    owners.push_back(s.free ? -1 : s.app_id);
  }
  return owners;
}

ApplicationScheduler::ChannelOccupancy
ApplicationScheduler::channel_occupancy() const {
  return ChannelOccupancy{source_busy_, sink_busy_};
}

int ApplicationScheduler::pick_victim(int priority) const {
  int victim = -1;
  for (const AppRecord& a : apps_) {
    if (!a.running() || a.request.priority >= priority) continue;
    if (victim < 0) {
      victim = a.id;
      continue;
    }
    const AppRecord& v = record(victim);
    // Lowest priority first; youngest among equals (LIFO eviction).
    if (a.request.priority < v.request.priority ||
        (a.request.priority == v.request.priority && a.id > v.id)) {
      victim = a.id;
    }
  }
  return victim;
}

// ---- Migration (defragmentation) -----------------------------------------

bool ApplicationScheduler::execute_migration(const MigrationStep& step) {
  AppRecord& owner = record(step.app_id);
  VAPRES_REQUIRE(owner.running(), "relocation donor is not running");
  const sim::Cycles mig_t0 = sys_.mb().cycle();
  obs::Span mig = obs::Span::begin(
      obs::Subsystem::kSched, obs::ev::kMigrate, sched_track(),
      sys_.sim().now(), static_cast<std::uint64_t>(step.app_id));
  auto close_migration = [&]() {
    mig.end(sys_.sim().now(),
            &obs::Registry::instance().histogram("sched.migration.cycles"),
            static_cast<std::int64_t>(sys_.mb().cycle() - mig_t0));
  };
  int pos = -1;
  for (std::size_t i = 0; i < owner.prrs.size(); ++i) {
    if (owner.prrs[i] == step.src_prr) pos = static_cast<int>(i);
  }
  VAPRES_REQUIRE(pos == static_cast<int>(owner.prrs.size()) - 1,
                 "only tail-of-chain modules are hitlessly migratable");

  stage_bitstream(step.module_id, step.dst_prr);
  if (opt_.source == core::ReconfigSource::kManaged) {
    // Relocations pay the CF->SDRAM staging up front (timed) so the
    // live switch's PR runs the fast array path even on a cold cache.
    sys_.stage_to_sdram(step.module_id, opt_.rsb_index, step.dst_prr);
  }
  // Keep the module's clock choice across the move (the switcher
  // read-modify-writes the dst socket, preserving CLK_sel).
  set_prr_clock(step.dst_prr,
                owner.clocks_mhz[static_cast<std::size_t>(pos)]);

  core::SwitchRequest req;
  req.rsb_index = opt_.rsb_index;
  req.src_prr = step.src_prr;
  req.dst_prr = step.dst_prr;
  req.new_module_id = step.module_id;
  req.upstream = owner.channels[static_cast<std::size_t>(pos)];
  req.downstream = owner.channels[static_cast<std::size_t>(pos) + 1];
  req.eos_iom = owner.sink.iom;
  req.source = opt_.source;

  core::ModuleSwitcher sw(sys_, req);
  sw.begin();
  const bool done = sys_.sim().run_until([&sw] { return sw.finished(); },
                                         sim::kPsPerSecond * 120);
  VAPRES_REQUIRE(done, "live relocation did not finish");
  if (sw.aborted()) {
    // Rollback: the donor app keeps streaming on its old PRR; only the
    // scheduler's hope of a tidier fabric is gone.
    ++migration_rollbacks_;
    close_migration();
    return false;
  }
  owner.channels[static_cast<std::size_t>(pos)] = sw.new_upstream();
  owner.channels[static_cast<std::size_t>(pos) + 1] = sw.new_downstream();
  owner.prrs[static_cast<std::size_t>(pos)] = step.dst_prr;
  ++owner.migrations;
  map_.move(step.src_prr, step.dst_prr);
  blank_prr(step.src_prr);
  ++defrag_migrations_;
  close_migration();
  return true;
}

// ---- Launch / teardown ---------------------------------------------------

bitstream::PartialBitstream ApplicationScheduler::install_bitstream(
    const std::string& module_id, int prr) {
  core::Prr& target = rsb().prr(prr);
  const fabric::ClbRect& rect = target.rect();
  if (!store_.has_master(module_id, rect)) {
    const hwmodule::NetlistInfo& info = sys_.library().info(module_id);
    store_.add_master(bitstream::generate_partial_bitstream(
        module_id, info.resources, target.name(), rect));
  }
  const bitstream::PartialBitstream bs =
      store_.materialize(module_id, target.name(), rect);
  // The streaming FAR rewrite runs on the MicroBlaze.
  sys_.mb().busy_for(static_cast<sim::Cycles>(
      std::llround(bitstream::relocation_cycles(bs.size_bytes))));
  sys_.bitman().install(bs);
  return bs;
}

void ApplicationScheduler::stage_bitstream(const std::string& module_id,
                                           int prr) {
  const bitstream::PartialBitstream bs = install_bitstream(module_id, prr);
  // Under kManaged residency belongs to the cache and the prefetcher;
  // the other sources keep the pre-cache contract (array preloaded, so
  // the array path never misses).
  if (opt_.source != core::ReconfigSource::kManaged) {
    sys_.bitman().preload(bs);
  }
}

bool ApplicationScheduler::launch(AppRecord& app,
                                  const std::vector<int>& prrs) {
  core::Rsb& r = rsb();
  const int k = static_cast<int>(prrs.size());
  std::vector<int> configured;

  auto rollback = [&](AdmissionVerdict v, const std::string& why) {
    for (auto it = app.channels.rbegin(); it != app.channels.rend(); ++it) {
      sys_.disconnect(opt_.rsb_index, *it);
    }
    app.channels.clear();
    for (int p : configured) blank_prr(p);
    app.prrs.clear();
    app.state = AppState::kRejected;
    app.verdict = v;
    app.reject_reason = why;
    return false;
  };

  for (int i = 0; i < k; ++i) {
    const std::string& m = app.request.modules[static_cast<std::size_t>(i)];
    const int p = prrs[static_cast<std::size_t>(i)];
    try {
      stage_bitstream(m, p);
      sys_.reconfigure_now(opt_.rsb_index, p, m, opt_.source);
    } catch (const ModelError& e) {
      return rollback(AdmissionVerdict::kRejectedPrFailure,
                      "PR of " + m + " failed: " + e.what());
    }
    // Re-enable the site (eviction blanking clears its socket bits).
    sys_.socket_set_bits(r.prr_socket_address(p),
                         core::PrSocket::kSmEn | core::PrSocket::kClkEn |
                             core::PrSocket::kFifoWen,
                         true);
    set_prr_clock(p, app.clocks_mhz[static_cast<std::size_t>(i)]);
    configured.push_back(p);
  }

  // Route source -> chain -> sink.
  for (int i = 0; i <= k; ++i) {
    const core::ChannelEndpoint producer =
        i == 0 ? r.iom_producer(app.source.iom, app.source.channel)
               : r.prr_producer(prrs[static_cast<std::size_t>(i) - 1], 0);
    const core::ChannelEndpoint consumer =
        i == k ? r.iom_consumer(app.sink.iom, app.sink.channel)
               : r.prr_consumer(prrs[static_cast<std::size_t>(i)], 0);
    const std::optional<core::ChannelId> id =
        sys_.connect(opt_.rsb_index, producer, consumer);
    if (!id) {
      return rollback(AdmissionVerdict::kRejectedNoRoute,
                      "switch-box lane capacity exhausted");
    }
    app.channels.push_back(*id);
  }

  for (int i = 0; i < k; ++i) {
    const std::string& m = app.request.modules[static_cast<std::size_t>(i)];
    map_.occupy(prrs[static_cast<std::size_t>(i)], app.id, i, m,
                sys_.library().info(m).resources.slices,
                /*migratable=*/i == k - 1);
  }
  app.prrs = prrs;

  core::Iom& src_iom = r.iom(app.source.iom);
  app.base_words_emitted = src_iom.words_emitted(app.source.channel);
  app.base_words_received =
      r.iom(app.sink.iom).words_received(app.sink.channel);
  const std::uint64_t limit = app.request.source_words;
  src_iom.set_source_generator(
      [n = std::uint64_t{0}, limit]() mutable -> std::optional<comm::Word> {
        if (limit > 0 && n >= limit) return std::nullopt;
        // Mask below the all-ones EOS word so data is never EOS.
        return static_cast<comm::Word>((n++) & 0x7FFFFFFFu);
      },
      app.request.source_interval_cycles, app.source.channel);
  return true;
}

void ApplicationScheduler::teardown(AppRecord& app, AppState final_state) {
  VAPRES_REQUIRE(app.running(), "teardown of a non-running app");
  core::Rsb& r = rsb();
  core::Iom& src_iom = r.iom(app.source.iom);
  src_iom.stop_source(app.source.channel);
  app.final_words_in =
      src_iom.words_emitted(app.source.channel) - app.base_words_emitted;
  // Disconnect sink-side first; each disconnect quiesces its producer
  // and lets in-flight words land before the route is released.
  for (auto it = app.channels.rbegin(); it != app.channels.rend(); ++it) {
    sys_.disconnect(opt_.rsb_index, *it);
  }
  app.final_words_out =
      r.iom(app.sink.iom).words_received(app.sink.channel) -
      app.base_words_received;
  app.channels.clear();
  for (int p : app.prrs) {
    blank_prr(p);
    map_.release(p);
  }
  app.prrs.clear();
  free_ioms(app);
  // Queued prefetch hints for a torn-down app are dead weight; a staging
  // already in flight completes (the array may serve someone else).
  sys_.prefetch().cancel(app.id);
  app.stopped_at = sys_.mb().cycle();
  app.state = final_state;
  obs::EventBus::instance().instant(
      obs::Subsystem::kSched, obs::ev::kStop, sched_track(), sys_.sim().now(),
      static_cast<std::uint64_t>(app.id),
      static_cast<std::uint64_t>(final_state));
}

void ApplicationScheduler::blank_prr(int prr) {
  core::Rsb& r = rsb();
  const comm::DcrAddress addr = r.prr_socket_address(prr);
  // Isolate and gate the site, back to clock A.
  sys_.socket_set_bits(addr,
                       core::PrSocket::kSmEn | core::PrSocket::kClkEn |
                           core::PrSocket::kFifoWen |
                           core::PrSocket::kFifoRen |
                           core::PrSocket::kClkSel,
                       false);
  // Pulse the FIFO/FSL resets so no stale words leak into the next app.
  sys_.socket_set_bits(
      addr, core::PrSocket::kFifoReset | core::PrSocket::kFslReset, true);
  sys_.socket_set_bits(
      addr, core::PrSocket::kFifoReset | core::PrSocket::kFslReset, false);
  core::Prr& p = r.prr(prr);
  if (p.wrapper().loaded()) p.wrapper().unload();
}

void ApplicationScheduler::set_prr_clock(int prr, double mhz) {
  const bool use_b =
      std::abs(mhz - sys_.params().prr_clock_b_mhz) < 1e-9 &&
      std::abs(sys_.params().prr_clock_a_mhz -
               sys_.params().prr_clock_b_mhz) > 1e-9;
  sys_.socket_set_bits(rsb().prr_socket_address(prr),
                       core::PrSocket::kClkSel, use_b);
}

// ---- Accounting ----------------------------------------------------------

core::SchedulerAccounting ApplicationScheduler::accounting() const {
  core::SchedulerAccounting acc;
  acc.submitted = num_apps();
  acc.preemptions = preemptions_;
  acc.defrag_migrations = defrag_migrations_;
  acc.migration_rollbacks = migration_rollbacks_;
  acc.fabric_utilization = map_.utilization();
  // Retired records contribute to the totals but have no per-app row.
  acc.admitted = retired_admitted_;
  acc.admitted_after_defrag = retired_admitted_after_defrag_;
  acc.admitted_after_preempt = retired_admitted_after_preempt_;
  acc.rejected = retired_rejected_;
  for (const AppRecord& a : apps_) {
    core::AppAccounting row;
    row.app_id = a.id;
    row.name = a.request.name;
    row.priority = a.request.priority;
    row.state = state_name(a.state);
    row.verdict = verdict_name(a.verdict);
    row.submitted_at = a.submitted_at;
    row.launched_at = a.launched_at;
    row.stopped_at = a.stopped_at;
    row.admission_mb_cycles = a.admission_mb_cycles;
    row.migrations = a.migrations;
    for (const std::string& m : a.request.modules) {
      if (sys_.library().contains(m)) {
        row.module_slices += sys_.library().info(m).resources.slices;
      }
    }
    if (a.running()) {
      core::Rsb& r = sys_.rsb(opt_.rsb_index);
      row.words_in =
          r.iom(a.source.iom).words_emitted(a.source.channel) -
          a.base_words_emitted;
      row.words_out =
          r.iom(a.sink.iom).words_received(a.sink.channel) -
          a.base_words_received;
    } else {
      row.words_in = a.final_words_in;
      row.words_out = a.final_words_out;
    }
    switch (a.verdict) {
      case AdmissionVerdict::kAdmitted:
        ++acc.admitted;
        break;
      case AdmissionVerdict::kAdmittedAfterDefrag:
        ++acc.admitted;
        ++acc.admitted_after_defrag;
        break;
      case AdmissionVerdict::kAdmittedAfterPreempt:
        ++acc.admitted;
        ++acc.admitted_after_preempt;
        break;
      case AdmissionVerdict::kPending:
        break;
      default:
        ++acc.rejected;
        break;
    }
    acc.apps.push_back(std::move(row));
  }
  return acc;
}

}  // namespace vapres::sched
