#include "sched/defrag.hpp"

#include <algorithm>

namespace vapres::sched {

namespace {

/// Frees (tentatively, on `map`) one slot fitting `need`. Returns the
/// slot index, appending the moves to `steps`, or -1 within `budget`.
/// `in_chain` guards against relocation cycles.
int free_slot_for(FabricMap& map, const fabric::ResourceVector& need,
                  PlacementPolicy policy, int& budget,
                  std::vector<MigrationStep>& steps,
                  std::vector<char>& in_chain) {
  const int direct = map.find_free(need, policy);
  if (direct >= 0) return direct;
  if (budget <= 0) return -1;

  // Donor candidates: occupied slots that would fit `need`, cheapest
  // occupant first (fewest slices to move), then tightest rectangle.
  std::vector<int> donors;
  for (int p = 0; p < map.num_slots(); ++p) {
    const PrrSlot& s = map.slot(p);
    if (s.free || !s.migratable || in_chain[static_cast<std::size_t>(p)]) {
      continue;
    }
    if (map.fits(need, p)) donors.push_back(p);
  }
  std::sort(donors.begin(), donors.end(), [&map](int a, int b) {
    const PrrSlot& sa = map.slot(a);
    const PrrSlot& sb = map.slot(b);
    if (sa.module_slices != sb.module_slices) {
      return sa.module_slices < sb.module_slices;
    }
    if (sa.rect.slices() != sb.rect.slices()) {
      return sa.rect.slices() < sb.rect.slices();
    }
    return a < b;
  });

  for (int d : donors) {
    const PrrSlot& occ = map.slot(d);
    const fabric::ResourceVector occ_need{occ.module_slices, 0, 0};
    in_chain[static_cast<std::size_t>(d)] = 1;
    --budget;
    const std::size_t mark = steps.size();
    const int target =
        free_slot_for(map, occ_need, policy, budget, steps, in_chain);
    if (target >= 0) {
      steps.push_back(MigrationStep{d, target, occ.app_id, occ.module_id});
      map.move(d, target);
      in_chain[static_cast<std::size_t>(d)] = 0;
      return d;
    }
    // Undo this donor's exploration and try the next one.
    steps.resize(mark);
    ++budget;
    in_chain[static_cast<std::size_t>(d)] = 0;
  }
  return -1;
}

}  // namespace

std::vector<MigrationStep> DefragPlanner::plan(
    FabricMap& map, const fabric::ResourceVector& need,
    PlacementPolicy policy, int max_steps, int* freed_prr) {
  std::vector<MigrationStep> steps;
  std::vector<char> in_chain(static_cast<std::size_t>(map.num_slots()), 0);
  int budget = max_steps;
  const int freed = free_slot_for(map, need, policy, budget, steps, in_chain);
  if (freed_prr != nullptr) *freed_prr = freed;
  if (freed < 0) steps.clear();
  return steps;
}

}  // namespace vapres::sched
