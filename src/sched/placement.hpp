// Online placement state for the multi-application scheduler.
//
// A FabricMap is the scheduler's view of one RSB's PRRs: which slot is
// free, which app/module occupies it, and whether the occupant may be
// relocated live (tail-of-chain modules, whose EOS word the sink IOM can
// observe during the 9-step switch). It is a plain value type — the
// admission path copies it to plan placements and defragmentation
// tentatively before committing anything to hardware.
#pragma once

#include <string>
#include <vector>

#include "fabric/clock_region.hpp"
#include "fabric/resources.hpp"

namespace vapres::sched {

/// How the scheduler picks among multiple fitting free PRRs.
enum class PlacementPolicy {
  kFirstFit,  ///< lowest index that fits (the RuntimeAssembler baseline)
  kBestFit,   ///< fewest wasted slices; ties broken by lowest index
};

const char* policy_name(PlacementPolicy p);

/// One PRR slot of the fabric map.
struct PrrSlot {
  fabric::ClbRect rect;
  bool free = true;
  int app_id = -1;            ///< occupying app, -1 when free
  int chain_pos = -1;         ///< position of the module in its chain
  std::string module_id;      ///< occupying module, "" when free
  int module_slices = 0;      ///< occupant footprint (utilization)
  bool migratable = false;    ///< occupant may be relocated live
};

class FabricMap {
 public:
  FabricMap() = default;
  explicit FabricMap(std::vector<fabric::ClbRect> rects);

  int num_slots() const { return static_cast<int>(slots_.size()); }
  const PrrSlot& slot(int prr) const;

  bool fits(const fabric::ResourceVector& need, int prr) const;

  /// Free PRR for `need` under `policy`; -1 when no free slot fits.
  int find_free(const fabric::ResourceVector& need,
                PlacementPolicy policy) const;

  /// True when `need` fits *some* slot of the fabric, free or not
  /// (distinguishes "fragmented" from "never fits this fabric").
  bool fits_somewhere(const fabric::ResourceVector& need) const;

  void occupy(int prr, int app_id, int chain_pos,
              const std::string& module_id, int module_slices,
              bool migratable);
  void release(int prr);

  /// Moves slot `src`'s occupant to free slot `dst` (a planned or
  /// completed relocation).
  void move(int src, int dst);

  int free_count() const;
  /// Occupied module slices / total PRR slices (fabric utilization).
  double utilization() const;
  int total_slices() const { return total_slices_; }

 private:
  std::vector<PrrSlot> slots_;
  int total_slices_ = 0;
};

}  // namespace vapres::sched
