// Relocation-based defragmentation planning.
//
// Fragmentation in the slot-based PRR model: a module needs a large PRR,
// all large PRRs host small modules, and the free slots are too small —
// total capacity exists, but in the wrong footprint classes ("Maintaining
// Virtual Areas on FPGAs using Strip Packing with Delays", Angermeier et
// al., frames exactly this anti-fragmentation layer). The planner picks a
// sequence of live-module relocations (executed hitlessly by the
// scheduler through the 9-step core::ModuleSwitcher) that frees a
// fitting slot; it works on a FabricMap copy and commits nothing itself.
#pragma once

#include <string>
#include <vector>

#include "fabric/resources.hpp"
#include "sched/placement.hpp"

namespace vapres::sched {

/// One planned live relocation: move `app_id`'s module out of `src_prr`
/// into the (currently free) `dst_prr`.
struct MigrationStep {
  int src_prr = -1;
  int dst_prr = -1;
  int app_id = -1;
  std::string module_id;
};

class DefragPlanner {
 public:
  /// Plans relocations on `map` (mutated tentatively: each planned step
  /// is applied with FabricMap::move) that free a slot fitting `need`.
  /// Returns the steps and sets `freed_prr` to the slot they free, or
  /// returns empty with `freed_prr = -1` when no plan exists within
  /// `max_steps`. Only `migratable` occupants are considered.
  static std::vector<MigrationStep> plan(FabricMap& map,
                                         const fabric::ResourceVector& need,
                                         PlacementPolicy policy,
                                         int max_steps, int* freed_prr);
};

}  // namespace vapres::sched
