#include "sched/placement.hpp"

#include "sim/check.hpp"

namespace vapres::sched {

const char* policy_name(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kFirstFit: return "first-fit";
    case PlacementPolicy::kBestFit: return "best-fit";
  }
  return "?";
}

FabricMap::FabricMap(std::vector<fabric::ClbRect> rects) {
  slots_.reserve(rects.size());
  for (const fabric::ClbRect& rect : rects) {
    PrrSlot slot;
    slot.rect = rect;
    slots_.push_back(std::move(slot));
    total_slices_ += rect.slices();
  }
}

const PrrSlot& FabricMap::slot(int prr) const {
  VAPRES_REQUIRE(prr >= 0 && prr < num_slots(), "PRR slot out of range");
  return slots_[static_cast<std::size_t>(prr)];
}

bool FabricMap::fits(const fabric::ResourceVector& need, int prr) const {
  return need.fits_in(slot(prr).rect.resources());
}

int FabricMap::find_free(const fabric::ResourceVector& need,
                         PlacementPolicy policy) const {
  int chosen = -1;
  int chosen_waste = 0;
  for (int p = 0; p < num_slots(); ++p) {
    const PrrSlot& s = slots_[static_cast<std::size_t>(p)];
    if (!s.free || !need.fits_in(s.rect.resources())) continue;
    if (policy == PlacementPolicy::kFirstFit) return p;
    const int waste = s.rect.slices() - need.slices;
    if (chosen < 0 || waste < chosen_waste) {
      chosen = p;
      chosen_waste = waste;
    }
  }
  return chosen;
}

bool FabricMap::fits_somewhere(const fabric::ResourceVector& need) const {
  for (int p = 0; p < num_slots(); ++p) {
    if (need.fits_in(slot(p).rect.resources())) return true;
  }
  return false;
}

void FabricMap::occupy(int prr, int app_id, int chain_pos,
                       const std::string& module_id, int module_slices,
                       bool migratable) {
  VAPRES_REQUIRE(prr >= 0 && prr < num_slots(), "PRR slot out of range");
  PrrSlot& s = slots_[static_cast<std::size_t>(prr)];
  VAPRES_REQUIRE(s.free, "occupying a non-free PRR slot");
  s.free = false;
  s.app_id = app_id;
  s.chain_pos = chain_pos;
  s.module_id = module_id;
  s.module_slices = module_slices;
  s.migratable = migratable;
}

void FabricMap::release(int prr) {
  VAPRES_REQUIRE(prr >= 0 && prr < num_slots(), "PRR slot out of range");
  PrrSlot& s = slots_[static_cast<std::size_t>(prr)];
  s.free = true;
  s.app_id = -1;
  s.chain_pos = -1;
  s.module_id.clear();
  s.module_slices = 0;
  s.migratable = false;
}

void FabricMap::move(int src, int dst) {
  VAPRES_REQUIRE(src >= 0 && src < num_slots() && dst >= 0 &&
                     dst < num_slots() && src != dst,
                 "bad relocation slots");
  PrrSlot& s = slots_[static_cast<std::size_t>(src)];
  PrrSlot& d = slots_[static_cast<std::size_t>(dst)];
  VAPRES_REQUIRE(!s.free && d.free, "relocation needs occupied src, free dst");
  d.free = false;
  d.app_id = s.app_id;
  d.chain_pos = s.chain_pos;
  d.module_id = s.module_id;
  d.module_slices = s.module_slices;
  d.migratable = s.migratable;
  release(src);
}

int FabricMap::free_count() const {
  int n = 0;
  for (const PrrSlot& s : slots_) n += s.free ? 1 : 0;
  return n;
}

double FabricMap::utilization() const {
  if (total_slices_ == 0) return 0.0;
  int used = 0;
  for (const PrrSlot& s : slots_) used += s.free ? 0 : s.module_slices;
  return static_cast<double>(used) / total_slices_;
}

}  // namespace vapres::sched
