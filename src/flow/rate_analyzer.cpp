#include "flow/rate_analyzer.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "sim/check.hpp"

namespace vapres::flow {

namespace {

bool is_iom(const std::string& endpoint) {
  return endpoint.rfind("iom:", 0) == 0;
}

}  // namespace

Rational Rational::of(std::int64_t n, std::int64_t d) {
  VAPRES_REQUIRE(d != 0 && n >= 0 && d > 0,
                 "rates must be non-negative rationals");
  const std::int64_t g = std::gcd(n, d);
  return Rational{g == 0 ? 0 : n / g, g == 0 ? 1 : d / g};
}

Rational Rational::times(std::int64_t n, std::int64_t d) const {
  return Rational::of(num * n, den * d);
}

double RateReport::required_mhz(const std::string& node,
                                double source_mwords_per_s) const {
  auto it = nodes.find(node);
  VAPRES_REQUIRE(it != nodes.end(), "unknown node: " + node);
  return it->second.min_clock_factor.value() * source_mwords_per_s;
}

std::map<std::string, double> RateReport::assign_clocks(
    double source_mwords_per_s,
    const std::vector<double>& ladder_mhz) const {
  std::vector<double> ladder = ladder_mhz;
  std::sort(ladder.begin(), ladder.end());
  std::map<std::string, double> chosen;
  for (const auto& [name, rate] : nodes) {
    const double need = rate.min_clock_factor.value() * source_mwords_per_s;
    double pick = -1.0;
    for (double mhz : ladder) {
      if (mhz + 1e-9 >= need) {
        pick = mhz;
        break;
      }
    }
    VAPRES_REQUIRE(pick > 0.0,
                   "node " + name + " needs " + std::to_string(need) +
                       " MHz, above the fastest ladder frequency");
    chosen[name] = pick;
  }
  return chosen;
}

RateAnalyzer::RateAnalyzer(const hwmodule::ModuleLibrary& library)
    : library_(library) {}

RateReport RateAnalyzer::analyze(const core::KpnAppSpec& app) const {
  // Node lookup + per-node module info.
  std::map<std::string, const hwmodule::NetlistInfo*> info;
  for (const core::KpnNodeSpec& node : app.nodes) {
    VAPRES_REQUIRE(library_.contains(node.module_id),
                   app.name + ": unknown module " + node.module_id);
    VAPRES_REQUIRE(info.emplace(node.name, &library_.info(node.module_id))
                       .second,
                   app.name + ": duplicate node " + node.name);
  }

  RateReport report;
  // Edge work-list: (consumer endpoint, rate on the edge). Source IOMs
  // emit 1 word per unit.
  std::map<std::string, Rational> pending_input;  // node -> input rate
  std::deque<std::string> ready;

  // Seed: edges leaving IOMs.
  for (const core::KpnEdgeSpec& edge : app.edges) {
    if (!is_iom(edge.from)) continue;
    if (is_iom(edge.to)) {
      report.sink_rates[edge.to] = Rational::of(1);
      continue;
    }
    auto [it, fresh] = pending_input.emplace(edge.to, Rational::of(1));
    VAPRES_REQUIRE(fresh || it->second == Rational::of(1),
                   app.name + ": join rate mismatch at " + edge.to);
    if (fresh) ready.push_back(edge.to);
  }

  // Propagate in topological order (KPN apps are routed acyclically by
  // the assembler; a cycle would starve here and be reported below).
  std::size_t resolved = 0;
  while (!ready.empty()) {
    const std::string node = ready.front();
    ready.pop_front();
    ++resolved;

    const hwmodule::NetlistInfo& ni = *info.at(node);
    const Rational in_rate = pending_input.at(node);
    const Rational out_rate = in_rate.times(ni.rate_out, ni.rate_in);

    NodeRate rate;
    rate.input_rate = in_rate;
    rate.output_rate = out_rate;
    rate.min_clock_factor =
        in_rate.value() >= out_rate.value() ? in_rate : out_rate;
    report.nodes[node] = rate;

    for (const core::KpnEdgeSpec& edge : app.edges) {
      if (edge.from != node) continue;
      if (is_iom(edge.to)) {
        report.sink_rates[edge.to] = out_rate;
        continue;
      }
      VAPRES_REQUIRE(info.count(edge.to) > 0,
                     app.name + ": edge names unknown node " + edge.to);
      auto [it, fresh] = pending_input.emplace(edge.to, out_rate);
      if (fresh) {
        ready.push_back(edge.to);
      } else {
        // A join: every input must arrive at the same rate, or the
        // slower side's FIFO grows without bound.
        VAPRES_REQUIRE(it->second == out_rate,
                       app.name + ": join rate mismatch at " + edge.to +
                           " (" + std::to_string(it->second.value()) +
                           " vs " + std::to_string(out_rate.value()) + ")");
      }
    }
  }

  VAPRES_REQUIRE(resolved == app.nodes.size(),
                 app.name + ": unreachable or cyclic nodes in the KPN "
                            "(rates cannot be derived)");
  return report;
}

}  // namespace vapres::flow
