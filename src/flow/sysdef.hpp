// System-definition file emitters (base-system flow, Section IV.A).
//
// The real flow produces an MHS file (system structure, for platgen), an
// MSS file (software platform, for libgen), and a UCF (floorplan
// constraints). The model emits files with the same structure and intent
// so the base-system flow's output is inspectable; the syntax follows the
// EDK 9.x conventions the paper's toolchain used.
#pragma once

#include <string>

#include "core/params.hpp"
#include "flow/floorplan.hpp"

namespace vapres::flow {

/// Microprocessor Hardware Specification: MicroBlaze, PLB, bridges,
/// ICAP/SysACE/SDRAM peripherals, one PRSocket DCR slave per site, and
/// the RSB parameterization as a custom pcore instance.
std::string emit_mhs(const core::SystemParams& params);

/// Microprocessor Software Specification: OS, drivers, and the VAPRES
/// API library (Table 2).
std::string emit_mss(const core::SystemParams& params);

/// User Constraints File: AREA_GROUP RANGE constraints per PRR, BUFR
/// LOCs, and MODE constraints for the reconfigurable regions.
std::string emit_ucf(const core::SystemParams& params,
                     const Floorplan& floorplan);

/// Writes the three files ("system.mhs", "system.mss", "system.ucf") into
/// `directory`, creating it if needed. Returns the directory path.
std::string write_system_definition(const core::SystemParams& params,
                                    const Floorplan& floorplan,
                                    const std::string& directory);

}  // namespace vapres::flow
