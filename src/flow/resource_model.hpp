// Calibrated slice-cost model (paper Section V.B).
//
// The paper reports, for the ML401 prototype (1 RSB, 2 PRRs, 1 IOM,
// kr = kl = 2, ki = ko = 1, w = 32):
//   * inter-module communication architecture: 1,020 slices;
//   * whole static region (incl. MicroBlaze):  9,421 slices (~86-88 % of
//     the XC4VLX25's 10,752).
//
// The model prices each communication component from its structure
// (registers at 2 FFs/slice, 2:1 mux trees at 2 LUTs/slice over the
// (w+1)-bit extended word) and each static peripheral at a representative
// Virtex-4 figure, with a final glue term calibrated so the prototype
// reproduces both totals exactly. Every constant is named below; the
// parameter sweep of bench_resource_util exercises the structural terms.
#pragma once

#include <string>
#include <vector>

#include "comm/switch_box.hpp"
#include "core/params.hpp"

namespace vapres::flow {

struct ResourceItem {
  std::string name;
  int slices = 0;
};

struct ResourceReport {
  std::vector<ResourceItem> items;
  int total() const;
  /// Percentage of `device_slices`.
  double utilization(int device_slices) const;
};

class ResourceModel {
 public:
  // ---- Structural communication-architecture costs --------------------

  /// One switch box: (w+1)-bit registers on every input port plus an
  /// every-input mux tree on every output port.
  static int switch_box_slices(const comm::SwitchBoxShape& shape,
                               int width_bits);

  /// One producer or consumer module interface: FIFO control (data lives
  /// in BlockRAM) plus bit-extension / threshold logic.
  static int module_interface_slices(int width_bits);

  /// One PRSocket: the 32-bit DCR register plus select-field decode.
  static int prsocket_slices(const comm::SwitchBoxShape& shape);

  /// The whole inter-module communication architecture of one RSB:
  /// boxes + module interfaces + PRSockets.
  static int comm_architecture_slices(const core::RsbParams& params);

  /// Slice macros anchoring the PRR boundary crossings: stream channels
  /// plus the two FSLs.
  static int slice_macros_per_prr(const core::RsbParams& params);

  // ---- Static peripherals (representative Virtex-4 figures) ------------

  static constexpr int kMicroblazeSlices = 2350;
  static constexpr int kPlbBusSlices = 420;
  static constexpr int kPlb2DcrBridgeSlices = 160;
  static constexpr int kIcapControllerSlices = 390;
  static constexpr int kSysAceSlices = 430;
  static constexpr int kSdramControllerSlices = 1850;
  static constexpr int kClockGenSlices = 240;  // DCM + PMCD + BUFGMUX
  static constexpr int kTimerSlices = 190;
  static constexpr int kUartSlices = 160;
  static constexpr int kIntcSlices = 210;
  static constexpr int kFslPairPerSiteSlices = 120;
  static constexpr int kIomPinInterfaceSlices = 460;
  /// Reset infrastructure, PLB interface logic, glue: calibrated so the
  /// prototype static region totals the paper's 9,421 slices.
  static constexpr int kGlueSlices = 987;

  /// Itemized static-region report for a whole system.
  static ResourceReport static_region(const core::SystemParams& params);
};

}  // namespace vapres::flow
