// KPN stream-rate analysis and local-clock-domain assignment.
//
// Section III.B.2 motivates local clock domains with "a system with a
// series of digital filter hardware modules and a fixed processing
// throughput requirement [where] some hardware modules may require more
// processing cycles, and thus a higher clock frequency". This analyzer
// automates that reasoning: given a KPN application and the module
// library's SDF rate signatures, it propagates stream rates from the
// sources through the graph (exact rational arithmetic), checks rate
// consistency (a mismatched join would deadlock or overflow), derives
// each node's minimum clock (one port operation per cycle), and picks
// the cheapest frequency from the DCM/PMCD ladder.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/assembler.hpp"
#include "hwmodule/library.hpp"

namespace vapres::flow {

/// Exact non-negative rational (rates are ratios of small integers).
struct Rational {
  std::int64_t num = 0;
  std::int64_t den = 1;

  static Rational of(std::int64_t n, std::int64_t d = 1);
  Rational times(std::int64_t n, std::int64_t d) const;
  double value() const { return static_cast<double>(num) / den; }
  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num == b.num && a.den == b.den;  // both reduced
  }
};

struct NodeRate {
  Rational input_rate;   ///< words in per source word
  Rational output_rate;  ///< words out per source word
  /// Minimum clock as a multiple of the source word rate: the module
  /// performs one port operation per cycle, so it needs
  /// max(input, output) cycles per source word.
  Rational min_clock_factor;
};

struct RateReport {
  std::map<std::string, NodeRate> nodes;
  /// Stream rate arriving back at each sink IOM (per source word).
  std::map<std::string, Rational> sink_rates;

  /// Minimum clock in MHz for `node` at `source_mwords_per_s`.
  double required_mhz(const std::string& node,
                      double source_mwords_per_s) const;

  /// Picks, per node, the slowest ladder frequency that still meets the
  /// requirement. Throws ModelError if some node cannot be satisfied.
  std::map<std::string, double> assign_clocks(
      double source_mwords_per_s,
      const std::vector<double>& ladder_mhz) const;
};

class RateAnalyzer {
 public:
  explicit RateAnalyzer(const hwmodule::ModuleLibrary& library);

  /// Analyzes `app` with every source IOM producing one word per unit.
  /// Throws ModelError on disconnected nodes, rate-inconsistent joins,
  /// or unknown modules.
  RateReport analyze(const core::KpnAppSpec& app) const;

 private:
  const hwmodule::ModuleLibrary& library_;
};

}  // namespace vapres::flow
