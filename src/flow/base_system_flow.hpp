// Base-system flow (paper Figure 6, right side).
//
// Steps, as in Section IV.A:
//   1. base-system specification — the designer specializes the VAPRES
//      architectural parameters (SystemParams);
//   2. base-system design — floorplan the PRRs and create the system
//      definition files (MHS / MSS / UCF);
//   3. synthesis & implementation — produce the static bitstream and the
//      resource report.
// The result carries everything needed to construct a matching
// core::VapresSystem and to run the application flow against it.
#pragma once

#include <optional>
#include <string>

#include "bitstream/bitstream.hpp"
#include "core/params.hpp"
#include "flow/floorplan.hpp"
#include "flow/resource_model.hpp"

namespace vapres::flow {

struct BaseSystemResult {
  core::SystemParams params;  ///< validated, floorplan filled in
  Floorplan floorplan;
  ResourceReport resources;
  bitstream::StaticBitstream static_bitstream;
  std::string mhs;
  std::string mss;
  std::string ucf;

  /// Slice utilization of the static region on the target device (%).
  double static_utilization() const {
    return resources.utilization(params.device.total_slices());
  }
};

class BaseSystemFlow {
 public:
  /// Runs specification -> design -> synthesis. Throws ModelError when
  /// the specification is infeasible (bad parameters, floorplan does not
  /// fit, static region over budget).
  BaseSystemResult run(core::SystemParams params) const;

  /// Writes the system-definition files into `directory`.
  static void write_files(const BaseSystemResult& result,
                          const std::string& directory);
};

}  // namespace vapres::flow
