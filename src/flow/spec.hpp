// System-specification files (paper Section VI, future work: "additional
// design support in the form of scripting tools for system floorplan
// definition and system definition file creation").
//
// A small line-oriented text format captures a complete SystemParams so
// base systems are defined in files rather than code:
//
//     # comment
//     system vapres_quad
//     device xc4vlx25            # or: device custom <rows> <cols>
//     clock 100
//     prr_clocks 100 50
//     sdram 67108864
//     rsb
//       prrs 4
//       ioms 2
//       width 32
//       lanes 2 2                # kr kl
//       ports 1 1                # ki ko
//       fifo_depth 512
//       prr_size 16 10           # CLB rows, CLB cols
//     end
//     floorplan                  # optional explicit floorplan
//       prr 0 0 16 10            # row col height width
//       prr 16 0 16 10
//     end
//
// parse_system_spec() -> SystemParams (validated);
// emit_system_spec() round-trips a SystemParams back to text.
#pragma once

#include <string>

#include "core/params.hpp"

namespace vapres::flow {

/// Parses the spec text. Throws ModelError with a line number on any
/// syntax or semantic error; the result is validate()d.
core::SystemParams parse_system_spec(const std::string& text);

/// Reads and parses a spec file from disk.
core::SystemParams load_system_spec(const std::string& path);

/// Emits `params` in the spec format (round-trips through the parser).
std::string emit_system_spec(const core::SystemParams& params);

}  // namespace vapres::flow
