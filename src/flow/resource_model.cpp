#include "flow/resource_model.hpp"

#include "sim/check.hpp"

namespace vapres::flow {

namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

int ResourceReport::total() const {
  int sum = 0;
  for (const ResourceItem& item : items) sum += item.slices;
  return sum;
}

double ResourceReport::utilization(int device_slices) const {
  VAPRES_REQUIRE(device_slices > 0, "device has no slices");
  return 100.0 * total() / device_slices;
}

int ResourceModel::switch_box_slices(const comm::SwitchBoxShape& shape,
                                     int width_bits) {
  const int w1 = width_bits + 1;  // payload + valid extension bit
  // Registers: one (w+1)-bit register per input port, 2 FFs per slice.
  // Muxes: priced for the connectivity the routing layer uses —
  // rightward outputs select among {rightward lanes, producers},
  // leftward outputs among {leftward lanes, producers}, consumer outputs
  // among the inter-box lanes. An n-to-1 mux per bit is a tree of (n-1)
  // 2:1 LUTs, 2 LUTs per slice.
  const int reg_half_slices = shape.num_inputs() * w1;  // in half-slices
  const int right_mux = shape.kr * (shape.kr + shape.ko - 1);
  const int left_mux = shape.kl * (shape.kl + shape.ko - 1);
  const int consumer_mux = shape.ki * (shape.kr + shape.kl - 1);
  const int mux_half_slices = (right_mux + left_mux + consumer_mux) * w1;
  return ceil_div(reg_half_slices + mux_half_slices, 2);
}

int ResourceModel::module_interface_slices(int width_bits) {
  const int w1 = width_bits + 1;
  // FIFO control (addresses, flags; data in BlockRAM) plus the
  // bit-extension / feedback-threshold datapath: 3 LUT/FF pairs per 4
  // extended bits, plus a 7-slice control base.
  return 7 + ceil_div(3 * w1, 4);
}

int ResourceModel::prsocket_slices(const comm::SwitchBoxShape& shape) {
  int sel_bits = 1;
  while ((1 << sel_bits) < shape.num_inputs() + 1) ++sel_bits;
  // 32-bit DCR register (8 slices of FF pairs) plus select-field decode.
  return 8 + ceil_div(shape.num_outputs() * sel_bits, 4);
}

int ResourceModel::comm_architecture_slices(const core::RsbParams& params) {
  params.validate();
  const comm::SwitchBoxShape shape{params.kr, params.kl, params.ki,
                                   params.ko};
  const int sites = params.num_attachments();
  // Per PRR: ki consumers + ko producers; per IOM: 1 producer + 1 consumer.
  const int interfaces =
      params.num_prrs * (params.ki + params.ko) + params.num_ioms * 2;
  return sites * switch_box_slices(shape, params.width_bits) +
         interfaces * module_interface_slices(params.width_bits) +
         sites * prsocket_slices(shape);
}

int ResourceModel::slice_macros_per_prr(const core::RsbParams& params) {
  const int w1 = params.width_bits + 1;
  // Stream channels crossing the boundary ((ki+ko) x (w+1) bits at 2 bits
  // per slice) plus two 32-bit FSL crossings.
  return ceil_div((params.ki + params.ko) * w1, 2) + 2 * 32;
}

ResourceReport ResourceModel::static_region(
    const core::SystemParams& params) {
  params.validate();
  ResourceReport report;
  report.items.push_back({"microblaze", kMicroblazeSlices});
  report.items.push_back({"plb_bus", kPlbBusSlices});
  report.items.push_back({"plb2dcr_bridge", kPlb2DcrBridgeSlices});
  report.items.push_back({"icap_controller", kIcapControllerSlices});
  report.items.push_back({"sysace_cf", kSysAceSlices});
  report.items.push_back({"sdram_controller", kSdramControllerSlices});
  report.items.push_back({"clock_generation", kClockGenSlices});
  report.items.push_back({"xps_timer", kTimerSlices});
  report.items.push_back({"uart", kUartSlices});
  report.items.push_back({"intc", kIntcSlices});

  int comm = 0;
  int fsl = 0;
  int macros = 0;
  int iom_pins = 0;
  for (const core::RsbParams& rsb : params.rsbs) {
    comm += comm_architecture_slices(rsb);
    fsl += rsb.num_attachments() * kFslPairPerSiteSlices;
    macros += rsb.num_prrs * slice_macros_per_prr(rsb);
    iom_pins += rsb.num_ioms * kIomPinInterfaceSlices;
  }
  report.items.push_back({"comm_architecture", comm});
  report.items.push_back({"fsl_links", fsl});
  report.items.push_back({"slice_macros", macros});
  report.items.push_back({"iom_pin_interfaces", iom_pins});
  report.items.push_back({"glue_and_reset", kGlueSlices});
  return report;
}

}  // namespace vapres::flow
