#include "flow/explorer.hpp"

#include <algorithm>

#include "core/reconfig.hpp"
#include "fabric/frame.hpp"
#include "flow/floorplan.hpp"
#include "flow/resource_model.hpp"
#include "sim/check.hpp"

namespace vapres::flow {

const Candidate& ExplorationResult::best() const {
  VAPRES_REQUIRE(!candidates.empty(), "no feasible design point");
  return candidates.front();
}

DesignSpaceExplorer::DesignSpaceExplorer(
    const hwmodule::ModuleLibrary& library)
    : library_(library) {}

ExplorationResult DesignSpaceExplorer::explore(
    const ExplorationGoal& goal) const {
  VAPRES_REQUIRE(!goal.required_modules.empty(),
                 "exploration needs at least one required module");
  VAPRES_REQUIRE(goal.num_prrs >= 1 && goal.num_ioms >= 0,
                 "bad site counts");
  VAPRES_REQUIRE(goal.min_lanes >= 1 && goal.max_lanes >= goal.min_lanes,
                 "bad lane range");

  int max_module_slices = 0;
  for (const std::string& id : goal.required_modules) {
    VAPRES_REQUIRE(library_.contains(id), "unknown module: " + id);
    max_module_slices =
        std::max(max_module_slices, library_.info(id).resources.slices);
  }

  ExplorationResult result;
  const int half_cols = goal.device.clock_region_width_clbs();
  const Floorplanner planner;

  for (int height : {16, 32, 48}) {
    for (int width = 2; width <= half_cols; width += 2) {
      const fabric::ClbRect rect{0, 0, height, width};
      const std::string point = std::to_string(height) + "x" +
                                std::to_string(width) + " CLBs";
      // Every required module must fit a PRR of this size.
      if (max_module_slices > rect.slices()) {
        result.rejections.push_back(
            point + ": largest module (" +
            std::to_string(max_module_slices) + " slices) does not fit");
        continue;
      }
      for (int lanes = goal.min_lanes; lanes <= goal.max_lanes; ++lanes) {
        core::SystemParams params;
        params.name = "explored";
        params.device = goal.device;
        core::RsbParams rsb;
        rsb.num_prrs = goal.num_prrs;
        rsb.num_ioms = goal.num_ioms;
        rsb.width_bits = goal.width_bits;
        rsb.kr = lanes;
        rsb.kl = lanes;
        rsb.prr_height_clbs = height;
        rsb.prr_width_clbs = width;
        params.rsbs = {rsb};

        const std::string lane_point =
            point + ", kr=kl=" + std::to_string(lanes);
        try {
          params.validate();
          const Floorplan plan = planner.place(params);
          const ResourceReport report = ResourceModel::static_region(params);
          if (report.total() > plan.static_slices) {
            result.rejections.push_back(
                lane_point + ": static region (" +
                std::to_string(report.total()) +
                " slices) exceeds remaining fabric (" +
                std::to_string(plan.static_slices) + ")");
            continue;
          }
          Candidate c;
          c.params = params;
          c.params.prr_rects = plan.rects();
          c.static_slices = report.total();
          c.prr_slices_total = goal.num_prrs * rect.slices();
          c.reconfig_ms = core::ReconfigManager::estimate_array2icap(
                              fabric::partial_bitstream_bytes(rect))
                              .seconds_at(100.0) *
                          1e3;
          c.max_module_slices = max_module_slices;
          result.candidates.push_back(std::move(c));
        } catch (const ModelError& e) {
          result.rejections.push_back(lane_point + ": " + e.what());
        }
      }
    }
  }

  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.total_slices() != b.total_slices()) {
                return a.total_slices() < b.total_slices();
              }
              return a.reconfig_ms < b.reconfig_ms;
            });
  return result;
}

}  // namespace vapres::flow
