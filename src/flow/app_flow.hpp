// Application flow (paper Figure 6, left side; Section IV.B).
//
// Against a finished base system, the application designer decomposes the
// application into hardware and software modules. The hardware-module
// flow here: validate each module's port signature against the base
// system's architectural parameters (w, ki, ko), "synthesize" the module
// once per PRR it can occupy (bitgen: one partial bitstream per
// (module, PRR) pair), and install the bitstreams as CF files. Only
// module logic is built — the base design is untouched, the isolation
// that keeps application turnaround fast (Section IV.B).
#pragma once

#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "bitstream/relocation.hpp"
#include "bitstream/storage.hpp"
#include "core/assembler.hpp"
#include "flow/base_system_flow.hpp"
#include "hwmodule/library.hpp"

namespace vapres::flow {

/// One module the flow could not place, and why.
struct UnplaceableModule {
  enum class Reason {
    /// The module's slice count exceeds every PRR rectangle — no
    /// floorplan of this base system can host it (re-floorplan needed).
    kResourceOverflow,
    /// Slices would fit some PRR, but the module's resource mix (BRAM /
    /// DSP columns) matches no PRR footprint: the rectangles carry CLB
    /// fabric only.
    kNoFootprintMatch,
  };

  std::string module_id;
  Reason reason = Reason::kResourceOverflow;
  std::string detail;  ///< human-readable explanation with the numbers
};

const char* unplaceable_reason_name(UnplaceableModule::Reason r);

struct AppBuildResult {
  std::string app_name;
  /// One partial bitstream per (module, PRR) pair where the module fits.
  std::vector<bitstream::PartialBitstream> bitstreams;
  /// Modules that fit no PRR at all (build failure unless empty), with
  /// the reason for each.
  std::vector<UnplaceableModule> unplaceable_modules;

  bool ok() const { return unplaceable_modules.empty(); }
};

class ApplicationFlow {
 public:
  ApplicationFlow(const BaseSystemResult& base,
                  const hwmodule::ModuleLibrary& library);

  /// Validates the app against the base system and synthesizes partial
  /// bitstreams for every (module, PRR) pairing that fits. Throws
  /// ModelError on port-signature mismatches (designer error); modules
  /// that fit no PRR are reported in the result.
  AppBuildResult build(const core::KpnAppSpec& app) const;

  /// Stores every generated bitstream as a CF file
  /// (<module>_<prr>.bit). Returns the filenames.
  static std::vector<std::string> install(const AppBuildResult& result,
                                          bitstream::CompactFlash& cf);

  /// Relocation-aware build (hardware module reuse): synthesizes ONE
  /// master bitstream per (module, PRR-footprint class) instead of one
  /// per (module, PRR); per-PRR bitstreams are materialized at runtime
  /// by the FAR-rewriting relocation pass. Coverage is identical to
  /// build() whenever all PRRs sharing a footprint class are relocation
  /// targets.
  bitstream::RelocatingStore build_relocating(
      const core::KpnAppSpec& app) const;

 private:
  const BaseSystemResult& base_;
  const hwmodule::ModuleLibrary& library_;
};

}  // namespace vapres::flow
