#include "flow/spec.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "sim/check.hpp"

namespace vapres::flow {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ModelError("spec line " + std::to_string(line) + ": " + msg);
}

struct Tokenizer {
  std::vector<std::vector<std::string>> lines;  // tokenized, per line
  std::vector<int> line_numbers;

  explicit Tokenizer(const std::string& text) {
    std::istringstream in(text);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
      ++number;
      const auto hash = raw.find('#');
      if (hash != std::string::npos) raw.erase(hash);
      std::istringstream ls(raw);
      std::vector<std::string> tokens;
      std::string tok;
      while (ls >> tok) tokens.push_back(tok);
      if (!tokens.empty()) {
        lines.push_back(std::move(tokens));
        line_numbers.push_back(number);
      }
    }
  }
};

int to_int(const std::string& tok, int line) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(tok, &pos);
    if (pos != tok.size()) fail(line, "trailing characters in '" + tok + "'");
    return v;
  } catch (const std::exception&) {
    fail(line, "expected an integer, got '" + tok + "'");
  }
}

double to_double(const std::string& tok, int line) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) fail(line, "trailing characters in '" + tok + "'");
    return v;
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + tok + "'");
  }
}

void expect_argc(const std::vector<std::string>& tokens, std::size_t argc,
                 int line) {
  if (tokens.size() != argc + 1) {
    fail(line, "'" + tokens[0] + "' takes " + std::to_string(argc) +
                   " argument(s), got " +
                   std::to_string(tokens.size() - 1));
  }
}

}  // namespace

core::SystemParams parse_system_spec(const std::string& text) {
  Tokenizer tz(text);
  core::SystemParams params;
  params.rsbs.clear();

  enum class Scope { kTop, kRsb, kFloorplan };
  Scope scope = Scope::kTop;
  core::RsbParams rsb;
  bool saw_system = false;

  for (std::size_t i = 0; i < tz.lines.size(); ++i) {
    const auto& t = tz.lines[i];
    const int ln = tz.line_numbers[i];
    const std::string& key = t[0];

    if (scope == Scope::kRsb) {
      if (key == "end") {
        params.rsbs.push_back(rsb);
        scope = Scope::kTop;
      } else if (key == "prrs") {
        expect_argc(t, 1, ln);
        rsb.num_prrs = to_int(t[1], ln);
      } else if (key == "ioms") {
        expect_argc(t, 1, ln);
        rsb.num_ioms = to_int(t[1], ln);
      } else if (key == "width") {
        expect_argc(t, 1, ln);
        rsb.width_bits = to_int(t[1], ln);
      } else if (key == "lanes") {
        expect_argc(t, 2, ln);
        rsb.kr = to_int(t[1], ln);
        rsb.kl = to_int(t[2], ln);
      } else if (key == "ports") {
        expect_argc(t, 2, ln);
        rsb.ki = to_int(t[1], ln);
        rsb.ko = to_int(t[2], ln);
      } else if (key == "fifo_depth") {
        expect_argc(t, 1, ln);
        rsb.fifo_depth = to_int(t[1], ln);
      } else if (key == "prr_size") {
        expect_argc(t, 2, ln);
        rsb.prr_height_clbs = to_int(t[1], ln);
        rsb.prr_width_clbs = to_int(t[2], ln);
      } else {
        fail(ln, "unknown rsb key '" + key + "'");
      }
      continue;
    }

    if (scope == Scope::kFloorplan) {
      if (key == "end") {
        scope = Scope::kTop;
      } else if (key == "prr") {
        expect_argc(t, 4, ln);
        params.prr_rects.push_back(fabric::ClbRect{
            to_int(t[1], ln), to_int(t[2], ln), to_int(t[3], ln),
            to_int(t[4], ln)});
      } else {
        fail(ln, "unknown floorplan key '" + key + "'");
      }
      continue;
    }

    if (key == "system") {
      expect_argc(t, 1, ln);
      params.name = t[1];
      saw_system = true;
    } else if (key == "device") {
      if (t.size() == 2 && t[1] == "xc4vlx25") {
        params.device = fabric::DeviceGeometry::xc4vlx25();
      } else if (t.size() == 2 && t[1] == "xc4vlx60") {
        params.device = fabric::DeviceGeometry::xc4vlx60();
      } else if (t.size() == 4 && t[1] == "custom") {
        params.device = fabric::DeviceGeometry(
            "custom", to_int(t[2], ln), to_int(t[3], ln), 64, 32);
      } else {
        fail(ln, "device must be xc4vlx25, xc4vlx60, or custom R C");
      }
    } else if (key == "clock") {
      expect_argc(t, 1, ln);
      params.system_clock_mhz = to_double(t[1], ln);
    } else if (key == "prr_clocks") {
      expect_argc(t, 2, ln);
      params.prr_clock_a_mhz = to_double(t[1], ln);
      params.prr_clock_b_mhz = to_double(t[2], ln);
    } else if (key == "sdram") {
      expect_argc(t, 1, ln);
      params.sdram_bytes = to_int(t[1], ln);
    } else if (key == "rsb") {
      expect_argc(t, 0, ln);
      rsb = core::RsbParams{};
      scope = Scope::kRsb;
    } else if (key == "floorplan") {
      expect_argc(t, 0, ln);
      scope = Scope::kFloorplan;
    } else {
      fail(ln, "unknown key '" + key + "'");
    }
  }

  VAPRES_REQUIRE(scope == Scope::kTop, "spec: unterminated block");
  VAPRES_REQUIRE(saw_system, "spec: missing 'system <name>'");
  VAPRES_REQUIRE(!params.rsbs.empty(), "spec: no rsb block");
  params.validate();
  return params;
}

core::SystemParams load_system_spec(const std::string& path) {
  std::ifstream in(path);
  VAPRES_REQUIRE(in.good(), "cannot open spec file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_system_spec(text.str());
}

std::string emit_system_spec(const core::SystemParams& params) {
  std::ostringstream os;
  os << "# VAPRES system specification (generated)\n"
     << "system " << params.name << "\n"
     << "device " << params.device.name();
  if (params.device.name() == "custom") {
    os << " " << params.device.clb_rows() << " " << params.device.clb_cols();
  }
  os << "\n"
     << "clock " << params.system_clock_mhz << "\n"
     << "prr_clocks " << params.prr_clock_a_mhz << " "
     << params.prr_clock_b_mhz << "\n"
     << "sdram " << params.sdram_bytes << "\n";
  for (const core::RsbParams& rsb : params.rsbs) {
    os << "rsb\n"
       << "  prrs " << rsb.num_prrs << "\n"
       << "  ioms " << rsb.num_ioms << "\n"
       << "  width " << rsb.width_bits << "\n"
       << "  lanes " << rsb.kr << " " << rsb.kl << "\n"
       << "  ports " << rsb.ki << " " << rsb.ko << "\n"
       << "  fifo_depth " << rsb.fifo_depth << "\n"
       << "  prr_size " << rsb.prr_height_clbs << " " << rsb.prr_width_clbs
       << "\n"
       << "end\n";
  }
  if (!params.prr_rects.empty()) {
    os << "floorplan\n";
    for (const auto& r : params.prr_rects) {
      os << "  prr " << r.row << " " << r.col << " " << r.height << " "
         << r.width << "\n";
    }
    os << "end\n";
  }
  return os.str();
}

}  // namespace vapres::flow
